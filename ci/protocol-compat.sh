#!/usr/bin/env bash
# Cross-version protocol smoke: build mdctl/mdagentd/mdregistry from the
# merge-base of the change under test, then run both mixed pairs —
# old client vs new daemon, and new client vs old daemon — over real
# localhost TCP. Each pair smokes info, ps, and one watch event, so a
# wire-format break (sealed-frame layout, watch negotiation, reply
# shapes) fails here even though every same-version test passes.
#
# In CI the base is merge-base with the PR's target branch; locally (or
# on push builds) it falls back to HEAD^.
set -euo pipefail

cd "$(dirname "$0")/.."

if [ -n "${GITHUB_BASE_REF:-}" ]; then
  git fetch -q origin "$GITHUB_BASE_REF"
  BASE=$(git merge-base HEAD "origin/$GITHUB_BASE_REF")
else
  BASE=$(git rev-parse HEAD^)
fi
echo "== protocol-compat: $(git rev-parse --short HEAD) (new) vs $(git rev-parse --short "$BASE") (old)"

WORK=$(mktemp -d)
cleanup() {
  # shellcheck disable=SC2046
  kill $(jobs -p) 2>/dev/null || true
  git worktree remove --force "$WORK/base" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

mkdir -p "$WORK/new" "$WORK/old"
go build -o "$WORK/new/" ./cmd/mdctl ./cmd/mdagentd ./cmd/mdregistry
git worktree add -q --detach "$WORK/base" "$BASE"
(cd "$WORK/base" && go build -o "$WORK/old/" ./cmd/mdctl ./cmd/mdagentd ./cmd/mdregistry)

# wait_line FILE PATTERN [TIMEOUT_SEC]: block until the pattern shows up
# in a daemon's log, dumping the log on timeout.
wait_line() {
  local file=$1 pattern=$2 deadline=$((SECONDS + ${3:-30}))
  until grep -q "$pattern" "$file" 2>/dev/null; do
    if [ "$SECONDS" -ge "$deadline" ]; then
      echo "timed out waiting for '$pattern' in $file" >&2
      cat "$file" >&2 || true
      return 1
    fi
    sleep 0.2
  done
}

# addr_from FILE PATTERN: extract the bound address a daemon prints as
# "... on <addr>".
addr_from() {
  grep "$2" "$1" | head -1 | sed -e 's/.* on //' -e 's/[ ,].*//'
}

run_pair() {
  local daemons=$1 client=$2 label=$3
  echo "-- pair: $label"
  local dir="$WORK/run-$label"
  mkdir -p "$dir"

  "$daemons/mdregistry" -listen 127.0.0.1:0 -space lab \
    -store "$dir/registry" >"$dir/registry.log" 2>&1 &
  local reg_pid=$!
  wait_line "$dir/registry.log" "serving registry@lab on "
  local reg_addr
  reg_addr=$(addr_from "$dir/registry.log" "serving registry@lab on ")

  "$daemons/mdagentd" -host hostA -listen 127.0.0.1:0 -registry "$reg_addr" \
    -space lab -install smart-media-player >"$dir/agentd.log" 2>&1 &
  local agent_pid=$!
  wait_line "$dir/agentd.log" "serving on "
  local agent_addr
  agent_addr=$(addr_from "$dir/agentd.log" "serving on ")

  "$client/mdctl" -server "$agent_addr" info >/dev/null
  "$client/mdctl" -server "$agent_addr" ps >/dev/null

  # One watch event across the generations: subscribe first (the
  # "watching" line means the server acked), then trigger app.started.
  "$client/mdctl" -server "$agent_addr" -json watch \
    -count 1 -for 30s -filter app.started >"$dir/watch.log" 2>&1 &
  local watch_pid=$!
  wait_line "$dir/watch.log" "watching"
  "$client/mdctl" -server "$agent_addr" run smart-media-player >/dev/null
  if ! wait "$watch_pid"; then
    echo "watch exited non-zero" >&2
    cat "$dir/watch.log" >&2
    return 1
  fi
  if ! grep -q '"topic":"app.started"' "$dir/watch.log"; then
    echo "watch never delivered app.started" >&2
    cat "$dir/watch.log" >&2
    return 1
  fi
  echo "   info/ps ok; watch delivered: $(grep '"topic"' "$dir/watch.log" | head -1)"

  kill "$agent_pid" "$reg_pid" 2>/dev/null || true
  wait "$agent_pid" "$reg_pid" 2>/dev/null || true
}

run_pair "$WORK/new" "$WORK/old" old-client-vs-new-daemon
run_pair "$WORK/old" "$WORK/new" new-client-vs-old-daemon
echo "== protocol-compat: both mixed pairs passed"
