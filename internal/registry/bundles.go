package registry

import (
	"errors"
	"fmt"
	"sort"

	"mdagent/internal/store"
)

// BundleRecord is one stored portable app bundle: the raw signed bytes,
// exactly as packed. The registry stores bundles opaquely — signature
// and trust checks happen at push (the receiving daemon) and again at
// install (the instantiating host), never here, so a center can relay
// bundles for apps it could not itself instantiate. The PR 8 engine's
// blob split keeps multi-megabyte payloads out of the WAL.
type BundleRecord struct {
	Name string // bundle name = manifest app name
	Raw  []byte // signed bundle bytes (MDAB format)
}

// Key returns the storage key for the record.
func (b BundleRecord) Key() string { return "bundle/" + b.Name }

// BundleInfo is the listing view of a stored bundle.
type BundleInfo struct {
	Name  string
	Bytes int64
}

// PutBundle stores (or replaces) a bundle's raw bytes under its name.
func (r *Registry) PutBundle(name string, raw []byte) error {
	if name == "" {
		return fmt.Errorf("registry: bundle has no name")
	}
	if len(raw) == 0 {
		return fmt.Errorf("registry: bundle %q is empty", name)
	}
	return r.db.Put(BundleRecord{Name: name}.Key(), raw)
}

// GetBundle returns a copy of a stored bundle's bytes. The copy is
// deliberate: the store's zero-copy Get aliases internal buffers, and
// bundle bytes outlive the call (they cross the wire and feed the
// verifier).
func (r *Registry) GetBundle(name string) ([]byte, bool, error) {
	raw, err := r.db.Get(BundleRecord{Name: name}.Key())
	if err != nil {
		if errors.Is(err, store.ErrNotFound) {
			return nil, false, nil
		}
		return nil, false, err
	}
	return append([]byte(nil), raw...), true, nil
}

// DeleteBundle removes a stored bundle.
func (r *Registry) DeleteBundle(name string) error {
	return r.db.Delete(BundleRecord{Name: name}.Key())
}

// Bundles lists the stored bundles, sorted by name.
func (r *Registry) Bundles() ([]BundleInfo, error) {
	prefix := "bundle/"
	var out []BundleInfo
	err := r.db.Scan(prefix, func(key string, raw []byte) error {
		out = append(out, BundleInfo{Name: key[len(prefix):], Bytes: int64(len(raw))})
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}
