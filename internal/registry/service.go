package registry

import (
	"context"

	"mdagent/internal/owl"
	"mdagent/internal/transport"
	"mdagent/internal/wsdl"
)

// Message types served by the registry center.
const (
	MsgRegisterApp      = "registry.register-app"
	MsgUnregisterApp    = "registry.unregister-app"
	MsgLookupApp        = "registry.lookup-app"
	MsgFindApp          = "registry.find-app"
	MsgAppsOnHost       = "registry.apps-on-host"
	MsgRegisterResource = "registry.register-resource"
	MsgResourcesOnHost  = "registry.resources-on-host"
	MsgRegisterDevice   = "registry.register-device"
	MsgDevice           = "registry.device"
	MsgQuery            = "registry.query"
	MsgPlanRebinding    = "registry.plan-rebinding"
	MsgListApps         = "registry.list-apps"
	MsgPutBundle        = "registry.put-bundle"
	MsgGetBundle        = "registry.get-bundle"
	MsgListBundles      = "registry.list-bundles"
)

// Every request payload is sealed with a protocol version byte
// (transport.Seal); handlers refuse versions they do not speak with a
// typed transport.ErrVersion reply instead of misparsing the gob body.

// Request/reply bodies (gob-encoded).
type (
	appKeyReq struct{ Name, Host string }

	lookupAppReply struct {
		Rec   AppRecord
		Found bool
	}

	hostReq struct{ Host string }

	queryReq struct{ Query string }

	rebindingReq struct {
		Src      owl.Resource
		DestHost string
		Mode     owl.MatchMode
	}

	deviceReply struct {
		Dev   wsdl.DeviceProfile
		Found bool
	}

	putBundleReq struct {
		Name string
		Raw  []byte
	}

	getBundleReq struct{ Name string }

	getBundleReply struct {
		Raw   []byte
		Found bool
	}
)

// Serve binds the registry's operations onto a transport endpoint so
// remote clients can call it. It returns the registry for chaining.
func (r *Registry) Serve(ep *transport.Endpoint) *Registry {
	ep.Handle(MsgRegisterApp, func(msg transport.Message) ([]byte, error) {
		var rec AppRecord
		if err := transport.DecodeSealed(msg.Payload, &rec); err != nil {
			return nil, err
		}
		return nil, r.RegisterApp(rec)
	})
	ep.Handle(MsgUnregisterApp, func(msg transport.Message) ([]byte, error) {
		var req appKeyReq
		if err := transport.DecodeSealed(msg.Payload, &req); err != nil {
			return nil, err
		}
		return nil, r.UnregisterApp(req.Name, req.Host)
	})
	ep.Handle(MsgLookupApp, func(msg transport.Message) ([]byte, error) {
		var req appKeyReq
		if err := transport.DecodeSealed(msg.Payload, &req); err != nil {
			return nil, err
		}
		rec, found, err := r.LookupApp(req.Name, req.Host)
		if err != nil {
			return nil, err
		}
		return transport.Encode(lookupAppReply{Rec: rec, Found: found})
	})
	ep.Handle(MsgFindApp, func(msg transport.Message) ([]byte, error) {
		var req appKeyReq
		if err := transport.DecodeSealed(msg.Payload, &req); err != nil {
			return nil, err
		}
		recs, err := r.FindApp(req.Name)
		if err != nil {
			return nil, err
		}
		return transport.Encode(recs)
	})
	ep.Handle(MsgAppsOnHost, func(msg transport.Message) ([]byte, error) {
		var req hostReq
		if err := transport.DecodeSealed(msg.Payload, &req); err != nil {
			return nil, err
		}
		recs, err := r.AppsOnHost(req.Host)
		if err != nil {
			return nil, err
		}
		return transport.Encode(recs)
	})
	ep.Handle(MsgRegisterResource, func(msg transport.Message) ([]byte, error) {
		var res owl.Resource
		if err := transport.DecodeSealed(msg.Payload, &res); err != nil {
			return nil, err
		}
		return nil, r.RegisterResource(res)
	})
	ep.Handle(MsgResourcesOnHost, func(msg transport.Message) ([]byte, error) {
		var req hostReq
		if err := transport.DecodeSealed(msg.Payload, &req); err != nil {
			return nil, err
		}
		res, err := r.ResourcesOnHost(req.Host)
		if err != nil {
			return nil, err
		}
		return transport.Encode(res)
	})
	ep.Handle(MsgRegisterDevice, func(msg transport.Message) ([]byte, error) {
		var dev wsdl.DeviceProfile
		if err := transport.DecodeSealed(msg.Payload, &dev); err != nil {
			return nil, err
		}
		return nil, r.RegisterDevice(dev)
	})
	ep.Handle(MsgDevice, func(msg transport.Message) ([]byte, error) {
		var req hostReq
		if err := transport.DecodeSealed(msg.Payload, &req); err != nil {
			return nil, err
		}
		dev, found := r.Device(req.Host)
		return transport.Encode(deviceReply{Dev: dev, Found: found})
	})
	ep.Handle(MsgListApps, func(msg transport.Message) ([]byte, error) {
		if _, err := transport.Open(msg.Payload); err != nil {
			return nil, err
		}
		recs, err := r.Apps()
		if err != nil {
			return nil, err
		}
		return transport.Encode(recs)
	})
	ep.Handle(MsgQuery, func(msg transport.Message) ([]byte, error) {
		var req queryReq
		if err := transport.DecodeSealed(msg.Payload, &req); err != nil {
			return nil, err
		}
		rows, err := r.Query(req.Query)
		if err != nil {
			return nil, err
		}
		return transport.Encode(rows)
	})
	ep.Handle(MsgPlanRebinding, func(msg transport.Message) ([]byte, error) {
		var req rebindingReq
		if err := transport.DecodeSealed(msg.Payload, &req); err != nil {
			return nil, err
		}
		plan, err := r.PlanRebinding(req.Src, req.DestHost, req.Mode)
		if err != nil {
			return nil, err
		}
		return transport.Encode(plan)
	})
	ep.Handle(MsgPutBundle, func(msg transport.Message) ([]byte, error) {
		var req putBundleReq
		if err := transport.DecodeSealed(msg.Payload, &req); err != nil {
			return nil, err
		}
		return nil, r.PutBundle(req.Name, req.Raw)
	})
	ep.Handle(MsgGetBundle, func(msg transport.Message) ([]byte, error) {
		var req getBundleReq
		if err := transport.DecodeSealed(msg.Payload, &req); err != nil {
			return nil, err
		}
		raw, found, err := r.GetBundle(req.Name)
		if err != nil {
			return nil, err
		}
		return transport.Encode(getBundleReply{Raw: raw, Found: found})
	})
	ep.Handle(MsgListBundles, func(msg transport.Message) ([]byte, error) {
		if _, err := transport.Open(msg.Payload); err != nil {
			return nil, err
		}
		infos, err := r.Bundles()
		if err != nil {
			return nil, err
		}
		return transport.Encode(infos)
	})
	return r
}

// Client is a typed remote handle to a registry center endpoint.
type Client struct {
	ep     *transport.Endpoint
	server string
}

// NewClient creates a client that calls the registry served at server
// through ep.
func NewClient(ep *transport.Endpoint, server string) *Client {
	return &Client{ep: ep, server: server}
}

func (c *Client) call(ctx context.Context, msgType string, req, out any) error {
	payload, err := transport.EncodeSealed(req)
	if err != nil {
		return err
	}
	return c.ep.RequestDecode(ctx, c.server, msgType, payload, out)
}

// RegisterApp registers an application installation.
func (c *Client) RegisterApp(ctx context.Context, rec AppRecord) error {
	return c.call(ctx, MsgRegisterApp, rec, nil)
}

// UnregisterApp removes an application installation.
func (c *Client) UnregisterApp(ctx context.Context, name, host string) error {
	return c.call(ctx, MsgUnregisterApp, appKeyReq{Name: name, Host: host}, nil)
}

// LookupApp fetches one installation record.
func (c *Client) LookupApp(ctx context.Context, name, host string) (AppRecord, bool, error) {
	var reply lookupAppReply
	if err := c.call(ctx, MsgLookupApp, appKeyReq{Name: name, Host: host}, &reply); err != nil {
		return AppRecord{}, false, err
	}
	return reply.Rec, reply.Found, nil
}

// FindApp lists installations of an app on every host.
func (c *Client) FindApp(ctx context.Context, name string) ([]AppRecord, error) {
	var recs []AppRecord
	if err := c.call(ctx, MsgFindApp, appKeyReq{Name: name}, &recs); err != nil {
		return nil, err
	}
	return recs, nil
}

// Apps lists every application installation record at the center.
func (c *Client) Apps(ctx context.Context) ([]AppRecord, error) {
	var recs []AppRecord
	if err := c.call(ctx, MsgListApps, struct{}{}, &recs); err != nil {
		return nil, err
	}
	return recs, nil
}

// AppsOnHost lists every app installed on a host.
func (c *Client) AppsOnHost(ctx context.Context, host string) ([]AppRecord, error) {
	var recs []AppRecord
	if err := c.call(ctx, MsgAppsOnHost, hostReq{Host: host}, &recs); err != nil {
		return nil, err
	}
	return recs, nil
}

// RegisterResource registers a resource description.
func (c *Client) RegisterResource(ctx context.Context, res owl.Resource) error {
	return c.call(ctx, MsgRegisterResource, res, nil)
}

// ResourcesOnHost lists the resources on a host.
func (c *Client) ResourcesOnHost(ctx context.Context, host string) ([]owl.Resource, error) {
	var res []owl.Resource
	if err := c.call(ctx, MsgResourcesOnHost, hostReq{Host: host}, &res); err != nil {
		return nil, err
	}
	return res, nil
}

// RegisterDevice registers a host device profile.
func (c *Client) RegisterDevice(ctx context.Context, dev wsdl.DeviceProfile) error {
	return c.call(ctx, MsgRegisterDevice, dev, nil)
}

// Device fetches a host device profile.
func (c *Client) Device(ctx context.Context, host string) (wsdl.DeviceProfile, bool, error) {
	var reply deviceReply
	if err := c.call(ctx, MsgDevice, hostReq{Host: host}, &reply); err != nil {
		return wsdl.DeviceProfile{}, false, err
	}
	return reply.Dev, reply.Found, nil
}

// Query runs a textual OWL-QL query at the registry.
func (c *Client) Query(ctx context.Context, q string) ([]map[string]string, error) {
	var rows []map[string]string
	if err := c.call(ctx, MsgQuery, queryReq{Query: q}, &rows); err != nil {
		return nil, err
	}
	return rows, nil
}

// PutBundle stores a bundle's raw bytes at the center. Against a
// federated center this routes through the replication machinery (the
// center shadows the handler), so one push fans out to every space.
func (c *Client) PutBundle(ctx context.Context, name string, raw []byte) error {
	return c.call(ctx, MsgPutBundle, putBundleReq{Name: name, Raw: raw}, nil)
}

// GetBundle fetches a stored bundle's bytes.
func (c *Client) GetBundle(ctx context.Context, name string) ([]byte, bool, error) {
	var reply getBundleReply
	if err := c.call(ctx, MsgGetBundle, getBundleReq{Name: name}, &reply); err != nil {
		return nil, false, err
	}
	return reply.Raw, reply.Found, nil
}

// Bundles lists the bundles stored at the center.
func (c *Client) Bundles(ctx context.Context) ([]BundleInfo, error) {
	var infos []BundleInfo
	if err := c.call(ctx, MsgListBundles, struct{}{}, &infos); err != nil {
		return nil, err
	}
	return infos, nil
}

// PlanRebinding asks the registry for a rebinding plan.
func (c *Client) PlanRebinding(ctx context.Context, src owl.Resource, destHost string, mode owl.MatchMode) (owl.Rebinding, error) {
	var plan owl.Rebinding
	if err := c.call(ctx, MsgPlanRebinding, rebindingReq{Src: src, DestHost: destHost, Mode: mode}, &plan); err != nil {
		return owl.Rebinding{}, err
	}
	return plan, nil
}
