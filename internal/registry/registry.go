// Package registry implements MDAgent's application and resource registry
// center (paper §4.1: mobile agents "retrieve complied resource and
// application information (maybe owl-enabled as can match in a semantic
// way) from the registry center"; §5: backed by Juddi + MySQL, here by
// internal/store). It records which applications (and their WSDL-like
// interface descriptions) and which resources exist on which hosts, the
// device profile of each host, and answers semantic OWL-QL queries and
// rebinding plans for autonomous agents.
package registry

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"mdagent/internal/owl"
	"mdagent/internal/store"
	"mdagent/internal/transport"
	"mdagent/internal/wsdl"
)

// AppRecord is one application installation on one host.
type AppRecord struct {
	Name        string           // application name, e.g. "smart-media-player"
	Host        string           // host id the installation lives on
	Space       string           // smart space of the host
	Description wsdl.Description // interface description
	Components  []string         // component factory names installed on the host
	Running     bool             // a live instance (vs an installed skeleton) — failover re-homes only these
}

// Key returns the storage key for the record.
func (a AppRecord) Key() string { return "app/" + a.Host + "/" + a.Name }

// Validate checks the record is storable.
func (a AppRecord) Validate() error {
	if a.Name == "" {
		return fmt.Errorf("registry: app record has no name")
	}
	if a.Host == "" {
		return fmt.Errorf("registry: app %q has no host", a.Name)
	}
	if err := a.Description.Validate(); err != nil {
		return err
	}
	return nil
}

// HasComponent reports whether the installation provides a component
// factory by name.
func (a AppRecord) HasComponent(name string) bool {
	for _, c := range a.Components {
		if c == name {
			return true
		}
	}
	return false
}

// Registry is the registry center state. It is safe for concurrent use
// and can be embedded in-process or exposed over the network via Service.
type Registry struct {
	mu      sync.RWMutex
	db      *store.Store
	onto    *owl.Ontology
	devices map[string]wsdl.DeviceProfile
}

// New creates a registry over db (use store.OpenMemory() for volatile).
// The ontology is preloaded with the standard resource classes and any
// resources already present in db are re-asserted into it.
func New(db *store.Store) (*Registry, error) {
	r := &Registry{
		db:      db,
		onto:    owl.New(),
		devices: make(map[string]wsdl.DeviceProfile),
	}
	r.onto.StandardResourceClasses()
	// Recover resource descriptions into the ontology. Scan hands each
	// value in a single pass (no per-key Get) — Decode only reads the
	// buffer, which the zero-copy contract permits.
	err := db.Scan("res/", func(key string, raw []byte) error {
		var res owl.Resource
		if err := transport.Decode(raw, &res); err != nil {
			return fmt.Errorf("registry: corrupt resource %s: %w", key, err)
		}
		return r.onto.AddResource(res)
	})
	if err != nil {
		return nil, err
	}
	// Recover device profiles.
	err = db.Scan("dev/", func(key string, raw []byte) error {
		var dev wsdl.DeviceProfile
		if err := transport.Decode(raw, &dev); err != nil {
			return fmt.Errorf("registry: corrupt device %s: %w", key, err)
		}
		r.devices[dev.Host] = dev
		return nil
	})
	if err != nil {
		return nil, err
	}
	return r, nil
}

// Ontology exposes the registry's resource ontology (read-mostly).
func (r *Registry) Ontology() *owl.Ontology { return r.onto }

// Store exposes the backing store so cooperating layers (the federated
// cluster centers) can persist their replication metadata with the same
// durability as the records themselves.
func (r *Registry) Store() *store.Store { return r.db }

// RegisterApp stores (or replaces) an application installation record.
func (r *Registry) RegisterApp(rec AppRecord) error {
	if err := rec.Validate(); err != nil {
		return err
	}
	raw, err := transport.Encode(rec)
	if err != nil {
		return err
	}
	return r.db.Put(rec.Key(), raw)
}

// UnregisterApp removes an installation record.
func (r *Registry) UnregisterApp(name, host string) error {
	return r.db.Delete(AppRecord{Name: name, Host: host}.Key())
}

// LookupApp returns the installation of an app on a specific host.
func (r *Registry) LookupApp(name, host string) (AppRecord, bool, error) {
	raw, err := r.db.Get(AppRecord{Name: name, Host: host}.Key())
	if err != nil {
		if errors.Is(err, store.ErrNotFound) {
			return AppRecord{}, false, nil
		}
		return AppRecord{}, false, err
	}
	var rec AppRecord
	if err := transport.Decode(raw, &rec); err != nil {
		return AppRecord{}, false, err
	}
	return rec, true, nil
}

// FindApp returns every installation of an app across hosts, sorted by host.
func (r *Registry) FindApp(name string) ([]AppRecord, error) {
	var out []AppRecord
	err := r.db.Scan("app/", func(key string, raw []byte) error {
		var rec AppRecord
		if err := transport.Decode(raw, &rec); err != nil {
			return err
		}
		if rec.Name == name {
			out = append(out, rec)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Host < out[j].Host })
	return out, nil
}

// Apps lists every application installation record, sorted by host then
// name — the control plane's `ps` view.
func (r *Registry) Apps() ([]AppRecord, error) {
	var out []AppRecord
	err := r.db.Scan("app/", func(key string, raw []byte) error {
		var rec AppRecord
		if err := transport.Decode(raw, &rec); err != nil {
			return err
		}
		out = append(out, rec)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Host != out[j].Host {
			return out[i].Host < out[j].Host
		}
		return out[i].Name < out[j].Name
	})
	return out, nil
}

// AppsOnHost lists every application installed on a host, sorted by name.
func (r *Registry) AppsOnHost(host string) ([]AppRecord, error) {
	var out []AppRecord
	err := r.db.Scan("app/"+host+"/", func(key string, raw []byte) error {
		var rec AppRecord
		if err := transport.Decode(raw, &rec); err != nil {
			return err
		}
		out = append(out, rec)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// RegisterResource stores a resource description and asserts it into the
// ontology.
func (r *Registry) RegisterResource(res owl.Resource) error {
	if err := res.Validate(); err != nil {
		return err
	}
	raw, err := transport.Encode(res)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.db.Put("res/"+res.ID, raw); err != nil {
		return err
	}
	return r.onto.AddResource(res)
}

// ResourcesOnHost returns the resource descriptions hosted on host.
func (r *Registry) ResourcesOnHost(host string) ([]owl.Resource, error) {
	r.mu.RLock()
	ids := r.onto.ResourcesOnHost(host)
	r.mu.RUnlock()
	out := make([]owl.Resource, 0, len(ids))
	for _, id := range ids {
		res, err := r.onto.ResourceFromGraph(id)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

// RegisterDevice stores a host's device profile.
func (r *Registry) RegisterDevice(dev wsdl.DeviceProfile) error {
	if dev.Host == "" {
		return fmt.Errorf("registry: device profile has no host")
	}
	raw, err := transport.Encode(dev)
	if err != nil {
		return err
	}
	if err := r.db.Put("dev/"+dev.Host, raw); err != nil {
		return err
	}
	r.mu.Lock()
	r.devices[dev.Host] = dev
	r.mu.Unlock()
	return nil
}

// Device returns a host's device profile.
func (r *Registry) Device(host string) (wsdl.DeviceProfile, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	d, ok := r.devices[host]
	return d, ok
}

// Query answers an OWL-QL-style textual query over the resource ontology.
func (r *Registry) Query(q string) ([]map[string]string, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	bs, err := r.onto.QueryText(q)
	if err != nil {
		return nil, err
	}
	out := make([]map[string]string, 0, len(bs))
	for _, b := range bs {
		row := make(map[string]string, len(b))
		for v, t := range b {
			row[v] = r.onto.Namespaces().Compact(t)
		}
		out = append(out, row)
	}
	return out, nil
}

// PlanRebinding answers the rebinding question for a source resource
// against a destination host's inventory, using the given match mode.
func (r *Registry) PlanRebinding(src owl.Resource, destHost string, mode owl.MatchMode) (owl.Rebinding, error) {
	avail, err := r.ResourcesOnHost(destHost)
	if err != nil {
		return owl.Rebinding{}, err
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	m := owl.NewMatcher(r.onto, mode)
	return m.PlanRebinding(src, avail), nil
}
