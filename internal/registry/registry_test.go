package registry

import (
	"context"
	"path/filepath"
	"testing"
	"time"

	"mdagent/internal/netsim"
	"mdagent/internal/owl"
	"mdagent/internal/rdf"
	"mdagent/internal/store"
	"mdagent/internal/transport"
	"mdagent/internal/vclock"
	"mdagent/internal/wsdl"
)

func testDesc(name string) wsdl.Description {
	return wsdl.Description{
		Name: name,
		Services: []wsdl.Service{{
			Name: "svc",
			Ports: []wsdl.Port{{
				Name:       "p",
				Operations: []wsdl.Operation{{Name: "run"}},
			}},
		}},
		Requires: wsdl.Requirements{MinMemoryMB: 64},
	}
}

func newReg(t *testing.T) *Registry {
	t.Helper()
	r, err := New(store.OpenMemory())
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRegisterLookupApp(t *testing.T) {
	r := newReg(t)
	rec := AppRecord{
		Name: "player", Host: "hostA", Space: "lab",
		Description: testDesc("player"),
		Components:  []string{"ui", "codec"},
	}
	if err := r.RegisterApp(rec); err != nil {
		t.Fatal(err)
	}
	got, found, err := r.LookupApp("player", "hostA")
	if err != nil || !found {
		t.Fatalf("LookupApp = %v, %v", found, err)
	}
	if got.Space != "lab" || !got.HasComponent("codec") || got.HasComponent("gpu") {
		t.Fatalf("record = %+v", got)
	}
	if _, found, _ := r.LookupApp("player", "hostB"); found {
		t.Fatal("found app on wrong host")
	}
	if _, found, _ := r.LookupApp("nosuch", "hostA"); found {
		t.Fatal("found nonexistent app")
	}
}

func TestRegisterAppValidates(t *testing.T) {
	r := newReg(t)
	if err := r.RegisterApp(AppRecord{Host: "h"}); err == nil {
		t.Fatal("nameless app accepted")
	}
	if err := r.RegisterApp(AppRecord{Name: "x", Description: testDesc("x")}); err == nil {
		t.Fatal("hostless app accepted")
	}
	if err := r.RegisterApp(AppRecord{Name: "x", Host: "h"}); err == nil {
		t.Fatal("descriptionless app accepted")
	}
}

func TestFindAppAcrossHostsAndUnregister(t *testing.T) {
	r := newReg(t)
	for _, host := range []string{"hostB", "hostA", "hostC"} {
		rec := AppRecord{Name: "editor", Host: host, Description: testDesc("editor")}
		if err := r.RegisterApp(rec); err != nil {
			t.Fatal(err)
		}
	}
	recs, err := r.FindApp("editor")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || recs[0].Host != "hostA" || recs[2].Host != "hostC" {
		t.Fatalf("FindApp = %v", recs)
	}
	if err := r.UnregisterApp("editor", "hostB"); err != nil {
		t.Fatal(err)
	}
	recs, _ = r.FindApp("editor")
	if len(recs) != 2 {
		t.Fatalf("after unregister, FindApp = %v", recs)
	}
}

func TestAppsOnHost(t *testing.T) {
	r := newReg(t)
	for _, name := range []string{"zeta", "alpha"} {
		if err := r.RegisterApp(AppRecord{Name: name, Host: "hostA", Description: testDesc(name)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.RegisterApp(AppRecord{Name: "other", Host: "hostB", Description: testDesc("other")}); err != nil {
		t.Fatal(err)
	}
	recs, err := r.AppsOnHost("hostA")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Name != "alpha" {
		t.Fatalf("AppsOnHost = %v", recs)
	}
}

func TestResourceRegistrationAndQuery(t *testing.T) {
	r := newReg(t)
	res := owl.Resource{
		ID: "hp821", Class: rdf.IMCL("Printer"), Substitutable: true,
		Host: "hostB", Location: "office821",
	}
	if err := r.RegisterResource(res); err != nil {
		t.Fatal(err)
	}
	got, err := r.ResourcesOnHost("hostB")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].ID != "hp821" {
		t.Fatalf("ResourcesOnHost = %v", got)
	}
	rows, err := r.Query(`(?r rdf:type imcl:Printer), (?r imcl:hostedOn ?h)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0]["r"] != "imcl:hp821" || rows[0]["h"] != "imcl:hostB" {
		t.Fatalf("Query rows = %v", rows)
	}
	if err := r.RegisterResource(owl.Resource{}); err == nil {
		t.Fatal("invalid resource accepted")
	}
	if _, err := r.Query(`broken(`); err == nil {
		t.Fatal("broken query accepted")
	}
}

func TestPlanRebindingThroughRegistry(t *testing.T) {
	r := newReg(t)
	src := owl.Resource{ID: "srcPrn", Class: rdf.IMCL("Printer"), Substitutable: true, Host: "hostA"}
	dst := owl.Resource{ID: "dstPrn", Class: rdf.IMCL("ColorPrinter"), Substitutable: true, Host: "hostB"}
	if err := r.RegisterResource(src); err != nil {
		t.Fatal(err)
	}
	if err := r.RegisterResource(dst); err != nil {
		t.Fatal(err)
	}
	plan, err := r.PlanRebinding(src, "hostB", owl.MatchSemantic)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Action != owl.RebindUseLocal || plan.Target.ID != "dstPrn" {
		t.Fatalf("plan = %+v", plan)
	}
	// Syntactic mode misses the subclass printer.
	plan, err = r.PlanRebinding(src, "hostB", owl.MatchSyntactic)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Action == owl.RebindUseLocal {
		t.Fatalf("syntactic plan unexpectedly matched: %+v", plan)
	}
}

func TestDeviceProfiles(t *testing.T) {
	r := newReg(t)
	dev := wsdl.DeviceProfile{Host: "hostB", ScreenWidth: 1024, ScreenHeight: 768, MemoryMB: 512, HasAudio: true}
	if err := r.RegisterDevice(dev); err != nil {
		t.Fatal(err)
	}
	got, ok := r.Device("hostB")
	if !ok || got.ScreenWidth != 1024 {
		t.Fatalf("Device = %+v, %v", got, ok)
	}
	if _, ok := r.Device("ghost"); ok {
		t.Fatal("ghost device found")
	}
	if err := r.RegisterDevice(wsdl.DeviceProfile{}); err == nil {
		t.Fatal("hostless device accepted")
	}
}

func TestPersistenceAcrossRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "registry.log")
	db, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := New(db)
	if err != nil {
		t.Fatal(err)
	}
	if err := r1.RegisterApp(AppRecord{Name: "player", Host: "hostA", Description: testDesc("player")}); err != nil {
		t.Fatal(err)
	}
	if err := r1.RegisterResource(owl.Resource{ID: "prn", Class: rdf.IMCL("Printer"), Host: "hostA", Substitutable: true}); err != nil {
		t.Fatal(err)
	}
	if err := r1.RegisterDevice(wsdl.DeviceProfile{Host: "hostA", MemoryMB: 256}); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	r2, err := New(db2)
	if err != nil {
		t.Fatal(err)
	}
	if _, found, _ := r2.LookupApp("player", "hostA"); !found {
		t.Fatal("app lost across restart")
	}
	res, err := r2.ResourcesOnHost("hostA")
	if err != nil || len(res) != 1 {
		t.Fatalf("resources lost across restart: %v, %v", res, err)
	}
	if _, ok := r2.Device("hostA"); !ok {
		t.Fatal("device lost across restart")
	}
	// Ontology must be rebuilt: a semantic query works post-restart.
	rows, err := r2.Query(`(?r rdf:type imcl:Printer)`)
	if err != nil || len(rows) != 1 {
		t.Fatalf("ontology not rebuilt: %v, %v", rows, err)
	}
}

func TestRemoteClientOverLocalFabric(t *testing.T) {
	clk := vclock.NewVirtual(time.Unix(0, 0))
	net := netsim.New(clk)
	if _, err := net.AddHost("hostA", "lab", netsim.Pentium4_1700(), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := net.AddHost("regHost", "lab", netsim.PentiumM_1600(), 0); err != nil {
		t.Fatal(err)
	}
	fab := transport.NewLocalFabric(net)
	defer fab.Close()

	srvEp, err := fab.Attach("registry", "regHost")
	if err != nil {
		t.Fatal(err)
	}
	newReg(t).Serve(srvEp)

	cliEp, err := fab.Attach("agentA", "hostA")
	if err != nil {
		t.Fatal(err)
	}
	cli := NewClient(cliEp, "registry")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	if err := cli.RegisterApp(ctx, AppRecord{Name: "player", Host: "hostA", Description: testDesc("player")}); err != nil {
		t.Fatal(err)
	}
	rec, found, err := cli.LookupApp(ctx, "player", "hostA")
	if err != nil || !found || rec.Name != "player" {
		t.Fatalf("remote LookupApp = %+v, %v, %v", rec, found, err)
	}

	if err := cli.RegisterResource(ctx, owl.Resource{ID: "prn", Class: rdf.IMCL("Printer"), Host: "hostA", Substitutable: true}); err != nil {
		t.Fatal(err)
	}
	res, err := cli.ResourcesOnHost(ctx, "hostA")
	if err != nil || len(res) != 1 {
		t.Fatalf("remote ResourcesOnHost = %v, %v", res, err)
	}

	if err := cli.RegisterDevice(ctx, wsdl.DeviceProfile{Host: "hostA", MemoryMB: 128}); err != nil {
		t.Fatal(err)
	}
	dev, ok, err := cli.Device(ctx, "hostA")
	if err != nil || !ok || dev.MemoryMB != 128 {
		t.Fatalf("remote Device = %+v, %v, %v", dev, ok, err)
	}

	rows, err := cli.Query(ctx, `(?r rdf:type imcl:Printer)`)
	if err != nil || len(rows) != 1 {
		t.Fatalf("remote Query = %v, %v", rows, err)
	}

	plan, err := cli.PlanRebinding(ctx, res[0], "hostA", owl.MatchSemantic)
	if err != nil || plan.Action != owl.RebindUseLocal {
		t.Fatalf("remote PlanRebinding = %+v, %v", plan, err)
	}

	recs, err := cli.FindApp(ctx, "player")
	if err != nil || len(recs) != 1 {
		t.Fatalf("remote FindApp = %v, %v", recs, err)
	}
	apps, err := cli.AppsOnHost(ctx, "hostA")
	if err != nil || len(apps) != 1 {
		t.Fatalf("remote AppsOnHost = %v, %v", apps, err)
	}
	if err := cli.UnregisterApp(ctx, "player", "hostA"); err != nil {
		t.Fatal(err)
	}
	if _, found, _ := cli.LookupApp(ctx, "player", "hostA"); found {
		t.Fatal("app survived remote unregister")
	}
}

func TestRemoteErrorsPropagate(t *testing.T) {
	fab := transport.NewLocalFabric(nil)
	defer fab.Close()
	srvEp, err := fab.Attach("registry", "")
	if err != nil {
		t.Fatal(err)
	}
	newReg(t).Serve(srvEp)
	cliEp, err := fab.Attach("cli", "")
	if err != nil {
		t.Fatal(err)
	}
	cli := NewClient(cliEp, "registry")
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := cli.RegisterApp(ctx, AppRecord{}); err == nil {
		t.Fatal("invalid app accepted remotely")
	}
	if _, err := cli.Query(ctx, "((("); err == nil {
		t.Fatal("broken query accepted remotely")
	}
}
