// Package space models smart spaces: rooms served by hosts, grouped into
// administrative spaces bridged by gateways (paper §3.2, Fig. 1 — one
// smart space covers a specific area; "Migration across the space boundary
// requires additional gateway support"). The Directory answers the two
// questions autonomous agents ask when a user moves: which host serves the
// room the user entered, and is that host in the same space or across a
// gateway.
package space

import (
	"fmt"
	"sort"
	"sync"
)

// Space is one administrative smart space.
type Space struct {
	Name    string
	Gateway string // gateway host id ("" when the space has none)
}

// Directory maps rooms to serving hosts and hosts to spaces.
type Directory struct {
	mu         sync.RWMutex
	spaces     map[string]*Space
	hostSpace  map[string]string // host -> space
	roomHost   map[string]string // room -> serving host
	hostsRooms map[string][]string
}

// NewDirectory returns an empty directory.
func NewDirectory() *Directory {
	return &Directory{
		spaces:     make(map[string]*Space),
		hostSpace:  make(map[string]string),
		roomHost:   make(map[string]string),
		hostsRooms: make(map[string][]string),
	}
}

// AddSpace declares a space.
func (d *Directory) AddSpace(name string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, dup := d.spaces[name]; dup {
		return fmt.Errorf("space: %q already exists", name)
	}
	d.spaces[name] = &Space{Name: name}
	return nil
}

// SetGateway names the gateway host of a space.
func (d *Directory) SetGateway(spaceName, gatewayHost string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	s, ok := d.spaces[spaceName]
	if !ok {
		return fmt.Errorf("space: unknown space %q", spaceName)
	}
	s.Gateway = gatewayHost
	return nil
}

// AddHost places a host in a space.
func (d *Directory) AddHost(host, spaceName string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.spaces[spaceName]; !ok {
		return fmt.Errorf("space: unknown space %q", spaceName)
	}
	if existing, dup := d.hostSpace[host]; dup {
		return fmt.Errorf("space: host %q already in space %q", host, existing)
	}
	d.hostSpace[host] = spaceName
	return nil
}

// AssignRoom declares that a room is served by a host (the machine an
// application migrates to when the user enters the room).
func (d *Directory) AssignRoom(room, host string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.hostSpace[host]; !ok {
		return fmt.Errorf("space: unknown host %q", host)
	}
	if existing, dup := d.roomHost[room]; dup {
		return fmt.Errorf("space: room %q already served by %q", room, existing)
	}
	d.roomHost[room] = host
	d.hostsRooms[host] = append(d.hostsRooms[host], room)
	return nil
}

// HostForRoom returns the host serving a room.
func (d *Directory) HostForRoom(room string) (string, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	h, ok := d.roomHost[room]
	return h, ok
}

// SpaceOfHost returns the space a host belongs to.
func (d *Directory) SpaceOfHost(host string) (string, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	s, ok := d.hostSpace[host]
	return s, ok
}

// RoomsOfHost lists the rooms a host serves, sorted.
func (d *Directory) RoomsOfHost(host string) []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	rooms := make([]string, len(d.hostsRooms[host]))
	copy(rooms, d.hostsRooms[host])
	sort.Strings(rooms)
	return rooms
}

// Spaces lists space names, sorted.
func (d *Directory) Spaces() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]string, 0, len(d.spaces))
	for n := range d.spaces {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Gateway returns a space's gateway host.
func (d *Directory) Gateway(spaceName string) (string, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	s, ok := d.spaces[spaceName]
	if !ok || s.Gateway == "" {
		return "", false
	}
	return s.Gateway, true
}

// CrossesSpaces reports whether moving between two hosts crosses a space
// boundary, and whether the crossing is possible (both spaces need
// gateways). Same-space moves are always possible.
func (d *Directory) CrossesSpaces(fromHost, toHost string) (crosses, possible bool, err error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	sa, ok := d.hostSpace[fromHost]
	if !ok {
		return false, false, fmt.Errorf("space: unknown host %q", fromHost)
	}
	sb, ok := d.hostSpace[toHost]
	if !ok {
		return false, false, fmt.Errorf("space: unknown host %q", toHost)
	}
	if sa == sb {
		return false, true, nil
	}
	gwA := d.spaces[sa].Gateway
	gwB := d.spaces[sb].Gateway
	return true, gwA != "" && gwB != "", nil
}
