package space

import "testing"

func labDirectory(t *testing.T) *Directory {
	t.Helper()
	d := NewDirectory()
	for _, s := range []string{"lab-space", "meeting-space"} {
		if err := d.AddSpace(s); err != nil {
			t.Fatal(err)
		}
	}
	for host, sp := range map[string]string{
		"hostA": "lab-space", "hostB": "lab-space",
		"gwLab": "lab-space", "hostC": "meeting-space", "gwMeet": "meeting-space",
	} {
		if err := d.AddHost(host, sp); err != nil {
			t.Fatal(err)
		}
	}
	for room, host := range map[string]string{
		"office821": "hostA", "office822": "hostB", "meetingRoom1": "hostC",
	} {
		if err := d.AssignRoom(room, host); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

func TestDirectoryLookups(t *testing.T) {
	d := labDirectory(t)
	if h, ok := d.HostForRoom("office821"); !ok || h != "hostA" {
		t.Fatalf("HostForRoom = %q, %v", h, ok)
	}
	if _, ok := d.HostForRoom("atlantis"); ok {
		t.Fatal("unknown room resolved")
	}
	if s, ok := d.SpaceOfHost("hostC"); !ok || s != "meeting-space" {
		t.Fatalf("SpaceOfHost = %q, %v", s, ok)
	}
	if got := d.Spaces(); len(got) != 2 || got[0] != "lab-space" {
		t.Fatalf("Spaces = %v", got)
	}
	if rooms := d.RoomsOfHost("hostA"); len(rooms) != 1 || rooms[0] != "office821" {
		t.Fatalf("RoomsOfHost = %v", rooms)
	}
}

func TestDirectoryValidation(t *testing.T) {
	d := labDirectory(t)
	if err := d.AddSpace("lab-space"); err == nil {
		t.Fatal("duplicate space accepted")
	}
	if err := d.AddHost("hostA", "lab-space"); err == nil {
		t.Fatal("duplicate host accepted")
	}
	if err := d.AddHost("hostZ", "void"); err == nil {
		t.Fatal("host in unknown space accepted")
	}
	if err := d.AssignRoom("office821", "hostB"); err == nil {
		t.Fatal("double room assignment accepted")
	}
	if err := d.AssignRoom("newRoom", "ghostHost"); err == nil {
		t.Fatal("room on unknown host accepted")
	}
	if err := d.SetGateway("void", "x"); err == nil {
		t.Fatal("gateway on unknown space accepted")
	}
}

func TestCrossesSpaces(t *testing.T) {
	d := labDirectory(t)
	crosses, possible, err := d.CrossesSpaces("hostA", "hostB")
	if err != nil || crosses || !possible {
		t.Fatalf("same-space = %v %v %v", crosses, possible, err)
	}
	// Inter-space without gateways: crossing impossible.
	crosses, possible, err = d.CrossesSpaces("hostA", "hostC")
	if err != nil || !crosses || possible {
		t.Fatalf("no-gateway crossing = %v %v %v", crosses, possible, err)
	}
	// Install gateways on both sides: now possible.
	if err := d.SetGateway("lab-space", "gwLab"); err != nil {
		t.Fatal(err)
	}
	if err := d.SetGateway("meeting-space", "gwMeet"); err != nil {
		t.Fatal(err)
	}
	crosses, possible, err = d.CrossesSpaces("hostA", "hostC")
	if err != nil || !crosses || !possible {
		t.Fatalf("gateway crossing = %v %v %v", crosses, possible, err)
	}
	if gw, ok := d.Gateway("lab-space"); !ok || gw != "gwLab" {
		t.Fatalf("Gateway = %q, %v", gw, ok)
	}
	if _, ok := d.Gateway("void"); ok {
		t.Fatal("gateway of unknown space found")
	}
	if _, _, err := d.CrossesSpaces("ghost", "hostA"); err == nil {
		t.Fatal("unknown from-host accepted")
	}
	if _, _, err := d.CrossesSpaces("hostA", "ghost"); err == nil {
		t.Fatal("unknown to-host accepted")
	}
}
