// Package state is MDAgent's unified state pipeline: one versioned,
// checksummed codec for every serialized application-state frame (the
// mobile agent's Wrap bundles and the snapshot manager's TaggedSnapshots),
// and a Replicator that streams each running application's latest snapshot
// to its smart space's registry center, whence the federation's
// push/anti-entropy channel carries it to every peer space. Failover
// re-homing (internal/cluster) restores the freshest replicated snapshot
// instead of a bare skeleton, so an application resumes where it left off
// even when its host crashes — the paper's "resume where the user left
// off" promise extended from graceful migration to host failure.
//
// Before this package, three serialization paths had diverged: follow-me
// shipped raw-gob Wraps, clone-dispatch re-encoded the same shape
// separately, and failover shipped nothing at all. Every frame now goes
// through EncodeWrap/EncodeSnapshot, which prepend a magic + version +
// CRC32 header, so a torn or corrupted frame is detected at decode time
// instead of silently restoring garbage state, and future frame-format
// changes can coexist with old persisted frames.
package state

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"

	"mdagent/internal/app"
)

// Codec errors, wrapped with frame detail.
var (
	// ErrBadFrame marks a frame too short or without the MDST magic.
	ErrBadFrame = errors.New("state: not a state frame")
	// ErrVersion marks a frame written by a newer codec than this build.
	ErrVersion = errors.New("state: unsupported frame version")
	// ErrKind marks a frame of the wrong kind (e.g. a snapshot frame
	// passed to DecodeWrap).
	ErrKind = errors.New("state: wrong frame kind")
	// ErrChecksum marks a frame whose payload failed CRC verification.
	ErrChecksum = errors.New("state: frame checksum mismatch")
	// ErrBaseMismatch marks a delta that does not apply to the offered
	// base state (wrong application or digest) — the receiver must fall
	// back to requesting a full frame.
	ErrBaseMismatch = errors.New("state: delta base mismatch")
	// ErrNeedFull is returned by a Publisher that cannot apply a delta
	// put (no base, or a base the delta was not computed against); the
	// replicator reacts by re-publishing a full frame.
	ErrNeedFull = errors.New("state: publisher needs a full frame")
	// ErrNotDurable is returned by a Publisher (or federation write)
	// running a synchronous write concern when the write landed locally
	// but fewer peers than the concern requires acknowledged it in time.
	// The write is NOT lost — anti-entropy keeps retrying delivery — but
	// it would not survive the local center dying first. The replicator
	// reacts by re-queueing the capture instead of advancing its acked
	// base, so the state is re-published until a put meets the concern.
	ErrNotDurable = errors.New("state: write acknowledged locally but not durable")
)

// frameVersion is the current frame-format version. Decoders accept any
// version up to this one (there is only one so far).
const frameVersion = 1

// frameKind tags what a frame's payload decodes into.
type frameKind uint8

const (
	frameWrap     frameKind = 1 // app.Wrap (mobile-agent bundle)
	frameSnapshot frameKind = 2 // app.TaggedSnapshot (snapshot manager)
	frameDelta    frameKind = 3 // state.WrapDelta (changed components only)
)

// magic identifies MDAgent state frames ("MDST").
var magic = [4]byte{'M', 'D', 'S', 'T'}

// headerLen = magic(4) + version(1) + kind(1) + crc32(4).
const headerLen = 10

// encodeFrame gob-encodes payload and prepends the framing header.
func encodeFrame(kind frameKind, payload any) ([]byte, error) {
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(payload); err != nil {
		return nil, fmt.Errorf("state: encode frame: %w", err)
	}
	frame := make([]byte, headerLen, headerLen+body.Len())
	copy(frame[0:4], magic[:])
	frame[4] = frameVersion
	frame[5] = byte(kind)
	binary.BigEndian.PutUint32(frame[6:10], crc32.ChecksumIEEE(body.Bytes()))
	return append(frame, body.Bytes()...), nil
}

// verifyFrame validates the header and payload checksum, returning the
// payload body. It is the single source of truth for frame validation —
// both the decoders and the cheap pre-restore check go through it.
func verifyFrame(raw []byte, kind frameKind) ([]byte, error) {
	if len(raw) < headerLen || !bytes.Equal(raw[0:4], magic[:]) {
		return nil, fmt.Errorf("%w (%d bytes)", ErrBadFrame, len(raw))
	}
	if v := raw[4]; v == 0 || v > frameVersion {
		return nil, fmt.Errorf("%w: frame v%d, codec v%d", ErrVersion, raw[4], frameVersion)
	}
	if got := frameKind(raw[5]); got != kind {
		return nil, fmt.Errorf("%w: frame kind %d, want %d", ErrKind, got, kind)
	}
	body := raw[headerLen:]
	if sum := crc32.ChecksumIEEE(body); sum != binary.BigEndian.Uint32(raw[6:10]) {
		return nil, fmt.Errorf("%w: payload crc %08x, header %08x", ErrChecksum,
			sum, binary.BigEndian.Uint32(raw[6:10]))
	}
	return body, nil
}

// decodeFrame verifies the header and checksum, then gob-decodes the
// payload into out.
func decodeFrame(raw []byte, kind frameKind, out any) error {
	body, err := verifyFrame(raw, kind)
	if err != nil {
		return err
	}
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(out); err != nil {
		return fmt.Errorf("state: decode frame: %w", err)
	}
	return nil
}

// EncodeWrap serializes a mobile-agent wrap for transfer — the frame
// follow-me and clone-dispatch put on the wire.
func EncodeWrap(w app.Wrap) ([]byte, error) {
	return encodeFrame(frameWrap, w)
}

// DecodeWrap verifies and deserializes a transferred wrap frame.
func DecodeWrap(raw []byte) (app.Wrap, error) {
	var w app.Wrap
	if err := decodeFrame(raw, frameWrap, &w); err != nil {
		return app.Wrap{}, err
	}
	return w, nil
}

// VerifySnapshot checks a snapshot frame's header and payload checksum
// without the cost of a full gob decode — failover uses it to validate a
// multi-megabyte frame before committing to a restore.
func VerifySnapshot(raw []byte) error {
	_, err := verifyFrame(raw, frameSnapshot)
	return err
}

// EncodeSnapshot serializes a tagged snapshot — the frame the Replicator
// streams to registry centers and failover restores from.
func EncodeSnapshot(ts app.TaggedSnapshot) ([]byte, error) {
	return encodeFrame(frameSnapshot, ts)
}

// DecodeSnapshot verifies and deserializes a replicated snapshot frame.
func DecodeSnapshot(raw []byte) (app.TaggedSnapshot, error) {
	var ts app.TaggedSnapshot
	if err := decodeFrame(raw, frameSnapshot, &ts); err != nil {
		return app.TaggedSnapshot{}, err
	}
	return ts, nil
}
