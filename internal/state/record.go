package state

import (
	"context"
	"crypto/sha256"
	"fmt"
	"time"

	"mdagent/internal/app"
)

// SnapshotRecord is one application's replicated snapshot as stored and
// federated by the registry centers: a full base frame plus a bounded
// chain of delta frames on top of it, with the provenance failover needs
// to pick the freshest copy. The record is always restorable alone —
// Snapshot() reassembles base and chain — and the writing center
// compacts long or heavy chains into fresh bases, so chains stay short.
type SnapshotRecord struct {
	App   string
	Host  string // host that captured the newest state
	Space string // smart space of that host
	// Seq is a capture sequence assigned by the registry center the
	// record was written to (monotone per app at each center); it breaks
	// ties between concurrently replicated snapshots deterministically.
	// Seq - BaseSeq == len(Deltas).
	Seq uint64
	At  time.Time // newest capture time on the capturing host's clock

	// Frame is the EncodeSnapshot base frame (full wrap, checksummed).
	Frame []byte
	// BaseSeq is the capture sequence Frame corresponds to.
	BaseSeq uint64
	// Deltas are EncodeDelta frames applying in order on top of Frame;
	// each is digest-chained to the state before it.
	Deltas [][]byte
	// StateDigest is the canonical WrapDigest of the newest state (Frame
	// with Deltas applied) — the base the next delta put must match.
	StateDigest [sha256.Size]byte

	// Durable marks this copy as known to have met a synchronous write
	// concern: the writing center collected the required peer acks,
	// stamped its stored record, and broadcast a best-effort confirm so
	// peers holding the same version stamp theirs too (a push-time copy
	// carries false — acks had not returned yet). Failover uses it to
	// prefer a consensus-safe record over a fresher copy that only ever
	// existed on one center.
	Durable bool
}

// Snapshot reassembles the record's newest state: decode the base frame,
// then apply each delta in order (every step digest-checked). Any
// failure — torn frame, checksum, base mismatch from a reordered chain —
// surfaces as an error so callers degrade to a skeleton relaunch rather
// than restoring garbage.
func (r SnapshotRecord) Snapshot() (app.TaggedSnapshot, error) {
	ts, err := DecodeSnapshot(r.Frame)
	if err != nil {
		return app.TaggedSnapshot{}, err
	}
	for i, raw := range r.Deltas {
		d, err := DecodeDelta(raw)
		if err != nil {
			return app.TaggedSnapshot{}, fmt.Errorf("state: delta %d/%d: %w", i+1, len(r.Deltas), err)
		}
		ts.Wrap, err = ApplyDelta(ts.Wrap, d)
		if err != nil {
			return app.TaggedSnapshot{}, fmt.Errorf("state: delta %d/%d: %w", i+1, len(r.Deltas), err)
		}
	}
	if len(r.Deltas) > 0 {
		ts.At = r.At
	}
	return ts, nil
}

// Verify checks every frame's header and checksum without decoding —
// the cheap pre-restore validation failover runs before committing to a
// multi-megabyte reassembly.
func (r SnapshotRecord) Verify() error {
	if err := VerifySnapshot(r.Frame); err != nil {
		return err
	}
	for i, raw := range r.Deltas {
		if err := VerifyDelta(raw); err != nil {
			return fmt.Errorf("state: delta %d/%d: %w", i+1, len(r.Deltas), err)
		}
	}
	return nil
}

// FrameBytes reports the record's total serialized state size (base
// frame plus delta chain).
func (r SnapshotRecord) FrameBytes() int {
	n := len(r.Frame)
	for _, d := range r.Deltas {
		n += len(d)
	}
	return n
}

// SnapshotHead is a snapshot record's metadata without its frames — what
// the control plane lists when an operator asks for snapshot heads, and
// what crosses the wire where a full record would be megabytes.
type SnapshotHead struct {
	App   string
	Host  string
	Space string
	Seq   uint64
	// BaseSeq is the capture sequence of the record's full base frame;
	// Seq - BaseSeq deltas are chained on top.
	BaseSeq uint64
	// Chain is the number of delta frames on the record.
	Chain int
	// Bytes is the record's total serialized state size (base + chain).
	Bytes int
	// Durable marks the record as known to have met a synchronous write
	// concern (see SnapshotRecord.Durable).
	Durable bool
	At      time.Time
}

// Head strips a record to its listable metadata.
func (r SnapshotRecord) Head() SnapshotHead {
	return SnapshotHead{
		App: r.App, Host: r.Host, Space: r.Space,
		Seq: r.Seq, BaseSeq: r.BaseSeq, Chain: len(r.Deltas),
		Bytes: r.FrameBytes(), Durable: r.Durable, At: r.At,
	}
}

// SnapshotPut is one publish from a host's replicator: either a full
// base frame (Delta false) or a delta frame against the publisher's
// last acked state (Delta true). Digests let the publisher and the
// center agree on the chain without either re-serializing anything.
type SnapshotPut struct {
	App   string
	Host  string
	Space string
	At    time.Time
	// Delta marks Frame as an EncodeDelta frame; otherwise it is an
	// EncodeSnapshot full frame.
	Delta bool
	Frame []byte
	// BaseDigest (delta puts only) is the canonical digest of the state
	// the delta applies to — the publisher's view of the center's newest
	// state. A center holding anything else refuses with ErrNeedFull.
	BaseDigest [sha256.Size]byte
	// NewDigest is the canonical digest of the state after this put.
	NewDigest [sha256.Size]byte
	// Concern requests a write durability level for this put ("async",
	// "one", "quorum"); empty defers to the publisher's configured
	// default. Remote publishers (cluster.SnapshotClient) carry it over
	// the wire as the put's write-concern header; a center refuses an
	// unknown value outright.
	Concern string
}

// SnapshotStamp is the center's acknowledgement of a put: the assigned
// capture sequence and the stored record's chain shape. Deliberately
// light — the reply to a remote put must not carry the multi-megabyte
// record back over the wire.
type SnapshotStamp struct {
	Seq     uint64
	BaseSeq uint64
	Chain   int // deltas on the stored record after this put
}

// Publisher is where a Replicator writes snapshot puts —
// *cluster.Center satisfies it in-process and cluster.SnapshotClient
// over the wire: versioning each record with a vclock.Version,
// persisting it through the center's store, and replicating it to every
// peer space over the federation's push and anti-entropy channels.
type Publisher interface {
	// PutSnapshot applies one put to the app's stored record, returning
	// the stamp. A delta put whose BaseDigest does not match the stored
	// record's newest state fails with ErrNeedFull (wrapped), telling
	// the replicator to re-publish a full frame.
	PutSnapshot(ctx context.Context, put SnapshotPut) (SnapshotStamp, error)
	// DropSnapshot tombstones an app's snapshot federation-wide — the
	// graceful-stop path, so failover never resurrects a stopped app.
	DropSnapshot(ctx context.Context, appName, host string) error
}
