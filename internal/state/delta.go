package state

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"mdagent/internal/app"
)

// WrapDelta is the changed-components-only form of a wrap: everything a
// capture must ship when the receiver already holds the base state the
// delta was computed against. Coordinator state and the user profile are
// small and always ride along whole; only component payloads — the
// megabytes — are elided when unchanged. BaseDigest pins the exact base:
// ApplyDelta refuses to overlay a delta onto any other state, so a
// reordered or mis-routed delta degrades to a full-frame retransmission
// instead of silently reassembling garbage.
type WrapDelta struct {
	App        string
	FromHost   string
	BaseDigest [sha256.Size]byte // WrapDigest of the base wrap
	Components map[string][]byte // changed components only
	Kinds      map[string]app.ComponentKind
	CoordState map[string]string
	Profile    app.UserProfile
}

// TotalBytes reports the delta payload size (component bytes + coord
// state), mirroring Wrap.TotalBytes.
func (d WrapDelta) TotalBytes() int64 {
	var n int64
	for _, b := range d.Components {
		n += int64(len(b))
	}
	for k, v := range d.CoordState {
		n += int64(len(k) + len(v))
	}
	return n
}

// EncodeDelta serializes a delta frame — what the replicator ships to
// its center and a warm follow-me handoff puts on the wire.
func EncodeDelta(d WrapDelta) ([]byte, error) {
	return encodeFrame(frameDelta, d)
}

// DecodeDelta verifies and deserializes a delta frame.
func DecodeDelta(raw []byte) (WrapDelta, error) {
	var d WrapDelta
	if err := decodeFrame(raw, frameDelta, &d); err != nil {
		return WrapDelta{}, err
	}
	return d, nil
}

// VerifyDelta checks a delta frame's header and payload checksum without
// a full gob decode.
func VerifyDelta(raw []byte) error {
	_, err := verifyFrame(raw, frameDelta)
	return err
}

// ApplyDelta reassembles the full wrap a delta describes: the base wrap
// with the changed components overlaid and coordinator state and profile
// replaced. The base's canonical digest must match the delta's
// BaseDigest (ErrBaseMismatch otherwise) — applying a delta to the wrong
// base is the one way this pipeline could restore wrong state, so it is
// checked at every reassembly site. The returned wrap shares no maps
// with the base, which stays usable as a base for later deltas.
func ApplyDelta(base app.Wrap, d WrapDelta) (app.Wrap, error) {
	if base.App != d.App {
		return app.Wrap{}, fmt.Errorf("%w: delta for %q, base for %q", ErrBaseMismatch, d.App, base.App)
	}
	if got := WrapDigest(base); got != d.BaseDigest {
		return app.Wrap{}, fmt.Errorf("%w: base digest %x, delta wants %x", ErrBaseMismatch, got[:4], d.BaseDigest[:4])
	}
	out := app.Wrap{
		App:        d.App,
		FromHost:   d.FromHost,
		Components: make(map[string][]byte, len(base.Components)+len(d.Components)),
		Kinds:      make(map[string]app.ComponentKind, len(base.Kinds)+len(d.Kinds)),
		CoordState: make(map[string]string, len(d.CoordState)),
		Profile:    d.Profile,
	}
	for n, b := range base.Components {
		out.Components[n] = b
		out.Kinds[n] = base.Kinds[n]
	}
	for n, b := range d.Components {
		out.Components[n] = b
		out.Kinds[n] = d.Kinds[n]
	}
	for k, v := range d.CoordState {
		out.CoordState[k] = v
	}
	return out, nil
}

// ComponentDigest hashes one component's serialized content with its
// kind — the per-component unit WrapDigest is built from, maintained
// incrementally by the replicator so unchanged components are never
// re-hashed (let alone re-serialized).
func ComponentDigest(kind app.ComponentKind, data []byte) [sha256.Size]byte {
	h := sha256.New()
	_ = binary.Write(h, binary.BigEndian, int32(kind))
	_ = binary.Write(h, binary.BigEndian, uint32(len(data)))
	_, _ = h.Write(data)
	var sum [sha256.Size]byte
	copy(sum[:], h.Sum(nil))
	return sum
}

// WrapDigest hashes a wrap's content canonically: a sorted walk over
// per-component digests, coordinator state, and profile. It is
// content-only (FromHost excluded), so the same application state
// digests identically wherever it was captured. CombineDigests computes
// the identical value from pre-computed component digests.
func WrapDigest(w app.Wrap) [sha256.Size]byte {
	sums := make(map[string][sha256.Size]byte, len(w.Components))
	for n, b := range w.Components {
		sums[n] = ComponentDigest(w.Kinds[n], b)
	}
	return CombineDigests(w.App, sums, w.CoordState, w.Profile)
}

// CombineDigests folds per-component digests plus coordinator state and
// profile into the canonical wrap digest. Gob encodes maps in random
// order, so hashing an encoded frame would defeat deduplication; this
// walk is deterministic.
func CombineDigests(appName string, comps map[string][sha256.Size]byte, coord map[string]string, profile app.UserProfile) [sha256.Size]byte {
	h := sha256.New()
	writeField := func(s string) {
		_ = binary.Write(h, binary.BigEndian, uint32(len(s)))
		_, _ = io.WriteString(h, s)
	}
	writeField(appName)
	names := make([]string, 0, len(comps))
	for n := range comps {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		writeField(n)
		sum := comps[n]
		_, _ = h.Write(sum[:])
	}
	keys := make([]string, 0, len(coord))
	for k := range coord {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		writeField(k)
		writeField(coord[k])
	}
	writeField(profile.User)
	prefs := make([]string, 0, len(profile.Preferences))
	for k := range profile.Preferences {
		prefs = append(prefs, k)
	}
	sort.Strings(prefs)
	for _, k := range prefs {
		writeField(k)
		writeField(profile.Preferences[k])
	}
	var sum [sha256.Size]byte
	copy(sum[:], h.Sum(nil))
	return sum
}
