package state

import (
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"sync"
	"time"

	"mdagent/internal/app"
	"mdagent/internal/obs"
	"mdagent/internal/vclock"
)

// Tuning parameterizes the replicator's delta pipeline. The zero value
// takes the defaults below.
type Tuning struct {
	// RebaseEvery forces a full base frame after this many consecutive
	// delta publishes for one app (default 8), bounding how long a
	// restore chain can grow even if the center never compacts.
	RebaseEvery int
	// RebaseFraction forces a full base frame when the delta bytes
	// accumulated since the last base exceed this fraction of the base
	// frame's size (default 0.5) — past that point a fresh base is
	// cheaper than the chain it replaces.
	RebaseFraction float64
	// BudgetBytesPerSec is the size-aware capture cadence: after a
	// publish of B bytes, the app's next periodic capture is deferred
	// B/budget seconds, so a multi-megabyte app is captured less often
	// than a chatty small one under the same acked-bytes budget. Only
	// the periodic loop is paced — explicit SyncNow/Capture calls (and
	// the OnRecord immediate path) always publish, so callers that need
	// bounded replication lag still get it. 0 takes the default
	// (64 MB/s); negative disables pacing.
	BudgetBytesPerSec int64
	// FullFrames disables the delta pipeline entirely (every publish is
	// a full frame, the pre-delta behaviour) — the benchmark baseline.
	FullFrames bool
}

func (t Tuning) withDefaults() Tuning {
	if t.RebaseEvery <= 0 {
		t.RebaseEvery = 8
	}
	if t.RebaseFraction <= 0 {
		t.RebaseFraction = 0.5
	}
	if t.BudgetBytesPerSec == 0 {
		t.BudgetBytesPerSec = 64 << 20
	}
	return t
}

// Stats counts what the replicator shipped and, as importantly, what it
// avoided shipping — the delta pipeline's whole point.
type Stats struct {
	Publishes      int64 // successful puts (full + delta)
	FullFrames     int64
	DeltaFrames    int64
	BytesPublished int64 // frame bytes actually put (full + delta)
	FullBytes      int64
	DeltaBytes     int64
	SkippedClean   int64 // captures skipped with zero serialization (dirty fast path)
	SkippedDigest  int64 // serialized but content-identical (digest dedupe)
	SkippedBudget  int64 // periodic captures deferred by the byte budget
	Rebaselines    int64 // full frames forced by the chain length/size policy
	// NotDurable counts puts the publisher accepted locally but could not
	// replicate to the peers its write concern requires (ErrNotDurable).
	// Each one leaves the acked base untouched, so the capture re-queues
	// and the state is re-published until a put meets the concern.
	NotDurable int64
}

// track is one app's publisher-side view of the replication chain.
type track struct {
	inst     *app.Application             // instance the fast-path counter belongs to
	haveBase bool                         // a full frame has been acked
	digest   [sha256.Size]byte            // canonical digest of the last acked state
	compSums map[string][sha256.Size]byte // per-component digests of that state
	// changeSeq is inst.ChangeSeq() at the last acked capture; valid
	// only while seqValid (same instance, fully tracked components).
	changeSeq  uint64
	seqValid   bool
	ackedSeq   uint64 // center-assigned capture sequence
	baseSeq    uint64 // the stored record's base sequence at the last ack
	chain      int    // deltas on the center's record since its base
	baseBytes  int    // size of the last full frame published
	deltaBytes int64  // delta frame bytes accumulated since the last (re)base
	nextAt     time.Time
}

// Replicator streams one host's application snapshots to its space's
// registry center. It captures every running application on a fixed
// interval and additionally forwards every snapshot the SnapshotManager
// records explicitly (pre-migrate, user-left), so the replicated copy is
// at most one interval — often zero — behind the live state.
//
// Captures are delta-pipelined end to end: an application whose dirty
// counter has not moved is skipped without serializing a byte; a changed
// application has only its changed components serialized (enumerated by
// the per-component counters) and shipped as a checksummed delta frame
// against the last acked base, re-baselining to a full frame every
// Tuning.RebaseEvery deltas or when the chain outweighs
// Tuning.RebaseFraction of the base. A center that cannot apply a delta
// (restart, conflicting writer) answers ErrNeedFull and the replicator
// falls back to a full frame in the same capture.
type Replicator struct {
	host     string
	space    string
	apps     func() []*app.Application // running apps on this host
	pub      Publisher
	clock    vclock.Clock
	interval time.Duration
	tune     Tuning

	mu        sync.Mutex
	hooked    map[*app.Application]int // instance -> its OnRecord hook id
	onPublish func(SnapshotPut, SnapshotStamp)

	// pubMu serializes publishes: it is held across the capture, the
	// Publisher call, and the bookkeeping update, so concurrent captures
	// (periodic loop vs. OnRecord hook) publish one at a time and a
	// retirement cannot interleave with an in-flight publish.
	pubMu   sync.Mutex
	tracks  map[string]*track
	retired map[string]bool // gracefully stopped apps: refuse publishes
	stats   Stats

	// Process-wide metrics, pinned at construction so the hot paths pay
	// one atomic add. mSkipClean is the only one on the idle fast path.
	mPublishes  *obs.Counter
	mDeltaBytes *obs.Counter
	mFullBytes  *obs.Counter
	mNotDurable *obs.Counter
	mSkipClean  *obs.Counter

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
}

// NewReplicator creates a replicator for host (in space) over the running
// apps listed by apps, publishing to pub every interval once started.
// clock stamps capture times (nil defaults to real time); tune
// parameterizes the delta pipeline (zero value = defaults).
func NewReplicator(host, space string, apps func() []*app.Application, pub Publisher, clock vclock.Clock, interval time.Duration, tune Tuning) *Replicator {
	if clock == nil {
		clock = &vclock.Real{}
	}
	if interval <= 0 {
		interval = 250 * time.Millisecond
	}
	return &Replicator{
		host:     host,
		space:    space,
		apps:     apps,
		pub:      pub,
		clock:    clock,
		interval: interval,
		tune:     tune.withDefaults(),
		tracks:   make(map[string]*track),
		retired:  make(map[string]bool),
		hooked:   make(map[*app.Application]int),
		stop:     make(chan struct{}),

		mPublishes:  obs.Default.Counter("mdagent_repl_publishes_total", "host", host),
		mDeltaBytes: obs.Default.Counter("mdagent_repl_delta_bytes_total", "host", host),
		mFullBytes:  obs.Default.Counter("mdagent_repl_full_bytes_total", "host", host),
		mNotDurable: obs.Default.Counter("mdagent_repl_notdurable_total", "host", host),
		mSkipClean:  obs.Default.Counter("mdagent_repl_skipped_clean_total", "host", host),
	}
}

// OnPublish registers an observer called after each successful publish
// (internal/core bridges it onto the context kernel as
// cluster.state.replicated events).
func (r *Replicator) OnPublish(f func(SnapshotPut, SnapshotStamp)) {
	r.mu.Lock()
	r.onPublish = f
	r.mu.Unlock()
}

// Stats returns a copy of the replication counters.
func (r *Replicator) Stats() Stats {
	r.pubMu.Lock()
	defer r.pubMu.Unlock()
	return r.stats
}

// Start launches the periodic capture loop.
func (r *Replicator) Start() {
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		t := time.NewTicker(r.interval)
		defer t.Stop()
		for {
			select {
			case <-r.stop:
				return
			case <-t.C:
				ctx, cancel := context.WithTimeout(context.Background(), r.interval*4+time.Second)
				_ = r.sync(ctx, false)
				cancel()
			}
		}
	}()
}

// Stop halts the capture loop (idempotent).
func (r *Replicator) Stop() {
	r.stopOnce.Do(func() { close(r.stop) })
	r.wg.Wait()
}

// SyncNow captures and publishes every running application's current
// state once, synchronously, ignoring the byte-budget cadence (only the
// periodic loop is paced). Unchanged applications cost nothing. Tests
// and benches call it to bound replication lag deterministically.
func (r *Replicator) SyncNow(ctx context.Context) error {
	return r.sync(ctx, true)
}

// sync is one capture sweep; force bypasses the byte-budget cadence.
func (r *Replicator) sync(ctx context.Context, force bool) error {
	var firstErr error
	current := make(map[*app.Application]bool)
	for _, inst := range r.apps() {
		current[inst] = true
		r.observe(inst)
		pending, err := r.capture(ctx, inst, force)
		r.notify(pending)
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	r.pruneHooks(current)
	return firstErr
}

// observe attaches (once per instance) to the instance's SnapshotManager
// so explicitly recorded snapshots replicate immediately. Keyed by
// pointer: a re-homed replacement instance under the same name gets its
// own hook.
func (r *Replicator) observe(inst *app.Application) {
	r.mu.Lock()
	if _, ok := r.hooked[inst]; ok {
		r.mu.Unlock()
		return
	}
	r.hooked[inst] = 0 // reserved; real id recorded below
	r.mu.Unlock()
	id := inst.Snapshots().OnRecord(func(ts app.TaggedSnapshot) {
		// The instance object survives migration to another host's engine
		// (in-process deployments share pointers), so publish only while
		// this host still runs it.
		if !r.owns(inst) {
			return
		}
		// Off the recording goroutine: Record fires mid-migration inside
		// the suspend window, which must not pay for a state encode and a
		// center write. pubMu serializes with the periodic loop, and any
		// misordering self-heals within one capture interval. Untracked
		// on purpose (like the federation's pushAsync): a publish racing
		// Stop fails harmlessly, and tying it to r.wg would race Stop's
		// Wait.
		go func() {
			ctx, cancel := context.WithTimeout(context.Background(), r.interval*4+time.Second)
			defer cancel()
			r.pubMu.Lock()
			pending, _ := r.publishWrapLocked(ctx, inst, ts.Wrap, ts.At, ts.ChangeSeq, inst.FullyTracked(), false)
			r.pubMu.Unlock()
			r.notify(pending)
		}()
	})
	r.mu.Lock()
	r.hooked[inst] = id
	r.mu.Unlock()
}

// pruneHooks detaches the OnRecord hooks of instances no longer running
// on this host (migrated away, stopped), so a long-lived daemon does not
// retain dead instances — and their component state — indefinitely.
func (r *Replicator) pruneHooks(current map[*app.Application]bool) {
	r.mu.Lock()
	var gone []*app.Application
	for inst := range r.hooked {
		if !current[inst] {
			gone = append(gone, inst)
		}
	}
	ids := make([]int, len(gone))
	for i, inst := range gone {
		ids[i] = r.hooked[inst]
		delete(r.hooked, inst)
	}
	r.mu.Unlock()
	for i, inst := range gone {
		if ids[i] != 0 {
			inst.Snapshots().RemoveOnRecord(ids[i])
		}
	}
}

// owns reports whether the instance is currently listed on this host.
func (r *Replicator) owns(inst *app.Application) bool {
	for _, a := range r.apps() {
		if a == inst {
			return true
		}
	}
	return false
}

// Capture publishes the instance's current state if it changed since the
// last acked capture. The capture is crash-consistent (per-component
// locking, no suspension): replication must not disturb a running
// application. The dirty fast path makes an unchanged application cost
// one counter read — no serialization, no hashing, no publisher call.
// Explicit Capture calls ignore the byte-budget cadence (only the
// periodic loop is paced).
func (r *Replicator) Capture(ctx context.Context, inst *app.Application) error {
	pending, err := r.capture(ctx, inst, true)
	r.notify(pending)
	return err
}

// capture is Capture with pacing control; it returns the notification to
// fire once pubMu is released — publish observers run arbitrary kernel
// subscribers, which must be free to call back into the replicator
// (Stats, Retire via StopApp) without self-deadlocking on pubMu.
func (r *Replicator) capture(ctx context.Context, inst *app.Application, force bool) (*pendingPublish, error) {
	appName := inst.Name()
	r.pubMu.Lock()
	defer r.pubMu.Unlock()
	if r.retired[appName] {
		return nil, nil
	}
	tr := r.tracks[appName]
	if !force && tr != nil && !tr.nextAt.IsZero() && time.Now().Before(tr.nextAt) {
		r.stats.SkippedBudget++
		return nil, nil // size-aware cadence: this app's byte budget is spent
	}
	// Read the counter before any serialization: a mutation landing
	// mid-capture then looks newer than what we ship and re-captures.
	seqNow := inst.ChangeSeq()
	tracked := inst.FullyTracked()
	if tr != nil && tr.haveBase && tr.seqValid && tr.inst == inst && tracked && tr.changeSeq == seqNow {
		r.stats.SkippedClean++
		r.mSkipClean.Inc()
		return nil, nil
	}

	// Cheapest viable capture: with a valid counter baseline, serialize
	// only the components that changed since it.
	if tr != nil && tr.haveBase && tr.seqValid && tr.inst == inst && tracked && !r.tune.FullFrames {
		changed := inst.ChangedSince(tr.changeSeq)
		if changed == nil {
			changed = []string{} // coordinator/profile-only change: empty component set
		}
		w, err := inst.WrapComponents(changed)
		if err != nil {
			return nil, fmt.Errorf("state: capture %s: %w", appName, err)
		}
		return r.publishWrapLocked(ctx, inst, w, r.clock.Now(), seqNow, tracked, true)
	}

	// No usable baseline (first capture, untracked components, restart,
	// or full-frame mode): serialize everything; publishWrapLocked still
	// ships a delta when the acked base allows it.
	w, err := inst.WrapComponents(nil)
	if err != nil {
		return nil, fmt.Errorf("state: capture %s: %w", appName, err)
	}
	return r.publishWrapLocked(ctx, inst, w, r.clock.Now(), seqNow, tracked, false)
}

// pendingPublish is a successful publish awaiting its observer
// notification, fired only after pubMu is released.
type pendingPublish struct {
	put   SnapshotPut
	stamp SnapshotStamp
}

// publishWrapLocked ships one captured wrap (partial — changed
// components only — or full) as a delta frame when the publisher holds
// the matching base, else as a full frame. Callers hold pubMu and fire
// the returned notification after releasing it.
//
// partial marks w as containing only the components changed since the
// track's baseline; a full frame can then only be built by re-wrapping
// the instance.
func (r *Replicator) publishWrapLocked(ctx context.Context, inst *app.Application, w app.Wrap, at time.Time, seq uint64, seqValid, partial bool) (*pendingPublish, error) {
	appName := w.App
	if r.retired[appName] {
		return nil, nil // gracefully stopped: nothing may overwrite the tombstone
	}
	tr := r.tracks[appName]
	if tr == nil {
		tr = &track{}
		r.tracks[appName] = tr
	}

	// Fold this capture's component digests over the acked state's.
	sums := make(map[string][sha256.Size]byte, len(tr.compSums)+len(w.Components))
	if partial {
		for n, s := range tr.compSums {
			sums[n] = s
		}
	}
	for n, b := range w.Components {
		sums[n] = ComponentDigest(w.Kinds[n], b)
	}
	digest := CombineDigests(appName, sums, w.CoordState, w.Profile)
	if tr.haveBase && digest == tr.digest {
		// Content-identical (counter moved but values did not, or an
		// explicit snapshot of already-replicated state).
		r.stats.SkippedDigest++
		r.noteAcked(tr, inst, seq, seqValid, sums, digest)
		return nil, nil
	}

	// The delta's component set: a partial wrap already holds exactly the
	// changed components; a full wrap is trimmed to the ones whose
	// digests moved. A component missing from a full wrap (not expressible
	// by an overlay delta) forces a full frame.
	dComps, dKinds := w.Components, w.Kinds
	useDelta := tr.haveBase && !r.tune.FullFrames
	if useDelta && !partial {
		dComps = make(map[string][]byte)
		dKinds = make(map[string]app.ComponentKind)
		for n, b := range w.Components {
			if tr.compSums[n] != sums[n] {
				dComps[n] = b
				dKinds[n] = w.Kinds[n]
			}
		}
		for n := range tr.compSums {
			if _, ok := w.Components[n]; !ok {
				useDelta = false // component vanished: overlay cannot express it
				break
			}
		}
	}
	if useDelta {
		var deltaSize int64
		for _, b := range dComps {
			deltaSize += int64(len(b))
		}
		if tr.chain+1 > r.tune.RebaseEvery ||
			float64(tr.deltaBytes)+float64(deltaSize) > r.tune.RebaseFraction*float64(tr.baseBytes) {
			r.stats.Rebaselines++
			useDelta = false
		}
	}
	if useDelta {
		frame, err := EncodeDelta(WrapDelta{
			App: appName, FromHost: w.FromHost, BaseDigest: tr.digest,
			Components: dComps, Kinds: dKinds,
			CoordState: w.CoordState, Profile: w.Profile,
		})
		if err != nil {
			return nil, err
		}
		put := SnapshotPut{
			App: appName, Host: r.host, Space: r.space, At: at,
			Delta: true, Frame: frame, BaseDigest: tr.digest, NewDigest: digest,
		}
		stamp, err := r.pub.PutSnapshot(ctx, put)
		switch {
		case err == nil:
			r.stats.Publishes++
			r.stats.DeltaFrames++
			r.stats.BytesPublished += int64(len(frame))
			r.stats.DeltaBytes += int64(len(frame))
			r.mPublishes.Inc()
			r.mDeltaBytes.Add(int64(len(frame)))
			tr.digest = digest
			tr.compSums = sums
			tr.ackedSeq = stamp.Seq
			tr.chain = stamp.Chain
			if stamp.BaseSeq != tr.baseSeq || stamp.Chain == 0 {
				// The center re-based (compacted the chain into a fresh
				// base) since our last ack: the size-fraction account
				// starts over.
				tr.baseSeq = stamp.BaseSeq
				tr.deltaBytes = int64(len(frame))
			} else {
				tr.deltaBytes += int64(len(frame))
			}
			r.noteAcked(tr, inst, seq, seqValid, sums, digest)
			r.paceLocked(tr, len(frame))
			return &pendingPublish{put: put, stamp: stamp}, nil
		case errors.Is(err, ErrNotDurable):
			// The center stored the delta but could not replicate it to
			// the peers the write concern requires. Do NOT advance the
			// acked base: the next capture re-queues this state (the
			// center's copy moved past our base, so the retry degrades to
			// a full frame) until a put meets the concern. Pace the retry
			// like a publish so the loop honors the byte budget.
			r.stats.NotDurable++
			r.mNotDurable.Inc()
			r.paceLocked(tr, len(frame))
			return nil, nil
		case errors.Is(err, ErrNeedFull):
			// The center lost or diverged from our base (restart, a
			// conflicting writer won): fall through to a full frame now.
			tr.haveBase = false
		default:
			return nil, fmt.Errorf("state: replicate %s: %w", appName, err)
		}
	}

	// Full frame. A partial wrap cannot become one — re-wrap everything.
	full := w
	if partial {
		var err error
		full, err = inst.WrapComponents(nil)
		if err != nil {
			return nil, fmt.Errorf("state: capture %s: %w", appName, err)
		}
		sums = make(map[string][sha256.Size]byte, len(full.Components))
		for n, b := range full.Components {
			sums[n] = ComponentDigest(full.Kinds[n], b)
		}
		digest = CombineDigests(appName, sums, full.CoordState, full.Profile)
	}
	frame, err := EncodeSnapshot(app.TaggedSnapshot{Tag: "replica", At: at, Wrap: full, ChangeSeq: seq})
	if err != nil {
		return nil, err
	}
	put := SnapshotPut{
		App: appName, Host: r.host, Space: r.space, At: at,
		Frame: frame, NewDigest: digest,
	}
	stamp, err := r.pub.PutSnapshot(ctx, put)
	if errors.Is(err, ErrNotDurable) {
		// Landed locally, short of its write concern: re-queue (see the
		// delta path above) rather than advancing the acked base.
		r.stats.NotDurable++
		r.mNotDurable.Inc()
		r.paceLocked(tr, len(frame))
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("state: replicate %s: %w", appName, err)
	}
	r.stats.Publishes++
	r.stats.FullFrames++
	r.stats.BytesPublished += int64(len(frame))
	r.stats.FullBytes += int64(len(frame))
	r.mPublishes.Inc()
	r.mFullBytes.Add(int64(len(frame)))
	tr.haveBase = true
	tr.digest = digest
	tr.compSums = sums
	tr.ackedSeq = stamp.Seq
	tr.baseSeq = stamp.BaseSeq
	tr.chain = 0
	tr.baseBytes = len(frame)
	tr.deltaBytes = 0
	r.noteAcked(tr, inst, seq, seqValid, sums, digest)
	r.paceLocked(tr, len(frame))
	return &pendingPublish{put: put, stamp: stamp}, nil
}

// noteAcked records the counter baseline the next dirty fast path checks
// against. Callers hold pubMu.
func (r *Replicator) noteAcked(tr *track, inst *app.Application, seq uint64, seqValid bool, sums map[string][sha256.Size]byte, digest [sha256.Size]byte) {
	tr.inst = inst
	tr.changeSeq = seq
	tr.seqValid = seqValid && inst != nil
	tr.compSums = sums
	tr.digest = digest
}

// paceLocked defers the app's next periodic capture in proportion to the
// bytes just published. Callers hold pubMu. Wall-clock on purpose, not
// r.clock: the capture loop runs on a real ticker even under virtual
// clocks (a virtual clock advances only by charged costs and would
// freeze the deferral window forever), so the pacing window must be
// measured on the same axis the loop runs on.
func (r *Replicator) paceLocked(tr *track, frameBytes int) {
	if r.tune.BudgetBytesPerSec <= 0 {
		return
	}
	delay := time.Duration(float64(frameBytes) / float64(r.tune.BudgetBytesPerSec) * float64(time.Second))
	tr.nextAt = time.Now().Add(delay)
}

// notify invokes the publish observer, outside every replicator lock:
// observers run arbitrary kernel subscribers, which must be free to call
// back into the replicator (Stats, SyncNow, Retire via StopApp) without
// self-deadlocking.
func (r *Replicator) notify(p *pendingPublish) {
	if p == nil {
		return
	}
	r.mu.Lock()
	f := r.onPublish
	r.mu.Unlock()
	if f != nil {
		f(p.put, p.stamp)
	}
}

// Retire tombstones an app's replicated snapshot — call it when the
// application stops gracefully on this host. Further publishes for the
// app are refused (even ones already captured and racing this call)
// until Reinstate, so the tombstone cannot be overwritten by a stale
// in-flight snapshot.
func (r *Replicator) Retire(ctx context.Context, appName string) error {
	r.pubMu.Lock()
	r.retired[appName] = true
	delete(r.tracks, appName)
	r.pubMu.Unlock()
	return r.pub.DropSnapshot(ctx, appName, r.host)
}

// Reinstate lifts an app's retirement — call it when the application is
// deliberately started again on this host, re-enabling replication.
func (r *Replicator) Reinstate(appName string) {
	r.pubMu.Lock()
	delete(r.retired, appName)
	r.pubMu.Unlock()
}

// ForceRepublish forgets an app's replication baseline so the next
// capture publishes a full frame even if its content is unchanged — used
// when a superseded replica's stale snapshot may have claimed the
// federation's latest slot and must be re-superseded by the live copy.
func (r *Replicator) ForceRepublish(appName string) {
	r.pubMu.Lock()
	delete(r.tracks, appName)
	r.pubMu.Unlock()
}
