package state

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"mdagent/internal/app"
	"mdagent/internal/vclock"
)

// SnapshotRecord is one application's replicated snapshot as stored and
// federated by the registry centers: the codec-framed TaggedSnapshot plus
// the provenance failover needs to pick the freshest copy.
type SnapshotRecord struct {
	App   string
	Host  string // host that captured the snapshot
	Space string // smart space the capturing host belonged to
	// Seq is a capture sequence assigned by the registry center the
	// record was written to (monotone per app at each center); it breaks
	// ties between concurrently replicated snapshots deterministically.
	Seq   uint64
	At    time.Time // capture time on the capturing host's clock
	Frame []byte    // EncodeSnapshot frame (checksummed)
}

// Snapshot decodes the framed snapshot carried by the record.
func (r SnapshotRecord) Snapshot() (app.TaggedSnapshot, error) {
	return DecodeSnapshot(r.Frame)
}

// Publisher is where a Replicator writes snapshot records —
// *cluster.Center satisfies it, versioning each record with a
// vclock.Version, persisting it through the center's store, and
// replicating it to every peer space over the federation's push and
// anti-entropy channels.
type Publisher interface {
	// PutSnapshot writes (or overwrites) an app's latest snapshot,
	// returning the record as stamped (sequence assigned).
	PutSnapshot(ctx context.Context, rec SnapshotRecord) (SnapshotRecord, error)
	// DropSnapshot tombstones an app's snapshot federation-wide — the
	// graceful-stop path, so failover never resurrects a stopped app.
	DropSnapshot(ctx context.Context, appName, host string) error
}

// Replicator streams one host's application snapshots to its space's
// registry center. It captures every running application on a fixed
// interval (skipping publishes when nothing changed) and additionally
// forwards every snapshot the SnapshotManager records explicitly
// (pre-migrate, user-left), so the replicated copy is at most one
// interval — often zero — behind the live state.
type Replicator struct {
	host     string
	space    string
	apps     func() []*app.Application // running apps on this host
	pub      Publisher
	clock    vclock.Clock
	interval time.Duration

	mu        sync.Mutex
	hooked    map[*app.Application]int // instance -> its OnRecord hook id
	onPublish func(SnapshotRecord)

	// pubMu serializes publishes: it is held across the digest check, the
	// Publisher call, and the bookkeeping update, so concurrent captures
	// (periodic loop vs. OnRecord hook) publish one at a time and a
	// retirement cannot interleave with an in-flight publish. If racing
	// captures land out of order, the stale one holds "latest" for at
	// most one interval: the next periodic capture's digest differs from
	// lastSum and republishes the live state.
	pubMu   sync.Mutex
	lastSum map[string][sha256.Size]byte // app -> digest of last published wrap
	retired map[string]bool              // gracefully stopped apps: refuse publishes

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
}

// NewReplicator creates a replicator for host (in space) over the running
// apps listed by apps, publishing to pub every interval once started.
// clock stamps capture times (nil defaults to real time).
func NewReplicator(host, space string, apps func() []*app.Application, pub Publisher, clock vclock.Clock, interval time.Duration) *Replicator {
	if clock == nil {
		clock = &vclock.Real{}
	}
	if interval <= 0 {
		interval = 250 * time.Millisecond
	}
	return &Replicator{
		host:     host,
		space:    space,
		apps:     apps,
		pub:      pub,
		clock:    clock,
		interval: interval,
		lastSum:  make(map[string][sha256.Size]byte),
		retired:  make(map[string]bool),
		hooked:   make(map[*app.Application]int),
		stop:     make(chan struct{}),
	}
}

// OnPublish registers an observer called after each successful publish
// (internal/core bridges it onto the context kernel as
// cluster.state.replicated events).
func (r *Replicator) OnPublish(f func(SnapshotRecord)) {
	r.mu.Lock()
	r.onPublish = f
	r.mu.Unlock()
}

// Start launches the periodic capture loop.
func (r *Replicator) Start() {
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		t := time.NewTicker(r.interval)
		defer t.Stop()
		for {
			select {
			case <-r.stop:
				return
			case <-t.C:
				ctx, cancel := context.WithTimeout(context.Background(), r.interval*4+time.Second)
				_ = r.SyncNow(ctx)
				cancel()
			}
		}
	}()
}

// Stop halts the capture loop (idempotent).
func (r *Replicator) Stop() {
	r.stopOnce.Do(func() { close(r.stop) })
	r.wg.Wait()
}

// SyncNow captures and publishes every running application's current
// state once, synchronously. Unchanged applications are skipped. Tests
// and benches call it to bound replication lag deterministically.
func (r *Replicator) SyncNow(ctx context.Context) error {
	var firstErr error
	current := make(map[*app.Application]bool)
	for _, inst := range r.apps() {
		current[inst] = true
		r.observe(inst)
		if err := r.Capture(ctx, inst); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	r.pruneHooks(current)
	return firstErr
}

// observe attaches (once per instance) to the instance's SnapshotManager
// so explicitly recorded snapshots replicate immediately. Keyed by
// pointer: a re-homed replacement instance under the same name gets its
// own hook.
func (r *Replicator) observe(inst *app.Application) {
	r.mu.Lock()
	if _, ok := r.hooked[inst]; ok {
		r.mu.Unlock()
		return
	}
	r.hooked[inst] = 0 // reserved; real id recorded below
	r.mu.Unlock()
	id := inst.Snapshots().OnRecord(func(ts app.TaggedSnapshot) {
		// The instance object survives migration to another host's engine
		// (in-process deployments share pointers), so publish only while
		// this host still runs it.
		if !r.owns(inst) {
			return
		}
		// Off the recording goroutine: Record fires mid-migration inside
		// the suspend window, which must not pay for a full-state encode
		// and a center write. pubMu serializes with the periodic loop,
		// and any misordering self-heals within one capture interval.
		// Untracked on purpose (like the federation's pushAsync): a
		// publish racing Stop fails harmlessly, and tying it to r.wg
		// would race Stop's Wait.
		go func() {
			ctx, cancel := context.WithTimeout(context.Background(), r.interval*4+time.Second)
			defer cancel()
			_ = r.publish(ctx, ts)
		}()
	})
	r.mu.Lock()
	r.hooked[inst] = id
	r.mu.Unlock()
}

// pruneHooks detaches the OnRecord hooks of instances no longer running
// on this host (migrated away, stopped), so a long-lived daemon does not
// retain dead instances — and their component state — indefinitely.
func (r *Replicator) pruneHooks(current map[*app.Application]bool) {
	r.mu.Lock()
	var gone []*app.Application
	for inst := range r.hooked {
		if !current[inst] {
			gone = append(gone, inst)
		}
	}
	ids := make([]int, len(gone))
	for i, inst := range gone {
		ids[i] = r.hooked[inst]
		delete(r.hooked, inst)
	}
	r.mu.Unlock()
	for i, inst := range gone {
		if ids[i] != 0 {
			inst.Snapshots().RemoveOnRecord(ids[i])
		}
	}
}

// owns reports whether the instance is currently listed on this host.
func (r *Replicator) owns(inst *app.Application) bool {
	for _, a := range r.apps() {
		if a == inst {
			return true
		}
	}
	return false
}

// Capture wraps the instance's full current state and publishes it if it
// differs from the last published snapshot. The capture is
// crash-consistent (per-component locking, no suspension): replication
// must not disturb a running application.
func (r *Replicator) Capture(ctx context.Context, inst *app.Application) error {
	w, err := inst.WrapComponents(nil)
	if err != nil {
		return fmt.Errorf("state: capture %s: %w", inst.Name(), err)
	}
	return r.publish(ctx, app.TaggedSnapshot{Tag: "replica", At: r.clock.Now(), Wrap: w})
}

// wrapDigest hashes a wrap's content canonically (sorted map walks — gob
// encodes maps in random iteration order, so hashing an encoded frame
// would defeat deduplication).
func wrapDigest(w app.Wrap) [sha256.Size]byte {
	h := sha256.New()
	writeField := func(s string) {
		_ = binary.Write(h, binary.BigEndian, uint32(len(s)))
		_, _ = io.WriteString(h, s)
	}
	writeField(w.App)
	writeField(w.FromHost)
	names := make([]string, 0, len(w.Components))
	for n := range w.Components {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		writeField(n)
		_ = binary.Write(h, binary.BigEndian, int32(w.Kinds[n]))
		_ = binary.Write(h, binary.BigEndian, uint32(len(w.Components[n])))
		_, _ = h.Write(w.Components[n])
	}
	keys := make([]string, 0, len(w.CoordState))
	for k := range w.CoordState {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		writeField(k)
		writeField(w.CoordState[k])
	}
	writeField(w.Profile.User)
	prefs := make([]string, 0, len(w.Profile.Preferences))
	for k := range w.Profile.Preferences {
		prefs = append(prefs, k)
	}
	sort.Strings(prefs)
	for _, k := range prefs {
		writeField(k)
		writeField(w.Profile.Preferences[k])
	}
	var sum [sha256.Size]byte
	copy(sum[:], h.Sum(nil))
	return sum
}

// publish frames and ships one snapshot, deduplicating on wrap content.
// Serialized under pubMu so the publisher sees captures in order and a
// retirement cannot interleave with an in-flight publish.
func (r *Replicator) publish(ctx context.Context, ts app.TaggedSnapshot) error {
	sum := wrapDigest(ts.Wrap)
	appName := ts.Wrap.App
	r.pubMu.Lock()
	if r.retired[appName] {
		r.pubMu.Unlock()
		return nil // gracefully stopped: nothing may overwrite the tombstone
	}
	if r.lastSum[appName] == sum {
		r.pubMu.Unlock()
		return nil
	}
	frame, err := EncodeSnapshot(ts)
	if err != nil {
		r.pubMu.Unlock()
		return err
	}
	stamped, err := r.pub.PutSnapshot(ctx, SnapshotRecord{
		App: appName, Host: r.host, Space: r.space, At: ts.At, Frame: frame,
	})
	if err != nil {
		r.pubMu.Unlock()
		return fmt.Errorf("state: replicate %s: %w", appName, err)
	}
	r.lastSum[appName] = sum
	r.pubMu.Unlock()
	// Callback outside pubMu: it runs arbitrary kernel subscribers, which
	// must be free to call back into the replicator (e.g. Retire via
	// StopApp) without self-deadlocking.
	r.mu.Lock()
	f := r.onPublish
	r.mu.Unlock()
	if f != nil {
		f(stamped)
	}
	return nil
}

// Retire tombstones an app's replicated snapshot — call it when the
// application stops gracefully on this host. Further publishes for the
// app are refused (even ones already captured and racing this call)
// until Reinstate, so the tombstone cannot be overwritten by a stale
// in-flight snapshot.
func (r *Replicator) Retire(ctx context.Context, appName string) error {
	r.pubMu.Lock()
	r.retired[appName] = true
	delete(r.lastSum, appName)
	r.pubMu.Unlock()
	return r.pub.DropSnapshot(ctx, appName, r.host)
}

// Reinstate lifts an app's retirement — call it when the application is
// deliberately started again on this host, re-enabling replication.
func (r *Replicator) Reinstate(appName string) {
	r.pubMu.Lock()
	delete(r.retired, appName)
	r.pubMu.Unlock()
}

// ForceRepublish forgets an app's dedupe digest so the next capture
// publishes even if its content is unchanged — used when a superseded
// replica's stale snapshot may have claimed the federation's latest
// slot and must be re-superseded by the live copy.
func (r *Replicator) ForceRepublish(appName string) {
	r.pubMu.Lock()
	delete(r.lastSum, appName)
	r.pubMu.Unlock()
}
