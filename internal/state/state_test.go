package state_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"mdagent/internal/app"
	"mdagent/internal/state"
	"mdagent/internal/wsdl"
)

func testApp(t *testing.T, name, host string) *app.Application {
	t.Helper()
	a := app.New(name, host, wsdl.Description{Name: name})
	st := app.NewState("st")
	st.Set("cursor", "7")
	if err := a.AddComponent(st); err != nil {
		t.Fatal(err)
	}
	if err := a.AddComponent(app.NewBlob("data", app.KindData, []byte("payload"))); err != nil {
		t.Fatal(err)
	}
	a.Coordinator().Set("track", "t1")
	return a
}

func TestWrapFrameRoundTrip(t *testing.T) {
	a := testApp(t, "x", "h1")
	w, err := a.WrapComponents(nil)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := state.EncodeWrap(w)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := state.DecodeWrap(raw)
	if err != nil {
		t.Fatal(err)
	}
	b := app.New("x", "h2", wsdl.Description{Name: "x"})
	if err := b.Unwrap(w2); err != nil {
		t.Fatal(err)
	}
	st, ok := b.Component("st")
	if !ok {
		t.Fatal("state component lost in transfer")
	}
	if v, _ := st.(*app.StateComponent).Get("cursor"); v != "7" {
		t.Fatalf("restored cursor = %q, want 7", v)
	}
	if v, _ := b.Coordinator().Get("track"); v != "t1" {
		t.Fatalf("restored coord track = %q, want t1", v)
	}
}

func TestSnapshotFrameRoundTrip(t *testing.T) {
	a := testApp(t, "x", "h1")
	w, err := a.WrapComponents(nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := app.TaggedSnapshot{Tag: "replica", At: time.Unix(42, 0), Wrap: w}
	raw, err := state.EncodeSnapshot(ts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := state.DecodeSnapshot(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tag != "replica" || !got.At.Equal(ts.At) || got.Wrap.App != "x" {
		t.Fatalf("snapshot round trip = %+v", got)
	}
}

func TestDecodeRejectsGarbageTamperingAndWrongKind(t *testing.T) {
	a := testApp(t, "x", "h1")
	w, _ := a.WrapComponents(nil)
	raw, err := state.EncodeWrap(w)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := state.DecodeWrap([]byte("garbage")); !errors.Is(err, state.ErrBadFrame) {
		t.Fatalf("garbage: err = %v, want ErrBadFrame", err)
	}
	if _, err := state.DecodeWrap(nil); !errors.Is(err, state.ErrBadFrame) {
		t.Fatalf("nil: err = %v, want ErrBadFrame", err)
	}

	// Flip one payload byte: the checksum must catch it.
	tampered := append([]byte(nil), raw...)
	tampered[len(tampered)-1] ^= 0xFF
	if _, err := state.DecodeWrap(tampered); !errors.Is(err, state.ErrChecksum) {
		t.Fatalf("tampered: err = %v, want ErrChecksum", err)
	}

	// A wrap frame is not a snapshot frame.
	if _, err := state.DecodeSnapshot(raw); !errors.Is(err, state.ErrKind) {
		t.Fatalf("wrong kind: err = %v, want ErrKind", err)
	}

	// A frame from a future codec version is refused, not misparsed.
	future := append([]byte(nil), raw...)
	future[4] = 99
	if _, err := state.DecodeWrap(future); !errors.Is(err, state.ErrVersion) {
		t.Fatalf("future version: err = %v, want ErrVersion", err)
	}
}

// fakePublisher records snapshot traffic, assigning sequences like a
// registry center.
type fakePublisher struct {
	mu    sync.Mutex
	puts  []state.SnapshotRecord
	drops []string
	seq   map[string]uint64
}

func newFakePublisher() *fakePublisher {
	return &fakePublisher{seq: make(map[string]uint64)}
}

func (p *fakePublisher) PutSnapshot(_ context.Context, rec state.SnapshotRecord) (state.SnapshotRecord, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.seq[rec.App]++
	rec.Seq = p.seq[rec.App]
	p.puts = append(p.puts, rec)
	return rec, nil
}

func (p *fakePublisher) DropSnapshot(_ context.Context, appName, _ string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.drops = append(p.drops, appName)
	return nil
}

func (p *fakePublisher) putCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.puts)
}

func (p *fakePublisher) lastPut() (state.SnapshotRecord, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.puts) == 0 {
		return state.SnapshotRecord{}, false
	}
	return p.puts[len(p.puts)-1], true
}

func TestReplicatorPublishesAndDeduplicates(t *testing.T) {
	a := testApp(t, "player", "h1")
	pub := newFakePublisher()
	rep := state.NewReplicator("h1", "lab", func() []*app.Application { return []*app.Application{a} },
		pub, nil, time.Hour /* manual syncs only */)
	ctx := context.Background()

	if err := rep.SyncNow(ctx); err != nil {
		t.Fatal(err)
	}
	if pub.putCount() != 1 {
		t.Fatalf("puts after first sync = %d, want 1", pub.putCount())
	}
	rec, _ := pub.lastPut()
	if rec.App != "player" || rec.Host != "h1" || rec.Space != "lab" || rec.Seq != 1 {
		t.Fatalf("published record = %+v", rec)
	}
	ts, err := rec.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if v := ts.Wrap.CoordState["track"]; v != "t1" {
		t.Fatalf("replicated coord track = %q, want t1", v)
	}

	// Unchanged state: no new publish.
	if err := rep.SyncNow(ctx); err != nil {
		t.Fatal(err)
	}
	if pub.putCount() != 1 {
		t.Fatalf("puts after idle sync = %d, want 1 (dedupe)", pub.putCount())
	}

	// Changed state: republished.
	a.Coordinator().Set("track", "t2")
	if err := rep.SyncNow(ctx); err != nil {
		t.Fatal(err)
	}
	if pub.putCount() != 2 {
		t.Fatalf("puts after state change = %d, want 2", pub.putCount())
	}
}

func TestReplicatorForwardsRecordedSnapshots(t *testing.T) {
	a := testApp(t, "player", "h1")
	owned := true
	var mu sync.Mutex
	pub := newFakePublisher()
	rep := state.NewReplicator("h1", "lab", func() []*app.Application {
		mu.Lock()
		defer mu.Unlock()
		if !owned {
			return nil
		}
		return []*app.Application{a}
	}, pub, nil, time.Hour)
	ctx := context.Background()
	if err := rep.SyncNow(ctx); err != nil { // attaches the OnRecord hook
		t.Fatal(err)
	}
	base := pub.putCount()

	// An explicitly recorded snapshot (e.g. pre-migrate) replicates
	// promptly (async, off the recording goroutine), without waiting for
	// the next capture interval.
	a.Coordinator().Set("track", "t3")
	if _, err := a.Snapshots().Record("pre-migrate", time.Unix(50, 0)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for pub.putCount() != base+1 {
		if time.Now().After(deadline) {
			t.Fatalf("puts after Record = %d, want %d", pub.putCount(), base+1)
		}
		time.Sleep(time.Millisecond)
	}

	// Once the app leaves this host, recorded snapshots no longer publish
	// through this replicator.
	mu.Lock()
	owned = false
	mu.Unlock()
	a.Coordinator().Set("track", "t4")
	if _, err := a.Snapshots().Record("post-departure", time.Unix(60, 0)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // would-be async publish window
	if pub.putCount() != base+1 {
		t.Fatalf("departed app still replicated: puts = %d, want %d", pub.putCount(), base+1)
	}
}

func TestReplicatorRetireTombstones(t *testing.T) {
	a := testApp(t, "player", "h1")
	pub := newFakePublisher()
	rep := state.NewReplicator("h1", "lab", func() []*app.Application { return []*app.Application{a} },
		pub, nil, time.Hour)
	ctx := context.Background()
	if err := rep.SyncNow(ctx); err != nil {
		t.Fatal(err)
	}
	if err := rep.Retire(ctx, "player"); err != nil {
		t.Fatal(err)
	}
	pub.mu.Lock()
	drops := append([]string(nil), pub.drops...)
	pub.mu.Unlock()
	if len(drops) != 1 || drops[0] != "player" {
		t.Fatalf("drops = %v, want [player]", drops)
	}
	// Retire also forgets the dedupe hash: a deliberately restarted app
	// (Reinstate) republishes even with identical content.
	rep.Reinstate("player")
	if err := rep.SyncNow(ctx); err != nil {
		t.Fatal(err)
	}
	if pub.putCount() != 2 {
		t.Fatalf("puts after retire+reinstate+sync = %d, want 2", pub.putCount())
	}
}

func TestReplicatorPeriodicLoop(t *testing.T) {
	a := testApp(t, "player", "h1")
	pub := newFakePublisher()
	rep := state.NewReplicator("h1", "lab", func() []*app.Application { return []*app.Application{a} },
		pub, nil, 2*time.Millisecond)
	published := make(chan state.SnapshotRecord, 16)
	rep.OnPublish(func(sr state.SnapshotRecord) {
		select {
		case published <- sr:
		default:
		}
	})
	rep.Start()
	defer rep.Stop()
	select {
	case sr := <-published:
		if sr.App != "player" {
			t.Fatalf("published app = %q", sr.App)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("periodic loop never published")
	}
}

func TestRetireBlocksLatePublishesUntilReinstate(t *testing.T) {
	a := testApp(t, "player", "h1")
	pub := newFakePublisher()
	rep := state.NewReplicator("h1", "lab", func() []*app.Application { return []*app.Application{a} },
		pub, nil, time.Hour)
	ctx := context.Background()
	if err := rep.SyncNow(ctx); err != nil {
		t.Fatal(err)
	}
	if err := rep.Retire(ctx, "player"); err != nil {
		t.Fatal(err)
	}
	// A capture racing the stop (here: arriving after Retire) must not
	// overwrite the tombstone.
	a.Coordinator().Set("track", "post-stop")
	if err := rep.SyncNow(ctx); err != nil {
		t.Fatal(err)
	}
	if pub.putCount() != 1 {
		t.Fatalf("puts after retire = %d, want 1 (publish refused)", pub.putCount())
	}
	// A deliberate restart lifts the retirement.
	rep.Reinstate("player")
	if err := rep.SyncNow(ctx); err != nil {
		t.Fatal(err)
	}
	if pub.putCount() != 2 {
		t.Fatalf("puts after reinstate = %d, want 2", pub.putCount())
	}
}

func TestVerifySnapshotCheapCheck(t *testing.T) {
	a := testApp(t, "x", "h1")
	w, _ := a.WrapComponents(nil)
	snap, err := state.EncodeSnapshot(app.TaggedSnapshot{Tag: "r", At: time.Unix(1, 0), Wrap: w})
	if err != nil {
		t.Fatal(err)
	}
	if err := state.VerifySnapshot(snap); err != nil {
		t.Fatalf("valid frame rejected: %v", err)
	}
	tampered := append([]byte(nil), snap...)
	tampered[len(tampered)-1] ^= 0xFF
	if err := state.VerifySnapshot(tampered); !errors.Is(err, state.ErrChecksum) {
		t.Fatalf("tampered: err = %v, want ErrChecksum", err)
	}
	wrapFrame, _ := state.EncodeWrap(w)
	if err := state.VerifySnapshot(wrapFrame); !errors.Is(err, state.ErrKind) {
		t.Fatalf("wrap frame: err = %v, want ErrKind", err)
	}
	if err := state.VerifySnapshot([]byte("junk")); !errors.Is(err, state.ErrBadFrame) {
		t.Fatalf("junk: err = %v, want ErrBadFrame", err)
	}
}
