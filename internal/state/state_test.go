package state_test

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mdagent/internal/app"
	"mdagent/internal/state"
	"mdagent/internal/wsdl"
)

func testApp(t *testing.T, name, host string) *app.Application {
	t.Helper()
	a := app.New(name, host, wsdl.Description{Name: name})
	st := app.NewState("st")
	st.Set("cursor", "7")
	if err := a.AddComponent(st); err != nil {
		t.Fatal(err)
	}
	if err := a.AddComponent(app.NewBlob("data", app.KindData, []byte("payload"))); err != nil {
		t.Fatal(err)
	}
	a.Coordinator().Set("track", "t1")
	return a
}

func mustWrap(t *testing.T, a *app.Application) app.Wrap {
	t.Helper()
	w, err := a.WrapComponents(nil)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestWrapFrameRoundTrip(t *testing.T) {
	a := testApp(t, "x", "h1")
	w := mustWrap(t, a)
	raw, err := state.EncodeWrap(w)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := state.DecodeWrap(raw)
	if err != nil {
		t.Fatal(err)
	}
	b := app.New("x", "h2", wsdl.Description{Name: "x"})
	if err := b.Unwrap(w2); err != nil {
		t.Fatal(err)
	}
	st, ok := b.Component("st")
	if !ok {
		t.Fatal("state component lost in transfer")
	}
	if v, _ := st.(*app.StateComponent).Get("cursor"); v != "7" {
		t.Fatalf("restored cursor = %q, want 7", v)
	}
	if v, _ := b.Coordinator().Get("track"); v != "t1" {
		t.Fatalf("restored coord track = %q, want t1", v)
	}
}

func TestSnapshotFrameRoundTrip(t *testing.T) {
	a := testApp(t, "x", "h1")
	w := mustWrap(t, a)
	ts := app.TaggedSnapshot{Tag: "replica", At: time.Unix(42, 0), Wrap: w}
	raw, err := state.EncodeSnapshot(ts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := state.DecodeSnapshot(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tag != "replica" || !got.At.Equal(ts.At) || got.Wrap.App != "x" {
		t.Fatalf("snapshot round trip = %+v", got)
	}
}

func TestDecodeRejectsGarbageTamperingAndWrongKind(t *testing.T) {
	a := testApp(t, "x", "h1")
	raw, err := state.EncodeWrap(mustWrap(t, a))
	if err != nil {
		t.Fatal(err)
	}

	if _, err := state.DecodeWrap([]byte("garbage")); !errors.Is(err, state.ErrBadFrame) {
		t.Fatalf("garbage: err = %v, want ErrBadFrame", err)
	}
	if _, err := state.DecodeWrap(nil); !errors.Is(err, state.ErrBadFrame) {
		t.Fatalf("nil: err = %v, want ErrBadFrame", err)
	}

	// Flip one payload byte: the checksum must catch it.
	tampered := append([]byte(nil), raw...)
	tampered[len(tampered)-1] ^= 0xFF
	if _, err := state.DecodeWrap(tampered); !errors.Is(err, state.ErrChecksum) {
		t.Fatalf("tampered: err = %v, want ErrChecksum", err)
	}

	// A wrap frame is not a snapshot frame.
	if _, err := state.DecodeSnapshot(raw); !errors.Is(err, state.ErrKind) {
		t.Fatalf("wrong kind: err = %v, want ErrKind", err)
	}

	// A frame from a future codec version is refused, not misparsed.
	future := append([]byte(nil), raw...)
	future[4] = 99
	if _, err := state.DecodeWrap(future); !errors.Is(err, state.ErrVersion) {
		t.Fatalf("future version: err = %v, want ErrVersion", err)
	}
}

// --- Delta codec. ---

// deltaFor wraps the components of a changed since seq into a delta
// against base.
func deltaFor(t *testing.T, a *app.Application, base app.Wrap, seq uint64) state.WrapDelta {
	t.Helper()
	changed := a.ChangedSince(seq)
	if changed == nil {
		changed = []string{}
	}
	w, err := a.WrapComponents(changed)
	if err != nil {
		t.Fatal(err)
	}
	return state.WrapDelta{
		App: base.App, FromHost: w.FromHost, BaseDigest: state.WrapDigest(base),
		Components: w.Components, Kinds: w.Kinds,
		CoordState: w.CoordState, Profile: w.Profile,
	}
}

func TestDeltaFrameRoundTripAndApply(t *testing.T) {
	a := testApp(t, "x", "h1")
	base := mustWrap(t, a)
	seq := a.ChangeSeq()

	// Mutate only the small state component; the blob must not appear in
	// the delta.
	st, _ := a.Component("st")
	st.(*app.StateComponent).Set("cursor", "8")
	a.Coordinator().Set("track", "t2")

	d := deltaFor(t, a, base, seq)
	if _, ok := d.Components["data"]; ok {
		t.Fatal("unchanged blob rode in the delta")
	}
	if _, ok := d.Components["st"]; !ok {
		t.Fatal("changed state component missing from the delta")
	}

	raw, err := state.EncodeDelta(d)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := state.DecodeDelta(raw)
	if err != nil {
		t.Fatal(err)
	}
	full, err := state.ApplyDelta(base, d2)
	if err != nil {
		t.Fatal(err)
	}
	if state.WrapDigest(full) != state.WrapDigest(mustWrap(t, a)) {
		t.Fatal("reassembled wrap differs from the live state")
	}
	if full.CoordState["track"] != "t2" {
		t.Fatalf("coord state not replaced: %q", full.CoordState["track"])
	}
	if string(full.Components["data"]) != "payload" {
		t.Fatal("base blob lost in reassembly")
	}
}

func TestApplyDeltaRejectsWrongBase(t *testing.T) {
	a := testApp(t, "x", "h1")
	base := mustWrap(t, a)
	seq := a.ChangeSeq()
	st, _ := a.Component("st")
	st.(*app.StateComponent).Set("cursor", "8")
	d := deltaFor(t, a, base, seq)

	// Wrong app.
	other := testApp(t, "y", "h1")
	if _, err := state.ApplyDelta(mustWrap(t, other), d); !errors.Is(err, state.ErrBaseMismatch) {
		t.Fatalf("wrong app: err = %v, want ErrBaseMismatch", err)
	}
	// Right app, wrong state (the delta's base has cursor=7; mutate it).
	st.(*app.StateComponent).Set("cursor", "9")
	if _, err := state.ApplyDelta(mustWrap(t, a), d); !errors.Is(err, state.ErrBaseMismatch) {
		t.Fatalf("wrong base state: err = %v, want ErrBaseMismatch", err)
	}
}

// chainRecord builds a SnapshotRecord with n sequential deltas over a
// base, mutating the cursor each step, and returns the record plus the
// final expected cursor value.
func chainRecord(t *testing.T, n int) (state.SnapshotRecord, string) {
	t.Helper()
	a := testApp(t, "x", "h1")
	base := mustWrap(t, a)
	frame, err := state.EncodeSnapshot(app.TaggedSnapshot{Tag: "replica", At: time.Unix(1, 0), Wrap: base})
	if err != nil {
		t.Fatal(err)
	}
	rec := state.SnapshotRecord{
		App: "x", Host: "h1", Space: "lab", Seq: 1, BaseSeq: 1,
		At: time.Unix(1, 0), Frame: frame, StateDigest: state.WrapDigest(base),
	}
	prev := base
	val := "7"
	st, _ := a.Component("st")
	for i := 0; i < n; i++ {
		seq := a.ChangeSeq()
		val = string(rune('a' + i))
		st.(*app.StateComponent).Set("cursor", val)
		d := deltaFor(t, a, prev, seq)
		raw, err := state.EncodeDelta(d)
		if err != nil {
			t.Fatal(err)
		}
		rec.Deltas = append(rec.Deltas, raw)
		rec.Seq++
		prev = mustWrap(t, a)
		rec.StateDigest = state.WrapDigest(prev)
	}
	return rec, val
}

func TestSnapshotRecordChainReassembly(t *testing.T) {
	rec, want := chainRecord(t, 3)
	if err := rec.Verify(); err != nil {
		t.Fatalf("valid chain rejected: %v", err)
	}
	ts, err := rec.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	b := app.New("x", "h2", wsdl.Description{Name: "x"})
	if err := b.Unwrap(ts.Wrap); err != nil {
		t.Fatal(err)
	}
	st, _ := b.Component("st")
	if v, _ := st.(*app.StateComponent).Get("cursor"); v != want {
		t.Fatalf("chain restore cursor = %q, want %q", v, want)
	}
	if state.WrapDigest(ts.Wrap) != rec.StateDigest {
		t.Fatal("reassembled digest differs from the record's StateDigest")
	}
}

func TestSnapshotRecordChainEdgeCases(t *testing.T) {
	// Out-of-order deltas: the digest chain breaks and reassembly fails
	// loudly instead of restoring scrambled state.
	rec, _ := chainRecord(t, 3)
	rec.Deltas[0], rec.Deltas[1] = rec.Deltas[1], rec.Deltas[0]
	if _, err := rec.Snapshot(); !errors.Is(err, state.ErrBaseMismatch) {
		t.Fatalf("out-of-order chain: err = %v, want ErrBaseMismatch", err)
	}

	// Garbage base frame.
	rec2, _ := chainRecord(t, 1)
	rec2.Frame = []byte("not a frame")
	if _, err := rec2.Snapshot(); !errors.Is(err, state.ErrBadFrame) {
		t.Fatalf("garbage base: err = %v, want ErrBadFrame", err)
	}
	if err := rec2.Verify(); !errors.Is(err, state.ErrBadFrame) {
		t.Fatalf("garbage base Verify: err = %v, want ErrBadFrame", err)
	}

	// A corrupted delta frame fails both the cheap Verify and the full
	// reassembly with a checksum error.
	rec3, _ := chainRecord(t, 2)
	rec3.Deltas[1][len(rec3.Deltas[1])-1] ^= 0xFF
	if err := rec3.Verify(); !errors.Is(err, state.ErrChecksum) {
		t.Fatalf("corrupt delta Verify: err = %v, want ErrChecksum", err)
	}
	if _, err := rec3.Snapshot(); !errors.Is(err, state.ErrChecksum) {
		t.Fatalf("corrupt delta Snapshot: err = %v, want ErrChecksum", err)
	}

	// A missing base (delta-only record) cannot reassemble.
	rec4, _ := chainRecord(t, 1)
	rec4.Frame = nil
	if _, err := rec4.Snapshot(); !errors.Is(err, state.ErrBadFrame) {
		t.Fatalf("missing base: err = %v, want ErrBadFrame", err)
	}
}

// --- Replicator. ---

// fakePublisher models a center: it keeps one chained record per app,
// refuses delta puts whose base digest does not match (ErrNeedFull), and
// assigns capture sequences.
type fakePublisher struct {
	mu           sync.Mutex
	puts         []state.SnapshotPut
	recs         map[string]state.SnapshotRecord
	drops        []string
	needFullOnce bool // force the next delta put to fail with ErrNeedFull
	notDurable   bool // store each put but report ErrNotDurable (peers unreachable)
}

func newFakePublisher() *fakePublisher {
	return &fakePublisher{recs: make(map[string]state.SnapshotRecord)}
}

func (p *fakePublisher) PutSnapshot(_ context.Context, put state.SnapshotPut) (state.SnapshotStamp, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	rec := p.recs[put.App]
	if put.Delta {
		if p.needFullOnce || len(rec.Frame) == 0 || rec.StateDigest != put.BaseDigest {
			p.needFullOnce = false
			return state.SnapshotStamp{}, state.ErrNeedFull
		}
		rec.Deltas = append(rec.Deltas, put.Frame)
		rec.Seq++
	} else {
		rec = state.SnapshotRecord{App: put.App, Seq: rec.Seq + 1, BaseSeq: rec.Seq + 1, Frame: put.Frame}
	}
	rec.Host, rec.Space, rec.At, rec.StateDigest = put.Host, put.Space, put.At, put.NewDigest
	p.recs[put.App] = rec
	p.puts = append(p.puts, put)
	stamp := state.SnapshotStamp{Seq: rec.Seq, BaseSeq: rec.BaseSeq, Chain: len(rec.Deltas)}
	if p.notDurable {
		// Like a real center running a synchronous write concern with its
		// peers down: the put is stored locally but the ack count fell
		// short.
		return stamp, fmt.Errorf("fake: %w", state.ErrNotDurable)
	}
	return stamp, nil
}

func (p *fakePublisher) setNotDurable(v bool) {
	p.mu.Lock()
	p.notDurable = v
	p.mu.Unlock()
}

func (p *fakePublisher) DropSnapshot(_ context.Context, appName, _ string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.drops = append(p.drops, appName)
	delete(p.recs, appName)
	return nil
}

func (p *fakePublisher) putCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.puts)
}

func (p *fakePublisher) put(i int) state.SnapshotPut {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.puts[i]
}

func (p *fakePublisher) record(appName string) (state.SnapshotRecord, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	rec, ok := p.recs[appName]
	return rec, ok
}

// noPacing disables the byte-budget cadence so manual SyncNow tests are
// deterministic.
var noPacing = state.Tuning{BudgetBytesPerSec: -1}

func newTestReplicator(a *app.Application, pub state.Publisher, tune state.Tuning) *state.Replicator {
	return state.NewReplicator("h1", "lab", func() []*app.Application { return []*app.Application{a} },
		pub, nil, time.Hour /* manual syncs only */, tune)
}

func recordValue(t *testing.T, pub *fakePublisher, appName, comp, key string) string {
	t.Helper()
	rec, ok := pub.record(appName)
	if !ok {
		t.Fatalf("no record for %s", appName)
	}
	ts, err := rec.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	b := app.New(appName, "check", wsdl.Description{Name: appName})
	if err := b.Unwrap(ts.Wrap); err != nil {
		t.Fatal(err)
	}
	c, ok := b.Component(comp)
	if !ok {
		t.Fatalf("component %s missing from record", comp)
	}
	v, _ := c.(*app.StateComponent).Get(key)
	return v
}

func TestReplicatorPublishesFullThenDelta(t *testing.T) {
	a := testApp(t, "player", "h1")
	pub := newFakePublisher()
	rep := newTestReplicator(a, pub, noPacing)
	ctx := context.Background()

	if err := rep.SyncNow(ctx); err != nil {
		t.Fatal(err)
	}
	if pub.putCount() != 1 {
		t.Fatalf("puts after first sync = %d, want 1", pub.putCount())
	}
	if first := pub.put(0); first.Delta || first.App != "player" || first.Host != "h1" || first.Space != "lab" {
		t.Fatalf("first put = %+v, want a full frame from h1/lab", first)
	}

	// Unchanged state: no new publish, and the fast path did the skip.
	if err := rep.SyncNow(ctx); err != nil {
		t.Fatal(err)
	}
	if pub.putCount() != 1 {
		t.Fatalf("puts after idle sync = %d, want 1 (dedupe)", pub.putCount())
	}
	if s := rep.Stats(); s.SkippedClean == 0 {
		t.Fatalf("idle sync did not take the dirty fast path: %+v", s)
	}

	// Changed state: republished as a delta, smaller than the base.
	st, _ := a.Component("st")
	st.(*app.StateComponent).Set("cursor", "8")
	if err := rep.SyncNow(ctx); err != nil {
		t.Fatal(err)
	}
	if pub.putCount() != 2 {
		t.Fatalf("puts after state change = %d, want 2", pub.putCount())
	}
	second := pub.put(1)
	if !second.Delta {
		t.Fatal("second publish was not a delta")
	}
	if len(second.Frame) >= len(pub.put(0).Frame) {
		t.Fatalf("delta frame (%d bytes) not smaller than base (%d bytes)",
			len(second.Frame), len(pub.put(0).Frame))
	}
	if v := recordValue(t, pub, "player", "st", "cursor"); v != "8" {
		t.Fatalf("record cursor after delta = %q, want 8", v)
	}
}

// countingComp counts Snapshot calls — the proof that clean apps cost
// zero serialization per tick.
type countingComp struct {
	*app.StateComponent
	snaps int32
}

func (c *countingComp) Snapshot() ([]byte, error) {
	atomic.AddInt32(&c.snaps, 1)
	return c.StateComponent.Snapshot()
}

func TestReplicatorZeroSerializationWhenClean(t *testing.T) {
	a := app.New("player", "h1", wsdl.Description{Name: "player"})
	cc := &countingComp{StateComponent: app.NewState("st")}
	cc.Set("cursor", "7")
	if err := a.AddComponent(cc); err != nil {
		t.Fatal(err)
	}
	big := app.NewSizedBlob("song", app.KindData, 1<<20)
	if err := a.AddComponent(big); err != nil {
		t.Fatal(err)
	}
	pub := newFakePublisher()
	rep := newTestReplicator(a, pub, noPacing)
	ctx := context.Background()
	if err := rep.SyncNow(ctx); err != nil {
		t.Fatal(err)
	}
	base := atomic.LoadInt32(&cc.snaps)

	// Ten idle ticks: not one Snapshot call, not one publish.
	for i := 0; i < 10; i++ {
		if err := rep.SyncNow(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if got := atomic.LoadInt32(&cc.snaps); got != base {
		t.Fatalf("idle ticks serialized the state component %d times", got-base)
	}
	if pub.putCount() != 1 {
		t.Fatalf("idle ticks published: %d puts", pub.putCount())
	}
	if s := rep.Stats(); s.SkippedClean != 10 {
		t.Fatalf("SkippedClean = %d, want 10", s.SkippedClean)
	}

	// A small mutation serializes the changed component once — and ships
	// a delta that does not carry the megabyte blob.
	cc.Set("cursor", "8")
	if err := rep.SyncNow(ctx); err != nil {
		t.Fatal(err)
	}
	last := pub.put(pub.putCount() - 1)
	if !last.Delta {
		t.Fatal("mutation did not publish a delta")
	}
	if len(last.Frame) > 4096 {
		t.Fatalf("delta for a tiny mutation is %d bytes (blob leaked in)", len(last.Frame))
	}
}

func TestReplicatorNeedFullFallback(t *testing.T) {
	a := testApp(t, "player", "h1")
	pub := newFakePublisher()
	rep := newTestReplicator(a, pub, noPacing)
	ctx := context.Background()
	if err := rep.SyncNow(ctx); err != nil {
		t.Fatal(err)
	}

	// The center loses our base (restart / conflicting writer): the next
	// delta put is refused and the same capture degrades to a full frame.
	pub.mu.Lock()
	pub.needFullOnce = true
	pub.mu.Unlock()
	st, _ := a.Component("st")
	st.(*app.StateComponent).Set("cursor", "9")
	if err := rep.SyncNow(ctx); err != nil {
		t.Fatal(err)
	}
	last := pub.put(pub.putCount() - 1)
	if last.Delta {
		t.Fatal("refused delta was not followed by a full frame")
	}
	if v := recordValue(t, pub, "player", "st", "cursor"); v != "9" {
		t.Fatalf("record cursor after fallback = %q, want 9", v)
	}
	// And the pipeline recovers: the next change is a delta again.
	st.(*app.StateComponent).Set("cursor", "10")
	if err := rep.SyncNow(ctx); err != nil {
		t.Fatal(err)
	}
	if last := pub.put(pub.putCount() - 1); !last.Delta {
		t.Fatal("pipeline did not resume deltas after the fallback")
	}
}

// TestReplicatorNotDurableRequeues: a put the publisher accepted but
// could not replicate to its peers (ErrNotDurable) must NOT advance the
// acked base — the replicator re-publishes the state every sync until a
// put meets the write concern, and Stats counts the shortfalls.
func TestReplicatorNotDurableRequeues(t *testing.T) {
	a := testApp(t, "player", "h1")
	pub := newFakePublisher()
	pub.setNotDurable(true)
	rep := newTestReplicator(a, pub, noPacing)
	ctx := context.Background()

	if err := rep.SyncNow(ctx); err != nil {
		t.Fatal(err)
	}
	if s := rep.Stats(); s.NotDurable != 1 || s.Publishes != 0 {
		t.Fatalf("after shortfall: stats = %+v, want NotDurable=1 Publishes=0", s)
	}
	if pub.putCount() != 1 {
		t.Fatalf("puts = %d, want 1 (the write lands at the center)", pub.putCount())
	}

	// No mutation, but the state was never acked durable: it re-queues.
	if err := rep.SyncNow(ctx); err != nil {
		t.Fatal(err)
	}
	if s := rep.Stats(); s.NotDurable != 2 || s.SkippedClean != 0 {
		t.Fatalf("re-queue did not happen: stats = %+v", s)
	}

	// Peers heal: the retry publishes for real and the baseline advances.
	pub.setNotDurable(false)
	if err := rep.SyncNow(ctx); err != nil {
		t.Fatal(err)
	}
	if s := rep.Stats(); s.Publishes != 1 || s.NotDurable != 2 {
		t.Fatalf("post-heal stats = %+v, want Publishes=1", s)
	}
	if v := recordValue(t, pub, "player", "st", "cursor"); v != "7" {
		t.Fatalf("record cursor = %q, want 7", v)
	}
	// And only now does the dirty fast path start skipping.
	if err := rep.SyncNow(ctx); err != nil {
		t.Fatal(err)
	}
	if s := rep.Stats(); s.SkippedClean != 1 {
		t.Fatalf("idle sync after heal did not skip: %+v", s)
	}
}

func TestReplicatorRebaselinesAfterChain(t *testing.T) {
	a := testApp(t, "player", "h1")
	pub := newFakePublisher()
	tune := noPacing
	tune.RebaseEvery = 2
	rep := newTestReplicator(a, pub, tune)
	ctx := context.Background()
	st, _ := a.Component("st")
	for i := 0; i < 6; i++ {
		st.(*app.StateComponent).Set("cursor", string(rune('a'+i)))
		if err := rep.SyncNow(ctx); err != nil {
			t.Fatal(err)
		}
	}
	s := rep.Stats()
	if s.FullFrames < 2 {
		t.Fatalf("chain of 6 changes with RebaseEvery=2 produced %d full frames, want >= 2", s.FullFrames)
	}
	if s.DeltaFrames == 0 {
		t.Fatal("no deltas at all — re-baselining ate the pipeline")
	}
	if s.Rebaselines == 0 {
		t.Fatal("re-baseline policy never fired")
	}
	if v := recordValue(t, pub, "player", "st", "cursor"); v != "f" {
		t.Fatalf("final record cursor = %q, want f", v)
	}
}

func TestReplicatorBudgetDefersPeriodicCaptures(t *testing.T) {
	a := testApp(t, "player", "h1")
	pub := newFakePublisher()
	// 1 byte/s: after the first publish the app's budget is spent for
	// hours, so subsequent *periodic* captures must be deferred — while
	// an explicit SyncNow still publishes (it promises bounded lag).
	rep := state.NewReplicator("h1", "lab", func() []*app.Application { return []*app.Application{a} },
		pub, nil, time.Millisecond, state.Tuning{BudgetBytesPerSec: 1})
	rep.Start()
	defer rep.Stop()
	deadline := time.Now().Add(5 * time.Second)
	for pub.putCount() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("periodic loop never published the base")
		}
		time.Sleep(time.Millisecond)
	}
	st, _ := a.Component("st")
	st.(*app.StateComponent).Set("cursor", "8")
	for rep.Stats().SkippedBudget == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("budget never deferred a periodic capture: %+v", rep.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	if pub.putCount() != 1 {
		t.Fatalf("budget-deferred capture still published: %d puts", pub.putCount())
	}
	// SyncNow ignores the budget: the change publishes now.
	if err := rep.SyncNow(context.Background()); err != nil {
		t.Fatal(err)
	}
	if pub.putCount() != 2 {
		t.Fatalf("forced SyncNow did not publish: %d puts", pub.putCount())
	}
}

func TestReplicatorForwardsRecordedSnapshots(t *testing.T) {
	a := testApp(t, "player", "h1")
	owned := true
	var mu sync.Mutex
	pub := newFakePublisher()
	rep := state.NewReplicator("h1", "lab", func() []*app.Application {
		mu.Lock()
		defer mu.Unlock()
		if !owned {
			return nil
		}
		return []*app.Application{a}
	}, pub, nil, time.Hour, noPacing)
	ctx := context.Background()
	if err := rep.SyncNow(ctx); err != nil { // attaches the OnRecord hook
		t.Fatal(err)
	}
	base := pub.putCount()

	// An explicitly recorded snapshot (e.g. pre-migrate) replicates
	// promptly (async, off the recording goroutine), without waiting for
	// the next capture interval — and as a delta, since the base is acked.
	a.Coordinator().Set("track", "t3")
	if _, err := a.Snapshots().Record("pre-migrate", time.Unix(50, 0)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for pub.putCount() != base+1 {
		if time.Now().After(deadline) {
			t.Fatalf("puts after Record = %d, want %d", pub.putCount(), base+1)
		}
		time.Sleep(time.Millisecond)
	}
	if last := pub.put(pub.putCount() - 1); !last.Delta {
		t.Fatal("recorded snapshot against an acked base did not ship as a delta")
	}

	// Once the app leaves this host, recorded snapshots no longer publish
	// through this replicator.
	mu.Lock()
	owned = false
	mu.Unlock()
	a.Coordinator().Set("track", "t4")
	if _, err := a.Snapshots().Record("post-departure", time.Unix(60, 0)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // would-be async publish window
	if pub.putCount() != base+1 {
		t.Fatalf("departed app still replicated: puts = %d, want %d", pub.putCount(), base+1)
	}
}

func TestReplicatorRetireTombstones(t *testing.T) {
	a := testApp(t, "player", "h1")
	pub := newFakePublisher()
	rep := newTestReplicator(a, pub, noPacing)
	ctx := context.Background()
	if err := rep.SyncNow(ctx); err != nil {
		t.Fatal(err)
	}
	if err := rep.Retire(ctx, "player"); err != nil {
		t.Fatal(err)
	}
	pub.mu.Lock()
	drops := append([]string(nil), pub.drops...)
	pub.mu.Unlock()
	if len(drops) != 1 || drops[0] != "player" {
		t.Fatalf("drops = %v, want [player]", drops)
	}
	// Retire also forgets the replication baseline: a deliberately
	// restarted app (Reinstate) republishes — as a full frame, since the
	// tombstone wiped the center's base — even with identical content.
	rep.Reinstate("player")
	if err := rep.SyncNow(ctx); err != nil {
		t.Fatal(err)
	}
	if pub.putCount() != 2 {
		t.Fatalf("puts after retire+reinstate+sync = %d, want 2", pub.putCount())
	}
	if last := pub.put(1); last.Delta {
		t.Fatal("post-reinstate publish must be a full frame")
	}
}

func TestReplicatorPeriodicLoop(t *testing.T) {
	a := testApp(t, "player", "h1")
	pub := newFakePublisher()
	rep := state.NewReplicator("h1", "lab", func() []*app.Application { return []*app.Application{a} },
		pub, nil, 2*time.Millisecond, noPacing)
	published := make(chan state.SnapshotPut, 16)
	rep.OnPublish(func(put state.SnapshotPut, _ state.SnapshotStamp) {
		select {
		case published <- put:
		default:
		}
	})
	rep.Start()
	defer rep.Stop()
	select {
	case put := <-published:
		if put.App != "player" {
			t.Fatalf("published app = %q", put.App)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("periodic loop never published")
	}
}

func TestRetireBlocksLatePublishesUntilReinstate(t *testing.T) {
	a := testApp(t, "player", "h1")
	pub := newFakePublisher()
	rep := newTestReplicator(a, pub, noPacing)
	ctx := context.Background()
	if err := rep.SyncNow(ctx); err != nil {
		t.Fatal(err)
	}
	if err := rep.Retire(ctx, "player"); err != nil {
		t.Fatal(err)
	}
	// A capture racing the stop (here: arriving after Retire) must not
	// overwrite the tombstone.
	a.Coordinator().Set("track", "post-stop")
	if err := rep.SyncNow(ctx); err != nil {
		t.Fatal(err)
	}
	if pub.putCount() != 1 {
		t.Fatalf("puts after retire = %d, want 1 (publish refused)", pub.putCount())
	}
	// A deliberate restart lifts the retirement.
	rep.Reinstate("player")
	if err := rep.SyncNow(ctx); err != nil {
		t.Fatal(err)
	}
	if pub.putCount() != 2 {
		t.Fatalf("puts after reinstate = %d, want 2", pub.putCount())
	}
}

func TestVerifySnapshotCheapCheck(t *testing.T) {
	a := testApp(t, "x", "h1")
	w := mustWrap(t, a)
	snap, err := state.EncodeSnapshot(app.TaggedSnapshot{Tag: "r", At: time.Unix(1, 0), Wrap: w})
	if err != nil {
		t.Fatal(err)
	}
	if err := state.VerifySnapshot(snap); err != nil {
		t.Fatalf("valid frame rejected: %v", err)
	}
	tampered := append([]byte(nil), snap...)
	tampered[len(tampered)-1] ^= 0xFF
	if err := state.VerifySnapshot(tampered); !errors.Is(err, state.ErrChecksum) {
		t.Fatalf("tampered: err = %v, want ErrChecksum", err)
	}
	wrapFrame, _ := state.EncodeWrap(w)
	if err := state.VerifySnapshot(wrapFrame); !errors.Is(err, state.ErrKind) {
		t.Fatalf("wrap frame: err = %v, want ErrKind", err)
	}
	if err := state.VerifySnapshot([]byte("junk")); !errors.Is(err, state.ErrBadFrame) {
		t.Fatalf("junk: err = %v, want ErrBadFrame", err)
	}
}

// BenchmarkCaptureTick prices one periodic capture of a media-sized app
// (2 MB blob) in three regimes: unchanged (dirty fast path), a small
// mutation through the delta pipeline, and the same mutation with the
// pipeline disabled (full-frame mode, the pre-delta cost).
func BenchmarkCaptureTick(b *testing.B) {
	mk := func(tune state.Tuning) (*app.Application, *app.StateComponent, *state.Replicator) {
		a := app.New("player", "h1", wsdl.Description{Name: "player"})
		st := app.NewState("st")
		st.Set("cursor", "0")
		if err := a.AddComponent(st); err != nil {
			b.Fatal(err)
		}
		if err := a.AddComponent(app.NewSizedBlob("song", app.KindData, 2<<20)); err != nil {
			b.Fatal(err)
		}
		rep := state.NewReplicator("h1", "lab",
			func() []*app.Application { return []*app.Application{a} },
			newFakePublisher(), nil, time.Hour, tune)
		if err := rep.SyncNow(context.Background()); err != nil {
			b.Fatal(err)
		}
		return a, st, rep
	}
	tune := state.Tuning{BudgetBytesPerSec: -1, RebaseEvery: 1 << 30, RebaseFraction: 1e9}

	b.Run("unchanged", func(b *testing.B) {
		_, _, rep := mk(tune)
		ctx := context.Background()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := rep.SyncNow(ctx); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("small-change-delta", func(b *testing.B) {
		_, st, rep := mk(tune)
		ctx := context.Background()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			st.Set("cursor", strconv.Itoa(i))
			if err := rep.SyncNow(ctx); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("small-change-fullframe", func(b *testing.B) {
		full := tune
		full.FullFrames = true
		_, st, rep := mk(full)
		ctx := context.Background()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			st.Set("cursor", strconv.Itoa(i))
			if err := rep.SyncNow(ctx); err != nil {
				b.Fatal(err)
			}
		}
	})
}
