// Package migrate implements MDAgent's mobility management (paper §3.2,
// §4.2.2, Fig. 4): the engine that suspends an application, lets the
// mobile agent wrap the right components, transfers them (through space
// gateways when needed), rebinds resources at the destination, adapts the
// presentation, and resumes execution. Both of the paper's mobility modes
// are implemented — follow-me (cut-paste) and clone-dispatch (copy-paste
// with synchronization links) — and both binding designs the evaluation
// compares: the adaptive component binding of this paper and the static
// whole-application binding of the authors' earlier system [7].
package migrate

import (
	"time"

	"mdagent/internal/owl"
)

// BindingMode selects which components the mobile agent wraps.
type BindingMode int

// Binding modes (the Fig. 8 vs Fig. 9 axis).
const (
	// BindingAdaptive wraps only what the destination lacks: states
	// always; logic and UI only when not installed there; data per the
	// semantic rebinding plan (carry, use local, or remote URL).
	BindingAdaptive BindingMode = iota + 1
	// BindingStatic wraps the whole application — the original design
	// the paper measures as the baseline ("a static binding between
	// mobile agents and applications ... data, logic, and user
	// interfaces all migrate with users").
	BindingStatic
)

func (m BindingMode) String() string {
	switch m {
	case BindingAdaptive:
		return "adaptive"
	case BindingStatic:
		return "static"
	default:
		return "invalid"
	}
}

// Mode is the mobility mode (Fig. 1's modes axis).
type Mode int

// Mobility modes.
const (
	// FollowMe is cut-paste mobility: the application leaves the source.
	FollowMe Mode = iota + 1
	// CloneDispatch is copy-paste mobility: a synchronized copy is
	// dispatched while the original keeps running.
	CloneDispatch
)

func (m Mode) String() string {
	switch m {
	case FollowMe:
		return "follow-me"
	case CloneDispatch:
		return "clone-dispatch"
	default:
		return "invalid"
	}
}

// CostProfile calibrates the platform overheads of the paper's testbed
// (JADE 3.4 on 2002-era hardware). See EXPERIMENTS.md for the calibration
// against Figs. 8-10.
type CostProfile struct {
	// CheckoutOverhead is the agent-platform cost of wrapping and
	// checking out the mobile agent at the source.
	CheckoutOverhead time.Duration
	// TransferOverhead is the fixed agent-transfer protocol cost (JADE
	// inter-container move handshake), charged in the migrate phase.
	TransferOverhead time.Duration
	// CheckinOverhead is the agent-platform cost of checking in and
	// re-registering at the destination.
	CheckinOverhead time.Duration
	// AdaptOverhead is the adaptor's cost to re-target presentations.
	AdaptOverhead time.Duration
	// RemoteScanMBps models the resume-time scan of remotely bound data
	// (codec indexing a remote file before playback); this is what makes
	// Fig. 8's resume grow gently with file size.
	RemoteScanMBps float64
	// PrebufferBytes is the initial window fetched from a remote URL
	// binding before playback starts.
	PrebufferBytes int64
}

// DefaultCosts returns the calibration used for the paper reproduction.
func DefaultCosts() CostProfile {
	return CostProfile{
		CheckoutOverhead: 100 * time.Millisecond,
		TransferOverhead: 340 * time.Millisecond,
		CheckinOverhead:  80 * time.Millisecond,
		AdaptOverhead:    10 * time.Millisecond,
		RemoteScanMBps:   30,
		PrebufferBytes:   64 << 10,
	}
}

// Report is the outcome of one migration, with the paper's three-phase
// timing decomposition (suspension, migration, resumption — §5).
type Report struct {
	App         string
	Mode        Mode
	Binding     BindingMode
	FromHost    string
	ToHost      string
	InterSpace  bool
	Suspend     time.Duration // measured on the source host clock
	Migrate     time.Duration
	Resume      time.Duration // measured on the destination host clock
	BytesMoved  int64         // wrap payload actually transferred
	Carried     []string      // component names carried
	Rebindings  []owl.Rebinding
	AdaptNotes  []string
	SyncLink    bool // clone-dispatch: link established
	RestoredApp string
	// Delta marks a warm handoff: the destination already held a base of
	// this application's state, so only the components changed since
	// then crossed the wire (BytesMoved is the delta frame).
	Delta bool
}

// Total returns the end-to-end cost (the paper's "Total Cost" panel).
func (r Report) Total() time.Duration { return r.Suspend + r.Migrate + r.Resume }
