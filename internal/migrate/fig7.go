package migrate

import (
	"context"
	"fmt"
	"time"

	"mdagent/internal/owl"
)

// RoundTrip is the paper's Fig. 7 measurement: a migration from H1 to H2
// and back, with timestamps taken on each host's own (unsynchronized)
// clock. Because each host's clock offset is constant ("according to
// stable physical properties of crystal frequency, the difference of time
// values of clocks at the same time is nearly a constant value"), the sum
//
//	T2@H2 − T1@H1 + T4@H1 − T3@H2
//
// equals the true total migration time: the unknown offset Δ enters once
// as +Δ (in T2−T1) and once as −Δ (in T4−T3) and cancels.
type RoundTrip struct {
	T1        time.Time // H1 clock: outbound migration starts
	T2        time.Time // H2 clock: outbound migration completes
	T3        time.Time // H2 clock: return migration starts
	T4        time.Time // H1 clock: return migration completes
	Out, Back Report
}

// SkewCanceled returns the offset-free round-trip migration time.
func (rt RoundTrip) SkewCanceled() time.Duration {
	return rt.T2.Sub(rt.T1) + rt.T4.Sub(rt.T3)
}

// NaiveOneWay returns the outbound time read directly across the two
// clocks (T2@H2 − T1@H1), which is contaminated by the clock offset —
// what the paper's method avoids.
func (rt RoundTrip) NaiveOneWay() time.Duration { return rt.T2.Sub(rt.T1) }

// OneWay returns the skew-cancelled per-direction estimate (half the
// round trip), the quantity the paper reports as migration time.
func (rt RoundTrip) OneWay() time.Duration { return rt.SkewCanceled() / 2 }

// MeasureRoundTrip performs a follow-me migration from src's host to
// dst's host and back, recording the four Fig. 7 timestamps on the
// respective host clocks.
func MeasureRoundTrip(ctx context.Context, src, dst *Engine, appName string, binding BindingMode, match owl.MatchMode) (RoundTrip, error) {
	var rt RoundTrip
	if _, ok := src.App(appName); !ok {
		return rt, fmt.Errorf("migrate: app %q not running on %s", appName, src.Host())
	}
	rt.T1 = src.clock().Now()
	out, err := src.FollowMe(ctx, appName, dst.Host(), binding, match)
	if err != nil {
		return rt, fmt.Errorf("migrate: outbound leg: %w", err)
	}
	rt.T2 = dst.clock().Now()
	rt.Out = out

	rt.T3 = dst.clock().Now()
	back, err := dst.FollowMe(ctx, appName, src.Host(), binding, match)
	if err != nil {
		return rt, fmt.Errorf("migrate: return leg: %w", err)
	}
	rt.T4 = src.clock().Now()
	rt.Back = back
	return rt, nil
}
