package migrate

import (
	"context"
	"fmt"
	"time"

	"mdagent/internal/app"
	"mdagent/internal/owl"
	"mdagent/internal/state"
	"mdagent/internal/transport"
)

// syncPayload carries a coordinator state change down a synchronization
// link between a master application and its clones (paper §4.2.1: "The
// coordinator establishes the synchronization link between different
// presentations").
type syncPayload struct {
	App    string // destination instance name
	Change app.StateChange
}

// CloneDispatch clones a running application to destHost under cloneName
// (copy-paste mobility): the original keeps running, the clone starts at
// the destination from the original's snapshot, and a bidirectional
// synchronization link keeps their coordinators converging — the paper's
// ubiquitous-slideshow demo, where overflow rooms follow the speaker's
// presentation controls.
func (e *Engine) CloneDispatch(ctx context.Context, appName, destHost, cloneName string, match owl.MatchMode) (Report, error) {
	var rep Report
	e.mu.Lock()
	a, ok := e.apps[appName]
	e.mu.Unlock()
	if !ok {
		return rep, fmt.Errorf("migrate: no running app %q on %s", appName, e.host)
	}
	if cloneName == "" || (cloneName == appName && destHost == e.host) {
		return rep, fmt.Errorf("migrate: clone needs a distinct name/host")
	}
	interSpace := false
	if e.dir != nil {
		crosses, possible, err := e.dir.CrossesSpaces(e.host, destHost)
		if err != nil {
			return rep, err
		}
		if crosses && !possible {
			return rep, fmt.Errorf("migrate: no gateway path from %s to %s", e.host, destHost)
		}
		interSpace = crosses
	}
	clk := e.clock()

	// --- Copy: snapshot under a brief freeze; the original resumes
	// immediately (unlike follow-me's cut). ---
	suspendStart := clk.Now()
	if err := a.Suspend(); err != nil {
		return rep, err
	}
	carried, plans, err := e.planComponents(ctx, a, destHost, BindingAdaptive, match)
	if err != nil {
		_ = a.Resume()
		return rep, err
	}
	wrap, err := a.WrapComponents(carried)
	if err != nil {
		_ = a.Resume()
		return rep, err
	}
	raw, err := state.EncodeWrap(wrap)
	if err != nil {
		_ = a.Resume()
		return rep, err
	}
	e.chargeSerialize(wrap.TotalBytes())
	e.charge(e.costs.CheckoutOverhead)
	if err := a.Resume(); err != nil {
		return rep, err
	}
	suspendDur := clk.Now().Sub(suspendStart)

	// --- Dispatch. ---
	migrateStart := clk.Now()
	e.charge(e.costs.TransferOverhead)
	payload := checkinPayload{
		App: appName, CloneName: cloneName, Mode: CloneDispatch,
		Binding: BindingAdaptive, WrapRaw: raw, Desc: a.Description(),
		FromHost: e.host, FromEngine: e.ep.Name(), Rebindings: plans,
	}
	enc, err := transport.Encode(payload)
	if err != nil {
		return rep, err
	}
	var reply checkinReply
	if err := e.ep.RequestDecode(ctx, EndpointName(destHost), MsgClone, enc, &reply); err != nil {
		return rep, fmt.Errorf("migrate: clone checkin at %s: %w", destHost, err)
	}
	resumeDur := time.Duration(reply.ResumeNanos)
	migrateDur := clk.Now().Sub(migrateStart) - resumeDur
	if migrateDur < 0 {
		migrateDur = 0
	}

	// --- Establish the master side of the synchronization link. ---
	destEngine := EndpointName(destHost)
	a.Coordinator().AddLink(cloneName, e.syncForwarder(destEngine, cloneName))

	return Report{
		App: appName, Mode: CloneDispatch, Binding: BindingAdaptive,
		FromHost: e.host, ToHost: destHost, InterSpace: interSpace,
		Suspend: suspendDur, Migrate: migrateDur, Resume: resumeDur,
		BytesMoved: int64(len(raw)), Carried: carried, Rebindings: plans,
		AdaptNotes: reply.AdaptNotes, SyncLink: true, RestoredApp: cloneName,
	}, nil
}

// syncForwarder ships coordinator changes to a remote instance through
// the engine endpoint.
func (e *Engine) syncForwarder(destEngine, destApp string) func(app.StateChange) {
	return func(ch app.StateChange) {
		payload, err := transport.Encode(syncPayload{App: destApp, Change: ch})
		if err != nil {
			return
		}
		// Fire-and-forget delivery; the coordinator's per-origin dedup
		// makes redelivery safe and loss shows up as divergence the next
		// change repairs (last-writer-wins per key).
		_ = e.ep.Send(destEngine, MsgSync, payload)
	}
}

// handleClone checks in a clone instance and wires the return half of the
// synchronization link.
func (e *Engine) handleClone(tm transport.Message) ([]byte, error) {
	var p checkinPayload
	if err := transport.Decode(tm.Payload, &p); err != nil {
		return nil, err
	}
	if p.CloneName == "" {
		return nil, fmt.Errorf("migrate: clone payload lacks a clone name")
	}
	reply, err := e.restore(p, p.CloneName)
	if err != nil {
		return nil, err
	}
	// Return link: clone-side changes flow back to the master.
	e.mu.Lock()
	inst := e.apps[p.CloneName]
	e.mu.Unlock()
	inst.Coordinator().AddLink(p.App, e.syncForwarder(p.FromEngine, p.App))
	return transport.Encode(reply)
}

// handleSync applies a synchronization-link change to a local instance.
func (e *Engine) handleSync(tm transport.Message) ([]byte, error) {
	var p syncPayload
	if err := transport.Decode(tm.Payload, &p); err != nil {
		return nil, err
	}
	e.mu.Lock()
	inst, ok := e.apps[p.App]
	e.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("migrate: sync for unknown app %q on %s", p.App, e.host)
	}
	inst.Coordinator().ApplyRemote(p.Change)
	return nil, nil
}
