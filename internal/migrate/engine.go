package migrate

import (
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"mdagent/internal/app"
	"mdagent/internal/media"
	"mdagent/internal/netsim"
	"mdagent/internal/obs"
	"mdagent/internal/owl"
	"mdagent/internal/registry"
	"mdagent/internal/space"
	"mdagent/internal/state"
	"mdagent/internal/transport"
	"mdagent/internal/vclock"
	"mdagent/internal/wsdl"
)

// Transport message types served by migration engines.
const (
	MsgCheckin = "migrate.checkin" // follow-me arrival
	MsgClone   = "migrate.clone"   // clone-dispatch arrival
	MsgSync    = "migrate.sync"    // synchronization-link state change
)

// EndpointName returns the conventional engine endpoint name for a host.
func EndpointName(host string) string { return "migrate@" + host }

// MediaEndpointName returns the conventional media server endpoint name.
func MediaEndpointName(host string) string { return "media@" + host }

// Catalog is the registry view the engine needs; *registry.Client
// satisfies it for networked deployments and Direct adapts an in-process
// *registry.Registry.
type Catalog interface {
	LookupApp(ctx context.Context, name, host string) (registry.AppRecord, bool, error)
	RegisterApp(ctx context.Context, rec registry.AppRecord) error
	Device(ctx context.Context, host string) (wsdl.DeviceProfile, bool, error)
	PlanRebinding(ctx context.Context, src owl.Resource, destHost string, mode owl.MatchMode) (owl.Rebinding, error)
}

var _ Catalog = (*registry.Client)(nil)

// Direct adapts an in-process registry to the Catalog interface.
type Direct struct{ R *registry.Registry }

var _ Catalog = Direct{}

// LookupApp implements Catalog.
func (d Direct) LookupApp(_ context.Context, name, host string) (registry.AppRecord, bool, error) {
	return d.R.LookupApp(name, host)
}

// RegisterApp implements Catalog.
func (d Direct) RegisterApp(_ context.Context, rec registry.AppRecord) error {
	return d.R.RegisterApp(rec)
}

// Device implements Catalog.
func (d Direct) Device(_ context.Context, host string) (wsdl.DeviceProfile, bool, error) {
	dev, ok := d.R.Device(host)
	return dev, ok, nil
}

// PlanRebinding implements Catalog.
func (d Direct) PlanRebinding(_ context.Context, src owl.Resource, destHost string, mode owl.MatchMode) (owl.Rebinding, error) {
	return d.R.PlanRebinding(src, destHost, mode)
}

// Engine is one host's migration engine. It holds the running application
// instances, the installed application factories (what "the application
// exists at the destination" means), and serves checkin/clone/sync
// messages from peer engines.
type Engine struct {
	host  string
	net   *netsim.Network
	dir   *space.Directory
	ep    *transport.Endpoint
	cat   Catalog
	costs CostProfile

	mu        sync.Mutex
	apps      map[string]*app.Application
	factories map[string]func(host string) *app.Application
	bases     map[string]baseEntry // app -> last full wrap exchanged with a peer

	// mPhase holds one wall-clock duration histogram per migration phase
	// (obs.PhaseSuspend..obs.PhaseRebind), pinned at construction.
	mPhase map[string]*obs.Histogram
}

// baseEntry is one application's cached migration base: the last full
// wrap this engine sent to or received from a peer. It serves two roles
// in the warm-handoff path — as the reassembly base when a delta
// checkin arrives (matched by digest), and as the diff baseline when
// this engine sends the application back to the peer that shares it
// (matched by peer + live instance counters).
type baseEntry struct {
	wrap   app.Wrap
	digest [sha256.Size]byte
	peer   string // host on the other end of the exchange
	// inst/changeSeq track the live local instance the base was unwrapped
	// into (arrival entries only): components mutated past changeSeq are
	// exactly what a send-back delta must carry. nil after a send.
	inst      *app.Application
	changeSeq uint64
}

// needFullWrap is the in-band signal a destination returns when it
// cannot reassemble a delta checkin (no base, or the wrong one); the
// source retries with a full wrap. Matched by substring: transport
// errors cross process boundaries as strings.
const needFullWrap = "migrate: need full wrap"

// NewEngine creates an engine for host, serving on ep. dir may be nil
// (no space topology checks); net may be nil (no CPU cost charging).
func NewEngine(host string, ep *transport.Endpoint, net *netsim.Network, dir *space.Directory, cat Catalog, costs CostProfile) *Engine {
	e := &Engine{
		host:      host,
		net:       net,
		dir:       dir,
		ep:        ep,
		cat:       cat,
		costs:     costs,
		apps:      make(map[string]*app.Application),
		factories: make(map[string]func(host string) *app.Application),
		bases:     make(map[string]baseEntry),
		mPhase:    make(map[string]*obs.Histogram, 5),
	}
	for _, ph := range []string{obs.PhaseSuspend, obs.PhaseCapture, obs.PhaseTransfer, obs.PhaseRestore, obs.PhaseRebind} {
		e.mPhase[ph] = obs.Default.Histogram("mdagent_migrate_phase_ns", "host", host, "phase", ph)
	}
	ep.Handle(MsgCheckin, e.handleCheckin)
	ep.Handle(MsgClone, e.handleClone)
	ep.Handle(MsgSync, e.handleSync)
	return e
}

// Host returns the engine's host id.
func (e *Engine) Host() string { return e.host }

// Run registers a running application instance with the engine.
func (e *Engine) Run(a *app.Application) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, dup := e.apps[a.Name()]; dup {
		return fmt.Errorf("migrate: app %q already running on %s", a.Name(), e.host)
	}
	e.apps[a.Name()] = a
	return nil
}

// App returns a running instance by name.
func (e *Engine) App(name string) (*app.Application, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	a, ok := e.apps[name]
	return a, ok
}

// Apps returns every running instance, sorted by name — the state
// replicator's capture set.
func (e *Engine) Apps() []*app.Application {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]*app.Application, 0, len(e.apps))
	for _, a := range e.apps {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// Remove unregisters a running instance without suspending it (graceful
// stop and administrative teardown), returning the instance if present.
func (e *Engine) Remove(name string) (*app.Application, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	a, ok := e.apps[name]
	if ok {
		delete(e.apps, name)
	}
	return a, ok
}

// InstallFactory provisions an application skeleton factory — the local
// installation an arriving state-only wrap restores into.
func (e *Engine) InstallFactory(appName string, f func(host string) *app.Application) {
	e.mu.Lock()
	e.factories[appName] = f
	e.mu.Unlock()
}

// Factory returns the installed skeleton factory for an app, if any —
// cluster failover uses it to relaunch a dead host's application here.
func (e *Engine) Factory(appName string) (func(host string) *app.Application, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	f, ok := e.factories[appName]
	return f, ok
}

// clock returns the engine host's (possibly skewed) clock.
func (e *Engine) clock() vclock.Clock {
	if e.net != nil {
		if h, ok := e.net.Host(e.host); ok {
			return h.Clock()
		}
	}
	return &vclock.Real{}
}

func (e *Engine) charge(d time.Duration) {
	if e.net != nil {
		e.net.Clock().Charge(d)
	}
}

func (e *Engine) chargeSerialize(bytes int64) {
	if e.net == nil {
		return
	}
	if h, ok := e.net.Host(e.host); ok {
		e.net.ChargeSerialize(h, bytes)
	}
}

func (e *Engine) chargeDeserialize(bytes int64) {
	if e.net == nil {
		return
	}
	if h, ok := e.net.Host(e.host); ok {
		e.net.ChargeDeserialize(h, bytes)
	}
}

// checkinPayload crosses the wire for follow-me and clone-dispatch.
// Exactly one of WrapRaw (full wrap frame) and DeltaRaw (delta frame
// against a base the destination already holds — the warm handoff) is
// set.
type checkinPayload struct {
	App        string
	CloneName  string // clone-dispatch: instance name at the destination
	Mode       Mode
	Binding    BindingMode
	WrapRaw    []byte
	DeltaRaw   []byte
	Desc       wsdl.Description
	FromHost   string
	FromEngine string // source engine endpoint (sync links, remote media)
	Rebindings []owl.Rebinding
	// TraceID is the migration trace minted at the source; the
	// destination records its restore/rebind spans under it. New in wire
	// revision PR 6: gob leaves it zero when an older sender omits it
	// (tracing is then skipped) and older receivers ignore the field, so
	// the frame stays compatible in both directions.
	TraceID string
}

type checkinReply struct {
	ResumeNanos int64
	AdaptNotes  []string
	RestoredApp string
	// Spans carries the destination-side trace spans (restore, rebind)
	// back to the source, which merges them into its trace log so one
	// `mdctl trace` against the source shows the full cross-host
	// timeline. Same compatibility rule as checkinPayload.TraceID.
	Spans []obs.Span
}

// planComponents decides which components the MA wraps and how each data
// resource rebinds — the autonomous-agent decision of §4.1 ("AA decides
// whether to transfer the states only or the interface only or other
// possible component combinations").
func (e *Engine) planComponents(ctx context.Context, a *app.Application, destHost string, binding BindingMode, match owl.MatchMode) ([]string, []owl.Rebinding, error) {
	if binding == BindingStatic {
		// Original design [7]: everything moves, no rebinding plans.
		return a.Components(), nil, nil
	}
	carried := a.ComponentsOfKind(app.KindState)
	destRec, found, err := e.cat.LookupApp(ctx, a.Name(), destHost)
	if err != nil {
		return nil, nil, fmt.Errorf("migrate: registry lookup: %w", err)
	}
	for _, kind := range []app.ComponentKind{app.KindLogic, app.KindUI} {
		for _, name := range a.ComponentsOfKind(kind) {
			if !found || !destRec.HasComponent(name) {
				carried = append(carried, name)
			}
		}
	}
	var plans []owl.Rebinding
	covered := make(map[string]bool)
	for _, res := range a.Resources() {
		plan, err := e.cat.PlanRebinding(ctx, res, destHost, match)
		if err != nil {
			return nil, nil, fmt.Errorf("migrate: rebinding plan for %s: %w", res.ID, err)
		}
		if plan.Action == owl.RebindImpossible {
			return nil, nil, fmt.Errorf("migrate: resource %s cannot be rebound at %s: %s", res.ID, destHost, plan.Reason)
		}
		comp := dataComponentFor(res)
		covered[comp] = true
		if plan.Action == owl.RebindCarry {
			// Carry the matching data component when the app holds one.
			if _, ok := a.Component(comp); ok {
				carried = append(carried, comp)
			}
		}
		plans = append(plans, plan)
	}
	// Data components with no resource description default to traveling
	// with the application: there is nothing to rebind them to.
	for _, name := range a.ComponentsOfKind(app.KindData) {
		if !covered[name] && (!found || !destRec.HasComponent(name)) {
			carried = append(carried, name)
		}
	}
	return carried, plans, nil
}

// dataComponentFor names the data component a resource corresponds to:
// the "component" attribute when present, else the resource id.
func dataComponentFor(res owl.Resource) string {
	if c, ok := res.Attrs["component"]; ok {
		return c
	}
	return res.ID
}

// FollowMe migrates a running application to destHost (cut-paste). On
// failure the application is rolled back and resumed at the source.
func (e *Engine) FollowMe(ctx context.Context, appName, destHost string, binding BindingMode, match owl.MatchMode) (Report, error) {
	var rep Report
	e.mu.Lock()
	a, ok := e.apps[appName]
	e.mu.Unlock()
	if !ok {
		return rep, fmt.Errorf("migrate: no running app %q on %s", appName, e.host)
	}
	if destHost == e.host {
		return rep, fmt.Errorf("migrate: %q is already on %s", appName, e.host)
	}
	interSpace := false
	if e.dir != nil {
		crosses, possible, err := e.dir.CrossesSpaces(e.host, destHost)
		if err != nil {
			return rep, err
		}
		if crosses && !possible {
			return rep, fmt.Errorf("migrate: no gateway path from %s to %s (paper Fig. 1: inter-space requires gateways)", e.host, destHost)
		}
		interSpace = crosses
	}
	clk := e.clock()

	// Cross-host migration trace. Spans use wall-clock time, not the
	// engine's (possibly virtual, possibly skewed) host clock: the five
	// phases land on two hosts and must order on one axis.
	traceID := obs.Traces.Begin(appName, e.host, destHost)
	span := func(phase string, start time.Time, note string) {
		d := time.Since(start)
		obs.Traces.Record(obs.Span{Trace: traceID, App: appName, Phase: phase,
			Host: e.host, Start: start, Dur: d, Note: note})
		e.mPhase[phase].Observe(d)
	}

	// --- Suspension phase (timed on the source host clock). ---
	// The autonomous agent may already have suspended the app when the
	// user left the room (paper §4.3); suspension is then a no-op here.
	suspendWall := time.Now()
	suspendStart := clk.Now()
	if a.State() == app.Running {
		if err := a.Suspend(); err != nil {
			return rep, err
		}
	}
	rollback := func() {
		_ = a.Resume()
	}
	if _, err := a.Snapshots().Record("pre-migrate", clk.Now()); err != nil {
		rollback()
		return rep, err
	}
	span(obs.PhaseSuspend, suspendWall, "")
	captureWall := time.Now()
	planned, plans, err := e.planComponents(ctx, a, destHost, binding, match)
	if err != nil {
		rollback()
		return rep, err
	}
	carried := planned

	// Warm handoff: when the destination still holds the full wrap this
	// instance last exchanged with it (follow-me ping-pong chasing a user
	// between two hosts), ship only the components mutated since — the
	// dirty counters enumerate them, so nothing else is even serialized.
	var (
		raw      []byte
		wrap     app.Wrap // full wrap (cold path / fallback)
		delta    state.WrapDelta
		warm     bool
		warmBase baseEntry
	)
	// Warm only when the plan would carry every component anyway (static
	// binding, or an adaptive plan that found nothing at the
	// destination): the delta reassembles the destination's FULL state,
	// which must mean the same thing the planned transfer would have —
	// an adaptive plan that elides components (use-local installs,
	// remote-URL data) must take the cold path or the cache temperature
	// would change what lands at the destination.
	e.mu.Lock()
	warmBase, haveBase := e.bases[appName]
	e.mu.Unlock()
	if haveBase && warmBase.peer == destHost && warmBase.inst == a && a.FullyTracked() &&
		len(planned) == len(a.Components()) {
		changed := a.ChangedSince(warmBase.changeSeq)
		if changed == nil {
			changed = []string{} // coordinator/profile-only drift
		}
		dw, werr := a.WrapComponents(changed)
		if werr != nil {
			rollback()
			return rep, werr
		}
		delta = state.WrapDelta{
			App: appName, FromHost: e.host, BaseDigest: warmBase.digest,
			Components: dw.Components, Kinds: dw.Kinds,
			CoordState: dw.CoordState, Profile: dw.Profile,
		}
		if raw, err = state.EncodeDelta(delta); err != nil {
			rollback()
			return rep, err
		}
		e.chargeSerialize(delta.TotalBytes())
		carried = changed
		warm = true
	}
	buildFull := func() error {
		carried = planned
		w, werr := a.WrapComponents(carried)
		if werr != nil {
			return werr
		}
		wrap = w
		if raw, werr = state.EncodeWrap(w); werr != nil {
			return werr
		}
		e.chargeSerialize(w.TotalBytes())
		warm = false
		return nil
	}
	if !warm {
		if err := buildFull(); err != nil {
			rollback()
			return rep, err
		}
	}
	e.charge(e.costs.CheckoutOverhead)
	// Check out: the instance leaves this host now (paper Fig. 4); it is
	// restored from the snapshot if check-in fails. This ordering keeps
	// cut-paste semantics exact — the app is never visible on two hosts.
	e.mu.Lock()
	delete(e.apps, appName)
	e.mu.Unlock()
	checkinFailed := func() {
		e.mu.Lock()
		e.apps[appName] = a
		e.mu.Unlock()
	}
	suspendDur := clk.Now().Sub(suspendStart)
	span(obs.PhaseCapture, captureWall, fmt.Sprintf("bytes=%d warm=%v", len(raw), warm))

	// --- Migration phase. ---
	transferWall := time.Now()
	migrateStart := clk.Now()
	e.charge(e.costs.TransferOverhead)
	makePayload := func() checkinPayload {
		p := checkinPayload{
			App: appName, Mode: FollowMe, Binding: binding,
			Desc: a.Description(), FromHost: e.host, FromEngine: e.ep.Name(),
			Rebindings: plans, TraceID: traceID,
		}
		if warm {
			p.DeltaRaw = raw
		} else {
			p.WrapRaw = raw
		}
		return p
	}
	enc, err := transport.Encode(makePayload())
	if err != nil {
		checkinFailed()
		rollback()
		return rep, err
	}
	var reply checkinReply
	err = e.ep.RequestDecode(ctx, EndpointName(destHost), MsgCheckin, enc, &reply)
	if err != nil && warm && strings.Contains(err.Error(), needFullWrap) {
		// The destination lost (or never had) our base: degrade to a cold
		// full-wrap checkin in the same migration.
		if ferr := buildFull(); ferr != nil {
			checkinFailed()
			rollback()
			return rep, ferr
		}
		if enc, err = transport.Encode(makePayload()); err == nil {
			err = e.ep.RequestDecode(ctx, EndpointName(destHost), MsgCheckin, enc, &reply)
		}
	}
	if err != nil {
		// Check-in failed: restore from the pre-migration snapshot and
		// resume locally (the fault-tolerance role of snapshot management).
		checkinFailed()
		if rerr := a.Snapshots().Rollback("pre-migrate"); rerr != nil {
			return rep, fmt.Errorf("migrate: checkin failed (%v) and rollback failed: %w", err, rerr)
		}
		rollback()
		return rep, fmt.Errorf("migrate: checkin at %s: %w", destHost, err)
	}
	span(obs.PhaseTransfer, transferWall, fmt.Sprintf("bytes=%d", len(raw)))
	// Merge the destination's restore/rebind spans so this host's trace
	// log holds the complete five-phase, two-host timeline.
	for _, sp := range reply.Spans {
		obs.Traces.Record(sp)
	}
	// The handoff landed: remember what the destination now holds, so a
	// future follow-me back can go warm. A delta advanced the shared base
	// in place; a full wrap covering every component becomes the new
	// base; a partial wrap leaves the destination's exact state unknown.
	if warm {
		if newBase, aerr := state.ApplyDelta(warmBase.wrap, delta); aerr == nil {
			e.mu.Lock()
			e.bases[appName] = baseEntry{wrap: newBase, digest: state.WrapDigest(newBase), peer: destHost}
			e.mu.Unlock()
		}
	} else if wrapCovers(wrap, a) {
		e.mu.Lock()
		e.bases[appName] = baseEntry{wrap: wrap, digest: state.WrapDigest(wrap), peer: destHost}
		e.mu.Unlock()
	} else {
		e.mu.Lock()
		delete(e.bases, appName)
		e.mu.Unlock()
	}
	resumeDur := time.Duration(reply.ResumeNanos)
	migrateDur := clk.Now().Sub(migrateStart) - resumeDur
	if migrateDur < 0 {
		migrateDur = 0
	}

	// The instance left this host: demote the source record to a plain
	// installation so cluster failover never resurrects a departed app
	// from a stale record if this host later dies. A fresh context keeps
	// the demotion from being skipped just because a long transfer
	// exhausted the caller's deadline; failure is reported in the report
	// so operators can see the stale record risk.
	demoteCtx, demoteCancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer demoteCancel()
	var demoteNote []string
	if srcRec, found, err := e.cat.LookupApp(demoteCtx, appName, e.host); err != nil {
		demoteNote = append(demoteNote, "source record not demoted: "+err.Error())
	} else if found && srcRec.Running {
		srcRec.Running = false
		// A durability shortfall (state.ErrNotDurable from a federated
		// center running a synchronous write concern) is not a failed
		// demotion: the record landed at the center and anti-entropy
		// retries replication, so the stale-record risk the note warns
		// about does not exist.
		if err := e.cat.RegisterApp(demoteCtx, srcRec); err != nil && !errors.Is(err, state.ErrNotDurable) {
			demoteNote = append(demoteNote, "source record not demoted: "+err.Error())
		}
	}

	return Report{
		App: appName, Mode: FollowMe, Binding: binding,
		FromHost: e.host, ToHost: destHost, InterSpace: interSpace,
		Suspend: suspendDur, Migrate: migrateDur, Resume: resumeDur,
		BytesMoved: int64(len(raw)), Carried: carried, Rebindings: plans,
		AdaptNotes: append(reply.AdaptNotes, demoteNote...), RestoredApp: reply.RestoredApp,
		Delta: warm,
	}, nil
}

// wrapCovers reports whether the wrap snapshots every component of the
// instance — only then does it pin the destination's full post-unwrap
// state and qualify as a warm-handoff base.
func wrapCovers(w app.Wrap, a *app.Application) bool {
	for _, n := range a.Components() {
		if _, ok := w.Components[n]; !ok {
			return false
		}
	}
	return true
}

// handleCheckin restores an arriving follow-me wrap: deserialize, rebind
// resources, adapt to the local device, resume (paper Fig. 4's check-in
// half). The resumption duration, measured on this host's clock, returns
// to the source in the reply.
func (e *Engine) handleCheckin(tm transport.Message) ([]byte, error) {
	var p checkinPayload
	if err := transport.Decode(tm.Payload, &p); err != nil {
		return nil, err
	}
	reply, err := e.restore(p, p.App)
	if err != nil {
		return nil, err
	}
	return transport.Encode(reply)
}

// restore is the shared arrival path for follow-me and clone-dispatch.
func (e *Engine) restore(p checkinPayload, instanceName string) (checkinReply, error) {
	var reply checkinReply
	clk := e.clock()
	start := clk.Now()

	// Destination-side trace spans: recorded locally and returned in the
	// reply so the source assembles the full timeline. Clone dispatches
	// and pre-tracing senders carry no trace id; the histograms still
	// observe.
	var spans []obs.Span
	addSpan := func(phase string, begin time.Time, note string) {
		d := time.Since(begin)
		e.mPhase[phase].Observe(d)
		if p.TraceID == "" {
			return
		}
		sp := obs.Span{Trace: p.TraceID, App: p.App, Phase: phase,
			Host: e.host, Start: begin, Dur: d, Note: note}
		obs.Traces.Record(sp)
		spans = append(spans, sp)
	}
	restoreWall := time.Now()

	var wrap app.Wrap
	if len(p.DeltaRaw) > 0 {
		// Warm handoff: reassemble the full wrap from our cached base.
		// Any mismatch — no base, wrong digest, torn frame — answers
		// needFullWrap so the source retries cold instead of failing the
		// migration.
		e.chargeDeserialize(int64(len(p.DeltaRaw)))
		d, err := state.DecodeDelta(p.DeltaRaw)
		if err != nil {
			return reply, fmt.Errorf("%s: %v", needFullWrap, err)
		}
		e.mu.Lock()
		be, ok := e.bases[p.App]
		e.mu.Unlock()
		if !ok || be.digest != d.BaseDigest {
			return reply, fmt.Errorf("%s: no base for %s", needFullWrap, p.App)
		}
		if wrap, err = state.ApplyDelta(be.wrap, d); err != nil {
			return reply, fmt.Errorf("%s: %v", needFullWrap, err)
		}
	} else {
		e.chargeDeserialize(int64(len(p.WrapRaw)))
		var err error
		wrap, err = state.DecodeWrap(p.WrapRaw)
		if err != nil {
			return reply, err
		}
	}

	// Locate or create the instance: an already-running instance, a
	// locally installed factory, or (code-carrying migration) a bare
	// instance rebuilt entirely from the wrap.
	e.mu.Lock()
	inst, running := e.apps[instanceName]
	factory := e.factories[p.App]
	e.mu.Unlock()
	if !running {
		if factory != nil {
			inst = factory(e.host)
		} else {
			inst = app.New(instanceName, e.host, p.Desc)
		}
	}
	if inst.State() == app.Running {
		if err := inst.Suspend(); err != nil {
			return reply, err
		}
	}
	if err := inst.Unwrap(wrap); err != nil {
		return reply, err
	}
	inst.SetHost(e.host)
	// Cache the arrival as a warm-handoff base when it pins the full
	// state of a follow-me instance: a later follow-me back to the source
	// then ships only what changed here. (Clones evolve independently
	// over their sync links, so their arrival wraps pin nothing.)
	if p.Mode == FollowMe && wrapCovers(wrap, inst) {
		e.mu.Lock()
		e.bases[p.App] = baseEntry{
			wrap: wrap, digest: state.WrapDigest(wrap), peer: p.FromHost,
			inst: inst, changeSeq: inst.ChangeSeq(),
		}
		e.mu.Unlock()
	}

	addSpan(obs.PhaseRestore, restoreWall, fmt.Sprintf("delta=%v", len(p.DeltaRaw) > 0))
	rebindWall := time.Now()

	// Resource rebinding (paper §3.3).
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for _, plan := range p.Rebindings {
		switch plan.Action {
		case owl.RebindUseLocal:
			inst.BindResource(plan.Target)
		case owl.RebindCarry:
			inst.BindResource(plan.Source) // payload traveled in the wrap
		case owl.RebindRemote:
			if err := e.bindRemote(ctx, inst, plan.Source); err != nil {
				return reply, err
			}
		}
	}

	// Adaptation to the destination device (paper §4.2.2).
	var notes []string
	if dev, ok, err := e.cat.Device(ctx, e.host); err == nil && ok {
		plan, _, aerr := inst.Adaptor().Apply(inst, dev)
		if aerr != nil {
			return reply, aerr
		}
		e.charge(e.costs.AdaptOverhead)
		notes = plan.Notes
	}

	e.charge(e.costs.CheckinOverhead)
	if err := inst.Resume(); err != nil {
		return reply, err
	}
	e.mu.Lock()
	e.apps[instanceName] = inst
	e.mu.Unlock()

	// Re-register the installation so subsequent adaptive migrations know
	// which components now exist on this host (paper §4.2.2: applications
	// register themselves with the registry centers).
	_ = e.cat.RegisterApp(ctx, registry.AppRecord{
		Name: p.App, Host: e.host, Description: p.Desc,
		Components: inst.Components(), Running: true,
	})

	addSpan(obs.PhaseRebind, rebindWall, fmt.Sprintf("rebindings=%d", len(p.Rebindings)))
	return checkinReply{
		ResumeNanos: int64(clk.Now().Sub(start)),
		AdaptNotes:  notes,
		RestoredApp: instanceName,
		Spans:       spans,
	}, nil
}

// bindRemote establishes a remote URL binding to data that stays on its
// owning host (the resource record's host, which may differ from the host
// the application just left): open the stream, prebuffer the playback
// window, and charge the remote-scan cost that makes resume grow gently
// with file size (Fig. 8).
func (e *Engine) bindRemote(ctx context.Context, inst *app.Application, res owl.Resource) error {
	file := dataComponentFor(res)
	url := media.URL(res.Host, file)
	rs, err := media.OpenRemote(ctx, e.ep, MediaEndpointName(res.Host), url)
	if err != nil {
		// Multi-process deployments (cmd/mdagentd) serve the media
		// library on the engine endpoint itself rather than a dedicated
		// media endpoint; fall back to it before giving up.
		var ferr error
		rs, ferr = media.OpenRemote(ctx, e.ep, EndpointName(res.Host), url)
		if ferr != nil {
			return fmt.Errorf("migrate: remote bind %s: %w", url, err)
		}
	}
	if _, err := rs.Prebuffer(ctx, e.costs.PrebufferBytes); err != nil {
		return fmt.Errorf("migrate: prebuffer %s: %w", url, err)
	}
	if e.costs.RemoteScanMBps > 0 && res.SizeBytes > 0 {
		secs := float64(res.SizeBytes) / (e.costs.RemoteScanMBps * 1e6)
		e.charge(time.Duration(secs * float64(time.Second)))
	}
	bound := res
	if bound.Attrs == nil {
		bound.Attrs = make(map[string]string, 1)
	} else {
		attrs := make(map[string]string, len(bound.Attrs)+1)
		for k, v := range bound.Attrs {
			attrs[k] = v
		}
		bound.Attrs = attrs
	}
	bound.Attrs["url"] = url
	inst.BindResource(bound)
	return nil
}
