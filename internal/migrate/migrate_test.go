package migrate

import (
	"context"
	"strings"
	"testing"
	"time"

	"mdagent/internal/app"
	"mdagent/internal/media"
	"mdagent/internal/netsim"
	"mdagent/internal/owl"
	"mdagent/internal/rdf"
	"mdagent/internal/registry"
	"mdagent/internal/space"
	"mdagent/internal/store"
	"mdagent/internal/transport"
	"mdagent/internal/vclock"
	"mdagent/internal/wsdl"
)

const songSize = 2 << 20

type rig struct {
	clk  *vclock.Virtual
	net  *netsim.Network
	fab  *transport.LocalFabric
	reg  *registry.Registry
	dir  *space.Directory
	engA *Engine
	engB *Engine
	libA *media.Library
}

func playerDesc() wsdl.Description {
	return wsdl.Description{
		Name: "player",
		Services: []wsdl.Service{{
			Name:  "playback",
			Ports: []wsdl.Port{{Name: "ctl", Operations: []wsdl.Operation{{Name: "play"}}}},
		}},
		Requires: wsdl.Requirements{NeedsAudio: true},
	}
}

// newRig assembles the Fig. 8 evaluation scenario: player running on
// hostA with logic+UI+data+state; hostB has the UI installed (factory +
// registry record) but no data or logic; the music resource is
// untransferable data served from hostA's media library.
func newRig(t *testing.T, fileSize int64) *rig {
	t.Helper()
	clk := vclock.NewVirtual(time.Unix(0, 0))
	net := netsim.New(clk, netsim.WithSeed(11))
	if _, err := net.AddHost("hostA", "lab-space", netsim.Pentium4_1700(), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := net.AddHost("hostB", "lab-space", netsim.PentiumM_1600(), 3*time.Second); err != nil {
		t.Fatal(err)
	}
	fab := transport.NewLocalFabric(net)
	t.Cleanup(func() { fab.Close() })

	reg, err := registry.New(store.OpenMemory())
	if err != nil {
		t.Fatal(err)
	}
	dir := space.NewDirectory()
	if err := dir.AddSpace("lab-space"); err != nil {
		t.Fatal(err)
	}
	for _, h := range []string{"hostA", "hostB"} {
		if err := dir.AddHost(h, "lab-space"); err != nil {
			t.Fatal(err)
		}
	}

	epA, err := fab.Attach(EndpointName("hostA"), "hostA")
	if err != nil {
		t.Fatal(err)
	}
	epB, err := fab.Attach(EndpointName("hostB"), "hostB")
	if err != nil {
		t.Fatal(err)
	}
	engA := NewEngine("hostA", epA, net, dir, Direct{R: reg}, DefaultCosts())
	engB := NewEngine("hostB", epB, net, dir, Direct{R: reg}, DefaultCosts())

	// Media library on hostA serving the song.
	libA := media.NewLibrary("hostA")
	libA.Add(media.GenerateFile("song1", fileSize, 3))
	mediaEpA, err := fab.Attach(MediaEndpointName("hostA"), "hostA")
	if err != nil {
		t.Fatal(err)
	}
	media.ServeLibrary(libA, mediaEpA)

	// Destination installation: UI only (paper's measured assumption).
	engB.InstallFactory("player", func(host string) *app.Application {
		inst := app.New("player", host, playerDesc())
		if err := inst.AddComponent(app.NewUI("main-ui", 400<<10, 1024, 768)); err != nil {
			panic(err)
		}
		return inst
	})
	if err := reg.RegisterApp(registry.AppRecord{
		Name: "player", Host: "hostB", Space: "lab-space",
		Description: playerDesc(), Components: []string{"main-ui"},
	}); err != nil {
		t.Fatal(err)
	}
	if err := reg.RegisterDevice(wsdl.DeviceProfile{
		Host: "hostB", ScreenWidth: 800, ScreenHeight: 600, MemoryMB: 512, HasAudio: true, HasDisplay: true,
	}); err != nil {
		t.Fatal(err)
	}
	// The music resource: untransferable data on hostA.
	if err := reg.RegisterResource(owl.Resource{
		ID: "song1", Class: rdf.IMCL("MusicFile"), Host: "hostA",
		SizeBytes: fileSize, Transferable: false, Substitutable: false,
	}); err != nil {
		t.Fatal(err)
	}

	return &rig{clk: clk, net: net, fab: fab, reg: reg, dir: dir, engA: engA, engB: engB, libA: libA}
}

// startPlayer builds and runs the player instance on hostA.
func (r *rig) startPlayer(t *testing.T, fileSize int64) *app.Application {
	t.Helper()
	inst := app.New("player", "hostA", playerDesc())
	song, _ := r.libA.Get("song1")
	for _, c := range []app.Component{
		app.NewSizedBlob("codec-logic", app.KindLogic, 600<<10),
		app.NewUI("main-ui", 400<<10, 1024, 768),
		app.NewBlob("song1", app.KindData, song.Data),
		app.NewState("playback-state"),
	} {
		if err := inst.AddComponent(c); err != nil {
			t.Fatal(err)
		}
	}
	st, _ := inst.Component("playback-state")
	st.(*app.StateComponent).Set("positionMs", "93500")
	inst.Coordinator().Set("track", "song1")
	inst.SetProfile(app.UserProfile{User: "alice", Preferences: map[string]string{"handedness": "left"}})
	inst.BindResource(owl.Resource{
		ID: "song1", Class: rdf.IMCL("MusicFile"), Host: "hostA",
		SizeBytes: fileSize, Transferable: false,
	})
	if err := r.engA.Run(inst); err != nil {
		t.Fatal(err)
	}
	return inst
}

func ctxT(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestFollowMeAdaptiveBinding(t *testing.T) {
	r := newRig(t, songSize)
	r.startPlayer(t, songSize)

	rep, err := r.engA.FollowMe(ctxT(t), "player", "hostB", BindingAdaptive, owl.MatchSemantic)
	if err != nil {
		t.Fatal(err)
	}
	// Paper §5: dest has UI => MA wraps states + logic, music stays remote.
	carried := strings.Join(rep.Carried, ",")
	if !strings.Contains(carried, "playback-state") || !strings.Contains(carried, "codec-logic") {
		t.Fatalf("carried = %v", rep.Carried)
	}
	if strings.Contains(carried, "main-ui") || strings.Contains(carried, "song1") {
		t.Fatalf("adaptive binding carried installed/remote parts: %v", rep.Carried)
	}
	if rep.BytesMoved > 1<<20 {
		t.Fatalf("adaptive wrap = %d bytes, want < 1 MiB (no music data)", rep.BytesMoved)
	}
	// Remote URL rebinding happened.
	foundRemote := false
	for _, p := range rep.Rebindings {
		if p.Action == owl.RebindRemote {
			foundRemote = true
		}
	}
	if !foundRemote {
		t.Fatalf("rebindings = %+v, want a remote-url plan", rep.Rebindings)
	}
	// Cut-paste semantics: gone from A, running on B.
	if _, ok := r.engA.App("player"); ok {
		t.Fatal("app still on source")
	}
	inst, ok := r.engB.App("player")
	if !ok {
		t.Fatal("app missing at destination")
	}
	if inst.State() != app.Running || inst.Host() != "hostB" {
		t.Fatalf("dest instance state=%v host=%s", inst.State(), inst.Host())
	}
	// State and coordinator survived.
	st, _ := inst.Component("playback-state")
	if v, _ := st.(*app.StateComponent).Get("positionMs"); v != "93500" {
		t.Fatalf("position = %q", v)
	}
	if v, _ := inst.Coordinator().Get("track"); v != "song1" {
		t.Fatalf("track = %q", v)
	}
	// Adaptation ran: 1024x768 UI scaled to the 800x600 device, mirrored
	// for the left-handed user.
	ui, _ := inst.Component("main-ui")
	w, h := ui.(*app.UIComponent).Geometry()
	if w != 800 || h != 600 {
		t.Fatalf("UI geometry = %dx%d, want 800x600", w, h)
	}
	if !ui.(*app.UIComponent).Mirrored() {
		t.Fatal("left-handed mirror not applied")
	}
	// Remote binding recorded a URL.
	urlBound := false
	for _, res := range inst.Resources() {
		if strings.HasPrefix(res.Attrs["url"], "mdagent://hostA/media/") {
			urlBound = true
		}
	}
	if !urlBound {
		t.Fatalf("resources = %+v, want mdagent:// URL binding", inst.Resources())
	}
	// Phase timings: all positive, adaptive total near the paper's ~1s.
	if rep.Suspend <= 0 || rep.Migrate <= 0 || rep.Resume <= 0 {
		t.Fatalf("phases = %v/%v/%v", rep.Suspend, rep.Migrate, rep.Resume)
	}
	if total := rep.Total(); total < 500*time.Millisecond || total > 3*time.Second {
		t.Fatalf("adaptive total = %v, want ~1s scale", total)
	}
}

func TestFollowMeStaticBindingCarriesEverything(t *testing.T) {
	r := newRig(t, songSize)
	r.startPlayer(t, songSize)

	rep, err := r.engA.FollowMe(ctxT(t), "player", "hostB", BindingStatic, owl.MatchSemantic)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Carried) != 4 {
		t.Fatalf("static carried = %v, want all 4 components", rep.Carried)
	}
	if rep.BytesMoved < 3_000_000 {
		t.Fatalf("static wrap = %d bytes, want > 3 MB", rep.BytesMoved)
	}
	inst, ok := r.engB.App("player")
	if !ok {
		t.Fatal("app missing at destination")
	}
	// Data integrity across the move.
	data, ok := inst.Component("song1")
	if !ok {
		t.Fatal("music data not carried")
	}
	song, _ := r.libA.Get("song1")
	snap, err := data.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(snap)) != song.Size() {
		t.Fatalf("carried data = %d bytes, want %d", len(snap), song.Size())
	}
}

func TestAdaptiveBeatsStatic(t *testing.T) {
	// The Fig. 10 comparison at one size: adaptive total must win by a
	// wide margin when the data dominates.
	sizes := []int64{2 << 20, 7 << 20}
	var ratios []float64
	for _, size := range sizes {
		ra := newRig(t, size)
		ra.startPlayer(t, size)
		adaptive, err := ra.engA.FollowMe(ctxT(t), "player", "hostB", BindingAdaptive, owl.MatchSemantic)
		if err != nil {
			t.Fatal(err)
		}
		rs := newRig(t, size)
		rs.startPlayer(t, size)
		static, err := rs.engA.FollowMe(ctxT(t), "player", "hostB", BindingStatic, owl.MatchSemantic)
		if err != nil {
			t.Fatal(err)
		}
		if static.Total() <= 2*adaptive.Total() {
			t.Fatalf("size %d: static %v not ≫ adaptive %v", size, static.Total(), adaptive.Total())
		}
		ratios = append(ratios, float64(static.Total())/float64(adaptive.Total()))
	}
	if ratios[1] <= ratios[0] {
		t.Fatalf("static/adaptive gap did not widen with size: %v", ratios)
	}
}

func TestAdaptiveResumeGrowsGently(t *testing.T) {
	// Fig. 8's finding: "as the file size increases, only resumption
	// takes more time, suspension and migration are not affected much.
	// ... less than 200 milliseconds when the file size increases from
	// 2.0MB to 7.5MB."
	small := newRig(t, 2<<20)
	small.startPlayer(t, 2<<20)
	repS, err := small.engA.FollowMe(ctxT(t), "player", "hostB", BindingAdaptive, owl.MatchSemantic)
	if err != nil {
		t.Fatal(err)
	}
	big := newRig(t, 7864320) // 7.5 MB
	big.startPlayer(t, 7864320)
	repB, err := big.engA.FollowMe(ctxT(t), "player", "hostB", BindingAdaptive, owl.MatchSemantic)
	if err != nil {
		t.Fatal(err)
	}
	growth := repB.Resume - repS.Resume
	if growth <= 0 {
		t.Fatalf("resume did not grow: %v -> %v", repS.Resume, repB.Resume)
	}
	if growth > 300*time.Millisecond {
		t.Fatalf("resume growth = %v, want < ~200-300ms (paper)", growth)
	}
	// Suspend and migrate essentially flat.
	if d := (repB.Suspend - repS.Suspend).Abs(); d > 60*time.Millisecond {
		t.Fatalf("suspend drift = %v", d)
	}
	if d := (repB.Migrate - repS.Migrate).Abs(); d > 120*time.Millisecond {
		t.Fatalf("migrate drift = %v", d)
	}
}

func TestFollowMeFailureRollsBack(t *testing.T) {
	r := newRig(t, songSize)
	inst := r.startPlayer(t, songSize)
	// hostC exists on no fabric endpoint: checkin must fail.
	if _, err := r.net.AddHost("hostC", "lab-space", netsim.PentiumM_1600(), 0); err != nil {
		t.Fatal(err)
	}
	if err := r.dir.AddHost("hostC", "lab-space"); err != nil {
		t.Fatal(err)
	}
	_, err := r.engA.FollowMe(ctxT(t), "player", "hostC", BindingAdaptive, owl.MatchSemantic)
	if err == nil {
		t.Fatal("migration to dead host succeeded")
	}
	// App survived, resumed, still at A.
	got, ok := r.engA.App("player")
	if !ok || got != inst {
		t.Fatal("app lost after failed migration")
	}
	if inst.State() != app.Running {
		t.Fatalf("state = %v, want running after rollback", inst.State())
	}
	st, _ := inst.Component("playback-state")
	if v, _ := st.(*app.StateComponent).Get("positionMs"); v != "93500" {
		t.Fatalf("state corrupted by rollback: %q", v)
	}
}

func TestFollowMeValidation(t *testing.T) {
	r := newRig(t, songSize)
	r.startPlayer(t, songSize)
	ctx := ctxT(t)
	if _, err := r.engA.FollowMe(ctx, "ghost", "hostB", BindingAdaptive, owl.MatchSemantic); err == nil {
		t.Fatal("unknown app accepted")
	}
	if _, err := r.engA.FollowMe(ctx, "player", "hostA", BindingAdaptive, owl.MatchSemantic); err == nil {
		t.Fatal("self-migration accepted")
	}
}

func TestInterSpaceRequiresGateway(t *testing.T) {
	r := newRig(t, songSize)
	r.startPlayer(t, songSize)
	ctx := ctxT(t)
	// hostD lives in a different space with no gateways.
	if _, err := r.net.AddHost("hostD", "meeting-space", netsim.PentiumM_1600(), 0); err != nil {
		t.Fatal(err)
	}
	if err := r.dir.AddSpace("meeting-space"); err != nil {
		t.Fatal(err)
	}
	if err := r.dir.AddHost("hostD", "meeting-space"); err != nil {
		t.Fatal(err)
	}
	_, err := r.engA.FollowMe(ctx, "player", "hostD", BindingAdaptive, owl.MatchSemantic)
	if err == nil || !strings.Contains(err.Error(), "gateway") {
		t.Fatalf("err = %v, want gateway requirement", err)
	}
	// Install gateways (directory + netsim) and an engine at hostD.
	if _, err := r.net.AddGateway("gwLab", "lab-space", netsim.Pentium4_1700()); err != nil {
		t.Fatal(err)
	}
	if _, err := r.net.AddGateway("gwMeet", "meeting-space", netsim.Pentium4_1700()); err != nil {
		t.Fatal(err)
	}
	if err := r.dir.SetGateway("lab-space", "gwLab"); err != nil {
		t.Fatal(err)
	}
	if err := r.dir.SetGateway("meeting-space", "gwMeet"); err != nil {
		t.Fatal(err)
	}
	epD, err := r.fab.Attach(EndpointName("hostD"), "hostD")
	if err != nil {
		t.Fatal(err)
	}
	engD := NewEngine("hostD", epD, r.net, r.dir, Direct{R: r.reg}, DefaultCosts())
	_ = engD
	rep, err := r.engA.FollowMe(ctx, "player", "hostD", BindingStatic, owl.MatchSemantic)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.InterSpace {
		t.Fatal("inter-space flag not set")
	}
	if _, ok := engD.App("player"); !ok {
		t.Fatal("app missing at inter-space destination")
	}
}

func TestFig7SkewCancellation(t *testing.T) {
	r := newRig(t, songSize)
	r.startPlayer(t, songSize)
	// hostB's clock is 3 s ahead of hostA's (set in newRig).
	rt, err := MeasureRoundTrip(ctxT(t), r.engA, r.engB, "player", BindingAdaptive, owl.MatchSemantic)
	if err != nil {
		t.Fatal(err)
	}
	trueRTT := rt.Out.Total() + rt.Back.Total()
	if diff := (rt.SkewCanceled() - trueRTT).Abs(); diff > time.Millisecond {
		t.Fatalf("skew-canceled RTT %v differs from true %v by %v", rt.SkewCanceled(), trueRTT, diff)
	}
	// The naive cross-clock reading is contaminated by the 3 s offset.
	naiveErr := (rt.NaiveOneWay() - rt.Out.Total()).Abs()
	if naiveErr < 2900*time.Millisecond {
		t.Fatalf("naive reading error = %v, want ~3s contamination", naiveErr)
	}
	if rt.OneWay() != rt.SkewCanceled()/2 {
		t.Fatal("OneWay != SkewCanceled/2")
	}
	// Round trip ends back at A.
	if _, ok := r.engA.App("player"); !ok {
		t.Fatal("app not back at source")
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestCloneDispatchWithSyncLink(t *testing.T) {
	r := newRig(t, songSize)
	master := r.startPlayer(t, songSize)

	rep, err := r.engA.CloneDispatch(ctxT(t), "player", "hostB", "player-room2", owl.MatchSemantic)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.SyncLink || rep.RestoredApp != "player-room2" {
		t.Fatalf("report = %+v", rep)
	}
	// Copy-paste: master still running at A.
	if master.State() != app.Running {
		t.Fatalf("master state = %v", master.State())
	}
	clone, ok := r.engB.App("player-room2")
	if !ok {
		t.Fatal("clone missing at destination")
	}
	// Speaker's control propagates to the overflow room.
	master.Coordinator().Set("slide", "7")
	waitFor(t, "slide sync to clone", func() bool {
		v, _ := clone.Coordinator().Get("slide")
		return v == "7"
	})
	// And the clone can drive the master too (bidirectional link).
	clone.Coordinator().Set("annotation", "Q&A")
	waitFor(t, "annotation sync to master", func() bool {
		v, _ := master.Coordinator().Get("annotation")
		return v == "Q&A"
	})
}

func TestCloneValidation(t *testing.T) {
	r := newRig(t, songSize)
	r.startPlayer(t, songSize)
	ctx := ctxT(t)
	if _, err := r.engA.CloneDispatch(ctx, "ghost", "hostB", "x", owl.MatchSemantic); err == nil {
		t.Fatal("unknown app accepted")
	}
	if _, err := r.engA.CloneDispatch(ctx, "player", "hostA", "player", owl.MatchSemantic); err == nil {
		t.Fatal("identity clone accepted")
	}
	if _, err := r.engA.CloneDispatch(ctx, "player", "hostB", "", owl.MatchSemantic); err == nil {
		t.Fatal("empty clone name accepted")
	}
}

func TestRunDuplicateRejected(t *testing.T) {
	r := newRig(t, songSize)
	r.startPlayer(t, songSize)
	other := app.New("player", "hostA", playerDesc())
	if err := r.engA.Run(other); err == nil {
		t.Fatal("duplicate Run accepted")
	}
}

func TestModeAndBindingStrings(t *testing.T) {
	if FollowMe.String() != "follow-me" || CloneDispatch.String() != "clone-dispatch" || Mode(0).String() != "invalid" {
		t.Fatal("mode strings wrong")
	}
	if BindingAdaptive.String() != "adaptive" || BindingStatic.String() != "static" || BindingMode(0).String() != "invalid" {
		t.Fatal("binding strings wrong")
	}
}

// warmRig builds a two-host rig where hostA runs the full player and the
// first migration carries everything (static binding), priming both
// engines' warm-handoff base caches.
func warmRig(t *testing.T) *rig {
	t.Helper()
	r := newRig(t, songSize)
	r.startPlayer(t, songSize)
	return r
}

func mutatePlayback(t *testing.T, inst *app.Application, pos string) {
	t.Helper()
	st, ok := inst.Component("playback-state")
	if !ok {
		t.Fatal("playback-state missing")
	}
	st.(*app.StateComponent).Set("positionMs", pos)
	inst.Coordinator().Set("positionMs", pos)
}

func playbackPos(t *testing.T, inst *app.Application) string {
	t.Helper()
	st, ok := inst.Component("playback-state")
	if !ok {
		t.Fatal("playback-state missing")
	}
	v, _ := st.(*app.StateComponent).Get("positionMs")
	return v
}

func TestFollowMeWarmHandoffShipsDelta(t *testing.T) {
	r := warmRig(t)
	ctx := ctxT(t)

	// Leg 1 — cold: everything moves, both sides cache the base.
	rep1, err := r.engA.FollowMe(ctx, "player", "hostB", BindingStatic, owl.MatchSemantic)
	if err != nil {
		t.Fatal(err)
	}
	if rep1.Delta {
		t.Fatal("cold first migration reported as warm")
	}

	// The user walks back after a small state change: only that change
	// should cross the wire.
	instB, ok := r.engB.App("player")
	if !ok {
		t.Fatal("player not on hostB after leg 1")
	}
	mutatePlayback(t, instB, "120000")

	rep2, err := r.engB.FollowMe(ctx, "player", "hostA", BindingStatic, owl.MatchSemantic)
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.Delta {
		t.Fatal("return migration did not go warm")
	}
	if rep2.BytesMoved*5 > rep1.BytesMoved {
		t.Fatalf("warm handoff moved %d bytes, want far less than the cold %d",
			rep2.BytesMoved, rep1.BytesMoved)
	}
	instA, ok := r.engA.App("player")
	if !ok {
		t.Fatal("player not back on hostA")
	}
	if got := playbackPos(t, instA); got != "120000" {
		t.Fatalf("restored position = %q, want 120000", got)
	}
	if v, _ := instA.Coordinator().Get("positionMs"); v != "120000" {
		t.Fatalf("restored coord position = %q, want 120000", v)
	}
	// The multi-megabyte song survived the delta reassembly.
	song, ok := instA.Component("song1")
	if !ok || song.SizeBytes() != songSize {
		t.Fatalf("song lost or truncated after delta reassembly: %v", ok)
	}

	// Leg 3 — ping-pong continues warm from the reassembled side.
	mutatePlayback(t, instA, "180000")
	rep3, err := r.engA.FollowMe(ctx, "player", "hostB", BindingStatic, owl.MatchSemantic)
	if err != nil {
		t.Fatal(err)
	}
	if !rep3.Delta {
		t.Fatal("third leg did not go warm")
	}
	instB2, _ := r.engB.App("player")
	if got := playbackPos(t, instB2); got != "180000" {
		t.Fatalf("third-leg position = %q, want 180000", got)
	}
}

func TestFollowMeWarmFallsBackWhenBaseLost(t *testing.T) {
	r := warmRig(t)
	ctx := ctxT(t)
	if _, err := r.engA.FollowMe(ctx, "player", "hostB", BindingStatic, owl.MatchSemantic); err != nil {
		t.Fatal(err)
	}
	instB, _ := r.engB.App("player")
	mutatePlayback(t, instB, "240000")

	// hostA forgets the base (restart): the delta attempt is refused
	// in-band and the same migration retries with a full wrap.
	r.engA.mu.Lock()
	delete(r.engA.bases, "player")
	r.engA.mu.Unlock()

	rep, err := r.engB.FollowMe(ctx, "player", "hostA", BindingStatic, owl.MatchSemantic)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Delta {
		t.Fatal("migration reported warm after the base was lost")
	}
	instA, ok := r.engA.App("player")
	if !ok {
		t.Fatal("player not on hostA after fallback")
	}
	if got := playbackPos(t, instA); got != "240000" {
		t.Fatalf("fallback position = %q, want 240000", got)
	}
}
