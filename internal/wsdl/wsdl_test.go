package wsdl

import (
	"strings"
	"testing"
)

func playerDesc() *Description {
	return &Description{
		Name:     "smart-media-player",
		Provider: "imcl",
		Version:  "1.0",
		Doc:      "follow-me music player (paper §5 demo 1)",
		Services: []Service{{
			Name: "playback",
			Ports: []Port{{
				Name: "control",
				Operations: []Operation{
					{Name: "play", Input: "trackRef", Output: "status"},
					{Name: "pause", Output: "status"},
					{Name: "seek", Input: "positionMs", Output: "status"},
				},
			}},
		}},
		Requires: Requirements{
			MinScreenWidth: 320, MinScreenHeight: 240,
			MinMemoryMB: 64, NeedsAudio: true,
		},
		Preferences: []Preference{
			{Key: "handedness", Value: "left"},
			{Key: "volume", Value: "70"},
		},
	}
}

func TestValidateOK(t *testing.T) {
	if err := playerDesc().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Description)
	}{
		{"noName", func(d *Description) { d.Name = "" }},
		{"noServices", func(d *Description) { d.Services = nil }},
		{"unnamedService", func(d *Description) { d.Services[0].Name = "" }},
		{"dupService", func(d *Description) { d.Services = append(d.Services, d.Services[0]) }},
		{"noPorts", func(d *Description) { d.Services[0].Ports = nil }},
		{"unnamedPort", func(d *Description) { d.Services[0].Ports[0].Name = "" }},
		{"noOps", func(d *Description) { d.Services[0].Ports[0].Operations = nil }},
		{"unnamedOp", func(d *Description) { d.Services[0].Ports[0].Operations[0].Name = "" }},
		{"negativeReq", func(d *Description) { d.Requires.MinMemoryMB = -1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := playerDesc()
			tc.mutate(d)
			if err := d.Validate(); err == nil {
				t.Fatal("invalid description accepted")
			}
		})
	}
}

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	d := playerDesc()
	data, err := Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `name="smart-media-player"`) {
		t.Fatalf("marshaled XML missing name attr:\n%s", data)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != d.Name || got.Version != d.Version {
		t.Fatalf("round trip = %+v", got)
	}
	if len(got.Services) != 1 || len(got.Services[0].Ports[0].Operations) != 3 {
		t.Fatalf("services lost: %+v", got.Services)
	}
	if got.Requires.MinScreenWidth != 320 || !got.Requires.NeedsAudio {
		t.Fatalf("requirements lost: %+v", got.Requires)
	}
	if v, ok := got.Preference("handedness"); !ok || v != "left" {
		t.Fatalf("preference lost: %q, %v", v, ok)
	}
}

func TestMarshalRejectsInvalid(t *testing.T) {
	if _, err := Marshal(&Description{}); err == nil {
		t.Fatal("Marshal accepted invalid description")
	}
}

func TestUnmarshalRejects(t *testing.T) {
	if _, err := Unmarshal([]byte("not xml at all <<<")); err == nil {
		t.Fatal("Unmarshal accepted garbage")
	}
	if _, err := Unmarshal([]byte("<definitions name=\"x\"></definitions>")); err == nil {
		t.Fatal("Unmarshal accepted description failing validation")
	}
}

func TestOperationsSortedAndHasOperation(t *testing.T) {
	d := playerDesc()
	ops := d.Operations()
	want := []string{"pause", "play", "seek"}
	if len(ops) != len(want) {
		t.Fatalf("Operations = %v", ops)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Fatalf("Operations = %v, want %v", ops, want)
		}
	}
	if !d.HasOperation("play") {
		t.Fatal("HasOperation(play) = false")
	}
	if d.HasOperation("explode") {
		t.Fatal("HasOperation(explode) = true")
	}
}

func TestPreferenceMiss(t *testing.T) {
	d := playerDesc()
	if _, ok := d.Preference("nope"); ok {
		t.Fatal("missing preference reported present")
	}
}

func TestDeviceSatisfies(t *testing.T) {
	req := playerDesc().Requires
	good := DeviceProfile{
		Host: "hostB", ScreenWidth: 1024, ScreenHeight: 768,
		MemoryMB: 512, HasAudio: true, HasDisplay: true, Platform: "linux",
	}
	if ok, reason := good.Satisfies(req); !ok {
		t.Fatalf("good device rejected: %s", reason)
	}
	tests := []struct {
		name   string
		mutate func(*DeviceProfile)
		want   string
	}{
		{"narrowScreen", func(p *DeviceProfile) { p.ScreenWidth = 100 }, "screen width"},
		{"shortScreen", func(p *DeviceProfile) { p.ScreenHeight = 100 }, "screen height"},
		{"lowMemory", func(p *DeviceProfile) { p.MemoryMB = 16 }, "memory"},
		{"noAudio", func(p *DeviceProfile) { p.HasAudio = false }, "audio"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			p := good
			tc.mutate(&p)
			ok, reason := p.Satisfies(req)
			if ok {
				t.Fatal("deficient device accepted")
			}
			if !strings.Contains(reason, tc.want) {
				t.Fatalf("reason = %q, want mention of %q", reason, tc.want)
			}
		})
	}
}

func TestDeviceSatisfiesDisplayAndPlatform(t *testing.T) {
	req := Requirements{NeedsDisplay: true, Platform: "linux"}
	p := DeviceProfile{HasDisplay: false, Platform: "linux"}
	if ok, reason := p.Satisfies(req); ok || !strings.Contains(reason, "display") {
		t.Fatalf("display check failed: %v %q", ok, reason)
	}
	p.HasDisplay = true
	p.Platform = "windows"
	if ok, reason := p.Satisfies(req); ok || !strings.Contains(reason, "platform") {
		t.Fatalf("platform check failed: %v %q", ok, reason)
	}
	p.Platform = "linux"
	if ok, _ := p.Satisfies(req); !ok {
		t.Fatal("satisfying device rejected")
	}
	// Empty platform requirement accepts anything.
	req.Platform = ""
	p.Platform = "beos"
	if ok, _ := p.Satisfies(req); !ok {
		t.Fatal("any-platform requirement rejected a platform")
	}
}
