// Package wsdl implements the WSDL-like interface descriptions with which
// applications register at the registry center (paper §4.2.2:
// "Applications first register themselves to the application and resource
// registry centers with their interface descriptions and other parameters
// such as specific device requirements, user preferences, etc, in a
// WSDL-like format").
//
// A Description declares the services an application exposes (ports of
// operations), the device requirements the destination must satisfy, and
// user preference defaults. Descriptions encode to XML.
package wsdl

import (
	"encoding/xml"
	"fmt"
	"sort"
)

// Description is the root document, loosely mirroring wsdl:definitions.
type Description struct {
	XMLName     xml.Name     `xml:"definitions"`
	Name        string       `xml:"name,attr"`
	Provider    string       `xml:"provider,attr,omitempty"`
	Version     string       `xml:"version,attr,omitempty"`
	Doc         string       `xml:"documentation,omitempty"`
	Services    []Service    `xml:"service"`
	Requires    Requirements `xml:"deviceRequirements"`
	Preferences []Preference `xml:"userPreference"`
}

// Service groups ports under a name, mirroring wsdl:service.
type Service struct {
	Name  string `xml:"name,attr"`
	Ports []Port `xml:"port"`
}

// Port exposes a set of operations at a binding name.
type Port struct {
	Name       string      `xml:"name,attr"`
	Operations []Operation `xml:"operation"`
}

// Operation is one invocable method with named input/output messages.
type Operation struct {
	Name   string `xml:"name,attr"`
	Input  string `xml:"input,omitempty"`
	Output string `xml:"output,omitempty"`
}

// Requirements are the minimum device properties an application needs at
// the destination (paper §3.1: "Different devices usually have different
// properties, such as screen size, resolution ratio, and computation
// capability").
type Requirements struct {
	MinScreenWidth  int    `xml:"minScreenWidth,omitempty"`
	MinScreenHeight int    `xml:"minScreenHeight,omitempty"`
	MinMemoryMB     int    `xml:"minMemoryMB,omitempty"`
	NeedsAudio      bool   `xml:"needsAudio,omitempty"`
	NeedsDisplay    bool   `xml:"needsDisplay,omitempty"`
	Platform        string `xml:"platform,omitempty"` // "" = any
}

// Preference is a user preference default, e.g. handedness=left.
type Preference struct {
	Key   string `xml:"key,attr"`
	Value string `xml:"value,attr"`
}

// Validate checks structural well-formedness.
func (d *Description) Validate() error {
	if d.Name == "" {
		return fmt.Errorf("wsdl: description has no name")
	}
	if len(d.Services) == 0 {
		return fmt.Errorf("wsdl: %s: no services", d.Name)
	}
	seenSvc := make(map[string]bool)
	for _, s := range d.Services {
		if s.Name == "" {
			return fmt.Errorf("wsdl: %s: unnamed service", d.Name)
		}
		if seenSvc[s.Name] {
			return fmt.Errorf("wsdl: %s: duplicate service %q", d.Name, s.Name)
		}
		seenSvc[s.Name] = true
		if len(s.Ports) == 0 {
			return fmt.Errorf("wsdl: %s: service %q has no ports", d.Name, s.Name)
		}
		for _, p := range s.Ports {
			if p.Name == "" {
				return fmt.Errorf("wsdl: %s: service %q has an unnamed port", d.Name, s.Name)
			}
			if len(p.Operations) == 0 {
				return fmt.Errorf("wsdl: %s: port %q has no operations", d.Name, p.Name)
			}
			for _, op := range p.Operations {
				if op.Name == "" {
					return fmt.Errorf("wsdl: %s: port %q has an unnamed operation", d.Name, p.Name)
				}
			}
		}
	}
	r := d.Requires
	if r.MinScreenWidth < 0 || r.MinScreenHeight < 0 || r.MinMemoryMB < 0 {
		return fmt.Errorf("wsdl: %s: negative device requirement", d.Name)
	}
	return nil
}

// Operations returns all operation names across services, sorted.
func (d *Description) Operations() []string {
	var out []string
	for _, s := range d.Services {
		for _, p := range s.Ports {
			for _, op := range p.Operations {
				out = append(out, op.Name)
			}
		}
	}
	sort.Strings(out)
	return out
}

// HasOperation reports whether the description exposes the operation.
func (d *Description) HasOperation(name string) bool {
	for _, s := range d.Services {
		for _, p := range s.Ports {
			for _, op := range p.Operations {
				if op.Name == name {
					return true
				}
			}
		}
	}
	return false
}

// Preference returns the value of a user preference key.
func (d *Description) Preference(key string) (string, bool) {
	for _, p := range d.Preferences {
		if p.Key == key {
			return p.Value, true
		}
	}
	return "", false
}

// DeviceProfile describes a concrete device's capabilities, matched
// against Requirements during migration planning.
type DeviceProfile struct {
	Host         string
	ScreenWidth  int
	ScreenHeight int
	MemoryMB     int
	HasAudio     bool
	HasDisplay   bool
	Platform     string
}

// Satisfies reports whether the device meets the requirements, returning
// the first unmet requirement as a reason when it does not.
func (p DeviceProfile) Satisfies(r Requirements) (bool, string) {
	switch {
	case p.ScreenWidth < r.MinScreenWidth:
		return false, fmt.Sprintf("screen width %d < required %d", p.ScreenWidth, r.MinScreenWidth)
	case p.ScreenHeight < r.MinScreenHeight:
		return false, fmt.Sprintf("screen height %d < required %d", p.ScreenHeight, r.MinScreenHeight)
	case p.MemoryMB < r.MinMemoryMB:
		return false, fmt.Sprintf("memory %dMB < required %dMB", p.MemoryMB, r.MinMemoryMB)
	case r.NeedsAudio && !p.HasAudio:
		return false, "audio required but absent"
	case r.NeedsDisplay && !p.HasDisplay:
		return false, "display required but absent"
	case r.Platform != "" && r.Platform != p.Platform:
		return false, fmt.Sprintf("platform %q != required %q", p.Platform, r.Platform)
	default:
		return true, ""
	}
}

// Marshal renders the description as indented XML.
func Marshal(d *Description) ([]byte, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	out, err := xml.MarshalIndent(d, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("wsdl: marshal: %w", err)
	}
	return append([]byte(xml.Header), out...), nil
}

// Unmarshal parses an XML description and validates it.
func Unmarshal(data []byte) (*Description, error) {
	var d Description
	if err := xml.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("wsdl: unmarshal: %w", err)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return &d, nil
}
