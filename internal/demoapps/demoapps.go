// Package demoapps builds the six demo applications the paper implemented
// on the MDAgent prototype (§5): "smart media player, follow-me editor,
// ubiquitous slide show, handheld editor, handheld music player, and
// follow-me instant messenger". Each constructor assembles an
// app.Application from the two-level model's components; *Skeleton
// constructors build the partial installations destinations typically
// have (e.g. the player UI without data or logic, or a meeting room's
// presentation app without the slides).
package demoapps

import (
	"fmt"
	"strconv"

	"mdagent/internal/app"
	"mdagent/internal/media"
	"mdagent/internal/owl"
	"mdagent/internal/rdf"
	"mdagent/internal/wsdl"
)

func mustAdd(a *app.Application, cs ...app.Component) {
	for _, c := range cs {
		if err := a.AddComponent(c); err != nil {
			panic(fmt.Sprintf("demoapps: %v", err)) // static construction bug
		}
	}
}

func desc(name, doc string, ops []wsdl.Operation, req wsdl.Requirements) wsdl.Description {
	return wsdl.Description{
		Name: name, Provider: "imcl", Version: "1.0", Doc: doc,
		Services: []wsdl.Service{{
			Name:  name + "-svc",
			Ports: []wsdl.Port{{Name: "ctl", Operations: ops}},
		}},
		Requires: req,
	}
}

// MediaPlayerDesc is the smart media player's interface description.
func MediaPlayerDesc() wsdl.Description {
	return desc("smart-media-player", "follow-me music player (paper demo 1)",
		[]wsdl.Operation{
			{Name: "play", Input: "trackRef", Output: "status"},
			{Name: "pause", Output: "status"},
			{Name: "seek", Input: "positionMs", Output: "status"},
		},
		wsdl.Requirements{MinScreenWidth: 320, MinScreenHeight: 240, MinMemoryMB: 64, NeedsAudio: true})
}

// MusicResource describes a song as the paper's Fig. 8 scenario does:
// untransferable data (served by URL when absent at the destination).
func MusicResource(song media.File, host string) owl.Resource {
	return owl.Resource{
		ID: song.Name, Class: rdf.IMCL("MusicFile"), Host: host,
		SizeBytes: song.Size(), Transferable: false, Substitutable: false,
		Attrs: map[string]string{"checksum": song.Checksum},
	}
}

// NewMediaPlayer assembles the full player on host, playing song.
func NewMediaPlayer(host string, song media.File) *app.Application {
	a := app.New("smart-media-player", host, MediaPlayerDesc())
	mustAdd(a,
		app.NewSizedBlob("codec-logic", app.KindLogic, 350<<10),
		app.NewUI("player-ui", 400<<10, 1024, 768),
		app.NewBlob(song.Name, app.KindData, song.Data),
		app.NewState("playback-state"),
	)
	st, _ := a.Component("playback-state")
	st.(*app.StateComponent).Set("track", song.Name)
	st.(*app.StateComponent).Set("positionMs", "0")
	a.Coordinator().Set("track", song.Name)
	a.BindResource(MusicResource(song, host))
	// Presentations observe coordinator state (Fig. 3's observer wiring).
	ui, _ := a.Component("player-ui")
	a.Coordinator().Register("player-ui", ui.(*app.UIComponent))
	return a
}

// MediaPlayerSkeleton is the paper's measured destination installation:
// "the destination host contains the application user interface but no
// music data nor application logic".
func MediaPlayerSkeleton(host string) *app.Application {
	a := app.New("smart-media-player", host, MediaPlayerDesc())
	mustAdd(a, app.NewUI("player-ui", 400<<10, 1024, 768))
	ui, _ := a.Component("player-ui")
	a.Coordinator().Register("player-ui", ui.(*app.UIComponent))
	return a
}

// MediaPlayerSkeletonComponents names the skeleton's installed parts.
func MediaPlayerSkeletonComponents() []string { return []string{"player-ui"} }

// EditorDesc is the follow-me editor's interface description.
func EditorDesc() wsdl.Description {
	return desc("followme-editor", "follow-me text editor (paper demo list)",
		[]wsdl.Operation{
			{Name: "insert", Input: "text", Output: "status"},
			{Name: "delete", Input: "range", Output: "status"},
			{Name: "save", Output: "status"},
		},
		wsdl.Requirements{MinScreenWidth: 640, MinScreenHeight: 480, MinMemoryMB: 64, NeedsDisplay: true})
}

// NewEditor assembles the editor with an initial document.
func NewEditor(host, document string) *app.Application {
	a := app.New("followme-editor", host, EditorDesc())
	mustAdd(a,
		app.NewSizedBlob("editor-logic", app.KindLogic, 450<<10),
		app.NewUI("editor-ui", 300<<10, 1024, 768),
		app.NewBlob("document", app.KindData, []byte(document)),
		app.NewState("edit-state"),
	)
	st, _ := a.Component("edit-state")
	st.(*app.StateComponent).Set("cursor", "0")
	st.(*app.StateComponent).Set("dirty", "false")
	ui, _ := a.Component("editor-ui")
	a.Coordinator().Register("editor-ui", ui.(*app.UIComponent))
	return a
}

// EditorSkeleton has the editor code but no document.
func EditorSkeleton(host string) *app.Application {
	a := app.New("followme-editor", host, EditorDesc())
	mustAdd(a,
		app.NewSizedBlob("editor-logic", app.KindLogic, 450<<10),
		app.NewUI("editor-ui", 300<<10, 1024, 768),
	)
	ui, _ := a.Component("editor-ui")
	a.Coordinator().Register("editor-ui", ui.(*app.UIComponent))
	return a
}

// EditorSkeletonComponents names the skeleton's installed parts.
func EditorSkeletonComponents() []string { return []string{"editor-logic", "editor-ui"} }

// SlideShowDesc is the ubiquitous slide show's interface description.
func SlideShowDesc() wsdl.Description {
	return desc("ubiquitous-slideshow", "clone-dispatch lecture slideshow (paper demo 2)",
		[]wsdl.Operation{
			{Name: "next", Output: "slideNo"},
			{Name: "prev", Output: "slideNo"},
			{Name: "goto", Input: "slideNo", Output: "slideNo"},
		},
		wsdl.Requirements{MinScreenWidth: 800, MinScreenHeight: 600, NeedsDisplay: true})
}

// NewSlideShow assembles the speaker's master presentation.
func NewSlideShow(host string, deck media.SlideDeck) *app.Application {
	a := app.New("ubiquitous-slideshow", host, SlideShowDesc())
	comps := []app.Component{
		app.NewSizedBlob("presenter-logic", app.KindLogic, 700<<10),
		app.NewUI("presenter-ui", 500<<10, 1024, 768),
		app.NewState("show-state"),
	}
	var deckBytes []byte
	for _, s := range deck.Slides {
		deckBytes = append(deckBytes, s.Data...)
	}
	comps = append(comps, app.NewBlob("slides", app.KindData, deckBytes))
	mustAdd(a, comps...)
	st, _ := a.Component("show-state")
	st.(*app.StateComponent).Set("slide", "1")
	st.(*app.StateComponent).Set("slideCount", strconv.Itoa(len(deck.Slides)))
	a.Coordinator().Set("slide", "1")
	ui, _ := a.Component("presenter-ui")
	a.Coordinator().Register("presenter-ui", ui.(*app.UIComponent))
	return a
}

// SlidesResource describes the deck as transferable data: "MAs just need
// to carry the slides to the destination" (§5 demo 2).
func SlidesResource(deck media.SlideDeck, host string) owl.Resource {
	return owl.Resource{
		ID: "slides", Class: rdf.IMCL("SlideDeck"), Host: host,
		SizeBytes: deck.Size(), Transferable: true, Substitutable: false,
	}
}

// SlideShowSkeleton is a meeting room's installation: "each meeting room
// is equipped with a presentation application, a projector, what lacks is
// the slides".
func SlideShowSkeleton(host string) *app.Application {
	a := app.New("ubiquitous-slideshow", host, SlideShowDesc())
	mustAdd(a,
		app.NewSizedBlob("presenter-logic", app.KindLogic, 700<<10),
		app.NewUI("presenter-ui", 500<<10, 1024, 768),
	)
	ui, _ := a.Component("presenter-ui")
	a.Coordinator().Register("presenter-ui", ui.(*app.UIComponent))
	return a
}

// SlideShowSkeletonComponents names the skeleton's installed parts.
func SlideShowSkeletonComponents() []string { return []string{"presenter-logic", "presenter-ui"} }

// ProjectorResource describes a room's projector: substitutable,
// untransferable (the paper's canonical §4.4 example shape).
func ProjectorResource(id, host, room string) owl.Resource {
	return owl.Resource{
		ID: id, Class: rdf.IMCL("Projector"), Host: host, Location: room,
		Transferable: false, Substitutable: true,
	}
}

// HandheldEditorDesc targets PDA-class devices (small screen, no strict
// memory demands).
func HandheldEditorDesc() wsdl.Description {
	return desc("handheld-editor", "handheld editor for PDA-class devices",
		[]wsdl.Operation{{Name: "insert", Input: "text"}, {Name: "save"}},
		wsdl.Requirements{MinScreenWidth: 240, MinScreenHeight: 160, MinMemoryMB: 16})
}

// NewHandheldEditor assembles the handheld editor.
func NewHandheldEditor(host, note string) *app.Application {
	a := app.New("handheld-editor", host, HandheldEditorDesc())
	mustAdd(a,
		app.NewSizedBlob("hh-editor-logic", app.KindLogic, 120<<10),
		app.NewUI("hh-editor-ui", 80<<10, 320, 240),
		app.NewBlob("note", app.KindData, []byte(note)),
		app.NewState("hh-edit-state"),
	)
	ui, _ := a.Component("hh-editor-ui")
	a.Coordinator().Register("hh-editor-ui", ui.(*app.UIComponent))
	return a
}

// HandheldPlayerDesc targets PDA-class playback.
func HandheldPlayerDesc() wsdl.Description {
	return desc("handheld-player", "handheld music player",
		[]wsdl.Operation{{Name: "play"}, {Name: "pause"}},
		wsdl.Requirements{MinScreenWidth: 240, MinScreenHeight: 160, MinMemoryMB: 32, NeedsAudio: true})
}

// NewHandheldPlayer assembles the handheld player.
func NewHandheldPlayer(host string, song media.File) *app.Application {
	a := app.New("handheld-player", host, HandheldPlayerDesc())
	mustAdd(a,
		app.NewSizedBlob("hh-codec-logic", app.KindLogic, 200<<10),
		app.NewUI("hh-player-ui", 60<<10, 320, 240),
		app.NewBlob(song.Name, app.KindData, song.Data),
		app.NewState("hh-playback-state"),
	)
	a.BindResource(MusicResource(song, host))
	ui, _ := a.Component("hh-player-ui")
	a.Coordinator().Register("hh-player-ui", ui.(*app.UIComponent))
	return a
}

// MessengerDesc is the follow-me instant messenger's description.
func MessengerDesc() wsdl.Description {
	return desc("followme-messenger", "follow-me instant messenger with session continuity",
		[]wsdl.Operation{
			{Name: "send", Input: "text", Output: "status"},
			{Name: "history", Output: "messages"},
		},
		wsdl.Requirements{MinScreenWidth: 320, MinScreenHeight: 240, MinMemoryMB: 32})
}

// NewMessenger assembles the messenger for a user session.
func NewMessenger(host, user string) *app.Application {
	a := app.New("followme-messenger", host, MessengerDesc())
	mustAdd(a,
		app.NewSizedBlob("im-logic", app.KindLogic, 350<<10),
		app.NewUI("im-ui", 250<<10, 1024, 768),
		app.NewState("im-session"),
	)
	st, _ := a.Component("im-session")
	st.(*app.StateComponent).Set("user", user)
	st.(*app.StateComponent).Set("messageCount", "0")
	a.SetProfile(app.UserProfile{User: user, Preferences: map[string]string{}})
	ui, _ := a.Component("im-ui")
	a.Coordinator().Register("im-ui", ui.(*app.UIComponent))
	return a
}

// MessengerSend appends a message to the session state and coordinator —
// a tiny logic-controller action used by the example and tests.
func MessengerSend(a *app.Application, text string) error {
	comp, ok := a.Component("im-session")
	if !ok {
		return fmt.Errorf("demoapps: %s has no im-session", a.Name())
	}
	st, ok := comp.(*app.StateComponent)
	if !ok {
		return fmt.Errorf("demoapps: im-session has unexpected type %T", comp)
	}
	raw, _ := st.Get("messageCount")
	n, _ := strconv.Atoi(raw)
	st.Set(fmt.Sprintf("msg-%03d", n), text)
	st.Set("messageCount", strconv.Itoa(n+1))
	a.Coordinator().Set("lastMessage", text)
	return nil
}
