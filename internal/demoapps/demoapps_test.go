package demoapps

import (
	"testing"

	"mdagent/internal/app"
	"mdagent/internal/media"
	"mdagent/internal/wsdl"
)

func TestMediaPlayerAssembly(t *testing.T) {
	song := media.GenerateFile("song.mp3", 1<<20, 1)
	p := NewMediaPlayer("hostA", song)
	if p.Name() != "smart-media-player" || p.Host() != "hostA" {
		t.Fatalf("identity = %s@%s", p.Name(), p.Host())
	}
	for _, comp := range []string{"codec-logic", "player-ui", "song.mp3", "playback-state"} {
		if _, ok := p.Component(comp); !ok {
			t.Fatalf("missing component %q", comp)
		}
	}
	st, _ := p.Component("playback-state")
	if v, _ := st.(*app.StateComponent).Get("track"); v != "song.mp3" {
		t.Fatalf("track = %q", v)
	}
	if rs := p.Resources(); len(rs) != 1 || rs[0].ID != "song.mp3" || rs[0].Transferable {
		t.Fatalf("resources = %+v", rs)
	}
	// The UI observes the coordinator.
	ui, _ := p.Component("player-ui")
	p.Coordinator().Set("track", "other")
	if ui.(*app.UIComponent).Renders() != 1 {
		t.Fatal("UI not observing coordinator")
	}
	d := p.Description()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMediaPlayerSkeletonIsUIOnly(t *testing.T) {
	s := MediaPlayerSkeleton("hostB")
	if got := s.Components(); len(got) != 1 || got[0] != "player-ui" {
		t.Fatalf("skeleton components = %v", got)
	}
	if got := MediaPlayerSkeletonComponents(); len(got) != 1 || got[0] != "player-ui" {
		t.Fatalf("declared components = %v", got)
	}
}

func TestEditorAssembly(t *testing.T) {
	e := NewEditor("deskA", "hello world")
	doc, ok := e.Component("document")
	if !ok {
		t.Fatal("document missing")
	}
	snap, err := doc.Snapshot()
	if err != nil || string(snap) != "hello world" {
		t.Fatalf("document = %q, %v", snap, err)
	}
	sk := EditorSkeleton("deskB")
	if _, hasDoc := sk.Component("document"); hasDoc {
		t.Fatal("skeleton carries a document")
	}
	if len(EditorSkeletonComponents()) != 2 {
		t.Fatalf("skeleton components = %v", EditorSkeletonComponents())
	}
}

func TestSlideShowAssembly(t *testing.T) {
	deck := media.GenerateDeck("talk", 10, 1<<20, 2)
	s := NewSlideShow("mainHost", deck)
	slides, ok := s.Component("slides")
	if !ok {
		t.Fatal("slides missing")
	}
	if slides.SizeBytes() != deck.Size() {
		t.Fatalf("slides = %d bytes, want %d", slides.SizeBytes(), deck.Size())
	}
	st, _ := s.Component("show-state")
	if v, _ := st.(*app.StateComponent).Get("slideCount"); v != "10" {
		t.Fatalf("slideCount = %q", v)
	}
	res := SlidesResource(deck, "mainHost")
	if !res.Transferable || res.SizeBytes != deck.Size() {
		t.Fatalf("slides resource = %+v", res)
	}
	proj := ProjectorResource("p1", "roomHost", "room1")
	if proj.Transferable || !proj.Substitutable {
		t.Fatalf("projector resource = %+v", proj)
	}
	if _, hasSlides := SlideShowSkeleton("r").Component("slides"); hasSlides {
		t.Fatal("skeleton carries slides")
	}
}

func TestHandheldApps(t *testing.T) {
	song := media.GenerateFile("s", 1<<18, 3)
	hp := NewHandheldPlayer("pda1", song)
	if _, ok := hp.Component("hh-codec-logic"); !ok {
		t.Fatal("handheld player logic missing")
	}
	hd := hp.Description()
	if err := hd.Validate(); err != nil {
		t.Fatal(err)
	}
	he := NewHandheldEditor("pda1", "memo")
	note, _ := he.Component("note")
	snap, err := note.Snapshot()
	if err != nil || string(snap) != "memo" {
		t.Fatalf("note = %q, %v", snap, err)
	}
	if he.Description().Requires.MinScreenWidth > 240 {
		t.Fatal("handheld editor demands too much screen")
	}
}

func TestMessengerSend(t *testing.T) {
	im := NewMessenger("dorm", "carol")
	if err := MessengerSend(im, "first"); err != nil {
		t.Fatal(err)
	}
	if err := MessengerSend(im, "second"); err != nil {
		t.Fatal(err)
	}
	st, _ := im.Component("im-session")
	sc := st.(*app.StateComponent)
	if v, _ := sc.Get("messageCount"); v != "2" {
		t.Fatalf("messageCount = %q", v)
	}
	if v, _ := sc.Get("msg-001"); v != "second" {
		t.Fatalf("msg-001 = %q", v)
	}
	if v, _ := im.Coordinator().Get("lastMessage"); v != "second" {
		t.Fatalf("lastMessage = %q", v)
	}
	// Sending on an app without a session errors cleanly.
	broken := NewEditor("x", "d")
	if err := MessengerSend(broken, "x"); err == nil {
		t.Fatal("send on non-messenger accepted")
	}
}

func TestAllDescriptionsValidate(t *testing.T) {
	descs := map[string]wsdl.Description{
		"player":    MediaPlayerDesc(),
		"editor":    EditorDesc(),
		"slideshow": SlideShowDesc(),
		"hh-editor": HandheldEditorDesc(),
		"hh-player": HandheldPlayerDesc(),
		"messenger": MessengerDesc(),
	}
	for name, d := range descs {
		if err := d.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}
