// Package platform implements the agent platform MDAgent runs on — the
// from-scratch substitute for JADE 3.4 (paper §5: "the agent server is
// JADE 3.4 ... Both autonomous agents and mobile agents are implemented as
// specific agents inheriting JADE's Agent class"). It provides
// FIPA-flavoured ACL messages, JADE-style behaviours scheduled on a
// per-agent goroutine, agent lifecycle management (start / suspend /
// resume / kill), containers with an AMS (agent directory) and DF (service
// directory), remote messaging over internal/transport, and the mobility
// service that moves agents between containers.
//
// Code mobility substitution (see DESIGN.md §3.1): Go cannot ship compiled
// code, so agent migration is state-only — a moving agent is snapshotted,
// its registered type name plus state (plus, when the destination lacks
// the type, a synthetic "code image" sized like the real code) is
// transferred, and the destination re-instantiates it from a factory
// registry. This preserves the byte counts and phase structure the paper's
// evaluation measures.
package platform

import (
	"fmt"
	"strconv"
	"sync/atomic"
)

// Performative is the FIPA ACL speech act of a message.
type Performative int

// FIPA performatives used by MDAgent's agents.
const (
	Inform Performative = iota + 1
	Request
	Agree
	Refuse
	Failure
	QueryRef
	InformRef
	Propose
	AcceptProposal
	RejectProposal
	Subscribe
	Cancel
)

var performativeNames = map[Performative]string{
	Inform:         "inform",
	Request:        "request",
	Agree:          "agree",
	Refuse:         "refuse",
	Failure:        "failure",
	QueryRef:       "query-ref",
	InformRef:      "inform-ref",
	Propose:        "propose",
	AcceptProposal: "accept-proposal",
	RejectProposal: "reject-proposal",
	Subscribe:      "subscribe",
	Cancel:         "cancel",
}

func (p Performative) String() string {
	if n, ok := performativeNames[p]; ok {
		return n
	}
	return "invalid"
}

// ACLMessage is a FIPA-ACL-style message between agents.
type ACLMessage struct {
	Performative   Performative
	Sender         string // fully qualified agent name
	Receiver       string
	ConversationID string
	Protocol       string // e.g. "fipa-request"
	Ontology       string // e.g. "mdagent-mobility"
	ReplyWith      string
	InReplyTo      string
	Content        []byte // application payload (gob/JSON per ontology)
}

// String renders a compact human-readable form for logs.
func (m ACLMessage) String() string {
	return fmt.Sprintf("(%s :from %s :to %s :conv %s :bytes %d)",
		m.Performative, m.Sender, m.Receiver, m.ConversationID, len(m.Content))
}

// Reply builds a reply skeleton: receiver/sender swapped, conversation
// preserved, in-reply-to filled from reply-with.
func (m ACLMessage) Reply(p Performative, content []byte) ACLMessage {
	return ACLMessage{
		Performative:   p,
		Sender:         m.Receiver,
		Receiver:       m.Sender,
		ConversationID: m.ConversationID,
		Protocol:       m.Protocol,
		Ontology:       m.Ontology,
		InReplyTo:      m.ReplyWith,
		Content:        content,
	}
}

// Template filters mailbox messages.
type Template func(ACLMessage) bool

// MatchAll accepts every message.
func MatchAll() Template { return func(ACLMessage) bool { return true } }

// MatchPerformative accepts messages with the given performative.
func MatchPerformative(p Performative) Template {
	return func(m ACLMessage) bool { return m.Performative == p }
}

// MatchConversation accepts messages in the given conversation.
func MatchConversation(id string) Template {
	return func(m ACLMessage) bool { return m.ConversationID == id }
}

// MatchOntology accepts messages with the given ontology.
func MatchOntology(o string) Template {
	return func(m ACLMessage) bool { return m.Ontology == o }
}

// MatchAnd conjoins templates.
func MatchAnd(ts ...Template) Template {
	return func(m ACLMessage) bool {
		for _, t := range ts {
			if !t(m) {
				return false
			}
		}
		return true
	}
}

var convCounter atomic.Uint64

// NewConversationID returns a process-unique conversation id.
func NewConversationID(prefix string) string {
	return prefix + "-" + strconv.FormatUint(convCounter.Add(1), 10)
}
