package platform

import (
	"context"
	"fmt"
	"sync"
)

// AgentState is the lifecycle state of an agent, following JADE's model.
type AgentState int

// Agent lifecycle states.
const (
	StateInitiated AgentState = iota + 1
	StateActive
	StateSuspended
	StateMoving
	StateDeleted
)

func (s AgentState) String() string {
	switch s {
	case StateInitiated:
		return "initiated"
	case StateActive:
		return "active"
	case StateSuspended:
		return "suspended"
	case StateMoving:
		return "moving"
	case StateDeleted:
		return "deleted"
	default:
		return "invalid"
	}
}

// Body is the user-defined part of an agent (what a JADE user puts in
// their Agent subclass). Setup runs once when the agent starts and should
// register behaviours.
type Body interface {
	Setup(a *Agent) error
}

// MobileBody is a Body whose agent can migrate: its state must serialize
// to bytes and restore on the far side.
type MobileBody interface {
	Body
	Snapshot() ([]byte, error)
	Restore(state []byte) error
}

// Agent is one schedulable agent: a mailbox, a behaviour queue, and a
// scheduler goroutine, living in a Container.
type Agent struct {
	name      string
	container *Container
	body      Body

	mu         sync.Mutex
	cond       *sync.Cond
	state      AgentState
	parked     bool // scheduler is waiting (quiesced)
	mailbox    []ACLMessage
	mailSeq    uint64 // bumped on every Post
	behaviours []Behaviour
	added      []Behaviour
	done       chan struct{}
}

func newAgent(name string, body Body, c *Container) *Agent {
	a := &Agent{
		name:      name,
		container: c,
		body:      body,
		state:     StateInitiated,
		done:      make(chan struct{}),
	}
	a.cond = sync.NewCond(&a.mu)
	return a
}

// Name returns the agent's platform-unique name.
func (a *Agent) Name() string { return a.name }

// Container returns the agent's current container.
func (a *Agent) Container() *Container { return a.container }

// Body returns the user body (for inspection in tests and tools).
func (a *Agent) Body() Body { return a.body }

// State returns the agent's lifecycle state.
func (a *Agent) State() AgentState {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.state
}

// start transitions Initiated -> Active, runs Setup, and spawns the
// scheduler. Called by the container.
func (a *Agent) start() error {
	a.mu.Lock()
	if a.state != StateInitiated {
		a.mu.Unlock()
		return fmt.Errorf("platform: agent %s cannot start from state %s", a.name, a.state)
	}
	a.state = StateActive
	a.mu.Unlock()
	if a.body != nil {
		if err := a.body.Setup(a); err != nil {
			a.mu.Lock()
			a.state = StateDeleted
			a.mu.Unlock()
			close(a.done)
			return fmt.Errorf("platform: agent %s setup: %w", a.name, err)
		}
	}
	go a.run()
	return nil
}

// AddBehaviour schedules a behaviour on the agent.
func (a *Agent) AddBehaviour(b Behaviour) {
	a.mu.Lock()
	a.added = append(a.added, b)
	a.cond.Broadcast()
	a.mu.Unlock()
}

// Post delivers a message into the mailbox (called by the container).
func (a *Agent) Post(msg ACLMessage) {
	a.mu.Lock()
	a.mailbox = append(a.mailbox, msg)
	a.mailSeq++
	a.cond.Broadcast()
	a.mu.Unlock()
}

// Receive pops the first mailbox message matching tmpl, non-blocking.
func (a *Agent) Receive(tmpl Template) (ACLMessage, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for i, m := range a.mailbox {
		if tmpl == nil || tmpl(m) {
			a.mailbox = append(a.mailbox[:i], a.mailbox[i+1:]...)
			return m, true
		}
	}
	return ACLMessage{}, false
}

// ReceiveWait blocks until a matching message arrives or ctx is done.
func (a *Agent) ReceiveWait(ctx context.Context, tmpl Template) (ACLMessage, error) {
	// Wake the cond when ctx is cancelled so Wait can observe it.
	stop := context.AfterFunc(ctx, func() {
		a.mu.Lock()
		a.cond.Broadcast()
		a.mu.Unlock()
	})
	defer stop()
	a.mu.Lock()
	defer a.mu.Unlock()
	for {
		for i, m := range a.mailbox {
			if tmpl == nil || tmpl(m) {
				a.mailbox = append(a.mailbox[:i], a.mailbox[i+1:]...)
				return m, nil
			}
		}
		if err := ctx.Err(); err != nil {
			return ACLMessage{}, err
		}
		if a.state == StateDeleted {
			return ACLMessage{}, fmt.Errorf("platform: agent %s deleted", a.name)
		}
		a.cond.Wait()
	}
}

// MailboxLen reports queued messages (diagnostics).
func (a *Agent) MailboxLen() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.mailbox)
}

// Send routes an ACL message from this agent through the platform.
func (a *Agent) Send(msg ACLMessage) error {
	msg.Sender = a.name
	return a.container.route(msg)
}

// RequestReply sends msg and waits for a reply in the same conversation.
func (a *Agent) RequestReply(ctx context.Context, msg ACLMessage) (ACLMessage, error) {
	if msg.ConversationID == "" {
		msg.ConversationID = NewConversationID(a.name)
	}
	if err := a.Send(msg); err != nil {
		return ACLMessage{}, err
	}
	return a.ReceiveWait(ctx, MatchConversation(msg.ConversationID))
}

// Suspend parks the agent after the current behaviour action completes.
func (a *Agent) Suspend() {
	a.mu.Lock()
	if a.state == StateActive {
		a.state = StateSuspended
		a.cond.Broadcast()
	}
	a.mu.Unlock()
}

// Resume reactivates a suspended agent.
func (a *Agent) Resume() {
	a.mu.Lock()
	if a.state == StateSuspended || a.state == StateMoving {
		a.state = StateActive
		a.cond.Broadcast()
	}
	a.mu.Unlock()
}

// Kill terminates the agent and waits for its scheduler to exit.
func (a *Agent) Kill() {
	a.mu.Lock()
	if a.state == StateDeleted {
		a.mu.Unlock()
		<-a.done
		return
	}
	prev := a.state
	a.state = StateDeleted
	a.cond.Broadcast()
	a.mu.Unlock()
	if prev == StateInitiated {
		// Scheduler never started; close done ourselves.
		close(a.done)
	}
	<-a.done
}

// setMoving transitions to the Moving state for migration, parking the
// scheduler. Returns false if the agent is not active or suspended.
func (a *Agent) setMoving() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.state != StateActive && a.state != StateSuspended {
		return false
	}
	a.state = StateMoving
	a.cond.Broadcast()
	return true
}

// awaitParked blocks until the scheduler has quiesced (parked) or exited.
func (a *Agent) awaitParked() {
	a.mu.Lock()
	for !a.parked && a.state != StateDeleted {
		a.cond.Wait()
	}
	a.mu.Unlock()
}

// run is the scheduler goroutine: JADE-style rounds over the behaviour
// queue, parking when every behaviour is blocked and no new mail arrived.
func (a *Agent) run() {
	defer close(a.done)
	var seenMail uint64
	for {
		a.mu.Lock()
		// Absorb newly added behaviours.
		a.behaviours = append(a.behaviours, a.added...)
		a.added = nil

		switch a.state {
		case StateDeleted:
			a.parked = true
			a.cond.Broadcast()
			a.mu.Unlock()
			return
		case StateSuspended, StateMoving:
			a.parked = true
			a.cond.Broadcast()
			a.cond.Wait()
			a.parked = false
			a.mu.Unlock()
			continue
		}

		if len(a.behaviours) == 0 {
			a.parked = true
			a.cond.Broadcast()
			a.cond.Wait()
			a.parked = false
			a.mu.Unlock()
			continue
		}
		behs := make([]Behaviour, len(a.behaviours))
		copy(behs, a.behaviours)
		seenMail = a.mailSeq
		a.mu.Unlock()

		// One round outside the lock.
		progress := false
		var remaining []Behaviour
		for i, b := range behs {
			if a.State() != StateActive {
				remaining = append(remaining, behs[i:]...)
				break
			}
			switch b.Action(a) {
			case StatusDone:
				progress = true
			case StatusContinue:
				progress = true
				remaining = append(remaining, b)
			default: // StatusBlocked
				remaining = append(remaining, b)
			}
		}

		a.mu.Lock()
		a.behaviours = remaining
		noNewInput := a.mailSeq == seenMail && len(a.added) == 0
		if !progress && noNewInput && a.state == StateActive {
			a.parked = true
			a.cond.Broadcast()
			a.cond.Wait()
			a.parked = false
		}
		a.mu.Unlock()
	}
}
