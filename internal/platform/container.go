package platform

import (
	"fmt"
	"sort"
	"sync"

	"mdagent/internal/netsim"
	"mdagent/internal/transport"
)

// MsgACL is the transport message type carrying ACL messages between
// containers.
const MsgACL = "platform.acl"

// ServiceAd is a DF (directory facilitator) advertisement.
type ServiceAd struct {
	Agent string // providing agent
	Type  string // service type, e.g. "mobility-manager"
	Name  string // service instance name
}

// Platform is the agent platform: the AMS (agent directory), the DF
// (service directory), and the set of containers. It plays the role of
// JADE's main container.
type Platform struct {
	fabric *transport.LocalFabric
	net    *netsim.Network // optional; enables CPU cost charging

	mu         sync.RWMutex
	containers map[string]*Container // container name -> container
	ams        map[string]string     // agent name -> container name
	df         map[string][]ServiceAd
}

// NewPlatform creates a platform over a local fabric. net may be nil;
// when present, agent migration charges serialize/deserialize CPU costs
// to the hosts involved.
func NewPlatform(fabric *transport.LocalFabric, net *netsim.Network) *Platform {
	return &Platform{
		fabric:     fabric,
		net:        net,
		containers: make(map[string]*Container),
		ams:        make(map[string]string),
		df:         make(map[string][]ServiceAd),
	}
}

// NewContainer creates a container on a netsim host. The container name
// doubles as its transport endpoint name.
func (p *Platform) NewContainer(name, host string) (*Container, error) {
	ep, err := p.fabric.Attach(name, host)
	if err != nil {
		return nil, err
	}
	c := &Container{
		platform: p,
		name:     name,
		host:     host,
		ep:       ep,
		agents:   make(map[string]*Agent),
		types:    newTypeRegistry(),
	}
	ep.Handle(MsgACL, c.handleRemoteACL)
	ep.Handle(MsgMove, c.handleMove)
	ep.Handle(MsgClone, c.handleClone)
	p.mu.Lock()
	p.containers[name] = c
	p.mu.Unlock()
	return c, nil
}

// Container looks up a container by name.
func (p *Platform) Container(name string) (*Container, bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	c, ok := p.containers[name]
	return c, ok
}

// WhereIs returns the container name hosting an agent (AMS lookup).
func (p *Platform) WhereIs(agent string) (string, bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	c, ok := p.ams[agent]
	return c, ok
}

// registerAgent binds an agent name to a container in the AMS.
func (p *Platform) registerAgent(agent, container string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if existing, ok := p.ams[agent]; ok && existing != container {
		return fmt.Errorf("platform: agent name %q already registered on %s", agent, existing)
	}
	p.ams[agent] = container
	return nil
}

func (p *Platform) unregisterAgent(agent string) {
	p.mu.Lock()
	delete(p.ams, agent)
	// Drop DF ads from this agent.
	for typ, ads := range p.df {
		kept := ads[:0]
		for _, ad := range ads {
			if ad.Agent != agent {
				kept = append(kept, ad)
			}
		}
		if len(kept) == 0 {
			delete(p.df, typ)
		} else {
			p.df[typ] = kept
		}
	}
	p.mu.Unlock()
}

// RegisterService advertises a service in the DF.
func (p *Platform) RegisterService(ad ServiceAd) {
	p.mu.Lock()
	p.df[ad.Type] = append(p.df[ad.Type], ad)
	p.mu.Unlock()
}

// SearchService returns DF advertisements of a service type, sorted by
// agent name.
func (p *Platform) SearchService(serviceType string) []ServiceAd {
	p.mu.RLock()
	defer p.mu.RUnlock()
	ads := make([]ServiceAd, len(p.df[serviceType]))
	copy(ads, p.df[serviceType])
	sort.Slice(ads, func(i, j int) bool { return ads[i].Agent < ads[j].Agent })
	return ads
}

// Agents returns all registered agent names, sorted (diagnostics).
func (p *Platform) Agents() []string {
	p.mu.RLock()
	defer p.mu.RUnlock()
	names := make([]string, 0, len(p.ams))
	for n := range p.ams {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Container hosts agents on one netsim host, with a transport endpoint
// for inter-container traffic and a local factory registry of installed
// agent/component types.
type Container struct {
	platform *Platform
	name     string
	host     string
	ep       *transport.Endpoint

	mu     sync.RWMutex
	agents map[string]*Agent
	types  *typeRegistry
}

// Name returns the container name.
func (c *Container) Name() string { return c.name }

// Host returns the netsim host id the container runs on.
func (c *Container) Host() string { return c.host }

// Platform returns the owning platform.
func (c *Container) Platform() *Platform { return c.platform }

// CreateAgent creates and starts an agent with the given body.
func (c *Container) CreateAgent(name string, body Body) (*Agent, error) {
	if err := c.platform.registerAgent(name, c.name); err != nil {
		return nil, err
	}
	a := newAgent(name, body, c)
	c.mu.Lock()
	c.agents[name] = a
	c.mu.Unlock()
	if err := a.start(); err != nil {
		c.removeAgent(name)
		return nil, err
	}
	return a, nil
}

// Agent looks up a local agent.
func (c *Container) Agent(name string) (*Agent, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	a, ok := c.agents[name]
	return a, ok
}

// LocalAgents returns local agent names, sorted.
func (c *Container) LocalAgents() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.agents))
	for n := range c.agents {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// KillAgent terminates a local agent and deregisters it.
func (c *Container) KillAgent(name string) error {
	c.mu.Lock()
	a, ok := c.agents[name]
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("platform: no agent %q on %s", name, c.name)
	}
	a.Kill()
	c.removeAgent(name)
	return nil
}

func (c *Container) removeAgent(name string) {
	c.mu.Lock()
	delete(c.agents, name)
	c.mu.Unlock()
	c.platform.unregisterAgent(name)
}

// route delivers an ACL message: locally when the receiver lives here,
// remotely via the destination container's endpoint otherwise.
func (c *Container) route(msg ACLMessage) error {
	if msg.Receiver == "" {
		return fmt.Errorf("platform: message has no receiver: %s", msg)
	}
	c.mu.RLock()
	local, isLocal := c.agents[msg.Receiver]
	c.mu.RUnlock()
	if isLocal {
		local.Post(msg)
		return nil
	}
	destContainer, ok := c.platform.WhereIs(msg.Receiver)
	if !ok {
		return fmt.Errorf("platform: unknown agent %q", msg.Receiver)
	}
	payload, err := transport.Encode(msg)
	if err != nil {
		return err
	}
	return c.ep.Send(destContainer, MsgACL, payload)
}

// handleRemoteACL posts an inbound remote ACL message to the local agent.
func (c *Container) handleRemoteACL(tm transport.Message) ([]byte, error) {
	var msg ACLMessage
	if err := transport.Decode(tm.Payload, &msg); err != nil {
		return nil, err
	}
	c.mu.RLock()
	a, ok := c.agents[msg.Receiver]
	c.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("platform: %s has no agent %q", c.name, msg.Receiver)
	}
	a.Post(msg)
	return nil, nil
}
