package platform

// BehaviourStatus is what a behaviour's Action reports to the scheduler.
type BehaviourStatus int

// Behaviour statuses.
const (
	// StatusContinue reschedules the behaviour in the next round.
	StatusContinue BehaviourStatus = iota + 1
	// StatusBlocked parks the behaviour until new mail arrives.
	StatusBlocked
	// StatusDone removes the behaviour.
	StatusDone
)

// Behaviour is a JADE-style unit of agent activity, executed repeatedly by
// the agent's scheduler goroutine. Action must not block indefinitely —
// use the agent's non-blocking Receive and return StatusBlocked to wait
// for mail.
type Behaviour interface {
	Action(a *Agent) BehaviourStatus
}

// BehaviourFunc adapts a function to Behaviour.
type BehaviourFunc func(a *Agent) BehaviourStatus

// Action implements Behaviour.
func (f BehaviourFunc) Action(a *Agent) BehaviourStatus { return f(a) }

// OneShot runs fn exactly once.
func OneShot(fn func(a *Agent)) Behaviour {
	return BehaviourFunc(func(a *Agent) BehaviourStatus {
		fn(a)
		return StatusDone
	})
}

// Cyclic runs fn every scheduling round until the agent dies. fn should
// return StatusBlocked when it has no work, to avoid spinning.
func Cyclic(fn func(a *Agent) BehaviourStatus) Behaviour {
	return BehaviourFunc(fn)
}

// MessageHandler runs fn for every mailbox message matching tmpl and
// blocks between messages — the workhorse for reactive agents.
func MessageHandler(tmpl Template, fn func(a *Agent, msg ACLMessage)) Behaviour {
	return BehaviourFunc(func(a *Agent) BehaviourStatus {
		msg, ok := a.Receive(tmpl)
		if !ok {
			return StatusBlocked
		}
		fn(a, msg)
		return StatusContinue
	})
}

// Sequence runs behaviours one after another; each child runs (possibly
// over many rounds) until it reports done, then the next starts.
func Sequence(children ...Behaviour) Behaviour {
	idx := 0
	return BehaviourFunc(func(a *Agent) BehaviourStatus {
		for idx < len(children) {
			switch children[idx].Action(a) {
			case StatusDone:
				idx++
				continue
			case StatusBlocked:
				return StatusBlocked
			default:
				return StatusContinue
			}
		}
		return StatusDone
	})
}

// Ticker runs fn every n scheduling opportunities (a lightweight stand-in
// for JADE's TickerBehaviour; rounds, not wall time, so it composes with
// virtual clocks).
func Ticker(n int, fn func(a *Agent)) Behaviour {
	if n < 1 {
		n = 1
	}
	count := 0
	return BehaviourFunc(func(a *Agent) BehaviourStatus {
		count++
		if count%n == 0 {
			fn(a)
		}
		return StatusContinue
	})
}
