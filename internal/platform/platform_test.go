package platform

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"mdagent/internal/netsim"
	"mdagent/internal/transport"
	"mdagent/internal/vclock"
)

// echoBody replies to every Request with an Inform echoing the content.
type echoBody struct{}

func (e *echoBody) Setup(a *Agent) error {
	a.AddBehaviour(MessageHandler(MatchPerformative(Request), func(a *Agent, msg ACLMessage) {
		reply := msg.Reply(Inform, msg.Content)
		if err := a.Send(reply); err != nil {
			panic(err) // test-only body; failures surface loudly
		}
	}))
	return nil
}

// counterBody is a mobile body: its state is a counter.
type counterBody struct {
	mu    sync.Mutex
	Count int
}

func (c *counterBody) Setup(a *Agent) error {
	a.AddBehaviour(MessageHandler(MatchPerformative(Inform), func(a *Agent, msg ACLMessage) {
		c.mu.Lock()
		c.Count++
		c.mu.Unlock()
	}))
	return nil
}

func (c *counterBody) Snapshot() ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return json.Marshal(struct{ Count int }{c.Count})
}

func (c *counterBody) Restore(state []byte) error {
	var s struct{ Count int }
	if err := json.Unmarshal(state, &s); err != nil {
		return err
	}
	c.mu.Lock()
	c.Count = s.Count
	c.mu.Unlock()
	return nil
}

func (c *counterBody) value() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.Count
}

func testRig(t *testing.T) (*Platform, *Container, *Container, *vclock.Virtual) {
	t.Helper()
	clk := vclock.NewVirtual(time.Unix(0, 0))
	net := netsim.New(clk, netsim.WithSeed(2))
	if _, err := net.AddHost("hostA", "lab", netsim.Pentium4_1700(), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := net.AddHost("hostB", "lab", netsim.PentiumM_1600(), 0); err != nil {
		t.Fatal(err)
	}
	fab := transport.NewLocalFabric(net)
	t.Cleanup(func() { fab.Close() })
	p := NewPlatform(fab, net)
	ca, err := p.NewContainer("main", "hostA")
	if err != nil {
		t.Fatal(err)
	}
	cb, err := p.NewContainer("remote", "hostB")
	if err != nil {
		t.Fatal(err)
	}
	return p, ca, cb, clk
}

func ctxT(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestAgentLifecycle(t *testing.T) {
	_, ca, _, _ := testRig(t)
	a, err := ca.CreateAgent("echo", &echoBody{})
	if err != nil {
		t.Fatal(err)
	}
	if a.State() != StateActive {
		t.Fatalf("state = %v, want active", a.State())
	}
	a.Suspend()
	if got := a.State(); got != StateSuspended {
		t.Fatalf("state after suspend = %v", got)
	}
	a.Resume()
	if got := a.State(); got != StateActive {
		t.Fatalf("state after resume = %v", got)
	}
	if err := ca.KillAgent("echo"); err != nil {
		t.Fatal(err)
	}
	if got := a.State(); got != StateDeleted {
		t.Fatalf("state after kill = %v", got)
	}
	if _, ok := ca.Agent("echo"); ok {
		t.Fatal("agent still listed after kill")
	}
	if err := ca.KillAgent("echo"); err == nil {
		t.Fatal("double kill accepted")
	}
}

func TestDuplicateAgentNameRejected(t *testing.T) {
	_, ca, cb, _ := testRig(t)
	if _, err := ca.CreateAgent("x", &echoBody{}); err != nil {
		t.Fatal(err)
	}
	if _, err := cb.CreateAgent("x", &echoBody{}); err == nil {
		t.Fatal("duplicate agent name accepted across containers")
	}
}

func TestLocalRequestReply(t *testing.T) {
	_, ca, _, _ := testRig(t)
	if _, err := ca.CreateAgent("echo", &echoBody{}); err != nil {
		t.Fatal(err)
	}
	caller, err := ca.CreateAgent("caller", nil)
	if err != nil {
		t.Fatal(err)
	}
	reply, err := caller.RequestReply(ctxT(t), ACLMessage{
		Performative: Request, Receiver: "echo", Content: []byte("ping"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if reply.Performative != Inform || string(reply.Content) != "ping" {
		t.Fatalf("reply = %s %q", reply.Performative, reply.Content)
	}
	if reply.Sender != "echo" || reply.Receiver != "caller" {
		t.Fatalf("reply routing = %+v", reply)
	}
}

func TestRemoteRequestReplyAcrossContainers(t *testing.T) {
	_, ca, cb, _ := testRig(t)
	if _, err := cb.CreateAgent("echo", &echoBody{}); err != nil {
		t.Fatal(err)
	}
	caller, err := ca.CreateAgent("caller", nil)
	if err != nil {
		t.Fatal(err)
	}
	reply, err := caller.RequestReply(ctxT(t), ACLMessage{
		Performative: Request, Receiver: "echo", Content: []byte("cross"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if string(reply.Content) != "cross" {
		t.Fatalf("reply content = %q", reply.Content)
	}
}

func TestSendToUnknownAgentFails(t *testing.T) {
	_, ca, _, _ := testRig(t)
	a, err := ca.CreateAgent("solo", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Send(ACLMessage{Performative: Inform, Receiver: "ghost"}); err == nil {
		t.Fatal("send to unknown agent succeeded")
	}
	if err := a.Send(ACLMessage{Performative: Inform}); err == nil {
		t.Fatal("send without receiver succeeded")
	}
}

func TestAMSAndDF(t *testing.T) {
	p, ca, cb, _ := testRig(t)
	if _, err := ca.CreateAgent("a1", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := cb.CreateAgent("b1", nil); err != nil {
		t.Fatal(err)
	}
	if where, ok := p.WhereIs("b1"); !ok || where != "remote" {
		t.Fatalf("WhereIs(b1) = %q, %v", where, ok)
	}
	if agents := p.Agents(); len(agents) != 2 || agents[0] != "a1" {
		t.Fatalf("Agents = %v", agents)
	}
	p.RegisterService(ServiceAd{Agent: "b1", Type: "mobility-manager", Name: "mm"})
	ads := p.SearchService("mobility-manager")
	if len(ads) != 1 || ads[0].Agent != "b1" {
		t.Fatalf("SearchService = %v", ads)
	}
	// Killing the agent cleans the DF.
	if err := cb.KillAgent("b1"); err != nil {
		t.Fatal(err)
	}
	if ads := p.SearchService("mobility-manager"); len(ads) != 0 {
		t.Fatalf("DF retains dead agent: %v", ads)
	}
	if _, ok := p.WhereIs("b1"); ok {
		t.Fatal("AMS retains dead agent")
	}
}

func TestBehaviourSequenceAndTicker(t *testing.T) {
	_, ca, _, _ := testRig(t)
	a, err := ca.CreateAgent("seq", nil)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var order []string
	var wg sync.WaitGroup
	wg.Add(1)
	a.AddBehaviour(Sequence(
		OneShot(func(*Agent) { mu.Lock(); order = append(order, "first"); mu.Unlock() }),
		OneShot(func(*Agent) { mu.Lock(); order = append(order, "second"); mu.Unlock() }),
		OneShot(func(*Agent) { wg.Done() }),
	))
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 2 || order[0] != "first" || order[1] != "second" {
		t.Fatalf("order = %v", order)
	}
}

func TestReceiveWaitCancellation(t *testing.T) {
	_, ca, _, _ := testRig(t)
	a, err := ca.CreateAgent("waiter", nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := a.ReceiveWait(ctx, MatchAll()); err == nil {
		t.Fatal("ReceiveWait returned without message or cancellation")
	}
}

func TestMoveAgentStateOnly(t *testing.T) {
	_, ca, cb, clk := testRig(t)
	RegisterType("test.counter", func() MobileBody { return &counterBody{} })
	if err := ca.Install("test.counter"); err != nil {
		t.Fatal(err)
	}
	if err := cb.Install("test.counter"); err != nil {
		t.Fatal(err)
	}
	a, err := ca.CreateAgent("ctr", &counterBody{Count: 41})
	if err != nil {
		t.Fatal(err)
	}
	_ = a

	before := clk.Now()
	out, err := ca.MoveAgent(ctxT(t), "ctr", "remote", "test.counter", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !out.DestHadType || out.CarriedCode || out.CodeBytes != 0 {
		t.Fatalf("outcome = %+v, want state-only move", out)
	}
	if out.StateBytes <= 0 {
		t.Fatalf("StateBytes = %d", out.StateBytes)
	}
	// Virtual time advanced: serialize + transfer + deserialize.
	if clk.Now().Sub(before) <= 0 {
		t.Fatal("move charged no virtual time")
	}
	// Gone from source, alive at destination with restored state.
	if _, ok := ca.Agent("ctr"); ok {
		t.Fatal("agent still on source after move")
	}
	moved, ok := cb.Agent("ctr")
	if !ok {
		t.Fatal("agent missing at destination")
	}
	body, ok := moved.Body().(*counterBody)
	if !ok {
		t.Fatalf("body type = %T", moved.Body())
	}
	if body.value() != 41 {
		t.Fatalf("restored count = %d, want 41", body.value())
	}
	// The moved agent still works: an Inform bumps the counter.
	sender, err := ca.CreateAgent("sender", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := sender.Send(ACLMessage{Performative: Inform, Receiver: "ctr"}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for body.value() != 42 {
		if time.Now().After(deadline) {
			t.Fatalf("count = %d, want 42", body.value())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestMoveCarriesCodeImageWhenTypeMissing(t *testing.T) {
	_, ca, cb, _ := testRig(t)
	RegisterType("test.counter2", func() MobileBody { return &counterBody{} })
	if err := ca.Install("test.counter2"); err != nil {
		t.Fatal(err)
	}
	// cb deliberately lacks the type.
	if cb.Installed("test.counter2") {
		t.Fatal("precondition: remote should lack type")
	}
	if _, err := ca.CreateAgent("c2", &counterBody{Count: 7}); err != nil {
		t.Fatal(err)
	}

	// Without a code image the move must fail and the agent must survive.
	_, err := ca.MoveAgent(ctxT(t), "c2", "remote", "test.counter2", nil)
	if err == nil || !strings.Contains(err.Error(), "code image") {
		t.Fatalf("err = %v, want code-image failure", err)
	}
	a, ok := ca.Agent("c2")
	if !ok {
		t.Fatal("agent lost after failed move")
	}
	if got := a.State(); got != StateActive {
		t.Fatalf("state after failed move = %v, want active (resumed)", got)
	}

	// With a code image the move succeeds and installs the type.
	img := make([]byte, 128<<10) // 128 KiB of "code"
	out, err := ca.MoveAgent(ctxT(t), "c2", "remote", "test.counter2", img)
	if err != nil {
		t.Fatal(err)
	}
	if !out.CarriedCode || out.DestHadType || out.CodeBytes != len(img) {
		t.Fatalf("outcome = %+v, want carried code", out)
	}
	if !cb.Installed("test.counter2") {
		t.Fatal("code image did not install the type")
	}
	moved, ok := cb.Agent("c2")
	if !ok {
		t.Fatal("agent missing after code-carrying move")
	}
	if moved.Body().(*counterBody).value() != 7 {
		t.Fatal("state lost in code-carrying move")
	}
}

func TestMoveValidation(t *testing.T) {
	_, ca, _, _ := testRig(t)
	ctx := ctxT(t)
	if _, err := ca.MoveAgent(ctx, "ghost", "remote", "t", nil); err == nil {
		t.Fatal("moving unknown agent accepted")
	}
	if _, err := ca.CreateAgent("immobile", &echoBody{}); err != nil {
		t.Fatal(err)
	}
	if _, err := ca.MoveAgent(ctx, "immobile", "remote", "t", nil); err == nil {
		t.Fatal("moving non-mobile body accepted")
	}
	RegisterType("test.counter3", func() MobileBody { return &counterBody{} })
	if _, err := ca.CreateAgent("c3", &counterBody{}); err != nil {
		t.Fatal(err)
	}
	if _, err := ca.MoveAgent(ctx, "c3", "main", "test.counter3", nil); err == nil {
		t.Fatal("move to same container accepted")
	}
	if _, err := ca.MoveAgent(ctx, "c3", "nonexistent", "test.counter3", nil); err == nil {
		t.Fatal("move to unknown container accepted")
	}
}

func TestCloneAgentKeepsOriginal(t *testing.T) {
	_, ca, cb, _ := testRig(t)
	RegisterType("test.counter4", func() MobileBody { return &counterBody{} })
	if err := cb.Install("test.counter4"); err != nil {
		t.Fatal(err)
	}
	orig := &counterBody{Count: 10}
	if _, err := ca.CreateAgent("proto", orig); err != nil {
		t.Fatal(err)
	}
	out, err := ca.CloneAgent(ctxT(t), "proto", "remote", "proto-clone1", "test.counter4", nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.RestoredName != "proto-clone1" {
		t.Fatalf("outcome = %+v", out)
	}
	// Original alive and active.
	a, ok := ca.Agent("proto")
	if !ok || a.State() != StateActive {
		t.Fatalf("original gone or not active: %v", a.State())
	}
	// Clone alive with copied state, independent of the original.
	clone, ok := cb.Agent("proto-clone1")
	if !ok {
		t.Fatal("clone missing")
	}
	cb2 := clone.Body().(*counterBody)
	if cb2.value() != 10 {
		t.Fatalf("clone state = %d", cb2.value())
	}
	orig.mu.Lock()
	orig.Count = 99
	orig.mu.Unlock()
	if cb2.value() != 10 {
		t.Fatal("clone shares state with original")
	}
}

func TestCloneValidation(t *testing.T) {
	_, ca, _, _ := testRig(t)
	ctx := ctxT(t)
	if _, err := ca.CloneAgent(ctx, "ghost", "remote", "x", "t", nil); err == nil {
		t.Fatal("cloning unknown agent accepted")
	}
	RegisterType("test.counter5", func() MobileBody { return &counterBody{} })
	if _, err := ca.CreateAgent("c5", &counterBody{}); err != nil {
		t.Fatal(err)
	}
	if _, err := ca.CloneAgent(ctx, "c5", "main", "c5", "test.counter5", nil); err == nil {
		t.Fatal("self-clone accepted")
	}
	// Clone into the same container under a new name is legal.
	if err := ca.Install("test.counter5"); err != nil {
		t.Fatal(err)
	}
	if _, err := ca.CloneAgent(ctx, "c5", "main", "c5-twin", "test.counter5", nil); err != nil {
		t.Fatal(err)
	}
	if _, ok := ca.Agent("c5-twin"); !ok {
		t.Fatal("same-container clone missing")
	}
}

func TestInstallUnknownTypeFails(t *testing.T) {
	_, ca, _, _ := testRig(t)
	if err := ca.Install("never.registered"); err == nil {
		t.Fatal("installing unknown type accepted")
	}
	if got := ca.InstalledTypes(); len(got) != 0 {
		t.Fatalf("InstalledTypes = %v", got)
	}
}

func TestCatalogTypesListed(t *testing.T) {
	RegisterType("test.zzz", func() MobileBody { return &counterBody{} })
	found := false
	for _, n := range CatalogTypes() {
		if n == "test.zzz" {
			found = true
		}
	}
	if !found {
		t.Fatal("registered type missing from catalog")
	}
}

func TestPerformativeAndStateStrings(t *testing.T) {
	if Inform.String() != "inform" || Request.String() != "request" {
		t.Fatal("performative names wrong")
	}
	if Performative(0).String() != "invalid" {
		t.Fatal("zero performative not invalid")
	}
	if StateActive.String() != "active" || AgentState(0).String() != "invalid" {
		t.Fatal("state names wrong")
	}
}

func TestTemplates(t *testing.T) {
	m := ACLMessage{Performative: Inform, ConversationID: "c1", Ontology: "o1"}
	if !MatchAnd(MatchPerformative(Inform), MatchConversation("c1"), MatchOntology("o1"))(m) {
		t.Fatal("MatchAnd rejected matching message")
	}
	if MatchAnd(MatchPerformative(Request))(m) {
		t.Fatal("MatchAnd accepted mismatched performative")
	}
	if !MatchAll()(m) {
		t.Fatal("MatchAll rejected")
	}
}

func TestNewConversationIDUnique(t *testing.T) {
	a, b := NewConversationID("x"), NewConversationID("x")
	if a == b {
		t.Fatalf("conversation ids collide: %s", a)
	}
}

func TestReplyMetadata(t *testing.T) {
	m := ACLMessage{
		Performative: Request, Sender: "a", Receiver: "b",
		ConversationID: "c9", Protocol: "fipa-request", ReplyWith: "rw1",
	}
	r := m.Reply(Inform, []byte("x"))
	if r.Sender != "b" || r.Receiver != "a" || r.ConversationID != "c9" || r.InReplyTo != "rw1" {
		t.Fatalf("reply = %+v", r)
	}
	if !strings.Contains(m.String(), "request") {
		t.Fatalf("String = %s", m.String())
	}
}
