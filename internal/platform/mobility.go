package platform

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"mdagent/internal/transport"
)

// Transport message types for the mobility service.
const (
	MsgMove  = "platform.move"
	MsgClone = "platform.clone"
)

// BodyFactory constructs a fresh body instance for a registered type.
type BodyFactory func() MobileBody

// typeRegistry is a container's set of *installed* body types. The global
// catalog (all types compiled into the binary) models code that exists
// somewhere; a container can only instantiate types it has installed —
// receiving a code image "installs" a type, simulating the dynamic class
// loading a JVM performs when a mobile agent arrives with its code
// (DESIGN.md §3.1).
type typeRegistry struct {
	mu        sync.RWMutex
	installed map[string]BodyFactory
}

func newTypeRegistry() *typeRegistry {
	return &typeRegistry{installed: make(map[string]BodyFactory)}
}

var (
	catalogMu sync.RWMutex
	catalog   = make(map[string]BodyFactory)
)

// RegisterType adds a body type to the global catalog. Call from package
// initialization of application packages (like registering gob types).
// Registering an existing name replaces the factory.
func RegisterType(name string, f BodyFactory) {
	catalogMu.Lock()
	catalog[name] = f
	catalogMu.Unlock()
}

// CatalogTypes lists globally registered type names, sorted.
func CatalogTypes() []string {
	catalogMu.RLock()
	defer catalogMu.RUnlock()
	names := make([]string, 0, len(catalog))
	for n := range catalog {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Install activates a catalog type on this container, as if its code had
// been provisioned locally.
func (c *Container) Install(typeName string) error {
	catalogMu.RLock()
	f, ok := catalog[typeName]
	catalogMu.RUnlock()
	if !ok {
		return fmt.Errorf("platform: type %q not in catalog", typeName)
	}
	c.types.mu.Lock()
	c.types.installed[typeName] = f
	c.types.mu.Unlock()
	return nil
}

// Installed reports whether the container can instantiate a type.
func (c *Container) Installed(typeName string) bool {
	c.types.mu.RLock()
	defer c.types.mu.RUnlock()
	_, ok := c.types.installed[typeName]
	return ok
}

// InstalledTypes lists the container's installed types, sorted.
func (c *Container) InstalledTypes() []string {
	c.types.mu.RLock()
	defer c.types.mu.RUnlock()
	names := make([]string, 0, len(c.types.installed))
	for n := range c.types.installed {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func (c *Container) factory(typeName string) (BodyFactory, bool) {
	c.types.mu.RLock()
	defer c.types.mu.RUnlock()
	f, ok := c.types.installed[typeName]
	return f, ok
}

// movePayload crosses the wire for both move and clone operations.
type movePayload struct {
	AgentName string
	TypeName  string
	State     []byte
	CodeImage []byte // synthetic code+UI bytes when the dest lacks the type
}

// MoveOutcome reports what a Move or Clone transferred.
type MoveOutcome struct {
	Agent        string
	From, To     string // container names
	StateBytes   int
	CodeBytes    int // 0 when the destination already had the type
	CarriedCode  bool
	TotalBytes   int
	DestHadType  bool
	RestoredName string // final agent name at the destination
}

// MoveAgent migrates a local agent to the destination container: suspend
// and quiesce, snapshot, transfer (state only when the destination has the
// type installed; state+code image otherwise), re-instantiate remotely,
// then kill the original — the paper's cut-paste / follow-me mobility. On
// remote failure the agent is resumed locally.
//
// typeName must be the agent body's registered catalog type; codeImage is
// the synthetic code+UI payload carried when the destination lacks the
// type (pass nil to fail instead when the type is missing remotely).
func (c *Container) MoveAgent(ctx context.Context, agentName, destContainer, typeName string, codeImage []byte) (MoveOutcome, error) {
	var out MoveOutcome
	c.mu.RLock()
	a, ok := c.agents[agentName]
	c.mu.RUnlock()
	if !ok {
		return out, fmt.Errorf("platform: no agent %q on %s", agentName, c.name)
	}
	if destContainer == c.name {
		return out, fmt.Errorf("platform: agent %q is already on %s", agentName, c.name)
	}
	mob, ok := a.body.(MobileBody)
	if !ok {
		return out, fmt.Errorf("platform: agent %q body is not mobile", agentName)
	}
	if _, ok := c.platform.Container(destContainer); !ok {
		return out, fmt.Errorf("platform: unknown container %q", destContainer)
	}

	// Check out: quiesce the agent (paper Fig. 4: suspend, snapshot, wrap).
	if !a.setMoving() {
		return out, fmt.Errorf("platform: agent %q in state %s cannot move", agentName, a.State())
	}
	a.awaitParked()

	state, err := mob.Snapshot()
	if err != nil {
		a.Resume()
		return out, fmt.Errorf("platform: snapshot %q: %w", agentName, err)
	}
	c.chargeSerialize(int64(len(state)))

	payload := movePayload{AgentName: agentName, TypeName: typeName, State: state, CodeImage: codeImage}
	raw, err := transport.Encode(payload)
	if err != nil {
		a.Resume()
		return out, err
	}

	// The AMS entry moves with the agent; deregister before the transfer
	// so the destination can claim the name.
	c.platform.unregisterAgent(agentName)
	var reply moveReply
	if err := c.ep.RequestDecode(ctx, destContainer, MsgMove, raw, &reply); err != nil {
		// Check-in failed: resurrect locally.
		if rerr := c.platform.registerAgent(agentName, c.name); rerr != nil {
			return out, fmt.Errorf("platform: move failed (%v) and re-register failed: %w", err, rerr)
		}
		a.Resume()
		return out, fmt.Errorf("platform: move %q to %s: %w", agentName, destContainer, err)
	}

	// Arrived: kill the original (cut half of cut-paste).
	a.Kill()
	c.mu.Lock()
	delete(c.agents, agentName)
	c.mu.Unlock()

	out = MoveOutcome{
		Agent: agentName, From: c.name, To: destContainer,
		StateBytes: len(state), CodeBytes: len(codeImage),
		CarriedCode: reply.InstalledCode, TotalBytes: len(raw),
		DestHadType: !reply.InstalledCode, RestoredName: agentName,
	}
	return out, nil
}

// CloneAgent copies a local agent to the destination container under a new
// name, leaving the original running — the paper's copy-paste /
// clone-dispatch mobility. The clone starts from the original's snapshot.
func (c *Container) CloneAgent(ctx context.Context, agentName, destContainer, newName, typeName string, codeImage []byte) (MoveOutcome, error) {
	var out MoveOutcome
	c.mu.RLock()
	a, ok := c.agents[agentName]
	c.mu.RUnlock()
	if !ok {
		return out, fmt.Errorf("platform: no agent %q on %s", agentName, c.name)
	}
	mob, ok := a.body.(MobileBody)
	if !ok {
		return out, fmt.Errorf("platform: agent %q body is not mobile", agentName)
	}
	if newName == agentName && destContainer == c.name {
		return out, fmt.Errorf("platform: clone must differ in name or container")
	}

	// Snapshot under a brief suspension so state is consistent; the
	// original resumes immediately after (copy half of copy-paste).
	wasActive := a.State() == StateActive
	if !a.setMoving() {
		return out, fmt.Errorf("platform: agent %q in state %s cannot clone", agentName, a.State())
	}
	a.awaitParked()
	state, err := mob.Snapshot()
	if wasActive {
		a.Resume()
	}
	if err != nil {
		return out, fmt.Errorf("platform: snapshot %q: %w", agentName, err)
	}
	c.chargeSerialize(int64(len(state)))

	payload := movePayload{AgentName: newName, TypeName: typeName, State: state, CodeImage: codeImage}
	raw, err := transport.Encode(payload)
	if err != nil {
		return out, err
	}
	var reply moveReply
	if err := c.ep.RequestDecode(ctx, destContainer, MsgClone, raw, &reply); err != nil {
		return out, fmt.Errorf("platform: clone %q to %s: %w", agentName, destContainer, err)
	}
	out = MoveOutcome{
		Agent: agentName, From: c.name, To: destContainer,
		StateBytes: len(state), CodeBytes: len(codeImage),
		CarriedCode: reply.InstalledCode, TotalBytes: len(raw),
		DestHadType: !reply.InstalledCode, RestoredName: newName,
	}
	return out, nil
}

type moveReply struct {
	InstalledCode bool // destination had to install the carried code image
}

// handleMove checks in an arriving agent (both move and clone land here;
// clone uses MsgClone so containers can, e.g., meter them separately).
func (c *Container) handleMove(tm transport.Message) ([]byte, error) {
	return c.checkIn(tm)
}

func (c *Container) handleClone(tm transport.Message) ([]byte, error) {
	return c.checkIn(tm)
}

func (c *Container) checkIn(tm transport.Message) ([]byte, error) {
	var p movePayload
	if err := transport.Decode(tm.Payload, &p); err != nil {
		return nil, err
	}
	installedCode := false
	f, ok := c.factory(p.TypeName)
	if !ok {
		if len(p.CodeImage) == 0 {
			return nil, fmt.Errorf("platform: %s lacks type %q and no code image was carried", c.name, p.TypeName)
		}
		// "Dynamic class loading": the code image provisions the type.
		if err := c.Install(p.TypeName); err != nil {
			return nil, fmt.Errorf("platform: install carried code for %q: %w", p.TypeName, err)
		}
		installedCode = true
		f, _ = c.factory(p.TypeName)
	}
	body := f()
	c.chargeDeserialize(int64(len(p.State)))
	if err := body.Restore(p.State); err != nil {
		return nil, fmt.Errorf("platform: restore %q: %w", p.AgentName, err)
	}
	if _, err := c.CreateAgent(p.AgentName, body); err != nil {
		return nil, err
	}
	return transport.Encode(moveReply{InstalledCode: installedCode})
}

// chargeSerialize charges the wrap CPU cost to this container's host.
func (c *Container) chargeSerialize(bytes int64) {
	if c.platform.net == nil {
		return
	}
	if h, ok := c.platform.net.Host(c.host); ok {
		c.platform.net.ChargeSerialize(h, bytes)
	}
}

// chargeDeserialize charges the restore CPU cost to this container's host.
func (c *Container) chargeDeserialize(bytes int64) {
	if c.platform.net == nil {
		return
	}
	if h, ok := c.platform.net.Host(c.host); ok {
		c.platform.net.ChargeDeserialize(h, bytes)
	}
}
