package agents

import (
	"strings"
	"sync"
	"testing"
	"time"

	"mdagent/internal/app"
	"mdagent/internal/ctxkernel"
	"mdagent/internal/media"
	"mdagent/internal/migrate"
	"mdagent/internal/netsim"
	"mdagent/internal/owl"
	"mdagent/internal/platform"
	"mdagent/internal/rdf"
	"mdagent/internal/registry"
	"mdagent/internal/space"
	"mdagent/internal/store"
	"mdagent/internal/transport"
	"mdagent/internal/vclock"
	"mdagent/internal/wsdl"
)

// agentRig wires the full stack below the core facade: netsim, fabric,
// registry, space directory, migration engines, platform containers, a
// context kernel, and one AA/MA pair on hostA.
type agentRig struct {
	clk    *vclock.Virtual
	net    *netsim.Network
	kernel *ctxkernel.Kernel
	engA   *migrate.Engine
	engB   *migrate.Engine
	aaBody *AutonomousBody
	inst   *app.Application
	contA  *platform.Container
}

func playerDesc() wsdl.Description {
	return wsdl.Description{
		Name: "player",
		Services: []wsdl.Service{{
			Name:  "playback",
			Ports: []wsdl.Port{{Name: "ctl", Operations: []wsdl.Operation{{Name: "play"}}}},
		}},
	}
}

func newAgentRig(t *testing.T) *agentRig {
	t.Helper()
	clk := vclock.NewVirtual(time.Unix(0, 0))
	net := netsim.New(clk, netsim.WithSeed(23))
	if _, err := net.AddHost("hostA", "lab-space", netsim.Pentium4_1700(), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := net.AddHost("hostB", "lab-space", netsim.PentiumM_1600(), 0); err != nil {
		t.Fatal(err)
	}
	fab := transport.NewLocalFabric(net)
	t.Cleanup(func() { fab.Close() })

	reg, err := registry.New(store.OpenMemory())
	if err != nil {
		t.Fatal(err)
	}
	dir := space.NewDirectory()
	if err := dir.AddSpace("lab-space"); err != nil {
		t.Fatal(err)
	}
	for _, h := range []string{"hostA", "hostB"} {
		if err := dir.AddHost(h, "lab-space"); err != nil {
			t.Fatal(err)
		}
	}
	if err := dir.AssignRoom("office821", "hostA"); err != nil {
		t.Fatal(err)
	}
	if err := dir.AssignRoom("office822", "hostB"); err != nil {
		t.Fatal(err)
	}

	epA, err := fab.Attach(migrate.EndpointName("hostA"), "hostA")
	if err != nil {
		t.Fatal(err)
	}
	epB, err := fab.Attach(migrate.EndpointName("hostB"), "hostB")
	if err != nil {
		t.Fatal(err)
	}
	engA := migrate.NewEngine("hostA", epA, net, dir, migrate.Direct{R: reg}, migrate.DefaultCosts())
	engB := migrate.NewEngine("hostB", epB, net, dir, migrate.Direct{R: reg}, migrate.DefaultCosts())

	libA := media.NewLibrary("hostA")
	libA.Add(media.GenerateFile("song1", 2<<20, 3))
	mediaEpA, err := fab.Attach(migrate.MediaEndpointName("hostA"), "hostA")
	if err != nil {
		t.Fatal(err)
	}
	media.ServeLibrary(libA, mediaEpA)

	engB.InstallFactory("player", func(host string) *app.Application {
		inst := app.New("player", host, playerDesc())
		if err := inst.AddComponent(app.NewUI("main-ui", 400<<10, 1024, 768)); err != nil {
			panic(err)
		}
		return inst
	})
	if err := reg.RegisterApp(registry.AppRecord{
		Name: "player", Host: "hostB", Description: playerDesc(), Components: []string{"main-ui"},
	}); err != nil {
		t.Fatal(err)
	}
	if err := reg.RegisterResource(owl.Resource{
		ID: "song1", Class: rdf.IMCL("MusicFile"), Host: "hostA", SizeBytes: 2 << 20,
	}); err != nil {
		t.Fatal(err)
	}

	// Running player on hostA.
	inst := app.New("player", "hostA", playerDesc())
	song, _ := libA.Get("song1")
	for _, c := range []app.Component{
		app.NewSizedBlob("codec-logic", app.KindLogic, 600<<10),
		app.NewUI("main-ui", 400<<10, 1024, 768),
		app.NewBlob("song1", app.KindData, song.Data),
		app.NewState("playback-state"),
	} {
		if err := inst.AddComponent(c); err != nil {
			t.Fatal(err)
		}
	}
	inst.BindResource(owl.Resource{ID: "song1", Class: rdf.IMCL("MusicFile"), Host: "hostA", SizeBytes: 2 << 20})
	if err := engA.Run(inst); err != nil {
		t.Fatal(err)
	}

	// Platform: one container per host; MA and AA live on hostA.
	plat := platform.NewPlatform(fab, net)
	contA, err := plat.NewContainer("container@hostA", "hostA")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plat.NewContainer("container@hostB", "hostB"); err != nil {
		t.Fatal(err)
	}
	kernel := ctxkernel.NewKernel()
	if _, err := StartMobileAgent(contA, "ma@hostA", engA); err != nil {
		t.Fatal(err)
	}
	aaBody := &AutonomousBody{
		Policy: DefaultPolicy("alice", "player"),
		Kernel: kernel, Dir: dir, Net: net, Engine: engA, MAName: "ma@hostA",
	}
	if _, err := StartAutonomousAgent(contA, "aa@alice", aaBody); err != nil {
		t.Fatal(err)
	}

	return &agentRig{clk: clk, net: net, kernel: kernel, engA: engA, engB: engB, aaBody: aaBody, inst: inst, contA: contA}
}

func userEvent(topic, user, room string) ctxkernel.Event {
	return ctxkernel.Event{
		Topic: topic, At: time.Unix(0, 0), Source: "test",
		Attrs: map[string]string{ctxkernel.AttrUser: user, ctxkernel.AttrRoom: room},
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestAAOrdersFollowMeOnUserMove(t *testing.T) {
	r := newAgentRig(t)
	var mu sync.Mutex
	var migrated []string
	r.kernel.Subscribe(TopicMigrated, func(ev ctxkernel.Event) {
		mu.Lock()
		migrated = append(migrated, ev.Attr("dest"))
		mu.Unlock()
	})

	// Alice leaves office821 (hostA): the AA suspends the player.
	r.kernel.Publish(userEvent(ctxkernel.TopicUserLeft, "alice", "office821"))
	waitFor(t, "suspend on exit", func() bool { return r.inst.State() == app.Suspended })

	// Alice enters office822 (hostB): the AA orders the MA to migrate.
	r.kernel.Publish(userEvent(ctxkernel.TopicUserEntered, "alice", "office822"))
	waitFor(t, "app at hostB", func() bool {
		_, ok := r.engB.App("player")
		return ok
	})
	inst, _ := r.engB.App("player")
	waitFor(t, "app running at hostB", func() bool { return inst.State() == app.Running })
	if _, still := r.engA.App("player"); still {
		t.Fatal("app still on hostA after follow-me")
	}
	waitFor(t, "migrated event", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(migrated) == 1
	})
	mu.Lock()
	defer mu.Unlock()
	if migrated[0] != "hostB" {
		t.Fatalf("migrated to %q", migrated[0])
	}
}

func TestAAIgnoresOtherUsers(t *testing.T) {
	r := newAgentRig(t)
	r.kernel.Publish(userEvent(ctxkernel.TopicUserEntered, "mallory", "office822"))
	time.Sleep(50 * time.Millisecond)
	if _, ok := r.engA.App("player"); !ok {
		t.Fatal("app moved for the wrong user")
	}
}

func TestAASameHostRoomResumesWithoutMove(t *testing.T) {
	r := newAgentRig(t)
	// Suspend via exit, then enter another room served by the SAME host.
	if err := r.aaBody.Dir.AssignRoom("office821b", "hostA"); err != nil {
		t.Fatal(err)
	}
	r.kernel.Publish(userEvent(ctxkernel.TopicUserLeft, "alice", "office821"))
	waitFor(t, "suspended", func() bool { return r.inst.State() == app.Suspended })
	r.kernel.Publish(userEvent(ctxkernel.TopicUserEntered, "alice", "office821b"))
	waitFor(t, "resumed in place", func() bool { return r.inst.State() == app.Running })
	if _, ok := r.engA.App("player"); !ok {
		t.Fatal("app left hostA for a same-host room change")
	}
}

func TestAARespectsRTTThreshold(t *testing.T) {
	r := newAgentRig(t)
	// Degrade the link far beyond the 1000 ms rule threshold.
	r.net.SetLink("hostA", "hostB", netsim.LinkProfile{BandwidthMbps: 0.001, Latency: 2 * time.Second})
	var mu sync.Mutex
	var failures []string
	r.kernel.Subscribe(TopicMigrateFailed, func(ev ctxkernel.Event) {
		mu.Lock()
		failures = append(failures, ev.Attr("reason"))
		mu.Unlock()
	})
	r.kernel.Publish(userEvent(ctxkernel.TopicUserEntered, "alice", "office822"))
	waitFor(t, "rule-blocked decision", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(failures) == 1
	})
	mu.Lock()
	reason := failures[0]
	mu.Unlock()
	if !strings.Contains(reason, "rule did not fire") {
		t.Fatalf("failure reason = %q", reason)
	}
	if _, ok := r.engA.App("player"); !ok {
		t.Fatal("app migrated despite bad network")
	}
}

func TestAAUnknownRoomIgnored(t *testing.T) {
	r := newAgentRig(t)
	r.kernel.Publish(userEvent(ctxkernel.TopicUserEntered, "alice", "atlantis"))
	time.Sleep(50 * time.Millisecond)
	if _, ok := r.engA.App("player"); !ok {
		t.Fatal("app moved to a room with no serving host")
	}
}

func TestMAExecutesCloneOrderOverACL(t *testing.T) {
	r := newAgentRig(t)
	// A scratch requester agent sends the MA a clone order and awaits the
	// FIPA reply — the full AA->MA message-passing path.
	requester, err := r.contA.CreateAgent("requester", nil)
	if err != nil {
		t.Fatal(err)
	}
	order := MoveOrder{
		App: "player", DestHost: "hostB", Mode: migrate.CloneDispatch,
		CloneName: "player-clone", Match: owl.MatchSemantic,
	}
	content, err := transport.Encode(order)
	if err != nil {
		t.Fatal(err)
	}
	reply, err := requester.RequestReply(t.Context(), platform.ACLMessage{
		Performative: platform.Request, Receiver: "ma@hostA",
		Ontology: MobilityOntology, Content: content,
	})
	if err != nil {
		t.Fatal(err)
	}
	if reply.Performative != platform.Inform {
		t.Fatalf("reply = %s", reply.Performative)
	}
	var res MoveResult
	if err := transport.Decode(reply.Content, &res); err != nil {
		t.Fatal(err)
	}
	if res.Err != "" || res.Report.RestoredApp != "player-clone" {
		t.Fatalf("result = %+v", res)
	}
	if _, ok := r.engB.App("player-clone"); !ok {
		t.Fatal("clone missing")
	}
	if _, ok := r.engA.App("player"); !ok {
		t.Fatal("master gone after clone")
	}
}

func TestMARejectsGarbageOrder(t *testing.T) {
	r := newAgentRig(t)
	requester, err := r.contA.CreateAgent("requester2", nil)
	if err != nil {
		t.Fatal(err)
	}
	reply, err := requester.RequestReply(t.Context(), platform.ACLMessage{
		Performative: platform.Request, Receiver: "ma@hostA",
		Ontology: MobilityOntology, Content: []byte("not gob"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if reply.Performative != platform.Failure {
		t.Fatalf("reply = %s, want failure", reply.Performative)
	}
}

func TestMoveOrderRoundTripsThroughACL(t *testing.T) {
	order := MoveOrder{App: "x", DestHost: "h", Mode: migrate.FollowMe, Binding: migrate.BindingAdaptive, Match: owl.MatchSemantic, Reason: "r"}
	raw, err := transport.Encode(order)
	if err != nil {
		t.Fatal(err)
	}
	var got MoveOrder
	if err := transport.Decode(raw, &got); err != nil {
		t.Fatal(err)
	}
	if got != order {
		t.Fatalf("round trip = %+v", got)
	}
}

func TestDefaultPolicy(t *testing.T) {
	p := DefaultPolicy("alice", "player")
	if p.User != "alice" || p.App != "player" || p.MaxRTTMillis != 1000 ||
		p.Binding != migrate.BindingAdaptive || p.Match != owl.MatchSemantic || !p.SuspendOnExit {
		t.Fatalf("policy = %+v", p)
	}
}

// staticLocator pins a user to a room for re-evaluation tests.
type staticLocator struct{ user, room string }

func (l staticLocator) Location(user string) (string, bool) {
	if user != l.user {
		return "", false
	}
	return l.room, true
}

// TestAAReattachesOnClusterRehome drives the agent layer's failover
// follow-up: the cluster layer re-homes the managed app onto this AA's
// host while the user has meanwhile settled in a room served elsewhere;
// the cluster.rehomed event alone must make the AA chase them.
func TestAAReattachesOnClusterRehome(t *testing.T) {
	r := newAgentRig(t)
	r.aaBody.Locator = staticLocator{user: "alice", room: "office822"}

	// Simulate failover having relaunched the player here (the rig's
	// instance already runs on hostA, the AA's engine).
	r.kernel.Publish(ctxkernel.Event{
		Topic: ctxkernel.TopicClusterRehomed, At: time.Unix(1, 0), Source: "cluster",
		Attrs: map[string]string{"app": "player", "from": "hostC", "to": "hostA", "restored": "true"},
	})

	// The AA re-evaluates: alice is in office822 (served by hostB), so it
	// orders the MA to follow her without any fresh movement event.
	waitFor(t, "app chased to hostB after rehome", func() bool {
		inst, ok := r.engB.App("player")
		return ok && inst.State() == app.Running
	})
	if _, still := r.engA.App("player"); still {
		t.Fatal("player still on hostA after post-rehome chase")
	}
}

// TestAAIgnoresRehomeOfOtherApps: a rehomed event for an app this AA does
// not manage must not trigger any order.
func TestAAIgnoresRehomeOfOtherApps(t *testing.T) {
	r := newAgentRig(t)
	r.aaBody.Locator = staticLocator{user: "alice", room: "office822"}
	r.kernel.Publish(ctxkernel.Event{
		Topic: ctxkernel.TopicClusterRehomed, At: time.Unix(1, 0), Source: "cluster",
		Attrs: map[string]string{"app": "someone-elses-app", "from": "hostC", "to": "hostA"},
	})
	time.Sleep(50 * time.Millisecond)
	if _, moved := r.engB.App("player"); moved {
		t.Fatal("AA reacted to another app's rehome")
	}
	if _, ok := r.engA.App("player"); !ok {
		t.Fatal("player left hostA without an order")
	}
}
