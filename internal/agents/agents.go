// Package agents implements MDAgent's agent layer (paper §4.3): the
// autonomous agents (AAs) that listen to context events, reason over
// profiles, registry information and rules to decide whether, where and
// what to migrate; and the mobile agents (MAs) that wrap application
// components and perform the migration. "They communicate through message
// passing": the AA sends the MA manager an ACL Request carrying a move
// order, the MA executes it through the migration engine and replies with
// the outcome. The separation of concerns mirrors the paper's design —
// "reasoning functionalities are separated and incorporated into specific
// autonomous agents" while MAs handle transmission and synchronization.
package agents

import (
	"context"
	"fmt"
	"strconv"
	"time"

	"mdagent/internal/ctxkernel"
	"mdagent/internal/migrate"
	"mdagent/internal/netsim"
	"mdagent/internal/owl"
	"mdagent/internal/platform"
	"mdagent/internal/rdf"
	"mdagent/internal/rules"
	"mdagent/internal/space"
	"mdagent/internal/transport"
)

// MobilityOntology is the ACL ontology tag for mobility conversations.
const MobilityOntology = "mdagent-mobility"

// Topics published by the agent layer (canonical strings live in
// ctxkernel's typed-event catalog; the control plane's Migrate shares
// them, so a Watch stream sees agent- and operator-driven moves
// identically).
const (
	TopicMigrated      = ctxkernel.TopicAppMigrated
	TopicMigrateFailed = ctxkernel.TopicAppMigrateFailed
)

// MoveOrder is the AA -> MA command payload.
type MoveOrder struct {
	App       string
	DestHost  string
	Mode      migrate.Mode
	CloneName string // clone-dispatch only
	Binding   migrate.BindingMode
	Match     owl.MatchMode
	Reason    string // decision trace from the rule engine
}

// MoveResult is the MA -> AA outcome payload.
type MoveResult struct {
	Report migrate.Report
	Err    string
}

// MobileAgentBody is the MA manager: it executes move orders against the
// local migration engine. It is deliberately stateless between orders, so
// it needs no Snapshot/Restore of its own.
type MobileAgentBody struct {
	Engine *migrate.Engine
}

var _ platform.Body = (*MobileAgentBody)(nil)

// Setup registers the order-handling behaviour.
func (m *MobileAgentBody) Setup(a *platform.Agent) error {
	tmpl := platform.MatchAnd(platform.MatchPerformative(platform.Request), platform.MatchOntology(MobilityOntology))
	a.AddBehaviour(platform.MessageHandler(tmpl, func(a *platform.Agent, msg platform.ACLMessage) {
		var order MoveOrder
		if err := transport.Decode(msg.Content, &order); err != nil {
			m.reply(a, msg, MoveResult{Err: err.Error()})
			return
		}
		ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
		defer cancel()
		var rep migrate.Report
		var err error
		switch order.Mode {
		case migrate.CloneDispatch:
			rep, err = m.Engine.CloneDispatch(ctx, order.App, order.DestHost, order.CloneName, order.Match)
		default:
			rep, err = m.Engine.FollowMe(ctx, order.App, order.DestHost, order.Binding, order.Match)
		}
		res := MoveResult{Report: rep}
		if err != nil {
			res.Err = err.Error()
		}
		m.reply(a, msg, res)
	}))
	return nil
}

func (m *MobileAgentBody) reply(a *platform.Agent, msg platform.ACLMessage, res MoveResult) {
	perf := platform.Inform
	if res.Err != "" {
		perf = platform.Failure
	}
	content, err := transport.Encode(res)
	if err != nil {
		return
	}
	_ = a.Send(msg.Reply(perf, content))
}

// Policy configures one autonomous agent's decision-making.
type Policy struct {
	User          string              // the user this AA serves
	App           string              // the application it manages
	Binding       migrate.BindingMode // normally adaptive
	Match         owl.MatchMode       // normally semantic
	MaxRTTMillis  float64             // paper Rule 3 threshold (1000 ms)
	SuspendOnExit bool                // suspend the app when the user leaves
}

// DefaultPolicy returns the paper's defaults for a (user, app) pair.
func DefaultPolicy(user, appName string) Policy {
	return Policy{
		User: user, App: appName,
		Binding: migrate.BindingAdaptive, Match: owl.MatchSemantic,
		MaxRTTMillis: 1000, SuspendOnExit: true,
	}
}

// Locator reports a user's current fused location; *ctxkernel.Fusion
// satisfies it.
type Locator interface {
	Location(user string) (string, bool)
}

// AutonomousBody is the AA: subscribed to the context kernel, it reacts
// to the user's movement, evaluates the move rule over an RDF fact base,
// and orders the MA to migrate. Its decisions are explainable: each order
// carries the rule derivation that justified it.
//
// An AA also re-evaluates when its application *arrives* on its host
// (app.migrated events): if the user has meanwhile moved on, the next hop
// is ordered immediately. This closes the race between a fast-moving user
// and an in-flight migration and is what makes multi-hop follow-me work.
type AutonomousBody struct {
	Policy  Policy
	Kernel  *ctxkernel.Kernel
	Dir     *space.Directory
	Net     *netsim.Network
	Engine  *migrate.Engine
	MAName  string  // mobile agent to command
	Locator Locator // optional: current-location source for re-evaluation

	ruleSet []rules.Rule
	subIDs  []int
	agent   *platform.Agent
}

var _ platform.Body = (*AutonomousBody)(nil)

// moveRule is the Fig. 6-style decision rule the AA evaluates: the user
// entered a room served by a different host and the network is good
// (response time under the threshold) => move the application there.
const moveRule = `
[MoveRule: (?u imcl:locatedIn ?room), (?room imcl:servedBy ?dest),
           (?app imcl:hostedOn ?cur), notEqual(?dest, ?cur),
           (?n imcl:responseTime ?t), lessThan(?t, ?limit)
           -> (?app imcl:moveTo ?dest)]
`

// Setup subscribes to the kernel and installs the event behaviour.
func (b *AutonomousBody) Setup(a *platform.Agent) error {
	b.agent = a
	ns := rdf.NewNamespaces()
	parsed, err := rules.Parse(moveRule, ns)
	if err != nil {
		return err
	}
	b.ruleSet = parsed

	// Context events are re-posted into the agent's mailbox so reasoning
	// runs on the agent's own scheduler, not the kernel publisher.
	repost := func(ev ctxkernel.Event) {
		content, err := transport.Encode(ev)
		if err != nil {
			return
		}
		a.Post(platform.ACLMessage{
			Performative: platform.Inform,
			Receiver:     a.Name(),
			Ontology:     "mdagent-context",
			ReplyWith:    ev.Topic,
			Content:      content,
		})
	}
	b.subIDs = append(b.subIDs, b.Kernel.Subscribe("user.*", func(ev ctxkernel.Event) {
		if ev.Attr(ctxkernel.AttrUser) != b.Policy.User {
			return
		}
		repost(ev)
	}))
	// Arrival of the managed app anywhere triggers re-evaluation here.
	b.subIDs = append(b.subIDs, b.Kernel.Subscribe(TopicMigrated, func(ev ctxkernel.Event) {
		if ev.Attr("app") != b.Policy.App {
			return
		}
		repost(ev)
	}))
	// Failover re-homing is an arrival too: when the cluster layer
	// relaunches the managed app on this AA's host, the AA re-attaches —
	// it re-evaluates immediately so a user who moved on during the
	// outage is chased without waiting for their next movement event.
	b.subIDs = append(b.subIDs, b.Kernel.Subscribe(ctxkernel.TopicClusterRehomed, func(ev ctxkernel.Event) {
		if ev.Attr("app") != b.Policy.App {
			return
		}
		repost(ev)
	}))

	tmpl := platform.MatchAnd(platform.MatchPerformative(platform.Inform), platform.MatchOntology("mdagent-context"))
	a.AddBehaviour(platform.MessageHandler(tmpl, func(a *platform.Agent, msg platform.ACLMessage) {
		var ev ctxkernel.Event
		if err := transport.Decode(msg.Content, &ev); err != nil {
			return
		}
		b.handleEvent(ev)
	}))
	return nil
}

// Unsubscribe detaches the AA from the kernel (call before killing it).
func (b *AutonomousBody) Unsubscribe() {
	for _, id := range b.subIDs {
		b.Kernel.Unsubscribe(id)
	}
	b.subIDs = nil
}

func (b *AutonomousBody) handleEvent(ev ctxkernel.Event) {
	switch ev.Topic {
	case ctxkernel.TopicUserLeft:
		if !b.Policy.SuspendOnExit {
			return
		}
		// Paper §4.3: "autonomous agents will capture this information and
		// interpret it as the user will leave the room and inform the
		// coordinator", which suspends the app after a snapshot.
		if inst, ok := b.Engine.App(b.Policy.App); ok {
			if _, err := inst.Snapshots().Record("user-left", ev.At); err == nil {
				_ = inst.Suspend()
			}
		}
	case ctxkernel.TopicUserEntered:
		b.decideAndOrder(ev)
	case TopicMigrated, ctxkernel.TopicClusterRehomed:
		// The app just landed somewhere — by migration or by failover
		// re-homing. If it landed here and the user is already in a room
		// served elsewhere, chase them.
		b.reevaluate(ev)
	}
}

// reevaluate re-runs the move decision as if the user had just entered
// their current room — the arrival-side half of multi-hop follow-me and
// the agent layer's re-attachment after failover.
func (b *AutonomousBody) reevaluate(ev ctxkernel.Event) {
	if b.Locator == nil {
		return
	}
	if _, ok := b.Engine.App(b.Policy.App); !ok {
		return
	}
	room, ok := b.Locator.Location(b.Policy.User)
	if !ok {
		return
	}
	synth := ctxkernel.Event{
		Topic: ctxkernel.TopicUserEntered, At: ev.At, Source: "aa-reevaluate",
		Attrs: map[string]string{ctxkernel.AttrUser: b.Policy.User, ctxkernel.AttrRoom: room},
	}
	b.decideAndOrder(synth)
}

// decideAndOrder builds the fact base, runs the move rule, and commands
// the MA when a move action is derived.
func (b *AutonomousBody) decideAndOrder(ev ctxkernel.Event) {
	room := ev.Attr(ctxkernel.AttrRoom)
	inst, ok := b.Engine.App(b.Policy.App)
	if !ok {
		return // app not (or no longer) hosted here
	}
	destHost, ok := b.Dir.HostForRoom(room)
	if !ok {
		return
	}
	curHost := inst.Host()
	if destHost == curHost {
		// Same host serves the new room: just resume if suspended.
		if inst.Coordinator().Frozen() {
			_ = inst.Resume()
		}
		return
	}

	// Fact base for the rule engine (paper §4.4's reasoning step).
	g := rdf.NewGraph()
	g.Add(rdf.T(rdf.IMCL(b.Policy.User), rdf.IMCL("locatedIn"), rdf.IMCL(room)))
	g.Add(rdf.T(rdf.IMCL(room), rdf.IMCL("servedBy"), rdf.IMCL(destHost)))
	g.Add(rdf.T(rdf.IMCL(b.Policy.App), rdf.IMCL("hostedOn"), rdf.IMCL(curHost)))
	rtt := b.observedRTT(curHost, destHost)
	g.Add(rdf.T(rdf.IMCL("net1"), rdf.IMCL("responseTime"), rdf.Float(rtt)))

	// Bind the policy threshold into the rule.
	bound := bindLimit(b.ruleSet, b.Policy.MaxRTTMillis)
	eng, err := rules.NewEngine(bound)
	if err != nil {
		return
	}
	res, err := eng.Infer(g)
	if err != nil {
		return
	}
	moves := g.Objects(rdf.IMCL(b.Policy.App), rdf.IMCL("moveTo"))
	if len(moves) == 0 {
		b.Kernel.PublishTyped(b.agent.Name(), ctxkernel.AppMigrateFailedEvent{
			App: b.Policy.App, Dest: destHost,
			Reason: fmt.Sprintf("rule did not fire (rtt %.0f ms, limit %.0f)", rtt, b.Policy.MaxRTTMillis),
			At:     ev.At,
		})
		return
	}
	reason := fmt.Sprintf("MoveRule fired (%d derivations; rtt %.0f ms < %.0f)", len(res.Derivations), rtt, b.Policy.MaxRTTMillis)
	b.order(ev, MoveOrder{
		App: b.Policy.App, DestHost: destHost, Mode: migrate.FollowMe,
		Binding: b.Policy.Binding, Match: b.Policy.Match, Reason: reason,
	})
}

// observedRTT prefers the engine's live estimate; absent a network model
// it reports 0 (always under threshold).
func (b *AutonomousBody) observedRTT(from, to string) float64 {
	if b.Net == nil {
		return 0
	}
	rtt, err := b.Net.ResponseTime(from, to)
	if err != nil {
		return 0
	}
	return float64(rtt.Milliseconds())
}

// bindLimit substitutes the policy threshold for the ?limit variable.
func bindLimit(rs []rules.Rule, limitMs float64) []rules.Rule {
	lit := rdf.TypedLit(strconv.FormatFloat(limitMs, 'f', -1, 64), rdf.XSDDouble)
	out := make([]rules.Rule, len(rs))
	for i, r := range rs {
		nr := r
		nr.Body = make([]rules.Clause, len(r.Body))
		copy(nr.Body, r.Body)
		for j, c := range nr.Body {
			if c.Kind != rules.ClauseBuiltin {
				continue
			}
			args := make([]rdf.Term, len(c.Args))
			for k, arg := range c.Args {
				if arg.IsVar() && arg.Value == "limit" {
					args[k] = lit
				} else {
					args[k] = arg
				}
			}
			nr.Body[j].Builtin = c.Builtin
			nr.Body[j].Args = args
			nr.Body[j].Kind = rules.ClauseBuiltin
		}
		out[i] = nr
	}
	return out
}

// order sends the MA a move request and publishes the outcome.
func (b *AutonomousBody) order(ev ctxkernel.Event, order MoveOrder) {
	content, err := transport.Encode(order)
	if err != nil {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	reply, err := b.agent.RequestReply(ctx, platform.ACLMessage{
		Performative: platform.Request,
		Receiver:     b.MAName,
		Ontology:     MobilityOntology,
		Protocol:     "fipa-request",
		Content:      content,
	})
	failed := func(msg string) ctxkernel.AppMigrateFailedEvent {
		return ctxkernel.AppMigrateFailedEvent{
			App: order.App, Dest: order.DestHost, Reason: order.Reason,
			Error: msg, At: ev.At,
		}
	}
	if err != nil {
		b.Kernel.PublishTyped(b.agent.Name(), failed(err.Error()))
		return
	}
	var res MoveResult
	if derr := transport.Decode(reply.Content, &res); derr != nil {
		b.Kernel.PublishTyped(b.agent.Name(), ctxkernel.AppMigratedEvent{
			App: order.App, Dest: order.DestHost,
			Mode: order.Mode.String(), Reason: order.Reason, At: ev.At,
		})
		return
	}
	if res.Err != "" {
		b.Kernel.PublishTyped(b.agent.Name(), failed(res.Err))
		return
	}
	b.Kernel.PublishTyped(b.agent.Name(), ctxkernel.AppMigratedEvent{
		App: order.App, Dest: order.DestHost,
		Mode: order.Mode.String(), Reason: order.Reason,
		SuspendMs: res.Report.Suspend.Milliseconds(),
		MigrateMs: res.Report.Migrate.Milliseconds(),
		ResumeMs:  res.Report.Resume.Milliseconds(),
		Bytes:     res.Report.BytesMoved, At: ev.At,
	})
}

// Managers bundle creation of the two agent kinds in a container,
// mirroring the paper's AA manager and MA manager (Fig. 2).

// StartMobileAgent creates the MA manager agent in a container.
func StartMobileAgent(c *platform.Container, name string, eng *migrate.Engine) (*platform.Agent, error) {
	a, err := c.CreateAgent(name, &MobileAgentBody{Engine: eng})
	if err != nil {
		return nil, fmt.Errorf("agents: start MA: %w", err)
	}
	c.Platform().RegisterService(platform.ServiceAd{Agent: name, Type: "mobility-manager", Name: name})
	return a, nil
}

// StartAutonomousAgent creates an AA bound to a policy.
func StartAutonomousAgent(c *platform.Container, name string, body *AutonomousBody) (*platform.Agent, error) {
	a, err := c.CreateAgent(name, body)
	if err != nil {
		return nil, fmt.Errorf("agents: start AA: %w", err)
	}
	c.Platform().RegisterService(platform.ServiceAd{Agent: name, Type: "autonomous-agent", Name: name})
	return a, nil
}
