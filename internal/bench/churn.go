package bench

import (
	"context"
	"fmt"
	"time"

	"mdagent/internal/app"
	"mdagent/internal/cluster"
	"mdagent/internal/core"
	"mdagent/internal/demoapps"
	"mdagent/internal/media"
	"mdagent/internal/netsim"
)

// ChurnResult is one host-kill experiment against a federated
// deployment. Unlike the Fig. 8-10 durations (simulated 2002-era testbed
// time on a virtual clock), these are wall-clock protocol timings: the
// gossip failure detector runs on real timers, so the numbers scale with
// the configured probe cadence, not with the simulated hardware.
type ChurnResult struct {
	Spaces      int
	Config      cluster.Config
	Convergence time.Duration // kill -> every survivor sees the host dead
	Failover    time.Duration // dead conviction -> app running on a survivor
	Total       time.Duration // kill -> app running on a survivor
	NewHost     string        // where the app was re-homed

	// State-pipeline measurements (Config.ReplicateState experiments).
	Replication    time.Duration // state write -> snapshot on every survivor center
	SnapshotBytes  int           // replicated record size (base frame + delta chain)
	SnapshotDeltas int           // delta chain length when the planted state arrived
	DeltaBytes     int           // size of the frame that carried the planted state
	StateIntact    bool          // re-homed app resumed with the replicated value
}

// churnStateValue is the in-flight state the with-state churn experiment
// plants before the kill and expects back after re-homing.
const churnStateValue = "31337"

// ChurnConfig is the gossip cadence the churn bench runs at: tight
// enough that one experiment takes tens of milliseconds, with the
// suspect->dead window (40 ms) still a clear multiple of the probe
// interval.
func ChurnConfig() cluster.Config {
	return cluster.Config{
		ProbeInterval:    2 * time.Millisecond,
		ProbeTimeout:     25 * time.Millisecond,
		SuspicionTimeout: 40 * time.Millisecond,
		SyncInterval:     5 * time.Millisecond,
		Seed:             13,
	}
}

// ChurnStateConfig is ChurnConfig with snapshot-state replication on at a
// tight capture cadence — the with-state failover experiment.
func ChurnStateConfig() cluster.Config {
	cfg := ChurnConfig()
	cfg.ReplicateState = true
	cfg.ReplicateInterval = 2 * time.Millisecond
	return cfg
}

// newFederation builds an n-space federated deployment (one host + one
// gateway per space) and returns it with the host ids, in space order.
// Callers own closing the middleware.
func newFederation(n int, cfg cluster.Config) (*core.Middleware, []string, error) {
	mw, err := core.New(core.Config{Seed: 3, Cluster: &cfg})
	if err != nil {
		return nil, nil, err
	}
	hosts := make([]string, 0, n)
	for i := 0; i < n; i++ {
		space := fmt.Sprintf("space-%d", i+1)
		host := fmt.Sprintf("host-%d", i+1)
		if err := mw.AddSpace(space); err != nil {
			mw.Close()
			return nil, nil, err
		}
		if err := mw.AddGateway("gw-"+space, space, netsim.Pentium4_1700()); err != nil {
			mw.Close()
			return nil, nil, err
		}
		if _, err := mw.AddHost(host, space, netsim.PentiumM_1600(), desktop(host), 0); err != nil {
			mw.Close()
			return nil, nil, err
		}
		hosts = append(hosts, host)
	}
	return mw, hosts, nil
}

// RunChurn builds a federated deployment of n smart spaces (one host +
// one gateway each, the media player on the first host, its skeleton
// installed everywhere else), waits for gossip and replication to
// converge, kills the player's host via netsim fault injection, and
// measures how long membership takes to convict it and failover takes to
// re-home the application. n must be at least 3 (a lone survivor has no
// quorum).
//
// With cfg.ReplicateState set, the experiment additionally plants a
// playback position in the player's state, measures how long the snapshot
// takes to replicate to every surviving center, and value-checks that the
// re-homed instance resumed with the planted state.
func RunChurn(n int, cfg cluster.Config) (ChurnResult, error) {
	return RunChurnSized(n, cfg, 2_000_000)
}

// RunChurnSized additionally sizes the player's song: tests under the
// race detector use a small one (full-wrap captures of a multi-megabyte
// song at a 2 ms cadence starve the probe loops under instrumentation),
// and mdbench exposes it as -song-bytes for sweeping snapshot size.
func RunChurnSized(n int, cfg cluster.Config, songBytes int64) (ChurnResult, error) {
	if n < 3 {
		return ChurnResult{}, fmt.Errorf("bench: churn needs >= 3 spaces for quorum, got %d", n)
	}
	mw, hosts, err := newFederation(n, cfg)
	if err != nil {
		return ChurnResult{}, err
	}
	defer mw.Close()

	victim := hosts[0]
	song := media.GenerateFile("song1", songBytes, 3)
	rt0, _ := mw.Host(victim)
	rt0.Library.Add(song)
	if err := mw.RunApp(context.Background(), victim, demoapps.NewMediaPlayer(victim, song)); err != nil {
		return ChurnResult{}, err
	}
	for _, host := range hosts[1:] {
		if err := mw.InstallApp(context.Background(), host, "smart-media-player", demoapps.MediaPlayerDesc(),
			demoapps.MediaPlayerSkeletonComponents(),
			func(h string) *app.Application { return demoapps.MediaPlayerSkeleton(h) }); err != nil {
			return ChurnResult{}, err
		}
	}

	// Converge: every node sees n alive, and the victim's running record
	// has replicated to every surviving space's center.
	ctx := context.Background()
	deadline := time.Now().Add(10 * time.Second)
	for {
		ready := true
		for _, host := range hosts {
			node, ok := mw.Cluster.Node(host)
			if !ok || len(node.AliveHosts()) != n {
				ready = false
				break
			}
		}
		if ready {
			for i := 1; i < n; i++ {
				center, ok := mw.Cluster.Center(fmt.Sprintf("space-%d", i+1))
				if !ok {
					ready = false
					break
				}
				if rec, found, _ := center.LookupApp(ctx, "smart-media-player", victim); !found || !rec.Running {
					ready = false
					break
				}
				// With state replication on, also wait for the app's base
				// snapshot: the experiment measures how an incremental
				// state write replicates, not first-base latency.
				if cfg.ReplicateState {
					if _, ok := center.LatestSnapshot("smart-media-player"); !ok {
						ready = false
						break
					}
				}
			}
		}
		if ready {
			break
		}
		if time.Now().After(deadline) {
			return ChurnResult{}, fmt.Errorf("bench: churn deployment never converged")
		}
		time.Sleep(time.Millisecond)
	}

	var res ChurnResult
	res.Spaces = n
	res.Config = cfg

	// With state replication on: plant in-flight state and measure how
	// long the snapshot takes to reach every surviving center.
	if cfg.ReplicateState {
		inst, ok := rt0.Engine.App("smart-media-player")
		if !ok {
			return res, fmt.Errorf("bench: player not running on %s", victim)
		}
		if st, ok := inst.Component("playback-state"); ok {
			st.(*app.StateComponent).Set("positionMs", churnStateValue)
		}
		inst.Coordinator().Set("positionMs", churnStateValue)
		writeAt := time.Now()
		repDeadline := writeAt.Add(10 * time.Second)
		// Frames are full app wraps (megabytes): decode each center's
		// snapshot only when a new capture sequence lands there.
		lastSeq := make(map[int]uint64, n)
		hasValue := make(map[int]bool, n)
		for {
			replicated := true
			for i := 1; i < n; i++ {
				if hasValue[i] {
					continue
				}
				center, _ := mw.Cluster.Center(fmt.Sprintf("space-%d", i+1))
				sr, ok := center.LatestSnapshot("smart-media-player")
				if !ok || sr.Seq == lastSeq[i] {
					replicated = false
					continue
				}
				lastSeq[i] = sr.Seq
				ts, err := sr.Snapshot()
				if err != nil || ts.Wrap.CoordState["positionMs"] != churnStateValue {
					replicated = false
					continue
				}
				hasValue[i] = true
				res.SnapshotBytes = sr.FrameBytes()
				res.SnapshotDeltas = len(sr.Deltas)
				if n := len(sr.Deltas); n > 0 {
					res.DeltaBytes = len(sr.Deltas[n-1])
				} else {
					res.DeltaBytes = len(sr.Frame)
				}
			}
			if replicated {
				break
			}
			if time.Now().After(repDeadline) {
				return res, fmt.Errorf("bench: snapshot never replicated to every survivor")
			}
			time.Sleep(time.Millisecond)
		}
		res.Replication = time.Since(writeAt)
	}

	// Kill, then measure conviction and re-homing.
	killAt := time.Now()
	if err := mw.Net.SetHostDown(victim, true); err != nil {
		return res, err
	}
	for {
		converged := true
		for _, host := range hosts[1:] {
			node, _ := mw.Cluster.Node(host)
			if m, ok := node.Member(victim); !ok || m.State != cluster.StateDead {
				converged = false
				break
			}
		}
		if converged {
			break
		}
		if time.Now().After(killAt.Add(30 * time.Second)) {
			return res, fmt.Errorf("bench: survivors never convicted %s", victim)
		}
		time.Sleep(100 * time.Microsecond)
	}
	convergedAt := time.Now()

	// The victim's engine still holds its (unreachable) instance — only
	// the network died — so look for the app on survivors specifically.
	var newHost string
	var restored *app.Application
	for newHost == "" {
		for _, host := range hosts[1:] {
			rt, _ := mw.Host(host)
			if inst, ok := rt.Engine.App("smart-media-player"); ok && inst.State() == app.Running {
				newHost = host
				restored = inst
				break
			}
		}
		if newHost == "" {
			if time.Now().After(convergedAt.Add(30 * time.Second)) {
				return res, fmt.Errorf("bench: app never re-homed off %s", victim)
			}
			time.Sleep(100 * time.Microsecond)
		}
	}
	doneAt := time.Now()

	res.Convergence = convergedAt.Sub(killAt)
	res.Failover = doneAt.Sub(convergedAt)
	res.Total = doneAt.Sub(killAt)
	res.NewHost = newHost
	if cfg.ReplicateState {
		coordVal, _ := restored.Coordinator().Get("positionMs")
		compVal := ""
		if st, ok := restored.Component("playback-state"); ok {
			compVal, _ = st.(*app.StateComponent).Get("positionMs")
		}
		res.StateIntact = coordVal == churnStateValue && compVal == churnStateValue
	}
	return res, nil
}
