package bench

import (
	"context"
	"fmt"
	"time"

	"mdagent/internal/app"
	"mdagent/internal/cluster"
	"mdagent/internal/core"
	"mdagent/internal/demoapps"
	"mdagent/internal/media"
	"mdagent/internal/netsim"
)

// ChurnResult is one host-kill experiment against a federated
// deployment. Unlike the Fig. 8-10 durations (simulated 2002-era testbed
// time on a virtual clock), these are wall-clock protocol timings: the
// gossip failure detector runs on real timers, so the numbers scale with
// the configured probe cadence, not with the simulated hardware.
type ChurnResult struct {
	Spaces      int
	Config      cluster.Config
	Convergence time.Duration // kill -> every survivor sees the host dead
	Failover    time.Duration // dead conviction -> app running on a survivor
	Total       time.Duration // kill -> app running on a survivor
	NewHost     string        // where the app was re-homed

	// State-pipeline measurements (Config.ReplicateState experiments).
	Replication    time.Duration // state write -> snapshot on every survivor center
	SnapshotBytes  int           // replicated record size (base frame + delta chain)
	SnapshotDeltas int           // delta chain length when the planted state arrived
	DeltaBytes     int           // size of the frame that carried the planted state
	StateIntact    bool          // re-homed app resumed with the replicated value
}

// churnStateValue is the in-flight state the with-state churn experiment
// plants before the kill and expects back after re-homing.
const churnStateValue = "31337"

// CleanStopResult is one graceful-shutdown experiment: the victim host
// flushes its replicator and broadcasts an intentional-leave death
// certificate (Node.Leave) before its network goes away, so survivors
// convict it immediately instead of waiting out a probe round plus the
// suspicion window.
type CleanStopResult struct {
	Spaces      int
	Config      cluster.Config
	Flush       time.Duration // final SyncNow + planted state on every survivor center
	Conviction  time.Duration // Leave() return -> every survivor sees the host dead
	Failover    time.Duration // conviction -> app running on a survivor
	Total       time.Duration // Leave() return -> app running on a survivor
	NewHost     string
	StateIntact bool // re-homed app resumed with the state from the final flush
}

// ChurnConfig is the gossip cadence the churn bench runs at: tight
// enough that one experiment takes tens of milliseconds, with the
// suspect->dead window (40 ms) still a clear multiple of the probe
// interval.
func ChurnConfig() cluster.Config {
	return cluster.Config{
		ProbeInterval:    2 * time.Millisecond,
		ProbeTimeout:     25 * time.Millisecond,
		SuspicionTimeout: 40 * time.Millisecond,
		SyncInterval:     5 * time.Millisecond,
		Seed:             13,
	}
}

// ChurnStateConfig is ChurnConfig with snapshot-state replication on at a
// tight capture cadence — the with-state failover experiment.
func ChurnStateConfig() cluster.Config {
	cfg := ChurnConfig()
	cfg.ReplicateState = true
	cfg.ReplicateInterval = 2 * time.Millisecond
	return cfg
}

// newFederation builds an n-space federated deployment (one host + one
// gateway per space) and returns it with the host ids, in space order.
// Callers own closing the middleware.
func newFederation(n int, cfg cluster.Config) (*core.Middleware, []string, error) {
	mw, err := core.New(core.Config{Seed: 3, Cluster: &cfg})
	if err != nil {
		return nil, nil, err
	}
	hosts := make([]string, 0, n)
	for i := 0; i < n; i++ {
		space := fmt.Sprintf("space-%d", i+1)
		host := fmt.Sprintf("host-%d", i+1)
		if err := mw.AddSpace(space); err != nil {
			mw.Close()
			return nil, nil, err
		}
		if err := mw.AddGateway("gw-"+space, space, netsim.Pentium4_1700()); err != nil {
			mw.Close()
			return nil, nil, err
		}
		if _, err := mw.AddHost(host, space, netsim.PentiumM_1600(), desktop(host), 0); err != nil {
			mw.Close()
			return nil, nil, err
		}
		hosts = append(hosts, host)
	}
	return mw, hosts, nil
}

// RunChurn builds a federated deployment of n smart spaces (one host +
// one gateway each, the media player on the first host, its skeleton
// installed everywhere else), waits for gossip and replication to
// converge, kills the player's host via netsim fault injection, and
// measures how long membership takes to convict it and failover takes to
// re-home the application. n must be at least 3 (a lone survivor has no
// quorum).
//
// With cfg.ReplicateState set, the experiment additionally plants a
// playback position in the player's state, measures how long the snapshot
// takes to replicate to every surviving center, and value-checks that the
// re-homed instance resumed with the planted state.
func RunChurn(n int, cfg cluster.Config) (ChurnResult, error) {
	return RunChurnSized(n, cfg, 2_000_000)
}

// churnDeployment builds an n-space federation, runs the media player
// (song sized songBytes) on the first host, installs its skeleton on
// every other host, and waits until every node sees n alive and the
// player's running record (and, with ReplicateState, its base snapshot)
// has replicated to every surviving space's center. The caller owns
// closing the middleware.
func churnDeployment(n int, cfg cluster.Config, songBytes int64) (*core.Middleware, []string, error) {
	if n < 3 {
		return nil, nil, fmt.Errorf("bench: churn needs >= 3 spaces for quorum, got %d", n)
	}
	mw, hosts, err := newFederation(n, cfg)
	if err != nil {
		return nil, nil, err
	}
	victim := hosts[0]
	song := media.GenerateFile("song1", songBytes, 3)
	rt0, _ := mw.Host(victim)
	rt0.Library.Add(song)
	if err := mw.RunApp(context.Background(), victim, demoapps.NewMediaPlayer(victim, song)); err != nil {
		mw.Close()
		return nil, nil, err
	}
	for _, host := range hosts[1:] {
		if err := mw.InstallApp(context.Background(), host, "smart-media-player", demoapps.MediaPlayerDesc(),
			demoapps.MediaPlayerSkeletonComponents(),
			func(h string) *app.Application { return demoapps.MediaPlayerSkeleton(h) }); err != nil {
			mw.Close()
			return nil, nil, err
		}
	}

	ctx := context.Background()
	deadline := time.Now().Add(10 * time.Second)
	for {
		ready := true
		for _, host := range hosts {
			node, ok := mw.Cluster.Node(host)
			if !ok || len(node.AliveHosts()) != n {
				ready = false
				break
			}
		}
		if ready {
			for i := 1; i < n; i++ {
				center, ok := mw.Cluster.Center(fmt.Sprintf("space-%d", i+1))
				if !ok {
					ready = false
					break
				}
				if rec, found, _ := center.LookupApp(ctx, "smart-media-player", victim); !found || !rec.Running {
					ready = false
					break
				}
				// With state replication on, also wait for the app's base
				// snapshot: the experiments measure how an incremental
				// state write replicates, not first-base latency.
				if cfg.ReplicateState {
					if _, ok := center.LatestSnapshot("smart-media-player"); !ok {
						ready = false
						break
					}
				}
			}
		}
		if ready {
			return mw, hosts, nil
		}
		if time.Now().After(deadline) {
			mw.Close()
			return nil, nil, fmt.Errorf("bench: churn deployment never converged")
		}
		time.Sleep(time.Millisecond)
	}
}

// RunChurnSized additionally sizes the player's song: tests under the
// race detector use a small one (full-wrap captures of a multi-megabyte
// song at a 2 ms cadence starve the probe loops under instrumentation),
// and mdbench exposes it as -song-bytes for sweeping snapshot size.
func RunChurnSized(n int, cfg cluster.Config, songBytes int64) (ChurnResult, error) {
	mw, hosts, err := churnDeployment(n, cfg, songBytes)
	if err != nil {
		return ChurnResult{}, err
	}
	defer mw.Close()
	victim := hosts[0]
	rt0, _ := mw.Host(victim)

	var res ChurnResult
	res.Spaces = n
	res.Config = cfg

	// With state replication on: plant in-flight state and measure how
	// long the snapshot takes to reach every surviving center.
	if cfg.ReplicateState {
		inst, ok := rt0.Engine.App("smart-media-player")
		if !ok {
			return res, fmt.Errorf("bench: player not running on %s", victim)
		}
		if st, ok := inst.Component("playback-state"); ok {
			st.(*app.StateComponent).Set("positionMs", churnStateValue)
		}
		inst.Coordinator().Set("positionMs", churnStateValue)
		writeAt := time.Now()
		repDeadline := writeAt.Add(10 * time.Second)
		// Frames are full app wraps (megabytes): decode each center's
		// snapshot only when a new capture sequence lands there.
		lastSeq := make(map[int]uint64, n)
		hasValue := make(map[int]bool, n)
		for {
			replicated := true
			for i := 1; i < n; i++ {
				if hasValue[i] {
					continue
				}
				center, _ := mw.Cluster.Center(fmt.Sprintf("space-%d", i+1))
				sr, ok := center.LatestSnapshot("smart-media-player")
				if !ok || sr.Seq == lastSeq[i] {
					replicated = false
					continue
				}
				lastSeq[i] = sr.Seq
				ts, err := sr.Snapshot()
				if err != nil || ts.Wrap.CoordState["positionMs"] != churnStateValue {
					replicated = false
					continue
				}
				hasValue[i] = true
				res.SnapshotBytes = sr.FrameBytes()
				res.SnapshotDeltas = len(sr.Deltas)
				if n := len(sr.Deltas); n > 0 {
					res.DeltaBytes = len(sr.Deltas[n-1])
				} else {
					res.DeltaBytes = len(sr.Frame)
				}
			}
			if replicated {
				break
			}
			if time.Now().After(repDeadline) {
				return res, fmt.Errorf("bench: snapshot never replicated to every survivor")
			}
			time.Sleep(time.Millisecond)
		}
		res.Replication = time.Since(writeAt)
	}

	// Kill, then measure conviction and re-homing.
	killAt := time.Now()
	if err := mw.Net.SetHostDown(victim, true); err != nil {
		return res, err
	}
	for {
		converged := true
		for _, host := range hosts[1:] {
			node, _ := mw.Cluster.Node(host)
			if m, ok := node.Member(victim); !ok || m.State != cluster.StateDead {
				converged = false
				break
			}
		}
		if converged {
			break
		}
		if time.Now().After(killAt.Add(30 * time.Second)) {
			return res, fmt.Errorf("bench: survivors never convicted %s", victim)
		}
		time.Sleep(100 * time.Microsecond)
	}
	convergedAt := time.Now()

	// The victim's engine still holds its (unreachable) instance — only
	// the network died — so look for the app on survivors specifically.
	var newHost string
	var restored *app.Application
	for newHost == "" {
		for _, host := range hosts[1:] {
			rt, _ := mw.Host(host)
			if inst, ok := rt.Engine.App("smart-media-player"); ok && inst.State() == app.Running {
				newHost = host
				restored = inst
				break
			}
		}
		if newHost == "" {
			if time.Now().After(convergedAt.Add(30 * time.Second)) {
				return res, fmt.Errorf("bench: app never re-homed off %s", victim)
			}
			time.Sleep(100 * time.Microsecond)
		}
	}
	doneAt := time.Now()

	res.Convergence = convergedAt.Sub(killAt)
	res.Failover = doneAt.Sub(convergedAt)
	res.Total = doneAt.Sub(killAt)
	res.NewHost = newHost
	if cfg.ReplicateState {
		coordVal, _ := restored.Coordinator().Get("positionMs")
		compVal := ""
		if st, ok := restored.Component("playback-state"); ok {
			compVal, _ = st.(*app.StateComponent).Get("positionMs")
		}
		res.StateIntact = coordVal == churnStateValue && compVal == churnStateValue
	}
	return res, nil
}

// RunCleanStop measures a graceful shutdown: the same deployment as the
// with-state churn experiment, but instead of killing the player's host
// it performs the daemon's clean-stop sequence — plant state, final
// Replicator.SyncNow flush, wait for the flush to reach every survivor
// center, Node.Leave(), then network-down (the process exiting). The
// leave certificate must convict the host on every survivor without
// burning a probe round or the suspicion window, and failover must
// resume the app with the flushed state — no outage window beyond the
// re-home itself. cfg must have ReplicateState on.
func RunCleanStop(n int, cfg cluster.Config, songBytes int64) (CleanStopResult, error) {
	if !cfg.ReplicateState {
		return CleanStopResult{}, fmt.Errorf("bench: clean stop needs cfg.ReplicateState (the flush is the point)")
	}
	mw, hosts, err := churnDeployment(n, cfg, songBytes)
	if err != nil {
		return CleanStopResult{}, err
	}
	defer mw.Close()
	victim := hosts[0]
	rt0, _ := mw.Host(victim)
	res := CleanStopResult{Spaces: n, Config: cfg}

	// Plant in-flight state and run the shutdown flush: after SyncNow
	// returns, wait for the planted value to land on every survivor
	// center — the durable half of a graceful stop.
	inst, ok := rt0.Engine.App("smart-media-player")
	if !ok {
		return res, fmt.Errorf("bench: player not running on %s", victim)
	}
	if st, ok := inst.Component("playback-state"); ok {
		st.(*app.StateComponent).Set("positionMs", churnStateValue)
	}
	inst.Coordinator().Set("positionMs", churnStateValue)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	flushAt := time.Now()
	if err := rt0.Replicator.SyncNow(ctx); err != nil {
		return res, err
	}
	flushDeadline := flushAt.Add(10 * time.Second)
	for {
		replicated := true
		for i := 1; i < n; i++ {
			center, _ := mw.Cluster.Center(fmt.Sprintf("space-%d", i+1))
			sr, ok := center.LatestSnapshot("smart-media-player")
			if !ok {
				replicated = false
				break
			}
			ts, err := sr.Snapshot()
			if err != nil || ts.Wrap.CoordState["positionMs"] != churnStateValue {
				replicated = false
				break
			}
		}
		if replicated {
			break
		}
		if time.Now().After(flushDeadline) {
			return res, fmt.Errorf("bench: final flush never replicated to every survivor")
		}
		time.Sleep(time.Millisecond)
	}
	res.Flush = time.Since(flushAt)

	// The leave: broadcast the death certificate, then drop the network
	// (the process exiting right after Leave returns).
	node, ok := mw.Cluster.Node(victim)
	if !ok {
		return res, fmt.Errorf("bench: no membership node for %s", victim)
	}
	leaveAt := time.Now()
	node.Leave()
	if err := mw.Net.SetHostDown(victim, true); err != nil {
		return res, err
	}
	for {
		converged := true
		for _, host := range hosts[1:] {
			peer, _ := mw.Cluster.Node(host)
			if m, ok := peer.Member(victim); !ok || m.State != cluster.StateDead {
				converged = false
				break
			}
		}
		if converged {
			break
		}
		if time.Now().After(leaveAt.Add(30 * time.Second)) {
			return res, fmt.Errorf("bench: survivors never convicted the leaver %s", victim)
		}
		time.Sleep(100 * time.Microsecond)
	}
	convictedAt := time.Now()

	var restored *app.Application
	for restored == nil {
		for _, host := range hosts[1:] {
			rt, _ := mw.Host(host)
			if inst, ok := rt.Engine.App("smart-media-player"); ok && inst.State() == app.Running {
				res.NewHost = host
				restored = inst
				break
			}
		}
		if restored == nil {
			if time.Now().After(convictedAt.Add(30 * time.Second)) {
				return res, fmt.Errorf("bench: app never re-homed off the leaver %s", victim)
			}
			time.Sleep(100 * time.Microsecond)
		}
	}
	doneAt := time.Now()

	res.Conviction = convictedAt.Sub(leaveAt)
	res.Failover = doneAt.Sub(convictedAt)
	res.Total = doneAt.Sub(leaveAt)
	coordVal, _ := restored.Coordinator().Get("positionMs")
	compVal := ""
	if st, ok := restored.Component("playback-state"); ok {
		compVal, _ = st.(*app.StateComponent).Get("positionMs")
	}
	res.StateIntact = coordVal == churnStateValue && compVal == churnStateValue
	return res, nil
}
