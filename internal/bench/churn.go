package bench

import (
	"context"
	"fmt"
	"time"

	"mdagent/internal/app"
	"mdagent/internal/cluster"
	"mdagent/internal/core"
	"mdagent/internal/demoapps"
	"mdagent/internal/media"
	"mdagent/internal/netsim"
)

// ChurnResult is one host-kill experiment against a federated
// deployment. Unlike the Fig. 8-10 durations (simulated 2002-era testbed
// time on a virtual clock), these are wall-clock protocol timings: the
// gossip failure detector runs on real timers, so the numbers scale with
// the configured probe cadence, not with the simulated hardware.
type ChurnResult struct {
	Spaces      int
	Config      cluster.Config
	Convergence time.Duration // kill -> every survivor sees the host dead
	Failover    time.Duration // dead conviction -> app running on a survivor
	Total       time.Duration // kill -> app running on a survivor
	NewHost     string        // where the app was re-homed
}

// ChurnConfig is the gossip cadence the churn bench runs at: tight
// enough that one experiment takes tens of milliseconds, with the
// suspect->dead window (40 ms) still a clear multiple of the probe
// interval.
func ChurnConfig() cluster.Config {
	return cluster.Config{
		ProbeInterval:    2 * time.Millisecond,
		ProbeTimeout:     25 * time.Millisecond,
		SuspicionTimeout: 40 * time.Millisecond,
		SyncInterval:     5 * time.Millisecond,
		Seed:             13,
	}
}

// RunChurn builds a federated deployment of n smart spaces (one host +
// one gateway each, the media player on the first host, its skeleton
// installed everywhere else), waits for gossip and replication to
// converge, kills the player's host via netsim fault injection, and
// measures how long membership takes to convict it and failover takes to
// re-home the application. n must be at least 3 (a lone survivor has no
// quorum).
func RunChurn(n int, cfg cluster.Config) (ChurnResult, error) {
	if n < 3 {
		return ChurnResult{}, fmt.Errorf("bench: churn needs >= 3 spaces for quorum, got %d", n)
	}
	mw, err := core.New(core.Config{Seed: 3, Cluster: &cfg})
	if err != nil {
		return ChurnResult{}, err
	}
	defer mw.Close()

	hosts := make([]string, 0, n)
	for i := 0; i < n; i++ {
		space := fmt.Sprintf("space-%d", i+1)
		host := fmt.Sprintf("host-%d", i+1)
		if err := mw.AddSpace(space); err != nil {
			return ChurnResult{}, err
		}
		if err := mw.AddGateway("gw-"+space, space, netsim.Pentium4_1700()); err != nil {
			return ChurnResult{}, err
		}
		if _, err := mw.AddHost(host, space, netsim.PentiumM_1600(), desktop(host), 0); err != nil {
			return ChurnResult{}, err
		}
		hosts = append(hosts, host)
	}
	victim := hosts[0]
	song := media.GenerateFile("song1", 2_000_000, 3)
	rt0, _ := mw.Host(victim)
	rt0.Library.Add(song)
	if err := mw.RunApp(victim, demoapps.NewMediaPlayer(victim, song)); err != nil {
		return ChurnResult{}, err
	}
	for _, host := range hosts[1:] {
		if err := mw.InstallApp(host, "smart-media-player", demoapps.MediaPlayerDesc(),
			demoapps.MediaPlayerSkeletonComponents(),
			func(h string) *app.Application { return demoapps.MediaPlayerSkeleton(h) }); err != nil {
			return ChurnResult{}, err
		}
	}

	// Converge: every node sees n alive, and the victim's running record
	// has replicated to every surviving space's center.
	ctx := context.Background()
	deadline := time.Now().Add(10 * time.Second)
	for {
		ready := true
		for _, host := range hosts {
			node, ok := mw.Cluster.Node(host)
			if !ok || len(node.AliveHosts()) != n {
				ready = false
				break
			}
		}
		if ready {
			for i := 1; i < n; i++ {
				center, ok := mw.Cluster.Center(fmt.Sprintf("space-%d", i+1))
				if !ok {
					ready = false
					break
				}
				if rec, found, _ := center.LookupApp(ctx, "smart-media-player", victim); !found || !rec.Running {
					ready = false
					break
				}
			}
		}
		if ready {
			break
		}
		if time.Now().After(deadline) {
			return ChurnResult{}, fmt.Errorf("bench: churn deployment never converged")
		}
		time.Sleep(time.Millisecond)
	}

	// Kill, then measure conviction and re-homing.
	killAt := time.Now()
	if err := mw.Net.SetHostDown(victim, true); err != nil {
		return ChurnResult{}, err
	}
	for {
		converged := true
		for _, host := range hosts[1:] {
			node, _ := mw.Cluster.Node(host)
			if m, ok := node.Member(victim); !ok || m.State != cluster.StateDead {
				converged = false
				break
			}
		}
		if converged {
			break
		}
		if time.Now().After(killAt.Add(30 * time.Second)) {
			return ChurnResult{}, fmt.Errorf("bench: survivors never convicted %s", victim)
		}
		time.Sleep(100 * time.Microsecond)
	}
	convergedAt := time.Now()

	// The victim's engine still holds its (unreachable) instance — only
	// the network died — so look for the app on survivors specifically.
	var newHost string
	for newHost == "" {
		for _, host := range hosts[1:] {
			rt, _ := mw.Host(host)
			if inst, ok := rt.Engine.App("smart-media-player"); ok && inst.State() == app.Running {
				newHost = host
				break
			}
		}
		if newHost == "" {
			if time.Now().After(convergedAt.Add(30 * time.Second)) {
				return ChurnResult{}, fmt.Errorf("bench: app never re-homed off %s", victim)
			}
			time.Sleep(100 * time.Microsecond)
		}
	}
	doneAt := time.Now()

	return ChurnResult{
		Spaces:      n,
		Config:      cfg,
		Convergence: convergedAt.Sub(killAt),
		Failover:    doneAt.Sub(convergedAt),
		Total:       doneAt.Sub(killAt),
		NewHost:     newHost,
	}, nil
}
