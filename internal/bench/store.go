package bench

import (
	"bufio"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"mdagent/internal/store"
)

// StoreConfig shapes the storage-engine experiment: Records resident
// keys are preloaded, then Writers goroutines issue Ops mixed
// operations — registry-sized overwrites with every BlobEvery-th write
// a BlobBytes snapshot frame — against either the seed single-lock
// store or the PR 8 engine.
type StoreConfig struct {
	Records    int
	Writers    int
	Ops        int
	ValueBytes int
	BlobEvery  int // 0 disables snapshot writes
	BlobBytes  int
}

// StoreResult is one row of the before/after table.
type StoreResult struct {
	Engine  string // "seed" or "engine"
	Sync    string // sync policy ("" for seed: never fsyncs per write)
	Records int
	Writers int
	Ops     int

	LoadWritesPerSec float64 // preload throughput (sequential fill)
	WritesPerSec     float64 // sustained mixed-write throughput
	P50              time.Duration
	P99              time.Duration
	BlobWrites       int
	DiskBytes        int64
}

// benchKV is the slice of the store API both engines share.
type benchKV interface {
	Put(key string, value []byte) error
	Get(key string) ([]byte, error)
	Sync() error
	Close() error
}

func storeKey(i int) string { return fmt.Sprintf("rec/%08d", i) }

// RunStore runs the mixed-write experiment against one engine. engine
// is "seed" (the pre-PR 8 single-lock store) or "engine" with the given
// sync policy. The seed has no commit pipeline, so its SyncInterval
// equivalent is a background ticker calling Sync() on the engine's
// default cadence — which, in the seed, holds the global write lock for
// the duration of each fsync. SyncAlways is engine-only.
func RunStore(cfg StoreConfig, engine string, pol store.SyncPolicy) (StoreResult, error) {
	if cfg.Writers <= 0 {
		cfg.Writers = 1
	}
	res := StoreResult{Engine: engine, Records: cfg.Records, Writers: cfg.Writers, Ops: cfg.Ops, Sync: pol.String()}

	dir, err := os.MkdirTemp("", "mdbench-store-*")
	if err != nil {
		return res, err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "db")

	var kv benchKV
	var disk func() int64
	switch engine {
	case "seed":
		if pol == store.SyncAlways {
			return res, fmt.Errorf("bench: the seed store has no per-write fsync mode")
		}
		lg, err := store.OpenLegacy(path)
		if err != nil {
			return res, err
		}
		kv = lg
		disk = func() int64 {
			fi, err := os.Stat(path)
			if err != nil {
				return 0
			}
			return fi.Size()
		}
		if pol == store.SyncInterval {
			stop := make(chan struct{})
			var tickWG sync.WaitGroup
			tickWG.Add(1)
			go func() {
				defer tickWG.Done()
				t := time.NewTicker(store.DefaultSyncEvery)
				defer t.Stop()
				for {
					select {
					case <-t.C:
						_ = lg.Sync()
					case <-stop:
						return
					}
				}
			}()
			defer func() { close(stop); tickWG.Wait() }()
		}
	case "engine":
		st, err := store.Open(path, store.WithSyncPolicy(pol))
		if err != nil {
			return res, err
		}
		kv = st
		disk = st.DiskUsage
	default:
		return res, fmt.Errorf("bench: unknown store engine %q", engine)
	}
	defer kv.Close()

	val := make([]byte, cfg.ValueBytes)
	for i := range val {
		val[i] = byte(i)
	}

	// Phase 1: preload the resident set.
	loadStart := time.Now()
	var wg sync.WaitGroup
	errc := make(chan error, cfg.Writers)
	per := cfg.Records / cfg.Writers
	for w := 0; w < cfg.Writers; w++ {
		lo, hi := w*per, (w+1)*per
		if w == cfg.Writers-1 {
			hi = cfg.Records
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				if err := kv.Put(storeKey(i), val); err != nil {
					errc <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errc:
		return res, err
	default:
	}
	if d := time.Since(loadStart).Seconds(); d > 0 {
		res.LoadWritesPerSec = float64(cfg.Records) / d
	}

	// Phase 2: sustained mixed traffic — random overwrites of resident
	// registry records, with periodic multi-hundred-KB snapshot frames.
	blob := make([]byte, cfg.BlobBytes)
	for i := range blob {
		blob[i] = byte(i * 7)
	}
	opsPer := cfg.Ops / cfg.Writers
	lat := make([][]int64, cfg.Writers)
	blobWrites := make([]int, cfg.Writers)
	start := time.Now()
	for w := 0; w < cfg.Writers; w++ {
		w := w
		lat[w] = make([]int64, 0, opsPer)
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			for i := 0; i < opsPer; i++ {
				var (
					key string
					v   []byte
				)
				if cfg.BlobEvery > 0 && i%cfg.BlobEvery == cfg.BlobEvery-1 {
					key = fmt.Sprintf("snap/app-%02d", w)
					v = blob
					blobWrites[w]++
				} else {
					key = storeKey(rng.Intn(cfg.Records))
					v = val
				}
				t0 := time.Now()
				if err := kv.Put(key, v); err != nil {
					errc <- err
					return
				}
				lat[w] = append(lat[w], int64(time.Since(t0)))
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errc:
		return res, err
	default:
	}

	var all []int64
	for w := range lat {
		all = append(all, lat[w]...)
		res.BlobWrites += blobWrites[w]
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	if n := len(all); n > 0 {
		res.P50 = time.Duration(all[n/2])
		res.P99 = time.Duration(all[n*99/100])
	}
	if s := elapsed.Seconds(); s > 0 {
		res.WritesPerSec = float64(cfg.Writers*opsPer) / s
	}
	res.DiskBytes = disk()

	// Read back a handful of keys so an engine that dropped writes on
	// the floor cannot post a throughput number.
	for i := 0; i < 100 && i < cfg.Records; i++ {
		if _, err := kv.Get(storeKey(i * (cfg.Records / 100))); err != nil {
			return res, fmt.Errorf("bench: store verify: %w", err)
		}
	}
	return res, nil
}

// storeCrashEnv points a re-exec'd child at its store directory for the
// kill-mid-commit audit.
const storeCrashEnv = "MDBENCH_STORE_CRASH_DIR"

// StoreCrashChildMain is the kill-mid-commit child body. When the env
// hook is set it writes records under SyncPolicy=always, appending each
// key to an acked-writes ledger only AFTER Put returns, until the
// parent kills it. Returns true if it ran (the caller should exit).
func StoreCrashChildMain() bool {
	dir := os.Getenv(storeCrashEnv)
	if dir == "" {
		return false
	}
	st, err := store.Open(filepath.Join(dir, "db"), store.WithSyncPolicy(store.SyncAlways))
	if err != nil {
		fmt.Fprintf(os.Stderr, "crash child: %v\n", err)
		os.Exit(3)
	}
	ledger, err := os.OpenFile(filepath.Join(dir, "acked.log"), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		fmt.Fprintf(os.Stderr, "crash child: %v\n", err)
		os.Exit(3)
	}
	var (
		mu sync.Mutex
		wg sync.WaitGroup
	)
	const writers = 4
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			val := make([]byte, 128)
			for i := 0; ; i++ {
				key := fmt.Sprintf("w%d-k%08d", w, i)
				copy(val, key)
				if err := st.Put(key, val); err != nil {
					fmt.Fprintf(os.Stderr, "crash child put: %v\n", err)
					os.Exit(3)
				}
				// The write is acknowledged (fsynced, under always):
				// only now does it enter the audit ledger.
				mu.Lock()
				fmt.Fprintln(ledger, key)
				mu.Unlock()
			}
		}()
	}
	wg.Wait() // unreachable: the parent SIGKILLs us mid-commit
	return true
}

// StoreCrashResult is the kill-mid-commit audit outcome: every key the
// child's ledger recorded as acknowledged must be present after replay.
type StoreCrashResult struct {
	Trials    int
	KillAfter time.Duration
	Acked     int // acknowledged writes across all trials
	Recovered int
	Lost      int // acknowledged writes missing after replay — must be 0
}

// RunStoreCrash re-execs this binary as a SyncAlways writer child,
// SIGKILLs it mid-commit, replays the store, and audits the child's
// acked-writes ledger against the recovered state.
//
// The audit proves the ack ordering (nothing is acknowledged before its
// frame is committed) and torn-tail replay. The fsync itself cannot be
// falsified in-process — the page cache survives SIGKILL — so the
// ledger is the ground truth for "acknowledged".
func RunStoreCrash(trials int, killAfter time.Duration) (StoreCrashResult, error) {
	res := StoreCrashResult{Trials: trials, KillAfter: killAfter}
	exe, err := os.Executable()
	if err != nil {
		return res, err
	}
	for t := 0; t < trials; t++ {
		dir, err := os.MkdirTemp("", "mdbench-crash-*")
		if err != nil {
			return res, err
		}
		defer os.RemoveAll(dir)

		cmd := exec.Command(exe)
		cmd.Env = append(os.Environ(), storeCrashEnv+"="+dir)
		if err := cmd.Start(); err != nil {
			return res, err
		}
		// Stagger the kill point across trials to land in different
		// commit phases (mid-batch, mid-fsync, between frames).
		time.Sleep(killAfter + time.Duration(t)*17*time.Millisecond)
		if err := cmd.Process.Kill(); err != nil {
			return res, err
		}
		_ = cmd.Wait() // expected: killed

		st, err := store.Open(filepath.Join(dir, "db"))
		if err != nil {
			return res, fmt.Errorf("bench: reopen after kill: %w", err)
		}
		raw, err := os.ReadFile(filepath.Join(dir, "acked.log"))
		if err != nil && !errors.Is(err, os.ErrNotExist) {
			st.Close()
			return res, err
		}
		sc := bufio.NewScanner(strings.NewReader(string(raw)))
		complete := strings.HasSuffix(string(raw), "\n")
		var keys []string
		for sc.Scan() {
			if k := strings.TrimSpace(sc.Text()); k != "" {
				keys = append(keys, k)
			}
		}
		if !complete && len(keys) > 0 {
			keys = keys[:len(keys)-1] // defensive: drop a torn final ledger line
		}
		for _, k := range keys {
			res.Acked++
			if _, err := st.Get(k); err != nil {
				res.Lost++
			} else {
				res.Recovered++
			}
		}
		st.Close()
	}
	return res, nil
}
