package bench

import (
	"fmt"
	"sync"
	"time"

	"mdagent/internal/cluster"
	"mdagent/internal/netsim"
	"mdagent/internal/obs"
	"mdagent/internal/transport"
	"mdagent/internal/vclock"
)

// MembersResult is one membership scale experiment: N bare SWIM nodes on
// the simulated network, driven by synchronous protocol rounds, with
// gossip traffic metered through the obs counters. Rounds are the
// scale-free unit (one round = every node runs one protocol tick); wall
// durations appear only where the protocol itself is wall-clocked (the
// suspicion window).
type MembersResult struct {
	Hosts     int
	FullTable bool // baseline mode: pre-PR 7 full-table piggybacking
	Config    cluster.Config

	BootstrapRounds int // star-seeded cold start -> everyone sees everyone

	// Steady-state gossip cost over a fixed round window.
	GossipMsgs      int64   // messages sent in the window (probes + acks)
	GossipBytes     int64   // payload bytes in the window
	BytesPerMsg     float64 // the bounded-payload property: flat in N
	UpdatesPerMsg   float64 // piggybacked updates per message
	BytesPerHostSec float64 // at the configured ProbeInterval cadence

	JoinRounds int // new node announced -> every node sees it alive

	KillRounds int           // host killed -> every survivor convicts it
	KillWall   time.Duration // same edge in wall time (includes suspicion window)

	FalseSuspects    int // live members reported suspect, whole run
	FalseConvictions int // live members reported dead, whole run
}

// MembersConfig is the gossip configuration the scale sweep runs at: the
// default dissemination knobs (MaxPiggyback 8, λ=4, full sync every 64
// rounds), a suspicion window of 150 ms so one kill experiment stays
// fast, and a probe timeout far above any real delay — in this rig a
// probe fails only with netsim's fail-fast host-down error, so a slow
// instrumented run cannot fake a failed probe of a live node.
func MembersConfig() cluster.Config {
	return cluster.Config{
		ProbeInterval:    100 * time.Millisecond, // meters BytesPerHostSec; rounds are driven manually
		ProbeTimeout:     5 * time.Second,
		SuspicionTimeout: 150 * time.Millisecond,
		Seed:             17,
	}
}

// steadyRounds is the measurement window: long enough to amortize any
// rumor tail left over from bootstrap, short enough that a 1,000-host
// sweep finishes in seconds.
const steadyRounds = 30

// RunMembers runs the membership scale experiment at n hosts. Phases:
// star-seeded bootstrap to full convergence, a steady-state window
// metering gossip bytes and messages, one join (convergence measured in
// rounds), and one kill (rounds + wall time to unanimous conviction).
// Any suspect or dead report about a live member anywhere in the run
// counts as a false positive. Set cfg.FullTableGossip for the pre-PR 7
// baseline the bounded numbers are compared against.
func RunMembers(n int, cfg cluster.Config) (MembersResult, error) {
	if n < 3 {
		return MembersResult{}, fmt.Errorf("bench: members needs >= 3 hosts, got %d", n)
	}
	res := MembersResult{Hosts: n, FullTable: cfg.FullTableGossip, Config: cfg}

	clk := vclock.NewVirtual(time.Unix(0, 0))
	net := netsim.New(clk, netsim.WithSeed(17))
	fab := transport.NewLocalFabric(net)
	defer fab.Close()

	var (
		mu    sync.Mutex
		down  = map[string]bool{}
		nodes []*cluster.Node
	)
	watch := func(node *cluster.Node) {
		node.OnChange(func(_ *cluster.Node, m cluster.Member) {
			if m.State == cluster.StateAlive {
				return
			}
			mu.Lock()
			defer mu.Unlock()
			if down[m.ID] {
				return
			}
			if m.State == cluster.StateSuspect {
				res.FalseSuspects++
			} else {
				res.FalseConvictions++
			}
		})
	}
	addNode := func(i int) (*cluster.Node, error) {
		host := fmt.Sprintf("sweep%d-n%04d", n, i)
		if _, err := net.AddHost(host, "lab", netsim.Pentium4_1700(), 0); err != nil {
			return nil, err
		}
		ep, err := fab.Attach(cluster.MemberEndpointName(host), host)
		if err != nil {
			return nil, err
		}
		node := cluster.NewNode(cluster.Member{ID: host, Space: "lab"}, ep, cfg)
		// Star seeding plus the ring predecessor: discovery of everyone
		// else is the dissemination layer's job.
		if len(nodes) > 0 {
			node.Join(nodes[0].Self())
			node.Join(nodes[len(nodes)-1].Self())
		}
		watch(node)
		nodes = append(nodes, node)
		return node, nil
	}
	for i := 0; i < n; i++ {
		if _, err := addNode(i); err != nil {
			return res, err
		}
	}

	tick := func() {
		for _, node := range nodes {
			mu.Lock()
			skip := down[node.Self().ID]
			mu.Unlock()
			if !skip {
				node.Tick()
			}
		}
	}
	allSee := func(want int) bool {
		for _, node := range nodes {
			mu.Lock()
			skip := down[node.Self().ID]
			mu.Unlock()
			if skip {
				continue
			}
			if len(node.AliveHosts()) != want {
				return false
			}
		}
		return true
	}
	converge := func(want int, what string) (int, error) {
		deadline := time.Now().Add(120 * time.Second)
		for rounds := 0; ; rounds++ {
			if allSee(want) {
				return rounds, nil
			}
			if time.Now().After(deadline) {
				return rounds, fmt.Errorf("bench: members %s never converged to %d alive at n=%d", what, want, n)
			}
			tick()
		}
	}

	var err error
	if res.BootstrapRounds, err = converge(n, "bootstrap"); err != nil {
		return res, err
	}

	// Steady state: meter the gossip cost over a fixed round window.
	bytes0, msgs0, updates0 := gossipMeters(nodes)
	for i := 0; i < steadyRounds; i++ {
		tick()
	}
	bytes1, msgs1, updates1 := gossipMeters(nodes)
	res.GossipBytes = bytes1 - bytes0
	res.GossipMsgs = msgs1 - msgs0
	if res.GossipMsgs > 0 {
		res.BytesPerMsg = float64(res.GossipBytes) / float64(res.GossipMsgs)
		res.UpdatesPerMsg = float64(updates1-updates0) / float64(res.GossipMsgs)
	}
	perHostRound := float64(res.GossipBytes) / float64(len(nodes)) / float64(steadyRounds)
	res.BytesPerHostSec = perHostRound * float64(time.Second) / float64(cfg.ProbeInterval)

	// Join: one newcomer, counted in rounds until unanimous.
	if _, err := addNode(n); err != nil {
		return res, err
	}
	if res.JoinRounds, err = converge(n+1, "join"); err != nil {
		return res, err
	}

	// Kill: a mid-ring host dies; survivors must convict it. The edge is
	// part wall-clock (the suspicion window) so both units are reported.
	victim := nodes[n/2].Self().ID
	mu.Lock()
	down[victim] = true
	mu.Unlock()
	if err := net.SetHostDown(victim, true); err != nil {
		return res, err
	}
	killAt := time.Now()
	deadline := killAt.Add(120 * time.Second)
	for rounds := 0; ; rounds++ {
		if allConvicted(nodes, down, &mu, victim) {
			res.KillRounds = rounds
			res.KillWall = time.Since(killAt)
			break
		}
		if time.Now().After(deadline) {
			return res, fmt.Errorf("bench: members kill never converged at n=%d", n)
		}
		tick()
	}
	return res, nil
}

// gossipMeters sums the per-host gossip counters across nodes.
func gossipMeters(nodes []*cluster.Node) (bytes, msgs, updates int64) {
	for _, node := range nodes {
		id := node.Self().ID
		bytes += obs.Default.Counter("mdagent_gossip_bytes_total", "host", id).Value()
		msgs += obs.Default.Counter("mdagent_gossip_msgs_total", "host", id).Value()
		updates += obs.Default.Counter("mdagent_gossip_updates_total", "host", id).Value()
	}
	return bytes, msgs, updates
}

// allConvicted reports whether every live node sees victim dead.
func allConvicted(nodes []*cluster.Node, down map[string]bool, mu *sync.Mutex, victim string) bool {
	for _, node := range nodes {
		mu.Lock()
		skip := down[node.Self().ID]
		mu.Unlock()
		if skip {
			continue
		}
		if m, ok := node.Member(victim); !ok || m.State != cluster.StateDead {
			return false
		}
	}
	return true
}
