package bench

import (
	"bytes"
	"context"
	"crypto/ed25519"
	"fmt"
	"time"

	"mdagent/internal/app"
	"mdagent/internal/bundle"
	"mdagent/internal/core"
	"mdagent/internal/netsim"
	"mdagent/internal/wsdl"
)

// BundleResult is the portable-bundle distribution benchmark: one
// signed push into the deployment, then an install fan-out where every
// host fetches the stored bundle, verifies the signature, resolves the
// secret references, and runs its own value-checked instance — no
// compiled-in factory anywhere.
type BundleResult struct {
	Hosts       int
	StateBytes  int   // initial-state payload carried by the bundle
	BundleBytes int64 // signed wire size of the packed bundle

	Pack    time.Duration // manifest + state + sign
	Push    time.Duration // one verified store into the registry
	Install time.Duration // full N-host fetch/verify/instantiate/run fan-out

	InstallPerHost  time.Duration // Install / Hosts
	InstancesPerSec float64       // Hosts / Install
	BytesPerHost    int64         // bundle bytes fetched per installing host
}

// benchBundleApp is the bundle's manifest plus its initial-state wrap,
// sized by stateBytes — a state component with a handful of settings
// and one data blob carrying the bulk.
func benchBundleApp(appName string, stateBytes int) (bundle.Manifest, *app.Wrap, error) {
	desc := wsdl.Description{
		Name: appName,
		Doc:  "portable bench app distributed as a signed bundle",
		Services: []wsdl.Service{{
			Name: appName + "-service",
			Ports: []wsdl.Port{{
				Name:       "main",
				Operations: []wsdl.Operation{{Name: "serve", Input: "request", Output: "reply"}},
			}},
		}},
	}
	m := bundle.Manifest{
		App:         appName,
		Description: desc,
		Components: []bundle.ComponentSpec{
			{Name: "settings", Kind: app.KindState},
			{Name: "payload", Kind: app.KindData},
		},
		Profile: app.UserProfile{User: "bench"},
		Secrets: []bundle.SecretRef{{Key: "api-token", Ref: "ref://env/BENCH_BUNDLE_TOKEN"}},
	}

	inst := app.New(appName, "bench-packer", desc)
	settings := app.NewState("settings")
	settings.Set("theme", "dark")
	settings.Set("volume", "7")
	if err := inst.AddComponent(settings); err != nil {
		return m, nil, err
	}
	if err := inst.AddComponent(app.NewBlob("payload", app.KindData, bytes.Repeat([]byte{0x5a}, stateBytes))); err != nil {
		return m, nil, err
	}
	w, err := inst.WrapComponents(nil)
	if err != nil {
		return m, nil, err
	}
	return m, &w, nil
}

// RunBundle measures the bundle path end to end on an in-process
// deployment of n hosts: pack once, push once, then install and run on
// every host, checking each instance restored the shipped state
// byte-for-byte. The secret reference resolves from an injected env so
// the fan-out exercises the full instantiation path, not a shortcut.
func RunBundle(hosts, stateBytes int) (BundleResult, error) {
	if hosts < 1 {
		return BundleResult{}, fmt.Errorf("bench: bundle fan-out needs at least one host, got %d", hosts)
	}
	res := BundleResult{Hosts: hosts, StateBytes: stateBytes}

	pub, priv, err := bundle.GenerateKey()
	if err != nil {
		return res, err
	}
	mw, err := core.New(core.Config{
		Seed:        11,
		TrustedKeys: []ed25519.PublicKey{pub},
		Secrets: bundle.Resolver{LookupEnv: func(name string) (string, bool) {
			if name == "BENCH_BUNDLE_TOKEN" {
				return "bench-secret", true
			}
			return "", false
		}},
	})
	if err != nil {
		return res, err
	}
	defer mw.Close()
	if err := mw.AddSpace("bundle-space"); err != nil {
		return res, err
	}
	names := make([]string, hosts)
	for i := range names {
		names[i] = fmt.Sprintf("bundleHost%d", i+1)
		if _, err := mw.AddHost(names[i], "bundle-space", netsim.PentiumM_1600(), desktop(names[i]), 0); err != nil {
			return res, err
		}
	}

	const appName = "bench-bundled-app"
	start := time.Now()
	manifest, wrap, err := benchBundleApp(appName, stateBytes)
	if err != nil {
		return res, err
	}
	raw, err := bundle.Pack(manifest, wrap, priv)
	if err != nil {
		return res, err
	}
	res.Pack = time.Since(start)
	res.BundleBytes = int64(len(raw))
	res.BytesPerHost = res.BundleBytes

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	start = time.Now()
	if err := mw.PushBundle(ctx, appName, raw); err != nil {
		return res, err
	}
	res.Push = time.Since(start)

	want := bytes.Repeat([]byte{0x5a}, stateBytes)
	start = time.Now()
	for _, host := range names {
		if err := mw.InstallBundle(ctx, appName, host); err != nil {
			return res, fmt.Errorf("install on %s: %w", host, err)
		}
		rt, _ := mw.Host(host)
		factory, ok := rt.Engine.Factory(appName)
		if !ok {
			return res, fmt.Errorf("install on %s left no factory", host)
		}
		inst := factory(host)
		if err := rt.Engine.Run(inst); err != nil {
			return res, fmt.Errorf("run on %s: %w", host, err)
		}
		// Value checks: the shipped state must have survived pack, store,
		// fetch, and instantiation — a fast-but-wrong path scores zero.
		if v := inst.Profile().Preferences["api-token"]; v != "bench-secret" {
			return res, fmt.Errorf("instance on %s resolved secret %q, want %q", host, v, "bench-secret")
		}
		c, _ := inst.Component("payload")
		blob, ok := c.(*app.BlobComponent)
		if !ok {
			return res, fmt.Errorf("instance on %s has no payload blob", host)
		}
		got, err := blob.Snapshot()
		if err != nil {
			return res, err
		}
		if !bytes.Equal(got, want) {
			return res, fmt.Errorf("instance on %s restored %d payload bytes, want %d", host, len(got), len(want))
		}
	}
	res.Install = time.Since(start)
	if res.Install <= 0 {
		res.Install = time.Millisecond
	}
	res.InstallPerHost = res.Install / time.Duration(hosts)
	res.InstancesPerSec = float64(hosts) / res.Install.Seconds()
	return res, nil
}
