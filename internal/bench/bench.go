// Package bench assembles the paper's evaluation scenarios (§5) so the
// root bench_test.go and cmd/mdbench regenerate every results figure:
//
//	Fig. 7  — skew-canceling round-trip timing method
//	Fig. 8  — adaptive component binding: suspend/migrate/resume and
//	          total cost vs music file size
//	Fig. 9  — static component binding (the original design [7])
//	Fig. 10 — comparative total cost, adaptive vs static
//	Demo 2  — clone-dispatch fan-out to gateway-connected overflow rooms
//
// Every run builds a fresh deterministic deployment on a virtual clock,
// so reported durations replay the calibrated 2002-era testbed (P4 1.7 GHz
// and PM 1.6 GHz over 10 Mbps Ethernet) in microseconds of wall time.
package bench

import (
	"context"
	"fmt"
	"time"

	"mdagent/internal/app"
	"mdagent/internal/core"
	"mdagent/internal/demoapps"
	"mdagent/internal/media"
	"mdagent/internal/migrate"
	"mdagent/internal/netsim"
	"mdagent/internal/owl"
	"mdagent/internal/wsdl"
)

// FileSizes are the paper's sweep points: 2.0, 3.0, 4.3, 5.6, 6.5, 7.5 MB.
var FileSizes = []int64{
	2_000_000, 3_000_000, 4_300_000, 5_600_000, 6_500_000, 7_500_000,
}

// FileLabels render the sweep points as the paper's x-axis labels.
var FileLabels = []string{"2.0M", "3.0M", "4.3M", "5.6M", "6.5M", "7.5M"}

// Point is one measured sweep point.
type Point struct {
	Label   string
	Size    int64
	Suspend time.Duration
	Migrate time.Duration
	Resume  time.Duration
	Total   time.Duration
	Bytes   int64 // wrap payload transferred
}

func desktop(host string) wsdl.DeviceProfile {
	return wsdl.DeviceProfile{
		Host: host, ScreenWidth: 1024, ScreenHeight: 768,
		MemoryMB: 512, HasAudio: true, HasDisplay: true,
	}
}

// deployment builds the Fig. 8/9 testbed: the player on hostA
// (P4 1.7 GHz), its UI-only skeleton on hostB (PM 1.6 GHz), 10 Mbps
// Ethernet, the song served from hostA's media library.
func deployment(size int64, seed int64) (*core.Middleware, error) {
	return deploymentOnLink(size, seed, netsim.Ethernet10())
}

// deploymentOnLink is deployment with a configurable link profile, used
// by the link-speed ablation.
func deploymentOnLink(size int64, seed int64, link netsim.LinkProfile) (*core.Middleware, error) {
	mw, err := core.New(core.Config{Seed: seed, Link: link})
	if err != nil {
		return nil, err
	}
	cleanup := func(e error) (*core.Middleware, error) {
		mw.Close()
		return nil, e
	}
	if err := mw.AddSpace("lab-space"); err != nil {
		return cleanup(err)
	}
	if _, err := mw.AddHost("hostA", "lab-space", netsim.Pentium4_1700(), desktop("hostA"), 0); err != nil {
		return cleanup(err)
	}
	if _, err := mw.AddHost("hostB", "lab-space", netsim.PentiumM_1600(), desktop("hostB"), 3*time.Second); err != nil {
		return cleanup(err)
	}
	song := media.GenerateFile("song1", size, 3)
	hostA, _ := mw.Host("hostA")
	hostA.Library.Add(song)

	player := demoapps.NewMediaPlayer("hostA", song)
	if err := mw.RunApp(context.Background(), "hostA", player); err != nil {
		return cleanup(err)
	}
	if err := mw.RegisterResource(demoapps.MusicResource(song, "hostA")); err != nil {
		return cleanup(err)
	}
	if err := mw.InstallApp(context.Background(), "hostB", "smart-media-player", demoapps.MediaPlayerDesc(),
		demoapps.MediaPlayerSkeletonComponents(),
		func(host string) *app.Application { return demoapps.MediaPlayerSkeleton(host) }); err != nil {
		return cleanup(err)
	}
	return mw, nil
}

// RunFollowMe measures one follow-me migration at the given file size and
// binding mode on a fresh deployment.
func RunFollowMe(size int64, binding migrate.BindingMode) (Point, error) {
	return RunFollowMeOnLink(size, binding, netsim.Ethernet10())
}

// RunFollowMeOnLink is RunFollowMe on an arbitrary link profile — the
// link-speed ablation: does adaptive binding's advantage survive faster
// networks?
func RunFollowMeOnLink(size int64, binding migrate.BindingMode, link netsim.LinkProfile) (Point, error) {
	mw, err := deploymentOnLink(size, 1, link)
	if err != nil {
		return Point{}, err
	}
	defer mw.Close()
	hostA, _ := mw.Host("hostA")
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	rep, err := hostA.Engine.FollowMe(ctx, "smart-media-player", "hostB", binding, owl.MatchSemantic)
	if err != nil {
		return Point{}, err
	}
	return Point{
		Size: size, Suspend: rep.Suspend, Migrate: rep.Migrate,
		Resume: rep.Resume, Total: rep.Total(), Bytes: rep.BytesMoved,
	}, nil
}

// Sweep runs the full file-size sweep for one binding mode (Fig. 8 for
// adaptive, Fig. 9 for static).
func Sweep(binding migrate.BindingMode) ([]Point, error) {
	out := make([]Point, 0, len(FileSizes))
	for i, size := range FileSizes {
		p, err := RunFollowMe(size, binding)
		if err != nil {
			return nil, fmt.Errorf("bench: size %s: %w", FileLabels[i], err)
		}
		p.Label = FileLabels[i]
		out = append(out, p)
	}
	return out, nil
}

// Comparison pairs the two sweeps (Fig. 10).
type Comparison struct {
	Label    string
	Adaptive time.Duration
	Static   time.Duration
	Ratio    float64
}

// RunFig10 runs both sweeps and pairs the totals.
func RunFig10() ([]Comparison, error) {
	adaptive, err := Sweep(migrate.BindingAdaptive)
	if err != nil {
		return nil, err
	}
	static, err := Sweep(migrate.BindingStatic)
	if err != nil {
		return nil, err
	}
	out := make([]Comparison, len(adaptive))
	for i := range adaptive {
		out[i] = Comparison{
			Label:    adaptive[i].Label,
			Adaptive: adaptive[i].Total,
			Static:   static[i].Total,
			Ratio:    float64(static[i].Total) / float64(adaptive[i].Total),
		}
	}
	return out, nil
}

// Fig7Result captures the skew-cancellation measurement.
type Fig7Result struct {
	SkewCanceled time.Duration // (T2-T1)+(T4-T3) across skewed clocks
	TrueRTT      time.Duration // sum of the two legs' true totals
	NaiveOneWay  time.Duration // T2-T1 read naively across clocks
	TrueOneWay   time.Duration // outbound leg's true total
	Skew         time.Duration // injected clock offset
}

// RunFig7 measures a round trip between hosts whose clocks differ by 3 s,
// demonstrating that the paper's formula cancels the offset.
func RunFig7() (Fig7Result, error) {
	mw, err := deployment(FileSizes[0], 1)
	if err != nil {
		return Fig7Result{}, err
	}
	defer mw.Close()
	hostA, _ := mw.Host("hostA")
	hostB, _ := mw.Host("hostB")
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	rt, err := migrate.MeasureRoundTrip(ctx, hostA.Engine, hostB.Engine, "smart-media-player", migrate.BindingAdaptive, owl.MatchSemantic)
	if err != nil {
		return Fig7Result{}, err
	}
	return Fig7Result{
		SkewCanceled: rt.SkewCanceled(),
		TrueRTT:      rt.Out.Total() + rt.Back.Total(),
		NaiveOneWay:  rt.NaiveOneWay(),
		TrueOneWay:   rt.Out.Total(),
		Skew:         3 * time.Second,
	}, nil
}

// CloneResult is one overflow room's clone-dispatch outcome.
type CloneResult struct {
	Room       string
	Report     migrate.Report
	SyncRTT    time.Duration // virtual time for one slide change to sync
	InterSpace bool
}

// RunCloneFanout reproduces demo 2: a lecture slideshow cloned from the
// main room to n gateway-connected overflow rooms, then one slide change
// propagated to every clone.
func RunCloneFanout(n int, deckBytes int64) ([]CloneResult, error) {
	mw, err := core.New(core.Config{Seed: 2})
	if err != nil {
		return nil, err
	}
	defer mw.Close()
	if err := mw.AddSpace("main-space"); err != nil {
		return nil, err
	}
	if _, err := mw.AddHost("mainHost", "main-space", netsim.Pentium4_1700(), desktop("mainHost"), 0); err != nil {
		return nil, err
	}
	if err := mw.AddGateway("gwMain", "main-space", netsim.Pentium4_1700()); err != nil {
		return nil, err
	}
	deck := media.GenerateDeck("lecture", 20, deckBytes, 4)
	show := demoapps.NewSlideShow("mainHost", deck)
	show.BindResource(demoapps.SlidesResource(deck, "mainHost"))
	if err := mw.RunApp(context.Background(), "mainHost", show); err != nil {
		return nil, err
	}
	if err := mw.RegisterResource(demoapps.SlidesResource(deck, "mainHost")); err != nil {
		return nil, err
	}

	rooms := make([]string, 0, n)
	for i := 0; i < n; i++ {
		spaceName := fmt.Sprintf("overflow-space-%d", i+1)
		host := fmt.Sprintf("roomHost%d", i+1)
		if err := mw.AddSpace(spaceName); err != nil {
			return nil, err
		}
		if _, err := mw.AddHost(host, spaceName, netsim.PentiumM_1600(), desktop(host), 0); err != nil {
			return nil, err
		}
		if err := mw.AddGateway("gw-"+spaceName, spaceName, netsim.Pentium4_1700()); err != nil {
			return nil, err
		}
		if err := mw.InstallApp(context.Background(), host, "ubiquitous-slideshow", demoapps.SlideShowDesc(),
			demoapps.SlideShowSkeletonComponents(),
			func(h string) *app.Application { return demoapps.SlideShowSkeleton(h) }); err != nil {
			return nil, err
		}
		if err := mw.RegisterResource(demoapps.ProjectorResource("proj-"+host, host, "room-"+host)); err != nil {
			return nil, err
		}
		rooms = append(rooms, host)
	}

	mainRt, _ := mw.Host("mainHost")
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Second)
	defer cancel()
	results := make([]CloneResult, 0, n)
	for i, host := range rooms {
		cloneName := fmt.Sprintf("slideshow@room%d", i+1)
		rep, err := mainRt.Engine.CloneDispatch(ctx, "ubiquitous-slideshow", host, cloneName, owl.MatchSemantic)
		if err != nil {
			return nil, fmt.Errorf("bench: clone to %s: %w", host, err)
		}
		results = append(results, CloneResult{Room: host, Report: rep, InterSpace: rep.InterSpace})
	}

	// One speaker control change; measure virtual time until every clone
	// has converged.
	before := mw.Clock.Now()
	show.Coordinator().Set("slide", "2")
	deadline := time.Now().Add(30 * time.Second)
	for i, host := range rooms {
		rt, _ := mw.Host(host)
		cloneName := fmt.Sprintf("slideshow@room%d", i+1)
		for {
			inst, ok := rt.Engine.App(cloneName)
			if ok {
				if v, _ := inst.Coordinator().Get("slide"); v == "2" {
					break
				}
			}
			if time.Now().After(deadline) {
				return nil, fmt.Errorf("bench: clone %s never synced", cloneName)
			}
			time.Sleep(100 * time.Microsecond)
		}
	}
	syncRTT := mw.Clock.Now().Sub(before)
	for i := range results {
		results[i].SyncRTT = syncRTT
	}
	return results, nil
}
