package bench

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"mdagent/internal/app"
	"mdagent/internal/cluster"
	"mdagent/internal/netsim"
	"mdagent/internal/registry"
	"mdagent/internal/state"
	"mdagent/internal/store"
	"mdagent/internal/transport"
	"mdagent/internal/vclock"
	"mdagent/internal/wsdl"
)

// DurabilityResult is one kill-after-write experiment: write a batch of
// registry records and snapshot records to one federated center while
// the federation is healthy, cut the writer off from its peers, write a
// second batch, then kill the writer and audit what the surviving
// centers hold. The audit separates *silent* loss — writes the caller
// was told succeeded (and, under a synchronous concern, were durable)
// that no survivor holds — from flagged loss, where the write concern
// returned ErrNotDurable so the caller knew the write was at risk.
type DurabilityResult struct {
	Spaces  int
	Concern cluster.WriteConcern
	// Writes is the batch size per phase and record kind (so 2*Writes
	// registry records and 2*Writes snapshot records total).
	Writes int

	// Healthy-phase measurements (all peers reachable).
	HealthyLatency time.Duration // mean per-write latency, registry records
	SnapLatency    time.Duration // mean per-put latency, snapshot records

	// Wire snap-put latency through a SnapshotClient on the fabric, same
	// puts, async concern (no peer-ack wait): the codec comparison the
	// fast path is judged by — gob seals vs compact v2 frames.
	WireSnapGob  time.Duration
	WireSnapFast time.Duration

	// Partitioned-phase measurements (writer cut off from every peer).
	DegradedLatency time.Duration // mean per-write latency while degraded
	Flagged         int           // writes that returned ErrNotDurable (caller warned)

	// Post-kill audit over every written key, both kinds.
	SilentLoss int // writes reported OK/durable that no survivor holds
	LostTotal  int // all writes no survivor holds (flagged ones included)
	Durable    int // writes confirmed on at least one survivor
	// DurabilityEvents counts center durability reports by outcome.
	EventsDurable, EventsDegraded int
}

// durabilityFrame builds one small snapshot frame for the given value.
func durabilityFrame(appName, val string) (state.SnapshotPut, error) {
	inst := app.New(appName, "ctr-1", wsdl.Description{
		Name: appName,
		Services: []wsdl.Service{{Name: "svc", Ports: []wsdl.Port{{
			Name: "p", Operations: []wsdl.Operation{{Name: "op"}},
		}}}},
	})
	st := app.NewState("st")
	st.Set("v", val)
	if err := inst.AddComponent(st); err != nil {
		return state.SnapshotPut{}, err
	}
	w, err := inst.WrapComponents(nil)
	if err != nil {
		return state.SnapshotPut{}, err
	}
	frame, err := state.EncodeSnapshot(app.TaggedSnapshot{Tag: "replica", At: time.Unix(1, 0), Wrap: w})
	if err != nil {
		return state.SnapshotPut{}, err
	}
	return state.SnapshotPut{
		App: appName, Host: "ctr-1", At: time.Unix(1, 0),
		Frame: frame, NewDigest: state.WrapDigest(w),
	}, nil
}

// centerFederation builds n fully meshed bare centers (no middleware,
// no anti-entropy loops started), one netsim host each on a single LAN
// segment — the federation spaces are logical, and direct links keep
// the experiments about push durability, not gateway routing.
func centerFederation(n int, net *netsim.Network, fab *transport.LocalFabric, cfg cluster.Config) ([]*cluster.Center, error) {
	centers := make([]*cluster.Center, n)
	for i := 0; i < n; i++ {
		host := fmt.Sprintf("ctr-%d", i+1)
		space := fmt.Sprintf("space-%d", i+1)
		if _, err := net.AddHost(host, "lan", netsim.PentiumM_1600(), 0); err != nil {
			return nil, err
		}
		reg, err := registry.New(store.OpenMemory())
		if err != nil {
			return nil, err
		}
		ep, err := fab.Attach(cluster.CenterEndpointName(space), host)
		if err != nil {
			return nil, err
		}
		centers[i] = cluster.NewCenter(space, reg, ep, cfg)
	}
	for i, a := range centers {
		for j, b := range centers {
			if i != j {
				a.AddPeer(b.Space(), cluster.CenterEndpointName(b.Space()))
			}
		}
	}
	return centers, nil
}

// RunDurability runs the kill-after-write experiment over an n-space
// federation of bare centers (no middleware, no anti-entropy loops: a
// record reaches a peer only through the write-time push, which is
// exactly the window durable-by-write closes). Writes go to the first
// center; the "kill" is a netsim partition followed by host-down — the
// center dies before any of its partition-era pushes, retries, or
// anti-entropy rounds could run.
//
// The invariant under WriteConcern=quorum: SilentLoss == 0. Every write
// the caller was not warned about is on a surviving center. Under async
// the partition-era batch is silently lost in full (LostTotal == Writes
// per kind) because the writes reported success.
func RunDurability(n, writes int, concern cluster.WriteConcern) (DurabilityResult, error) {
	res := DurabilityResult{Spaces: n, Concern: concern, Writes: writes}
	if n < 3 {
		return res, fmt.Errorf("bench: durability needs >= 3 spaces for a meaningful quorum, got %d", n)
	}
	if writes <= 0 {
		return res, fmt.Errorf("bench: durability needs >= 1 write per phase, got %d", writes)
	}

	clock := vclock.NewVirtual(time.Unix(0, 0))
	net := netsim.New(clock, netsim.WithSeed(7), netsim.WithDefaultLink(netsim.Ethernet100()))
	fab := transport.NewLocalFabric(net)
	defer fab.Close()

	// partitioned doubles as the reachability oracle the writer's center
	// consults (degraded mode): in a real deployment this is the
	// membership view; the bench flips it at partition time.
	var partitioned atomic.Bool
	cfg := cluster.Config{
		// No anti-entropy: Start is never called, so pushes are the only
		// replication channel, matching the loss window under test.
		SyncInterval: time.Hour,
		ProbeTimeout: 250 * time.Millisecond,
		AckTimeout:   time.Second,
		Seed:         7,
	}
	cfg.WriteConcern = concern

	centers, err := centerFederation(n, net, fab, cfg)
	if err != nil {
		return res, err
	}
	writer := centers[0]
	writer.SetReachable(func(string) bool { return !partitioned.Load() })
	writer.OnDurability(func(ev cluster.DurabilityEvent) {
		if ev.Durable {
			res.EventsDurable++
		} else {
			res.EventsDegraded++
		}
	})

	ctx := context.Background()
	type written struct {
		key      string // registry app name or snapshot app name
		snapshot bool
		flagged  bool // returned ErrNotDurable: the caller was warned
	}
	var log []written

	writeBatch := func(phase string) (time.Duration, time.Duration, error) {
		var regDur, snapDur time.Duration
		for i := 0; i < writes; i++ {
			name := fmt.Sprintf("app-%s-%03d", phase, i)
			start := time.Now()
			err := writer.RegisterApp(ctx, registry.AppRecord{
				Name: name, Host: "ctr-1",
				Description: wsdl.Description{Name: name, Services: []wsdl.Service{{
					Name: "svc", Ports: []wsdl.Port{{Name: "p", Operations: []wsdl.Operation{{Name: "op"}}}},
				}}},
				Running: true,
			})
			regDur += time.Since(start)
			if err != nil && !errors.Is(err, cluster.ErrNotDurable) {
				return regDur, snapDur, err
			}
			log = append(log, written{key: name, flagged: errors.Is(err, cluster.ErrNotDurable)})

			put, err := durabilityFrame("snap-"+name, name)
			if err != nil {
				return regDur, snapDur, err
			}
			start = time.Now()
			_, err = writer.PutSnapshot(ctx, put)
			snapDur += time.Since(start)
			if err != nil && !errors.Is(err, cluster.ErrNotDurable) {
				return regDur, snapDur, err
			}
			log = append(log, written{key: "snap-" + name, snapshot: true, flagged: errors.Is(err, cluster.ErrNotDurable)})
		}
		return regDur, snapDur, nil
	}

	// Phase 1: healthy federation. Under a synchronous concern every
	// write blocks until its peers acked; under async the pushes race
	// ahead, so give them a bounded drain before the audit (this phase
	// is the latency measurement, not the loss one).
	regDur, snapDur, err := writeBatch("healthy")
	if err != nil {
		return res, err
	}
	res.HealthyLatency = regDur / time.Duration(writes)
	res.SnapLatency = snapDur / time.Duration(writes)
	deadline := time.Now().Add(10 * time.Second)
	for {
		drained := true
		for _, w := range log {
			if !onAnySurvivor(ctx, centers[1:], w.key, w.snapshot) {
				drained = false
				break
			}
		}
		if drained {
			break
		}
		if time.Now().After(deadline) {
			return res, fmt.Errorf("bench: healthy-phase pushes never drained to the peers")
		}
		time.Sleep(time.Millisecond)
	}

	// Wire leg: the same put stream through a SnapshotClient over the
	// fabric, once per encoding. Async concern isolates the codec + wire
	// cost from peer-ack waits; distinct app names keep every put a full
	// frame, so the two runs move identical state.
	if res.WireSnapGob, err = wireSnapLatency(net, fab, writes, "gob", transport.ProtoVersion); err != nil {
		return res, err
	}
	if res.WireSnapFast, err = wireSnapLatency(net, fab, writes, "fast", transport.ProtoV2); err != nil {
		return res, err
	}

	// Phase 2: the writer is cut off from every peer — its pushes fail
	// and (with a synchronous concern) its membership view says the
	// concern is unmeetable, so writes degrade to fast ErrNotDurable.
	partitioned.Store(true)
	rest := make([]string, 0, n-1)
	for i := 1; i < n; i++ {
		rest = append(rest, fmt.Sprintf("ctr-%d", i+1))
	}
	net.Partition([]string{"ctr-1"}, rest)
	markPartition := len(log)
	regDur, _, err = writeBatch("cutoff")
	if err != nil {
		return res, err
	}
	res.DegradedLatency = regDur / time.Duration(writes)

	// Kill the writer before any retry could run: its partition-era
	// records existed nowhere else.
	if err := net.SetHostDown("ctr-1", true); err != nil {
		return res, err
	}
	writer.Stop()

	// Audit: what do the survivors hold?
	for i, w := range log {
		held := onAnySurvivor(ctx, centers[1:], w.key, w.snapshot)
		switch {
		case held:
			res.Durable++
		default:
			res.LostTotal++
			if !w.flagged {
				res.SilentLoss++
			}
		}
		if i >= markPartition && w.flagged {
			res.Flagged++
		}
	}
	return res, nil
}

// wireSnapLatency measures the mean per-put latency of full-frame
// snapshot puts through a SnapshotClient pinned to one wire encoding,
// against a dedicated standalone center (async concern, no peers) on
// the same simulated network.
func wireSnapLatency(net *netsim.Network, fab *transport.LocalFabric, writes int, label string, proto byte) (time.Duration, error) {
	srvHost, cliHost := "wire-srv-"+label, "wire-cli-"+label
	for _, h := range []string{srvHost, cliHost} {
		if _, err := net.AddHost(h, "lan", netsim.PentiumM_1600(), 0); err != nil {
			return 0, err
		}
	}
	reg, err := registry.New(store.OpenMemory())
	if err != nil {
		return 0, err
	}
	space := "wire-" + label
	srvEp, err := fab.Attach(cluster.CenterEndpointName(space), srvHost)
	if err != nil {
		return 0, err
	}
	ctr := cluster.NewCenter(space, reg, srvEp, cluster.Config{
		SyncInterval: time.Hour, WriteConcern: cluster.WriteAsync, Seed: 7,
	})
	ctr.Serve(srvEp)
	defer ctr.Stop()
	cliEp, err := fab.Attach("wire-client-"+label, cliHost)
	if err != nil {
		return 0, err
	}
	cli := cluster.NewSnapshotClient(cliEp, cluster.CenterEndpointName(space))
	cli.SetProto(proto)

	ctx := context.Background()
	var total time.Duration
	for i := 0; i < writes; i++ {
		put, err := durabilityFrame(fmt.Sprintf("wire-%s-%03d", label, i), label)
		if err != nil {
			return 0, err
		}
		start := time.Now()
		if _, err := cli.PutSnapshot(ctx, put); err != nil {
			return 0, fmt.Errorf("bench: wire %s put #%d: %w", label, i, err)
		}
		total += time.Since(start)
	}
	return total / time.Duration(writes), nil
}

// onAnySurvivor reports whether any surviving center holds the record.
func onAnySurvivor(ctx context.Context, survivors []*cluster.Center, key string, snapshot bool) bool {
	for _, c := range survivors {
		if snapshot {
			if _, ok := c.LatestSnapshot(key); ok {
				return true
			}
			continue
		}
		if _, found, err := c.LookupApp(ctx, key, "ctr-1"); err == nil && found {
			return true
		}
	}
	return false
}
