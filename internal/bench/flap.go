package bench

import (
	"fmt"
	"sync"
	"time"

	"mdagent/internal/cluster"
)

// FlapResult is one flapping-link experiment: the link between two hosts
// of an n-space federation toggles down/up on a fixed period while
// membership runs, then heals. A robust failure detector masks a single
// flapping link through indirect probes (SWIM's ping-req relays), so the
// interesting numbers are how many false suspicions leaked through and
// whether anyone was wrongly convicted dead.
type FlapResult struct {
	Spaces      int
	Period      time.Duration // link toggle half-period
	Cycles      int           // down/up toggles executed
	Suspicions  int           // suspect transitions observed for the flapped pair
	Convictions int           // dead transitions observed for the flapped pair
	Healed      bool          // every node saw every host alive after the schedule
	HealTime    time.Duration // schedule stop -> full all-alive convergence
}

// RunFlap builds an n-space federation (n >= 3 so indirect probes have a
// relay), flaps the link between the first two hosts for cycles toggles
// of the given period, stops the schedule, and reports the false
// suspicions/convictions observed plus how long membership took to settle
// back to all-alive.
func RunFlap(n int, cfg cluster.Config, period time.Duration, cycles int) (FlapResult, error) {
	if n < 3 {
		return FlapResult{}, fmt.Errorf("bench: flap needs >= 3 spaces for indirect probes, got %d", n)
	}
	if cycles < 1 {
		return FlapResult{}, fmt.Errorf("bench: flap needs >= 1 cycle, got %d", cycles)
	}
	mw, hosts, err := newFederation(n, cfg)
	if err != nil {
		return FlapResult{}, err
	}
	defer mw.Close()

	a, b := hosts[0], hosts[1]
	var mu sync.Mutex
	suspicions, convictions := 0, 0
	mw.Cluster.OnMemberChange(func(_ *cluster.Node, m cluster.Member) {
		if m.ID != a && m.ID != b {
			return
		}
		mu.Lock()
		switch m.State {
		case cluster.StateSuspect:
			suspicions++
		case cluster.StateDead:
			convictions++
		}
		mu.Unlock()
	})

	// Converge to all-alive before injecting faults.
	allAlive := func() bool {
		for _, host := range hosts {
			node, ok := mw.Cluster.Node(host)
			if !ok || len(node.AliveHosts()) != n {
				return false
			}
		}
		return true
	}
	deadline := time.Now().Add(10 * time.Second)
	for !allAlive() {
		if time.Now().After(deadline) {
			return FlapResult{}, fmt.Errorf("bench: flap deployment never converged")
		}
		time.Sleep(time.Millisecond)
	}

	stop := mw.Net.Flap(a, b, period)
	time.Sleep(time.Duration(cycles) * period)
	stop()
	stoppedAt := time.Now()

	res := FlapResult{Spaces: n, Period: period, Cycles: cycles}
	healDeadline := stoppedAt.Add(30 * time.Second)
	for !allAlive() {
		if time.Now().After(healDeadline) {
			mu.Lock()
			res.Suspicions, res.Convictions = suspicions, convictions
			mu.Unlock()
			return res, fmt.Errorf("bench: membership never healed after flapping stopped")
		}
		time.Sleep(time.Millisecond)
	}
	res.Healed = true
	res.HealTime = time.Since(stoppedAt)
	mu.Lock()
	res.Suspicions, res.Convictions = suspicions, convictions
	mu.Unlock()
	return res, nil
}
