package bench

import (
	"testing"
	"time"

	"mdagent/internal/cluster"
	"mdagent/internal/migrate"
)

func TestSweepShapesMatchPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweeps in -short mode")
	}
	adaptive, err := Sweep(migrate.BindingAdaptive)
	if err != nil {
		t.Fatal(err)
	}
	static, err := Sweep(migrate.BindingStatic)
	if err != nil {
		t.Fatal(err)
	}
	if len(adaptive) != len(FileSizes) || len(static) != len(FileSizes) {
		t.Fatalf("sweep lengths = %d/%d", len(adaptive), len(static))
	}
	// Fig. 8: suspend flat, resume monotonic and < 300 ms growth.
	for i := 1; i < len(adaptive); i++ {
		if d := (adaptive[i].Suspend - adaptive[0].Suspend).Abs(); d > 50*time.Millisecond {
			t.Fatalf("adaptive suspend not flat at %s: drift %v", adaptive[i].Label, d)
		}
		if adaptive[i].Resume < adaptive[i-1].Resume {
			t.Fatalf("adaptive resume not monotonic at %s", adaptive[i].Label)
		}
	}
	growth := adaptive[len(adaptive)-1].Resume - adaptive[0].Resume
	if growth <= 0 || growth > 300*time.Millisecond {
		t.Fatalf("adaptive resume growth = %v, want (0, 300ms]", growth)
	}
	// Fig. 9: migrate strictly increasing and dominant at the top end.
	for i := 1; i < len(static); i++ {
		if static[i].Migrate <= static[i-1].Migrate {
			t.Fatalf("static migrate not increasing at %s", static[i].Label)
		}
	}
	last := static[len(static)-1]
	if last.Migrate < last.Suspend+last.Resume {
		t.Fatalf("static migrate (%v) does not dominate at 7.5M", last.Migrate)
	}
	// Fig. 10: adaptive wins everywhere, ratio widens.
	prev := 0.0
	for i := range adaptive {
		ratio := float64(static[i].Total) / float64(adaptive[i].Total)
		if ratio <= 1 {
			t.Fatalf("static beat adaptive at %s", adaptive[i].Label)
		}
		if ratio < prev {
			t.Fatalf("ratio shrank at %s: %.2f < %.2f", adaptive[i].Label, ratio, prev)
		}
		prev = ratio
	}
}

func TestRunFig7SkewCancels(t *testing.T) {
	res, err := RunFig7()
	if err != nil {
		t.Fatal(err)
	}
	if diff := (res.SkewCanceled - res.TrueRTT).Abs(); diff > time.Millisecond {
		t.Fatalf("formula error = %v", diff)
	}
	if naive := (res.NaiveOneWay - res.TrueOneWay).Abs(); naive < 2900*time.Millisecond {
		t.Fatalf("naive error = %v, want ~3s", naive)
	}
}

func TestRunFig10PairsSweeps(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweeps in -short mode")
	}
	rows, err := RunFig10()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(FileSizes) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Ratio <= 1 {
			t.Fatalf("ratio at %s = %.2f", r.Label, r.Ratio)
		}
	}
}

func TestRunCloneFanout(t *testing.T) {
	results, err := RunCloneFanout(2, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	for _, r := range results {
		if !r.InterSpace {
			t.Fatalf("%s: clone did not cross spaces", r.Room)
		}
		if r.Report.BytesMoved < 1_000_000 {
			t.Fatalf("%s: only %d bytes moved, want the deck", r.Room, r.Report.BytesMoved)
		}
		if r.SyncRTT <= 0 {
			t.Fatalf("%s: sync RTT = %v", r.Room, r.SyncRTT)
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	a, err := RunFollowMe(FileSizes[0], migrate.BindingAdaptive)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFollowMe(FileSizes[0], migrate.BindingAdaptive)
	if err != nil {
		t.Fatal(err)
	}
	if a.Suspend != b.Suspend || a.Bytes != b.Bytes {
		t.Fatalf("runs differ: %+v vs %+v", a, b)
	}
	// Total carries the one legitimate source of jitter: migration trace
	// spans ride the checkin reply with wall-clock durations, and gob's
	// varint encoding makes the reply a few bytes longer or shorter from
	// run to run, which netsim's per-byte charge turns into sub-µs
	// virtual-clock noise. Everything upstream of the wire stays exact;
	// bound the wire-size wiggle tightly instead of demanding bit-equal.
	diff := a.Total - b.Total
	if diff < 0 {
		diff = -diff
	}
	if diff > 10*time.Microsecond {
		t.Fatalf("totals differ by %v (> 10µs wire-encoding tolerance): %+v vs %+v", diff, a, b)
	}
}

func TestLabelsMatchSizes(t *testing.T) {
	if len(FileLabels) != len(FileSizes) {
		t.Fatalf("labels %d vs sizes %d", len(FileLabels), len(FileSizes))
	}
}

func TestChurnFailoverRehomes(t *testing.T) {
	res, err := RunChurn(3, ChurnConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.NewHost == "host-1" || res.NewHost == "" {
		t.Fatalf("app not re-homed off the victim: %+v", res)
	}
	// Conviction cannot beat the suspicion window, and single-digit
	// seconds would mean the detector is broken at a 2 ms probe cadence.
	if res.Convergence < ChurnConfig().SuspicionTimeout {
		t.Fatalf("convergence %v faster than the suspicion window", res.Convergence)
	}
	if res.Convergence > 5*time.Second || res.Failover > 5*time.Second {
		t.Fatalf("churn reaction implausibly slow: %+v", res)
	}
}

func TestChurnRejectsTooFewSpaces(t *testing.T) {
	if _, err := RunChurn(2, ChurnConfig()); err == nil {
		t.Fatal("RunChurn(2) should refuse: a lone survivor has no quorum")
	}
}

func TestChurnWithStateRestoresSnapshot(t *testing.T) {
	// Relaxed cadence and a small song: under -race the benchmark's 2 ms
	// probes plus multi-megabyte captures cause false convictions.
	cfg := ChurnStateConfig()
	cfg.ProbeInterval = 5 * time.Millisecond
	cfg.ProbeTimeout = 100 * time.Millisecond
	cfg.SuspicionTimeout = 300 * time.Millisecond
	cfg.SyncInterval = 10 * time.Millisecond
	cfg.ReplicateInterval = 5 * time.Millisecond
	res, err := RunChurnSized(3, cfg, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.NewHost == "host-1" || res.NewHost == "" {
		t.Fatalf("app not re-homed off the victim: %+v", res)
	}
	if !res.StateIntact {
		t.Fatalf("re-homed app lost its in-flight state: %+v", res)
	}
	if res.SnapshotBytes == 0 {
		t.Fatalf("no snapshot frame measured: %+v", res)
	}
	if res.Replication <= 0 || res.Replication > 5*time.Second {
		t.Fatalf("implausible replication latency: %v", res.Replication)
	}
}

// TestCleanStopZeroOutage is the acceptance check for graceful leave: a
// clean shutdown (final flush + Node.Leave) must convict the host on
// every survivor WITHOUT the suspicion window — the leave certificate
// lands synchronously — and failover must resume the app with the
// flushed state, so the only outage is the re-home itself.
func TestCleanStopZeroOutage(t *testing.T) {
	// Relaxed cadence and a small song, as in the churn state test: the
	// assertion is conviction beating the suspicion window, so the
	// window is kept wide to make the margin unambiguous under -race.
	cfg := ChurnStateConfig()
	cfg.ProbeInterval = 5 * time.Millisecond
	cfg.ProbeTimeout = 100 * time.Millisecond
	cfg.SuspicionTimeout = 300 * time.Millisecond
	cfg.SyncInterval = 10 * time.Millisecond
	cfg.ReplicateInterval = 5 * time.Millisecond
	res, err := RunCleanStop(3, cfg, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.NewHost == "host-1" || res.NewHost == "" {
		t.Fatalf("app not re-homed off the leaver: %+v", res)
	}
	// A crashed host pays probe round + suspicion window before
	// conviction (TestChurnFailoverRehomes asserts the lower bound); a
	// leaver must be convicted by its own broadcast, well inside it.
	if res.Conviction >= cfg.SuspicionTimeout {
		t.Fatalf("clean leave waited out the suspicion window: conviction %v >= %v",
			res.Conviction, cfg.SuspicionTimeout)
	}
	if !res.StateIntact {
		t.Fatalf("re-homed app lost the final flush: %+v", res)
	}
	if res.Flush <= 0 || res.Flush > 5*time.Second {
		t.Fatalf("implausible flush latency: %v", res.Flush)
	}
}

func TestCleanStopNeedsStateConfig(t *testing.T) {
	if _, err := RunCleanStop(3, ChurnConfig(), 100_000); err == nil {
		t.Fatal("RunCleanStop without ReplicateState should refuse")
	}
}

func TestFlapDoesNotConvict(t *testing.T) {
	res, err := RunFlap(3, ChurnConfig(), 10*time.Millisecond, 6)
	if err != nil {
		t.Fatal(err)
	}
	// Indirect probes relay around a single flapping link: nobody may be
	// wrongly declared dead, and membership must settle afterwards.
	if res.Convictions != 0 {
		t.Fatalf("flapping link caused %d false dead convictions", res.Convictions)
	}
	if !res.Healed {
		t.Fatal("membership did not settle after the flap schedule")
	}
}

func TestFlapRejectsBadParams(t *testing.T) {
	if _, err := RunFlap(2, ChurnConfig(), time.Millisecond, 1); err == nil {
		t.Fatal("RunFlap(2) should refuse: no relay for indirect probes")
	}
	if _, err := RunFlap(3, ChurnConfig(), time.Millisecond, 0); err == nil {
		t.Fatal("RunFlap with 0 cycles should refuse")
	}
}

// TestChurnDeltaRestoreMatchesFullFrames is the acceptance check for the
// delta pipeline's failover path: restoring a re-homed app from a
// delta-chain record must be value-level identical to restoring from a
// full-frame record, and the planted state must actually have crossed as
// a delta (not a silent full-frame fallback).
func TestChurnDeltaRestoreMatchesFullFrames(t *testing.T) {
	relaxed := func() cluster.Config {
		cfg := ChurnStateConfig()
		cfg.ProbeInterval = 5 * time.Millisecond
		cfg.ProbeTimeout = 100 * time.Millisecond
		cfg.SuspicionTimeout = 300 * time.Millisecond
		cfg.SyncInterval = 10 * time.Millisecond
		cfg.ReplicateInterval = 5 * time.Millisecond
		return cfg
	}

	deltaCfg := relaxed()
	dres, err := RunChurnSized(3, deltaCfg, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if !dres.StateIntact {
		t.Fatalf("delta-chain restore lost state: %+v", dres)
	}
	if dres.SnapshotDeltas == 0 {
		t.Fatalf("planted state never shipped as a delta: %+v", dres)
	}
	if dres.DeltaBytes*5 > dres.SnapshotBytes {
		t.Fatalf("delta frame (%d bytes) not meaningfully smaller than the record (%d bytes)",
			dres.DeltaBytes, dres.SnapshotBytes)
	}

	fullCfg := relaxed()
	fullCfg.FullSnapshotFrames = true
	fres, err := RunChurnSized(3, fullCfg, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if !fres.StateIntact {
		t.Fatalf("full-frame restore lost state: %+v", fres)
	}
	if fres.SnapshotDeltas != 0 {
		t.Fatalf("full-frame mode produced a delta chain: %+v", fres)
	}
}

// TestDurabilityQuorumZeroSilentLoss is the acceptance check for
// durable-by-write federation: with WriteConcern=quorum, killing the
// writing center right after its writes return loses no record the
// caller was not explicitly warned about — every healthy-phase write is
// on a survivor, and every cut-off-phase write came back ErrNotDurable.
func TestDurabilityQuorumZeroSilentLoss(t *testing.T) {
	res, err := RunDurability(3, 4, cluster.WriteQuorum)
	if err != nil {
		t.Fatal(err)
	}
	perPhase := 2 * 4 // registry + snapshot writes
	if res.SilentLoss != 0 {
		t.Fatalf("quorum writes silently lost: %+v", res)
	}
	if res.Durable != perPhase {
		t.Fatalf("healthy-phase writes not all on survivors: %+v", res)
	}
	if res.Flagged != perPhase {
		t.Fatalf("cut-off writes not all flagged ErrNotDurable: %+v", res)
	}
	if res.LostTotal != perPhase {
		t.Fatalf("lost-total should be exactly the flagged cut-off batch: %+v", res)
	}
	if res.EventsDurable != perPhase || res.EventsDegraded != perPhase {
		t.Fatalf("durability events off: %+v", res)
	}
}

// TestDurabilityAsyncLosesSilently documents the failure mode the write
// concern exists for: async writes during the cut-off window report
// success and are all lost when the center dies before its push.
func TestDurabilityAsyncLosesSilently(t *testing.T) {
	res, err := RunDurability(3, 4, cluster.WriteAsync)
	if err != nil {
		t.Fatal(err)
	}
	if res.Flagged != 0 {
		t.Fatalf("async writes should never be flagged: %+v", res)
	}
	if res.SilentLoss != 2*4 {
		t.Fatalf("silent loss = %d, want the whole cut-off batch (8): %+v", res.SilentLoss, res)
	}
}

func TestDurabilityRejectsBadParams(t *testing.T) {
	if _, err := RunDurability(2, 4, cluster.WriteQuorum); err == nil {
		t.Fatal("RunDurability(2) should refuse: quorum needs >= 3 centers")
	}
	if _, err := RunDurability(3, 0, cluster.WriteQuorum); err == nil {
		t.Fatal("RunDurability with 0 writes should refuse")
	}
}

// TestDeltaSweepSavesBytes runs one small cell of the delta sweep and
// checks the headline claims: >= 5x fewer replicated bytes per mutated
// tick, zero serialization on idle ticks, and a value-intact record on
// the peer center in both modes.
func TestDeltaSweepSavesBytes(t *testing.T) {
	points, err := RunDeltaSweep([]int64{200_000}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d, want 2", len(points))
	}
	full, delta := points[0], points[1]
	if full.Mode != "full" || delta.Mode != "delta" {
		t.Fatalf("unexpected mode order: %+v", points)
	}
	for _, p := range points {
		if !p.StateIntact {
			t.Fatalf("%s-mode record not value-intact: %+v", p.Mode, p)
		}
		if p.SkippedClean != 3 {
			t.Fatalf("%s-mode idle ticks not skipped cleanly: %+v", p.Mode, p)
		}
	}
	if delta.BytesPerTick*5 > full.BytesPerTick {
		t.Fatalf("delta pipeline saved too little: %d vs %d bytes/tick",
			delta.BytesPerTick, full.BytesPerTick)
	}
	if delta.DeltaFrames == 0 || full.DeltaFrames != 0 {
		t.Fatalf("frame kinds wrong: full=%+v delta=%+v", full, delta)
	}
}

// TestRunCtlMeasures smokes the control-plane micro-bench at a tiny
// scale: every request succeeds, all events reach every watcher on both
// protocol generations when the burst fits the queues, no drops are
// reported, and the replay scenario resumes the unread half loss-free.
func TestRunCtlMeasures(t *testing.T) {
	res, err := RunCtl(8, 3, 16)
	if err != nil {
		t.Fatal(err)
	}
	if res.InfoRTT <= 0 || res.AppsRTT <= 0 {
		t.Fatalf("non-positive RTTs: %+v", res)
	}
	for _, f := range []CtlFanout{res.V1, res.V2} {
		if f.Delivered != int64(3*16) || f.Lost != 0 {
			t.Fatalf("%s fan-out delivered %d lost %d, want 48/0", f.Proto, f.Delivered, f.Lost)
		}
		if f.EventsPerSec <= 0 {
			t.Fatalf("%s events/sec = %f", f.Proto, f.EventsPerSec)
		}
	}
	if res.Replay.Live != 8 || res.Replay.Replayed != 8 || res.Replay.Lost != 0 {
		t.Fatalf("replay = %+v, want 8 live + 8 replayed, 0 lost", res.Replay)
	}
}

// TestMembersBoundedPayload smokes the membership scale sweep at a small
// size: bounded dissemination must keep per-message payloads flat (far
// under one full table), converge the join in a handful of rounds, and
// report zero false positives.
func TestMembersBoundedPayload(t *testing.T) {
	res, err := RunMembers(40, MembersConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.BytesPerMsg <= 0 || res.BytesPerMsg > 2048 {
		t.Fatalf("bytes/msg = %.0f, want bounded well under a full table", res.BytesPerMsg)
	}
	if res.JoinRounds <= 0 || res.JoinRounds > 30 {
		t.Fatalf("join took %d rounds, want O(log N)", res.JoinRounds)
	}
	if res.FalseSuspects != 0 || res.FalseConvictions != 0 {
		t.Fatalf("false positives: %d suspects, %d convictions", res.FalseSuspects, res.FalseConvictions)
	}
	if res.KillWall < res.Config.SuspicionTimeout {
		t.Fatalf("kill converged in %v, inside the %v suspicion window", res.KillWall, res.Config.SuspicionTimeout)
	}
}

// TestMembersBaselineCostsMore pins the tentpole claim at smoke scale:
// full-table piggybacking pays more bytes per host per second than
// bounded dissemination, and its payload grows with the table while the
// bounded payload does not.
func TestMembersBaselineCostsMore(t *testing.T) {
	bounded, err := RunMembers(40, MembersConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := MembersConfig()
	cfg.FullTableGossip = true
	full, err := RunMembers(40, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if full.BytesPerHostSec <= bounded.BytesPerHostSec {
		t.Fatalf("full-table %0.f B/host/s <= bounded %.0f — baseline should cost more",
			full.BytesPerHostSec, bounded.BytesPerHostSec)
	}
	if full.BytesPerMsg <= bounded.BytesPerMsg {
		t.Fatalf("full-table %.0f bytes/msg <= bounded %.0f", full.BytesPerMsg, bounded.BytesPerMsg)
	}
}

func TestMembersRejectsBadParams(t *testing.T) {
	if _, err := RunMembers(2, MembersConfig()); err == nil {
		t.Fatal("RunMembers(2) should refuse: no relay for indirect probes")
	}
}
