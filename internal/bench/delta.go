package bench

import (
	"context"
	"fmt"
	"strconv"
	"time"

	"mdagent/internal/app"
	"mdagent/internal/cluster"
	"mdagent/internal/demoapps"
	"mdagent/internal/media"
)

// DeltaPoint is one (app size, pipeline mode) cell of the delta sweep:
// a media player whose song dominates its wrap, mutated by one small
// playback-position write per capture tick. "full" disables the delta
// pipeline (every capture ships the whole wrap — the PR 2 behaviour);
// "delta" is the default pipeline.
type DeltaPoint struct {
	SongBytes int64
	Mode      string // "full" or "delta"
	Ticks     int    // mutated capture rounds after the initial base

	Publishes    int64
	FullFrames   int64
	DeltaFrames  int64
	BaseBytes    int64 // bytes of the initial base publish
	TotalBytes   int64 // all bytes put to the center across the run
	BytesPerTick int64 // steady-state replicated bytes per mutated tick
	SkippedClean int64 // idle ticks skipped with zero serialization
	StateIntact  bool  // peer-center record reassembles to the live value
	ChainLen     int   // delta chain length on the peer record at the end
}

// deltaSweepConfig is the cluster config the sweep runs at: state
// replication on, the periodic loop effectively disabled (captures are
// driven manually for determinism), no byte-budget pacing.
func deltaSweepConfig(fullFrames bool) cluster.Config {
	return cluster.Config{
		ReplicateState:     true,
		ReplicateInterval:  time.Hour,
		ReplicateBudget:    -1,
		FullSnapshotFrames: fullFrames,
		Seed:               13,
	}
}

// RunDeltaSweep measures replicated bytes per capture tick as app size
// grows, with the delta pipeline on and off. Each cell builds a 2-space
// federation, runs the player with a song of the given size on the
// first host, publishes the base, then performs ticks rounds of (small
// state mutation, synchronous capture), followed by a few idle rounds.
// The final record is pulled from the peer space's center and
// value-checked against the live state — the same record failover would
// restore from.
func RunDeltaSweep(sizes []int64, ticks int) ([]DeltaPoint, error) {
	if ticks <= 0 {
		return nil, fmt.Errorf("bench: delta sweep needs >= 1 tick, got %d", ticks)
	}
	var out []DeltaPoint
	for _, size := range sizes {
		for _, mode := range []string{"full", "delta"} {
			p, err := runDeltaCell(size, mode, ticks)
			if err != nil {
				return nil, fmt.Errorf("bench: delta cell %d/%s: %w", size, mode, err)
			}
			out = append(out, p)
		}
	}
	return out, nil
}

func runDeltaCell(songBytes int64, mode string, ticks int) (DeltaPoint, error) {
	p := DeltaPoint{SongBytes: songBytes, Mode: mode, Ticks: ticks}
	mw, hosts, err := newFederation(2, deltaSweepConfig(mode == "full"))
	if err != nil {
		return p, err
	}
	defer mw.Close()

	host := hosts[0]
	rt, _ := mw.Host(host)
	song := media.GenerateFile("song1", songBytes, 3)
	rt.Library.Add(song)
	if err := mw.RunApp(context.Background(), host, demoapps.NewMediaPlayer(host, song)); err != nil {
		return p, err
	}
	inst, ok := rt.Engine.App("smart-media-player")
	if !ok {
		return p, fmt.Errorf("player not running on %s", host)
	}
	st, ok := inst.Component("playback-state")
	if !ok {
		return p, fmt.Errorf("player has no playback-state component")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	rep := rt.Replicator
	if rep == nil {
		return p, fmt.Errorf("host %s has no replicator", host)
	}
	// Base publish.
	if err := rep.SyncNow(ctx); err != nil {
		return p, err
	}
	base := rep.Stats()
	p.BaseBytes = base.BytesPublished

	// Steady state: one small mutation per capture tick.
	var last string
	for i := 0; i < ticks; i++ {
		last = strconv.Itoa(30000 + i)
		st.(*app.StateComponent).Set("positionMs", last)
		inst.Coordinator().Set("positionMs", last)
		if err := rep.SyncNow(ctx); err != nil {
			return p, err
		}
	}
	// Idle tail: unchanged app, must cost nothing.
	for i := 0; i < 3; i++ {
		if err := rep.SyncNow(ctx); err != nil {
			return p, err
		}
	}

	s := rep.Stats()
	p.Publishes = s.Publishes
	p.FullFrames = s.FullFrames
	p.DeltaFrames = s.DeltaFrames
	p.TotalBytes = s.BytesPublished
	p.BytesPerTick = (s.BytesPublished - base.BytesPublished) / int64(ticks)
	p.SkippedClean = s.SkippedClean - base.SkippedClean

	// Value-level check against the PEER space's center — the copy
	// failover on a surviving space would restore from.
	peer, ok := mw.Cluster.Center("space-2")
	if !ok {
		return p, fmt.Errorf("no peer center")
	}
	if err := peer.SyncNow(ctx); err != nil {
		return p, err
	}
	rec, ok := peer.LatestSnapshot("smart-media-player")
	if !ok {
		return p, fmt.Errorf("snapshot never reached the peer center")
	}
	p.ChainLen = len(rec.Deltas)
	ts, err := rec.Snapshot()
	if err != nil {
		return p, err
	}
	check := app.New("smart-media-player", "check", demoapps.MediaPlayerDesc())
	if err := check.Unwrap(ts.Wrap); err != nil {
		return p, err
	}
	cs, ok := check.Component("playback-state")
	if ok {
		v, _ := cs.(*app.StateComponent).Get("positionMs")
		cv, _ := check.Coordinator().Get("positionMs")
		p.StateIntact = v == last && cv == last
	}
	return p, nil
}
