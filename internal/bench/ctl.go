package bench

import (
	"context"
	"fmt"
	"sync"
	"time"

	"mdagent/internal/ctl"
	"mdagent/internal/ctxkernel"
)

// CtlResult is the control-plane micro-benchmark: request round-trip
// latency for a metadata call (Info) and a data call (Apps), and Watch
// fan-out — events per second actually delivered to N concurrent
// watchers, with the server-side drop count. Later protocol revisions
// diff against this baseline.
type CtlResult struct {
	Requests int
	InfoRTT  time.Duration // mean round-trip of one ctl.info
	AppsRTT  time.Duration // mean round-trip of one ctl.apps (records + heads)

	Watchers     int
	Published    int
	Delivered    int64 // events that reached a watcher
	Lost         int64 // events dropped server-side (undrained queues)
	Elapsed      time.Duration
	EventsPerSec float64 // delivered / elapsed
}

// RunCtl measures the control plane over the in-process fabric: the
// same versioned protocol and server the TCP daemons use, minus kernel
// scheduling noise from real sockets — so the numbers isolate protocol
// cost (seal, gob, dispatch, reply correlation) and the Watch pusher.
func RunCtl(requests, watchers, events int) (CtlResult, error) {
	mw, err := deployment(200_000, 7)
	if err != nil {
		return CtlResult{}, err
	}
	defer mw.Close()

	srvEp, err := mw.Fabric.Attach("ctl-bench-server", "")
	if err != nil {
		return CtlResult{}, err
	}
	srv := mw.ServeControl(srvEp)
	defer srv.Close()
	cliEp, err := mw.Fabric.Attach("ctl-bench-client", "")
	if err != nil {
		return CtlResult{}, err
	}
	cli := ctl.NewClient(cliEp, "ctl-bench-server")
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	res := CtlResult{Requests: requests, Watchers: watchers, Published: events}

	// Round-trip latency (wall clock; the virtual testbed clock does not
	// pace fabric dispatch).
	start := time.Now()
	for i := 0; i < requests; i++ {
		if _, err := cli.Info(ctx); err != nil {
			return res, fmt.Errorf("info #%d: %w", i, err)
		}
	}
	res.InfoRTT = time.Since(start) / time.Duration(requests)
	start = time.Now()
	for i := 0; i < requests; i++ {
		if _, err := cli.Apps(ctx); err != nil {
			return res, fmt.Errorf("apps #%d: %w", i, err)
		}
	}
	res.AppsRTT = time.Since(start) / time.Duration(requests)

	// Watch fan-out: N watchers on their own endpoints, one publisher
	// burst, count deliveries until the stream idles.
	type tally struct {
		delivered int64
		lost      uint64
	}
	var wg sync.WaitGroup
	tallies := make(chan tally, watchers)
	wctx, wcancel := context.WithCancel(ctx)
	defer wcancel()
	for i := 0; i < watchers; i++ {
		ep, err := mw.Fabric.Attach(fmt.Sprintf("ctl-bench-watch-%d", i), "")
		if err != nil {
			return res, err
		}
		wcli := ctl.NewClient(ep, "ctl-bench-server")
		stream, err := wcli.Watch(wctx, "bench.*")
		if err != nil {
			return res, err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			var tl tally
			idle := time.NewTimer(time.Second)
			defer idle.Stop()
			for {
				select {
				case ev, ok := <-stream:
					if !ok {
						tallies <- tl
						return
					}
					tl.delivered++
					tl.lost += ev.Lost
					if !idle.Stop() {
						<-idle.C
					}
					idle.Reset(300 * time.Millisecond)
				case <-idle.C:
					tallies <- tl
					return
				}
			}
		}()
	}

	start = time.Now()
	for i := 0; i < events; i++ {
		mw.Kernel.Publish(ctxkernel.Event{
			Topic: "bench.tick", At: time.Now(), Source: "bench",
			Attrs: map[string]string{"seq": fmt.Sprint(i)},
		})
	}
	wg.Wait()
	close(tallies)
	// The idle window ran after the last delivery on every watcher;
	// charge only one window against throughput, not one per watcher.
	res.Elapsed = time.Since(start) - 300*time.Millisecond
	if res.Elapsed <= 0 {
		res.Elapsed = time.Millisecond
	}
	for tl := range tallies {
		res.Delivered += tl.delivered
		res.Lost += int64(tl.lost)
	}
	res.EventsPerSec = float64(res.Delivered) / res.Elapsed.Seconds()
	return res, nil
}
