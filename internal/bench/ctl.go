package bench

import (
	"context"
	"fmt"
	"sync"
	"time"

	"mdagent/internal/core"
	"mdagent/internal/ctl"
	"mdagent/internal/ctxkernel"
)

// CtlFanout is one Watch fan-out measurement: events per second actually
// delivered to N concurrent watchers on one protocol generation, with
// the loss count the stream reported in-band.
type CtlFanout struct {
	Proto        string // "v1" (per-event gob) or "v2" (batched fast frames)
	Watchers     int
	Published    int
	Delivered    int64 // events that reached a watcher
	Lost         int64 // events reported lost in-band (drops, ring overflow)
	Elapsed      time.Duration
	EventsPerSec float64 // delivered / elapsed
}

// CtlReplay measures the resume path: a watcher reads half a burst,
// disconnects, and re-attaches with WatchFrom(lastSeq+1) — the replayed
// half must arrive complete (zero lost) straight from the server ring.
type CtlReplay struct {
	Burst        int
	Live         int   // events read before the disconnect
	Replayed     int   // events re-delivered after the resume
	Lost         int64 // must be 0 while the burst fits the ring
	Elapsed      time.Duration
	EventsPerSec float64 // replayed / elapsed
}

// CtlResult is the control-plane micro-benchmark: request round-trip
// latency for a metadata call (Info) and a data call (Apps), Watch
// fan-out on both protocol generations side by side, and the
// replay-from-seq resume path. Later protocol revisions diff against
// the V2 column.
type CtlResult struct {
	Requests int
	InfoRTT  time.Duration // mean round-trip of one ctl.info
	AppsRTT  time.Duration // mean round-trip of one ctl.apps (records + heads)

	V1     CtlFanout // per-event gob stream (pre-v2 client against the same server)
	V2     CtlFanout // batched fast frames through the replay ring
	Replay CtlReplay
}

// RunCtl measures the control plane over the in-process fabric: the
// same versioned protocol and server the TCP daemons use, minus kernel
// scheduling noise from real sockets — so the numbers isolate protocol
// cost (seal, encode, dispatch, reply correlation) and the Watch
// pushers. The v1 and v2 fan-outs run against one server back to back
// with the same burst, so the two rows differ only in wire encoding and
// push strategy.
func RunCtl(requests, watchers, events int) (CtlResult, error) {
	mw, err := deployment(200_000, 7)
	if err != nil {
		return CtlResult{}, err
	}
	defer mw.Close()

	srvEp, err := mw.Fabric.Attach("ctl-bench-server", "")
	if err != nil {
		return CtlResult{}, err
	}
	srv := mw.ServeControl(srvEp)
	defer srv.Close()
	cliEp, err := mw.Fabric.Attach("ctl-bench-client", "")
	if err != nil {
		return CtlResult{}, err
	}
	cli := ctl.NewClient(cliEp, "ctl-bench-server")
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	res := CtlResult{Requests: requests}

	// Round-trip latency (wall clock; the virtual testbed clock does not
	// pace fabric dispatch).
	start := time.Now()
	for i := 0; i < requests; i++ {
		if _, err := cli.Info(ctx); err != nil {
			return res, fmt.Errorf("info #%d: %w", i, err)
		}
	}
	res.InfoRTT = time.Since(start) / time.Duration(requests)
	start = time.Now()
	for i := 0; i < requests; i++ {
		if _, err := cli.Apps(ctx); err != nil {
			return res, fmt.Errorf("apps #%d: %w", i, err)
		}
	}
	res.AppsRTT = time.Since(start) / time.Duration(requests)

	// Fan-out, both generations against the same server and burst size.
	if res.V1, err = runFanout(ctx, mw, "v1", 1, watchers, events); err != nil {
		return res, err
	}
	if res.V2, err = runFanout(ctx, mw, "v2", 0, watchers, events); err != nil {
		return res, err
	}
	if res.Replay, err = runReplay(ctx, mw, events); err != nil {
		return res, err
	}
	return res, nil
}

// runFanout publishes one burst to N watchers pinned to a protocol
// generation (forceProto 1 = per-event gob, 0 = negotiate v2) and
// counts deliveries until every stream idles.
func runFanout(ctx context.Context, mw *core.Middleware, label string, forceProto byte, watchers, events int) (CtlFanout, error) {
	out := CtlFanout{Proto: label, Watchers: watchers, Published: events}
	topic := "bench" + label + ".tick"

	type tally struct {
		delivered int64
		lost      uint64
	}
	var wg sync.WaitGroup
	tallies := make(chan tally, watchers)
	wctx, wcancel := context.WithCancel(ctx)
	defer wcancel()
	for i := 0; i < watchers; i++ {
		ep, err := mw.Fabric.Attach(fmt.Sprintf("ctl-bench-watch-%s-%d", label, i), "")
		if err != nil {
			return out, err
		}
		wcli := ctl.NewClient(ep, "ctl-bench-server")
		wcli.ForceProto = forceProto
		stream, err := wcli.Watch(wctx, "bench"+label+".*")
		if err != nil {
			return out, err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			var tl tally
			idle := time.NewTimer(time.Second)
			defer idle.Stop()
			for {
				select {
				case ev, ok := <-stream:
					if !ok {
						tallies <- tl
						return
					}
					tl.delivered++
					tl.lost += ev.Lost
					if !idle.Stop() {
						<-idle.C
					}
					idle.Reset(300 * time.Millisecond)
				case <-idle.C:
					tallies <- tl
					return
				}
			}
		}()
	}

	start := time.Now()
	for i := 0; i < events; i++ {
		mw.Kernel.Publish(ctxkernel.Event{
			Topic: topic, At: time.Now(), Source: "bench",
			Attrs: map[string]string{"seq": fmt.Sprint(i)},
		})
	}
	wg.Wait()
	close(tallies)
	// The idle window ran after the last delivery on every watcher;
	// charge only one window against throughput, not one per watcher.
	out.Elapsed = time.Since(start) - 300*time.Millisecond
	if out.Elapsed <= 0 {
		out.Elapsed = time.Millisecond
	}
	for tl := range tallies {
		out.Delivered += tl.delivered
		out.Lost += int64(tl.lost)
	}
	out.EventsPerSec = float64(out.Delivered) / out.Elapsed.Seconds()
	return out, nil
}

// runReplay is the resume scenario: read half the burst live, tear the
// watch down mid-stream, and resume with WatchFrom(lastSeq+1). The
// replayed half comes out of the server ring, so as long as the burst
// fits the ring the resume must be loss-free and gap-free.
func runReplay(ctx context.Context, mw *core.Middleware, burst int) (CtlReplay, error) {
	out := CtlReplay{Burst: burst}
	ep, err := mw.Fabric.Attach("ctl-bench-replay", "")
	if err != nil {
		return out, err
	}
	cli := ctl.NewClient(ep, "ctl-bench-server")

	liveCtx, liveCancel := context.WithCancel(ctx)
	stream, err := cli.Watch(liveCtx, "replay.*")
	if err != nil {
		liveCancel()
		return out, err
	}
	for i := 0; i < burst; i++ {
		mw.Kernel.Publish(ctxkernel.Event{
			Topic: "replay.tick", At: time.Now(), Source: "bench",
			Attrs: map[string]string{"seq": fmt.Sprint(i)},
		})
	}
	var lastSeq uint64
	deadline := time.After(time.Minute)
	for out.Live < burst/2 {
		select {
		case ev, ok := <-stream:
			if !ok {
				liveCancel()
				return out, fmt.Errorf("replay: live stream closed after %d events", out.Live)
			}
			out.Live++
			out.Lost += int64(ev.Lost)
			lastSeq = ev.Seq
		case <-deadline:
			liveCancel()
			return out, fmt.Errorf("replay: live phase stalled at %d/%d events", out.Live, burst/2)
		}
	}
	liveCancel() // disconnect mid-burst; the rest stays in the ring

	start := time.Now()
	resumed, err := cli.WatchFrom(ctx, "replay.*", lastSeq+1)
	if err != nil {
		return out, fmt.Errorf("replay: resume from seq %d: %w", lastSeq+1, err)
	}
	want := burst - out.Live
	for out.Replayed < want {
		select {
		case ev, ok := <-resumed:
			if !ok {
				return out, fmt.Errorf("replay: resumed stream closed after %d events", out.Replayed)
			}
			out.Replayed++
			out.Lost += int64(ev.Lost)
		case <-deadline:
			return out, fmt.Errorf("replay: resume stalled at %d/%d events", out.Replayed, want)
		}
	}
	out.Elapsed = time.Since(start)
	if out.Elapsed <= 0 {
		out.Elapsed = time.Millisecond
	}
	out.EventsPerSec = float64(out.Replayed) / out.Elapsed.Seconds()
	return out, nil
}
