package bench

import (
	"fmt"
	"sync"
	"time"

	"mdagent/internal/cluster"
	"mdagent/internal/netsim"
	"mdagent/internal/transport"
	"mdagent/internal/vclock"
)

// SuspicionPoint is one row of the Lifeguard-style timeout sweep: at a
// given SuspicionTimeout, how fast is a real death detected, and how
// often does a transient freeze (a host that stops probing for Blip,
// then resumes — a GC pause, an overloaded scheduler) get prematurely
// convicted.
type SuspicionPoint struct {
	Timeout time.Duration
	Hosts   int
	Cycles  int           // freeze/recover cycles driven
	Blip    time.Duration // freeze duration per cycle

	FalseSuspects     int     // suspect reports about the frozen-but-live host
	FalseConvictions  int     // dead convictions of it (events, across survivors)
	ConvictedCycles   int     // cycles in which >=1 survivor convicted it
	FalsePositiveRate float64 // ConvictedCycles / Cycles

	DetectWall time.Duration // real kill -> unanimous conviction
}

// RunSuspicionSweep runs the detection-latency vs false-positive
// tradeoff at each timeout. Per timeout: a fresh bare-node federation
// converges, one host is frozen (stops ticking, unreachable) for Blip
// and revived for cycles rounds — any conviction is premature since the
// host always comes back — then the same host is killed for real and
// the wall time to unanimous conviction is the detection latency.
func RunSuspicionSweep(hosts, cycles int, blip time.Duration, timeouts []time.Duration) ([]SuspicionPoint, error) {
	if hosts < 3 {
		return nil, fmt.Errorf("bench: suspicion sweep needs >= 3 hosts, got %d", hosts)
	}
	var points []SuspicionPoint
	for _, to := range timeouts {
		p, err := runSuspicionPoint(hosts, cycles, blip, to)
		if err != nil {
			return points, err
		}
		points = append(points, p)
	}
	return points, nil
}

func runSuspicionPoint(hosts, cycles int, blip, timeout time.Duration) (SuspicionPoint, error) {
	res := SuspicionPoint{Timeout: timeout, Hosts: hosts, Cycles: cycles, Blip: blip}
	cfg := cluster.Config{
		ProbeInterval:    100 * time.Millisecond, // rounds are driven manually
		ProbeTimeout:     5 * time.Second,        // probes fail only via netsim's fail-fast down error
		SuspicionTimeout: timeout,
		Seed:             23,
	}

	clk := vclock.NewVirtual(time.Unix(0, 0))
	net := netsim.New(clk, netsim.WithSeed(23))
	fab := transport.NewLocalFabric(net)
	defer fab.Close()

	victim := fmt.Sprintf("susp-n%04d", hosts/2)
	var (
		mu        sync.Mutex
		frozen    bool
		inFlap    bool
		convicted bool // within the current freeze cycle
		nodes     []*cluster.Node
	)
	for i := 0; i < hosts; i++ {
		host := fmt.Sprintf("susp-n%04d", i)
		if _, err := net.AddHost(host, "lab", netsim.Pentium4_1700(), 0); err != nil {
			return res, err
		}
		ep, err := fab.Attach(cluster.MemberEndpointName(host), host)
		if err != nil {
			return res, err
		}
		node := cluster.NewNode(cluster.Member{ID: host, Space: "lab"}, ep, cfg)
		if len(nodes) > 0 {
			node.Join(nodes[0].Self())
			node.Join(nodes[len(nodes)-1].Self())
		}
		if host != victim {
			node.OnChange(func(_ *cluster.Node, m cluster.Member) {
				if m.ID != victim {
					return
				}
				mu.Lock()
				defer mu.Unlock()
				if !inFlap {
					return
				}
				switch m.State {
				case cluster.StateSuspect:
					res.FalseSuspects++
				case cluster.StateDead:
					res.FalseConvictions++
					convicted = true
				}
			})
		}
		nodes = append(nodes, node)
	}

	tick := func() {
		for _, node := range nodes {
			mu.Lock()
			skip := frozen && node.Self().ID == victim
			mu.Unlock()
			if !skip {
				node.Tick()
			}
		}
	}
	allSeeAlive := func() bool {
		for _, node := range nodes {
			if len(node.AliveHosts()) != hosts {
				return false
			}
		}
		return true
	}
	tickUntil := func(cond func() bool, what string) error {
		deadline := time.Now().Add(60 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				return fmt.Errorf("bench: suspicion %s never converged (timeout %v)", what, timeout)
			}
			tick()
		}
		return nil
	}
	if err := tickUntil(allSeeAlive, "bootstrap"); err != nil {
		return res, err
	}

	// Flap phase: freeze the victim for Blip per cycle. A frozen host
	// neither probes nor answers — the Lifeguard slow-processor case.
	for c := 0; c < cycles; c++ {
		mu.Lock()
		inFlap, frozen, convicted = true, true, false
		mu.Unlock()
		if err := net.SetHostDown(victim, true); err != nil {
			return res, err
		}
		end := time.Now().Add(blip)
		for time.Now().Before(end) {
			tick()
		}
		if err := net.SetHostDown(victim, false); err != nil {
			return res, err
		}
		mu.Lock()
		frozen = false
		mu.Unlock()
		// Recover: the revived victim refutes any suspicion about it.
		if err := tickUntil(allSeeAlive, "flap recovery"); err != nil {
			return res, err
		}
		mu.Lock()
		if convicted {
			res.ConvictedCycles++
		}
		inFlap = false
		mu.Unlock()
	}
	if cycles > 0 {
		res.FalsePositiveRate = float64(res.ConvictedCycles) / float64(cycles)
	}

	// Kill phase: the same host dies for real; detection latency is the
	// wall time to unanimous conviction (dominated by the timeout).
	mu.Lock()
	frozen = true
	mu.Unlock()
	if err := net.SetHostDown(victim, true); err != nil {
		return res, err
	}
	killAt := time.Now()
	allConvict := func() bool {
		for _, node := range nodes {
			if node.Self().ID == victim {
				continue
			}
			if m, ok := node.Member(victim); !ok || m.State != cluster.StateDead {
				return false
			}
		}
		return true
	}
	if err := tickUntil(allConvict, "kill detection"); err != nil {
		return res, err
	}
	res.DetectWall = time.Since(killAt)
	return res, nil
}
