package bench

import (
	"context"
	"io"
	"sync"
	"time"

	"mdagent/internal/app"
	"mdagent/internal/obs"
	"mdagent/internal/state"
	"mdagent/internal/wsdl"
)

// ObsResult prices the observability layer: the raw cost of one metric
// operation, the instrumented replicator's idle capture tick (the
// hottest periodic path in the system — PR 3 drove it to ~249 ns), and
// what fraction of that tick the instrumentation accounts for.
type ObsResult struct {
	Iters int

	CounterInc  time.Duration // one Counter.Inc (atomic add)
	HistObserve time.Duration // one Histogram.Observe (len64 + two adds)

	IdleTick time.Duration // instrumented idle SyncNow, per tick
	IdleOps  int           // metric ops on the idle path per app
	Overhead time.Duration // IdleOps * CounterInc
	// OverheadRatio estimates instrumented/uninstrumented idle tick:
	// idle / (idle - overhead). The acceptance bar is 2x.
	OverheadRatio float64

	Exposition time.Duration // one Prometheus WriteProm pass
	Series     int           // metric series in the process registry
}

// nopPublisher absorbs snapshot puts with monotonic stamps — the
// replicator under test must pay transport-free costs only.
type nopPublisher struct {
	mu  sync.Mutex
	seq uint64
}

func (p *nopPublisher) PutSnapshot(context.Context, state.SnapshotPut) (state.SnapshotStamp, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.seq++
	return state.SnapshotStamp{Seq: p.seq}, nil
}

func (p *nopPublisher) DropSnapshot(context.Context, string, string) error { return nil }

// RunObs measures instrumentation overhead on the capture/replicate
// fast path. It times raw metric operations on a private registry, then
// the full instrumented idle tick of a media-sized app (2 MB blob,
// unchanged between ticks — the clean fast path every host pays every
// replication interval), and reports the estimated overhead ratio.
func RunObs(iters int) (ObsResult, error) {
	if iters <= 0 {
		iters = 1_000_000
	}
	res := ObsResult{Iters: iters}

	// Raw op costs on a private registry: the fast-path pattern is a
	// pinned pointer, so the lookup cost is paid once at construction
	// and excluded here, exactly as in the instrumented code.
	reg := obs.NewRegistry()
	ctr := reg.Counter("bench_ctr_total")
	start := time.Now()
	for i := 0; i < iters; i++ {
		ctr.Inc()
	}
	res.CounterInc = time.Since(start) / time.Duration(iters)

	hist := reg.Histogram("bench_hist_ns")
	start = time.Now()
	for i := 0; i < iters; i++ {
		hist.Observe(time.Duration(i))
	}
	res.HistObserve = time.Since(start) / time.Duration(iters)

	// Instrumented idle tick: same app shape as the state package's
	// BenchmarkCaptureTick — a 2 MB blob the dirty tracker proves clean,
	// so each tick is the skip path plus its single counter increment.
	a := app.New("player", "h1", wsdl.Description{Name: "player"})
	st := app.NewState("st")
	st.Set("cursor", "0")
	if err := a.AddComponent(st); err != nil {
		return res, err
	}
	if err := a.AddComponent(app.NewSizedBlob("song", app.KindData, 2<<20)); err != nil {
		return res, err
	}
	tune := state.Tuning{BudgetBytesPerSec: -1, RebaseEvery: 1 << 30, RebaseFraction: 1e9}
	rep := state.NewReplicator("h1", "lab",
		func() []*app.Application { return []*app.Application{a} },
		&nopPublisher{}, nil, time.Hour, tune)
	ctx := context.Background()
	if err := rep.SyncNow(ctx); err != nil { // base publish
		return res, err
	}
	ticks := iters / 10
	if ticks < 10_000 {
		ticks = 10_000
	}
	start = time.Now()
	for i := 0; i < ticks; i++ {
		if err := rep.SyncNow(ctx); err != nil {
			return res, err
		}
	}
	res.IdleTick = time.Since(start) / time.Duration(ticks)

	// The idle path pays exactly one metric op per app: the
	// skipped-clean counter. Everything else fires only on publish.
	res.IdleOps = 1
	res.Overhead = time.Duration(res.IdleOps) * res.CounterInc
	if res.IdleTick > res.Overhead {
		res.OverheadRatio = float64(res.IdleTick) / float64(res.IdleTick-res.Overhead)
	} else {
		res.OverheadRatio = float64(res.IdleTick) / 1 // degenerate: all overhead
	}

	// Exposition cost over the real process registry (the series the
	// daemon would serve on /metrics at this point in the run).
	res.Series = len(obs.Default.Snapshot())
	start = time.Now()
	const expositions = 100
	for i := 0; i < expositions; i++ {
		if err := obs.Default.WriteProm(io.Discard); err != nil {
			return res, err
		}
	}
	res.Exposition = time.Since(start) / expositions
	return res, nil
}
