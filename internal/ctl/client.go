package ctl

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mdagent/internal/ctxkernel"
	"mdagent/internal/obs"
	"mdagent/internal/state"
	"mdagent/internal/transport"
)

// Client is a typed handle to a control-plane server. It works over any
// transport fabric — the in-process LocalFabric and real TCP — and its
// errors satisfy the same errors.Is contracts as in-process calls
// (ErrUnknownHost, ErrAppNotFound, ErrUnsupported, ErrVersion).
type Client struct {
	ep     *transport.Endpoint
	server string
	// SubscribeTimeout bounds Watch's subscribe request (the stream
	// itself is unbounded and lives until its context is canceled).
	// Zero takes 30 seconds.
	SubscribeTimeout time.Duration
	// ForceProto pins the watch stream encoding instead of negotiating:
	// 1 subscribes like a pre-v2 client (per-event gob pushes), 2
	// demands the batched fast path. Zero negotiates — ask for v2, fall
	// back to v1 when the server's ack shows it doesn't speak it. The
	// protocol-diff benchmarks and the compat tests set this.
	ForceProto byte
}

// NewClient creates a client that calls the control plane served at
// server through ep. Over TCP, server is usually the well-known Alias
// registered against the daemon's address.
func NewClient(ep *transport.Endpoint, server string) *Client {
	return &Client{ep: ep, server: server}
}

func (c *Client) subscribeTimeout() time.Duration {
	if c.SubscribeTimeout > 0 {
		return c.SubscribeTimeout
	}
	return 30 * time.Second
}

func (c *Client) call(ctx context.Context, msgType string, req, out any) error {
	payload, err := transport.EncodeSealed(req)
	if err != nil {
		return err
	}
	return c.ep.RequestDecode(ctx, c.server, msgType, payload, out)
}

// Info describes the server (role, host, space, protocol version).
func (c *Client) Info(ctx context.Context) (ServerInfo, error) {
	var info ServerInfo
	if err := c.call(ctx, MsgInfo, struct{}{}, &info); err != nil {
		return ServerInfo{}, err
	}
	return info, nil
}

// Members lists the server's gossip membership view with incarnations.
func (c *Client) Members(ctx context.Context) ([]MemberInfo, error) {
	var out []MemberInfo
	if err := c.call(ctx, MsgMembers, struct{}{}, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Apps lists application installation records with replicated-snapshot
// metadata joined on.
func (c *Client) Apps(ctx context.Context) ([]AppInfo, error) {
	var out []AppInfo
	if err := c.call(ctx, MsgApps, struct{}{}, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Snapshots lists the heads of every replicated snapshot record the
// server knows (durable/delta-chain metadata, no frames).
func (c *Client) Snapshots(ctx context.Context) ([]state.SnapshotHead, error) {
	var out []state.SnapshotHead
	if err := c.call(ctx, MsgSnapshots, struct{}{}, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Stats returns the replication counters per host.
func (c *Client) Stats(ctx context.Context) ([]HostStats, error) {
	var out []HostStats
	if err := c.call(ctx, MsgStats, struct{}{}, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Metrics snapshots the server process's obs metrics registry.
func (c *Client) Metrics(ctx context.Context) ([]obs.Sample, error) {
	var out []obs.Sample
	if err := c.call(ctx, MsgMetrics, struct{}{}, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Trace returns app's latest migration trace: the five-phase timeline
// assembled across both hosts (the source merges the destination's
// restore/rebind spans from the checkin reply).
func (c *Client) Trace(ctx context.Context, app string) (obs.MigrationTrace, error) {
	var out obs.MigrationTrace
	if err := c.call(ctx, MsgTrace, traceReq{App: app}, &out); err != nil {
		return obs.MigrationTrace{}, err
	}
	return out, nil
}

// RunApp runs an installed application by name on host ("" = the
// serving host).
func (c *Client) RunApp(ctx context.Context, app, host string) error {
	return c.call(ctx, MsgRun, runReq{App: app, Host: host}, nil)
}

// StopApp gracefully stops a running application on host ("" = the
// serving host): suspend, tombstone its replicated snapshot, unregister.
func (c *Client) StopApp(ctx context.Context, app, host string) error {
	return c.call(ctx, MsgStop, runReq{App: app, Host: host}, nil)
}

// Migrate follow-mes an application to req.To and returns the
// three-phase timing report.
func (c *Client) Migrate(ctx context.Context, req MigrateRequest) (MigrateResult, error) {
	var res MigrateResult
	if err := c.call(ctx, MsgMigrate, req, &res); err != nil {
		return MigrateResult{}, err
	}
	return res, nil
}

// InstallApp installs a named application on host ("" = the serving
// host): a compiled-in skeleton when the host has one, else its stored
// bundle. A host with neither fails with ErrUnknownApp.
func (c *Client) InstallApp(ctx context.Context, app, host string) error {
	return c.call(ctx, MsgInstall, runReq{App: app, Host: host}, nil)
}

// PushBundle uploads a signed app bundle to the serving center/host,
// which verifies it against its trusted keys and (when federated)
// replicates it to every space. The payload rides a v2 fast frame
// unless ForceProto pins the client below v2 — a multi-megabyte bundle
// skips gob's reflection walk and byte-slice re-copy.
func (c *Client) PushBundle(ctx context.Context, name string, raw []byte) error {
	if c.ForceProto != 0 && c.ForceProto < transport.ProtoV2 {
		return c.call(ctx, MsgBundlePush, bundlePushReq{Name: name, Raw: raw}, nil)
	}
	body := transport.AppendString(make([]byte, 0, len(name)+len(raw)+16), name)
	body = transport.AppendBytes(body, raw)
	payload := transport.SealFast(transport.OpBundlePush, body)
	return c.ep.RequestDecode(ctx, c.server, MsgBundlePush, payload, nil)
}

// Bundles lists the bundles stored at the serving center/host.
func (c *Client) Bundles(ctx context.Context) ([]BundleInfo, error) {
	var out []BundleInfo
	if err := c.call(ctx, MsgBundleList, struct{}{}, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// InstallBundle instantiates a stored bundle on host ("" = the serving
// host), skipping any compiled-in factory of the same name.
func (c *Client) InstallBundle(ctx context.Context, app, host string) error {
	return c.call(ctx, MsgBundleInstall, bundleInstallReq{App: app, Host: host}, nil)
}

// --- Watch: server-streamed typed events. ---

// clientEvent is one pushed event as the sink buffers it: the bus form
// plus the v2 stream metadata (Seq is zero on a v1 stream).
type clientEvent struct {
	Ev   ctxkernel.Event
	Seq  uint64
	Lost uint64
}

// clientSink buffers one watch's pushed events on the client side.
// lost accumulates events this sink could not buffer (plus their
// piggybacked server-side drop counts), reported on the next delivered
// event so the in-band drop accounting survives client-side pressure
// exactly as it survives server-side pressure.
type clientSink struct {
	ch   chan clientEvent
	mu   sync.Mutex
	lost uint64
}

// sinkQueueLen sizes the sink buffer. It is deeper than the v1 server
// queue because a v2 replay hands the client a whole ring's backlog in
// a few dozen batched frames.
const sinkQueueLen = 4096

// dispatcher fans incoming ctl.event pushes out to this endpoint's live
// watches. One dispatcher per endpoint (the endpoint has a single
// handler slot per message type), shared by every Client on it; the
// registry entry is dropped again when its last watch ends, so
// short-lived endpoints are not pinned for process lifetime.
type dispatcher struct {
	mu    sync.Mutex
	sinks map[uint64]*clientSink
}

// watchIDs allocates watch ids process-wide. Ids must never collide
// across a dispatcher's teardown/recreate cycle: a watch resumed right
// after its predecessor's cancellation must not inherit the
// predecessor's id, or the server would treat the new subscribe as an
// idempotent retry and straggler pushes would land in the wrong sink.
var watchIDs atomic.Uint64

var (
	dispMu      sync.Mutex
	dispatchers = make(map[*transport.Endpoint]*dispatcher)
)

// watchSlot allocates a watch id + sink on ep's dispatcher, creating
// and registering the dispatcher (and its MsgEvent handler) on first
// use. Creation and allocation happen under one lock so a concurrent
// teardown of the endpoint's last watch cannot orphan the new slot.
func watchSlot(ep *transport.Endpoint) (*dispatcher, uint64, *clientSink) {
	dispMu.Lock()
	defer dispMu.Unlock()
	d, ok := dispatchers[ep]
	if !ok {
		d = &dispatcher{sinks: make(map[uint64]*clientSink)}
		dispatchers[ep] = d
		// Both push encodings register as ordered handlers: a single
		// worker per message type processes frames in arrival order, so
		// the stream the watcher sees is the stream the server sent.
		ep.HandleOrdered(MsgEvent, func(msg transport.Message) ([]byte, error) {
			var em eventMsg
			if err := transport.Decode(msg.Payload, &em); err != nil {
				return nil, nil // torn push: drop (one-way, nothing to answer)
			}
			d.offer(em.ID, clientEvent{Ev: em.Event, Lost: em.Lost})
			return nil, nil
		})
		ep.HandleOrdered(MsgEventV2, func(msg transport.Message) ([]byte, error) {
			id, lost, events, err := decodeEventBatch(msg.Payload)
			if err != nil {
				return nil, nil // torn push: drop
			}
			if len(events) == 0 {
				// Overflow report with nothing deliverable: bank the
				// count for the next delivered event.
				d.bankLost(id, lost)
				return nil, nil
			}
			for i, se := range events {
				ce := clientEvent{Ev: se.Event, Seq: se.Seq}
				if i == 0 {
					ce.Lost = lost
				}
				d.offer(id, ce)
			}
			return nil, nil
		})
	}
	id := watchIDs.Add(1)
	sink := &clientSink{ch: make(chan clientEvent, sinkQueueLen)}
	d.mu.Lock()
	d.sinks[id] = sink
	d.mu.Unlock()
	return d, id, sink
}

// offer hands one event to a watch's sink, folding the banked lost
// count into it, or — when the sink is full — banks the event itself
// (plus whatever loss it was reporting) so the accounting conserves.
func (d *dispatcher) offer(id uint64, ce clientEvent) {
	d.mu.Lock()
	sink, ok := d.sinks[id]
	d.mu.Unlock()
	if !ok {
		return
	}
	sink.mu.Lock()
	ce.Lost += sink.lost
	sink.lost = 0
	sink.mu.Unlock()
	select {
	case sink.ch <- ce:
	default:
		sink.mu.Lock()
		sink.lost += 1 + ce.Lost
		sink.mu.Unlock()
	}
}

// bankLost adds a loss count to a watch's carry without an event.
func (d *dispatcher) bankLost(id, lost uint64) {
	if lost == 0 {
		return
	}
	d.mu.Lock()
	sink, ok := d.sinks[id]
	d.mu.Unlock()
	if !ok {
		return
	}
	sink.mu.Lock()
	sink.lost += lost
	sink.mu.Unlock()
}

// freeWatchSlot releases a watch id, unregistering the endpoint's
// dispatcher entirely when it was the last one.
func freeWatchSlot(ep *transport.Endpoint, d *dispatcher, id uint64) {
	dispMu.Lock()
	defer dispMu.Unlock()
	d.mu.Lock()
	delete(d.sinks, id)
	empty := len(d.sinks) == 0
	d.mu.Unlock()
	if empty && dispatchers[ep] == d {
		delete(dispatchers, ep)
	}
}

// Watch subscribes to the server's kernel with a topic pattern (exact
// topic, "prefix.*", or "*"; "" means "*") and streams matching events,
// decoded to their typed forms, until ctx is canceled. The returned
// channel closes promptly on cancellation (the unsubscribe is sent
// best-effort), and the whole stream costs one request: pushed events
// ride one-way messages on the connection's learned route.
func (c *Client) Watch(ctx context.Context, pattern string) (<-chan WatchEvent, error) {
	return c.WatchFrom(ctx, pattern, 0)
}

// WatchFrom is Watch with replay: fromSeq non-zero asks the server to
// re-deliver its event stream starting at that sequence number
// (inclusive) out of its replay ring before going live, so a watcher
// that disconnected resumes at WatchEvent.Seq+1 with nothing dropped.
// A from-seq the ring no longer retains fails with ErrReplayGap (the
// caller decides whether live-from-now is acceptable); a server that
// predates the v2 protocol fails a replay request with ErrUnsupported.
func (c *Client) WatchFrom(ctx context.Context, pattern string, fromSeq uint64) (<-chan WatchEvent, error) {
	proto := transport.ProtoV2
	if c.ForceProto != 0 {
		proto = c.ForceProto
	}
	if proto < transport.ProtoV2 && fromSeq != 0 {
		return nil, fmt.Errorf("ctl: watch replay from seq %d: %w: needs protocol >= 2", fromSeq, ErrUnsupported)
	}
	d, id, sink := watchSlot(c.ep)
	req := watchReq{ID: id, Pattern: pattern, FromSeq: fromSeq}
	if proto >= transport.ProtoV2 {
		req.Proto = proto
	}
	payload, err := transport.EncodeSealed(req)
	if err != nil {
		freeWatchSlot(c.ep, d, id)
		return nil, err
	}
	// The subscribe request gets its own deadline under ctx: the stream
	// context deliberately has none (it lives until canceled), but a
	// server that accepts the connection and never answers must fail
	// the call, not wedge it.
	sctx, scancel := context.WithTimeout(ctx, c.subscribeTimeout())
	reply, err := c.ep.Request(sctx, c.server, MsgWatch, payload)
	scancel()
	if err != nil {
		freeWatchSlot(c.ep, d, id)
		return nil, fmt.Errorf("ctl: watch subscribe: %w", err)
	}
	// Version detection: a v2 server acks the subscribe with a payload;
	// a v1 server's watch handler returns nothing. (A v1 server also
	// ignored the request's Proto and FromSeq fields — gob drops fields
	// the decoder's struct doesn't have.)
	v2 := false
	if len(reply.Payload) > 0 {
		var ack watchAck
		if err := transport.Decode(reply.Payload, &ack); err == nil && ack.Proto >= transport.ProtoV2 {
			v2 = true
		}
	}
	if !v2 && fromSeq != 0 {
		// The old server started a live v1 watch, oblivious to the
		// replay ask. Honest failure beats silent drop: tear it down.
		c.unwatch(id)
		freeWatchSlot(c.ep, d, id)
		return nil, fmt.Errorf("ctl: watch replay from seq %d: %w: server speaks v1 only", fromSeq, ErrUnsupported)
	}
	out := make(chan WatchEvent, 16)
	go func() {
		defer close(out)
		defer func() {
			freeWatchSlot(c.ep, d, id)
			c.unwatch(id)
		}()
		for {
			select {
			case <-ctx.Done():
				return
			case ce := <-sink.ch:
				we := WatchEvent{Event: ce.Ev, Typed: ctxkernel.FromBus(ce.Ev), Lost: ce.Lost, Seq: ce.Seq}
				select {
				case out <- we:
				case <-ctx.Done():
					return
				}
			}
		}
	}()
	return out, nil
}

// unwatch sends a best-effort server-side unsubscribe; a dead link
// retires the watch on its own via the server's push error path.
func (c *Client) unwatch(id uint64) {
	uctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_ = c.call(uctx, MsgUnwatch, unwatchReq{ID: id}, nil)
}
