package ctl_test

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mdagent/internal/ctl"
	"mdagent/internal/ctxkernel"
	"mdagent/internal/transport"
)

// TestWatchDropAccountingConservation is the conservation law of the
// Watch stream's in-band drop accounting: under bursty publishers and a
// deliberately slow watcher, every published event is either delivered
// or counted in some delivered event's Lost — exactly, with no
// double-counting across the server-side queue drop path and the
// client-side sink drop path. Run under -race, the test also exercises
// the publisher/pusher/sink interleavings the accounting must survive.
func TestWatchDropAccountingConservation(t *testing.T) {
	fabric := transport.NewLocalFabric(nil)
	srvEp, err := fabric.Attach("acct-srv", "")
	if err != nil {
		t.Fatal(err)
	}
	kernel := ctxkernel.NewKernel()
	srv := ctl.NewServer(ctl.Backend{Kernel: kernel})
	srv.Serve(srvEp)
	defer srv.Close()
	cliEp, err := fabric.Attach("acct-cli", "")
	if err != nil {
		t.Fatal(err)
	}
	cli := ctl.NewClient(cliEp, "acct-srv")

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	stream, err := cli.Watch(ctx, "burst.*")
	if err != nil {
		t.Fatal(err)
	}

	// Bursty publishers: enough concurrent volume to overflow both the
	// server's per-watch queue and the client sink many times over.
	const publishers = 8
	const perPublisher = 500
	var published atomic.Int64
	var wg sync.WaitGroup
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perPublisher; i++ {
				kernel.Publish(ctxkernel.Event{
					Topic: "burst.tick", At: time.Now(), Source: "acct",
					Attrs: map[string]string{"pub": fmt.Sprint(p), "seq": fmt.Sprint(i)},
				})
				published.Add(1)
			}
		}(p)
	}
	burstDone := make(chan struct{})
	go func() { wg.Wait(); close(burstDone) }()

	// Slow watcher during the burst: sleep per delivery so drops pile up.
	var delivered, lost int64
	drainOne := func(timeout time.Duration) bool {
		select {
		case ev, ok := <-stream:
			if !ok {
				t.Fatal("stream closed unexpectedly")
			}
			delivered++
			lost += int64(ev.Lost)
			return true
		case <-time.After(timeout):
			return false
		}
	}
	for {
		select {
		case <-burstDone:
		default:
			if drainOne(10 * time.Millisecond) {
				time.Sleep(500 * time.Microsecond)
			}
			continue
		}
		break
	}

	// Flush phase: drops are reported in-band on the NEXT delivered
	// event, so losses trailing the last burst delivery are still
	// unaccounted. Publish flush events one at a time — the watcher now
	// drains promptly, so each flush delivers and carries the pending
	// drop counts — until the books balance exactly.
	deadline := time.Now().Add(30 * time.Second)
	for {
		for drainOne(time.Millisecond) {
		}
		if delivered+lost == published.Load() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("accounting never balanced: delivered %d + lost %d != published %d",
				delivered, lost, published.Load())
		}
		kernel.Publish(ctxkernel.Event{Topic: "burst.flush", At: time.Now(), Source: "acct"})
		published.Add(1)
		time.Sleep(2 * time.Millisecond)
	}

	if delivered+lost != published.Load() {
		t.Fatalf("conservation violated: delivered %d + lost %d != published %d",
			delivered, lost, published.Load())
	}
	if lost == 0 {
		t.Fatalf("burst never overflowed the watch queues (delivered %d, published %d): the test lost its teeth",
			delivered, published.Load())
	}
	t.Logf("published %d, delivered %d, lost %d", published.Load(), delivered, lost)
}
