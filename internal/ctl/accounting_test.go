package ctl_test

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mdagent/internal/ctl"
	"mdagent/internal/ctxkernel"
	"mdagent/internal/obs"
	"mdagent/internal/transport"
)

// acctRun drives one bursty-publisher/slow-watcher run and returns the
// books: events published, delivered, and reported lost in-band.
type acctRun struct {
	published *atomic.Int64
	delivered int64
	lost      int64
	lastSeq   uint64
}

// runBurstWatch publishes a multi-goroutine burst at a deliberately
// slow watcher and drains until the stream idles, then (when balance
// demands it) publishes flush events one at a time — drops are reported
// in-band on the NEXT delivered event, so trailing losses need a
// delivery to ride on — until delivered+lost == published or the
// deadline passes.
func runBurstWatch(t *testing.T, forceProto byte) acctRun {
	t.Helper()
	fabric := transport.NewLocalFabric(nil)
	srvEp, err := fabric.Attach("acct-srv", "")
	if err != nil {
		t.Fatal(err)
	}
	kernel := ctxkernel.NewKernel()
	srv := ctl.NewServer(ctl.Backend{Kernel: kernel})
	srv.Serve(srvEp)
	defer srv.Close()
	cliEp, err := fabric.Attach("acct-cli", "")
	if err != nil {
		t.Fatal(err)
	}
	cli := ctl.NewClient(cliEp, "acct-srv")
	cli.ForceProto = forceProto

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	stream, err := cli.Watch(ctx, "burst.*")
	if err != nil {
		t.Fatal(err)
	}

	// Bursty publishers: enough concurrent volume to overflow the
	// v1 per-watch queue (and the client sink) many times over.
	const publishers = 8
	const perPublisher = 500
	run := acctRun{published: &atomic.Int64{}}
	var wg sync.WaitGroup
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perPublisher; i++ {
				kernel.Publish(ctxkernel.Event{
					Topic: "burst.tick", At: time.Now(), Source: "acct",
					Attrs: map[string]string{"pub": fmt.Sprint(p), "seq": fmt.Sprint(i)},
				})
				run.published.Add(1)
			}
		}(p)
	}
	burstDone := make(chan struct{})
	go func() { wg.Wait(); close(burstDone) }()

	// Slow watcher during the burst: sleep per delivery so drops pile up.
	drainOne := func(timeout time.Duration) bool {
		select {
		case ev, ok := <-stream:
			if !ok {
				t.Fatal("stream closed unexpectedly")
			}
			run.delivered++
			run.lost += int64(ev.Lost)
			if ev.Seq != 0 {
				if ev.Seq <= run.lastSeq {
					t.Fatalf("seq went backwards: %d after %d", ev.Seq, run.lastSeq)
				}
				run.lastSeq = ev.Seq
			}
			return true
		case <-time.After(timeout):
			return false
		}
	}
	for {
		select {
		case <-burstDone:
		default:
			if drainOne(10 * time.Millisecond) {
				time.Sleep(500 * time.Microsecond)
			}
			continue
		}
		break
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		for drainOne(time.Millisecond) {
		}
		if run.delivered+run.lost == run.published.Load() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("accounting never balanced: delivered %d + lost %d != published %d",
				run.delivered, run.lost, run.published.Load())
		}
		kernel.Publish(ctxkernel.Event{Topic: "burst.flush", At: time.Now(), Source: "acct"})
		run.published.Add(1)
		time.Sleep(2 * time.Millisecond)
	}

	if run.delivered+run.lost != run.published.Load() {
		t.Fatalf("conservation violated: delivered %d + lost %d != published %d",
			run.delivered, run.lost, run.published.Load())
	}
	return run
}

// TestWatchDropAccountingConservation is the conservation law of the
// v1 Watch stream's in-band drop accounting: under bursty publishers
// and a deliberately slow watcher, every published event is either
// delivered or counted in some delivered event's Lost — exactly, with
// no double-counting across the server-side queue drop path and the
// client-side sink drop path. The server-side share of those drops must
// also land on the mdagent_ctl_watch_dropped_total counter (the
// /metrics surface), which can never exceed the in-band total — the
// in-band figure additionally counts client-sink drops the server
// cannot see. Run under -race, the test also exercises the
// publisher/pusher/sink interleavings the accounting must survive.
func TestWatchDropAccountingConservation(t *testing.T) {
	drops := obs.Default.Counter("mdagent_ctl_watch_dropped_total")
	before := drops.Value()
	run := runBurstWatch(t, 1) // pin the per-event gob stream
	if run.lost == 0 {
		t.Fatalf("burst never overflowed the watch queues (delivered %d, published %d): the test lost its teeth",
			run.delivered, run.published.Load())
	}
	metric := drops.Value() - before
	if metric <= 0 {
		t.Fatalf("mdagent_ctl_watch_dropped_total did not move (in-band lost %d)", run.lost)
	}
	if metric > run.lost {
		t.Fatalf("metric counted %d drops but only %d were reported in-band", metric, run.lost)
	}
	t.Logf("published %d, delivered %d, lost %d (metric %d)",
		run.published.Load(), run.delivered, run.lost, metric)
}

// TestWatchConservationV2 runs the identical burst against the v2
// stream: the replay ring is deeper than the whole burst, so the same
// slow watcher that lost thousands of events on v1 must now see every
// single one — zero Lost, delivered == published, strictly increasing
// sequence numbers, and no movement on the drop counter.
func TestWatchConservationV2(t *testing.T) {
	drops := obs.Default.Counter("mdagent_ctl_watch_dropped_total")
	before := drops.Value()
	run := runBurstWatch(t, 0) // negotiate: lands on v2
	if run.lost != 0 {
		t.Fatalf("v2 stream lost %d events (delivered %d of %d): the ring should have absorbed the burst",
			run.lost, run.delivered, run.published.Load())
	}
	if run.delivered != run.published.Load() {
		t.Fatalf("delivered %d != published %d", run.delivered, run.published.Load())
	}
	if run.lastSeq == 0 {
		t.Fatal("v2 stream delivered no sequence numbers")
	}
	if metric := drops.Value() - before; metric != 0 {
		t.Fatalf("drop counter moved by %d on a lossless v2 run", metric)
	}
	t.Logf("published %d, delivered %d, highest seq %d",
		run.published.Load(), run.delivered, run.lastSeq)
}
