package ctl

import (
	"mdagent/internal/ctxkernel"
	"mdagent/internal/transport"
)

// seqEvent is one ring-buffered event with its stream sequence number.
type seqEvent struct {
	Seq   uint64
	Event ctxkernel.Event
}

// encodeEventBatch builds a v2 push frame (transport.OpEventBatch): the
// watch id, the overflow count since the last frame, and a whole flush
// window of sequenced events in one sealed fast frame. Layout:
//
//	uvarint id, uvarint lost, uvarint count,
//	count × (uvarint seq, string topic, string source, time at,
//	         uvarint nattrs, nattrs × (string key, string value))
func encodeEventBatch(id, lost uint64, events []seqEvent) []byte {
	b := make([]byte, 0, 16+len(events)*96)
	b = transport.AppendUint(b, id)
	b = transport.AppendUint(b, lost)
	b = transport.AppendUint(b, uint64(len(events)))
	for _, se := range events {
		b = transport.AppendUint(b, se.Seq)
		b = transport.AppendString(b, se.Event.Topic)
		b = transport.AppendString(b, se.Event.Source)
		b = transport.AppendTime(b, se.Event.At)
		b = transport.AppendUint(b, uint64(len(se.Event.Attrs)))
		for k, v := range se.Event.Attrs {
			b = transport.AppendString(b, k)
			b = transport.AppendString(b, v)
		}
	}
	return transport.SealFast(transport.OpEventBatch, b)
}

// decodeEventBatch parses a v2 push frame. The decoded events own their
// strings (Go string conversion copies), so they may outlive payload.
func decodeEventBatch(payload []byte) (id, lost uint64, events []seqEvent, err error) {
	op, body, err := transport.OpenFast(payload)
	if err != nil {
		return 0, 0, nil, err
	}
	if op != transport.OpEventBatch {
		return 0, 0, nil, transport.ErrVersion
	}
	r := transport.NewFastReader(body)
	id = r.Uint()
	lost = r.Uint()
	count := r.Uint()
	if err := r.Err(); err != nil {
		return 0, 0, nil, err
	}
	// Cap the initial allocation: count comes off the wire and a torn
	// frame must not size a giant slice (the loop re-grows as needed and
	// fails on truncation long before any real limit).
	events = make([]seqEvent, 0, min(count, maxEventBatch))
	for i := uint64(0); i < count && r.Err() == nil; i++ {
		se := seqEvent{Seq: r.Uint()}
		se.Event.Topic = r.String()
		se.Event.Source = r.String()
		se.Event.At = r.Time()
		if nattrs := r.Uint(); attrCountOK(nattrs, r) {
			se.Event.Attrs = make(map[string]string, nattrs)
			for a := uint64(0); a < nattrs && r.Err() == nil; a++ {
				k := r.String()
				se.Event.Attrs[k] = r.String()
			}
		}
		events = append(events, se)
	}
	if err := r.Err(); err != nil {
		return 0, 0, nil, err
	}
	return id, lost, events, nil
}

// attrCountOK guards the attribute-map allocation: a torn frame must not
// make the decoder allocate a map sized by garbage.
func attrCountOK(n uint64, r *transport.FastReader) bool {
	return n > 0 && n < 1<<16 && r.Err() == nil
}
