package ctl

import (
	"fmt"
	"testing"
	"time"

	"mdagent/internal/ctxkernel"
)

// TestHubOverflowLostExact pins the ring's loss arithmetic, which the
// in-band Lost accounting and the drop counter both ride on: overflow
// loss is exactly the number of events that aged out before the cursor
// reached them — no more, no less, and only once.
func TestHubOverflowLostExact(t *testing.T) {
	kernel := ctxkernel.NewKernel()
	hub := newWatchHub(kernel, 16)
	defer hub.close()

	w := &v2watcher{pattern: "*", cursor: 1, kick: make(chan struct{}, 1), done: make(chan struct{})}
	hub.mu.Lock()
	hub.watchers[w] = struct{}{}
	hub.mu.Unlock()

	const published = 100
	for i := 0; i < published; i++ {
		kernel.Publish(ctxkernel.Event{Topic: "ring.tick", At: time.Unix(0, int64(i)), Source: "hub"})
	}

	events, lost := hub.collect(w, 512)
	if lost != published-16 {
		t.Fatalf("lost = %d, want exactly %d (ring 16, published %d, cursor 1)", lost, published-16, published)
	}
	if len(events) != 16 {
		t.Fatalf("collected %d events, want the full ring of 16", len(events))
	}
	// The survivors are the newest 16, in order, with their original
	// sequence numbers.
	for i, se := range events {
		want := uint64(published - 16 + i + 1)
		if se.Seq != want {
			t.Fatalf("event %d has seq %d, want %d", i, se.Seq, want)
		}
	}
	// The loss was consumed: a second collect starts clean.
	if events, lost = hub.collect(w, 512); len(events) != 0 || lost != 0 {
		t.Fatalf("second collect = %d events, lost %d; want 0, 0", len(events), lost)
	}

	// Partial batches drain without inventing loss, and the pattern
	// filter does not distort the count: half the new events match.
	for i := 0; i < 8; i++ {
		topic := "ring.tick"
		if i%2 == 1 {
			topic = "other.tick"
		}
		kernel.Publish(ctxkernel.Event{Topic: topic, At: time.Unix(1, 0), Source: "hub"})
	}
	w2 := &v2watcher{pattern: "ring.*", cursor: published + 1, kick: make(chan struct{}, 1), done: make(chan struct{})}
	if events, lost = hub.collect(w2, 512); len(events) != 4 || lost != 0 {
		t.Fatalf("filtered collect = %d events, lost %d; want 4, 0", len(events), lost)
	}
}

// TestHubSeqStampsMonotonic checks the stamping invariant replay relies
// on: sequence numbers are assigned in publish order starting at 1 and
// never reused, even as the ring wraps many times.
func TestHubSeqStampsMonotonic(t *testing.T) {
	kernel := ctxkernel.NewKernel()
	hub := newWatchHub(kernel, 8)
	defer hub.close()
	for round := 0; round < 5; round++ {
		for i := 0; i < 8; i++ {
			kernel.Publish(ctxkernel.Event{Topic: "seq.tick", Source: fmt.Sprint(round)})
		}
		w := &v2watcher{pattern: "*", cursor: uint64(round*8 + 1), kick: make(chan struct{}, 1), done: make(chan struct{})}
		events, lost := hub.collect(w, 512)
		if lost != 0 || len(events) != 8 {
			t.Fatalf("round %d: %d events, lost %d", round, len(events), lost)
		}
		for i, se := range events {
			if want := uint64(round*8 + i + 1); se.Seq != want {
				t.Fatalf("round %d event %d: seq %d, want %d", round, i, se.Seq, want)
			}
		}
	}
}
