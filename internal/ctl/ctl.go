// Package ctl is MDAgent's versioned control plane: a typed
// request/response + streaming protocol over transport endpoints, and
// the client that speaks it (re-exported as mdagent.Client).
//
// The paper operates its middleware from inside the process; the TCP
// daemons that grew around the reproduction (cmd/mdagentd,
// cmd/mdregistry) had no way for an external operator to run, stop,
// migrate, or observe anything. The control plane closes that gap the
// way FIPA's interoperable-mobility proposal argues it must be closed:
// lifecycle and migration operations become a specified, versioned wire
// protocol instead of platform-internal calls.
//
// Every request payload is sealed with a protocol version byte
// (transport.Seal); a server refuses versions it does not speak with a
// typed transport.ErrVersion reply instead of misparsing the body.
// Errors cross the wire as strings and map back to the typed sentinels
// below through transport.RemoteError.Is, so in-process and remote
// callers share one errors.Is contract.
//
// Watch is server-streamed: the client subscribes with a kernel topic
// pattern, the server pushes each matching bus event as a one-way
// ctl.event message (riding the transport's learned reply route, so it
// works over plain TCP without a listener on the client), and the
// client surfaces them as typed events (ctxkernel.TypedEvent).
package ctl

import (
	"errors"
	"time"

	"mdagent/internal/ctxkernel"
	"mdagent/internal/registry"
	"mdagent/internal/state"
	"mdagent/internal/transport"
)

// Control-plane message types. Request payloads are version-sealed; the
// reply body is plain gob (the request's version byte committed both
// sides to this protocol revision).
const (
	MsgInfo      = "ctl.info"
	MsgMembers   = "ctl.members"
	MsgApps      = "ctl.apps"
	MsgSnapshots = "ctl.snapshots"
	MsgStats     = "ctl.stats"
	MsgRun       = "ctl.run"
	MsgStop      = "ctl.stop"
	MsgMigrate   = "ctl.migrate"
	MsgInstall   = "ctl.install"
	MsgWatch     = "ctl.watch"
	MsgUnwatch   = "ctl.unwatch"
	// MsgBundlePush uploads a signed app bundle. The request payload is
	// either a v2 fast frame (transport.OpBundlePush: name + raw bytes —
	// the hot path for multi-megabyte bundles) or a v1 gob seal; the
	// server sniffs the version byte, like the snapshot-put handler.
	MsgBundlePush = "ctl.bundle-push"
	// MsgBundleList lists the bundles stored at the serving center/host.
	MsgBundleList = "ctl.bundle-list"
	// MsgBundleInstall instantiates a stored bundle on the serving host.
	MsgBundleInstall = "ctl.bundle-install"
	// MsgMetrics snapshots the server process's obs metrics registry.
	MsgMetrics = "ctl.metrics"
	// MsgTrace returns an app's latest migration trace (obs.MigrationTrace).
	MsgTrace = "ctl.trace"
	// MsgEvent is the v1 server->client stream push (one-way, unsealed
	// reply-direction frame carrying a gob eventMsg, one per event).
	MsgEvent = "ctl.event"
	// MsgEventV2 is the v2 stream push: one-way fast frames
	// (transport.OpEventBatch) carrying a whole flush window of
	// sequenced events. A distinct message type — not payload sniffing —
	// separates the two push encodings, so a v1 client never sees a v2
	// frame.
	MsgEventV2 = "ctl.eventv2"
)

// Alias is the well-known extra endpoint name every control-plane TCP
// server answers to, so a client needs only an address — not the
// server's primary endpoint name — to reach the control plane.
const Alias = "ctl"

// Typed sentinel errors of the control plane. They are wrapped (never
// replaced) by operation errors, and their texts are distinctive enough
// to survive the wire: transport.RemoteError.Is matches them back so
// errors.Is works identically for in-process and remote callers.
var (
	// ErrUnknownHost reports an operation addressed to a host the
	// deployment has not provisioned.
	ErrUnknownHost = errors.New("mdagent: unknown host")
	// ErrAppNotFound reports an operation on an application the target
	// host is not running (and has no installed skeleton for).
	ErrAppNotFound = errors.New("mdagent: application not found")
	// ErrUnsupported reports an operation this control-plane endpoint
	// does not serve (e.g. lifecycle ops on a registry center).
	ErrUnsupported = errors.New("mdagent: operation not supported by this endpoint")
	// ErrReplayGap reports a watch replay request whose from-seq is no
	// longer covered by the server's event ring (aged out behind the
	// oldest retained event, or ahead of the stream). Callers fall back
	// to a live watch from now.
	ErrReplayGap = errors.New("mdagent: replay seq outside the retained event ring")
	// ErrUnknownApp reports an install of an application the target host
	// can not assemble: no compiled-in factory AND no stored bundle.
	// Distinct from ErrUnsupported (the endpoint serves installs, it
	// just has nothing to install) and from ErrAppNotFound (which is
	// about running instances, not installable artifacts). Remedy:
	// `mdctl bundle push` the app's bundle first.
	ErrUnknownApp = errors.New("mdagent: unknown application (no factory or bundle)")
	// ErrVersion aliases transport.ErrVersion: the request's protocol
	// version byte was refused by the server.
	ErrVersion = transport.ErrVersion
)

// The sentinels must survive the wire: register them so
// transport.RemoteError.Is maps their carried texts back to the typed
// errors (and nothing else — unregistered errors never match).
func init() {
	transport.RegisterWireSentinel(ErrUnknownHost)
	transport.RegisterWireSentinel(ErrAppNotFound)
	transport.RegisterWireSentinel(ErrUnsupported)
	transport.RegisterWireSentinel(ErrReplayGap)
	transport.RegisterWireSentinel(ErrUnknownApp)
}

// ServerInfo describes a control-plane endpoint.
type ServerInfo struct {
	// Proto is the protocol version the server speaks.
	Proto byte
	// Role is "middleware" (in-process deployment), "host" (mdagentd),
	// or "registry" (mdregistry).
	Role string
	// Host is the serving host id ("" for a registry center).
	Host string
	// Space is the serving smart space ("" when standalone).
	Space string
}

// MemberInfo is one host's entry in a gossip membership view.
type MemberInfo struct {
	ID          string
	Space       string
	State       string // alive | suspect | dead
	Incarnation uint64
}

// AppInfo is one application installation with its replicated-state
// metadata joined on.
type AppInfo struct {
	Name       string
	Host       string
	Space      string
	Components []string
	Running    bool
	// Snapshot, when non-nil, is the head of the app's replicated
	// snapshot record (durable/delta-chain metadata included).
	Snapshot *state.SnapshotHead
}

// HostStats is one host replicator's counters.
type HostStats struct {
	Host  string
	Stats state.Stats
}

// MigrateRequest asks the serving host to follow-me an application.
type MigrateRequest struct {
	App string
	// Host selects the source host on a multi-host (in-process) server;
	// "" means the host currently running the app.
	Host string
	To   string
	// Static selects whole-application binding (the evaluation
	// baseline); default is adaptive component binding.
	Static bool
}

// MigrateResult is the migration outcome with the paper's three-phase
// timing split.
type MigrateResult struct {
	App        string
	From       string
	To         string
	Suspend    time.Duration
	Migrate    time.Duration
	Resume     time.Duration
	BytesMoved int64
	Carried    []string
	// Delta reports a warm follow-me handoff (delta frame shipped
	// instead of the full wrap).
	Delta bool
}

// Total is the end-to-end migration time.
func (r MigrateResult) Total() time.Duration { return r.Suspend + r.Migrate + r.Resume }

// WatchEvent is one streamed event: the bus form it crossed the wire
// as, its decoded typed form, and the server-side drop count.
type WatchEvent struct {
	// Event is the bus (wire) encoding.
	Event ctxkernel.Event
	// Typed is the decoded form — one of the ctxkernel event structs,
	// or ctxkernel.GenericEvent for topics outside the catalog.
	Typed ctxkernel.TypedEvent
	// Lost counts events the server dropped on this watch before this
	// one because the client was not draining fast enough. On a v2
	// stream it counts ring overflow: events that aged out of the
	// server's replay ring before this watch's cursor reached them
	// (an upper bound — it includes aged-out events that would not have
	// matched the watch pattern).
	Lost uint64
	// Seq is the server's monotonic event sequence number on a v2
	// stream (first event ever published is 1); resume a dropped stream
	// with WatchFrom(ctx, pattern, Seq+1). Zero on a v1 stream.
	Seq uint64
}

// JoinApps builds the control plane's app listing: one AppInfo per
// installation record, with the freshest snapshot head (highest Seq)
// for the app joined on. Every backend — in-process middleware, host
// daemon, registry center — uses this one join so the `ps` surface
// cannot drift between them.
func JoinApps(recs []registry.AppRecord, heads []state.SnapshotHead) []AppInfo {
	freshest := make(map[string]state.SnapshotHead, len(heads))
	for _, h := range heads {
		if ex, ok := freshest[h.App]; !ok || h.Seq > ex.Seq {
			freshest[h.App] = h
		}
	}
	out := make([]AppInfo, 0, len(recs))
	for _, r := range recs {
		info := AppInfo{
			Name: r.Name, Host: r.Host, Space: r.Space,
			Components: r.Components, Running: r.Running,
		}
		if h, ok := freshest[r.Name]; ok {
			head := h
			info.Snapshot = &head
		}
		out = append(out, info)
	}
	return out
}

// BundleInfo is one stored bundle in a bundle.list reply.
type BundleInfo struct {
	Name  string
	Bytes int64
}

// Wire bodies (gob-encoded inside the sealed payload).
type (
	runReq struct{ App, Host string }

	// bundlePushReq is the v1 (gob) form of a bundle push; v2 clients
	// send a fast frame instead (see MsgBundlePush).
	bundlePushReq struct {
		Name string
		Raw  []byte
	}

	// bundleInstallReq asks the serving host to instantiate a stored
	// bundle. Host selects the target on a multi-host (in-process)
	// server; "" means the server's own host.
	bundleInstallReq struct{ App, Host string }

	watchReq struct {
		ID uint64
		// Pattern is a kernel topic pattern: exact, "prefix.*", or "*".
		Pattern string
		// Proto is the newest push encoding the client accepts: >= 2
		// requests batched fast-frame pushes (MsgEventV2). Gob drops
		// unknown fields, so an old server reads a new client's request
		// fine — and replies with an empty payload, which is how the
		// client detects a v1-only server (a v2 server replies with a
		// gob watchAck).
		Proto byte
		// FromSeq, when non-zero, replays the stream from that sequence
		// number (inclusive) out of the server's event ring instead of
		// starting live. Requires Proto >= 2.
		FromSeq uint64
	}

	// watchAck is a v2 server's reply to a watch subscribe. v1 servers
	// reply with an empty payload (their handler returns nil), so the
	// payload's mere presence is the version signal.
	watchAck struct {
		// Proto is the push encoding the server will use.
		Proto byte
		// Next is the sequence number the next published event will get,
		// at subscribe time.
		Next uint64
		// Ring is the server's replay ring capacity in events.
		Ring int
	}

	unwatchReq struct{ ID uint64 }

	traceReq struct{ App string }

	eventMsg struct {
		ID    uint64
		Lost  uint64
		Event ctxkernel.Event
	}
)
