package ctl_test

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"mdagent/internal/ctl"
	"mdagent/internal/ctxkernel"
	"mdagent/internal/obs"
	"mdagent/internal/transport"
)

// replayRig is a bare control-plane server over the in-process fabric,
// small enough for the replay tests to own every published event.
type replayRig struct {
	fabric *transport.LocalFabric
	kernel *ctxkernel.Kernel
	srv    *ctl.Server
}

func newReplayRig(t *testing.T, ringSize int) *replayRig {
	t.Helper()
	fabric := transport.NewLocalFabric(nil)
	srvEp, err := fabric.Attach("replay-srv", "")
	if err != nil {
		t.Fatal(err)
	}
	kernel := ctxkernel.NewKernel()
	srv := ctl.NewServer(ctl.Backend{Kernel: kernel})
	srv.RingSize = ringSize
	srv.Serve(srvEp)
	t.Cleanup(srv.Close)
	return &replayRig{fabric: fabric, kernel: kernel, srv: srv}
}

func (r *replayRig) client(t *testing.T, name string) *ctl.Client {
	t.Helper()
	ep, err := r.fabric.Attach(name, "")
	if err != nil {
		t.Fatal(err)
	}
	return ctl.NewClient(ep, "replay-srv")
}

func (r *replayRig) publish(n, from int) {
	for i := 0; i < n; i++ {
		r.kernel.Publish(ctxkernel.Event{
			Topic: "replay.tick", At: time.Now(), Source: "rig",
			Attrs: map[string]string{"i": fmt.Sprint(from + i)},
		})
	}
}

// recv drains one event or fails the test.
func recv(t *testing.T, stream <-chan ctl.WatchEvent) ctl.WatchEvent {
	t.Helper()
	select {
	case ev, ok := <-stream:
		if !ok {
			t.Fatal("stream closed")
		}
		return ev
	case <-time.After(10 * time.Second):
		t.Fatal("timed out waiting for event")
	}
	panic("unreachable")
}

// TestWatchReplayAfterDisconnect is the operator story the replay mode
// exists for: a watcher reads half a burst, disconnects, and resumes
// with WatchFrom(lastSeq+1) — every remaining event is re-delivered
// from the ring with zero Lost, in order, no duplicates.
func TestWatchReplayAfterDisconnect(t *testing.T) {
	rig := newReplayRig(t, 8192)
	cli := rig.client(t, "replay-cli")

	ctx1, cancel1 := context.WithCancel(context.Background())
	stream, err := cli.Watch(ctx1, "replay.*")
	if err != nil {
		t.Fatal(err)
	}
	const burst = 2048
	rig.publish(burst, 0)

	var lastSeq uint64
	seen := 0
	for seen < burst/2 {
		ev := recv(t, stream)
		if ev.Lost != 0 {
			t.Fatalf("lost %d events before seq %d on an in-ring burst", ev.Lost, ev.Seq)
		}
		if ev.Seq <= lastSeq {
			t.Fatalf("seq not increasing: %d after %d", ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		seen++
	}
	cancel1() // disconnect mid-burst; the rest of the burst is unread

	// Resume from the next sequence number on a fresh watch.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	resumed, err := cli.WatchFrom(ctx2, "replay.*", lastSeq+1)
	if err != nil {
		t.Fatal(err)
	}
	for seen < burst {
		ev := recv(t, resumed)
		if ev.Lost != 0 {
			t.Fatalf("replay lost %d events before seq %d", ev.Lost, ev.Seq)
		}
		if ev.Seq != lastSeq+1 {
			t.Fatalf("replay skipped or repeated: got seq %d after %d", ev.Seq, lastSeq)
		}
		if want := fmt.Sprint(seen); ev.Event.Attr("i") != want {
			t.Fatalf("replayed event %d carries i=%q, want %q", seen, ev.Event.Attr("i"), want)
		}
		lastSeq = ev.Seq
		seen++
	}
	// The stream is live now: one more publish arrives on the same watch.
	rig.publish(1, burst)
	if ev := recv(t, resumed); ev.Event.Attr("i") != fmt.Sprint(burst) {
		t.Fatalf("live tail after replay delivered i=%q", ev.Event.Attr("i"))
	}
}

// TestWatchReplayGap asks for a seq the ring no longer retains: the
// subscribe must fail with the typed ErrReplayGap (surviving the wire
// as errors.Is), and a live-from-now watch on the same client must
// still work — the documented fallback.
func TestWatchReplayGap(t *testing.T) {
	rig := newReplayRig(t, 16)
	cli := rig.client(t, "gap-cli")

	// Prime the hub (first v2 watch creates it), then age out seq 1.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if _, err := cli.Watch(ctx, "prime.*"); err != nil {
		t.Fatal(err)
	}
	rig.publish(100, 0)

	_, err := cli.WatchFrom(ctx, "replay.*", 1)
	if !errors.Is(err, ctl.ErrReplayGap) {
		t.Fatalf("replay of aged-out seq 1: err = %v, want ErrReplayGap", err)
	}
	// A seq ahead of the stream is a gap too, not a silent wait.
	if _, err := cli.WatchFrom(ctx, "replay.*", 1_000_000); !errors.Is(err, ctl.ErrReplayGap) {
		t.Fatalf("replay of future seq: err = %v, want ErrReplayGap", err)
	}

	// Fallback: live from now.
	live, err := cli.WatchFrom(ctx, "replay.*", 0)
	if err != nil {
		t.Fatalf("live fallback failed: %v", err)
	}
	rig.publish(1, 100)
	if ev := recv(t, live); ev.Event.Attr("i") != "100" {
		t.Fatalf("live fallback delivered i=%q, want 100", ev.Event.Attr("i"))
	}
}

// TestWatchRingOverflowConservation overflows a tiny ring end-to-end
// and checks the v2 loss books: every published event is delivered or
// counted in Lost, the loss is real (the ring was 64 deep under a 3000
// event burst), and the server-side drop counter accounts for every
// in-band loss the ring caused.
func TestWatchRingOverflowConservation(t *testing.T) {
	drops := obs.Default.Counter("mdagent_ctl_watch_dropped_total")
	before := drops.Value()

	rig := newReplayRig(t, 64)
	cli := rig.client(t, "overflow-cli")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	stream, err := cli.Watch(ctx, "*")
	if err != nil {
		t.Fatal(err)
	}
	const published = 3000
	rig.publish(published, 0)

	var delivered, lost int64
	idle := time.NewTimer(2 * time.Second)
	defer idle.Stop()
drain:
	for {
		select {
		case ev := <-stream:
			delivered++
			lost += int64(ev.Lost)
			if delivered+lost >= published {
				break drain
			}
			if !idle.Stop() {
				<-idle.C
			}
			idle.Reset(2 * time.Second)
		case <-idle.C:
			break drain
		}
	}
	if delivered+lost != published {
		t.Fatalf("conservation violated: delivered %d + lost %d != published %d", delivered, lost, published)
	}
	if lost == 0 {
		t.Fatalf("a %d-event burst through a 64-slot ring lost nothing: the test lost its teeth", published)
	}
	if metric := drops.Value() - before; metric != lost {
		t.Fatalf("drop counter moved %d, in-band lost %d — ring drops must hit /metrics exactly", metric, lost)
	}
	t.Logf("published %d, delivered %d, lost %d", published, delivered, lost)
}

// TestWatchMixedProtoPeers proves both off-diagonal cells of the watch
// compat matrix. A v1 client against a v2 server gets the per-event gob
// stream (no seqs, events intact). A v2 client against a v1-era server
// — simulated with the old handler shape: gob-only decode, empty reply,
// per-event gob pushes — detects the downgrade from the missing ack,
// streams fine, and refuses a replay request with ErrUnsupported
// instead of silently watching live.
func TestWatchMixedProtoPeers(t *testing.T) {
	t.Run("v1-client/v2-server", func(t *testing.T) {
		rig := newReplayRig(t, 128)
		cli := rig.client(t, "v1-cli")
		cli.ForceProto = 1
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		stream, err := cli.Watch(ctx, "replay.*")
		if err != nil {
			t.Fatal(err)
		}
		rig.publish(3, 0)
		for i := 0; i < 3; i++ {
			ev := recv(t, stream)
			if ev.Seq != 0 {
				t.Fatalf("v1 stream carried seq %d", ev.Seq)
			}
			if ev.Event.Attr("i") != fmt.Sprint(i) {
				t.Fatalf("event %d carries i=%q", i, ev.Event.Attr("i"))
			}
		}
	})

	t.Run("v2-client/v1-server", func(t *testing.T) {
		fabric := transport.NewLocalFabric(nil)
		srvEp, err := fabric.Attach("old-srv", "")
		if err != nil {
			t.Fatal(err)
		}
		// The v1-era server: decodes the subscribe into the old request
		// shape (gob drops the Proto/FromSeq fields a new client sends),
		// replies with no payload, and pushes each event as its own gob
		// frame on MsgEvent.
		type oldWatchReq struct {
			ID      uint64
			Pattern string
		}
		type oldEventMsg struct {
			ID    uint64
			Lost  uint64
			Event ctxkernel.Event
		}
		// Cap 4: the refused replay attempt also subscribes before the
		// client tears it down, and the handler must never block.
		subscribed := make(chan oldWatchReq, 4)
		srvEp.Handle(ctl.MsgWatch, func(msg transport.Message) ([]byte, error) {
			var req oldWatchReq
			if err := transport.DecodeSealed(msg.Payload, &req); err != nil {
				return nil, err
			}
			subscribed <- req
			go func() {
				for i := 0; i < 3; i++ {
					payload, _ := transport.Encode(oldEventMsg{ID: req.ID, Event: ctxkernel.Event{
						Topic: "replay.tick", Source: "old-srv",
						Attrs: map[string]string{"i": fmt.Sprint(i)},
					}})
					_ = srvEp.Send(msg.From, ctl.MsgEvent, payload)
				}
			}()
			return nil, nil
		})
		srvEp.Handle(ctl.MsgUnwatch, func(transport.Message) ([]byte, error) { return nil, nil })

		cliEp, err := fabric.Attach("new-cli", "")
		if err != nil {
			t.Fatal(err)
		}
		cli := ctl.NewClient(cliEp, "old-srv")
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()

		// Replay against a v1 server: typed refusal, not silent live.
		if _, err := cli.WatchFrom(ctx, "replay.*", 7); !errors.Is(err, ctl.ErrUnsupported) {
			t.Fatalf("replay against v1 server: err = %v, want ErrUnsupported", err)
		}

		// Plain watch negotiates down to the gob stream.
		stream, err := cli.Watch(ctx, "replay.*")
		if err != nil {
			t.Fatal(err)
		}
		select {
		case <-subscribed:
		case <-time.After(5 * time.Second):
			t.Fatal("old server never saw the subscribe")
		}
		for i := 0; i < 3; i++ {
			ev := recv(t, stream)
			if ev.Seq != 0 {
				t.Fatalf("downgraded stream carried seq %d", ev.Seq)
			}
			if ev.Event.Attr("i") != fmt.Sprint(i) {
				t.Fatalf("event %d carries i=%q", i, ev.Event.Attr("i"))
			}
		}
	})
}
