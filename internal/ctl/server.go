package ctl

import (
	"context"
	"fmt"
	"sync"
	"time"

	"mdagent/internal/ctxkernel"
	"mdagent/internal/obs"
	"mdagent/internal/state"
	"mdagent/internal/transport"
)

// Backend is what a control-plane server exposes. Any nil operation
// answers ErrUnsupported, so each daemon serves exactly the surface it
// has: mdagentd serves lifecycle + membership, mdregistry serves the
// registry views, the in-process Middleware serves everything.
type Backend struct {
	Info      func(ctx context.Context) (ServerInfo, error)
	Members   func(ctx context.Context) ([]MemberInfo, error)
	Apps      func(ctx context.Context) ([]AppInfo, error)
	Snapshots func(ctx context.Context) ([]state.SnapshotHead, error)
	Stats     func(ctx context.Context) ([]HostStats, error)
	RunApp    func(ctx context.Context, app, host string) error
	StopApp   func(ctx context.Context, app, host string) error
	Migrate   func(ctx context.Context, req MigrateRequest) (MigrateResult, error)
	Install   func(ctx context.Context, app, host string) error
	// PushBundle stores a signed app bundle at the serving center/host
	// (verification against the trusted keys happens in the backend).
	PushBundle func(ctx context.Context, name string, raw []byte) error
	// ListBundles lists the bundles stored at the serving center/host.
	ListBundles func(ctx context.Context) ([]BundleInfo, error)
	// InstallBundle instantiates a stored bundle on the serving host.
	InstallBundle func(ctx context.Context, app, host string) error
	// Metrics snapshots the server process's obs registry.
	Metrics func(ctx context.Context) ([]obs.Sample, error)
	// Trace returns the latest migration trace for an app.
	Trace func(ctx context.Context, app string) (obs.MigrationTrace, error)
	// Kernel is the event source Watch streams from; nil makes Watch
	// unsupported.
	Kernel *ctxkernel.Kernel
}

// watchQueueLen bounds each watcher's server-side buffer. Kernel
// handlers must never block the publisher, so an undrained watcher
// drops events (counted, reported in-band as WatchEvent.Lost) instead
// of stalling the bus.
const watchQueueLen = 256

// Defaults for the v2 stream: the replay ring's capacity in events, the
// batching window a pusher waits after waking before it collects, and
// the largest number of events packed into one push frame.
const (
	defaultRingSize    = 8192
	defaultFlushWindow = 500 * time.Microsecond
	maxEventBatch      = 512
)

// watcher is one live watch subscription.
type watcher struct {
	client string // subscriber endpoint name (the push destination)
	id     uint64 // client-chosen watch id
	subID  int    // kernel subscription to tear down
	queue  chan ctxkernel.Event
	done   chan struct{}
	once   sync.Once

	mu   sync.Mutex
	lost uint64
}

func (w *watcher) close() { w.once.Do(func() { close(w.done) }) }

// --- v2 stream: one shared sequenced ring, per-watch cursors. ---

// watchHub is the server's replay ring: every kernel event, stamped
// with a monotonic sequence number (the first event published after
// the hub exists gets seq 1), retained in a fixed-capacity ring. Each
// v2 watch is just a cursor into it plus a topic pattern, which is what
// makes replay work across client reconnects — the ring belongs to the
// server, not to any one watch. The hub is created lazily on the first
// v2 watch and lives until the server closes.
type watchHub struct {
	kernel *ctxkernel.Kernel
	subID  int

	mu       sync.Mutex
	buf      []seqEvent // ring: seq s lives at buf[(s-1) % len]
	next     uint64     // seq the next published event will get
	watchers map[*v2watcher]struct{}
}

// v2watcher is one live v2 watch: a cursor into the hub's ring. The
// cursor is guarded by the hub mutex (the pusher advances it, the
// subscribe path sets it).
type v2watcher struct {
	client  string
	id      uint64
	pattern string
	cursor  uint64        // next seq to deliver
	kick    chan struct{} // cap 1: publish signal, collapsed
	done    chan struct{}
	once    sync.Once
}

func (w *v2watcher) close() { w.once.Do(func() { close(w.done) }) }

func newWatchHub(kernel *ctxkernel.Kernel, size int) *watchHub {
	h := &watchHub{
		kernel:   kernel,
		buf:      make([]seqEvent, size),
		next:     1,
		watchers: make(map[*v2watcher]struct{}),
	}
	// One kernel subscription feeds every v2 watch; per-watch filtering
	// happens at collect time with the kernel's own matching rule.
	h.subID = kernel.Subscribe("*", h.append)
	return h
}

// append stamps and ring-buffers one event, then kicks every pusher.
// It runs on publisher goroutines: O(watchers), no blocking sends.
func (h *watchHub) append(ev ctxkernel.Event) {
	h.mu.Lock()
	h.buf[(h.next-1)%uint64(len(h.buf))] = seqEvent{Seq: h.next, Event: ev}
	h.next++
	for w := range h.watchers {
		select {
		case w.kick <- struct{}{}:
		default:
		}
	}
	h.mu.Unlock()
}

// oldestLocked is the lowest seq the ring still holds (callers hold mu).
func (h *watchHub) oldestLocked() uint64 {
	if h.next > uint64(len(h.buf))+1 {
		return h.next - uint64(len(h.buf))
	}
	return 1
}

// collect advances w's cursor through the ring, returning up to max
// pattern-matching events and the number of events that aged out of the
// ring before the cursor reached them. lost is an upper bound on the
// watch's real loss: aged-out events are gone, so the hub cannot know
// which of them would have matched the pattern.
func (h *watchHub) collect(w *v2watcher, max int) (events []seqEvent, lost uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if oldest := h.oldestLocked(); w.cursor < oldest {
		lost = oldest - w.cursor
		w.cursor = oldest
	}
	for w.cursor < h.next && len(events) < max {
		se := h.buf[(w.cursor-1)%uint64(len(h.buf))]
		if ctxkernel.MatchTopic(w.pattern, se.Event.Topic) {
			events = append(events, se)
		}
		w.cursor++
	}
	return events, lost
}

// remove retires a pusher and closes its done channel.
func (h *watchHub) remove(w *v2watcher) {
	h.mu.Lock()
	delete(h.watchers, w)
	h.mu.Unlock()
	w.close()
}

func (h *watchHub) close() { h.kernel.Unsubscribe(h.subID) }

// Server binds a Backend onto transport endpoints. One Server may serve
// several endpoints (the in-process deployment serves one per space).
type Server struct {
	b Backend
	// OpTimeout bounds each operation handler (transport handlers carry
	// no caller deadline). Zero takes a minute — migrations move real
	// megabytes.
	OpTimeout time.Duration
	// RingSize is the v2 replay ring's capacity in events (zero takes
	// defaultRingSize). Set before the first watch arrives.
	RingSize int
	// FlushWindow is how long a v2 pusher waits after a publish kick
	// before collecting a batch, trading one window of latency for
	// fewer, fuller push frames. Zero takes defaultFlushWindow;
	// negative flushes immediately.
	FlushWindow time.Duration

	mu        sync.Mutex
	watchers  map[string]map[uint64]*watcher   // v1: client endpoint -> id -> watcher
	watchers2 map[string]map[uint64]*v2watcher // v2: client endpoint -> id -> cursor watch
	hub       *watchHub                        // created on first v2 watch
	pushers   sync.WaitGroup                   // live pushV2 goroutines; Close joins them
	closed    bool
}

// NewServer creates a control-plane server over b.
func NewServer(b Backend) *Server {
	return &Server{
		b:         b,
		watchers:  make(map[string]map[uint64]*watcher),
		watchers2: make(map[string]map[uint64]*v2watcher),
	}
}

func (s *Server) ringSize() int {
	if s.RingSize > 0 {
		return s.RingSize
	}
	return defaultRingSize
}

func (s *Server) flushWindow() time.Duration {
	if s.FlushWindow != 0 {
		return s.FlushWindow
	}
	return defaultFlushWindow
}

func (s *Server) timeout() time.Duration {
	if s.OpTimeout > 0 {
		return s.OpTimeout
	}
	return time.Minute
}

// handle wraps an operation handler with version negotiation and the
// server's operation deadline.
func handle[Req any](s *Server, fn func(ctx context.Context, req Req) (any, error)) transport.Handler {
	return func(msg transport.Message) ([]byte, error) {
		var req Req
		if err := transport.DecodeSealed(msg.Payload, &req); err != nil {
			return nil, err
		}
		ctx, cancel := context.WithTimeout(context.Background(), s.timeout())
		defer cancel()
		out, err := fn(ctx, req)
		if err != nil {
			return nil, err
		}
		if out == nil {
			return nil, nil
		}
		return transport.Encode(out)
	}
}

// Serve binds the control-plane operations onto ep. It returns the
// server for chaining.
func (s *Server) Serve(ep *transport.Endpoint) *Server {
	ep.Handle(MsgInfo, handle(s, func(ctx context.Context, _ struct{}) (any, error) {
		if s.b.Info == nil {
			return ServerInfo{Proto: transport.MaxProto}, nil
		}
		info, err := s.b.Info(ctx)
		if err != nil {
			return nil, err
		}
		info.Proto = transport.MaxProto
		return info, nil
	}))
	ep.Handle(MsgMembers, handle(s, func(ctx context.Context, _ struct{}) (any, error) {
		if s.b.Members == nil {
			return nil, fmt.Errorf("%w: members", ErrUnsupported)
		}
		out, err := s.b.Members(ctx)
		if err != nil {
			return nil, err
		}
		return out, nil
	}))
	ep.Handle(MsgApps, handle(s, func(ctx context.Context, _ struct{}) (any, error) {
		if s.b.Apps == nil {
			return nil, fmt.Errorf("%w: apps", ErrUnsupported)
		}
		out, err := s.b.Apps(ctx)
		if err != nil {
			return nil, err
		}
		return out, nil
	}))
	ep.Handle(MsgSnapshots, handle(s, func(ctx context.Context, _ struct{}) (any, error) {
		if s.b.Snapshots == nil {
			return nil, fmt.Errorf("%w: snapshots", ErrUnsupported)
		}
		out, err := s.b.Snapshots(ctx)
		if err != nil {
			return nil, err
		}
		return out, nil
	}))
	ep.Handle(MsgStats, handle(s, func(ctx context.Context, _ struct{}) (any, error) {
		if s.b.Stats == nil {
			return nil, fmt.Errorf("%w: stats", ErrUnsupported)
		}
		out, err := s.b.Stats(ctx)
		if err != nil {
			return nil, err
		}
		return out, nil
	}))
	ep.Handle(MsgRun, handle(s, func(ctx context.Context, req runReq) (any, error) {
		if s.b.RunApp == nil {
			return nil, fmt.Errorf("%w: run", ErrUnsupported)
		}
		return nil, s.b.RunApp(ctx, req.App, req.Host)
	}))
	ep.Handle(MsgStop, handle(s, func(ctx context.Context, req runReq) (any, error) {
		if s.b.StopApp == nil {
			return nil, fmt.Errorf("%w: stop", ErrUnsupported)
		}
		return nil, s.b.StopApp(ctx, req.App, req.Host)
	}))
	ep.Handle(MsgMigrate, handle(s, func(ctx context.Context, req MigrateRequest) (any, error) {
		if s.b.Migrate == nil {
			return nil, fmt.Errorf("%w: migrate", ErrUnsupported)
		}
		res, err := s.b.Migrate(ctx, req)
		if err != nil {
			return nil, err
		}
		return res, nil
	}))
	ep.Handle(MsgInstall, handle(s, func(ctx context.Context, req runReq) (any, error) {
		if s.b.Install == nil {
			return nil, fmt.Errorf("%w: install", ErrUnsupported)
		}
		return nil, s.b.Install(ctx, req.App, req.Host)
	}))
	ep.Handle(MsgBundlePush, func(msg transport.Message) ([]byte, error) {
		if s.b.PushBundle == nil {
			return nil, fmt.Errorf("%w: bundle-push", ErrUnsupported)
		}
		var name string
		var raw []byte
		// The hot path is a v2 fast frame (no gob copy of a
		// multi-megabyte payload); a v1 gob seal is the fallback. Any
		// other version byte falls through to DecodeSealed's typed
		// ErrVersion refusal.
		if transport.IsFast(msg.Payload) {
			op, body, err := transport.OpenFast(msg.Payload)
			if err != nil {
				return nil, err
			}
			if op != transport.OpBundlePush {
				return nil, fmt.Errorf("ctl: bundle-push got fast opcode %#x", op)
			}
			r := transport.NewFastReader(body)
			name = r.String()
			// FastReader.Bytes aliases the frame; the bundle outlives
			// this handler (it lands in the store), so copy.
			raw = append([]byte(nil), r.Bytes()...)
			if err := r.Err(); err != nil {
				return nil, err
			}
		} else {
			var req bundlePushReq
			if err := transport.DecodeSealed(msg.Payload, &req); err != nil {
				return nil, err
			}
			name, raw = req.Name, req.Raw
		}
		ctx, cancel := context.WithTimeout(context.Background(), s.timeout())
		defer cancel()
		return nil, s.b.PushBundle(ctx, name, raw)
	})
	ep.Handle(MsgBundleList, handle(s, func(ctx context.Context, _ struct{}) (any, error) {
		if s.b.ListBundles == nil {
			return nil, fmt.Errorf("%w: bundle-list", ErrUnsupported)
		}
		out, err := s.b.ListBundles(ctx)
		if err != nil {
			return nil, err
		}
		return out, nil
	}))
	ep.Handle(MsgBundleInstall, handle(s, func(ctx context.Context, req bundleInstallReq) (any, error) {
		if s.b.InstallBundle == nil {
			return nil, fmt.Errorf("%w: bundle-install", ErrUnsupported)
		}
		return nil, s.b.InstallBundle(ctx, req.App, req.Host)
	}))
	ep.Handle(MsgMetrics, handle(s, func(ctx context.Context, _ struct{}) (any, error) {
		if s.b.Metrics == nil {
			return nil, fmt.Errorf("%w: metrics", ErrUnsupported)
		}
		out, err := s.b.Metrics(ctx)
		if err != nil {
			return nil, err
		}
		return out, nil
	}))
	ep.Handle(MsgTrace, handle(s, func(ctx context.Context, req traceReq) (any, error) {
		if s.b.Trace == nil {
			return nil, fmt.Errorf("%w: trace", ErrUnsupported)
		}
		out, err := s.b.Trace(ctx, req.App)
		if err != nil {
			return nil, err
		}
		return out, nil
	}))
	ep.Handle(MsgWatch, func(msg transport.Message) ([]byte, error) {
		var req watchReq
		if err := transport.DecodeSealed(msg.Payload, &req); err != nil {
			return nil, err
		}
		if req.Proto >= transport.ProtoV2 {
			return s.addWatchV2(ep, msg.From, req)
		}
		// v1 clients cannot carry FromSeq (the field postdates them), so
		// the legacy path ignores it — exactly what a pre-v2 server did.
		return nil, s.addWatch(ep, msg.From, req)
	})
	ep.Handle(MsgUnwatch, func(msg transport.Message) ([]byte, error) {
		var req unwatchReq
		if err := transport.DecodeSealed(msg.Payload, &req); err != nil {
			return nil, err
		}
		s.dropWatch(msg.From, req.ID)
		return nil, nil
	})
	return s
}

// Watch delivery accounting, process-wide: enqueued events and events
// dropped because a watcher's queue was full (also reported in-band as
// WatchEvent.Lost).
var (
	mWatchEvents = obs.Default.Counter("mdagent_ctl_watch_events_total")
	mWatchDrops  = obs.Default.Counter("mdagent_ctl_watch_dropped_total")
)

// addWatch subscribes a client to the kernel and starts its pusher.
func (s *Server) addWatch(ep *transport.Endpoint, client string, req watchReq) error {
	if s.b.Kernel == nil {
		return fmt.Errorf("%w: watch", ErrUnsupported)
	}
	if client == "" {
		return fmt.Errorf("ctl: watch request carries no reply endpoint")
	}
	pattern := req.Pattern
	if pattern == "" {
		pattern = "*"
	}
	w := &watcher{
		client: client, id: req.ID,
		queue: make(chan ctxkernel.Event, watchQueueLen),
		done:  make(chan struct{}),
	}
	// Subscribe before registering, so a racing unwatch always sees a
	// fully formed watcher. The kernel handler runs on publisher
	// goroutines and must be quick: enqueue or drop, never block.
	w.subID = s.b.Kernel.Subscribe(pattern, func(ev ctxkernel.Event) {
		select {
		case w.queue <- ev:
			mWatchEvents.Inc()
		default:
			mWatchDrops.Inc()
			w.mu.Lock()
			w.lost++
			w.mu.Unlock()
		}
	})
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.b.Kernel.Unsubscribe(w.subID)
		return fmt.Errorf("ctl: server closed")
	}
	byID := s.watchers[client]
	if byID == nil {
		byID = make(map[uint64]*watcher)
		s.watchers[client] = byID
	}
	if old, ok := byID[req.ID]; ok {
		// Same client re-subscribing an id: replace (idempotent retry).
		s.removeLocked(old)
	}
	byID[req.ID] = w
	s.mu.Unlock()
	go s.push(ep, w)
	return nil
}

// push drains one watcher's queue into one-way ctl.event messages. A
// send failure (client gone, link dead) retires the watch — transport
// learned-routes make sends to a departed client fail rather than hang.
func (s *Server) push(ep *transport.Endpoint, w *watcher) {
	for {
		select {
		case <-w.done:
			return
		case ev := <-w.queue:
			w.mu.Lock()
			lost := w.lost
			w.lost = 0
			w.mu.Unlock()
			payload, err := transport.Encode(eventMsg{ID: w.id, Lost: lost, Event: ev})
			if err != nil {
				continue // unencodable event: drop it, keep the watch
			}
			if err := ep.Send(w.client, MsgEvent, payload); err != nil {
				s.dropWatch(w.client, w.id)
				return
			}
		}
	}
}

// addWatchV2 registers a cursor watch on the replay ring and answers
// with a watchAck (the reply payload's presence is what tells the
// client it got a v2 stream). FromSeq outside the ring's retained
// window is refused with ErrReplayGap — replaying silently from
// somewhere else would break the "re-deliver instead of drop" promise.
func (s *Server) addWatchV2(ep *transport.Endpoint, client string, req watchReq) ([]byte, error) {
	if s.b.Kernel == nil {
		return nil, fmt.Errorf("%w: watch", ErrUnsupported)
	}
	if client == "" {
		return nil, fmt.Errorf("ctl: watch request carries no reply endpoint")
	}
	pattern := req.Pattern
	if pattern == "" {
		pattern = "*"
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, fmt.Errorf("ctl: server closed")
	}
	if s.hub == nil {
		s.hub = newWatchHub(s.b.Kernel, s.ringSize())
	}
	hub := s.hub
	s.mu.Unlock()

	w := &v2watcher{
		client: client, id: req.ID, pattern: pattern,
		kick: make(chan struct{}, 1),
		done: make(chan struct{}),
	}
	hub.mu.Lock()
	next := hub.next
	w.cursor = next
	if req.FromSeq != 0 {
		if oldest := hub.oldestLocked(); req.FromSeq < oldest || req.FromSeq > next {
			hub.mu.Unlock()
			return nil, fmt.Errorf("%w: from-seq %d, ring retains [%d, %d)",
				ErrReplayGap, req.FromSeq, oldest, next)
		}
		w.cursor = req.FromSeq
	}
	hub.watchers[w] = struct{}{}
	ring := len(hub.buf)
	hub.mu.Unlock()

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		hub.remove(w)
		return nil, fmt.Errorf("ctl: server closed")
	}
	byID := s.watchers2[client]
	if byID == nil {
		byID = make(map[uint64]*v2watcher)
		s.watchers2[client] = byID
	}
	if old, ok := byID[req.ID]; ok {
		hub.remove(old) // idempotent re-subscribe: replace
	}
	byID[req.ID] = w
	// Registered under the same lock Close takes, so Close either sees
	// this watch (and waits for its pusher) or refused it above.
	s.pushers.Add(1)
	s.mu.Unlock()

	if w.cursor < next {
		w.kick <- struct{}{} // replay backlog: wake the pusher immediately
	}
	go s.pushV2(ep, hub, w)
	return transport.Encode(watchAck{Proto: transport.ProtoV2, Next: next, Ring: ring})
}

// pushV2 drains one cursor watch into batched fast-frame pushes: wake
// on a publish kick, linger one flush window so a burst coalesces, then
// collect and send full batches until the cursor catches the ring.
func (s *Server) pushV2(ep *transport.Endpoint, hub *watchHub, w *v2watcher) {
	defer s.pushers.Done()
	flush := s.flushWindow()
	for {
		select {
		case <-w.done:
			return
		case <-w.kick:
		}
		if flush > 0 {
			timer := time.NewTimer(flush)
			select {
			case <-w.done:
				timer.Stop()
				return
			case <-timer.C:
			}
		}
		for {
			select {
			case <-w.done: // retired mid-drain: stop before booking more
				return
			default:
			}
			events, lost := hub.collect(w, maxEventBatch)
			if len(events) == 0 && lost == 0 {
				break
			}
			mWatchEvents.Add(int64(len(events)))
			if lost > 0 {
				mWatchDrops.Add(int64(lost))
			}
			if err := ep.Send(w.client, MsgEventV2, encodeEventBatch(w.id, lost, events)); err != nil {
				s.dropWatch(w.client, w.id)
				return
			}
			if len(events) < maxEventBatch {
				break // collect drained the ring (cursor == next)
			}
		}
	}
}

// dropWatch retires one watch (client unsubscribe or dead push path).
func (s *Server) dropWatch(client string, id uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if w, ok := s.watchers[client][id]; ok {
		s.removeLocked(w)
		delete(s.watchers[client], id)
		if len(s.watchers[client]) == 0 {
			delete(s.watchers, client)
		}
	}
	if w, ok := s.watchers2[client][id]; ok {
		if s.hub != nil {
			s.hub.remove(w)
		}
		delete(s.watchers2[client], id)
		if len(s.watchers2[client]) == 0 {
			delete(s.watchers2, client)
		}
	}
}

func (s *Server) removeLocked(w *watcher) {
	if s.b.Kernel != nil {
		s.b.Kernel.Unsubscribe(w.subID)
	}
	w.close()
}

// Close retires every live watch and the replay hub, then joins the
// pusher goroutines — after Close returns, no pusher will send another
// frame or touch the drop metrics. The endpoint handlers stay
// registered (the endpoint owns its own lifecycle); new watches are
// refused.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	for client, byID := range s.watchers {
		for id, w := range byID {
			s.removeLocked(w)
			delete(byID, id)
		}
		delete(s.watchers, client)
	}
	for client, byID := range s.watchers2 {
		for id, w := range byID {
			if s.hub != nil {
				s.hub.remove(w)
			}
			delete(byID, id)
		}
		delete(s.watchers2, client)
	}
	if s.hub != nil {
		s.hub.close()
		s.hub = nil
	}
	s.mu.Unlock()
	// Outside the lock: a pusher's exit path (dropWatch) takes s.mu.
	s.pushers.Wait()
}
