package ctl

import (
	"context"
	"fmt"
	"sync"
	"time"

	"mdagent/internal/ctxkernel"
	"mdagent/internal/obs"
	"mdagent/internal/state"
	"mdagent/internal/transport"
)

// Backend is what a control-plane server exposes. Any nil operation
// answers ErrUnsupported, so each daemon serves exactly the surface it
// has: mdagentd serves lifecycle + membership, mdregistry serves the
// registry views, the in-process Middleware serves everything.
type Backend struct {
	Info      func(ctx context.Context) (ServerInfo, error)
	Members   func(ctx context.Context) ([]MemberInfo, error)
	Apps      func(ctx context.Context) ([]AppInfo, error)
	Snapshots func(ctx context.Context) ([]state.SnapshotHead, error)
	Stats     func(ctx context.Context) ([]HostStats, error)
	RunApp    func(ctx context.Context, app, host string) error
	StopApp   func(ctx context.Context, app, host string) error
	Migrate   func(ctx context.Context, req MigrateRequest) (MigrateResult, error)
	Install   func(ctx context.Context, app, host string) error
	// Metrics snapshots the server process's obs registry.
	Metrics func(ctx context.Context) ([]obs.Sample, error)
	// Trace returns the latest migration trace for an app.
	Trace func(ctx context.Context, app string) (obs.MigrationTrace, error)
	// Kernel is the event source Watch streams from; nil makes Watch
	// unsupported.
	Kernel *ctxkernel.Kernel
}

// watchQueueLen bounds each watcher's server-side buffer. Kernel
// handlers must never block the publisher, so an undrained watcher
// drops events (counted, reported in-band as WatchEvent.Lost) instead
// of stalling the bus.
const watchQueueLen = 256

// watcher is one live watch subscription.
type watcher struct {
	client string // subscriber endpoint name (the push destination)
	id     uint64 // client-chosen watch id
	subID  int    // kernel subscription to tear down
	queue  chan ctxkernel.Event
	done   chan struct{}
	once   sync.Once

	mu   sync.Mutex
	lost uint64
}

func (w *watcher) close() { w.once.Do(func() { close(w.done) }) }

// Server binds a Backend onto transport endpoints. One Server may serve
// several endpoints (the in-process deployment serves one per space).
type Server struct {
	b Backend
	// OpTimeout bounds each operation handler (transport handlers carry
	// no caller deadline). Zero takes a minute — migrations move real
	// megabytes.
	OpTimeout time.Duration

	mu       sync.Mutex
	watchers map[string]map[uint64]*watcher // client endpoint -> id -> watcher
	closed   bool
}

// NewServer creates a control-plane server over b.
func NewServer(b Backend) *Server {
	return &Server{b: b, watchers: make(map[string]map[uint64]*watcher)}
}

func (s *Server) timeout() time.Duration {
	if s.OpTimeout > 0 {
		return s.OpTimeout
	}
	return time.Minute
}

// handle wraps an operation handler with version negotiation and the
// server's operation deadline.
func handle[Req any](s *Server, fn func(ctx context.Context, req Req) (any, error)) transport.Handler {
	return func(msg transport.Message) ([]byte, error) {
		var req Req
		if err := transport.DecodeSealed(msg.Payload, &req); err != nil {
			return nil, err
		}
		ctx, cancel := context.WithTimeout(context.Background(), s.timeout())
		defer cancel()
		out, err := fn(ctx, req)
		if err != nil {
			return nil, err
		}
		if out == nil {
			return nil, nil
		}
		return transport.Encode(out)
	}
}

// Serve binds the control-plane operations onto ep. It returns the
// server for chaining.
func (s *Server) Serve(ep *transport.Endpoint) *Server {
	ep.Handle(MsgInfo, handle(s, func(ctx context.Context, _ struct{}) (any, error) {
		if s.b.Info == nil {
			return ServerInfo{Proto: transport.ProtoVersion}, nil
		}
		info, err := s.b.Info(ctx)
		if err != nil {
			return nil, err
		}
		info.Proto = transport.ProtoVersion
		return info, nil
	}))
	ep.Handle(MsgMembers, handle(s, func(ctx context.Context, _ struct{}) (any, error) {
		if s.b.Members == nil {
			return nil, fmt.Errorf("%w: members", ErrUnsupported)
		}
		out, err := s.b.Members(ctx)
		if err != nil {
			return nil, err
		}
		return out, nil
	}))
	ep.Handle(MsgApps, handle(s, func(ctx context.Context, _ struct{}) (any, error) {
		if s.b.Apps == nil {
			return nil, fmt.Errorf("%w: apps", ErrUnsupported)
		}
		out, err := s.b.Apps(ctx)
		if err != nil {
			return nil, err
		}
		return out, nil
	}))
	ep.Handle(MsgSnapshots, handle(s, func(ctx context.Context, _ struct{}) (any, error) {
		if s.b.Snapshots == nil {
			return nil, fmt.Errorf("%w: snapshots", ErrUnsupported)
		}
		out, err := s.b.Snapshots(ctx)
		if err != nil {
			return nil, err
		}
		return out, nil
	}))
	ep.Handle(MsgStats, handle(s, func(ctx context.Context, _ struct{}) (any, error) {
		if s.b.Stats == nil {
			return nil, fmt.Errorf("%w: stats", ErrUnsupported)
		}
		out, err := s.b.Stats(ctx)
		if err != nil {
			return nil, err
		}
		return out, nil
	}))
	ep.Handle(MsgRun, handle(s, func(ctx context.Context, req runReq) (any, error) {
		if s.b.RunApp == nil {
			return nil, fmt.Errorf("%w: run", ErrUnsupported)
		}
		return nil, s.b.RunApp(ctx, req.App, req.Host)
	}))
	ep.Handle(MsgStop, handle(s, func(ctx context.Context, req runReq) (any, error) {
		if s.b.StopApp == nil {
			return nil, fmt.Errorf("%w: stop", ErrUnsupported)
		}
		return nil, s.b.StopApp(ctx, req.App, req.Host)
	}))
	ep.Handle(MsgMigrate, handle(s, func(ctx context.Context, req MigrateRequest) (any, error) {
		if s.b.Migrate == nil {
			return nil, fmt.Errorf("%w: migrate", ErrUnsupported)
		}
		res, err := s.b.Migrate(ctx, req)
		if err != nil {
			return nil, err
		}
		return res, nil
	}))
	ep.Handle(MsgInstall, handle(s, func(ctx context.Context, req runReq) (any, error) {
		if s.b.Install == nil {
			return nil, fmt.Errorf("%w: install", ErrUnsupported)
		}
		return nil, s.b.Install(ctx, req.App, req.Host)
	}))
	ep.Handle(MsgMetrics, handle(s, func(ctx context.Context, _ struct{}) (any, error) {
		if s.b.Metrics == nil {
			return nil, fmt.Errorf("%w: metrics", ErrUnsupported)
		}
		out, err := s.b.Metrics(ctx)
		if err != nil {
			return nil, err
		}
		return out, nil
	}))
	ep.Handle(MsgTrace, handle(s, func(ctx context.Context, req traceReq) (any, error) {
		if s.b.Trace == nil {
			return nil, fmt.Errorf("%w: trace", ErrUnsupported)
		}
		out, err := s.b.Trace(ctx, req.App)
		if err != nil {
			return nil, err
		}
		return out, nil
	}))
	ep.Handle(MsgWatch, func(msg transport.Message) ([]byte, error) {
		var req watchReq
		if err := transport.DecodeSealed(msg.Payload, &req); err != nil {
			return nil, err
		}
		return nil, s.addWatch(ep, msg.From, req)
	})
	ep.Handle(MsgUnwatch, func(msg transport.Message) ([]byte, error) {
		var req unwatchReq
		if err := transport.DecodeSealed(msg.Payload, &req); err != nil {
			return nil, err
		}
		s.dropWatch(msg.From, req.ID)
		return nil, nil
	})
	return s
}

// Watch delivery accounting, process-wide: enqueued events and events
// dropped because a watcher's queue was full (also reported in-band as
// WatchEvent.Lost).
var (
	mWatchEvents = obs.Default.Counter("mdagent_ctl_watch_events_total")
	mWatchDrops  = obs.Default.Counter("mdagent_ctl_watch_dropped_total")
)

// addWatch subscribes a client to the kernel and starts its pusher.
func (s *Server) addWatch(ep *transport.Endpoint, client string, req watchReq) error {
	if s.b.Kernel == nil {
		return fmt.Errorf("%w: watch", ErrUnsupported)
	}
	if client == "" {
		return fmt.Errorf("ctl: watch request carries no reply endpoint")
	}
	pattern := req.Pattern
	if pattern == "" {
		pattern = "*"
	}
	w := &watcher{
		client: client, id: req.ID,
		queue: make(chan ctxkernel.Event, watchQueueLen),
		done:  make(chan struct{}),
	}
	// Subscribe before registering, so a racing unwatch always sees a
	// fully formed watcher. The kernel handler runs on publisher
	// goroutines and must be quick: enqueue or drop, never block.
	w.subID = s.b.Kernel.Subscribe(pattern, func(ev ctxkernel.Event) {
		select {
		case w.queue <- ev:
			mWatchEvents.Inc()
		default:
			mWatchDrops.Inc()
			w.mu.Lock()
			w.lost++
			w.mu.Unlock()
		}
	})
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.b.Kernel.Unsubscribe(w.subID)
		return fmt.Errorf("ctl: server closed")
	}
	byID := s.watchers[client]
	if byID == nil {
		byID = make(map[uint64]*watcher)
		s.watchers[client] = byID
	}
	if old, ok := byID[req.ID]; ok {
		// Same client re-subscribing an id: replace (idempotent retry).
		s.removeLocked(old)
	}
	byID[req.ID] = w
	s.mu.Unlock()
	go s.push(ep, w)
	return nil
}

// push drains one watcher's queue into one-way ctl.event messages. A
// send failure (client gone, link dead) retires the watch — transport
// learned-routes make sends to a departed client fail rather than hang.
func (s *Server) push(ep *transport.Endpoint, w *watcher) {
	for {
		select {
		case <-w.done:
			return
		case ev := <-w.queue:
			w.mu.Lock()
			lost := w.lost
			w.lost = 0
			w.mu.Unlock()
			payload, err := transport.Encode(eventMsg{ID: w.id, Lost: lost, Event: ev})
			if err != nil {
				continue // unencodable event: drop it, keep the watch
			}
			if err := ep.Send(w.client, MsgEvent, payload); err != nil {
				s.dropWatch(w.client, w.id)
				return
			}
		}
	}
}

// dropWatch retires one watch (client unsubscribe or dead push path).
func (s *Server) dropWatch(client string, id uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if w, ok := s.watchers[client][id]; ok {
		s.removeLocked(w)
		delete(s.watchers[client], id)
		if len(s.watchers[client]) == 0 {
			delete(s.watchers, client)
		}
	}
}

func (s *Server) removeLocked(w *watcher) {
	if s.b.Kernel != nil {
		s.b.Kernel.Unsubscribe(w.subID)
	}
	w.close()
}

// Close retires every live watch. The endpoint handlers stay registered
// (the endpoint owns its own lifecycle); new watches are refused.
func (s *Server) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	for client, byID := range s.watchers {
		for id, w := range byID {
			s.removeLocked(w)
			delete(byID, id)
		}
		delete(s.watchers, client)
	}
}
