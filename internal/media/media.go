// Package media provides the synthetic media substrate for MDAgent's demo
// applications: deterministic music files and slide decks with checksums
// (stand-ins for the paper's MP3s and OpenOffice Impress decks), playlists,
// and remote-URL streaming — the paper's fallback when data is absent at
// the destination: "If these files don't exist in the destination, they
// will be played remotely through URL in the original host" (§5).
package media

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// File is one media payload with integrity metadata.
type File struct {
	Name     string
	Data     []byte
	Checksum string // hex SHA-256
}

// GenerateFile builds a deterministic file of the given size; the same
// (name, size, seed) always yields identical bytes, so checksums are
// stable across hosts and runs.
func GenerateFile(name string, size int64, seed byte) File {
	data := make([]byte, size)
	x := uint32(seed) | uint32(len(name))<<8 | 0x9e3779b9
	for i := range data {
		// xorshift32: cheap deterministic pseudo-noise.
		x ^= x << 13
		x ^= x >> 17
		x ^= x << 5
		data[i] = byte(x)
	}
	sum := sha256.Sum256(data)
	return File{Name: name, Data: data, Checksum: hex.EncodeToString(sum[:])}
}

// Verify recomputes the checksum and reports integrity.
func (f File) Verify() bool {
	sum := sha256.Sum256(f.Data)
	return hex.EncodeToString(sum[:]) == f.Checksum
}

// Size returns the payload length.
func (f File) Size() int64 { return int64(len(f.Data)) }

// URL renders the paper-style remote binding for a file on a host,
// e.g. "mdagent://hostA/media/blue-danube.mp3".
func URL(host, name string) string {
	return "mdagent://" + host + "/media/" + name
}

// ParseURL splits an mdagent:// media URL into host and file name.
func ParseURL(url string) (host, name string, err error) {
	rest, ok := strings.CutPrefix(url, "mdagent://")
	if !ok {
		return "", "", fmt.Errorf("media: not an mdagent URL: %q", url)
	}
	parts := strings.SplitN(rest, "/media/", 2)
	if len(parts) != 2 || parts[0] == "" || parts[1] == "" {
		return "", "", fmt.Errorf("media: malformed media URL: %q", url)
	}
	return parts[0], parts[1], nil
}

// Library is a host's media collection.
type Library struct {
	host string
	mu   sync.RWMutex
	byN  map[string]File
}

// NewLibrary creates an empty library for a host.
func NewLibrary(host string) *Library {
	return &Library{host: host, byN: make(map[string]File)}
}

// Host returns the owning host id.
func (l *Library) Host() string { return l.host }

// Add stores a file.
func (l *Library) Add(f File) {
	l.mu.Lock()
	l.byN[f.Name] = f
	l.mu.Unlock()
}

// Get fetches a file by name.
func (l *Library) Get(name string) (File, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	f, ok := l.byN[name]
	return f, ok
}

// Has reports presence.
func (l *Library) Has(name string) bool {
	_, ok := l.Get(name)
	return ok
}

// Names lists file names, sorted.
func (l *Library) Names() []string {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make([]string, 0, len(l.byN))
	for n := range l.byN {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Playlist is an ordered set of track names with a cursor — the state the
// follow-me player migrates.
type Playlist struct {
	mu     sync.Mutex
	tracks []string
	cursor int
}

// NewPlaylist creates a playlist over tracks.
func NewPlaylist(tracks ...string) *Playlist {
	cp := make([]string, len(tracks))
	copy(cp, tracks)
	return &Playlist{tracks: cp}
}

// Current returns the track at the cursor.
func (p *Playlist) Current() (string, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.cursor < 0 || p.cursor >= len(p.tracks) {
		return "", false
	}
	return p.tracks[p.cursor], true
}

// Next advances the cursor, wrapping, and returns the new track.
func (p *Playlist) Next() (string, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.tracks) == 0 {
		return "", false
	}
	p.cursor = (p.cursor + 1) % len(p.tracks)
	return p.tracks[p.cursor], true
}

// Seek positions the cursor at the named track.
func (p *Playlist) Seek(track string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i, t := range p.tracks {
		if t == track {
			p.cursor = i
			return true
		}
	}
	return false
}

// Tracks returns a copy of the track list.
func (p *Playlist) Tracks() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	cp := make([]string, len(p.tracks))
	copy(cp, p.tracks)
	return cp
}

// SlideDeck is a presentation deck: n slides of roughly equal size. The
// clone-dispatch demo carries decks to overflow rooms.
type SlideDeck struct {
	Title  string
	Slides []File
}

// GenerateDeck builds a deck of n slides totalling ~totalSize bytes.
func GenerateDeck(title string, n int, totalSize int64, seed byte) SlideDeck {
	if n < 1 {
		n = 1
	}
	per := totalSize / int64(n)
	deck := SlideDeck{Title: title}
	for i := 0; i < n; i++ {
		deck.Slides = append(deck.Slides, GenerateFile(
			fmt.Sprintf("%s-slide-%02d", title, i+1), per, seed+byte(i)))
	}
	return deck
}

// Size returns the deck's total byte size.
func (d SlideDeck) Size() int64 {
	var n int64
	for _, s := range d.Slides {
		n += s.Size()
	}
	return n
}

// Verify checks every slide's integrity.
func (d SlideDeck) Verify() bool {
	for _, s := range d.Slides {
		if !s.Verify() {
			return false
		}
	}
	return true
}
