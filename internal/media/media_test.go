package media

import (
	"context"
	"testing"
	"time"

	"mdagent/internal/transport"
)

func TestGenerateFileDeterministicAndVerifies(t *testing.T) {
	a := GenerateFile("song.mp3", 1<<16, 3)
	b := GenerateFile("song.mp3", 1<<16, 3)
	if a.Checksum != b.Checksum {
		t.Fatal("same inputs produced different files")
	}
	if !a.Verify() {
		t.Fatal("fresh file fails verification")
	}
	a.Data[0] ^= 0xff
	if a.Verify() {
		t.Fatal("corrupted file verified")
	}
	c := GenerateFile("song.mp3", 1<<16, 4)
	if c.Checksum == b.Checksum {
		t.Fatal("different seeds produced identical files")
	}
	if c.Size() != 1<<16 {
		t.Fatalf("Size = %d", c.Size())
	}
}

func TestURLRoundTrip(t *testing.T) {
	url := URL("hostA", "blue-danube.mp3")
	host, name, err := ParseURL(url)
	if err != nil || host != "hostA" || name != "blue-danube.mp3" {
		t.Fatalf("ParseURL = %q %q %v", host, name, err)
	}
	for _, bad := range []string{"http://x/y", "mdagent://hostonly", "mdagent:///media/x", "mdagent://h/media/"} {
		if _, _, err := ParseURL(bad); err == nil {
			t.Fatalf("ParseURL(%q) accepted", bad)
		}
	}
}

func TestLibrary(t *testing.T) {
	lib := NewLibrary("hostA")
	lib.Add(GenerateFile("b.mp3", 100, 1))
	lib.Add(GenerateFile("a.mp3", 100, 1))
	if !lib.Has("a.mp3") || lib.Has("zzz.mp3") {
		t.Fatal("Has wrong")
	}
	names := lib.Names()
	if len(names) != 2 || names[0] != "a.mp3" {
		t.Fatalf("Names = %v", names)
	}
	if lib.Host() != "hostA" {
		t.Fatal("Host wrong")
	}
}

func TestPlaylist(t *testing.T) {
	p := NewPlaylist("a", "b", "c")
	if cur, ok := p.Current(); !ok || cur != "a" {
		t.Fatalf("Current = %q, %v", cur, ok)
	}
	if next, _ := p.Next(); next != "b" {
		t.Fatalf("Next = %q", next)
	}
	if !p.Seek("c") {
		t.Fatal("Seek failed")
	}
	if next, _ := p.Next(); next != "a" { // wraps
		t.Fatalf("wrap Next = %q", next)
	}
	if p.Seek("zzz") {
		t.Fatal("Seek to missing track succeeded")
	}
	if got := p.Tracks(); len(got) != 3 {
		t.Fatalf("Tracks = %v", got)
	}
	empty := NewPlaylist()
	if _, ok := empty.Current(); ok {
		t.Fatal("empty Current ok")
	}
	if _, ok := empty.Next(); ok {
		t.Fatal("empty Next ok")
	}
}

func TestSlideDeck(t *testing.T) {
	deck := GenerateDeck("lecture", 10, 1<<20, 7)
	if len(deck.Slides) != 10 {
		t.Fatalf("slides = %d", len(deck.Slides))
	}
	if !deck.Verify() {
		t.Fatal("deck failed verification")
	}
	if deck.Size() < (1<<20)-16 || deck.Size() > 1<<20 {
		t.Fatalf("deck size = %d", deck.Size())
	}
	one := GenerateDeck("x", 0, 100, 1) // n clamps to 1
	if len(one.Slides) != 1 {
		t.Fatalf("clamped slides = %d", len(one.Slides))
	}
}

func streamRig(t *testing.T) (*transport.Endpoint, *Library) {
	t.Helper()
	fab := transport.NewLocalFabric(nil)
	t.Cleanup(func() { fab.Close() })
	srv, err := fab.Attach("media@hostA", "")
	if err != nil {
		t.Fatal(err)
	}
	lib := NewLibrary("hostA")
	lib.Add(GenerateFile("song.mp3", 300_000, 2))
	ServeLibrary(lib, srv)
	cli, err := fab.Attach("player@hostB", "")
	if err != nil {
		t.Fatal(err)
	}
	return cli, lib
}

func TestRemoteStreamReadsWholeFile(t *testing.T) {
	cli, lib := streamRig(t)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	rs, err := OpenRemote(ctx, cli, "media@hostA", URL("hostA", "song.mp3"))
	if err != nil {
		t.Fatal(err)
	}
	want, _ := lib.Get("song.mp3")
	if rs.Size() != want.Size() || rs.Checksum() != want.Checksum {
		t.Fatalf("meta = %d %s", rs.Size(), rs.Checksum())
	}
	var got []byte
	for {
		chunk, eof, err := rs.ReadChunk(ctx, 64<<10)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, chunk...)
		if eof {
			break
		}
	}
	if int64(len(got)) != want.Size() {
		t.Fatalf("read %d bytes, want %d", len(got), want.Size())
	}
	f := File{Name: "song.mp3", Data: got, Checksum: want.Checksum}
	if !f.Verify() {
		t.Fatal("streamed bytes corrupt")
	}
	if rs.Pos() != want.Size() {
		t.Fatalf("Pos = %d", rs.Pos())
	}
}

func TestRemoteStreamPrebuffer(t *testing.T) {
	cli, _ := streamRig(t)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	rs, err := OpenRemote(ctx, cli, "media@hostA", URL("hostA", "song.mp3"))
	if err != nil {
		t.Fatal(err)
	}
	n, err := rs.Prebuffer(ctx, 128<<10)
	if err != nil || n != 128<<10 {
		t.Fatalf("Prebuffer = %d, %v", n, err)
	}
}

func TestRemoteStreamErrors(t *testing.T) {
	cli, _ := streamRig(t)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := OpenRemote(ctx, cli, "media@hostA", "bogus://x"); err == nil {
		t.Fatal("bogus URL accepted")
	}
	if _, err := OpenRemote(ctx, cli, "media@hostA", URL("hostA", "missing.mp3")); err == nil {
		t.Fatal("missing file opened")
	}
}
