package media

import (
	"context"
	"fmt"

	"mdagent/internal/transport"
)

// Transport message types for remote media streaming.
const (
	MsgFetch = "media.fetch" // ranged read of a file
	MsgMeta  = "media.meta"  // size + checksum lookup
)

type fetchReq struct {
	Name   string
	Offset int64
	Length int64 // <= 0 means "to end"
}

type fetchReply struct {
	Data []byte
	EOF  bool
}

type metaReply struct {
	Size     int64
	Checksum string
	Found    bool
}

// ServeLibrary exposes a library on a transport endpoint so remote hosts
// can stream files by URL.
func ServeLibrary(lib *Library, ep *transport.Endpoint) {
	ep.Handle(MsgFetch, func(m transport.Message) ([]byte, error) {
		var req fetchReq
		if err := transport.Decode(m.Payload, &req); err != nil {
			return nil, err
		}
		f, ok := lib.Get(req.Name)
		if !ok {
			return nil, fmt.Errorf("media: %s has no file %q", lib.Host(), req.Name)
		}
		if req.Offset < 0 || req.Offset > f.Size() {
			return nil, fmt.Errorf("media: offset %d out of range for %q (%d bytes)", req.Offset, req.Name, f.Size())
		}
		end := f.Size()
		if req.Length > 0 && req.Offset+req.Length < end {
			end = req.Offset + req.Length
		}
		chunk := make([]byte, end-req.Offset)
		copy(chunk, f.Data[req.Offset:end])
		return transport.Encode(fetchReply{Data: chunk, EOF: end == f.Size()})
	})
	ep.Handle(MsgMeta, func(m transport.Message) ([]byte, error) {
		var req fetchReq
		if err := transport.Decode(m.Payload, &req); err != nil {
			return nil, err
		}
		f, ok := lib.Get(req.Name)
		if !ok {
			return transport.Encode(metaReply{Found: false})
		}
		return transport.Encode(metaReply{Size: f.Size(), Checksum: f.Checksum, Found: true})
	})
}

// RemoteStream reads a file from a remote library in chunks — the
// "played remotely through URL" path. server is the endpoint name the
// library is served on.
type RemoteStream struct {
	ep     *transport.Endpoint
	server string
	name   string
	size   int64
	sum    string
	pos    int64
}

// OpenRemote resolves the URL's file metadata and returns a stream.
func OpenRemote(ctx context.Context, ep *transport.Endpoint, server, url string) (*RemoteStream, error) {
	_, name, err := ParseURL(url)
	if err != nil {
		return nil, err
	}
	payload, err := transport.Encode(fetchReq{Name: name})
	if err != nil {
		return nil, err
	}
	var meta metaReply
	if err := ep.RequestDecode(ctx, server, MsgMeta, payload, &meta); err != nil {
		return nil, err
	}
	if !meta.Found {
		return nil, fmt.Errorf("media: remote %s has no file %q", server, name)
	}
	return &RemoteStream{ep: ep, server: server, name: name, size: meta.Size, sum: meta.Checksum}, nil
}

// Size returns the remote file size.
func (r *RemoteStream) Size() int64 { return r.size }

// Checksum returns the remote file checksum.
func (r *RemoteStream) Checksum() string { return r.sum }

// Pos returns the current read position.
func (r *RemoteStream) Pos() int64 { return r.pos }

// ReadChunk fetches up to n bytes from the current position, advancing it.
// It returns the chunk and whether the end of file was reached.
func (r *RemoteStream) ReadChunk(ctx context.Context, n int64) ([]byte, bool, error) {
	payload, err := transport.Encode(fetchReq{Name: r.name, Offset: r.pos, Length: n})
	if err != nil {
		return nil, false, err
	}
	var reply fetchReply
	if err := r.ep.RequestDecode(ctx, r.server, MsgFetch, payload, &reply); err != nil {
		return nil, false, err
	}
	r.pos += int64(len(reply.Data))
	return reply.Data, reply.EOF, nil
}

// Prebuffer reads the initial window a player needs before starting
// playback, returning the bytes buffered.
func (r *RemoteStream) Prebuffer(ctx context.Context, window int64) (int64, error) {
	data, _, err := r.ReadChunk(ctx, window)
	if err != nil {
		return 0, err
	}
	return int64(len(data)), nil
}
