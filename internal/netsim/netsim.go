// Package netsim models the paper's evaluation testbed: hosts with
// 2002-era CPU throughput (P4 1.7 GHz / 256 MB and PM 1.6 GHz / 512 MB)
// connected by 10 Mbps Ethernet, plus smart-space topology with gateways
// for inter-space migration (paper §3.2, Fig. 1).
//
// The simulator charges transfer and CPU costs to a vclock.Clock. With a
// Virtual clock this reproduces the paper's multi-second migrations in
// microseconds of wall time; with a Real clock it paces live demos.
// Deterministic jitter comes from a seeded PRNG so runs are reproducible.
package netsim

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"mdagent/internal/vclock"
)

// ErrHostDown is wrapped by routing errors when an endpoint of a transfer
// has been taken down by fault injection.
var ErrHostDown = errors.New("netsim: host down")

// ErrPartitioned is wrapped by routing errors when the two endpoints of a
// transfer sit on different sides of an injected partition.
var ErrPartitioned = errors.New("netsim: network partitioned")

// ErrLinkDown is wrapped by routing errors when the link between the two
// endpoints of a transfer has been severed by fault injection (SetLinkDown
// or a Flap schedule).
var ErrLinkDown = errors.New("netsim: link down")

// HostProfile describes the compute characteristics of a simulated host.
// Serialization throughput governs suspend/wrap cost; deserialization
// throughput governs resume/unwrap cost; the fixed overheads model the
// agent-platform bookkeeping that dominates small payloads.
type HostProfile struct {
	Name            string
	SerializeMBps   float64       // component wrap / snapshot throughput
	DeserializeMBps float64       // component unwrap / restore throughput
	FixedSuspend    time.Duration // constant suspend-side platform overhead
	FixedResume     time.Duration // constant resume-side platform overhead
	MemoryMB        int
}

// Pentium4_1700 approximates the paper's source host (P4 1.7 GHz, 256 MB).
func Pentium4_1700() HostProfile {
	return HostProfile{
		Name:            "P4-1.7GHz",
		SerializeMBps:   28,
		DeserializeMBps: 24,
		FixedSuspend:    55 * time.Millisecond,
		FixedResume:     120 * time.Millisecond,
		MemoryMB:        256,
	}
}

// PentiumM_1600 approximates the paper's destination host (PM 1.6 GHz, 512 MB).
func PentiumM_1600() HostProfile {
	return HostProfile{
		Name:            "PM-1.6GHz",
		SerializeMBps:   30,
		DeserializeMBps: 26,
		FixedSuspend:    50 * time.Millisecond,
		FixedResume:     110 * time.Millisecond,
		MemoryMB:        512,
	}
}

// LinkProfile describes a network link. The paper's testbed used a
// 10 Mbps Ethernet segment.
type LinkProfile struct {
	BandwidthMbps float64       // payload bandwidth in megabits per second
	Latency       time.Duration // one-way propagation + switching delay
	JitterFrac    float64       // deterministic jitter as a fraction of cost
}

// Ethernet10 returns the paper's 10 Mbps Ethernet link.
func Ethernet10() LinkProfile {
	return LinkProfile{BandwidthMbps: 10, Latency: 2 * time.Millisecond, JitterFrac: 0.03}
}

// Ethernet100 returns a 100 Mbps link, used by ablation benches.
func Ethernet100() LinkProfile {
	return LinkProfile{BandwidthMbps: 100, Latency: time.Millisecond, JitterFrac: 0.03}
}

// WLAN11 returns an 11 Mbps 802.11b-class link with higher latency,
// modeling the paper's handheld scenarios.
func WLAN11() LinkProfile {
	return LinkProfile{BandwidthMbps: 11, Latency: 8 * time.Millisecond, JitterFrac: 0.10}
}

// Host is a simulated machine placed in a smart space.
type Host struct {
	ID      string
	Space   string
	Profile HostProfile
	Gateway bool // gateways bridge spaces (paper Fig. 1: "Gateway Required")

	clock vclock.Clock // possibly skewed view of the network clock
}

// Clock returns the host's (possibly skewed) clock.
func (h *Host) Clock() vclock.Clock { return h.clock }

type edge struct{ a, b string }

func normEdge(a, b string) edge {
	if a > b {
		a, b = b, a
	}
	return edge{a, b}
}

// Network is the simulated topology: hosts grouped into spaces, links
// between hosts, and gateways bridging spaces.
type Network struct {
	clock vclock.Clock

	mu          sync.RWMutex
	hosts       map[string]*Host
	links       map[edge]LinkProfile
	defaultLink LinkProfile
	gatewayCost time.Duration // per gateway traversal (paper: inter-space requires gateway support)
	rng         *rand.Rand
	down        map[string]bool   // fault injection: crashed hosts
	partition   map[string]string // fault injection: host -> partition side
	linkDown    map[edge]bool     // fault injection: severed host pairs
}

// Option configures a Network.
type Option func(*Network)

// WithDefaultLink sets the link profile used between host pairs that have
// no explicit link.
func WithDefaultLink(l LinkProfile) Option {
	return func(n *Network) { n.defaultLink = l }
}

// WithGatewayCost sets the extra cost charged each time a transfer crosses
// a space gateway.
func WithGatewayCost(d time.Duration) Option {
	return func(n *Network) { n.gatewayCost = d }
}

// WithSeed seeds the deterministic jitter source.
func WithSeed(seed int64) Option {
	return func(n *Network) { n.rng = rand.New(rand.NewSource(seed)) }
}

// New creates a Network charging costs to clock.
func New(clock vclock.Clock, opts ...Option) *Network {
	n := &Network{
		clock:       clock,
		hosts:       make(map[string]*Host),
		links:       make(map[edge]LinkProfile),
		defaultLink: Ethernet10(),
		gatewayCost: 25 * time.Millisecond,
		rng:         rand.New(rand.NewSource(1)),
		down:        make(map[string]bool),
		partition:   make(map[string]string),
		linkDown:    make(map[edge]bool),
	}
	for _, o := range opts {
		o(n)
	}
	return n
}

// Clock returns the network's reference clock.
func (n *Network) Clock() vclock.Clock { return n.clock }

// AddHost places a host in a space. skew offsets the host's clock from the
// network reference clock, modeling unsynchronized machines (Fig. 7).
func (n *Network) AddHost(id, space string, profile HostProfile, skew time.Duration) (*Host, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.hosts[id]; ok {
		return nil, fmt.Errorf("netsim: host %q already exists", id)
	}
	h := &Host{
		ID:      id,
		Space:   space,
		Profile: profile,
		clock:   vclock.NewSkewed(n.clock, skew),
	}
	n.hosts[id] = h
	return h, nil
}

// AddGateway places a gateway host bridging its space to others.
func (n *Network) AddGateway(id, space string, profile HostProfile) (*Host, error) {
	h, err := n.AddHost(id, space, profile, 0)
	if err != nil {
		return nil, err
	}
	h.Gateway = true
	return h, nil
}

// SetLink installs an explicit link profile between two hosts.
func (n *Network) SetLink(a, b string, l LinkProfile) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.links[normEdge(a, b)] = l
}

// Host looks up a host by id.
func (n *Network) Host(id string) (*Host, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	h, ok := n.hosts[id]
	return h, ok
}

// Hosts returns the ids of all hosts, in unspecified order.
func (n *Network) Hosts() []string {
	n.mu.RLock()
	defer n.mu.RUnlock()
	ids := make([]string, 0, len(n.hosts))
	for id := range n.hosts {
		ids = append(ids, id)
	}
	return ids
}

func (n *Network) linkFor(a, b string) LinkProfile {
	if l, ok := n.links[normEdge(a, b)]; ok {
		return l
	}
	return n.defaultLink
}

// jitter returns cost perturbed by the link's deterministic jitter.
func (n *Network) jitter(cost time.Duration, frac float64) time.Duration {
	if frac <= 0 || cost <= 0 {
		return cost
	}
	// Uniform in [-frac, +frac].
	f := 1 + frac*(2*n.rng.Float64()-1)
	return time.Duration(float64(cost) * f)
}

// transferCost computes the one-hop cost of moving payload bytes across l.
func transferCost(l LinkProfile, bytes int64) time.Duration {
	if bytes < 0 {
		bytes = 0
	}
	bits := float64(bytes) * 8
	secs := bits / (l.BandwidthMbps * 1e6)
	return l.Latency + time.Duration(secs*float64(time.Second))
}

// Route describes the hop sequence a transfer takes.
type Route struct {
	Hops       []string // host ids including source and destination
	Gateways   int      // number of gateway traversals
	InterSpace bool
}

// SetHostDown injects (down=true) or repairs (down=false) a host crash:
// every transfer to or from a down host fails with ErrHostDown. The host's
// simulated processes keep running — only its network is severed — which
// models the paper testbed's machine becoming unreachable.
func (n *Network) SetHostDown(id string, down bool) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.hosts[id]; !ok {
		return fmt.Errorf("netsim: unknown host %q", id)
	}
	if down {
		n.down[id] = true
	} else {
		delete(n.down, id)
	}
	return nil
}

// HostDown reports whether a host is currently failed.
func (n *Network) HostDown(id string) bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.down[id]
}

// Partition splits the network: hosts named in groups can only reach hosts
// within their own group. Hosts in no group stay reachable from every
// group. It replaces any previous partition; call HealPartition to rejoin.
func (n *Network) Partition(groups ...[]string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.partition = make(map[string]string)
	for i, g := range groups {
		side := fmt.Sprintf("side-%d", i)
		for _, h := range g {
			n.partition[h] = side
		}
	}
}

// HealPartition removes any injected partition.
func (n *Network) HealPartition() {
	n.mu.Lock()
	n.partition = make(map[string]string)
	n.mu.Unlock()
}

// reachable checks fault-injection state; callers hold n.mu.
func (n *Network) reachable(from, to string) error {
	if n.down[from] {
		return fmt.Errorf("%w: %q", ErrHostDown, from)
	}
	if n.down[to] {
		return fmt.Errorf("%w: %q", ErrHostDown, to)
	}
	sa, sb := n.partition[from], n.partition[to]
	if sa != "" && sb != "" && sa != sb {
		return fmt.Errorf("%w: %q / %q", ErrPartitioned, from, to)
	}
	if n.linkDown[normEdge(from, to)] {
		return fmt.Errorf("%w: %q - %q", ErrLinkDown, from, to)
	}
	return nil
}

// SetLinkDown severs (down=true) or restores (down=false) the pairwise
// link between two hosts: transfers between exactly that pair fail with
// ErrLinkDown while every other path — including indirect routes through
// a common peer — stays up. It is the single-link analogue of Partition,
// modeling a flaky cable or a marginal wireless association.
func (n *Network) SetLinkDown(a, b string, down bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if down {
		n.linkDown[normEdge(a, b)] = true
	} else {
		delete(n.linkDown, normEdge(a, b))
	}
}

// LinkDown reports whether the a-b link is currently severed.
func (n *Network) LinkDown(a, b string) bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.linkDown[normEdge(a, b)]
}

// Flap starts a flapping-link fault schedule: the a-b link toggles
// down/up every period until the returned stop function is called, which
// also restores the link. The schedule runs on the wall clock — it drives
// the gossip and federation protocols, which run on real timers, not the
// simulated testbed clock.
func (n *Network) Flap(a, b string, period time.Duration) (stop func()) {
	stopCh := make(chan struct{})
	var once sync.Once
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(period)
		defer t.Stop()
		down := false
		for {
			select {
			case <-stopCh:
				return
			case <-t.C:
				down = !down
				n.SetLinkDown(a, b, down)
			}
		}
	}()
	return func() {
		once.Do(func() {
			close(stopCh)
			wg.Wait()
			n.SetLinkDown(a, b, false)
		})
	}
}

// RouteBetween computes the route from one host to another. Hosts in the
// same space connect directly; hosts in different spaces route through each
// space's gateway (paper Fig. 1: inter-space mobility requires gateways).
func (n *Network) RouteBetween(from, to string) (Route, error) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	src, ok := n.hosts[from]
	if !ok {
		return Route{}, fmt.Errorf("netsim: unknown source host %q", from)
	}
	dst, ok := n.hosts[to]
	if !ok {
		return Route{}, fmt.Errorf("netsim: unknown destination host %q", to)
	}
	if from != to {
		if err := n.reachable(from, to); err != nil {
			return Route{}, err
		}
	}
	if from == to {
		return Route{Hops: []string{from}}, nil
	}
	if src.Space == dst.Space {
		return Route{Hops: []string{from, to}}, nil
	}
	gwSrc := n.gatewayOf(src.Space)
	gwDst := n.gatewayOf(dst.Space)
	if gwSrc == nil || gwDst == nil {
		return Route{}, fmt.Errorf("netsim: no gateway between space %q and %q", src.Space, dst.Space)
	}
	hops := []string{from}
	gateways := 0
	if gwSrc.ID != from {
		hops = append(hops, gwSrc.ID)
	}
	gateways++
	if gwDst.ID != gwSrc.ID {
		hops = append(hops, gwDst.ID)
		gateways++
	}
	if gwDst.ID != to {
		hops = append(hops, to)
	}
	for _, hop := range hops {
		if n.down[hop] {
			return Route{}, fmt.Errorf("%w: gateway hop %q", ErrHostDown, hop)
		}
	}
	return Route{Hops: hops, Gateways: gateways, InterSpace: true}, nil
}

// gatewayOf returns any gateway in space; callers hold n.mu.
func (n *Network) gatewayOf(space string) *Host {
	for _, h := range n.hosts {
		if h.Space == space && h.Gateway {
			return h
		}
	}
	return nil
}

// Transfer charges the clock for moving payload bytes from one host to
// another and returns the charged duration and route taken.
func (n *Network) Transfer(from, to string, bytes int64) (time.Duration, Route, error) {
	route, err := n.RouteBetween(from, to)
	if err != nil {
		return 0, Route{}, err
	}
	var total time.Duration
	n.mu.Lock()
	for i := 0; i+1 < len(route.Hops); i++ {
		l := n.linkFor(route.Hops[i], route.Hops[i+1])
		total += n.jitter(transferCost(l, bytes), l.JitterFrac)
	}
	total += time.Duration(route.Gateways) * n.gatewayCost
	n.mu.Unlock()
	n.clock.Charge(total)
	return total, route, nil
}

// EstimateTransfer returns the nominal (jitter-free) cost of a transfer
// without charging the clock. Autonomous agents use it when reasoning about
// whether the "network condition is good" (paper Fig. 6, Rule 3).
func (n *Network) EstimateTransfer(from, to string, bytes int64) (time.Duration, error) {
	route, err := n.RouteBetween(from, to)
	if err != nil {
		return 0, err
	}
	n.mu.RLock()
	defer n.mu.RUnlock()
	var total time.Duration
	for i := 0; i+1 < len(route.Hops); i++ {
		total += transferCost(n.linkFor(route.Hops[i], route.Hops[i+1]), bytes)
	}
	total += time.Duration(route.Gateways) * n.gatewayCost
	return total, nil
}

// ResponseTime estimates the request/response latency between two hosts in
// milliseconds, the quantity the paper's Rule 3 compares against 1000 ms.
func (n *Network) ResponseTime(from, to string) (time.Duration, error) {
	// A small probe message both ways.
	oneWay, err := n.EstimateTransfer(from, to, 512)
	if err != nil {
		return 0, err
	}
	back, err := n.EstimateTransfer(to, from, 512)
	if err != nil {
		return 0, err
	}
	return oneWay + back, nil
}

// ChargeSerialize charges h's profile cost for wrapping payload bytes and
// returns the charged duration.
func (n *Network) ChargeSerialize(h *Host, bytes int64) time.Duration {
	cost := SerializeCost(h.Profile, bytes)
	n.clock.Charge(cost)
	return cost
}

// ChargeDeserialize charges h's profile cost for unwrapping payload bytes
// and returns the charged duration.
func (n *Network) ChargeDeserialize(h *Host, bytes int64) time.Duration {
	cost := DeserializeCost(h.Profile, bytes)
	n.clock.Charge(cost)
	return cost
}

// SerializeCost computes the CPU cost of wrapping payload bytes on a host
// with profile p: fixed platform overhead plus throughput-bound copy.
func SerializeCost(p HostProfile, bytes int64) time.Duration {
	if bytes < 0 {
		bytes = 0
	}
	secs := float64(bytes) / (p.SerializeMBps * 1e6)
	return p.FixedSuspend + time.Duration(secs*float64(time.Second))
}

// DeserializeCost computes the CPU cost of unwrapping payload bytes on a
// host with profile p.
func DeserializeCost(p HostProfile, bytes int64) time.Duration {
	if bytes < 0 {
		bytes = 0
	}
	secs := float64(bytes) / (p.DeserializeMBps * 1e6)
	return p.FixedResume + time.Duration(secs*float64(time.Second))
}
