package netsim

import (
	"errors"
	"testing"
	"time"

	"mdagent/internal/vclock"
)

func TestHostDownBlocksTransfers(t *testing.T) {
	n, _ := newTestNet(t)
	if _, _, err := n.Transfer("h1", "h2", 1024); err != nil {
		t.Fatalf("transfer before fault: %v", err)
	}
	if err := n.SetHostDown("h2", true); err != nil {
		t.Fatal(err)
	}
	if !n.HostDown("h2") {
		t.Fatal("HostDown(h2) = false after SetHostDown")
	}
	if _, _, err := n.Transfer("h1", "h2", 1024); !errors.Is(err, ErrHostDown) {
		t.Fatalf("transfer to down host: err = %v, want ErrHostDown", err)
	}
	if _, _, err := n.Transfer("h2", "h1", 1024); !errors.Is(err, ErrHostDown) {
		t.Fatalf("transfer from down host: err = %v, want ErrHostDown", err)
	}
	// Loopback on the down host itself still works: only its network died.
	if _, _, err := n.Transfer("h2", "h2", 1024); err != nil {
		t.Fatalf("loopback on down host: %v", err)
	}
	if err := n.SetHostDown("h2", false); err != nil {
		t.Fatal(err)
	}
	if _, _, err := n.Transfer("h1", "h2", 1024); err != nil {
		t.Fatalf("transfer after repair: %v", err)
	}
}

func TestSetHostDownUnknownHost(t *testing.T) {
	n, _ := newTestNet(t)
	if err := n.SetHostDown("nope", true); err == nil {
		t.Fatal("SetHostDown(unknown) did not error")
	}
}

func TestPartitionSplitsAndHeals(t *testing.T) {
	clk := vclock.NewVirtual(time.Unix(0, 0))
	n := New(clk)
	for _, id := range []string{"a1", "a2", "b1", "free"} {
		if _, err := n.AddHost(id, "lab", Pentium4_1700(), 0); err != nil {
			t.Fatal(err)
		}
	}
	n.Partition([]string{"a1", "a2"}, []string{"b1"})

	if _, _, err := n.Transfer("a1", "a2", 64); err != nil {
		t.Fatalf("same-side transfer: %v", err)
	}
	if _, _, err := n.Transfer("a1", "b1", 64); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("cross-partition transfer: err = %v, want ErrPartitioned", err)
	}
	// Hosts outside every group remain reachable from both sides.
	if _, _, err := n.Transfer("a1", "free", 64); err != nil {
		t.Fatalf("group->ungrouped transfer: %v", err)
	}
	if _, _, err := n.Transfer("b1", "free", 64); err != nil {
		t.Fatalf("other-group->ungrouped transfer: %v", err)
	}

	n.HealPartition()
	if _, _, err := n.Transfer("a1", "b1", 64); err != nil {
		t.Fatalf("transfer after heal: %v", err)
	}
}

func TestDownGatewayBlocksInterSpaceRoute(t *testing.T) {
	clk := vclock.NewVirtual(time.Unix(0, 0))
	n := New(clk)
	if _, err := n.AddHost("h1", "sp1", Pentium4_1700(), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddHost("h2", "sp2", PentiumM_1600(), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddGateway("gw1", "sp1", Pentium4_1700()); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddGateway("gw2", "sp2", Pentium4_1700()); err != nil {
		t.Fatal(err)
	}
	if _, err := n.RouteBetween("h1", "h2"); err != nil {
		t.Fatalf("inter-space route before fault: %v", err)
	}
	if err := n.SetHostDown("gw1", true); err != nil {
		t.Fatal(err)
	}
	if _, err := n.RouteBetween("h1", "h2"); !errors.Is(err, ErrHostDown) {
		t.Fatalf("route through down gateway: err = %v, want ErrHostDown", err)
	}
}

func TestLinkDownBlocksOnlyThatPair(t *testing.T) {
	clk := vclock.NewVirtual(time.Unix(0, 0))
	n := New(clk)
	for _, id := range []string{"h1", "h2", "h3"} {
		if _, err := n.AddHost(id, "lab", Pentium4_1700(), 0); err != nil {
			t.Fatal(err)
		}
	}
	n.SetLinkDown("h1", "h2", true)
	if !n.LinkDown("h1", "h2") || !n.LinkDown("h2", "h1") {
		t.Fatal("LinkDown not symmetric")
	}
	if _, _, err := n.Transfer("h1", "h2", 64); !errors.Is(err, ErrLinkDown) {
		t.Fatalf("transfer over severed link: err = %v, want ErrLinkDown", err)
	}
	if _, _, err := n.Transfer("h2", "h1", 64); !errors.Is(err, ErrLinkDown) {
		t.Fatalf("reverse transfer over severed link: err = %v, want ErrLinkDown", err)
	}
	// The rest of the mesh is untouched: both endpoints reach h3.
	if _, _, err := n.Transfer("h1", "h3", 64); err != nil {
		t.Fatalf("h1->h3 with h1-h2 severed: %v", err)
	}
	if _, _, err := n.Transfer("h3", "h2", 64); err != nil {
		t.Fatalf("h3->h2 with h1-h2 severed: %v", err)
	}
	n.SetLinkDown("h1", "h2", false)
	if _, _, err := n.Transfer("h1", "h2", 64); err != nil {
		t.Fatalf("transfer after restore: %v", err)
	}
}

func TestFlapTogglesAndStops(t *testing.T) {
	clk := vclock.NewVirtual(time.Unix(0, 0))
	n := New(clk)
	for _, id := range []string{"h1", "h2"} {
		if _, err := n.AddHost(id, "lab", Pentium4_1700(), 0); err != nil {
			t.Fatal(err)
		}
	}
	stop := n.Flap("h1", "h2", time.Millisecond)
	// The schedule must produce both states within a generous window.
	sawDown, sawUp := false, false
	deadline := time.Now().Add(5 * time.Second)
	for !(sawDown && sawUp) {
		if n.LinkDown("h1", "h2") {
			sawDown = true
		} else if sawDown {
			sawUp = true
		}
		if time.Now().After(deadline) {
			t.Fatalf("flap never toggled (down=%v up-after-down=%v)", sawDown, sawUp)
		}
		time.Sleep(100 * time.Microsecond)
	}
	// Stop restores the link and is idempotent.
	stop()
	stop()
	if n.LinkDown("h1", "h2") {
		t.Fatal("link still down after stop")
	}
	if _, _, err := n.Transfer("h1", "h2", 64); err != nil {
		t.Fatalf("transfer after flap stop: %v", err)
	}
}
