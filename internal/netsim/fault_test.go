package netsim

import (
	"errors"
	"testing"
	"time"

	"mdagent/internal/vclock"
)

func TestHostDownBlocksTransfers(t *testing.T) {
	n, _ := newTestNet(t)
	if _, _, err := n.Transfer("h1", "h2", 1024); err != nil {
		t.Fatalf("transfer before fault: %v", err)
	}
	if err := n.SetHostDown("h2", true); err != nil {
		t.Fatal(err)
	}
	if !n.HostDown("h2") {
		t.Fatal("HostDown(h2) = false after SetHostDown")
	}
	if _, _, err := n.Transfer("h1", "h2", 1024); !errors.Is(err, ErrHostDown) {
		t.Fatalf("transfer to down host: err = %v, want ErrHostDown", err)
	}
	if _, _, err := n.Transfer("h2", "h1", 1024); !errors.Is(err, ErrHostDown) {
		t.Fatalf("transfer from down host: err = %v, want ErrHostDown", err)
	}
	// Loopback on the down host itself still works: only its network died.
	if _, _, err := n.Transfer("h2", "h2", 1024); err != nil {
		t.Fatalf("loopback on down host: %v", err)
	}
	if err := n.SetHostDown("h2", false); err != nil {
		t.Fatal(err)
	}
	if _, _, err := n.Transfer("h1", "h2", 1024); err != nil {
		t.Fatalf("transfer after repair: %v", err)
	}
}

func TestSetHostDownUnknownHost(t *testing.T) {
	n, _ := newTestNet(t)
	if err := n.SetHostDown("nope", true); err == nil {
		t.Fatal("SetHostDown(unknown) did not error")
	}
}

func TestPartitionSplitsAndHeals(t *testing.T) {
	clk := vclock.NewVirtual(time.Unix(0, 0))
	n := New(clk)
	for _, id := range []string{"a1", "a2", "b1", "free"} {
		if _, err := n.AddHost(id, "lab", Pentium4_1700(), 0); err != nil {
			t.Fatal(err)
		}
	}
	n.Partition([]string{"a1", "a2"}, []string{"b1"})

	if _, _, err := n.Transfer("a1", "a2", 64); err != nil {
		t.Fatalf("same-side transfer: %v", err)
	}
	if _, _, err := n.Transfer("a1", "b1", 64); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("cross-partition transfer: err = %v, want ErrPartitioned", err)
	}
	// Hosts outside every group remain reachable from both sides.
	if _, _, err := n.Transfer("a1", "free", 64); err != nil {
		t.Fatalf("group->ungrouped transfer: %v", err)
	}
	if _, _, err := n.Transfer("b1", "free", 64); err != nil {
		t.Fatalf("other-group->ungrouped transfer: %v", err)
	}

	n.HealPartition()
	if _, _, err := n.Transfer("a1", "b1", 64); err != nil {
		t.Fatalf("transfer after heal: %v", err)
	}
}

func TestDownGatewayBlocksInterSpaceRoute(t *testing.T) {
	clk := vclock.NewVirtual(time.Unix(0, 0))
	n := New(clk)
	if _, err := n.AddHost("h1", "sp1", Pentium4_1700(), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddHost("h2", "sp2", PentiumM_1600(), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddGateway("gw1", "sp1", Pentium4_1700()); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddGateway("gw2", "sp2", Pentium4_1700()); err != nil {
		t.Fatal(err)
	}
	if _, err := n.RouteBetween("h1", "h2"); err != nil {
		t.Fatalf("inter-space route before fault: %v", err)
	}
	if err := n.SetHostDown("gw1", true); err != nil {
		t.Fatal(err)
	}
	if _, err := n.RouteBetween("h1", "h2"); !errors.Is(err, ErrHostDown) {
		t.Fatalf("route through down gateway: err = %v, want ErrHostDown", err)
	}
}
