package netsim

import (
	"strings"
	"testing"
	"testing/quick"
	"time"

	"mdagent/internal/vclock"
)

func newTestNet(t *testing.T) (*Network, *vclock.Virtual) {
	t.Helper()
	clk := vclock.NewVirtual(time.Unix(0, 0))
	n := New(clk, WithSeed(7))
	mustAdd := func(id, space string, p HostProfile, skew time.Duration) {
		t.Helper()
		if _, err := n.AddHost(id, space, p, skew); err != nil {
			t.Fatalf("AddHost(%s): %v", id, err)
		}
	}
	mustAdd("h1", "lab", Pentium4_1700(), 0)
	mustAdd("h2", "lab", PentiumM_1600(), 3*time.Second)
	return n, clk
}

func TestAddHostDuplicate(t *testing.T) {
	n, _ := newTestNet(t)
	if _, err := n.AddHost("h1", "lab", Pentium4_1700(), 0); err == nil {
		t.Fatal("duplicate AddHost succeeded, want error")
	}
}

func TestHostLookup(t *testing.T) {
	n, _ := newTestNet(t)
	h, ok := n.Host("h2")
	if !ok {
		t.Fatal("Host(h2) not found")
	}
	if h.Space != "lab" || h.Profile.Name != "PM-1.6GHz" {
		t.Fatalf("unexpected host: %+v", h)
	}
	if _, ok := n.Host("nope"); ok {
		t.Fatal("Host(nope) found, want miss")
	}
}

func TestIntraSpaceRoute(t *testing.T) {
	n, _ := newTestNet(t)
	r, err := n.RouteBetween("h1", "h2")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Hops) != 2 || r.InterSpace || r.Gateways != 0 {
		t.Fatalf("route = %+v, want direct 2-hop intra-space", r)
	}
}

func TestSelfRoute(t *testing.T) {
	n, _ := newTestNet(t)
	r, err := n.RouteBetween("h1", "h1")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Hops) != 1 {
		t.Fatalf("self route hops = %v", r.Hops)
	}
	d, _, err := n.Transfer("h1", "h1", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Fatalf("self transfer cost = %v, want 0", d)
	}
}

func TestInterSpaceRequiresGateway(t *testing.T) {
	n, _ := newTestNet(t)
	if _, err := n.AddHost("h3", "meeting-room", PentiumM_1600(), 0); err != nil {
		t.Fatal(err)
	}
	_, err := n.RouteBetween("h1", "h3")
	if err == nil || !strings.Contains(err.Error(), "gateway") {
		t.Fatalf("err = %v, want gateway error", err)
	}
	// Paper Fig. 1: inter-space migration requires gateway support.
	if _, err := n.AddGateway("gw-lab", "lab", Pentium4_1700()); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddGateway("gw-meet", "meeting-room", Pentium4_1700()); err != nil {
		t.Fatal(err)
	}
	r, err := n.RouteBetween("h1", "h3")
	if err != nil {
		t.Fatal(err)
	}
	if !r.InterSpace || r.Gateways != 2 {
		t.Fatalf("route = %+v, want inter-space via 2 gateways", r)
	}
	if r.Hops[0] != "h1" || r.Hops[len(r.Hops)-1] != "h3" {
		t.Fatalf("route endpoints wrong: %v", r.Hops)
	}
}

func TestUnknownHostErrors(t *testing.T) {
	n, _ := newTestNet(t)
	if _, err := n.RouteBetween("ghost", "h1"); err == nil {
		t.Fatal("unknown source accepted")
	}
	if _, err := n.RouteBetween("h1", "ghost"); err == nil {
		t.Fatal("unknown destination accepted")
	}
	if _, _, err := n.Transfer("h1", "ghost", 10); err == nil {
		t.Fatal("transfer to unknown host accepted")
	}
}

func TestTransferChargesClock(t *testing.T) {
	n, clk := newTestNet(t)
	before := clk.Now()
	d, _, err := n.Transfer("h1", "h2", 1<<20) // 1 MiB over 10 Mbps
	if err != nil {
		t.Fatal(err)
	}
	if got := clk.Now().Sub(before); got != d {
		t.Fatalf("clock advanced %v, Transfer reported %v", got, d)
	}
	// 1 MiB over 10 Mbps is ~839 ms nominal; allow jitter of ±3% + latency.
	if d < 700*time.Millisecond || d > time.Second {
		t.Fatalf("1MiB/10Mbps transfer = %v, want ~839ms", d)
	}
}

func TestEstimateDoesNotCharge(t *testing.T) {
	n, clk := newTestNet(t)
	before := clk.Now()
	est, err := n.EstimateTransfer("h1", "h2", 5<<20)
	if err != nil {
		t.Fatal(err)
	}
	if est <= 0 {
		t.Fatalf("estimate = %v, want > 0", est)
	}
	if !clk.Now().Equal(before) {
		t.Fatal("EstimateTransfer charged the clock")
	}
}

func TestTransferScalesWithBytes(t *testing.T) {
	n, _ := newTestNet(t)
	small, err := n.EstimateTransfer("h1", "h2", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	large, err := n.EstimateTransfer("h1", "h2", 8<<20)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(large) / float64(small)
	if ratio < 7.5 || ratio > 8.5 {
		t.Fatalf("8x payload cost ratio = %.2f, want ~8 (bandwidth-bound)", ratio)
	}
}

func TestResponseTimeUnderPaperThreshold(t *testing.T) {
	// Paper Rule 3 moves only when responseTime < 1000 ms. On the testbed
	// LAN a small probe must come in well under that.
	n, _ := newTestNet(t)
	rt, err := n.ResponseTime("h1", "h2")
	if err != nil {
		t.Fatal(err)
	}
	if rt <= 0 || rt >= time.Second {
		t.Fatalf("LAN response time = %v, want (0, 1s)", rt)
	}
}

func TestSerializeCostModel(t *testing.T) {
	p := Pentium4_1700()
	zero := SerializeCost(p, 0)
	if zero != p.FixedSuspend {
		t.Fatalf("zero-byte serialize = %v, want fixed %v", zero, p.FixedSuspend)
	}
	mb := SerializeCost(p, 28e6) // exactly one second of throughput
	want := p.FixedSuspend + time.Second
	if diff := mb - want; diff < -time.Millisecond || diff > time.Millisecond {
		t.Fatalf("28MB serialize = %v, want ~%v", mb, want)
	}
	if got := SerializeCost(p, -5); got != p.FixedSuspend {
		t.Fatalf("negative bytes = %v, want fixed", got)
	}
}

func TestChargeHelpers(t *testing.T) {
	n, clk := newTestNet(t)
	h, _ := n.Host("h1")
	before := clk.Now()
	d1 := n.ChargeSerialize(h, 1<<20)
	d2 := n.ChargeDeserialize(h, 1<<20)
	if got := clk.Now().Sub(before); got != d1+d2 {
		t.Fatalf("clock advanced %v, want %v", got, d1+d2)
	}
	if d2 <= d1-h.Profile.FixedResume+h.Profile.FixedSuspend {
		// Deserialize throughput is lower, so per-byte cost must be higher.
		t.Fatalf("deserialize (%v) should cost more per byte than serialize (%v)", d2, d1)
	}
}

func TestHostClockSkew(t *testing.T) {
	n, clk := newTestNet(t)
	h2, _ := n.Host("h2")
	if got := h2.Clock().Now().Sub(clk.Now()); got != 3*time.Second {
		t.Fatalf("h2 skew = %v, want 3s", got)
	}
}

func TestJitterDeterministic(t *testing.T) {
	run := func() time.Duration {
		clk := vclock.NewVirtual(time.Unix(0, 0))
		n := New(clk, WithSeed(42))
		if _, err := n.AddHost("a", "s", Pentium4_1700(), 0); err != nil {
			t.Fatal(err)
		}
		if _, err := n.AddHost("b", "s", PentiumM_1600(), 0); err != nil {
			t.Fatal(err)
		}
		d, _, err := n.Transfer("a", "b", 3<<20)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed gave different costs: %v vs %v", a, b)
	}
}

// TestTransferMonotonicInBytes: nominal transfer estimates never decrease
// as payload grows.
func TestTransferMonotonicInBytes(t *testing.T) {
	n, _ := newTestNet(t)
	f := func(a, b uint32) bool {
		lo, hi := int64(a), int64(b)
		if lo > hi {
			lo, hi = hi, lo
		}
		el, err1 := n.EstimateTransfer("h1", "h2", lo)
		eh, err2 := n.EstimateTransfer("h1", "h2", hi)
		return err1 == nil && err2 == nil && el <= eh
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCustomLinkOverridesDefault(t *testing.T) {
	n, _ := newTestNet(t)
	slow, err := n.EstimateTransfer("h1", "h2", 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	n.SetLink("h1", "h2", Ethernet100())
	fast, err := n.EstimateTransfer("h1", "h2", 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	if fast*5 > slow {
		t.Fatalf("100Mbps (%v) not ~10x faster than 10Mbps (%v)", fast, slow)
	}
}

func TestHostsList(t *testing.T) {
	n, _ := newTestNet(t)
	ids := n.Hosts()
	if len(ids) != 2 {
		t.Fatalf("Hosts() = %v, want 2 entries", ids)
	}
}
