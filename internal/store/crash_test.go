package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

// Crash-recovery scenarios (satellite: torn final frame, torn frame at
// a segment boundary, partially-written blob, replay-after-compact).
// Each simulates the on-disk state a crash can leave and asserts the
// store recovers to the last acknowledged state.

// TestCrashTornFinalFrame cuts bytes off the end of the newest segment
// — the classic mid-write crash. Everything before the torn frame
// survives; the torn frame (never acknowledged under SyncAlways) is
// truncated away, and the store keeps appending cleanly afterwards.
func TestCrashTornFinalFrame(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db")
	s, err := Open(path, WithSyncPolicy(SyncAlways))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), bytes.Repeat([]byte{byte(i)}, 100)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	seg := newestSegment(t, path)
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, fi.Size()-37); err != nil { // tear the last frame mid-body
		t.Fatal(err)
	}

	s2, err := Open(path)
	if err != nil {
		t.Fatalf("Open after torn tail: %v", err)
	}
	for i := 0; i < 9; i++ { // k9's frame was torn; k0..k8 must survive
		if _, err := s2.Get(fmt.Sprintf("k%d", i)); err != nil {
			t.Fatalf("k%d lost to an unrelated torn frame: %v", i, err)
		}
	}
	if err := s2.Put("post", []byte("crash")); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if v, err := s3.Get("post"); err != nil || string(v) != "crash" {
		t.Fatalf("append after truncated reopen lost: %q, %v", v, err)
	}
}

// TestCrashCorruptionAtSegmentBoundary flips a byte inside an old,
// sealed segment. Replay skips the rest of that segment and continues
// with the later ones — every key whose live write is in a later
// segment survives.
func TestCrashCorruptionAtSegmentBoundary(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db")
	s, err := Open(path, WithSegmentBytes(2<<10), WithCompactMinDead(-1))
	if err != nil {
		t.Fatal(err)
	}
	val := bytes.Repeat([]byte("v"), 300)
	// Two full rounds: the second round's writes land in later segments
	// than the first round's, so every live entry postdates segment 1.
	for round := 0; round < 2; round++ {
		for i := 0; i < 20; i++ {
			if err := s.Put(fmt.Sprintf("k%02d", i), append(val, byte(round))); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	segs, _ := filepath.Glob(filepath.Join(path, "wal-*.seg"))
	sort.Strings(segs)
	if len(segs) < 3 {
		t.Fatalf("want >=3 segments, got %d", len(segs))
	}
	// Corrupt the middle of the first (sealed) segment.
	f, err := os.OpenFile(segs[0], os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	fi, _ := f.Stat()
	if _, err := f.WriteAt([]byte{0xFF}, fi.Size()/2); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := Open(path)
	if err != nil {
		t.Fatalf("Open with corrupt sealed segment: %v", err)
	}
	defer s2.Close()
	for i := 0; i < 20; i++ {
		k := fmt.Sprintf("k%02d", i)
		v, err := s2.Get(k)
		if err != nil || v[len(v)-1] != 1 {
			t.Fatalf("Get(%s) after skipping corrupt segment = len %d, %v", k, len(v), err)
		}
	}
}

// TestCrashPartialBlob tears the blob log mid-value. The reference's
// CRC/extent check drops the damaged key at replay; inline keys and
// intact blobs are untouched.
func TestCrashPartialBlob(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db")
	s, err := Open(path, WithBlobThreshold(256))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("inline", []byte("safe")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("blob-ok", bytes.Repeat([]byte("A"), 1024)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("blob-torn", bytes.Repeat([]byte("Z"), 1024)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	blobs, _ := filepath.Glob(filepath.Join(path, "blob-*.seg"))
	sort.Strings(blobs)
	last := blobs[len(blobs)-1]
	fi, _ := os.Stat(last)
	if err := os.Truncate(last, fi.Size()-100); err != nil { // tear blob-torn's bytes
		t.Fatal(err)
	}

	s2, err := Open(path, WithBlobThreshold(256))
	if err != nil {
		t.Fatalf("Open with torn blob: %v", err)
	}
	defer s2.Close()
	if v, err := s2.Get("inline"); err != nil || string(v) != "safe" {
		t.Fatalf("inline key lost: %q, %v", v, err)
	}
	if v, err := s2.Get("blob-ok"); err != nil || len(v) != 1024 {
		t.Fatalf("intact blob lost: %d, %v", len(v), err)
	}
	if _, err := s2.Get("blob-torn"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("torn blob surfaced instead of being dropped: %v", err)
	}
}

// TestCrashReplayAfterCompact crashes (torn tail) after an incremental
// compaction pass and verifies the re-emitted entries replay correctly.
func TestCrashReplayAfterCompact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db")
	s, err := Open(path, WithSegmentBytes(2<<10), WithBlobThreshold(512), WithCompactMinDead(-1))
	if err != nil {
		t.Fatal(err)
	}
	model := make(map[string][]byte)
	for i := 0; i < 30; i++ {
		k := fmt.Sprintf("k%02d", i%10)
		v := bytes.Repeat([]byte{byte(i)}, 100+i*20) // some route to the blob log
		if err := s.Put(k, v); err != nil {
			t.Fatal(err)
		}
		model[k] = v
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("after", []byte("compact")); err != nil {
		t.Fatal(err)
	}
	model["after"] = []byte("compact")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash: tear the newest segment's tail (garbage append).
	f, err := os.OpenFile(newestSegment(t, path), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x7F, 0x01, 0x02}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := Open(path, WithBlobThreshold(512))
	if err != nil {
		t.Fatalf("Open after compact+crash: %v", err)
	}
	defer s2.Close()
	if s2.Len() != len(model) {
		t.Fatalf("Len = %d, want %d", s2.Len(), len(model))
	}
	for k, want := range model {
		got, err := s2.Get(k)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("Get(%s) = len %d, %v (want len %d)", k, len(got), err, len(want))
		}
	}
}
