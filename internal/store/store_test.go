package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestMemoryPutGetDelete(t *testing.T) {
	s := OpenMemory()
	if err := s.Put("k1", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("k1")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "v1" {
		t.Fatalf("Get = %q", got)
	}
	if err := s.Delete("k1"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("k1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after delete = %v, want ErrNotFound", err)
	}
	if err := s.Delete("never-existed"); err != nil {
		t.Fatalf("Delete missing = %v, want nil", err)
	}
}

// The ownership contract: Get returns the store's buffer, and the store
// never mutates a stored buffer in place — a slice returned by Get
// stays stable across later overwrites of the same key.
func TestGetStableAcrossOverwrite(t *testing.T) {
	s := OpenMemory()
	if err := s.Put("k", []byte("abc")); err != nil {
		t.Fatal(err)
	}
	v1, _ := s.Get("k")
	if err := s.Put("k", []byte("xyz")); err != nil {
		t.Fatal(err)
	}
	if string(v1) != "abc" {
		t.Fatalf("earlier Get result mutated by overwrite: %q", v1)
	}
	v2, _ := s.Get("k")
	if string(v2) != "xyz" {
		t.Fatalf("Get after overwrite = %q", v2)
	}
}

func TestPutCopiesInput(t *testing.T) {
	s := OpenMemory()
	buf := []byte("abc")
	if err := s.Put("k", buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 'X'
	v, _ := s.Get("k")
	if string(v) != "abc" {
		t.Fatalf("stored value aliased caller buffer: %q", v)
	}
}

func TestKeysPrefixSorted(t *testing.T) {
	s := OpenMemory()
	for _, k := range []string{"app/zeta", "app/alpha", "res/one"} {
		if err := s.Put(k, nil); err != nil {
			t.Fatal(err)
		}
	}
	got := s.Keys("app/")
	if len(got) != 2 || got[0] != "app/alpha" || got[1] != "app/zeta" {
		t.Fatalf("Keys = %v", got)
	}
	if n := s.Len(); n != 3 {
		t.Fatalf("Len = %d", n)
	}
}

// Keys must merge correctly across many shards with interleaved
// lexical order.
func TestKeysMergesAcrossShards(t *testing.T) {
	s := OpenMemory(WithShards(8))
	var want []string
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("p/%03d", i)
		want = append(want, k)
		if err := s.Put(k, nil); err != nil {
			t.Fatal(err)
		}
	}
	got := s.Keys("p/")
	if len(got) != len(want) {
		t.Fatalf("Keys len = %d, want %d", len(got), len(want))
	}
	if !sort.StringsAreSorted(got) {
		t.Fatal("Keys not sorted")
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Keys[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestScanVisitsSortedWithValues(t *testing.T) {
	s := OpenMemory()
	for i := 0; i < 20; i++ {
		if err := s.Put(fmt.Sprintf("s/%02d", i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Put("other", []byte("x")); err != nil {
		t.Fatal(err)
	}
	var keys []string
	err := s.Scan("s/", func(k string, v []byte) error {
		keys = append(keys, k)
		want := byte(len(keys) - 1)
		if len(v) != 1 || v[0] != want {
			return fmt.Errorf("Scan(%s) = %v, want [%d]", k, v, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 20 || !sort.StringsAreSorted(keys) {
		t.Fatalf("Scan keys = %v", keys)
	}
}

func TestDurabilityAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "reg.log")
	s1, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Put("a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := s1.Put("b", []byte("2")); err != nil {
		t.Fatal(err)
	}
	if err := s1.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, err := s2.Get("a"); !errors.Is(err, ErrNotFound) {
		t.Fatal("deleted key resurrected after reopen")
	}
	v, err := s2.Get("b")
	if err != nil || string(v) != "2" {
		t.Fatalf("Get(b) = %q, %v", v, err)
	}
}

func TestMultiSessionAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "reg.log")
	for i := 0; i < 3; i++ {
		s, err := Open(path)
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
		if err := s.Put(fmt.Sprintf("k%d", i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Len() != 3 {
		t.Fatalf("Len after 3 sessions = %d, want 3", s.Len())
	}
}

// newestSegment returns the path of the highest-numbered WAL segment in
// a store directory.
func newestSegment(t *testing.T, dir string) string {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(names) == 0 {
		t.Fatalf("no wal segments in %s (err=%v)", dir, err)
	}
	sort.Strings(names)
	return names[len(names)-1]
}

func TestTornFinalRecordIgnored(t *testing.T) {
	path := filepath.Join(t.TempDir(), "reg.log")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("good", []byte("ok")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-write: append a frame header claiming more
	// bytes than present.
	f, err := os.OpenFile(newestSegment(t, path), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{200, 1, 0xde, 0xad}); err != nil { // uvarint 200, then garbage
		t.Fatal(err)
	}
	f.Close()

	s2, err := Open(path)
	if err != nil {
		t.Fatalf("Open with torn tail: %v", err)
	}
	defer s2.Close()
	v, err := s2.Get("good")
	if err != nil || string(v) != "ok" {
		t.Fatalf("good record lost: %q, %v", v, err)
	}
	if s2.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s2.Len())
	}
}

func TestCompactShrinksAndPreserves(t *testing.T) {
	path := filepath.Join(t.TempDir(), "reg.log")
	// Small segments so the overwrites span several, with
	// auto-compaction off to make the explicit Compact observable.
	s, err := Open(path, WithSegmentBytes(16<<10), WithCompactMinDead(-1))
	if err != nil {
		t.Fatal(err)
	}
	big := bytes.Repeat([]byte("x"), 1024)
	for i := 0; i < 200; i++ {
		if err := s.Put("hot", big); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Put("cold", []byte("keep")); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	before := s.DiskUsage()
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	after := s.DiskUsage()
	if after >= before {
		t.Fatalf("compact did not shrink: %d -> %d", before, after)
	}
	// Post-compact appends must still replay.
	if err := s.Put("post", []byte("compact")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for k, want := range map[string]string{"hot": string(big), "cold": "keep", "post": "compact"} {
		v, err := s2.Get(k)
		if err != nil || string(v) != want {
			t.Fatalf("after compact+reopen, Get(%s) = %v, %v", k, len(v), err)
		}
	}
}

func TestMemoryStoreNoopDurabilityCalls(t *testing.T) {
	s := OpenMemory()
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := OpenMemory()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				key := fmt.Sprintf("w%d-%d", w, i)
				if err := s.Put(key, []byte{byte(i)}); err != nil {
					t.Error(err)
					return
				}
				if _, err := s.Get(key); err != nil {
					t.Error(err)
					return
				}
				s.Keys("w")
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != 800 {
		t.Fatalf("Len = %d, want 800", s.Len())
	}
}

func TestConcurrentDurableWriters(t *testing.T) {
	path := filepath.Join(t.TempDir(), "reg.log")
	s, err := Open(path, WithSegmentBytes(32<<10))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("w%d-%d", w, i)
				if err := s.Put(key, bytes.Repeat([]byte{byte(i)}, 64)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 1600 {
		t.Fatalf("Len after replay = %d, want 1600", s2.Len())
	}
}

// Satellite (a): Sync must not block readers — the flush runs on the
// committer with no index locks held.
func TestSyncDoesNotBlockReaders(t *testing.T) {
	path := filepath.Join(t.TempDir(), "reg.log")
	s, err := Open(path, WithSyncPolicy(SyncNever))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}

	var once sync.Once
	entered := make(chan struct{})
	release := make(chan struct{})
	hook := func() {
		once.Do(func() { close(entered) })
		<-release
	}
	s.wal.testHookFsync.Store(&hook)
	defer close(release)

	syncDone := make(chan error, 1)
	go func() { syncDone <- s.Sync() }()
	<-entered // the committer is now stuck inside the "disk flush"

	readDone := make(chan struct{})
	go func() {
		defer close(readDone)
		if v, err := s.Get("k"); err != nil || string(v) != "v" {
			t.Errorf("Get during sync = %q, %v", v, err)
		}
		if ks := s.Keys(""); len(ks) != 1 {
			t.Errorf("Keys during sync = %v", ks)
		}
		if n := s.Len(); n != 1 {
			t.Errorf("Len during sync = %d", n)
		}
	}()
	select {
	case <-readDone:
	case <-time.After(5 * time.Second):
		t.Fatal("reads blocked while Sync was flushing")
	}
	release <- struct{}{} // let the stuck flush finish
	if err := <-syncDone; err != nil {
		t.Fatalf("Sync = %v", err)
	}
}

// Large values route to the blob log and survive reopen.
func TestBlobRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "reg.log")
	s, err := Open(path, WithBlobThreshold(256))
	if err != nil {
		t.Fatal(err)
	}
	small := []byte("inline")
	big := bytes.Repeat([]byte("B"), 4096)
	if err := s.Put("small", small); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("big", big); err != nil {
		t.Fatal(err)
	}
	if v, err := s.Get("big"); err != nil || !bytes.Equal(v, big) {
		t.Fatalf("Get(big) = %d bytes, %v", len(v), err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(path, WithBlobThreshold(256))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if v, err := s2.Get("big"); err != nil || !bytes.Equal(v, big) {
		t.Fatalf("Get(big) after reopen = %d bytes, %v", len(v), err)
	}
	if v, err := s2.Get("small"); err != nil || !bytes.Equal(v, small) {
		t.Fatalf("Get(small) after reopen = %q, %v", v, err)
	}
	if blobs, _ := filepath.Glob(filepath.Join(path, "blob-*.seg")); len(blobs) == 0 {
		t.Fatal("no blob segment written for a large value")
	}
}

// Overwritten blobs are garbage-collected with compaction once their
// segment seals, and survivors stay readable.
func TestBlobGC(t *testing.T) {
	path := filepath.Join(t.TempDir(), "reg.log")
	s, err := Open(path,
		WithBlobThreshold(256),
		func(o *Options) { o.BlobSegmentBytes = 8 << 10 },
		WithCompactMinDead(-1))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	big := bytes.Repeat([]byte("B"), 4096)
	// Overwrite one key enough times to seal several blob segments.
	for i := 0; i < 20; i++ {
		if err := s.Put("snap", append(big, byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Put("keep", bytes.Repeat([]byte("K"), 1024)); err != nil {
		t.Fatal(err)
	}
	before, _ := filepath.Glob(filepath.Join(path, "blob-*.seg"))
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	after, _ := filepath.Glob(filepath.Join(path, "blob-*.seg"))
	if len(after) >= len(before) {
		t.Fatalf("blob GC removed nothing: %d -> %d segments", len(before), len(after))
	}
	if v, err := s.Get("snap"); err != nil || v[len(v)-1] != 19 {
		t.Fatalf("live blob lost after GC: %v, %v", len(v), err)
	}
	if v, err := s.Get("keep"); err != nil || len(v) != 1024 {
		t.Fatalf("keep lost after GC: %d, %v", len(v), err)
	}
}

// A pre-PR-8 single-file gob log is migrated into the engine layout.
func TestLegacyMigration(t *testing.T) {
	path := filepath.Join(t.TempDir(), "reg.log")
	lg, err := OpenLegacy(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := lg.Put("a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := lg.Put("b", []byte("2")); err != nil {
		t.Fatal(err)
	}
	if err := lg.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}

	s, err := Open(path)
	if err != nil {
		t.Fatalf("Open over legacy log: %v", err)
	}
	if _, err := s.Get("a"); !errors.Is(err, ErrNotFound) {
		t.Fatal("legacy-deleted key resurrected")
	}
	if v, err := s.Get("b"); err != nil || string(v) != "2" {
		t.Fatalf("Get(b) = %q, %v", v, err)
	}
	if err := s.Put("c", []byte("3")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(path); err != nil || !fi.IsDir() {
		t.Fatalf("store path not a directory after migration: %v", err)
	}
	if _, err := os.Stat(path + ".legacy"); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("parked legacy file not removed after migration")
	}
	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 2 {
		t.Fatalf("Len after migration reopen = %d, want 2", s2.Len())
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for in, want := range map[string]SyncPolicy{
		"": SyncInterval, "interval": SyncInterval,
		"always": SyncAlways, "Never": SyncNever,
	} {
		got, err := ParseSyncPolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseSyncPolicy("bogus"); err == nil {
		t.Fatal("ParseSyncPolicy(bogus) did not error")
	}
}

// Property: a durable store replayed from disk equals the in-memory
// model, across every sync policy, with segment rolls and occasional
// mid-stream compaction.
func TestReplayMatchesModel(t *testing.T) {
	for _, pol := range []SyncPolicy{SyncInterval, SyncAlways, SyncNever} {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			f := func(ops []struct {
				Key byte
				Val []byte
				Del bool
			}) bool {
				path := filepath.Join(t.TempDir(), "q.log")
				s, err := Open(path,
					WithSyncPolicy(pol),
					WithSegmentBytes(2<<10),
					WithBlobThreshold(512),
					WithCompactMinDead(-1))
				if err != nil {
					return false
				}
				model := make(map[string][]byte)
				for i, op := range ops {
					k := fmt.Sprintf("k%d", op.Key%16)
					if op.Del {
						if s.Delete(k) != nil {
							return false
						}
						delete(model, k)
					} else {
						if s.Put(k, op.Val) != nil {
							return false
						}
						model[k] = op.Val
					}
					if i%7 == 3 {
						if s.Compact() != nil {
							return false
						}
					}
				}
				if s.Close() != nil {
					return false
				}
				s2, err := Open(path)
				if err != nil {
					return false
				}
				defer s2.Close()
				if s2.Len() != len(model) {
					return false
				}
				for k, want := range model {
					got, err := s2.Get(k)
					if err != nil || !bytes.Equal(got, want) {
						return false
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
				t.Fatal(err)
			}
		})
	}
}
