package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"
)

func TestMemoryPutGetDelete(t *testing.T) {
	s := OpenMemory()
	if err := s.Put("k1", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("k1")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "v1" {
		t.Fatalf("Get = %q", got)
	}
	if err := s.Delete("k1"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("k1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after delete = %v, want ErrNotFound", err)
	}
	if err := s.Delete("never-existed"); err != nil {
		t.Fatalf("Delete missing = %v, want nil", err)
	}
}

func TestGetReturnsCopy(t *testing.T) {
	s := OpenMemory()
	if err := s.Put("k", []byte("abc")); err != nil {
		t.Fatal(err)
	}
	v1, _ := s.Get("k")
	v1[0] = 'X'
	v2, _ := s.Get("k")
	if string(v2) != "abc" {
		t.Fatalf("stored value mutated through Get copy: %q", v2)
	}
}

func TestPutCopiesInput(t *testing.T) {
	s := OpenMemory()
	buf := []byte("abc")
	if err := s.Put("k", buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 'X'
	v, _ := s.Get("k")
	if string(v) != "abc" {
		t.Fatalf("stored value aliased caller buffer: %q", v)
	}
}

func TestKeysPrefixSorted(t *testing.T) {
	s := OpenMemory()
	for _, k := range []string{"app/zeta", "app/alpha", "res/one"} {
		if err := s.Put(k, nil); err != nil {
			t.Fatal(err)
		}
	}
	got := s.Keys("app/")
	if len(got) != 2 || got[0] != "app/alpha" || got[1] != "app/zeta" {
		t.Fatalf("Keys = %v", got)
	}
	if n := s.Len(); n != 3 {
		t.Fatalf("Len = %d", n)
	}
}

func TestDurabilityAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "reg.log")
	s1, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Put("a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := s1.Put("b", []byte("2")); err != nil {
		t.Fatal(err)
	}
	if err := s1.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, err := s2.Get("a"); !errors.Is(err, ErrNotFound) {
		t.Fatal("deleted key resurrected after reopen")
	}
	v, err := s2.Get("b")
	if err != nil || string(v) != "2" {
		t.Fatalf("Get(b) = %q, %v", v, err)
	}
}

func TestMultiSessionAppend(t *testing.T) {
	// Three sessions, each appending — replay must see all records. This
	// is the case a naive single-gob-stream log gets wrong.
	path := filepath.Join(t.TempDir(), "reg.log")
	for i := 0; i < 3; i++ {
		s, err := Open(path)
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
		if err := s.Put(fmt.Sprintf("k%d", i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Len() != 3 {
		t.Fatalf("Len after 3 sessions = %d, want 3", s.Len())
	}
}

func TestTornFinalRecordIgnored(t *testing.T) {
	path := filepath.Join(t.TempDir(), "reg.log")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("good", []byte("ok")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-write: append a frame header claiming more
	// bytes than present.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{200, 1, 0xde, 0xad}); err != nil { // uvarint 200, then garbage
		t.Fatal(err)
	}
	f.Close()

	s2, err := Open(path)
	if err != nil {
		t.Fatalf("Open with torn tail: %v", err)
	}
	defer s2.Close()
	v, err := s2.Get("good")
	if err != nil || string(v) != "ok" {
		t.Fatalf("good record lost: %q, %v", v, err)
	}
	if s2.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s2.Len())
	}
}

func TestCompactShrinksAndPreserves(t *testing.T) {
	path := filepath.Join(t.TempDir(), "reg.log")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	// Many overwrites of the same key bloat the log.
	big := bytes.Repeat([]byte("x"), 1024)
	for i := 0; i < 50; i++ {
		if err := s.Put("hot", big); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Put("cold", []byte("keep")); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	before, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	after, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() >= before.Size() {
		t.Fatalf("compact did not shrink: %d -> %d", before.Size(), after.Size())
	}
	// Post-compact appends must still replay.
	if err := s.Put("post", []byte("compact")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for k, want := range map[string]string{"hot": string(big), "cold": "keep", "post": "compact"} {
		v, err := s2.Get(k)
		if err != nil || string(v) != want {
			t.Fatalf("after compact+reopen, Get(%s) = %v, %v", k, len(v), err)
		}
	}
}

func TestMemoryStoreNoopDurabilityCalls(t *testing.T) {
	s := OpenMemory()
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := OpenMemory()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				key := fmt.Sprintf("w%d-%d", w, i)
				if err := s.Put(key, []byte{byte(i)}); err != nil {
					t.Error(err)
					return
				}
				if _, err := s.Get(key); err != nil {
					t.Error(err)
					return
				}
				s.Keys("w")
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != 800 {
		t.Fatalf("Len = %d, want 800", s.Len())
	}
}

// Property: a durable store replayed from disk equals the in-memory model.
func TestReplayMatchesModel(t *testing.T) {
	f := func(ops []struct {
		Key byte
		Val []byte
		Del bool
	}) bool {
		path := filepath.Join(t.TempDir(), "q.log")
		s, err := Open(path)
		if err != nil {
			return false
		}
		model := make(map[string][]byte)
		for _, op := range ops {
			k := fmt.Sprintf("k%d", op.Key%16)
			if op.Del {
				if s.Delete(k) != nil {
					return false
				}
				delete(model, k)
			} else {
				if s.Put(k, op.Val) != nil {
					return false
				}
				model[k] = op.Val
			}
		}
		if s.Close() != nil {
			return false
		}
		s2, err := Open(path)
		if err != nil {
			return false
		}
		defer s2.Close()
		if s2.Len() != len(model) {
			return false
		}
		for k, want := range model {
			got, err := s2.Get(k)
			if err != nil || !bytes.Equal(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
