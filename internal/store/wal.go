package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// WAL op codes.
const (
	opPutInline byte = 1
	opPutBlob   byte = 2
	opDelete    byte = 3
)

// frameOverhead approximates the per-record framing cost (length prefix,
// op, varints, checksum) for dead-bytes accounting.
const frameOverhead = 24

// frame is one decoded WAL record.
type frame struct {
	op  byte
	key string
	val []byte // inline value (a view into the decoded body)
	ref blobRef
}

func uvlen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// encodeInlineFrame builds a put frame in a single allocation and
// returns it with the offset of the value bytes, so the index can alias
// the frame instead of holding a second copy of the value.
func encodeInlineFrame(key string, val []byte) ([]byte, int) {
	bodyLen := 1 + uvlen(uint64(len(key))) + len(key) + uvlen(uint64(len(val))) + len(val) + 4
	buf := make([]byte, 0, uvlen(uint64(bodyLen))+bodyLen)
	buf = binary.AppendUvarint(buf, uint64(bodyLen))
	hdr := len(buf)
	buf = append(buf, opPutInline)
	buf = binary.AppendUvarint(buf, uint64(len(key)))
	buf = append(buf, key...)
	buf = binary.AppendUvarint(buf, uint64(len(val)))
	voff := len(buf)
	buf = append(buf, val...)
	crc := crc32.ChecksumIEEE(buf[hdr:])
	buf = binary.LittleEndian.AppendUint32(buf, crc)
	return buf, voff
}

func encodeBlobFrame(key string, ref blobRef) []byte {
	payload := 1 + uvlen(uint64(len(key))) + len(key) +
		uvlen(ref.Seg) + uvlen(uint64(ref.Off)) + uvlen(uint64(ref.Len)) + 4 + 4
	buf := make([]byte, 0, uvlen(uint64(payload))+payload)
	buf = binary.AppendUvarint(buf, uint64(payload))
	hdr := len(buf)
	buf = append(buf, opPutBlob)
	buf = binary.AppendUvarint(buf, uint64(len(key)))
	buf = append(buf, key...)
	buf = binary.AppendUvarint(buf, ref.Seg)
	buf = binary.AppendUvarint(buf, uint64(ref.Off))
	buf = binary.AppendUvarint(buf, uint64(ref.Len))
	buf = binary.LittleEndian.AppendUint32(buf, ref.CRC)
	crc := crc32.ChecksumIEEE(buf[hdr:])
	buf = binary.LittleEndian.AppendUint32(buf, crc)
	return buf
}

func encodeDeleteFrame(key string) []byte {
	bodyLen := 1 + uvlen(uint64(len(key))) + len(key) + 4
	buf := make([]byte, 0, uvlen(uint64(bodyLen))+bodyLen)
	buf = binary.AppendUvarint(buf, uint64(bodyLen))
	hdr := len(buf)
	buf = append(buf, opDelete)
	buf = binary.AppendUvarint(buf, uint64(len(key)))
	buf = append(buf, key...)
	crc := crc32.ChecksumIEEE(buf[hdr:])
	buf = binary.LittleEndian.AppendUint32(buf, crc)
	return buf
}

var errBadFrame = errors.New("store: bad frame")

// decodeBody parses one frame body (without the length prefix),
// verifying the trailing checksum.
func decodeBody(body []byte) (frame, error) {
	if len(body) < 5 {
		return frame{}, errBadFrame
	}
	crc := binary.LittleEndian.Uint32(body[len(body)-4:])
	if crc32.ChecksumIEEE(body[:len(body)-4]) != crc {
		return frame{}, errBadFrame
	}
	f := frame{op: body[0]}
	rest := body[1 : len(body)-4]
	klen, n := binary.Uvarint(rest)
	if n <= 0 || uint64(len(rest)-n) < klen {
		return frame{}, errBadFrame
	}
	f.key = string(rest[n : n+int(klen)])
	rest = rest[n+int(klen):]
	switch f.op {
	case opPutInline:
		vlen, n := binary.Uvarint(rest)
		if n <= 0 || uint64(len(rest)-n) != vlen {
			return frame{}, errBadFrame
		}
		f.val = rest[n : n+int(vlen) : n+int(vlen)]
	case opPutBlob:
		var vals [3]uint64
		for i := range vals {
			v, n := binary.Uvarint(rest)
			if n <= 0 {
				return frame{}, errBadFrame
			}
			vals[i] = v
			rest = rest[n:]
		}
		if len(rest) != 4 {
			return frame{}, errBadFrame
		}
		f.ref = blobRef{Seg: vals[0], Off: int64(vals[1]), Len: int64(vals[2]),
			CRC: binary.LittleEndian.Uint32(rest)}
	case opDelete:
		if len(rest) != 0 {
			return frame{}, errBadFrame
		}
	default:
		return frame{}, errBadFrame
	}
	return f, nil
}

// segmentInfo describes one sealed WAL segment.
type segmentInfo struct {
	id     uint64
	size   int64
	minSeq uint64 // first WAL sequence applied from this segment (0 = none)
	maxSeq uint64
}

func segmentName(id uint64) string { return fmt.Sprintf("wal-%08d.seg", id) }

// wal is the segmented, group-committed write-ahead log. Writers
// enqueue encoded frames; a single committer goroutine batches them
// into one write (and one fsync, per SyncPolicy) and wakes the waiting
// writers. All file I/O happens on the committer — Sync never holds an
// index lock.
type wal struct {
	dir   string
	opts  *Options
	met   *metrics
	blobs *blobStore // flushed before the WAL fsync so refs never outlive their bytes

	// Enqueue side.
	qmu         sync.Mutex
	queue       [][]byte
	nextSeq     uint64 // last assigned sequence
	wake        chan struct{}
	queuedBytes atomic.Int64 // frame bytes enqueued but not yet written
	errSet      atomic.Bool  // fast-path flag: w.err != nil

	// Waiter side.
	wmu        sync.Mutex
	cond       *sync.Cond
	ackedSeq   uint64 // per-policy acknowledgement watermark
	syncedSeq  uint64 // fsync watermark
	syncTarget uint64 // pending Sync/interval-flush request
	rollTarget uint64 // pending forced segment roll (compaction)
	rolledSeq  uint64
	err        error // sticky committer failure

	// Committer-owned.
	active     *os.File
	activeID   uint64
	activeMin  uint64 // first sequence written to the active segment
	writtenSeq uint64
	batchBuf   []byte

	activeSize atomic.Int64

	// Sealed segments, oldest first.
	segMu sync.Mutex
	segs  []segmentInfo

	testHookFsync atomic.Pointer[func()] // test-only: runs on the committer before each fsync

	stopc chan struct{}
	done  chan struct{}
}

// openWAL scans dir for segments and prepares (but does not start) the
// committer. Call replay, then start.
func openWAL(dir string, opts *Options, met *metrics) (*wal, error) {
	w := &wal{
		dir: dir, opts: opts, met: met,
		wake:  make(chan struct{}, 1),
		stopc: make(chan struct{}),
		done:  make(chan struct{}),
	}
	w.cond = sync.NewCond(&w.wmu)
	names, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil {
		return nil, fmt.Errorf("store: scan wal: %w", err)
	}
	sort.Strings(names)
	for _, name := range names {
		var id uint64
		if _, err := fmt.Sscanf(filepath.Base(name), "wal-%d.seg", &id); err != nil {
			continue
		}
		fi, err := os.Stat(name)
		if err != nil {
			return nil, fmt.Errorf("store: stat segment: %w", err)
		}
		w.segs = append(w.segs, segmentInfo{id: id, size: fi.Size()})
	}
	return w, nil
}

// replay streams every segment's frames (oldest first) through apply,
// assigning WAL sequences and recording each segment's sequence range.
// A torn or corrupt frame in the final segment is a crash tail: the
// file is truncated to the last good frame. In an earlier (sealed,
// fsynced-at-roll) segment it is disk corruption: the rest of that
// segment is skipped and replay continues.
func (w *wal) replay(apply func(f frame, seq uint64)) error {
	seq := uint64(0)
	for i := range w.segs {
		seg := &w.segs[i]
		path := filepath.Join(w.dir, segmentName(seg.id))
		final := i == len(w.segs)-1
		validEnd, err := replaySegment(path, func(f frame) {
			seq++
			if seg.minSeq == 0 {
				seg.minSeq = seq
			}
			seg.maxSeq = seq
			apply(f, seq)
		})
		if err != nil {
			return err
		}
		if validEnd < seg.size {
			if final {
				if err := os.Truncate(path, validEnd); err != nil {
					return fmt.Errorf("store: truncate torn tail: %w", err)
				}
				seg.size = validEnd
			} else {
				w.met.replaySkipped.Inc()
			}
		}
	}
	w.nextSeq = seq
	w.writtenSeq = seq
	w.ackedSeq = seq
	w.syncedSeq = seq
	w.rolledSeq = seq

	// The newest segment becomes the active one — unless it is already
	// over the roll size (or there is none), in which case start fresh.
	nextID := uint64(1)
	if n := len(w.segs); n > 0 {
		last := w.segs[n-1]
		nextID = last.id + 1
		if last.size < w.opts.SegmentBytes {
			f, err := os.OpenFile(filepath.Join(w.dir, segmentName(last.id)), os.O_RDWR, 0o644)
			if err != nil {
				return fmt.Errorf("store: open active segment: %w", err)
			}
			if _, err := f.Seek(0, io.SeekEnd); err != nil {
				f.Close()
				return err
			}
			w.active = f
			w.activeID = last.id
			w.activeMin = last.minSeq
			w.activeSize.Store(last.size)
			w.segs = w.segs[:n-1]
		}
	}
	if w.active == nil {
		if err := w.openSegment(nextID); err != nil {
			return err
		}
	}
	w.met.segments.Set(int64(len(w.segs) + 1))
	return nil
}

// replaySegment reads frames from one segment file, returning the
// offset of the end of the last valid frame.
func replaySegment(path string, apply func(frame)) (int64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return 0, fmt.Errorf("store: replay: %w", err)
	}
	off := int64(0)
	for int(off) < len(raw) {
		n, vn := binary.Uvarint(raw[off:])
		if vn <= 0 || int64(len(raw))-off-int64(vn) < int64(n) {
			break // torn length or torn body
		}
		body := raw[off+int64(vn) : off+int64(vn)+int64(n)]
		f, err := decodeBody(body)
		if err != nil {
			break // corrupt frame
		}
		apply(f)
		off += int64(vn) + int64(n)
	}
	return off, nil
}

func (w *wal) openSegment(id uint64) error {
	f, err := os.OpenFile(filepath.Join(w.dir, segmentName(id)), os.O_CREATE|os.O_RDWR|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: open segment: %w", err)
	}
	w.active = f
	w.activeID = id
	w.activeMin = 0
	w.activeSize.Store(0)
	return nil
}

func (w *wal) start() { go w.run() }

// enqueue appends a frame to the commit queue and returns its sequence.
// Called with the owning shard's lock held, which makes the WAL order
// agree with the index order for any single key.
func (w *wal) enqueue(buf []byte) uint64 {
	w.queuedBytes.Add(int64(len(buf)))
	w.qmu.Lock()
	w.nextSeq++
	seq := w.nextSeq
	w.queue = append(w.queue, buf)
	w.qmu.Unlock()
	w.signal()
	return seq
}

// maxQueuedBytes bounds the frame bytes the commit queue may pin before
// writers fall back to blocking on their own frame (backpressure).
const maxQueuedBytes = 8 << 20

// ackWait reports whether a writer must block on its frame: always under
// SyncAlways (the ack IS the fsync), and under any policy once the
// committer falls maxQueuedBytes behind. Otherwise the enqueue itself is
// the acknowledgement — interval/never promise nothing a queued-but-
// unwritten frame would break, and skipping the wakeup round-trip is
// what lets group commit run at memory speed.
func (w *wal) ackWait() bool {
	return w.opts.Sync == SyncAlways || w.queuedBytes.Load() > maxQueuedBytes
}

// checkErr is the non-blocking probe fire-and-forget acks use to surface
// a sticky committer failure on the next operation.
func (w *wal) checkErr() error {
	if !w.errSet.Load() {
		return nil
	}
	w.wmu.Lock()
	err := w.err
	w.wmu.Unlock()
	return err
}

func (w *wal) signal() {
	select {
	case w.wake <- struct{}{}:
	default:
	}
}

// wait blocks until the frame with the given sequence is acknowledged
// per the SyncPolicy (written for interval/never, fsynced for always).
func (w *wal) wait(seq uint64) error {
	w.wmu.Lock()
	for w.err == nil && w.ackedSeq < seq {
		w.cond.Wait()
	}
	err := w.err
	w.wmu.Unlock()
	return err
}

// syncBarrier requests an fsync covering every frame enqueued so far
// and waits for it. No index lock is held at any point.
func (w *wal) syncBarrier() error {
	w.qmu.Lock()
	target := w.nextSeq
	w.qmu.Unlock()
	w.wmu.Lock()
	if w.syncTarget < target {
		w.syncTarget = target
	}
	w.wmu.Unlock()
	w.signal()

	w.wmu.Lock()
	for w.err == nil && w.syncedSeq < target {
		w.cond.Wait()
	}
	err := w.err
	w.wmu.Unlock()
	return err
}

// forceRoll seals the active segment once every frame enqueued so far
// is written, so compaction can treat it as cold. Used by Compact.
func (w *wal) forceRoll() error {
	w.qmu.Lock()
	target := w.nextSeq
	w.qmu.Unlock()
	w.wmu.Lock()
	if w.rollTarget < target {
		w.rollTarget = target
	}
	w.wmu.Unlock()
	w.signal()

	w.wmu.Lock()
	for w.err == nil && w.rolledSeq < target {
		w.cond.Wait()
	}
	err := w.err
	w.wmu.Unlock()
	return err
}

func (w *wal) run() {
	defer close(w.done)
	var tickC <-chan time.Time
	if w.opts.Sync == SyncInterval {
		t := time.NewTicker(w.opts.SyncEvery)
		defer t.Stop()
		tickC = t.C
	}
	for {
		select {
		case <-w.wake:
			w.step()
		case <-tickC:
			w.wmu.Lock()
			if w.syncTarget < w.nextSeqLocked() {
				w.syncTarget = w.nextSeqLocked()
			}
			w.wmu.Unlock()
			w.step()
		case <-w.stopc:
			w.step() // drain whatever raced the stop
			w.shutdown()
			return
		}
	}
}

func (w *wal) nextSeqLocked() uint64 {
	w.qmu.Lock()
	n := w.nextSeq
	w.qmu.Unlock()
	return n
}

// step is one committer turn: drain the queue into one write, fsync per
// policy or pending request, seal the segment if due, wake waiters.
func (w *wal) step() {
	w.qmu.Lock()
	batch := w.queue
	w.queue = nil
	w.qmu.Unlock()

	var failed error
	if len(batch) > 0 {
		failed = w.writeBatch(batch)
	}

	w.wmu.Lock()
	syncWanted := w.syncTarget > w.syncedSeq
	rollWanted := w.rollTarget > w.rolledSeq
	w.wmu.Unlock()

	if failed == nil && (w.opts.Sync == SyncAlways && len(batch) > 0 || syncWanted) {
		failed = w.fsync()
	}
	if failed == nil && rollWanted {
		if w.activeSize.Load() > 0 {
			failed = w.seal()
		}
		w.wmu.Lock()
		w.rolledSeq = w.writtenSeq
		w.wmu.Unlock()
	}

	w.wmu.Lock()
	if failed != nil && w.err == nil {
		w.err = failed
		w.errSet.Store(true)
	}
	if w.err == nil {
		w.ackedSeq = w.writtenSeq
	}
	w.cond.Broadcast()
	w.wmu.Unlock()
}

// writeBatch concatenates the batch into as few writes as segment rolls
// allow: the longest prefix that fits the active segment goes out as one
// write, the segment seals, and the remainder re-splits against the
// fresh one. A batch can exceed SegmentBytes now that writers don't
// block per frame.
func (w *wal) writeBatch(batch [][]byte) error {
	for len(batch) > 0 {
		active := w.activeSize.Load()
		total, n := 0, 0
		for _, b := range batch {
			if n > 0 && active+int64(total)+int64(len(b)) > w.opts.SegmentBytes {
				break // at least one frame always lands, even oversized
			}
			total += len(b)
			n++
		}
		if active > 0 && active+int64(total) > w.opts.SegmentBytes {
			if err := w.seal(); err != nil {
				return err
			}
			continue // re-split against the empty segment
		}
		buf := w.batchBuf[:0]
		for _, b := range batch[:n] {
			buf = append(buf, b...)
		}
		w.batchBuf = buf
		_, err := w.active.Write(buf)
		w.queuedBytes.Add(-int64(total)) // written (or sticky-failed): no longer pinned
		if err != nil {
			return fmt.Errorf("store: wal write: %w", err)
		}
		if w.activeMin == 0 {
			w.activeMin = w.writtenSeq + 1
		}
		w.writtenSeq += uint64(n)
		w.activeSize.Add(int64(total))
		w.met.batchFrames.Observe(time.Duration(n))
		w.met.walBytes.Add(int64(total))
		batch = batch[n:]
	}
	return nil
}

// fsync flushes the blob log first (a WAL blob reference must never be
// durable before its bytes), then the active segment.
func (w *wal) fsync() error {
	if h := w.testHookFsync.Load(); h != nil {
		(*h)()
	}
	start := time.Now()
	if err := w.blobs.sync(); err != nil {
		return err
	}
	if err := w.active.Sync(); err != nil {
		return fmt.Errorf("store: fsync: %w", err)
	}
	w.met.fsyncs.Inc()
	w.met.fsyncWait.Observe(time.Since(start))
	w.wmu.Lock()
	w.syncedSeq = w.writtenSeq
	w.wmu.Unlock()
	return nil
}

// seal fsyncs and closes the active segment, records it as cold, and
// opens the next one. Sealed segments are always fully synced, so only
// the active segment can hold a torn tail.
func (w *wal) seal() error {
	if err := w.fsync(); err != nil {
		return err
	}
	if err := w.active.Close(); err != nil {
		return fmt.Errorf("store: seal: %w", err)
	}
	info := segmentInfo{id: w.activeID, size: w.activeSize.Load(), minSeq: w.activeMin, maxSeq: w.writtenSeq}
	w.segMu.Lock()
	w.segs = append(w.segs, info)
	nseg := len(w.segs)
	w.segMu.Unlock()
	w.met.segments.Set(int64(nseg + 1))
	return w.openSegment(w.activeID + 1)
}

// sealedSegments snapshots the cold segment list, oldest first.
func (w *wal) sealedSegments() []segmentInfo {
	w.segMu.Lock()
	defer w.segMu.Unlock()
	return append([]segmentInfo(nil), w.segs...)
}

// removeSegment deletes a compacted segment's file and bookkeeping.
func (w *wal) removeSegment(id uint64) error {
	w.segMu.Lock()
	for i := range w.segs {
		if w.segs[i].id == id {
			w.segs = append(w.segs[:i], w.segs[i+1:]...)
			break
		}
	}
	nseg := len(w.segs)
	w.segMu.Unlock()
	w.met.segments.Set(int64(nseg + 1))
	if err := os.Remove(filepath.Join(w.dir, segmentName(id))); err != nil {
		return fmt.Errorf("store: remove segment: %w", err)
	}
	return nil
}

func (w *wal) diskUsage() int64 {
	n := w.activeSize.Load()
	w.segMu.Lock()
	for _, s := range w.segs {
		n += s.size
	}
	w.segMu.Unlock()
	return n
}

// shutdown drains any late enqueues, performs a final flush, fails any
// waiters that raced the close, and releases the file.
func (w *wal) shutdown() {
	w.qmu.Lock()
	batch := w.queue
	w.queue = nil
	w.qmu.Unlock()
	var failed error
	if len(batch) > 0 {
		failed = w.writeBatch(batch)
	}
	if failed == nil {
		failed = w.fsync()
	}
	if cerr := w.active.Close(); failed == nil && cerr != nil {
		failed = cerr
	}
	w.wmu.Lock()
	if w.err == nil {
		if failed != nil {
			w.err = failed
		} else {
			w.ackedSeq = w.writtenSeq
			w.syncedSeq = w.writtenSeq
			w.rolledSeq = w.writtenSeq
			w.err = ErrClosed // fail any waiter that enqueued after the final drain
		}
	}
	w.errSet.Store(true)
	w.cond.Broadcast()
	w.wmu.Unlock()
}

// close stops the committer and waits for the final flush. The first
// call wins; the sticky error state reports any flush failure.
func (w *wal) close() error {
	close(w.stopc)
	<-w.done
	w.wmu.Lock()
	err := w.err
	w.wmu.Unlock()
	if errors.Is(err, ErrClosed) {
		return nil
	}
	return err
}
