package store

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
)

// Legacy is the seed single-lock store: one map and one replayed gob
// log behind a single RWMutex. It is kept (1) to migrate pre-PR-8 log
// files into the engine layout and (2) as the before/after baseline for
// bench.RunStore.
type Legacy struct {
	mu   sync.RWMutex
	data map[string][]byte
	path string   // "" for memory-only
	log  *os.File // nil for memory-only
}

// legacy log op codes.
const (
	legacyOpPut    = "put"
	legacyOpDelete = "del"
)

// record is the seed store's gob frame (field-name compatible with
// every log written before PR 8).
type record struct {
	Op    string
	Key   string
	Value []byte
}

// OpenLegacy opens (or creates) a seed-format store backed by the
// single append-only gob log at path.
func OpenLegacy(path string) (*Legacy, error) {
	s := &Legacy{data: make(map[string][]byte), path: path}
	if err := replayLegacy(path, s.data); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open legacy log: %w", err)
	}
	s.log = f
	return s, nil
}

func replayLegacy(path string, into map[string][]byte) error {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: legacy replay: %w", err)
	}
	defer f.Close()
	br := bufio.NewReader(f)
	for {
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return nil // EOF or torn length
		}
		body := make([]byte, n)
		if _, err := io.ReadFull(br, body); err != nil {
			return nil // torn frame from a crash mid-write
		}
		var r record
		if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&r); err != nil {
			return nil // corrupt frame; stop at last good record
		}
		switch r.Op {
		case legacyOpPut:
			into[r.Key] = r.Value
		case legacyOpDelete:
			delete(into, r.Key)
		}
	}
}

func encodeLegacyFrame(r record) ([]byte, error) {
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(r); err != nil {
		return nil, fmt.Errorf("store: legacy encode: %w", err)
	}
	frame := make([]byte, 0, body.Len()+binary.MaxVarintLen64)
	frame = binary.AppendUvarint(frame, uint64(body.Len()))
	return append(frame, body.Bytes()...), nil
}

func (s *Legacy) append(r record) error {
	if s.log == nil {
		return nil
	}
	frame, err := encodeLegacyFrame(r)
	if err != nil {
		return err
	}
	if _, err := s.log.Write(frame); err != nil {
		return fmt.Errorf("store: legacy append: %w", err)
	}
	return nil
}

// Put stores value under key, seed-style: gob-encode and write under
// the global lock.
func (s *Legacy) Put(key string, value []byte) error {
	cp := make([]byte, len(value))
	copy(cp, value)
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.append(record{Op: legacyOpPut, Key: key, Value: cp}); err != nil {
		return err
	}
	s.data[key] = cp
	return nil
}

// Get returns a copy of the value stored under key.
func (s *Legacy) Get(key string) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.data[key]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	cp := make([]byte, len(v))
	copy(cp, v)
	return cp, nil
}

// Delete removes key.
func (s *Legacy) Delete(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.data[key]; !ok {
		return nil
	}
	if err := s.append(record{Op: legacyOpDelete, Key: key}); err != nil {
		return err
	}
	delete(s.data, key)
	return nil
}

// Keys returns all keys with the given prefix, sorted.
func (s *Legacy) Keys(prefix string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []string
	for k := range s.data {
		if strings.HasPrefix(k, prefix) {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// Len returns the number of live keys.
func (s *Legacy) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.data)
}

// Sync flushes the log, holding the global lock across the fsync —
// the seed behaviour the engine's committer replaces.
func (s *Legacy) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.log == nil {
		return nil
	}
	return s.log.Sync()
}

// Close flushes and closes the log.
func (s *Legacy) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.log == nil {
		return nil
	}
	err := s.log.Sync()
	if cerr := s.log.Close(); err == nil {
		err = cerr
	}
	s.log = nil
	return err
}

// migrateLegacyIfNeeded converts a seed-format log file at path into
// the engine's directory layout. Crash-safe: the legacy file is first
// parked at path+".legacy" (atomic rename), the converted segment is
// written and fsynced, and only then is the parked file removed — a
// crash at any point either retries the conversion or finds the
// directory already valid.
func migrateLegacyIfNeeded(path string) error {
	parked := path + ".legacy"
	if fi, err := os.Stat(path); err == nil && !fi.IsDir() {
		if err := os.Rename(path, parked); err != nil {
			return fmt.Errorf("store: park legacy log: %w", err)
		}
	} else if err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("store: open: %w", err)
	}
	if _, err := os.Stat(parked); errors.Is(err, os.ErrNotExist) {
		return nil
	} else if err != nil {
		return err
	}

	data := make(map[string][]byte)
	if err := replayLegacy(parked, data); err != nil {
		return err
	}
	if err := os.MkdirAll(path, 0o755); err != nil {
		return fmt.Errorf("store: migrate: %w", err)
	}
	// All records are written inline (blob routing applies to future
	// writes); replay seals an oversized first segment automatically.
	seg, err := os.OpenFile(path+"/"+segmentName(1), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: migrate: %w", err)
	}
	keys := make([]string, 0, len(data))
	for k := range data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	bw := bufio.NewWriter(seg)
	for _, k := range keys {
		frame, _ := encodeInlineFrame(k, data[k])
		if _, err := bw.Write(frame); err != nil {
			seg.Close()
			return fmt.Errorf("store: migrate: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		seg.Close()
		return fmt.Errorf("store: migrate: %w", err)
	}
	if err := seg.Sync(); err != nil {
		seg.Close()
		return fmt.Errorf("store: migrate: %w", err)
	}
	if err := seg.Close(); err != nil {
		return fmt.Errorf("store: migrate: %w", err)
	}
	if err := os.Remove(parked); err != nil {
		return fmt.Errorf("store: unpark legacy log: %w", err)
	}
	return nil
}
