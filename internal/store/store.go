// Package store implements the embedded key-value store backing the
// registry center — the stand-in for the paper's Juddi + MySQL backend
// (§5: "We use Juddi and MySQL as the backend application and resource
// registry center"). It is an in-memory map with an optional append-only
// log for durability: every mutation is written through to the log, and
// Open replays the log to recover state. Compact rewrites the log to drop
// superseded records.
//
// Log format: each record is an independently gob-encoded frame preceded
// by a uvarint length, so logs written across multiple sessions replay
// correctly (a single shared gob stream would not survive re-opened
// encoders re-sending type descriptors) and a torn final frame from a
// crash is detected and ignored.
package store

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
)

// op codes for log records.
const (
	opPut    = "put"
	opDelete = "del"
)

type record struct {
	Op    string
	Key   string
	Value []byte
}

// ErrNotFound is returned by Get for missing keys.
var ErrNotFound = errors.New("store: key not found")

// Store is a concurrency-safe KV store with optional file durability.
type Store struct {
	mu   sync.RWMutex
	data map[string][]byte
	path string   // "" for memory-only
	log  *os.File // nil for memory-only
}

// OpenMemory returns a volatile in-memory store.
func OpenMemory() *Store {
	return &Store{data: make(map[string][]byte)}
}

// Open opens (or creates) a durable store backed by the append-only log at
// path, replaying any existing records.
func Open(path string) (*Store, error) {
	s := &Store{data: make(map[string][]byte), path: path}
	if err := s.replay(); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open log: %w", err)
	}
	s.log = f
	return s, nil
}

func encodeFrame(r record) ([]byte, error) {
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(r); err != nil {
		return nil, fmt.Errorf("store: encode: %w", err)
	}
	frame := make([]byte, 0, body.Len()+binary.MaxVarintLen64)
	frame = binary.AppendUvarint(frame, uint64(body.Len()))
	return append(frame, body.Bytes()...), nil
}

func (s *Store) replay() error {
	f, err := os.Open(s.path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: replay: %w", err)
	}
	defer f.Close()
	br := bufio.NewReader(f)
	for {
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return nil // EOF or torn length — all complete frames applied
		}
		body := make([]byte, n)
		if _, err := io.ReadFull(br, body); err != nil {
			return nil // torn frame from a crash mid-write
		}
		var r record
		if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&r); err != nil {
			return nil // corrupt frame; stop at last good record
		}
		switch r.Op {
		case opPut:
			s.data[r.Key] = r.Value
		case opDelete:
			delete(s.data, r.Key)
		}
	}
}

func (s *Store) append(r record) error {
	if s.log == nil {
		return nil
	}
	frame, err := encodeFrame(r)
	if err != nil {
		return err
	}
	if _, err := s.log.Write(frame); err != nil {
		return fmt.Errorf("store: append: %w", err)
	}
	return nil
}

// Put stores value under key, overwriting any previous value.
func (s *Store) Put(key string, value []byte) error {
	cp := make([]byte, len(value))
	copy(cp, value)
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.append(record{Op: opPut, Key: key, Value: cp}); err != nil {
		return err
	}
	s.data[key] = cp
	return nil
}

// Get returns a copy of the value stored under key.
func (s *Store) Get(key string) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.data[key]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	cp := make([]byte, len(v))
	copy(cp, v)
	return cp, nil
}

// Delete removes key. Deleting a missing key is not an error.
func (s *Store) Delete(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.data[key]; !ok {
		return nil
	}
	if err := s.append(record{Op: opDelete, Key: key}); err != nil {
		return err
	}
	delete(s.data, key)
	return nil
}

// Keys returns all keys with the given prefix, sorted.
func (s *Store) Keys(prefix string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []string
	for k := range s.data {
		if strings.HasPrefix(k, prefix) {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// Len returns the number of live keys.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.data)
}

// Sync flushes the log to stable storage.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.log == nil {
		return nil
	}
	return s.log.Sync()
}

// Compact rewrites the log with only live records, bounding file growth.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.log == nil {
		return nil
	}
	tmp := s.path + ".compact"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	cleanup := func() {
		f.Close()
		os.Remove(tmp)
	}
	keys := make([]string, 0, len(s.data))
	for k := range s.data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		frame, err := encodeFrame(record{Op: opPut, Key: k, Value: s.data[k]})
		if err != nil {
			cleanup()
			return err
		}
		if _, err := f.Write(frame); err != nil {
			cleanup()
			return fmt.Errorf("store: compact: %w", err)
		}
	}
	if err := f.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("store: compact: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: compact: %w", err)
	}
	old := s.log
	if err := os.Rename(tmp, s.path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: compact: %w", err)
	}
	old.Close()
	nf, err := os.OpenFile(s.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: reopen after compact: %w", err)
	}
	s.log = nf
	return nil
}

// Close flushes and closes the log.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.log == nil {
		return nil
	}
	err := s.log.Sync()
	if cerr := s.log.Close(); err == nil {
		err = cerr
	}
	s.log = nil
	return err
}
