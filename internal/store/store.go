// Package store implements the embedded storage engine backing the
// registry center — the stand-in for the paper's Juddi + MySQL backend
// (§5: "We use Juddi and MySQL as the backend application and resource
// registry center"). The seed implementation was one map and one
// replayed gob log behind a single RWMutex; this engine keeps that API
// but is built to sustain heavy mixed registry/snapshot traffic:
//
//   - The index is sharded by key hash (fixed power-of-two shard count,
//     one RWMutex per shard), so concurrent registry writes and snapshot
//     puts stop serializing on one lock. Keys(prefix) is served by
//     per-shard sorted iteration merged at the edge.
//   - Durability is a group-committed write-ahead log: writers encode
//     their frame off-lock, enqueue it to a committer goroutine, and the
//     committer batches queued frames into one write (and one fsync,
//     per SyncPolicy), amortizing syscalls across concurrent writers.
//   - The WAL is rolled into fixed-size segments; compaction folds cold
//     segments one at a time into the tail off the write path (no
//     global lock — per-key re-emission under the shard lock), instead
//     of a stop-the-world full-file rewrite.
//   - Values at or above BlobThreshold (multi-MB snapshot base frames,
//     delta chains) are routed to a separate blob log; the WAL holds
//     only a checksummed reference, so a 2 MB base frame no longer
//     rides the registry log. Blob segments are garbage-collected when
//     compaction leaves them unreferenced.
//
// Ownership contract: Put copies the caller's value exactly once (into
// the encoded WAL frame, whose bytes also back the in-memory index), so
// callers may reuse their buffer after Put returns. Get returns the
// store's internal buffer for inline values — callers MUST treat it as
// read-only. The store never mutates a stored buffer in place (every
// overwrite installs a fresh one), so a slice returned by Get stays
// stable even across later Puts of the same key. Blob-routed values are
// read back from disk into a fresh buffer the caller owns.
package store

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrNotFound is returned by Get for missing keys.
var ErrNotFound = errors.New("store: key not found")

// ErrClosed is returned by mutations on a closed store.
var ErrClosed = errors.New("store: closed")

// SyncPolicy selects when the engine fsyncs the logs relative to
// acknowledging a write.
type SyncPolicy uint8

const (
	// SyncInterval (the default) acknowledges a write once the committer
	// has written its batch; a background flush fsyncs every SyncEvery.
	// A crash loses at most the last interval of acknowledged writes.
	SyncInterval SyncPolicy = iota
	// SyncAlways acknowledges a write only after its batch is fsynced —
	// group commit amortizes the fsync across every writer in the batch.
	// Zero acknowledged writes are lost on a crash.
	SyncAlways
	// SyncNever fsyncs only on explicit Sync, segment seal, and Close —
	// the seed store's behaviour.
	SyncNever
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncNever:
		return "never"
	default:
		return "interval"
	}
}

// ParseSyncPolicy parses "always", "interval", or "never" ("" means
// interval) — the -store-sync flag vocabulary.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "interval":
		return SyncInterval, nil
	case "always":
		return SyncAlways, nil
	case "never":
		return SyncNever, nil
	}
	return SyncInterval, fmt.Errorf("store: unknown sync policy %q (want always, interval, or never)", s)
}

// DefaultSyncEvery is the SyncInterval flush cadence when Options does
// not set one — the loss window a crash can cost under that policy.
const DefaultSyncEvery = 50 * time.Millisecond

// Options tune the engine. The zero value means defaults.
type Options struct {
	// Shards is the index shard count, rounded up to a power of two
	// (default 16).
	Shards int
	// SegmentBytes rolls the WAL into a new segment once the active one
	// exceeds this size (default 4 MiB).
	SegmentBytes int64
	// BlobThreshold routes values of at least this many bytes to the
	// blob log (default 64 KiB). <0 disables blob routing.
	BlobThreshold int
	// BlobSegmentBytes rolls the blob log (default 64 MiB).
	BlobSegmentBytes int64
	// Sync is the commit durability policy (default SyncInterval).
	Sync SyncPolicy
	// SyncEvery is the background flush period under SyncInterval
	// (default DefaultSyncEvery).
	SyncEvery time.Duration
	// CompactMinDead triggers a background compaction pass once the
	// estimated superseded bytes exceed this (default 4x SegmentBytes;
	// <0 disables auto-compaction — explicit Compact still works).
	CompactMinDead int64
}

func (o Options) withDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = 16
	}
	// Round up to a power of two so shard selection is a mask.
	n := 1
	for n < o.Shards {
		n <<= 1
	}
	o.Shards = n
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.BlobThreshold == 0 {
		o.BlobThreshold = 64 << 10
	}
	if o.BlobSegmentBytes <= 0 {
		o.BlobSegmentBytes = 64 << 20
	}
	if o.SyncEvery <= 0 {
		o.SyncEvery = DefaultSyncEvery
	}
	if o.CompactMinDead == 0 {
		o.CompactMinDead = 4 * o.SegmentBytes
	}
	return o
}

// Option customizes Open.
type Option func(*Options)

// WithShards sets the index shard count (rounded up to a power of two).
func WithShards(n int) Option { return func(o *Options) { o.Shards = n } }

// WithSegmentBytes sets the WAL segment roll size.
func WithSegmentBytes(n int64) Option { return func(o *Options) { o.SegmentBytes = n } }

// WithBlobThreshold sets the inline/blob routing boundary (<0 disables
// blob routing).
func WithBlobThreshold(n int) Option { return func(o *Options) { o.BlobThreshold = n } }

// WithSyncPolicy sets the commit durability policy.
func WithSyncPolicy(p SyncPolicy) Option { return func(o *Options) { o.Sync = p } }

// WithSyncEvery sets the background flush period under SyncInterval.
func WithSyncEvery(d time.Duration) Option { return func(o *Options) { o.SyncEvery = d } }

// WithCompactMinDead sets the auto-compaction trigger (<0 disables).
func WithCompactMinDead(n int64) Option { return func(o *Options) { o.CompactMinDead = n } }

// entry kinds in the sharded index.
const (
	entryInline = iota
	entryBlob
)

type entry struct {
	kind uint8
	val  []byte  // inline value bytes (a view into the WAL frame)
	blob blobRef // valid when kind == entryBlob
	seq  uint64  // WAL sequence of the frame that defined this entry
}

// liveBytes estimates the log bytes an entry pins (used for the
// dead-bytes compaction trigger when the entry is superseded).
func (e entry) liveBytes(key string) int64 {
	n := int64(len(key)) + frameOverhead
	if e.kind == entryBlob {
		return n + e.blob.Len
	}
	return n + int64(len(e.val))
}

type shard struct {
	mu sync.RWMutex
	m  map[string]entry
}

// Store is a concurrency-safe KV store with optional durability. See
// the package comment for the engine layout and the Get/Put ownership
// contract.
type Store struct {
	opts Options
	dir  string // "" for memory-only

	shards []shard
	mask   uint32

	wal   *wal       // nil for memory-only
	blobs *blobStore // nil for memory-only

	deadBytes  atomic.Int64 // estimated superseded log bytes since last compaction
	compactMu  sync.Mutex   // serializes compaction passes (and Close vs compaction)
	compacting atomic.Bool  // single-flight guard for background compaction
	closed     atomic.Bool

	met *metrics
}

// OpenMemory returns a volatile in-memory store (sharded index, no log).
func OpenMemory(opts ...Option) *Store {
	o := Options{}
	for _, fn := range opts {
		fn(&o)
	}
	return newStore("", o.withDefaults())
}

func newStore(dir string, o Options) *Store {
	s := &Store{
		opts:   o,
		dir:    dir,
		shards: make([]shard, o.Shards),
		mask:   uint32(o.Shards - 1),
		met:    newMetrics(dir),
	}
	for i := range s.shards {
		s.shards[i].m = make(map[string]entry)
	}
	return s
}

// Open opens (or creates) a durable store rooted at path, replaying the
// write-ahead log to recover state. A regular file at path — a log
// written by the seed single-file store — is migrated into the new
// layout first (crash-safely: the legacy file is parked at
// path+".legacy" until the converted store is on disk).
func Open(path string, opts ...Option) (*Store, error) {
	o := Options{}
	for _, fn := range opts {
		fn(&o)
	}
	o = o.withDefaults()

	if err := migrateLegacyIfNeeded(path); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(path, 0o755); err != nil {
		return nil, fmt.Errorf("store: open: %w", err)
	}
	s := newStore(path, o)
	var err error
	if s.blobs, err = openBlobStore(path, &s.opts, s.met); err != nil {
		return nil, err
	}
	if s.wal, err = openWAL(path, &s.opts, s.met); err != nil {
		s.blobs.close()
		return nil, err
	}
	s.wal.blobs = s.blobs
	if err := s.replay(); err != nil {
		s.wal.close()
		s.blobs.close()
		return nil, err
	}
	s.wal.start()
	return s, nil
}

func (s *Store) shardOf(key string) *shard {
	// Inline FNV-1a: the per-op cost must stay trivial next to a map op.
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint32(key[i])) * 16777619
	}
	return &s.shards[h&s.mask]
}

// replay rebuilds the index from the WAL segments (oldest first). Blob
// references are validated against the blob files: refs that fall off a
// torn blob tail are dropped (they were never acknowledged under
// SyncAlways), refs into the final blob segment are CRC-checked since
// that is the crash zone.
func (s *Store) replay() error {
	return s.wal.replay(func(f frame, seq uint64) {
		sh := s.shardOf(f.key)
		// No locking: replay runs before the store is published.
		switch f.op {
		case opPutInline:
			s.applyLocked(sh, f.key, entry{kind: entryInline, val: f.val, seq: seq})
		case opPutBlob:
			if !s.blobs.validate(f.ref) {
				s.met.replaySkipped.Inc()
				return
			}
			s.applyLocked(sh, f.key, entry{kind: entryBlob, blob: f.ref, seq: seq})
		case opDelete:
			if old, ok := sh.m[f.key]; ok {
				s.deadBytes.Add(old.liveBytes(f.key) + int64(len(f.key)) + frameOverhead)
				delete(sh.m, f.key)
			}
		}
	})
}

// applyLocked installs an entry (the caller holds the shard lock, or is
// single-threaded replay) and accounts superseded bytes.
func (s *Store) applyLocked(sh *shard, key string, e entry) {
	if old, ok := sh.m[key]; ok {
		s.deadBytes.Add(old.liveBytes(key))
	}
	sh.m[key] = e
}

// Put stores value under key, overwriting any previous value. The value
// is copied once; the caller may reuse its buffer immediately. Under
// SyncAlways, Put returns only after the write is fsynced; under
// interval/never it returns once the write is indexed and queued for
// commit (a committer failure surfaces on a later call, Sync, or
// Close), subject to queue backpressure.
func (s *Store) Put(key string, value []byte) error {
	if s.closed.Load() {
		return ErrClosed
	}
	start := time.Now()
	defer func() { s.met.putWait.Observe(time.Since(start)) }()
	s.met.puts.Inc()

	if s.wal == nil {
		cp := make([]byte, len(value))
		copy(cp, value)
		sh := s.shardOf(key)
		sh.mu.Lock()
		sh.m[key] = entry{kind: entryInline, val: cp}
		sh.mu.Unlock()
		return nil
	}

	var (
		e     entry
		frame []byte
	)
	if s.opts.BlobThreshold >= 0 && len(value) >= s.opts.BlobThreshold {
		ref, err := s.blobs.append(value)
		if err != nil {
			return err
		}
		frame = encodeBlobFrame(key, ref)
		e = entry{kind: entryBlob, blob: ref}
	} else {
		var voff int
		frame, voff = encodeInlineFrame(key, value)
		e = entry{kind: entryInline, val: frame[voff : voff+len(value) : voff+len(value)]}
	}

	sh := s.shardOf(key)
	sh.mu.Lock()
	w := s.wal.enqueue(frame)
	e.seq = w
	s.applyLocked(sh, key, e)
	sh.mu.Unlock()

	var err error
	if s.wal.ackWait() {
		err = s.wal.wait(w)
	} else {
		// interval/never: the enqueue is the acknowledgement. A committer
		// failure surfaces on the next operation, Sync, or Close.
		err = s.wal.checkErr()
	}
	s.maybeAutoCompact()
	return err
}

// Get returns the value stored under key. For inline values this is the
// store's internal buffer — read-only by contract (see the package
// comment); blob-routed values are read into a fresh buffer.
func (s *Store) Get(key string) ([]byte, error) {
	s.met.gets.Inc()
	sh := s.shardOf(key)
	for attempt := 0; ; attempt++ {
		sh.mu.RLock()
		e, ok := sh.m[key]
		sh.mu.RUnlock()
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrNotFound, key)
		}
		if e.kind == entryInline {
			return e.val, nil
		}
		v, err := s.blobs.read(e.blob)
		if err == nil {
			return v, nil
		}
		// A blob segment can be GC'd between the index read and the
		// pread if the entry was concurrently superseded; the fresh
		// lookup sees the superseding entry. A second failure is a real
		// I/O error.
		if attempt > 0 {
			return nil, err
		}
	}
}

// Delete removes key. Deleting a missing key is not an error.
func (s *Store) Delete(key string) error {
	if s.closed.Load() {
		return ErrClosed
	}
	s.met.dels.Inc()
	sh := s.shardOf(key)
	if s.wal == nil {
		sh.mu.Lock()
		delete(sh.m, key)
		sh.mu.Unlock()
		return nil
	}
	frame := encodeDeleteFrame(key)
	sh.mu.Lock()
	old, ok := sh.m[key]
	if !ok {
		sh.mu.Unlock()
		return nil
	}
	w := s.wal.enqueue(frame)
	delete(sh.m, key)
	sh.mu.Unlock()
	s.deadBytes.Add(old.liveBytes(key) + int64(len(key)) + frameOverhead)

	var err error
	if s.wal.ackWait() {
		err = s.wal.wait(w)
	} else {
		err = s.wal.checkErr()
	}
	s.maybeAutoCompact()
	return err
}

// Keys returns all keys with the given prefix, sorted: each shard
// contributes its matches pre-sorted and the slices are merged at the
// edge, so no shard lock is held during the merge.
func (s *Store) Keys(prefix string) []string {
	lists := make([][]string, 0, len(s.shards))
	total := 0
	for i := range s.shards {
		sh := &s.shards[i]
		var ks []string
		sh.mu.RLock()
		for k := range sh.m {
			if strings.HasPrefix(k, prefix) {
				ks = append(ks, k)
			}
		}
		sh.mu.RUnlock()
		if len(ks) > 0 {
			sort.Strings(ks)
			lists = append(lists, ks)
			total += len(ks)
		}
	}
	return mergeSorted(lists, total)
}

// mergeSorted k-way merges pre-sorted string slices.
func mergeSorted(lists [][]string, total int) []string {
	switch len(lists) {
	case 0:
		return nil
	case 1:
		return lists[0]
	}
	out := make([]string, 0, total)
	idx := make([]int, len(lists))
	for len(out) < total {
		best := -1
		for i, l := range lists {
			if idx[i] >= len(l) {
				continue
			}
			if best < 0 || l[idx[i]] < lists[best][idx[best]] {
				best = i
			}
		}
		out = append(out, lists[best][idx[best]])
		idx[best]++
	}
	return out
}

// Scan calls fn for every key with the given prefix in sorted key
// order, with the stored value — one pass instead of Keys plus per-key
// Get. Values passed to fn follow the Get ownership contract
// (read-only for inline values). fn must not call back into the store's
// write path for the scanned keys. A non-nil error from fn aborts the
// scan and is returned.
func (s *Store) Scan(prefix string, fn func(key string, value []byte) error) error {
	s.met.scans.Inc()
	type kv struct {
		k string
		e entry
	}
	var all []kv
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for k, e := range sh.m {
			if strings.HasPrefix(k, prefix) {
				all = append(all, kv{k, e})
			}
		}
		sh.mu.RUnlock()
	}
	sort.Slice(all, func(i, j int) bool { return all[i].k < all[j].k })
	for _, p := range all {
		v := p.e.val
		if p.e.kind == entryBlob {
			var err error
			if v, err = s.readBlobEntry(p.k, p.e); err != nil {
				return err
			}
		}
		if err := fn(p.k, v); err != nil {
			return err
		}
	}
	return nil
}

// readBlobEntry reads a blob value captured by a scan, retrying through
// the index once if the blob segment was GC'd under a concurrent
// supersede (mirrors Get's retry).
func (s *Store) readBlobEntry(key string, e entry) ([]byte, error) {
	v, err := s.blobs.read(e.blob)
	if err == nil {
		return v, nil
	}
	v, gerr := s.Get(key)
	if gerr != nil {
		if errors.Is(gerr, ErrNotFound) {
			return nil, err
		}
		return nil, gerr
	}
	return v, nil
}

// Len returns the number of live keys.
func (s *Store) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}

// Sync flushes both logs to stable storage. It runs entirely on the
// committer, touching no index locks — readers and writers proceed
// while the disk flush is in flight.
func (s *Store) Sync() error {
	if s.wal == nil {
		return nil
	}
	if s.closed.Load() {
		return ErrClosed
	}
	return s.wal.syncBarrier()
}

// DiskUsage reports the bytes the store occupies on disk (WAL segments
// plus blob segments). Zero for memory stores.
func (s *Store) DiskUsage() int64 {
	if s.wal == nil {
		return 0
	}
	return s.wal.diskUsage() + s.blobs.diskUsage()
}

// Close flushes and closes the logs. Safe to call twice.
func (s *Store) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	if s.wal == nil {
		return nil
	}
	// Wait out any in-flight compaction pass before tearing the logs
	// down; new passes see the closed flag and refuse.
	s.compactMu.Lock()
	defer s.compactMu.Unlock()
	err := s.wal.close()
	if berr := s.blobs.close(); err == nil {
		err = berr
	}
	return err
}
