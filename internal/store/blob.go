package store

import (
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// blobRef locates a large value in the blob log. The CRC covers the
// value bytes, letting replay reject references into a torn blob tail.
type blobRef struct {
	Seg uint64
	Off int64
	Len int64
	CRC uint32
}

func blobSegmentName(id uint64) string { return fmt.Sprintf("blob-%08d.seg", id) }

// blobStore is the append-only log for values at or above
// BlobThreshold. Values are raw bytes at known offsets — all framing
// lives in the WAL reference. Segments are sealed (fsynced) before a
// new one opens, so only the newest segment can hold torn bytes after
// a crash; torn space in any segment is reclaimed when blob GC deletes
// segments with no surviving references.
type blobStore struct {
	dir  string
	opts *Options
	met  *metrics

	mu         sync.Mutex // append/roll state
	active     *os.File
	activeID   uint64
	activeSize int64
	dirty      bool // bytes written since the last fsync

	segMu sync.Mutex
	segs  map[uint64]int64 // sealed segment id -> size

	readMu  sync.Mutex
	readers map[uint64]*os.File
}

func openBlobStore(dir string, opts *Options, met *metrics) (*blobStore, error) {
	b := &blobStore{
		dir: dir, opts: opts, met: met,
		segs:    make(map[uint64]int64),
		readers: make(map[uint64]*os.File),
	}
	names, err := filepath.Glob(filepath.Join(dir, "blob-*.seg"))
	if err != nil {
		return nil, fmt.Errorf("store: scan blobs: %w", err)
	}
	sort.Strings(names)
	var ids []uint64
	for _, name := range names {
		var id uint64
		if _, err := fmt.Sscanf(filepath.Base(name), "blob-%d.seg", &id); err != nil {
			continue
		}
		fi, err := os.Stat(name)
		if err != nil {
			return nil, fmt.Errorf("store: stat blob: %w", err)
		}
		b.segs[id] = fi.Size()
		ids = append(ids, id)
	}
	nextID := uint64(1)
	if len(ids) > 0 {
		// The newest segment stays active: appends land after any torn
		// crash bytes (dead space reclaimed by GC), offsets stay valid.
		last := ids[len(ids)-1]
		f, err := os.OpenFile(filepath.Join(dir, blobSegmentName(last)), os.O_RDWR|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("store: open blob segment: %w", err)
		}
		b.active = f
		b.activeID = last
		b.activeSize = b.segs[last]
		delete(b.segs, last)
	} else {
		if err := b.openSegmentLocked(nextID); err != nil {
			return nil, err
		}
	}
	b.met.blobBytes.Set(b.diskUsage())
	return b, nil
}

func (b *blobStore) openSegmentLocked(id uint64) error {
	f, err := os.OpenFile(filepath.Join(b.dir, blobSegmentName(id)), os.O_CREATE|os.O_RDWR|os.O_APPEND|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: open blob segment: %w", err)
	}
	b.active = f
	b.activeID = id
	b.activeSize = 0
	b.dirty = false
	return nil
}

// append writes the value and returns its reference. The WAL frame
// carrying the reference is enqueued by the caller strictly after this
// returns, so the committer's blob fsync (which precedes the WAL fsync)
// always covers the bytes behind any reference it makes durable.
func (b *blobStore) append(val []byte) (blobRef, error) {
	b.mu.Lock()
	if b.activeSize > 0 && b.activeSize+int64(len(val)) > b.opts.BlobSegmentBytes {
		if err := b.sealLocked(); err != nil {
			b.mu.Unlock()
			return blobRef{}, err
		}
	}
	off := b.activeSize
	seg := b.activeID
	if _, err := b.active.Write(val); err != nil {
		b.mu.Unlock()
		return blobRef{}, fmt.Errorf("store: blob write: %w", err)
	}
	b.activeSize += int64(len(val))
	b.dirty = true
	b.mu.Unlock()
	b.met.blobBytes.Add(int64(len(val)))
	return blobRef{Seg: seg, Off: off, Len: int64(len(val)), CRC: crc32.ChecksumIEEE(val)}, nil
}

// sealLocked fsyncs the active segment, parks its handle for readers,
// and opens the next segment. Caller holds b.mu.
func (b *blobStore) sealLocked() error {
	if err := b.active.Sync(); err != nil {
		return fmt.Errorf("store: blob seal: %w", err)
	}
	b.readMu.Lock()
	b.readers[b.activeID] = b.active
	b.readMu.Unlock()
	b.segMu.Lock()
	b.segs[b.activeID] = b.activeSize
	b.segMu.Unlock()
	return b.openSegmentLocked(b.activeID + 1)
}

// sync flushes appended bytes. Called by the WAL committer before the
// WAL fsync so a durable reference never outlives its bytes.
func (b *blobStore) sync() error {
	b.mu.Lock()
	dirty := b.dirty
	b.dirty = false
	f := b.active
	b.mu.Unlock()
	if !dirty {
		return nil
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("store: blob fsync: %w", err)
	}
	return nil
}

func (b *blobStore) handle(seg uint64) (*os.File, error) {
	b.mu.Lock()
	if seg == b.activeID {
		f := b.active
		b.mu.Unlock()
		return f, nil
	}
	b.mu.Unlock()
	b.readMu.Lock()
	defer b.readMu.Unlock()
	if f, ok := b.readers[seg]; ok {
		return f, nil
	}
	f, err := os.Open(filepath.Join(b.dir, blobSegmentName(seg)))
	if err != nil {
		return nil, fmt.Errorf("store: blob open: %w", err)
	}
	b.readers[seg] = f
	return f, nil
}

// read fetches and checksums the referenced bytes into a fresh buffer.
func (b *blobStore) read(ref blobRef) ([]byte, error) {
	f, err := b.handle(ref.Seg)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, ref.Len)
	if _, err := f.ReadAt(buf, ref.Off); err != nil {
		return nil, fmt.Errorf("store: blob read: %w", err)
	}
	if crc32.ChecksumIEEE(buf) != ref.CRC {
		return nil, fmt.Errorf("store: blob checksum mismatch (seg %d off %d)", ref.Seg, ref.Off)
	}
	return buf, nil
}

// validate checks a replayed reference. Sealed segments were fsynced at
// roll, so an extent check suffices; the active (newest) segment is the
// crash zone, so its references are CRC-verified. Only called during
// single-threaded replay.
func (b *blobStore) validate(ref blobRef) bool {
	if ref.Seg == b.activeID {
		if ref.Off+ref.Len > b.activeSize {
			return false
		}
		v, err := b.read(ref)
		return err == nil && int64(len(v)) == ref.Len
	}
	b.segMu.Lock()
	size, ok := b.segs[ref.Seg]
	b.segMu.Unlock()
	return ok && ref.Off+ref.Len <= size
}

// sealedIDs lists blob segments eligible for GC consideration.
func (b *blobStore) sealedIDs() []uint64 {
	b.segMu.Lock()
	ids := make([]uint64, 0, len(b.segs))
	for id := range b.segs {
		ids = append(ids, id)
	}
	b.segMu.Unlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// removeSegment deletes an unreferenced sealed blob segment.
func (b *blobStore) removeSegment(id uint64) error {
	b.segMu.Lock()
	size, ok := b.segs[id]
	delete(b.segs, id)
	b.segMu.Unlock()
	if !ok {
		return nil
	}
	b.readMu.Lock()
	if f, ok := b.readers[id]; ok {
		f.Close()
		delete(b.readers, id)
	}
	b.readMu.Unlock()
	if err := os.Remove(filepath.Join(b.dir, blobSegmentName(id))); err != nil {
		return fmt.Errorf("store: remove blob segment: %w", err)
	}
	b.met.blobBytes.Add(-size)
	return nil
}

func (b *blobStore) diskUsage() int64 {
	b.mu.Lock()
	n := b.activeSize
	b.mu.Unlock()
	b.segMu.Lock()
	for _, sz := range b.segs {
		n += sz
	}
	b.segMu.Unlock()
	return n
}

func (b *blobStore) close() error {
	b.mu.Lock()
	var err error
	if b.dirty {
		err = b.active.Sync()
	}
	if cerr := b.active.Close(); err == nil {
		err = cerr
	}
	b.mu.Unlock()
	b.readMu.Lock()
	for _, f := range b.readers {
		f.Close()
	}
	b.readers = map[uint64]*os.File{}
	b.readMu.Unlock()
	return err
}
