package store

import (
	"path/filepath"

	"mdagent/internal/obs"
)

// metrics pins the engine's mdagent_store_* series at construction so
// hot paths pay one atomic op per event. Stores are labeled by the base
// name of their directory ("mem" for memory stores); stores sharing a
// directory name share series.
type metrics struct {
	puts  *obs.Counter
	gets  *obs.Counter
	dels  *obs.Counter
	scans *obs.Counter

	putWait       *obs.Histogram // Put call latency (enqueue -> ack)
	batchFrames   *obs.Histogram // group-commit batch size, frames (unit ns = 1 frame)
	walBytes      *obs.Counter   // bytes appended to the WAL
	fsyncs        *obs.Counter
	fsyncWait     *obs.Histogram // blob + WAL fsync latency
	segments      *obs.Gauge     // WAL segments incl. active
	blobBytes     *obs.Gauge     // bytes resident in the blob log
	compactions   *obs.Counter
	replaySkipped *obs.Counter // frames dropped at replay (torn tails, dead blob refs)
}

func newMetrics(dir string) *metrics {
	label := "mem"
	if dir != "" {
		label = filepath.Base(dir)
	}
	r := obs.Default
	return &metrics{
		puts:          r.Counter("mdagent_store_puts_total", "dir", label),
		gets:          r.Counter("mdagent_store_gets_total", "dir", label),
		dels:          r.Counter("mdagent_store_deletes_total", "dir", label),
		scans:         r.Counter("mdagent_store_scans_total", "dir", label),
		putWait:       r.Histogram("mdagent_store_put_wait_seconds", "dir", label),
		batchFrames:   r.Histogram("mdagent_store_commit_batch_frames", "dir", label),
		walBytes:      r.Counter("mdagent_store_wal_bytes_total", "dir", label),
		fsyncs:        r.Counter("mdagent_store_fsyncs_total", "dir", label),
		fsyncWait:     r.Histogram("mdagent_store_fsync_seconds", "dir", label),
		segments:      r.Gauge("mdagent_store_segments", "dir", label),
		blobBytes:     r.Gauge("mdagent_store_blob_bytes", "dir", label),
		compactions:   r.Counter("mdagent_store_compactions_total", "dir", label),
		replaySkipped: r.Counter("mdagent_store_replay_skipped_total", "dir", label),
	}
}
