package store

import "path/filepath"

// Compact folds every cold WAL segment into the tail, one segment at a
// time, then garbage-collects unreferenced blob segments. The write
// path is never globally blocked: for each key whose live entry still
// lives in the segment being compacted, the entry is re-emitted to the
// WAL under that key's shard lock only. Staleness is version-checked —
// an entry is re-emitted only if its WAL sequence falls inside the
// segment's range, so a concurrent overwrite (which lands in a newer
// segment) wins and the stale re-emit is simply skipped.
//
// Segments are processed oldest-first, which makes dropping tombstones
// safe: when the oldest segment is compacted, any put a tombstone in it
// was masking has already been dropped with an older segment.
func (s *Store) Compact() error {
	if s.wal == nil {
		return nil
	}
	s.compactMu.Lock()
	defer s.compactMu.Unlock()
	if s.closed.Load() {
		return ErrClosed
	}
	// Seal the active segment so everything written so far is cold.
	// Re-emits land in the fresh tail, which is not in this snapshot.
	if err := s.wal.forceRoll(); err != nil {
		return err
	}
	for _, seg := range s.wal.sealedSegments() {
		if err := s.compactSegment(seg); err != nil {
			return err
		}
	}
	if err := s.blobGC(); err != nil {
		return err
	}
	s.deadBytes.Store(0)
	s.met.compactions.Inc()
	return nil
}

// maybeAutoCompact starts a background compaction pass when the
// estimated superseded bytes cross the configured threshold AND make up
// a meaningful share of the on-disk bytes. The second condition bounds
// write amplification under churn-heavy load: without it, a workload
// that overwrites large values continuously re-triggers compaction and
// each pass force-rolls and fsyncs the WAL, turning a SyncNever store
// disk-bound. One pass at a time; the no-op path is two atomic loads.
func (s *Store) maybeAutoCompact() {
	if s.wal == nil || s.opts.CompactMinDead < 0 {
		return
	}
	dead := s.deadBytes.Load()
	if dead < s.opts.CompactMinDead {
		return
	}
	if dead < s.DiskUsage()/2 {
		return
	}
	if !s.compacting.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer s.compacting.Store(false)
		if s.closed.Load() {
			return
		}
		_ = s.Compact() // failure leaves segments in place; sticky WAL errors surface on writes
	}()
}

// compactSegment re-emits the live entries whose defining frames are in
// seg, syncs them, and unlinks the segment.
func (s *Store) compactSegment(seg segmentInfo) error {
	path := filepath.Join(s.dir, segmentName(seg.id))
	seen := make(map[string]struct{})
	var keys []string
	if _, err := replaySegment(path, func(f frame) {
		if _, ok := seen[f.key]; !ok {
			seen[f.key] = struct{}{}
			keys = append(keys, f.key)
		}
	}); err != nil {
		return err
	}
	for _, key := range keys {
		sh := s.shardOf(key)
		sh.mu.Lock()
		e, ok := sh.m[key]
		if ok && e.seq >= seg.minSeq && e.seq <= seg.maxSeq {
			var frame []byte
			if e.kind == entryBlob {
				frame = encodeBlobFrame(key, e.blob)
			} else {
				vlen := len(e.val)
				var voff int
				frame, voff = encodeInlineFrame(key, e.val)
				// Re-point the index at the fresh frame so the old
				// segment's replay buffer can be released.
				e.val = frame[voff : voff+vlen : voff+vlen]
			}
			e.seq = s.wal.enqueue(frame)
			sh.m[key] = e
		}
		sh.mu.Unlock()
	}
	// The re-emitted frames must be durable before their old home goes.
	if err := s.wal.syncBarrier(); err != nil {
		return err
	}
	return s.wal.removeSegment(seg.id)
}

// blobGC deletes sealed blob segments with no surviving index
// references. New references only ever target the active blob segment,
// so a sealed segment observed unreferenced stays unreferenced.
func (s *Store) blobGC() error {
	candidates := s.blobs.sealedIDs()
	if len(candidates) == 0 {
		return nil
	}
	live := make(map[uint64]bool)
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for _, e := range sh.m {
			if e.kind == entryBlob {
				live[e.blob.Seg] = true
			}
		}
		sh.mu.RUnlock()
	}
	for _, id := range candidates {
		if !live[id] {
			if err := s.blobs.removeSegment(id); err != nil {
				return err
			}
		}
	}
	return nil
}
