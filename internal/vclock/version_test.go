package vclock

import "testing"

func TestVersionTickAndCompare(t *testing.T) {
	var zero Version
	a := zero.Tick("a")   // {a:1}
	a2 := a.Tick("a")     // {a:2}
	b := zero.Tick("b")   // {b:1}
	merged := a2.Merge(b) // {a:2 b:1}
	mergedB := merged.Tick("b")

	cases := []struct {
		name string
		x, y Version
		want Ordering
	}{
		{"zero-equal", zero, nil, Equal},
		{"zero-before", zero, a, Before},
		{"after-zero", a, zero, After},
		{"self-equal", a2, a2, Equal},
		{"ancestor", a, a2, Before},
		{"descendant", a2, a, After},
		{"concurrent", a2, b, Concurrent},
		{"merge-dominates-both", merged, a2, After},
		{"merge-dominates-b", merged, b, After},
		{"tick-after-merge", mergedB, merged, After},
	}
	for _, c := range cases {
		if got := c.x.Compare(c.y); got != c.want {
			t.Errorf("%s: %v.Compare(%v) = %v, want %v", c.name, c.x, c.y, got, c.want)
		}
	}
	if !merged.Dominates(a2) || !merged.Dominates(b) || !merged.Dominates(nil) {
		t.Errorf("merged %v should dominate its inputs", merged)
	}
	if a2.Dominates(b) {
		t.Errorf("%v should not dominate concurrent %v", a2, b)
	}
}

func TestVersionValueSemantics(t *testing.T) {
	a := Version{}.Tick("a")
	before := a.Clone()
	_ = a.Tick("a")
	_ = a.Merge(Version{"b": 9})
	if a.Compare(before) != Equal {
		t.Fatalf("Tick/Merge mutated the receiver: %v != %v", a, before)
	}
	if a.Counter("a") != 1 || a.Counter("missing") != 0 {
		t.Fatalf("Counter: got a=%d missing=%d", a.Counter("a"), a.Counter("missing"))
	}
}

func TestVersionString(t *testing.T) {
	v := Version{"b": 1, "a": 2}
	if got, want := v.String(), "{a:2 b:1}"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}
