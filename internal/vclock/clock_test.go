package vclock

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestVirtualStartsAtEpoch(t *testing.T) {
	epoch := time.Date(2007, 6, 25, 0, 0, 0, 0, time.UTC) // ICDCS 2007 week
	v := NewVirtual(epoch)
	if got := v.Now(); !got.Equal(epoch) {
		t.Fatalf("Now() = %v, want %v", got, epoch)
	}
}

func TestVirtualChargeAdvances(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	v.Charge(1500 * time.Millisecond)
	v.Charge(250 * time.Millisecond)
	if got, want := v.Now().Sub(time.Unix(0, 0)), 1750*time.Millisecond; got != want {
		t.Fatalf("elapsed = %v, want %v", got, want)
	}
}

func TestVirtualNegativeChargeIgnored(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	v.Charge(-time.Second)
	if got := v.Now(); !got.Equal(time.Unix(0, 0)) {
		t.Fatalf("negative charge moved the clock to %v", got)
	}
}

func TestVirtualConcurrentCharges(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	const (
		goroutines = 8
		perG       = 1000
	)
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for i := 0; i < goroutines; i++ {
		go func() {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				v.Charge(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	want := time.Duration(goroutines*perG) * time.Millisecond
	if got := v.Now().Sub(time.Unix(0, 0)); got != want {
		t.Fatalf("elapsed = %v, want %v (charges lost under concurrency)", got, want)
	}
}

func TestVirtualElapsed(t *testing.T) {
	v := NewVirtual(time.Unix(100, 0))
	start := v.Now()
	v.Charge(42 * time.Millisecond)
	if got := v.Elapsed(start); got != 42*time.Millisecond {
		t.Fatalf("Elapsed = %v, want 42ms", got)
	}
}

func TestSkewedOffsetsReading(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	s := NewSkewed(v, 3*time.Second)
	if got := s.Now().Sub(v.Now()); got != 3*time.Second {
		t.Fatalf("skew = %v, want 3s", got)
	}
	if got := s.Offset(); got != 3*time.Second {
		t.Fatalf("Offset() = %v, want 3s", got)
	}
}

func TestSkewedChargePassesThrough(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	s := NewSkewed(v, -time.Minute)
	s.Charge(time.Second)
	if got := v.Now().Sub(time.Unix(0, 0)); got != time.Second {
		t.Fatalf("base advanced %v, want 1s", got)
	}
}

// TestSkewConstantDifference is the property underlying the paper's Fig. 7
// measurement: for any sequence of charges, the difference between the
// skewed reading and the base reading stays constant.
func TestSkewConstantDifference(t *testing.T) {
	f := func(offsetMs int16, chargesMs []uint16) bool {
		base := NewVirtual(time.Unix(0, 0))
		offset := time.Duration(offsetMs) * time.Millisecond
		sk := NewSkewed(base, offset)
		for _, c := range chargesMs {
			sk.Charge(time.Duration(c) * time.Millisecond)
			if sk.Now().Sub(base.Now()) != offset {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStopwatchLaps(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	sw := NewStopwatch(v)
	v.Charge(100 * time.Millisecond)
	if lap := sw.Restart(); lap != 100*time.Millisecond {
		t.Fatalf("first lap = %v, want 100ms", lap)
	}
	v.Charge(250 * time.Millisecond)
	if got := sw.Elapsed(); got != 250*time.Millisecond {
		t.Fatalf("Elapsed = %v, want 250ms", got)
	}
}

func TestRealChargeSleeps(t *testing.T) {
	var r Real
	before := time.Now()
	r.Charge(10 * time.Millisecond)
	if got := time.Since(before); got < 10*time.Millisecond {
		t.Fatalf("Real.Charge returned after %v, want >= 10ms", got)
	}
	// Negative and zero charges must not sleep.
	before = time.Now()
	r.Charge(0)
	r.Charge(-time.Hour)
	if got := time.Since(before); got > time.Second {
		t.Fatalf("zero/negative charge took %v", got)
	}
}
