// Package vclock provides the clock abstraction used by every timed
// operation in MDAgent.
//
// The paper's evaluation (§5) ran on a 2002-era testbed (P4 1.7 GHz and
// PM 1.6 GHz over 10 Mbps Ethernet). To reproduce the reported durations
// deterministically, all migration phases and network transfers are timed
// through a Clock: a Real clock paces live examples with actual sleeps,
// while a Virtual clock advances instantly by explicit cost charges so that
// benchmarks replay the calibrated 2002-era costs in microseconds of wall
// time. Per-host SkewedClock models the constant clock offset assumed by
// the paper's Fig. 7 round-trip measurement.
package vclock

import (
	"sync"
	"time"
)

// Clock is the time source for costed operations.
//
// Charge(d) accounts for d of simulated work: a virtual clock advances its
// reading by d immediately, while a real clock sleeps for d. Now reports the
// clock's current reading. Implementations must be safe for concurrent use.
type Clock interface {
	// Now returns the clock's current reading.
	Now() time.Time
	// Charge accounts for d of simulated work or delay.
	Charge(d time.Duration)
}

// Real is a Clock backed by the wall clock. Charge sleeps.
//
// The zero value is ready to use.
type Real struct{}

var _ Clock = (*Real)(nil)

// Now returns the current wall-clock time.
func (*Real) Now() time.Time { return time.Now() }

// Charge sleeps for d, pacing live demos at realistic speed.
func (*Real) Charge(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}

// Virtual is a Clock whose reading advances only by Charge calls. It lets
// benchmarks replay multi-second 2002-era migrations in microseconds while
// reporting the simulated durations.
//
// The zero value starts at the zero time; use NewVirtual to pick an epoch.
type Virtual struct {
	mu  sync.Mutex
	now time.Time
}

var _ Clock = (*Virtual)(nil)

// NewVirtual returns a Virtual clock whose reading starts at epoch.
func NewVirtual(epoch time.Time) *Virtual {
	return &Virtual{now: epoch}
}

// Now returns the current virtual reading.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// Charge advances the virtual reading by d. Negative charges are ignored.
func (v *Virtual) Charge(d time.Duration) {
	if d <= 0 {
		return
	}
	v.mu.Lock()
	v.now = v.now.Add(d)
	v.mu.Unlock()
}

// Elapsed reports the virtual time elapsed since start.
func (v *Virtual) Elapsed(start time.Time) time.Duration {
	return v.Now().Sub(start)
}

// Skewed wraps a Clock and offsets every reading by a constant amount,
// modeling a host whose crystal runs at the same rate but was set
// differently — exactly the assumption behind the paper's Fig. 7:
// "the difference of time values of clocks at the same time is nearly a
// constant value". Charges pass through to the underlying clock.
type Skewed struct {
	base   Clock
	offset time.Duration
}

var _ Clock = (*Skewed)(nil)

// NewSkewed returns a Clock reading base's time shifted by offset.
func NewSkewed(base Clock, offset time.Duration) *Skewed {
	return &Skewed{base: base, offset: offset}
}

// Now returns the skewed reading.
func (s *Skewed) Now() time.Time { return s.base.Now().Add(s.offset) }

// Charge forwards to the underlying clock.
func (s *Skewed) Charge(d time.Duration) { s.base.Charge(d) }

// Offset returns the constant skew applied by this clock.
func (s *Skewed) Offset() time.Duration { return s.offset }

// Stopwatch measures an interval on a single Clock.
type Stopwatch struct {
	clock Clock
	start time.Time
}

// NewStopwatch starts a stopwatch on c.
func NewStopwatch(c Clock) *Stopwatch {
	return &Stopwatch{clock: c, start: c.Now()}
}

// Elapsed reports time since the stopwatch started.
func (s *Stopwatch) Elapsed() time.Duration { return s.clock.Now().Sub(s.start) }

// Restart resets the start point to now and returns the previous lap.
func (s *Stopwatch) Restart() time.Duration {
	now := s.clock.Now()
	lap := now.Sub(s.start)
	s.start = now
	return lap
}
