package vclock

import (
	"fmt"
	"sort"
	"strings"
)

// Version is a version vector: a map from node id to that node's update
// counter. The federated registry (internal/cluster) stamps every
// replicated record with one so that concurrent updates from different
// smart-space centers are detected instead of silently overwritten.
//
// The zero value (nil map) is a valid "never written" version. Versions
// are value types: methods never mutate the receiver, they return copies.
type Version map[string]uint64

// Ordering is the outcome of comparing two version vectors.
type Ordering int

// Comparison outcomes.
const (
	Equal      Ordering = iota // identical histories
	Before                     // receiver strictly precedes the argument
	After                      // receiver strictly succeeds the argument
	Concurrent                 // histories diverged (conflict)
)

func (o Ordering) String() string {
	switch o {
	case Equal:
		return "equal"
	case Before:
		return "before"
	case After:
		return "after"
	case Concurrent:
		return "concurrent"
	}
	return fmt.Sprintf("Ordering(%d)", int(o))
}

// Tick returns a copy of v with node's counter advanced by one.
func (v Version) Tick(node string) Version {
	out := make(Version, len(v)+1)
	for k, c := range v {
		out[k] = c
	}
	out[node]++
	return out
}

// Merge returns the element-wise maximum of v and o — the version after
// an observer has seen both histories.
func (v Version) Merge(o Version) Version {
	out := make(Version, len(v)+len(o))
	for k, c := range v {
		out[k] = c
	}
	for k, c := range o {
		if c > out[k] {
			out[k] = c
		}
	}
	return out
}

// Compare orders v against o.
func (v Version) Compare(o Version) Ordering {
	var less, more bool
	for k, c := range v {
		oc := o[k]
		if c > oc {
			more = true
		} else if c < oc {
			less = true
		}
	}
	for k, oc := range o {
		if v[k] < oc {
			less = true
		}
	}
	switch {
	case less && more:
		return Concurrent
	case less:
		return Before
	case more:
		return After
	}
	return Equal
}

// Dominates reports whether v has seen everything o has (v >= o).
func (v Version) Dominates(o Version) bool {
	ord := v.Compare(o)
	return ord == Equal || ord == After
}

// Counter returns node's counter in v.
func (v Version) Counter(node string) uint64 { return v[node] }

// Clone returns an independent copy of v.
func (v Version) Clone() Version {
	if v == nil {
		return nil
	}
	out := make(Version, len(v))
	for k, c := range v {
		out[k] = c
	}
	return out
}

// String renders the vector deterministically, e.g. "{a:2 b:1}".
func (v Version) String() string {
	keys := make([]string, 0, len(v))
	for k := range v {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s:%d", k, v[k])
	}
	b.WriteByte('}')
	return b.String()
}
