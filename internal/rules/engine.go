package rules

import (
	"fmt"
	"strconv"
	"sync"

	"mdagent/internal/rdf"
)

// Derivation records one rule firing: which rule, under which binding,
// produced which triples. Autonomous agents surface these as explanations
// for migration decisions.
type Derivation struct {
	Rule     string
	Binding  rdf.Binding
	Produced []rdf.Triple
}

// Engine runs a rule set to fixpoint over a graph. It is safe for
// concurrent use; each Infer call synchronizes internally.
//
// Rules whose head introduces variables not bound by the body (like the
// paper's Rule 3 ?action node) mint a fresh blank node per firing. To keep
// inference terminating, such rules fire at most once per distinct body
// binding — the once-per-token semantics of Jena's RETE engine. The firing
// memory persists across Infer calls so re-running on the same knowledge
// base is idempotent; call Reset when switching to an unrelated graph.
type Engine struct {
	mu      sync.Mutex
	rules   []Rule
	maxIter int
	skolem  int             // counter for fresh blank nodes
	fired   map[string]bool // (rule, binding) keys for skolemizing rules
}

// Option configures an Engine.
type Option func(*Engine)

// WithMaxIterations bounds the number of fixpoint rounds (default 100).
func WithMaxIterations(n int) Option {
	return func(e *Engine) { e.maxIter = n }
}

// NewEngine builds an engine over the given rules. Rules are validated.
func NewEngine(rs []Rule, opts ...Option) (*Engine, error) {
	for _, r := range rs {
		if err := r.Validate(); err != nil {
			return nil, err
		}
	}
	e := &Engine{rules: rs, maxIter: 100, fired: make(map[string]bool)}
	for _, o := range opts {
		o(e)
	}
	return e, nil
}

// Reset clears the engine's firing memory. Use it when reusing an engine
// on a different knowledge base.
func (e *Engine) Reset() {
	e.mu.Lock()
	e.fired = make(map[string]bool)
	e.mu.Unlock()
}

// AddRule appends a rule to the engine.
func (e *Engine) AddRule(r Rule) error {
	if err := r.Validate(); err != nil {
		return err
	}
	e.mu.Lock()
	e.rules = append(e.rules, r)
	e.mu.Unlock()
	return nil
}

// Rules returns a copy of the engine's rule set.
func (e *Engine) Rules() []Rule {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Rule, len(e.rules))
	copy(out, e.rules)
	return out
}

// Result summarizes one Infer run.
type Result struct {
	Added       int // number of new triples inferred
	Iterations  int // fixpoint rounds executed
	Derivations []Derivation
}

// Infer runs all rules to fixpoint, mutating g in place, and returns the
// run summary. The algorithm is naive-with-dedup: each round solves every
// rule body against the current graph and adds instantiated heads; it
// stops when a round adds nothing (monotonic, so a fixpoint exists) or
// when the iteration bound trips.
func (e *Engine) Infer(g *rdf.Graph) (Result, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	var res Result
	for res.Iterations < e.maxIter {
		res.Iterations++
		addedThisRound := 0
		for _, r := range e.rules {
			fired, err := e.fireLocked(g, r)
			if err != nil {
				return res, err
			}
			for _, d := range fired {
				addedThisRound += len(d.Produced)
				res.Derivations = append(res.Derivations, d)
			}
		}
		res.Added += addedThisRound
		if addedThisRound == 0 {
			return res, nil
		}
	}
	return res, fmt.Errorf("rules: no fixpoint after %d iterations (%d triples added)", e.maxIter, res.Added)
}

// fireLocked evaluates one rule against g and adds novel conclusions.
func (e *Engine) fireLocked(g *rdf.Graph, r Rule) ([]Derivation, error) {
	bindings := []rdf.Binding{{}}
	for _, c := range r.Body {
		var next []rdf.Binding
		switch c.Kind {
		case ClausePattern:
			for _, b := range bindings {
				next = append(next, g.MatchBindings(c.Pattern, b)...)
			}
		case ClauseBuiltin:
			fn := builtins[c.Builtin] // existence checked by Validate
			for _, b := range bindings {
				args := make([]rdf.Term, len(c.Args))
				for i, a := range c.Args {
					args[i] = b.Resolve(a)
				}
				ok, err := fn(args)
				if err != nil {
					return nil, fmt.Errorf("%s: %w", r.Name, err)
				}
				if ok {
					next = append(next, b)
				}
			}
		}
		bindings = next
		if len(bindings) == 0 {
			return nil, nil
		}
	}

	skolemizing := r.hasHeadOnlyVars()
	var fired []Derivation
	for _, b := range bindings {
		if skolemizing {
			key := firingKey(r.Name, b)
			if e.fired[key] {
				continue
			}
			e.fired[key] = true
		}
		skolems := make(map[string]rdf.Term)
		var produced []rdf.Triple
		for _, h := range r.Head {
			inst := b.ResolveTriple(h.Pattern)
			inst = rdf.T(
				e.skolemize(inst.S, skolems),
				e.skolemize(inst.P, skolems),
				e.skolemize(inst.O, skolems),
			)
			if g.Add(inst) {
				produced = append(produced, inst)
			}
		}
		if len(produced) > 0 {
			fired = append(fired, Derivation{Rule: r.Name, Binding: b.Clone(), Produced: produced})
		}
	}
	return fired, nil
}

// hasHeadOnlyVars reports whether any head variable is never bound by a
// body pattern — the condition under which firings skolemize.
func (r Rule) hasHeadOnlyVars() bool {
	bodyVars := make(map[string]bool)
	for _, c := range r.Body {
		if c.Kind == ClausePattern {
			for _, v := range c.Pattern.Vars() {
				bodyVars[v] = true
			}
		}
	}
	for _, c := range r.Head {
		for _, v := range c.Pattern.Vars() {
			if !bodyVars[v] {
				return true
			}
		}
	}
	return false
}

// firingKey canonicalizes a (rule, binding) pair for the firing memory.
func firingKey(rule string, b rdf.Binding) string {
	return rule + "|" + b.String()
}

// skolemize replaces a head-only (still unbound) variable with a fresh
// blank node, shared across the head of a single firing.
func (e *Engine) skolemize(t rdf.Term, perFiring map[string]rdf.Term) rdf.Term {
	if !t.IsVar() {
		return t
	}
	if sk, ok := perFiring[t.Value]; ok {
		return sk
	}
	e.skolem++
	sk := rdf.Blank("sk" + strconv.Itoa(e.skolem))
	perFiring[t.Value] = sk
	return sk
}

// PaperRules returns the three rules shown in the paper's Fig. 6:
// transitivity of locatedIn, printer compatibility, and the move decision
// guarded by network response time < 1000 ms.
func PaperRules(ns *rdf.Namespaces) []Rule {
	const src = `
# Fig. 6, Rule 1: locatedIn is transitive.
[Rule1: (?p imcl:locatedIn ?q), (?q imcl:locatedIn ?t) -> (?p imcl:locatedIn ?t)]

# Fig. 6, Rule 2: resources of the printer type are mutually compatible.
[Rule2: (?ptr imcl:printerObj 'printer'), (?srcRsc rdf:type ?ptr), (?destRsc imcl:printerObj ?ptr)
        -> (?srcRsc imcl:compatible ?destRsc)]

# Fig. 6, Rule 3: compatible resources + good network (< 1000 ms) => move.
[Rule3: (?addr1 imcl:address ?value1), (?addr2 imcl:address ?value2),
        (?srcRsc imcl:compatible ?destRsc), (?n imcl:responseTime ?t),
        lessThan(?t, '1000'^^xsd:double)
        -> (?action imcl:actName "move"), (?action imcl:srcAddress ?addr1), (?action imcl:destAddress ?addr2)]
`
	return MustParse(src, ns)
}
