// Package rules implements the forward-chaining rule engine embedded in
// MDAgent's autonomous agents (paper §4.4), substituting for Jena 2. It
// parses the paper's rule syntax —
//
//	[Rule1: (?p imcl:locatedIn ?q), (?q imcl:locatedIn ?t) -> (?p imcl:locatedIn ?t)]
//	[Rule3: ..., lessThan(?t, '1000'^^xsd:double) -> (?action imcl:actName "move"), ...]
//
// — and runs the rules to fixpoint over an rdf.Graph, recording derivation
// traces. Head-only variables are skolemized to fresh blank nodes per
// firing, matching Jena's temp-node behaviour.
package rules

import (
	"fmt"
	"strings"

	"mdagent/internal/rdf"
)

// ClauseKind distinguishes triple patterns from builtin calls.
type ClauseKind int

// Clause kinds.
const (
	ClausePattern ClauseKind = iota + 1
	ClauseBuiltin
)

// Clause is one element of a rule body or head: either a triple pattern
// (?s p ?o) or a builtin invocation like lessThan(?t, '1000'^^xsd:double).
type Clause struct {
	Kind    ClauseKind
	Pattern rdf.Triple // valid when Kind == ClausePattern
	Builtin string     // valid when Kind == ClauseBuiltin
	Args    []rdf.Term // builtin arguments
}

// String renders the clause in rule syntax.
func (c Clause) String() string {
	switch c.Kind {
	case ClausePattern:
		return fmt.Sprintf("(%s %s %s)", c.Pattern.S, c.Pattern.P, c.Pattern.O)
	case ClauseBuiltin:
		args := make([]string, len(c.Args))
		for i, a := range c.Args {
			args[i] = a.String()
		}
		return c.Builtin + "(" + strings.Join(args, ", ") + ")"
	default:
		return "<invalid clause>"
	}
}

// Rule is a named Horn rule: body clauses imply head patterns.
type Rule struct {
	Name string
	Body []Clause
	Head []Clause // head clauses must be patterns (no builtins)
}

// String renders the rule in the paper's bracketed syntax.
func (r Rule) String() string {
	var sb strings.Builder
	sb.WriteString("[")
	sb.WriteString(r.Name)
	sb.WriteString(": ")
	for i, c := range r.Body {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(c.String())
	}
	sb.WriteString(" -> ")
	for i, c := range r.Head {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(c.String())
	}
	sb.WriteString("]")
	return sb.String()
}

// Validate checks structural well-formedness: a non-empty head of pattern
// clauses and a body whose builtins are known.
func (r Rule) Validate() error {
	if r.Name == "" {
		return fmt.Errorf("rules: rule has no name")
	}
	if len(r.Head) == 0 {
		return fmt.Errorf("rules: %s: empty head", r.Name)
	}
	for _, c := range r.Head {
		if c.Kind != ClausePattern {
			return fmt.Errorf("rules: %s: builtin %q not allowed in head", r.Name, c.Builtin)
		}
	}
	hasPattern := false
	for _, c := range r.Body {
		switch c.Kind {
		case ClausePattern:
			hasPattern = true
		case ClauseBuiltin:
			if _, ok := builtins[c.Builtin]; !ok {
				return fmt.Errorf("rules: %s: unknown builtin %q", r.Name, c.Builtin)
			}
		default:
			return fmt.Errorf("rules: %s: invalid clause kind %d", r.Name, c.Kind)
		}
	}
	if !hasPattern && len(r.Body) > 0 {
		return fmt.Errorf("rules: %s: body has only builtins; needs at least one pattern", r.Name)
	}
	return nil
}

// builtinFunc evaluates a builtin under a binding. Arguments arrive
// resolved (bound variables substituted).
type builtinFunc func(args []rdf.Term) (bool, error)

func numeric2(name string, args []rdf.Term, cmp func(a, b float64) bool) (bool, error) {
	if len(args) != 2 {
		return false, fmt.Errorf("rules: %s expects 2 arguments, got %d", name, len(args))
	}
	a, okA := args[0].AsFloat()
	b, okB := args[1].AsFloat()
	if !okA || !okB {
		// Unbound variables or non-numeric terms simply fail the guard.
		return false, nil
	}
	return cmp(a, b), nil
}

// builtins is the registry of guard functions usable in rule bodies.
// lessThan appears verbatim in the paper's Rule 3.
var builtins = map[string]builtinFunc{
	"lessThan": func(args []rdf.Term) (bool, error) {
		return numeric2("lessThan", args, func(a, b float64) bool { return a < b })
	},
	"greaterThan": func(args []rdf.Term) (bool, error) {
		return numeric2("greaterThan", args, func(a, b float64) bool { return a > b })
	},
	"le": func(args []rdf.Term) (bool, error) {
		return numeric2("le", args, func(a, b float64) bool { return a <= b })
	},
	"ge": func(args []rdf.Term) (bool, error) {
		return numeric2("ge", args, func(a, b float64) bool { return a >= b })
	},
	"equal": func(args []rdf.Term) (bool, error) {
		if len(args) != 2 {
			return false, fmt.Errorf("rules: equal expects 2 arguments, got %d", len(args))
		}
		if fa, ok := args[0].AsFloat(); ok {
			if fb, ok := args[1].AsFloat(); ok {
				return fa == fb, nil
			}
		}
		return args[0] == args[1], nil
	},
	"notEqual": func(args []rdf.Term) (bool, error) {
		if len(args) != 2 {
			return false, fmt.Errorf("rules: notEqual expects 2 arguments, got %d", len(args))
		}
		if fa, ok := args[0].AsFloat(); ok {
			if fb, ok := args[1].AsFloat(); ok {
				return fa != fb, nil
			}
		}
		return args[0] != args[1], nil
	},
	"bound": func(args []rdf.Term) (bool, error) {
		if len(args) != 1 {
			return false, fmt.Errorf("rules: bound expects 1 argument, got %d", len(args))
		}
		return !args[0].IsVar(), nil
	},
}

// Builtins returns the names of all registered builtins, for diagnostics.
func Builtins() []string {
	names := make([]string, 0, len(builtins))
	for n := range builtins {
		names = append(names, n)
	}
	return names
}
