package rules

import (
	"fmt"
	"strconv"
	"strings"

	"mdagent/internal/rdf"
)

// Parse reads a rule document — any number of bracketed rules in the
// paper's Fig. 6 syntax, with '#' or '//' line comments — resolving
// qualified names against ns.
func Parse(src string, ns *rdf.Namespaces) ([]Rule, error) {
	p := &ruleParser{src: src, ns: ns, line: 1}
	var out []Rule
	for {
		p.skipWS()
		if p.pos >= len(p.src) {
			return out, nil
		}
		r, err := p.parseRule()
		if err != nil {
			return nil, err
		}
		if err := r.Validate(); err != nil {
			return nil, err
		}
		out = append(out, r)
	}
}

// MustParse is Parse for statically known rule text; it panics on error.
func MustParse(src string, ns *rdf.Namespaces) []Rule {
	rs, err := Parse(src, ns)
	if err != nil {
		panic(err)
	}
	return rs
}

// ParsePatterns parses a comma-separated sequence of (s p o) triple
// patterns — the same syntax as a rule body without builtins. It backs the
// OWL-QL-style query text accepted by internal/owl.
func ParsePatterns(src string, ns *rdf.Namespaces) ([]rdf.Triple, error) {
	p := &ruleParser{src: src, ns: ns, line: 1}
	var out []rdf.Triple
	for {
		p.skipWS()
		if p.pos >= len(p.src) {
			if len(out) == 0 {
				return nil, p.errf("empty pattern list")
			}
			return out, nil
		}
		c, err := p.parseClause()
		if err != nil {
			return nil, err
		}
		if c.Kind != ClausePattern {
			return nil, p.errf("builtin %q not allowed in a query", c.Builtin)
		}
		out = append(out, c.Pattern)
		p.skipWS()
		if p.pos < len(p.src) && p.src[p.pos] == ',' {
			p.pos++
		}
	}
}

type ruleParser struct {
	src  string
	pos  int
	line int
	ns   *rdf.Namespaces
}

func (p *ruleParser) errf(format string, args ...any) error {
	return fmt.Errorf("rules: line %d: %s", p.line, fmt.Sprintf(format, args...))
}

func (p *ruleParser) skipWS() {
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		switch {
		case c == '\n':
			p.line++
			p.pos++
		case c == ' ' || c == '\t' || c == '\r':
			p.pos++
		case c == '#':
			p.skipLine()
		case c == '/' && p.pos+1 < len(p.src) && p.src[p.pos+1] == '/':
			p.skipLine()
		default:
			return
		}
	}
}

func (p *ruleParser) skipLine() {
	for p.pos < len(p.src) && p.src[p.pos] != '\n' {
		p.pos++
	}
}

func (p *ruleParser) peek() byte {
	if p.pos < len(p.src) {
		return p.src[p.pos]
	}
	return 0
}

func (p *ruleParser) expect(c byte) error {
	p.skipWS()
	if p.peek() != c {
		return p.errf("expected %q, got %q", string(c), string(p.peek()))
	}
	p.pos++
	return nil
}

func (p *ruleParser) parseRule() (Rule, error) {
	var r Rule
	if err := p.expect('['); err != nil {
		return r, err
	}
	p.skipWS()
	start := p.pos
	for p.pos < len(p.src) && p.src[p.pos] != ':' && p.src[p.pos] != '\n' {
		p.pos++
	}
	if p.peek() != ':' {
		return r, p.errf("rule name must end with ':'")
	}
	r.Name = strings.TrimSpace(p.src[start:p.pos])
	p.pos++

	body, err := p.parseClauseList("->")
	if err != nil {
		return r, err
	}
	r.Body = body
	head, err := p.parseClauseList("]")
	if err != nil {
		return r, err
	}
	r.Head = head
	return r, nil
}

// parseClauseList reads comma-separated clauses until the terminator
// ("->" or "]"), consuming the terminator.
func (p *ruleParser) parseClauseList(term string) ([]Clause, error) {
	var out []Clause
	for {
		p.skipWS()
		if strings.HasPrefix(p.src[p.pos:], term) {
			p.pos += len(term)
			return out, nil
		}
		c, err := p.parseClause()
		if err != nil {
			return nil, err
		}
		out = append(out, c)
		p.skipWS()
		if p.peek() == ',' {
			p.pos++
			continue
		}
		if strings.HasPrefix(p.src[p.pos:], term) {
			p.pos += len(term)
			return out, nil
		}
		return nil, p.errf("expected ',' or %q after clause, got %q", term, string(p.peek()))
	}
}

func (p *ruleParser) parseClause() (Clause, error) {
	p.skipWS()
	if p.peek() == '(' {
		p.pos++
		s, err := p.parseTerm()
		if err != nil {
			return Clause{}, err
		}
		pr, err := p.parseTerm()
		if err != nil {
			return Clause{}, err
		}
		o, err := p.parseTerm()
		if err != nil {
			return Clause{}, err
		}
		if err := p.expect(')'); err != nil {
			return Clause{}, err
		}
		return Clause{Kind: ClausePattern, Pattern: rdf.T(s, pr, o)}, nil
	}
	// Builtin: name(args...).
	start := p.pos
	for p.pos < len(p.src) && isIdentByte(p.src[p.pos]) {
		p.pos++
	}
	name := p.src[start:p.pos]
	if name == "" {
		return Clause{}, p.errf("expected '(' or builtin name, got %q", string(p.peek()))
	}
	if err := p.expect('('); err != nil {
		return Clause{}, err
	}
	var args []rdf.Term
	for {
		p.skipWS()
		if p.peek() == ')' {
			p.pos++
			break
		}
		a, err := p.parseTerm()
		if err != nil {
			return Clause{}, err
		}
		args = append(args, a)
		p.skipWS()
		if p.peek() == ',' {
			p.pos++
		}
	}
	return Clause{Kind: ClauseBuiltin, Builtin: name, Args: args}, nil
}

func isIdentByte(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

func isTermByte(c byte) bool {
	return isIdentByte(c) || c == ':' || c == '-' || c == '.' || c == '#' || c == '/'
}

// parseTerm reads one rule term: ?var, 'literal' or "literal" (with
// optional ^^datatype), <iri>, a bare number, or a qualified name.
func (p *ruleParser) parseTerm() (rdf.Term, error) {
	p.skipWS()
	if p.pos >= len(p.src) {
		return rdf.Term{}, p.errf("unexpected end of rule")
	}
	c := p.src[p.pos]
	switch {
	case c == '?':
		p.pos++
		start := p.pos
		for p.pos < len(p.src) && isIdentByte(p.src[p.pos]) {
			p.pos++
		}
		if p.pos == start {
			return rdf.Term{}, p.errf("empty variable name")
		}
		return rdf.Var(p.src[start:p.pos]), nil
	case c == '\'' || c == '"':
		return p.parseQuoted(c)
	case c == '<':
		p.pos++
		start := p.pos
		for p.pos < len(p.src) && p.src[p.pos] != '>' {
			p.pos++
		}
		if p.pos >= len(p.src) {
			return rdf.Term{}, p.errf("unterminated IRI")
		}
		iri := p.src[start:p.pos]
		p.pos++
		return rdf.IRI(iri), nil
	case c == '-' || c == '+' || (c >= '0' && c <= '9'):
		start := p.pos
		p.pos++
		isFloat := false
		for p.pos < len(p.src) {
			d := p.src[p.pos]
			if d >= '0' && d <= '9' {
				p.pos++
				continue
			}
			if d == '.' || d == 'e' || d == 'E' {
				isFloat = true
				p.pos++
				continue
			}
			break
		}
		lex := p.src[start:p.pos]
		if isFloat {
			if _, err := strconv.ParseFloat(lex, 64); err != nil {
				return rdf.Term{}, p.errf("bad number %q", lex)
			}
			return rdf.TypedLit(lex, rdf.XSDDouble), nil
		}
		if _, err := strconv.ParseInt(lex, 10, 64); err != nil {
			return rdf.Term{}, p.errf("bad integer %q", lex)
		}
		return rdf.TypedLit(lex, rdf.XSDInteger), nil
	default:
		start := p.pos
		for p.pos < len(p.src) && isTermByte(p.src[p.pos]) {
			p.pos++
		}
		word := p.src[start:p.pos]
		if word == "" {
			return rdf.Term{}, p.errf("unexpected character %q", string(c))
		}
		switch word {
		case "true":
			return rdf.Bool(true), nil
		case "false":
			return rdf.Bool(false), nil
		}
		t, err := p.ns.Expand(word)
		if err != nil {
			return rdf.Term{}, p.errf("%v", err)
		}
		return t, nil
	}
}

// parseQuoted reads 'lex' or "lex" with optional ^^datatype suffix, the
// form the paper uses in Rule 3: '1000'^^xsd:double.
func (p *ruleParser) parseQuoted(quote byte) (rdf.Term, error) {
	p.pos++ // opening quote
	var sb strings.Builder
	for p.pos < len(p.src) && p.src[p.pos] != quote {
		if p.src[p.pos] == '\n' {
			return rdf.Term{}, p.errf("newline in literal")
		}
		sb.WriteByte(p.src[p.pos])
		p.pos++
	}
	if p.pos >= len(p.src) {
		return rdf.Term{}, p.errf("unterminated literal")
	}
	p.pos++ // closing quote
	if strings.HasPrefix(p.src[p.pos:], "^^") {
		p.pos += 2
		start := p.pos
		if p.peek() == '<' {
			p.pos++
			s2 := p.pos
			for p.pos < len(p.src) && p.src[p.pos] != '>' {
				p.pos++
			}
			if p.pos >= len(p.src) {
				return rdf.Term{}, p.errf("unterminated datatype IRI")
			}
			iri := p.src[s2:p.pos]
			p.pos++
			return rdf.TypedLit(sb.String(), iri), nil
		}
		for p.pos < len(p.src) && isTermByte(p.src[p.pos]) {
			p.pos++
		}
		dt, err := p.ns.Expand(p.src[start:p.pos])
		if err != nil {
			return rdf.Term{}, p.errf("%v", err)
		}
		return rdf.TypedLit(sb.String(), dt.Value), nil
	}
	return rdf.Lit(sb.String()), nil
}
