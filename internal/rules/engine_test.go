package rules

import (
	"strings"
	"testing"
	"testing/quick"

	"mdagent/internal/rdf"
)

func mustEngine(t *testing.T, src string) *Engine {
	t.Helper()
	rs, err := Parse(src, ns())
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(rs)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestTransitiveClosureRule1(t *testing.T) {
	// Paper Rule 1: locatedIn is transitive. printer -> office821 -> floor8 -> building.
	e := mustEngine(t, `[Rule1: (?p imcl:locatedIn ?q), (?q imcl:locatedIn ?t) -> (?p imcl:locatedIn ?t)]`)
	g := rdf.NewGraph()
	g.Add(rdf.T(rdf.IMCL("printer1"), rdf.IMCL("locatedIn"), rdf.IMCL("office821")))
	g.Add(rdf.T(rdf.IMCL("office821"), rdf.IMCL("locatedIn"), rdf.IMCL("floor8")))
	g.Add(rdf.T(rdf.IMCL("floor8"), rdf.IMCL("locatedIn"), rdf.IMCL("buildingQ")))

	res, err := e.Infer(g)
	if err != nil {
		t.Fatal(err)
	}
	// New facts: printer->floor8, printer->buildingQ, office->buildingQ.
	if res.Added != 3 {
		t.Fatalf("Added = %d, want 3", res.Added)
	}
	if !g.Has(rdf.T(rdf.IMCL("printer1"), rdf.IMCL("locatedIn"), rdf.IMCL("buildingQ"))) {
		t.Fatal("two-step transitive fact missing")
	}
	// Fixpoint must need >1 round for the 2-step derivation plus one
	// empty confirmation round.
	if res.Iterations < 2 {
		t.Fatalf("Iterations = %d, want >= 2", res.Iterations)
	}
}

func TestInferIdempotent(t *testing.T) {
	e := mustEngine(t, `[Rule1: (?p imcl:locatedIn ?q), (?q imcl:locatedIn ?t) -> (?p imcl:locatedIn ?t)]`)
	g := rdf.NewGraph()
	g.Add(rdf.T(rdf.IMCL("a"), rdf.IMCL("locatedIn"), rdf.IMCL("b")))
	g.Add(rdf.T(rdf.IMCL("b"), rdf.IMCL("locatedIn"), rdf.IMCL("c")))
	if _, err := e.Infer(g); err != nil {
		t.Fatal(err)
	}
	n := g.Len()
	res2, err := e.Infer(g)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Added != 0 || g.Len() != n {
		t.Fatalf("second Infer added %d (len %d -> %d), want 0", res2.Added, n, g.Len())
	}
}

func TestPaperPipelineRule2ThenRule3(t *testing.T) {
	// Full Fig. 6 scenario: printers on both hosts, good network => move action.
	g := rdf.NewGraph()
	// Type declarations (Rule 2 matches ?ptr with printerObj 'printer').
	g.Add(rdf.T(rdf.IMCL("PrinterClass"), rdf.IMCL("printerObj"), rdf.Lit("printer")))
	g.Add(rdf.T(rdf.IMCL("srcPrinter"), rdf.RDFType, rdf.IMCL("PrinterClass")))
	g.Add(rdf.T(rdf.IMCL("destPrinter"), rdf.IMCL("printerObj"), rdf.IMCL("PrinterClass")))
	// Addresses for Rule 3.
	g.Add(rdf.T(rdf.IMCL("hostA"), rdf.IMCL("address"), rdf.Lit("192.168.0.1")))
	g.Add(rdf.T(rdf.IMCL("hostB"), rdf.IMCL("address"), rdf.Lit("192.168.0.2")))
	// Network observation: 800 ms response time (< 1000 threshold).
	g.Add(rdf.T(rdf.IMCL("net1"), rdf.IMCL("responseTime"), rdf.Float(800)))

	e, err := NewEngine(PaperRules(rdf.NewNamespaces()))
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Infer(g)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Has(rdf.T(rdf.IMCL("srcPrinter"), rdf.IMCL("compatible"), rdf.IMCL("destPrinter"))) {
		t.Fatal("Rule2 compatibility fact missing")
	}
	actions := g.Subjects(rdf.IMCL("actName"), rdf.Lit("move"))
	if len(actions) == 0 {
		t.Fatalf("Rule3 produced no move action; derivations: %v", res.Derivations)
	}
	// The skolemized action node must carry src and dest addresses.
	a := actions[0]
	if a.Kind != rdf.KindBlank {
		t.Fatalf("action node = %v, want blank (skolem)", a)
	}
	if _, ok := g.FirstObject(a, rdf.IMCL("srcAddress")); !ok {
		t.Fatal("move action missing srcAddress")
	}
	if _, ok := g.FirstObject(a, rdf.IMCL("destAddress")); !ok {
		t.Fatal("move action missing destAddress")
	}
}

func TestRule3BlockedBySlowNetwork(t *testing.T) {
	g := rdf.NewGraph()
	g.Add(rdf.T(rdf.IMCL("PrinterClass"), rdf.IMCL("printerObj"), rdf.Lit("printer")))
	g.Add(rdf.T(rdf.IMCL("srcPrinter"), rdf.RDFType, rdf.IMCL("PrinterClass")))
	g.Add(rdf.T(rdf.IMCL("destPrinter"), rdf.IMCL("printerObj"), rdf.IMCL("PrinterClass")))
	g.Add(rdf.T(rdf.IMCL("hostA"), rdf.IMCL("address"), rdf.Lit("a")))
	g.Add(rdf.T(rdf.IMCL("hostB"), rdf.IMCL("address"), rdf.Lit("b")))
	g.Add(rdf.T(rdf.IMCL("net1"), rdf.IMCL("responseTime"), rdf.Float(2500))) // too slow

	e, err := NewEngine(PaperRules(rdf.NewNamespaces()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Infer(g); err != nil {
		t.Fatal(err)
	}
	if acts := g.Subjects(rdf.IMCL("actName"), rdf.Lit("move")); len(acts) != 0 {
		t.Fatalf("move fired despite 2500 ms response time: %v", acts)
	}
}

func TestDerivationsRecorded(t *testing.T) {
	e := mustEngine(t, `[R: (?x imcl:p ?y) -> (?y imcl:q ?x)]`)
	g := rdf.NewGraph()
	g.Add(rdf.T(rdf.IMCL("a"), rdf.IMCL("p"), rdf.IMCL("b")))
	res, err := e.Infer(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Derivations) != 1 {
		t.Fatalf("derivations = %d, want 1", len(res.Derivations))
	}
	d := res.Derivations[0]
	if d.Rule != "R" || len(d.Produced) != 1 {
		t.Fatalf("derivation = %+v", d)
	}
	if d.Binding["x"] != rdf.IMCL("a") || d.Binding["y"] != rdf.IMCL("b") {
		t.Fatalf("binding = %v", d.Binding)
	}
}

func TestBuiltinGuards(t *testing.T) {
	tests := []struct {
		name string
		rule string
		fact rdf.Triple
		want bool
	}{
		{"ltPass", `[R: (?x imcl:v ?t), lessThan(?t, 10) -> (?x imcl:ok "y")]`,
			rdf.T(rdf.IMCL("a"), rdf.IMCL("v"), rdf.Integer(5)), true},
		{"ltFail", `[R: (?x imcl:v ?t), lessThan(?t, 10) -> (?x imcl:ok "y")]`,
			rdf.T(rdf.IMCL("a"), rdf.IMCL("v"), rdf.Integer(15)), false},
		{"gtPass", `[R: (?x imcl:v ?t), greaterThan(?t, 10) -> (?x imcl:ok "y")]`,
			rdf.T(rdf.IMCL("a"), rdf.IMCL("v"), rdf.Integer(15)), true},
		{"gePassBoundary", `[R: (?x imcl:v ?t), ge(?t, 10) -> (?x imcl:ok "y")]`,
			rdf.T(rdf.IMCL("a"), rdf.IMCL("v"), rdf.Integer(10)), true},
		{"leFailBoundary", `[R: (?x imcl:v ?t), le(?t, 9) -> (?x imcl:ok "y")]`,
			rdf.T(rdf.IMCL("a"), rdf.IMCL("v"), rdf.Integer(10)), false},
		{"equalNumericCrossType", `[R: (?x imcl:v ?t), equal(?t, '5'^^xsd:double) -> (?x imcl:ok "y")]`,
			rdf.T(rdf.IMCL("a"), rdf.IMCL("v"), rdf.Integer(5)), true},
		{"notEqualTerm", `[R: (?x imcl:v ?t), notEqual(?t, "other") -> (?x imcl:ok "y")]`,
			rdf.T(rdf.IMCL("a"), rdf.IMCL("v"), rdf.Lit("this")), true},
		{"boundPass", `[R: (?x imcl:v ?t), bound(?t) -> (?x imcl:ok "y")]`,
			rdf.T(rdf.IMCL("a"), rdf.IMCL("v"), rdf.Lit("v")), true},
		{"ltNonNumericFails", `[R: (?x imcl:v ?t), lessThan(?t, 10) -> (?x imcl:ok "y")]`,
			rdf.T(rdf.IMCL("a"), rdf.IMCL("v"), rdf.Lit("NaNish")), false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			e := mustEngine(t, tc.rule)
			g := rdf.NewGraph()
			g.Add(tc.fact)
			if _, err := e.Infer(g); err != nil {
				t.Fatal(err)
			}
			got := g.Has(rdf.T(rdf.IMCL("a"), rdf.IMCL("ok"), rdf.Lit("y")))
			if got != tc.want {
				t.Fatalf("rule fired = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestBuiltinArityError(t *testing.T) {
	e := mustEngine(t, `[R: (?x imcl:v ?t), lessThan(?t) -> (?x imcl:ok "y")]`)
	g := rdf.NewGraph()
	g.Add(rdf.T(rdf.IMCL("a"), rdf.IMCL("v"), rdf.Integer(1)))
	if _, err := e.Infer(g); err == nil || !strings.Contains(err.Error(), "lessThan") {
		t.Fatalf("err = %v, want lessThan arity error", err)
	}
}

func TestMaxIterationsGuard(t *testing.T) {
	// A self-feeding skolem chain never reaches fixpoint: each firing
	// binds a new subject, producing a new token and a fresh skolem.
	rs, err := Parse(`[Gen: (?x imcl:next ?y) -> (?y imcl:next ?fresh)]`, ns())
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(rs, WithMaxIterations(5))
	if err != nil {
		t.Fatal(err)
	}
	g := rdf.NewGraph()
	g.Add(rdf.T(rdf.IMCL("a"), rdf.IMCL("next"), rdf.IMCL("b")))
	if _, err := e.Infer(g); err == nil {
		t.Fatal("runaway rule did not trip the iteration bound")
	}
}

func TestSkolemRuleFiresOncePerToken(t *testing.T) {
	// Jena-style once-per-token semantics: a head-only variable rule must
	// not refire for the same body binding, within or across Infer calls.
	e := mustEngine(t, `[Act: (?x imcl:ready true) -> (?a imcl:actName "move"), (?a imcl:target ?x)]`)
	g := rdf.NewGraph()
	g.Add(rdf.T(rdf.IMCL("app"), rdf.IMCL("ready"), rdf.Bool(true)))
	if _, err := e.Infer(g); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Infer(g); err != nil {
		t.Fatal(err)
	}
	if acts := g.Subjects(rdf.IMCL("actName"), rdf.Lit("move")); len(acts) != 1 {
		t.Fatalf("skolem rule fired %d times, want 1", len(acts))
	}
	// After Reset the same token may fire again (fresh knowledge base).
	e.Reset()
	if _, err := e.Infer(g); err != nil {
		t.Fatal(err)
	}
	if acts := g.Subjects(rdf.IMCL("actName"), rdf.Lit("move")); len(acts) != 2 {
		t.Fatalf("after Reset, actions = %d, want 2", len(acts))
	}
}

func TestAddRuleAndRules(t *testing.T) {
	e, err := NewEngine(nil)
	if err != nil {
		t.Fatal(err)
	}
	rs := MustParse(`[R: (?x imcl:p ?y) -> (?x imcl:q ?y)]`, ns())
	if err := e.AddRule(rs[0]); err != nil {
		t.Fatal(err)
	}
	if err := e.AddRule(Rule{Name: "bad"}); err == nil {
		t.Fatal("invalid rule accepted by AddRule")
	}
	if got := e.Rules(); len(got) != 1 || got[0].Name != "R" {
		t.Fatalf("Rules() = %v", got)
	}
}

func TestNewEngineValidates(t *testing.T) {
	if _, err := NewEngine([]Rule{{Name: "x"}}); err == nil {
		t.Fatal("NewEngine accepted invalid rule")
	}
}

// Property: inference is monotonic — every input triple survives, and
// repeated runs never shrink the graph.
func TestInferenceMonotonic(t *testing.T) {
	e := mustEngine(t, `[Rule1: (?p imcl:locatedIn ?q), (?q imcl:locatedIn ?t) -> (?p imcl:locatedIn ?t)]`)
	f := func(pairs []uint8) bool {
		g := rdf.NewGraph()
		var inputs []rdf.Triple
		for _, p := range pairs {
			tr := rdf.T(
				rdf.IMCL("n"+string(rune('a'+p%7))),
				rdf.IMCL("locatedIn"),
				rdf.IMCL("n"+string(rune('a'+(p/7)%7))),
			)
			g.Add(tr)
			inputs = append(inputs, tr)
		}
		before := g.Len()
		if _, err := e.Infer(g); err != nil {
			return false
		}
		if g.Len() < before {
			return false
		}
		for _, tr := range inputs {
			if !g.Has(tr) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestTransitiveClosureComplete(t *testing.T) {
	// Chain a->b->c->d->e: closure must contain all 10 ordered reachable pairs.
	e := mustEngine(t, `[Rule1: (?p imcl:locatedIn ?q), (?q imcl:locatedIn ?t) -> (?p imcl:locatedIn ?t)]`)
	g := rdf.NewGraph()
	nodes := []string{"a", "b", "c", "d", "e"}
	for i := 0; i+1 < len(nodes); i++ {
		g.Add(rdf.T(rdf.IMCL(nodes[i]), rdf.IMCL("locatedIn"), rdf.IMCL(nodes[i+1])))
	}
	if _, err := e.Infer(g); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(nodes); i++ {
		for j := i + 1; j < len(nodes); j++ {
			if !g.Has(rdf.T(rdf.IMCL(nodes[i]), rdf.IMCL("locatedIn"), rdf.IMCL(nodes[j]))) {
				t.Fatalf("missing closure %s->%s", nodes[i], nodes[j])
			}
		}
	}
	if g.Len() != 10 {
		t.Fatalf("Len = %d, want 10 (closure of a 5-chain)", g.Len())
	}
}
