package rules

import (
	"strings"
	"testing"

	"mdagent/internal/rdf"
)

func ns() *rdf.Namespaces { return rdf.NewNamespaces() }

func TestParsePaperRule1(t *testing.T) {
	rs, err := Parse(`[Rule1: (?p imcl:locatedIn ?q), (?q imcl:locatedIn ?t) -> (?p imcl:locatedIn ?t)]`, ns())
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 {
		t.Fatalf("parsed %d rules, want 1", len(rs))
	}
	r := rs[0]
	if r.Name != "Rule1" {
		t.Fatalf("name = %q", r.Name)
	}
	if len(r.Body) != 2 || len(r.Head) != 1 {
		t.Fatalf("body/head sizes = %d/%d", len(r.Body), len(r.Head))
	}
	want := rdf.T(rdf.Var("p"), rdf.IMCL("locatedIn"), rdf.Var("q"))
	if r.Body[0].Pattern != want {
		t.Fatalf("body[0] = %v, want %v", r.Body[0].Pattern, want)
	}
}

func TestParsePaperRule3WithBuiltinAndQuotedTypedLiteral(t *testing.T) {
	src := `[Rule3: (?addr1 imcl:address ?value1), (?addr2 imcl:address ?value2),
	         (?srcRsc imcl:compatible ?destRsc), (?n imcl:responseTime ?t),
	         lessThan(?t, '1000'^^xsd:double)
	         -> (?action imcl:actName "move"), (?action imcl:srcAddress ?addr1),
	            (?action imcl:destAddress ?addr2)]`
	rs, err := Parse(src, ns())
	if err != nil {
		t.Fatal(err)
	}
	r := rs[0]
	if len(r.Body) != 5 {
		t.Fatalf("body size = %d, want 5", len(r.Body))
	}
	bi := r.Body[4]
	if bi.Kind != ClauseBuiltin || bi.Builtin != "lessThan" {
		t.Fatalf("builtin clause = %+v", bi)
	}
	if len(bi.Args) != 2 {
		t.Fatalf("builtin args = %v", bi.Args)
	}
	if bi.Args[0] != rdf.Var("t") {
		t.Fatalf("arg0 = %v", bi.Args[0])
	}
	if bi.Args[1] != rdf.TypedLit("1000", rdf.XSDDouble) {
		t.Fatalf("arg1 = %v, want '1000'^^xsd:double", bi.Args[1])
	}
	if len(r.Head) != 3 {
		t.Fatalf("head size = %d, want 3", len(r.Head))
	}
	if r.Head[0].Pattern.O != rdf.Lit("move") {
		t.Fatalf("head literal = %v", r.Head[0].Pattern.O)
	}
}

func TestParseMultipleRulesWithComments(t *testing.T) {
	src := `
# transitive location
[Rule1: (?p imcl:locatedIn ?q), (?q imcl:locatedIn ?t) -> (?p imcl:locatedIn ?t)]
// second rule
[Rule2: (?x rdf:type imcl:Printer) -> (?x imcl:substitutable true)]
`
	rs, err := Parse(src, ns())
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("parsed %d rules, want 2", len(rs))
	}
	if rs[1].Head[0].Pattern.O != rdf.Bool(true) {
		t.Fatalf("boolean head term = %v", rs[1].Head[0].Pattern.O)
	}
}

func TestParseTermVariants(t *testing.T) {
	src := `[R: (?x imcl:p <http://example.org/abs>), (?x imcl:n 42), (?x imcl:f 2.5), ge(?y, 1) -> (?x imcl:ok "yes")]`
	rs, err := Parse(src, ns())
	if err != nil {
		t.Fatal(err)
	}
	b := rs[0].Body
	if b[0].Pattern.O != rdf.IRI("http://example.org/abs") {
		t.Fatalf("IRI term = %v", b[0].Pattern.O)
	}
	if b[1].Pattern.O != rdf.Integer(42) {
		t.Fatalf("integer term = %v", b[1].Pattern.O)
	}
	if b[2].Pattern.O != rdf.TypedLit("2.5", rdf.XSDDouble) {
		t.Fatalf("double term = %v", b[2].Pattern.O)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"noBracket", `Rule1: (?a imcl:p ?b) -> (?a imcl:q ?b)]`},
		{"noName", `[(?a imcl:p ?b) -> (?a imcl:q ?b)]`},
		{"noArrow", `[R: (?a imcl:p ?b) (?a imcl:q ?b)]`},
		{"emptyHead", `[R: (?a imcl:p ?b) -> ]`},
		{"builtinInHead", `[R: (?a imcl:p ?b) -> lessThan(?a, 1)]`},
		{"unknownBuiltin", `[R: (?a imcl:p ?b), frobnicate(?a) -> (?a imcl:q ?b)]`},
		{"onlyBuiltins", `[R: lessThan(1, 2) -> (?a imcl:q ?b)]`},
		{"unknownPrefix", `[R: (?a zz:p ?b) -> (?a imcl:q ?b)]`},
		{"unterminatedLiteral", `[R: (?a imcl:p 'x) -> (?a imcl:q ?b)]`},
		{"unterminatedIRI", `[R: (?a imcl:p <http://x) -> (?a imcl:q ?b)]`},
		{"emptyVar", `[R: (? imcl:p ?b) -> (?b imcl:q ?b)]`},
		{"badClause", `[R: ?a -> (?a imcl:q ?a)]`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Parse(tc.src, ns()); err == nil {
				t.Fatalf("Parse(%q) succeeded, want error", tc.src)
			}
		})
	}
}

func TestRuleStringRoundTrip(t *testing.T) {
	rs := PaperRules(ns())
	if len(rs) != 3 {
		t.Fatalf("PaperRules returned %d rules", len(rs))
	}
	for _, r := range rs {
		s := r.String()
		if !strings.HasPrefix(s, "["+r.Name+":") || !strings.Contains(s, "->") {
			t.Fatalf("String() = %s", s)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse did not panic on bad input")
		}
	}()
	MustParse(`[broken`, ns())
}

func TestValidateDirectly(t *testing.T) {
	ok := Rule{
		Name: "R",
		Body: []Clause{{Kind: ClausePattern, Pattern: rdf.T(rdf.Var("a"), rdf.IMCL("p"), rdf.Var("b"))}},
		Head: []Clause{{Kind: ClausePattern, Pattern: rdf.T(rdf.Var("a"), rdf.IMCL("q"), rdf.Var("b"))}},
	}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid rule rejected: %v", err)
	}
	noName := ok
	noName.Name = ""
	if err := noName.Validate(); err == nil {
		t.Fatal("unnamed rule accepted")
	}
	badKind := ok
	badKind.Body = []Clause{{Kind: ClauseKind(9)}}
	if err := badKind.Validate(); err == nil {
		t.Fatal("invalid clause kind accepted")
	}
}

func TestBuiltinsListed(t *testing.T) {
	names := Builtins()
	set := make(map[string]bool, len(names))
	for _, n := range names {
		set[n] = true
	}
	for _, want := range []string{"lessThan", "greaterThan", "equal", "notEqual", "bound", "ge", "le"} {
		if !set[want] {
			t.Fatalf("builtin %q missing from %v", want, names)
		}
	}
}
