package transport

import (
	"context"
	"testing"
	"time"
)

// echoNode starts a TCP node whose endpoint echoes "echo" requests.
func echoNode(t *testing.T, name, addr string) *TCPNode {
	t.Helper()
	n, err := ListenTCP(name, addr)
	if err != nil {
		t.Fatal(err)
	}
	n.Endpoint().Handle("echo", func(msg Message) ([]byte, error) {
		return msg.Payload, nil
	})
	return n
}

func requestEcho(n *TCPNode, to string, timeout time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	_, err := n.Endpoint().Request(ctx, to, "echo", []byte("hi"))
	return err
}

// TestTCPRedialsAfterPeerRestart drives the lazily-dialed, reused
// outbound link through a peer crash: after the peer restarts on the
// same address, the cached dead link must be detected and replaced by a
// redial instead of poisoning every future send.
func TestTCPRedialsAfterPeerRestart(t *testing.T) {
	b := echoNode(t, "epB", "127.0.0.1:0")
	addr := b.Addr()

	a := echoNode(t, "epA", "127.0.0.1:0")
	defer a.Close()
	a.AddPeer("epB", addr)

	// Warm the cached outbound link.
	if err := requestEcho(a, "epB", 5*time.Second); err != nil {
		t.Fatalf("initial request: %v", err)
	}

	// Kill B mid-conversation and restart it on the same address.
	if err := b.Close(); err != nil {
		t.Fatalf("close B: %v", err)
	}
	b2 := echoNode(t, "epB", addr)
	defer b2.Close()

	// A's cached link is now a corpse. The first write may be swallowed
	// by the kernel buffer (the RST races the send), so a request may
	// time out once — but detection must evict the link and redial, and
	// the path must heal within a couple of attempts, not stay poisoned.
	deadline := time.Now().Add(10 * time.Second)
	attempts := 0
	for {
		attempts++
		if err := requestEcho(a, "epB", 500*time.Millisecond); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("link never healed after peer restart (%d attempts)", attempts)
		}
	}
	if attempts > 3 {
		t.Fatalf("took %d attempts to heal; dead-link detection is not working", attempts)
	}

	// The healed link is the steady state: requests keep succeeding.
	for i := 0; i < 3; i++ {
		if err := requestEcho(a, "epB", 5*time.Second); err != nil {
			t.Fatalf("request %d after heal: %v", i, err)
		}
	}
}

// TestTCPSendToDownPeerFailsFast verifies that when the peer is gone for
// good, sends fail with an error rather than blocking.
func TestTCPSendToDownPeerFailsFast(t *testing.T) {
	b := echoNode(t, "epB", "127.0.0.1:0")
	addr := b.Addr()
	b.Close()

	a := echoNode(t, "epA", "127.0.0.1:0")
	defer a.Close()
	a.AddPeer("epB", addr)
	if err := a.Endpoint().Send("epB", "echo", []byte("hi")); err == nil {
		t.Fatal("send to closed peer succeeded")
	}
}

// TestTCPAliasServesMultiplexedNames: daemons multiplex several logical
// services (engine + media) onto one node; a request addressed to a
// registered alias must reach the shared handler table instead of being
// silently dropped.
func TestTCPAliasServesMultiplexedNames(t *testing.T) {
	srv, err := ListenTCP("migrate@hostX", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.AddAlias("media@hostX")
	srv.Endpoint().Handle("echo", func(m Message) ([]byte, error) {
		return m.Payload, nil
	})

	cli, err := ListenTCP("migrate@hostY", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	cli.AddPeer("migrate@hostX", srv.Addr())
	cli.AddPeer("media@hostX", srv.Addr())

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for _, to := range []string{"migrate@hostX", "media@hostX"} {
		reply, err := cli.Endpoint().Request(ctx, to, "echo", []byte("ping"))
		if err != nil {
			t.Fatalf("request to %s: %v", to, err)
		}
		if string(reply.Payload) != "ping" {
			t.Fatalf("reply via %s = %q", to, reply.Payload)
		}
	}

	// An unregistered name is still dropped (nodes are not routers), and
	// the caller gets a deadline error rather than a wrong answer.
	shortCtx, shortCancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer shortCancel()
	cli.AddPeer("other@hostX", srv.Addr())
	if _, err := cli.Endpoint().Request(shortCtx, "other@hostX", "echo", []byte("x")); err == nil {
		t.Fatal("request to unaliased name succeeded")
	}
}
