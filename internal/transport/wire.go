package transport

import (
	"errors"
	"fmt"
)

// ProtoVersion is the wire protocol version this build speaks. Every
// versioned request payload (registry operations, snapshot puts, the
// control plane) is framed as [version byte][gob body]; a server that
// receives a version it does not speak refuses the request with a typed
// ErrVersion reply instead of misparsing the body as gob. Bump this when
// a request or reply body changes incompatibly.
const ProtoVersion byte = 1

// ErrVersion reports a versioned frame whose protocol version this build
// does not speak. It crosses the wire as an error-reply string and maps
// back to this sentinel on the client through RemoteError.Is, so
// errors.Is(err, transport.ErrVersion) works on both ends.
var ErrVersion = errors.New("transport: unsupported protocol version")

// Seal frames a request body with the current protocol version.
func Seal(body []byte) []byte { return SealV(ProtoVersion, body) }

// SealV frames a body with an explicit version byte — tests use it to
// craft future-version frames a server must refuse cleanly.
func SealV(ver byte, body []byte) []byte {
	out := make([]byte, 1+len(body))
	out[0] = ver
	copy(out[1:], body)
	return out
}

// Open validates a sealed payload's version byte and returns the body.
// An empty payload or an unknown version fails with ErrVersion (wrapped
// with the got/want detail), so a future client talking to this server
// gets an actionable refusal instead of a gob parse error.
func Open(payload []byte) ([]byte, error) {
	if len(payload) == 0 {
		return nil, fmt.Errorf("%w: empty frame (want version %d)", ErrVersion, ProtoVersion)
	}
	if payload[0] != ProtoVersion {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrVersion, payload[0], ProtoVersion)
	}
	return payload[1:], nil
}

// EncodeSealed gob-encodes a value and seals it with the current
// protocol version — the request-side counterpart of DecodeSealed.
func EncodeSealed(v any) ([]byte, error) {
	body, err := Encode(v)
	if err != nil {
		return nil, err
	}
	return Seal(body), nil
}

// DecodeSealed validates a sealed payload's version and gob-decodes its
// body into v — the handler-side counterpart of EncodeSealed.
func DecodeSealed(payload []byte, v any) error {
	body, err := Open(payload)
	if err != nil {
		return err
	}
	return Decode(body, v)
}
