package transport

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"
)

// TCPNode hosts one endpoint reachable over TCP with gob-framed messages.
// Peers are registered by (endpoint name, address); outbound connections
// are dialed lazily and reused. This is the fabric behind cmd/mdagentd and
// cmd/mdregistry for real multi-process deployments.
type TCPNode struct {
	ep *Endpoint
	ln net.Listener

	mu      sync.Mutex
	peers   map[string]string     // endpoint name -> address
	conns   map[string]*tcpLink   // address -> live link (outbound)
	routes  map[string]*tcpLink   // endpoint name -> inbound link (reply path)
	links   map[*tcpLink]struct{} // every live link, inbound and outbound
	aliases map[string]bool       // extra names this node answers to
	closed  bool
	wg      sync.WaitGroup
}

type tcpLink struct {
	conn net.Conn
	mu   sync.Mutex // serializes writes on the shared encoder
	enc  *gob.Encoder
}

func (l *tcpLink) send(msg Message) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.enc.Encode(msg)
}

// ListenTCP starts a node named name listening on addr (e.g. "127.0.0.1:0").
func ListenTCP(name, addr string) (*TCPNode, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	n := &TCPNode{
		ln:      ln,
		peers:   make(map[string]string),
		conns:   make(map[string]*tcpLink),
		routes:  make(map[string]*tcpLink),
		links:   make(map[*tcpLink]struct{}),
		aliases: make(map[string]bool),
	}
	n.ep = newEndpoint(name, n)
	n.wg.Add(1)
	go n.acceptLoop()
	return n, nil
}

// Endpoint returns the node's endpoint for Handle/Request/Send.
func (n *TCPNode) Endpoint() *Endpoint { return n.ep }

// Addr returns the node's listen address.
func (n *TCPNode) Addr() string { return n.ln.Addr().String() }

// AddAlias declares an extra endpoint name this node answers to.
// Daemons multiplex several logical services onto one handler table
// (mdagentd serves migrate.* and media.* on its engine endpoint); without
// an alias, a message addressed to the service name would be silently
// dropped and the sender would hang until its deadline.
func (n *TCPNode) AddAlias(name string) {
	n.mu.Lock()
	n.aliases[name] = true
	n.mu.Unlock()
}

// isLocal reports whether a destination name is served by this node.
func (n *TCPNode) isLocal(to string) bool {
	if to == n.ep.name {
		return true
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.aliases[to]
}

// AddPeer registers the address of a remote endpoint.
func (n *TCPNode) AddPeer(name, addr string) {
	n.mu.Lock()
	n.peers[name] = addr
	n.mu.Unlock()
}

func (n *TCPNode) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return // listener closed
		}
		link := &tcpLink{conn: conn, enc: gob.NewEncoder(conn)}
		if !n.trackLink(link) {
			conn.Close()
			return
		}
		n.wg.Add(1)
		go n.readLoop(link)
	}
}

// trackLink registers a live link so Close can sever it; it refuses (and
// reports false) once the node is closed.
func (n *TCPNode) trackLink(link *tcpLink) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return false
	}
	n.links[link] = struct{}{}
	return true
}

// readLoop consumes messages from link. The link's single encoder is shared
// with the write path, so learned reply routes never open a second gob
// stream on the same connection.
func (n *TCPNode) readLoop(link *tcpLink) {
	defer n.wg.Done()
	conn := link.conn
	defer conn.Close()
	dec := gob.NewDecoder(conn)
	var learned string
	defer func() {
		n.mu.Lock()
		delete(n.links, link)
		if learned != "" && n.routes[learned] == link {
			delete(n.routes, learned)
		}
		n.mu.Unlock()
	}()
	for {
		var msg Message
		if err := dec.Decode(&msg); err != nil {
			return
		}
		// Remember the inbound link so replies to this sender flow back on
		// the same connection even when no peer address is registered.
		if msg.From != "" && msg.From != learned {
			n.mu.Lock()
			n.routes[msg.From] = link
			n.mu.Unlock()
			learned = msg.From
		}
		if n.isLocal(msg.To) {
			n.ep.dispatch(msg)
		}
		// Messages for other endpoints are dropped: TCP nodes are not
		// routers; every node hosts exactly one endpoint (plus aliases).
	}
}

// deliver implements fabric.
func (n *TCPNode) deliver(msg Message) error {
	if n.isLocal(msg.To) {
		n.ep.dispatch(msg)
		return nil
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return ErrClosed
	}
	// Prefer the learned inbound route (reply path), then the peer table.
	if link, ok := n.routes[msg.To]; ok {
		n.mu.Unlock()
		if err := link.send(msg); err == nil {
			return nil
		}
		// Inbound link died; fall through to a dialed connection if the
		// peer is also registered by address.
		n.mu.Lock()
		if n.routes[msg.To] == link {
			delete(n.routes, msg.To)
		}
	}
	addr, ok := n.peers[msg.To]
	if !ok {
		n.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNoRoute, msg.To)
	}
	link, cached := n.conns[addr]
	n.mu.Unlock()

	if !cached {
		var err error
		if link, err = n.dialLink(addr); err != nil {
			return err
		}
	}
	err := link.send(msg)
	if err == nil {
		return nil
	}
	// The cached link died under us (peer restarted, connection dropped
	// mid-stream): evict it and redial once before giving up, so a peer
	// restart costs callers at most the request that was in flight.
	n.dropLink(addr, link)
	if !cached {
		return fmt.Errorf("transport: send to %s: %w", msg.To, err)
	}
	fresh, derr := n.dialLink(addr)
	if derr != nil {
		return fmt.Errorf("transport: send to %s after redial: %w", msg.To, derr)
	}
	if err := fresh.send(msg); err != nil {
		n.dropLink(addr, fresh)
		return fmt.Errorf("transport: send to %s: %w", msg.To, err)
	}
	return nil
}

// dialLink returns the live outbound link for addr, dialing when none is
// cached (losing a dial race just adopts the winner's link).
func (n *TCPNode) dialLink(addr string) (*tcpLink, error) {
	n.mu.Lock()
	if link, ok := n.conns[addr]; ok {
		n.mu.Unlock()
		return link, nil
	}
	n.mu.Unlock()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	link := &tcpLink{conn: conn, enc: gob.NewEncoder(conn)}
	n.mu.Lock()
	if existing, raced := n.conns[addr]; raced {
		n.mu.Unlock()
		conn.Close()
		return existing, nil
	}
	if n.closed {
		n.mu.Unlock()
		conn.Close()
		return nil, ErrClosed
	}
	n.conns[addr] = link
	n.links[link] = struct{}{}
	n.mu.Unlock()
	// Replies flow back on the same connection.
	n.wg.Add(1)
	go n.readLoop(link)
	return link, nil
}

// dropLink evicts a dead outbound link, leaving any replacement that
// raced in untouched.
func (n *TCPNode) dropLink(addr string, link *tcpLink) {
	n.mu.Lock()
	if n.conns[addr] == link {
		delete(n.conns, addr)
	}
	n.mu.Unlock()
	link.conn.Close()
}

// endpointClosed implements fabric.
func (n *TCPNode) endpointClosed(string) {}

// Close shuts down the listener, every connection (inbound and
// outbound), and the endpoint.
func (n *TCPNode) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	links := make([]*tcpLink, 0, len(n.links))
	for l := range n.links {
		links = append(links, l)
	}
	n.conns = make(map[string]*tcpLink)
	n.mu.Unlock()

	err := n.ln.Close()
	for _, l := range links {
		l.conn.Close()
	}
	n.ep.Close()
	n.wg.Wait()
	return err
}
