package transport

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"mdagent/internal/netsim"
	"mdagent/internal/vclock"
)

func newFabric(t *testing.T) (*LocalFabric, *vclock.Virtual) {
	t.Helper()
	clk := vclock.NewVirtual(time.Unix(0, 0))
	net := netsim.New(clk, netsim.WithSeed(3))
	if _, err := net.AddHost("hostA", "lab", netsim.Pentium4_1700(), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := net.AddHost("hostB", "lab", netsim.PentiumM_1600(), 0); err != nil {
		t.Fatal(err)
	}
	return NewLocalFabric(net), clk
}

func TestLocalRequestReply(t *testing.T) {
	f, _ := newFabric(t)
	defer f.Close()
	a, err := f.Attach("a", "hostA")
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.Attach("b", "hostB")
	if err != nil {
		t.Fatal(err)
	}
	b.Handle("echo", func(msg Message) ([]byte, error) {
		return append([]byte("echo:"), msg.Payload...), nil
	})
	reply, err := a.Request(context.Background(), "b", "echo", []byte("hi"))
	if err != nil {
		t.Fatal(err)
	}
	if string(reply.Payload) != "echo:hi" {
		t.Fatalf("reply = %q", reply.Payload)
	}
	if !reply.IsReply || reply.From != "b" {
		t.Fatalf("reply metadata = %+v", reply)
	}
}

func TestLocalRequestChargesNetwork(t *testing.T) {
	f, clk := newFabric(t)
	defer f.Close()
	a, _ := f.Attach("a", "hostA")
	b, _ := f.Attach("b", "hostB")
	b.Handle("ping", func(msg Message) ([]byte, error) { return nil, nil })
	before := clk.Now()
	if _, err := a.Request(context.Background(), "b", "ping", make([]byte, 1<<20)); err != nil {
		t.Fatal(err)
	}
	elapsed := clk.Now().Sub(before)
	// 1 MiB over 10 Mbps is ~839 ms one way; the reply adds a small frame.
	if elapsed < 700*time.Millisecond {
		t.Fatalf("virtual elapsed = %v, want ≥ 700ms (10Mbps charging)", elapsed)
	}
}

func TestLocalSameHostIsFree(t *testing.T) {
	f, clk := newFabric(t)
	defer f.Close()
	a, _ := f.Attach("a", "hostA")
	b, _ := f.Attach("b", "hostA") // same host
	b.Handle("ping", func(msg Message) ([]byte, error) { return nil, nil })
	before := clk.Now()
	if _, err := a.Request(context.Background(), "b", "ping", make([]byte, 1<<20)); err != nil {
		t.Fatal(err)
	}
	if got := clk.Now().Sub(before); got != 0 {
		t.Fatalf("same-host request charged %v", got)
	}
}

func TestLocalHandlerError(t *testing.T) {
	f, _ := newFabric(t)
	defer f.Close()
	a, _ := f.Attach("a", "hostA")
	b, _ := f.Attach("b", "hostB")
	b.Handle("boom", func(msg Message) ([]byte, error) {
		return nil, errors.New("kaput")
	})
	_, err := a.Request(context.Background(), "b", "boom", nil)
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want RemoteError", err)
	}
	if re.Msg != "kaput" || re.Endpoint != "b" {
		t.Fatalf("remote error = %+v", re)
	}
}

func TestLocalNoHandler(t *testing.T) {
	f, _ := newFabric(t)
	defer f.Close()
	a, _ := f.Attach("a", "hostA")
	if _, err := f.Attach("b", "hostB"); err != nil {
		t.Fatal(err)
	}
	_, err := a.Request(context.Background(), "b", "nosuch", nil)
	if err == nil || !strings.Contains(err.Error(), "no handler") {
		t.Fatalf("err = %v, want no-handler reply", err)
	}
}

func TestLocalNoRoute(t *testing.T) {
	f, _ := newFabric(t)
	defer f.Close()
	a, _ := f.Attach("a", "hostA")
	if err := a.Send("ghost", "x", nil); !errors.Is(err, ErrNoRoute) {
		t.Fatalf("err = %v, want ErrNoRoute", err)
	}
}

func TestAttachValidation(t *testing.T) {
	f, _ := newFabric(t)
	defer f.Close()
	if _, err := f.Attach("a", "hostA"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Attach("a", "hostB"); err == nil {
		t.Fatal("duplicate name accepted")
	}
	if _, err := f.Attach("c", "ghostHost"); err == nil {
		t.Fatal("unknown host accepted")
	}
}

func TestRequestContextCancel(t *testing.T) {
	f, _ := newFabric(t)
	defer f.Close()
	a, _ := f.Attach("a", "hostA")
	b, _ := f.Attach("b", "hostB")
	block := make(chan struct{})
	b.Handle("slow", func(msg Message) ([]byte, error) {
		<-block
		return nil, nil
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := a.Request(ctx, "b", "slow", nil)
		done <- err
	}()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Request did not honor cancellation")
	}
	close(block)
}

func TestEndpointCloseFailsPending(t *testing.T) {
	f, _ := newFabric(t)
	defer f.Close()
	a, _ := f.Attach("a", "hostA")
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("b", "x", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Send after close = %v, want ErrClosed", err)
	}
	if _, err := a.Request(context.Background(), "b", "x", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Request after close = %v, want ErrClosed", err)
	}
	// Re-attach under the same name is allowed after close.
	if _, err := f.Attach("a", "hostA"); err != nil {
		t.Fatalf("re-attach after close: %v", err)
	}
}

func TestHandlerCanIssueNestedRequests(t *testing.T) {
	f, _ := newFabric(t)
	defer f.Close()
	a, _ := f.Attach("a", "hostA")
	b, _ := f.Attach("b", "hostB")
	c, _ := f.Attach("c", "hostB")
	c.Handle("leaf", func(msg Message) ([]byte, error) { return []byte("leafdata"), nil })
	b.Handle("mid", func(msg Message) ([]byte, error) {
		reply, err := b.Request(context.Background(), "c", "leaf", nil)
		if err != nil {
			return nil, err
		}
		return append([]byte("mid+"), reply.Payload...), nil
	})
	reply, err := a.Request(context.Background(), "b", "mid", nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(reply.Payload) != "mid+leafdata" {
		t.Fatalf("reply = %q", reply.Payload)
	}
}

func TestConcurrentRequests(t *testing.T) {
	f, _ := newFabric(t)
	defer f.Close()
	a, _ := f.Attach("a", "hostA")
	b, _ := f.Attach("b", "hostA")
	b.Handle("echo", func(msg Message) ([]byte, error) { return msg.Payload, nil })
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			payload := []byte{byte(i)}
			reply, err := a.Request(context.Background(), "b", "echo", payload)
			if err != nil {
				errs <- err
				return
			}
			if len(reply.Payload) != 1 || reply.Payload[0] != byte(i) {
				errs <- errors.New("correlation mixed up replies")
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	type payload struct {
		Name string
		N    int
		Data []byte
	}
	in := payload{Name: "x", N: 42, Data: []byte{1, 2, 3}}
	b, err := Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	var out payload
	if err := Decode(b, &out); err != nil {
		t.Fatal(err)
	}
	if out.Name != in.Name || out.N != in.N || len(out.Data) != 3 {
		t.Fatalf("round trip = %+v", out)
	}
	if err := Decode([]byte("garbage"), &out); err == nil {
		t.Fatal("Decode accepted garbage")
	}
}

func TestMustEncodePanicsOnUnencodable(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustEncode did not panic on a channel")
		}
	}()
	MustEncode(make(chan int))
}

func TestTCPRequestReply(t *testing.T) {
	srv, err := ListenTCP("server", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Endpoint().Handle("sum", func(msg Message) ([]byte, error) {
		var nums []int
		if err := Decode(msg.Payload, &nums); err != nil {
			return nil, err
		}
		total := 0
		for _, n := range nums {
			total += n
		}
		return Encode(total)
	})

	cli, err := ListenTCP("client", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	cli.AddPeer("server", srv.Addr())

	payload, _ := Encode([]int{1, 2, 3, 4})
	var total int
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := cli.Endpoint().RequestDecode(ctx, "server", "sum", payload, &total); err != nil {
		t.Fatal(err)
	}
	if total != 10 {
		t.Fatalf("sum = %d, want 10", total)
	}
}

func TestTCPErrorReply(t *testing.T) {
	srv, err := ListenTCP("server", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Endpoint().Handle("fail", func(msg Message) ([]byte, error) {
		return nil, errors.New("server says no")
	})
	cli, err := ListenTCP("client", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	cli.AddPeer("server", srv.Addr())
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_, err = cli.Endpoint().Request(ctx, "server", "fail", nil)
	var re *RemoteError
	if !errors.As(err, &re) || re.Msg != "server says no" {
		t.Fatalf("err = %v, want RemoteError(server says no)", err)
	}
}

func TestTCPUnknownPeer(t *testing.T) {
	cli, err := ListenTCP("client", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if err := cli.Endpoint().Send("nowhere", "x", nil); !errors.Is(err, ErrNoRoute) {
		t.Fatalf("err = %v, want ErrNoRoute", err)
	}
}

func TestTCPDialFailure(t *testing.T) {
	cli, err := ListenTCP("client", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	cli.AddPeer("dead", "127.0.0.1:1") // nothing listens on port 1
	if err := cli.Endpoint().Send("dead", "x", nil); err == nil {
		t.Fatal("Send to dead peer succeeded")
	}
}

func TestTCPConnectionReuse(t *testing.T) {
	srv, err := ListenTCP("server", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	var mu sync.Mutex
	calls := 0
	srv.Endpoint().Handle("ping", func(msg Message) ([]byte, error) {
		mu.Lock()
		calls++
		mu.Unlock()
		return nil, nil
	})
	cli, err := ListenTCP("client", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	cli.AddPeer("server", srv.Addr())
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for i := 0; i < 20; i++ {
		if _, err := cli.Endpoint().Request(ctx, "server", "ping", nil); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if calls != 20 {
		t.Fatalf("calls = %d, want 20", calls)
	}
	cli.mu.Lock()
	nConns := len(cli.conns)
	cli.mu.Unlock()
	if nConns != 1 {
		t.Fatalf("connections = %d, want 1 (reused)", nConns)
	}
}

func TestFabricCloseIsIdempotent(t *testing.T) {
	f, _ := newFabric(t)
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Attach("x", "hostA"); !errors.Is(err, ErrClosed) {
		t.Fatalf("Attach after close = %v, want ErrClosed", err)
	}
}
