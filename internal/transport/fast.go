package transport

import (
	"encoding/binary"
	"fmt"
	"time"
)

// ProtoV2 is the compact binary fast path. A v2 frame is
// [version byte 0x02][opcode byte][binary body]: no gob type dictionary,
// no reflection, just length-prefixed fields in a fixed per-opcode
// layout. Gob (ProtoVersion=1 frames) stays the long-tail encoding and
// the compatibility fallback: a v1 server refuses a v2 frame with a
// typed ErrVersion reply (Open rejects the version byte), and the
// client downgrades to gob for that peer. Only the hot ops — snapshot
// puts and watch event pushes, plus their batched variants — have v2
// layouts.
const ProtoV2 byte = 2

// MaxProto is the newest protocol version this build speaks; servers
// report it in their info reply so operators can audit a fleet's
// negotiation state.
const MaxProto byte = ProtoV2

// Fast-path opcodes. The opcode selects the body layout; request and
// reply layouts are distinct opcodes so a frame is self-describing.
const (
	// OpSnapPut carries one state.SnapshotPut.
	OpSnapPut byte = 0x01
	// OpSnapPutBatch carries a count-prefixed run of SnapshotPut bodies.
	OpSnapPutBatch byte = 0x02
	// OpSnapPutReply carries one snapshot-put outcome (stamp + flags).
	OpSnapPutReply byte = 0x03
	// OpSnapPutBatchReply carries a count-prefixed run of outcomes.
	OpSnapPutBatchReply byte = 0x04
	// OpEventBatch carries a watch-id-tagged run of sequenced events.
	OpEventBatch byte = 0x10
	// OpBundlePush carries one signed app bundle (name + raw bytes) —
	// the bundle-distribution hot path, where a multi-megabyte payload
	// makes gob's reflection and copy costs visible.
	OpBundlePush byte = 0x20
)

// SealFast frames a fast-path body: [ProtoV2][opcode][body].
func SealFast(op byte, body []byte) []byte {
	out := make([]byte, 2+len(body))
	out[0] = ProtoV2
	out[1] = op
	copy(out[2:], body)
	return out
}

// IsFast reports whether payload is a v2 fast frame. Handlers that
// serve both encodings sniff this before choosing a decode path; a gob
// seal always starts with ProtoVersion (1), so the byte is unambiguous.
func IsFast(payload []byte) bool {
	return len(payload) >= 2 && payload[0] == ProtoV2
}

// OpenFast validates a v2 frame and returns its opcode and body. A
// frame of another version fails with ErrVersion, exactly as Open does
// for non-v1 frames, so both directions of a version mismatch surface
// the same typed refusal.
func OpenFast(payload []byte) (op byte, body []byte, err error) {
	if len(payload) < 2 {
		return 0, nil, fmt.Errorf("%w: short fast frame (%d bytes)", ErrVersion, len(payload))
	}
	if payload[0] != ProtoV2 {
		return 0, nil, fmt.Errorf("%w: got %d, want %d", ErrVersion, payload[0], ProtoV2)
	}
	return payload[1], payload[2:], nil
}

// --- Field writers: append-style, uvarint-based. ---

// AppendUint appends a uvarint.
func AppendUint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

// AppendBytes appends a uvarint length prefix and the bytes.
func AppendBytes(b, v []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(v)))
	return append(b, v...)
}

// AppendString appends a uvarint length prefix and the string bytes.
func AppendString(b []byte, v string) []byte {
	b = binary.AppendUvarint(b, uint64(len(v)))
	return append(b, v...)
}

// AppendBool appends one byte (0 or 1).
func AppendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// AppendTime appends a presence flag and the time as uvarint UnixNano.
// The flag is required: the simulated testbed clock starts at
// time.Unix(0, 0), whose UnixNano is 0, so a bare zero marker would
// collapse the virtual epoch into the zero time. Times before 1970 are
// not representable (the uint64 cast would scramble them); the
// middleware never produces one.
func AppendTime(b []byte, t time.Time) []byte {
	if t.IsZero() {
		return append(b, 0)
	}
	b = append(b, 1)
	return binary.AppendUvarint(b, uint64(t.UnixNano()))
}

// --- FastReader: bounds-checked sequential reads with one error. ---

// FastReader decodes a fast-frame body sequentially. Every read is
// bounds-checked; the first failure sticks (subsequent reads return
// zero values) and surfaces on Err, so decode call sites check once.
type FastReader struct {
	b   []byte
	off int
	err error
}

// NewFastReader reads from body (typically the body from OpenFast).
func NewFastReader(body []byte) *FastReader { return &FastReader{b: body} }

// Err returns the first decode failure, or nil.
func (r *FastReader) Err() error { return r.err }

func (r *FastReader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("transport: fast frame truncated at %s (offset %d of %d)", what, r.off, len(r.b))
	}
}

// Uint reads a uvarint.
func (r *FastReader) Uint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail("uvarint")
		return 0
	}
	r.off += n
	return v
}

// Bytes reads a length-prefixed byte slice. The result aliases the
// frame; callers that retain it past the frame's life must copy.
func (r *FastReader) Bytes() []byte {
	n := r.Uint()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.b)-r.off) {
		r.fail("bytes body")
		return nil
	}
	v := r.b[r.off : r.off+int(n)]
	r.off += int(n)
	return v
}

// String reads a length-prefixed string.
func (r *FastReader) String() string { return string(r.Bytes()) }

// Bool reads one byte as a bool.
func (r *FastReader) Bool() bool {
	if r.err != nil {
		return false
	}
	if r.off >= len(r.b) {
		r.fail("bool")
		return false
	}
	v := r.b[r.off]
	r.off++
	return v != 0
}

// Fixed reads exactly n raw bytes (no length prefix) — digests and
// other fixed-width fields. The result aliases the frame.
func (r *FastReader) Fixed(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n > len(r.b)-r.off {
		r.fail("fixed field")
		return nil
	}
	v := r.b[r.off : r.off+n]
	r.off += n
	return v
}

// Time reads a presence flag + uvarint UnixNano (AppendTime's layout).
// Decoded times carry no monotonic clock; compare with time.Time.Equal.
func (r *FastReader) Time() time.Time {
	if !r.Bool() {
		return time.Time{}
	}
	ns := r.Uint()
	if r.err != nil {
		return time.Time{}
	}
	return time.Unix(0, int64(ns))
}
