package transport

import (
	"fmt"
	"sync"

	"mdagent/internal/netsim"
)

// LocalFabric delivers messages between in-process endpoints, charging
// each delivery's cost to a netsim network when one is attached. It is the
// fabric used by tests, examples and the benchmark harness: the same
// middleware code paths run over it as over TCP, but timing comes from the
// simulated 2002-era testbed.
type LocalFabric struct {
	mu        sync.RWMutex
	endpoints map[string]*Endpoint
	hostOf    map[string]string // endpoint name -> netsim host id
	net       *netsim.Network
	closed    bool
}

// NewLocalFabric creates a fabric. net may be nil for cost-free delivery.
func NewLocalFabric(net *netsim.Network) *LocalFabric {
	return &LocalFabric{
		endpoints: make(map[string]*Endpoint),
		hostOf:    make(map[string]string),
		net:       net,
	}
}

// Attach creates an endpoint named name residing on the given netsim host
// (host may be empty when no network is attached).
func (f *LocalFabric) Attach(name, host string) (*Endpoint, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil, ErrClosed
	}
	if _, dup := f.endpoints[name]; dup {
		return nil, fmt.Errorf("transport: endpoint %q already attached", name)
	}
	if f.net != nil && host != "" {
		if _, ok := f.net.Host(host); !ok {
			return nil, fmt.Errorf("transport: unknown netsim host %q", host)
		}
	}
	ep := newEndpoint(name, f)
	f.endpoints[name] = ep
	f.hostOf[name] = host
	return ep, nil
}

// HostOf reports the netsim host an endpoint lives on.
func (f *LocalFabric) HostOf(endpoint string) (string, bool) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	h, ok := f.hostOf[endpoint]
	return h, ok
}

// Lookup returns the endpoint registered under name.
func (f *LocalFabric) Lookup(name string) (*Endpoint, bool) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	ep, ok := f.endpoints[name]
	return ep, ok
}

func (f *LocalFabric) deliver(msg Message) error {
	f.mu.RLock()
	if f.closed {
		f.mu.RUnlock()
		return ErrClosed
	}
	dst, ok := f.endpoints[msg.To]
	srcHost := f.hostOf[msg.From]
	dstHost := f.hostOf[msg.To]
	net := f.net
	f.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoRoute, msg.To)
	}
	if net != nil && srcHost != "" && dstHost != "" && srcHost != dstHost {
		// Frame overhead + payload; headers are small and constant.
		if _, _, err := net.Transfer(srcHost, dstHost, int64(len(msg.Payload))+64); err != nil {
			return fmt.Errorf("transport: %w", err)
		}
	}
	dst.dispatch(msg)
	return nil
}

func (f *LocalFabric) endpointClosed(name string) {
	f.mu.Lock()
	delete(f.endpoints, name)
	delete(f.hostOf, name)
	f.mu.Unlock()
}

// Close closes every endpoint and then the fabric itself.
func (f *LocalFabric) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	eps := make([]*Endpoint, 0, len(f.endpoints))
	for _, ep := range f.endpoints {
		eps = append(eps, ep)
	}
	f.endpoints = make(map[string]*Endpoint)
	f.mu.Unlock()
	for _, ep := range eps {
		ep.mu.Lock()
		ep.closed = true
		pend := ep.pending
		ep.pending = make(map[uint64]chan Message)
		ep.mu.Unlock()
		for _, ch := range pend {
			select {
			case ch <- Message{IsReply: true, Err: ErrClosed.Error()}:
			default:
			}
		}
		ep.inflight.Wait()
	}
	return nil
}
