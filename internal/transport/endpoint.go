package transport

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
)

// Handler processes one incoming message. For requests, the returned
// payload becomes the reply body; returning an error produces an error
// reply. Handlers run on their own goroutine and may themselves issue
// requests through the endpoint.
type Handler func(msg Message) ([]byte, error)

// fabric is the delivery substrate endpoints hang off.
type fabric interface {
	deliver(msg Message) error
	endpointClosed(name string)
}

// Endpoint is a named participant on a fabric. Create endpoints with the
// fabric's Attach method; the zero value is not usable.
type Endpoint struct {
	name   string
	fab    fabric
	nextID atomic.Uint64

	mu       sync.Mutex
	handlers map[string]Handler
	ordered  map[string]*orderedEntry
	pending  map[uint64]chan Message
	closed   bool
	inflight sync.WaitGroup
	quit     chan struct{} // closed after Close drains inflight; stops ordered workers
}

// orderedEntry is one HandleOrdered registration: a queue drained by a
// single worker goroutine, so messages of this type are handled in
// arrival order. h is guarded by the endpoint mutex (re-registration
// swaps the handler but keeps the queue and worker).
type orderedEntry struct {
	q chan Message
	h Handler
}

func newEndpoint(name string, fab fabric) *Endpoint {
	return &Endpoint{
		name:     name,
		fab:      fab,
		handlers: make(map[string]Handler),
		ordered:  make(map[string]*orderedEntry),
		pending:  make(map[uint64]chan Message),
		quit:     make(chan struct{}),
	}
}

// Name returns the endpoint's fabric-unique name.
func (e *Endpoint) Name() string { return e.name }

// Handle registers a handler for a message type. Registering twice for the
// same type replaces the handler.
func (e *Endpoint) Handle(msgType string, h Handler) {
	e.mu.Lock()
	e.handlers[msgType] = h
	e.mu.Unlock()
}

// HandleOrdered registers a handler whose messages are processed in
// arrival order by a single worker goroutine, instead of one goroutine
// per message. Both fabrics deliver in send order (LocalFabric
// dispatches synchronously; a TCP link writes through one encoder), so
// this is all a stream consumer needs for in-order delivery — the
// control plane's watch pushes use it. The queue is bounded; a full
// queue blocks the fabric's delivery path, which backpressures the
// sender rather than reordering or dropping. Re-registering the same
// type swaps the handler but keeps the queue and worker.
func (e *Endpoint) HandleOrdered(msgType string, h Handler) {
	e.mu.Lock()
	if ent, ok := e.ordered[msgType]; ok {
		ent.h = h
		e.mu.Unlock()
		return
	}
	ent := &orderedEntry{q: make(chan Message, 4096), h: h}
	e.ordered[msgType] = ent
	e.mu.Unlock()
	go func() {
		for {
			select {
			case msg := <-ent.q:
				e.mu.Lock()
				h := ent.h
				e.mu.Unlock()
				e.invoke(msg, h, true)
			case <-e.quit:
				// Close has drained inflight, so the queue is empty and
				// no enqueue is pending; exit.
				return
			}
		}
	}()
}

// Send delivers a one-way message; no reply is expected.
func (e *Endpoint) Send(to, msgType string, payload []byte) error {
	e.mu.Lock()
	closed := e.closed
	e.mu.Unlock()
	if closed {
		return ErrClosed
	}
	return e.fab.deliver(Message{Type: msgType, From: e.name, To: to, Payload: payload})
}

// Request sends a message and waits for the correlated reply or ctx done.
func (e *Endpoint) Request(ctx context.Context, to, msgType string, payload []byte) (Message, error) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return Message{}, ErrClosed
	}
	id := e.nextID.Add(1)
	ch := make(chan Message, 1)
	e.pending[id] = ch
	e.mu.Unlock()

	defer func() {
		e.mu.Lock()
		delete(e.pending, id)
		e.mu.Unlock()
	}()

	msg := Message{Type: msgType, From: e.name, To: to, ID: id, Payload: payload}
	if err := e.fab.deliver(msg); err != nil {
		return Message{}, err
	}
	select {
	case reply := <-ch:
		if reply.Err != "" {
			return reply, &RemoteError{Endpoint: to, Msg: reply.Err}
		}
		return reply, nil
	case <-ctx.Done():
		return Message{}, fmt.Errorf("transport: request %s to %s: %w", msgType, to, ctx.Err())
	}
}

// RequestDecode performs a Request and gob-decodes the reply payload into out.
func (e *Endpoint) RequestDecode(ctx context.Context, to, msgType string, payload []byte, out any) error {
	reply, err := e.Request(ctx, to, msgType, payload)
	if err != nil {
		return err
	}
	if out == nil {
		return nil
	}
	return Decode(reply.Payload, out)
}

// dispatch handles a message arriving from the fabric.
func (e *Endpoint) dispatch(msg Message) {
	if msg.IsReply {
		e.mu.Lock()
		ch, ok := e.pending[msg.ID]
		e.mu.Unlock()
		if ok {
			select {
			case ch <- msg:
			default: // duplicate reply; drop
			}
		}
		return
	}

	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	if ent, ok := e.ordered[msg.Type]; ok {
		e.inflight.Add(1)
		e.mu.Unlock()
		ent.q <- msg // full queue backpressures the fabric's delivery path
		return
	}
	h, ok := e.handlers[msg.Type]
	e.inflight.Add(1)
	e.mu.Unlock()

	go e.invoke(msg, h, ok)
}

// invoke runs one handler and sends the reply when the message was a
// request. It balances the inflight count taken by dispatch.
func (e *Endpoint) invoke(msg Message, h Handler, ok bool) {
	defer e.inflight.Done()
	reply := Message{To: msg.From, From: e.name, ID: msg.ID, IsReply: true, Type: msg.Type}
	if !ok {
		reply.Err = ErrNoHandler.Error() + ": " + msg.Type
	} else {
		payload, err := h(msg)
		if err != nil {
			reply.Err = err.Error()
		} else {
			reply.Payload = payload
		}
	}
	// Only requests (ID != 0) get replies.
	if msg.ID != 0 {
		_ = e.fab.deliver(reply) // best effort; requester may be gone
	}
}

// Close detaches the endpoint from its fabric, waits for in-flight
// handlers, and fails any pending requests.
func (e *Endpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	pending := e.pending
	e.pending = make(map[uint64]chan Message)
	e.mu.Unlock()

	for _, ch := range pending {
		select {
		case ch <- Message{IsReply: true, Err: ErrClosed.Error()}:
		default:
		}
	}
	e.inflight.Wait()
	close(e.quit) // inflight drained: ordered queues are empty, workers exit
	e.fab.endpointClosed(e.name)
	return nil
}
