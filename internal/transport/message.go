// Package transport provides the message fabric MDAgent's layers
// communicate over: typed, correlated request/response messages between
// named endpoints. Two fabrics are provided — an in-process fabric that
// charges transfer costs to the netsim network (used by tests, examples
// and the benchmark harness, where it stands in for the paper's 10 Mbps
// Ethernet), and a TCP fabric with length-prefixed gob frames for real
// multi-process deployments (cmd/mdagentd, cmd/mdregistry).
package transport

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"strings"
	"sync"
)

// Message is the unit of communication between endpoints.
type Message struct {
	Type    string // routing key, e.g. "registry.lookup", "acl", "migrate.checkin"
	From    string // sender endpoint name
	To      string // recipient endpoint name
	ID      uint64 // correlation id (assigned by Request)
	IsReply bool   // set on responses
	Err     string // non-empty on error replies
	Payload []byte // opaque body (typically gob- or JSON-encoded)
}

// ErrClosed is returned when sending through a closed endpoint or fabric.
var ErrClosed = errors.New("transport: closed")

// ErrNoRoute is returned when the destination endpoint is unknown.
var ErrNoRoute = errors.New("transport: no route to endpoint")

// ErrNoHandler is returned (as an error reply) when the destination has no
// handler for the message type.
var ErrNoHandler = errors.New("transport: no handler for message type")

// RemoteError wraps an error string carried back in a reply message.
type RemoteError struct {
	Endpoint string
	Msg      string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("transport: remote %s: %s", e.Endpoint, e.Msg)
}

// wireSentinels holds the errors RemoteError.Is is allowed to match by
// text. Restricting the match to registered sentinels keeps the
// cross-wire errors.Is contract without false positives: a remote
// message that merely contains "context deadline exceeded" or "EOF"
// must NOT satisfy errors.Is against those stdlib errors — the failure
// happened on the other side.
var (
	sentinelMu    sync.Mutex
	wireSentinels = make(map[error]string)
)

// RegisterWireSentinel marks err as a cross-wire sentinel: a
// *RemoteError whose carried message contains err's text will satisfy
// errors.Is(remoteErr, err). Packages register their typed sentinels
// at init; texts must be distinctive.
func RegisterWireSentinel(err error) {
	sentinelMu.Lock()
	wireSentinels[err] = err.Error()
	sentinelMu.Unlock()
}

func init() { RegisterWireSentinel(ErrVersion) }

// Is makes registered typed sentinels survive the wire: a handler's
// error crosses as its string, so a remote error matches a registered
// sentinel when that sentinel's text appears in the carried message.
// This keeps errors.Is(err, transport.ErrVersion) — and the control
// plane's ErrUnknownHost / ErrAppNotFound contracts — identical for
// in-process and remote callers. Unregistered targets never match.
func (e *RemoteError) Is(target error) bool {
	sentinelMu.Lock()
	t, ok := wireSentinels[target]
	sentinelMu.Unlock()
	return ok && t != "" && strings.Contains(e.Msg, t)
}

// Encode gob-encodes a value into a payload.
func Encode(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("transport: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// MustEncode is Encode for values that cannot fail (no channels/funcs);
// it panics on error and is intended for fixed internal types.
func MustEncode(v any) []byte {
	b, err := Encode(v)
	if err != nil {
		panic(err)
	}
	return b
}

// Decode gob-decodes a payload into v (a pointer).
func Decode(payload []byte, v any) error {
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(v); err != nil {
		return fmt.Errorf("transport: decode: %w", err)
	}
	return nil
}
