package transport

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestFastFrameRoundTrip drives every writer/reader pair through one
// frame, including the values with trap encodings: the virtual-clock
// epoch time.Unix(0,0) (UnixNano 0, but NOT the zero time), the true
// zero time, and empty strings/slices.
func TestFastFrameRoundTrip(t *testing.T) {
	epoch := time.Unix(0, 0)
	at := time.Unix(1700000000, 123456789)
	digest := bytes.Repeat([]byte{0xAB}, 32)

	var b []byte
	b = AppendUint(b, 0)
	b = AppendUint(b, 1<<40+7)
	b = AppendString(b, "")
	b = AppendString(b, "smart-media-player")
	b = AppendBytes(b, nil)
	b = AppendBytes(b, []byte{1, 2, 3})
	b = AppendBool(b, true)
	b = AppendBool(b, false)
	b = AppendTime(b, time.Time{})
	b = AppendTime(b, epoch)
	b = AppendTime(b, at)
	b = append(b, digest...)

	frame := SealFast(OpSnapPut, b)
	if !IsFast(frame) {
		t.Fatal("sealed fast frame not recognized by IsFast")
	}
	op, body, err := OpenFast(frame)
	if err != nil || op != OpSnapPut {
		t.Fatalf("OpenFast: op=%#x err=%v", op, err)
	}

	r := NewFastReader(body)
	if v := r.Uint(); v != 0 {
		t.Fatalf("uint #1 = %d", v)
	}
	if v := r.Uint(); v != 1<<40+7 {
		t.Fatalf("uint #2 = %d", v)
	}
	if v := r.String(); v != "" {
		t.Fatalf("string #1 = %q", v)
	}
	if v := r.String(); v != "smart-media-player" {
		t.Fatalf("string #2 = %q", v)
	}
	if v := r.Bytes(); len(v) != 0 {
		t.Fatalf("bytes #1 = %v", v)
	}
	if v := r.Bytes(); !bytes.Equal(v, []byte{1, 2, 3}) {
		t.Fatalf("bytes #2 = %v", v)
	}
	if !r.Bool() || r.Bool() {
		t.Fatal("bools did not round-trip")
	}
	if v := r.Time(); !v.IsZero() {
		t.Fatalf("zero time decoded as %v", v)
	}
	// The epoch must come back as the epoch, not as the zero time: the
	// simulated testbed clock starts at Unix(0,0) and its timestamps
	// must survive the wire.
	if v := r.Time(); !v.Equal(epoch) || v.IsZero() {
		t.Fatalf("epoch decoded as %v (IsZero=%v)", v, v.IsZero())
	}
	if v := r.Time(); !v.Equal(at) {
		t.Fatalf("time decoded as %v, want %v", v, at)
	}
	if v := r.Fixed(32); !bytes.Equal(v, digest) {
		t.Fatalf("fixed field = %x", v)
	}
	if err := r.Err(); err != nil {
		t.Fatalf("reader error after full decode: %v", err)
	}
}

// TestFastFrameRefusals pins the version contract in both directions:
// Open (gob path) refuses a v2 frame with ErrVersion — that refusal is
// what drives a client's downgrade-to-gob — and OpenFast refuses v1 and
// short frames the same way.
func TestFastFrameRefusals(t *testing.T) {
	if _, err := Open(SealFast(OpSnapPut, []byte("x"))); !errors.Is(err, ErrVersion) {
		t.Fatalf("Open(v2 frame) = %v, want ErrVersion", err)
	}
	if _, _, err := OpenFast(Seal([]byte("x"))); !errors.Is(err, ErrVersion) {
		t.Fatalf("OpenFast(v1 frame) = %v, want ErrVersion", err)
	}
	for _, short := range [][]byte{nil, {}, {ProtoV2}} {
		if _, _, err := OpenFast(short); !errors.Is(err, ErrVersion) {
			t.Fatalf("OpenFast(%v) = %v, want ErrVersion", short, err)
		}
	}
	if IsFast(Seal([]byte("x"))) {
		t.Fatal("IsFast claimed a gob seal")
	}
}

// TestFastReaderTruncation checks the sticky-error contract: every read
// past the end fails cleanly (zero value), Err reports the first
// failure, and no read panics on any prefix of a valid body.
func TestFastReaderTruncation(t *testing.T) {
	var b []byte
	b = AppendString(b, "topic")
	b = AppendUint(b, 42)
	b = AppendTime(b, time.Unix(5, 0))
	for n := 0; n < len(b); n++ {
		r := NewFastReader(b[:n])
		_ = r.String()
		_ = r.Uint()
		_ = r.Time()
		_ = r.Fixed(8)
		if n < len(b) && r.Err() == nil {
			t.Fatalf("truncated body (%d of %d bytes) decoded without error", n, len(b))
		}
	}
	// A bytes field whose length prefix exceeds the body must fail, not
	// slice out of range.
	r := NewFastReader(AppendUint(nil, 1<<30))
	if v := r.Bytes(); v != nil || r.Err() == nil {
		t.Fatalf("oversized length prefix: v=%v err=%v", v, r.Err())
	}
}

// TestHandleOrderedPreservesOrder floods an ordered handler with
// one-way sends from a single sender and requires arrival-order
// processing — the property the watch event stream depends on, which
// the default goroutine-per-message dispatch does not give.
func TestHandleOrderedPreservesOrder(t *testing.T) {
	fab := NewLocalFabric(nil)
	src, err := fab.Attach("ordered-src", "")
	if err != nil {
		t.Fatal(err)
	}
	dst, err := fab.Attach("ordered-dst", "")
	if err != nil {
		t.Fatal(err)
	}
	const n = 5000
	got := make([]string, 0, n)
	done := make(chan struct{})
	dst.HandleOrdered("seq", func(msg Message) ([]byte, error) {
		got = append(got, string(msg.Payload)) // single worker: no lock needed
		if len(got) == n {
			close(done)
		}
		return nil, nil
	})
	for i := 0; i < n; i++ {
		if err := src.Send("ordered-dst", "seq", fmt.Appendf(nil, "%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatalf("ordered handler saw %d of %d messages", len(got), n)
	}
	for i, v := range got {
		if v != fmt.Sprint(i) {
			t.Fatalf("message %d arrived as %q", i, v)
		}
	}
	if err := dst.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestHandleOrderedCloseDrains closes an endpoint while ordered
// messages are still queued: Close must wait for every accepted message
// (the inflight contract) and must not deadlock or panic.
func TestHandleOrderedCloseDrains(t *testing.T) {
	fab := NewLocalFabric(nil)
	src, err := fab.Attach("drain-src", "")
	if err != nil {
		t.Fatal(err)
	}
	dst, err := fab.Attach("drain-dst", "")
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	handled := 0
	dst.HandleOrdered("work", func(msg Message) ([]byte, error) {
		time.Sleep(100 * time.Microsecond)
		mu.Lock()
		handled++
		mu.Unlock()
		return nil, nil
	})
	const n = 200
	for i := 0; i < n; i++ {
		if err := src.Send("drain-dst", "work", nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := dst.Close(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if handled != n {
		t.Fatalf("Close returned with %d of %d queued messages handled", handled, n)
	}
}
