package transport

import (
	"errors"
	"testing"
)

func TestSealOpenRoundTrip(t *testing.T) {
	body, err := Encode(struct{ X int }{42})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Open(Seal(body))
	if err != nil {
		t.Fatal(err)
	}
	var v struct{ X int }
	if err := Decode(got, &v); err != nil || v.X != 42 {
		t.Fatalf("decoded %v, err %v", v, err)
	}
	payload, err := EncodeSealed(struct{ X int }{7})
	if err != nil {
		t.Fatal(err)
	}
	if err := DecodeSealed(payload, &v); err != nil || v.X != 7 {
		t.Fatalf("DecodeSealed = %v, err %v", v, err)
	}
}

func TestOpenRefusesFutureVersion(t *testing.T) {
	body, _ := Encode(struct{ X int }{1})
	for name, payload := range map[string][]byte{
		"future version": SealV(ProtoVersion+41, body),
		"empty frame":    nil,
	} {
		if _, err := Open(payload); !errors.Is(err, ErrVersion) {
			t.Errorf("%s: Open error = %v, want ErrVersion", name, err)
		}
		var v struct{ X int }
		if err := DecodeSealed(payload, &v); !errors.Is(err, ErrVersion) {
			t.Errorf("%s: DecodeSealed error = %v, want ErrVersion", name, err)
		}
	}
}

// TestRemoteErrorCarriesSentinels pins the cross-wire error contract:
// a handler error whose text embeds a REGISTERED sentinel matches that
// sentinel via errors.Is on the requester side — and nothing else
// does, so a remote "context deadline exceeded" cannot masquerade as
// the caller's own deadline.
func TestRemoteErrorCarriesSentinels(t *testing.T) {
	sentinel := errors.New("mdagent: test sentinel for the wire")
	RegisterWireSentinel(sentinel)
	remote := &RemoteError{Endpoint: "srv", Msg: "ctl: " + sentinel.Error() + `: "player"`}
	if !errors.Is(remote, sentinel) {
		t.Fatal("remote error does not match registered sentinel")
	}
	if !errors.Is(&RemoteError{Msg: ErrVersion.Error() + ": got 9, want 1"}, ErrVersion) {
		t.Fatal("remote error does not match ErrVersion")
	}
	// Unregistered targets never match, even when their text appears in
	// the carried message.
	stray := errors.New("context deadline exceeded")
	if errors.Is(&RemoteError{Msg: "handler: context deadline exceeded"}, stray) {
		t.Fatal("remote error matched an unregistered error by text")
	}
	if errors.Is(remote, errors.New(sentinel.Error())) {
		t.Fatal("remote error matched an unregistered twin of the sentinel")
	}
}
