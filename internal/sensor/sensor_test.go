package sensor

import (
	"context"
	"math"
	"testing"
	"time"

	"mdagent/internal/netsim"
	"mdagent/internal/vclock"
)

func labField(t *testing.T) (*Field, *vclock.Virtual) {
	t.Helper()
	clk := vclock.NewVirtual(time.Unix(0, 0))
	f := NewField(clk, WithFieldSeed(5))
	f.AddRoom("office821", Point{X: 0, Y: 0})
	f.AddRoom("office822", Point{X: 8, Y: 0})
	f.AddRoom("corridor", Point{X: 4, Y: 6})
	return f, clk
}

func TestRoomsSorted(t *testing.T) {
	f, _ := labField(t)
	rooms := f.Rooms()
	if len(rooms) != 3 || rooms[0] != "corridor" || rooms[2] != "office822" {
		t.Fatalf("Rooms = %v", rooms)
	}
}

func TestAddBadgeValidation(t *testing.T) {
	f, _ := labField(t)
	if err := f.AddBadge("b1", "alice", "atlantis"); err == nil {
		t.Fatal("unknown room accepted")
	}
	if err := f.AddBadge("b1", "alice", "office821"); err != nil {
		t.Fatal(err)
	}
	if u, ok := f.User("b1"); !ok || u != "alice" {
		t.Fatalf("User = %q, %v", u, ok)
	}
	if _, ok := f.User("ghost"); ok {
		t.Fatal("ghost badge found")
	}
}

func TestMoveBadgeValidation(t *testing.T) {
	f, _ := labField(t)
	if err := f.MoveBadge("nobody", "office821"); err == nil {
		t.Fatal("unknown badge accepted")
	}
	if err := f.AddBadge("b1", "alice", "office821"); err != nil {
		t.Fatal(err)
	}
	if err := f.MoveBadge("b1", "atlantis"); err == nil {
		t.Fatal("unknown room accepted")
	}
	if err := f.MoveBadge("b1", "office822"); err != nil {
		t.Fatal(err)
	}
}

func TestSampleProducesBadgeAndDistanceReadings(t *testing.T) {
	f, _ := labField(t)
	if err := f.AddBadge("b1", "alice", "office821"); err != nil {
		t.Fatal(err)
	}
	rs := f.Sample()
	var badges, distances int
	for _, r := range rs {
		switch r.Kind {
		case KindBadge:
			badges++
			if r.Badge != "b1" {
				t.Fatalf("badge reading = %+v", r)
			}
		case KindDistance:
			distances++
			if r.Distance < 0 {
				t.Fatalf("negative distance: %+v", r)
			}
		}
	}
	if badges != 1 {
		t.Fatalf("badge readings = %d, want 1", badges)
	}
	// office821 beacon at 0m, office822 at 8m, corridor at ~7.2m: all
	// within the 12m default range.
	if distances != 3 {
		t.Fatalf("distance readings = %d, want 3", distances)
	}
}

func TestNearestBeaconMatchesRoom(t *testing.T) {
	f, _ := labField(t)
	if err := f.AddBadge("b1", "alice", "office822"); err != nil {
		t.Fatal(err)
	}
	rs := f.Sample()
	best := ""
	bestD := math.Inf(1)
	for _, r := range rs {
		if r.Kind == KindDistance && r.Distance < bestD {
			bestD = r.Distance
			best = r.Beacon
		}
	}
	room, ok := f.BeaconRoom(best)
	if !ok || room != "office822" {
		t.Fatalf("nearest beacon %q resolves to %q, want office822", best, room)
	}
	if _, ok := f.BeaconRoom("bogus"); ok {
		t.Fatal("bogus beacon resolved")
	}
}

func TestOutOfRangeBeaconsFiltered(t *testing.T) {
	clk := vclock.NewVirtual(time.Unix(0, 0))
	f := NewField(clk, WithRange(5), WithFieldSeed(5))
	f.AddRoom("near", Point{X: 0, Y: 0})
	f.AddRoom("far", Point{X: 100, Y: 100})
	if err := f.AddBadge("b1", "alice", "near"); err != nil {
		t.Fatal(err)
	}
	for _, r := range f.Sample() {
		if r.Kind == KindDistance {
			if room, _ := f.BeaconRoom(r.Beacon); room == "far" {
				t.Fatal("out-of-range beacon produced a reading")
			}
		}
	}
}

func TestNoiseDeterministicWithSeed(t *testing.T) {
	run := func() []Reading {
		clk := vclock.NewVirtual(time.Unix(0, 0))
		f := NewField(clk, WithFieldSeed(42), WithNoise(0.3))
		f.AddRoom("r", Point{})
		if err := f.AddBadge("b", "u", "r"); err != nil {
			t.Fatal(err)
		}
		return f.Sample()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Distance != b[i].Distance {
			t.Fatalf("reading %d differs: %v vs %v", i, a[i].Distance, b[i].Distance)
		}
	}
}

func TestWalkerChargesClockAndEmits(t *testing.T) {
	f, clk := labField(t)
	if err := f.AddBadge("b1", "alice", "office821"); err != nil {
		t.Fatal(err)
	}
	w := NewWalker(f, 500*time.Millisecond)
	script := Script{Badge: "b1", Steps: []Step{
		{Room: "office821", Dwell: 2 * time.Second},
		{Room: "corridor", Dwell: time.Second},
		{Room: "office822", Dwell: 2 * time.Second},
	}}
	var batches int
	start := clk.Now()
	if err := w.Run(context.Background(), script, func(rs []Reading) { batches++ }); err != nil {
		t.Fatal(err)
	}
	if batches != 10 { // 4 + 2 + 4 ticks of 500ms
		t.Fatalf("batches = %d, want 10", batches)
	}
	if got := clk.Now().Sub(start); got != 5*time.Second {
		t.Fatalf("virtual elapsed = %v, want 5s", got)
	}
}

func TestWalkerUnknownRoomFails(t *testing.T) {
	f, _ := labField(t)
	if err := f.AddBadge("b1", "alice", "office821"); err != nil {
		t.Fatal(err)
	}
	w := NewWalker(f, time.Second)
	err := w.Run(context.Background(), Script{Badge: "b1", Steps: []Step{{Room: "void", Dwell: time.Second}}}, func([]Reading) {})
	if err == nil {
		t.Fatal("script through unknown room accepted")
	}
}

func TestNetworkProbe(t *testing.T) {
	clk := vclock.NewVirtual(time.Unix(0, 0))
	net := netsim.New(clk)
	if _, err := net.AddHost("a", "s", netsim.Pentium4_1700(), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := net.AddHost("b", "s", netsim.PentiumM_1600(), 0); err != nil {
		t.Fatal(err)
	}
	p := NewNetworkProbe(net, [][2]string{{"a", "b"}})
	rs, err := p.Sample()
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || rs[0].Kind != KindNetwork || rs[0].RTT <= 0 {
		t.Fatalf("probe readings = %+v", rs)
	}
	bad := NewNetworkProbe(net, [][2]string{{"a", "ghost"}})
	if _, err := bad.Sample(); err == nil {
		t.Fatal("probe to unknown host succeeded")
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindDistance: "distance", KindBadge: "badge", KindNetwork: "network", Kind(0): "invalid",
	} {
		if got := k.String(); got != want {
			t.Fatalf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}
