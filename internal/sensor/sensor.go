// Package sensor implements MDAgent's sensor layer (paper §4.1: "Sensor
// layer will collect data from these physically or logically deployed
// sensors detecting users' mobility, network connectivity, latency,
// etc."). The paper's testbed deployed "dozens of Cricket Sensors ... to
// collect user's location and identity data"; lacking hardware, this
// package simulates a Cricket field: beacons fixed in rooms emit noisy
// distance readings to user-worn badges moving along scripted paths, and
// network probes sample link response times. Raw readings are deliberately
// low-level — fusing them into semantic facts (user X in room Y) is the
// context layer's job, exactly as the paper prescribes.
package sensor

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"

	"mdagent/internal/netsim"
	"mdagent/internal/vclock"
)

// Kind discriminates raw reading types.
type Kind int

// Reading kinds.
const (
	// KindDistance is a Cricket-style ultrasound distance measurement
	// between a fixed beacon and a mobile badge.
	KindDistance Kind = iota + 1
	// KindBadge is an RF badge-identity detection (who, not where).
	KindBadge
	// KindNetwork is a link response-time observation.
	KindNetwork
)

func (k Kind) String() string {
	switch k {
	case KindDistance:
		return "distance"
	case KindBadge:
		return "badge"
	case KindNetwork:
		return "network"
	default:
		return "invalid"
	}
}

// Reading is one raw sensor datum. Only the fields relevant to its Kind
// are populated.
type Reading struct {
	Kind     Kind
	SensorID string        // emitting sensor
	Badge    string        // badge id (distance and badge readings)
	Beacon   string        // beacon id (distance readings)
	Distance float64       // meters (distance readings)
	FromHost string        // network readings
	ToHost   string        // network readings
	RTT      time.Duration // network readings
	At       time.Time     // reading timestamp (host clock)
}

// Point is a 2-D coordinate in meters within a space.
type Point struct{ X, Y float64 }

func (p Point) dist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Beacon is a fixed Cricket beacon mounted in a room.
type Beacon struct {
	ID   string
	Room string
	Pos  Point
}

// Field is a deployed Cricket sensor field: beacons across rooms, badges
// worn by users. It is safe for concurrent use.
type Field struct {
	clock vclock.Clock

	mu        sync.Mutex
	beacons   []Beacon
	roomPos   map[string]Point // room center, where badges sit while dwelling
	badges    map[string]string
	positions map[string]Point // badge -> current position
	noiseStd  float64          // distance noise, meters
	rangeM    float64          // beacon detection range, meters
	rng       *rand.Rand
}

// FieldOption configures a Field.
type FieldOption func(*Field)

// WithNoise sets the distance-measurement noise standard deviation in
// meters (default 0.15, in line with Cricket's reported accuracy).
func WithNoise(std float64) FieldOption {
	return func(f *Field) { f.noiseStd = std }
}

// WithRange sets the beacon detection range in meters (default 12).
func WithRange(r float64) FieldOption {
	return func(f *Field) { f.rangeM = r }
}

// WithFieldSeed seeds the deterministic noise source.
func WithFieldSeed(seed int64) FieldOption {
	return func(f *Field) { f.rng = rand.New(rand.NewSource(seed)) }
}

// NewField creates an empty field timed by clock.
func NewField(clock vclock.Clock, opts ...FieldOption) *Field {
	f := &Field{
		clock:     clock,
		roomPos:   make(map[string]Point),
		badges:    make(map[string]string),
		positions: make(map[string]Point),
		noiseStd:  0.15,
		rangeM:    12,
		rng:       rand.New(rand.NewSource(17)),
	}
	for _, o := range opts {
		o(f)
	}
	return f
}

// AddRoom places a room center and a beacon in it.
func (f *Field) AddRoom(room string, center Point) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.roomPos[room] = center
	f.beacons = append(f.beacons, Beacon{
		ID:   fmt.Sprintf("cricket-%s-%d", room, len(f.beacons)),
		Room: room,
		Pos:  center,
	})
}

// Rooms returns the room names, sorted.
func (f *Field) Rooms() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	rooms := make([]string, 0, len(f.roomPos))
	for r := range f.roomPos {
		rooms = append(rooms, r)
	}
	sort.Strings(rooms)
	return rooms
}

// AddBadge registers a badge worn by user, initially placed in room.
func (f *Field) AddBadge(badge, user, room string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	pos, ok := f.roomPos[room]
	if !ok {
		return fmt.Errorf("sensor: unknown room %q", room)
	}
	f.badges[badge] = user
	f.positions[badge] = pos
	return nil
}

// User returns the user wearing a badge.
func (f *Field) User(badge string) (string, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	u, ok := f.badges[badge]
	return u, ok
}

// MoveBadge teleports a badge to a room's center (coarse mobility; the
// paper's location granularity is the room).
func (f *Field) MoveBadge(badge, room string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	pos, ok := f.roomPos[room]
	if !ok {
		return fmt.Errorf("sensor: unknown room %q", room)
	}
	if _, ok := f.badges[badge]; !ok {
		return fmt.Errorf("sensor: unknown badge %q", badge)
	}
	f.positions[badge] = pos
	return nil
}

// Sample produces the current crop of raw readings: for every badge, a
// badge-identity reading plus one noisy distance reading per in-range
// beacon. Readings are timestamped with the field clock.
func (f *Field) Sample() []Reading {
	f.mu.Lock()
	defer f.mu.Unlock()
	now := f.clock.Now()
	var out []Reading
	badges := make([]string, 0, len(f.badges))
	for b := range f.badges {
		badges = append(badges, b)
	}
	sort.Strings(badges) // deterministic order
	for _, b := range badges {
		pos := f.positions[b]
		out = append(out, Reading{
			Kind: KindBadge, SensorID: "badge-listener", Badge: b, At: now,
		})
		for _, bc := range f.beacons {
			d := pos.dist(bc.Pos)
			if d > f.rangeM {
				continue
			}
			noisy := d + f.rng.NormFloat64()*f.noiseStd
			if noisy < 0 {
				noisy = 0
			}
			out = append(out, Reading{
				Kind: KindDistance, SensorID: bc.ID, Badge: b,
				Beacon: bc.ID, Distance: noisy, At: now,
			})
		}
	}
	return out
}

// BeaconRoom resolves a beacon id to its room.
func (f *Field) BeaconRoom(beacon string) (string, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, bc := range f.beacons {
		if bc.ID == beacon {
			return bc.Room, true
		}
	}
	return "", false
}

// NetworkProbe samples response times between host pairs on a netsim
// network, producing KindNetwork readings (the "network connectivity,
// latency" sensors of §4.1).
type NetworkProbe struct {
	net   *netsim.Network
	pairs [][2]string
}

// NewNetworkProbe creates a probe over the given host pairs.
func NewNetworkProbe(net *netsim.Network, pairs [][2]string) *NetworkProbe {
	return &NetworkProbe{net: net, pairs: pairs}
}

// Sample measures every configured pair once.
func (p *NetworkProbe) Sample() ([]Reading, error) {
	now := p.net.Clock().Now()
	out := make([]Reading, 0, len(p.pairs))
	for _, pair := range p.pairs {
		rtt, err := p.net.ResponseTime(pair[0], pair[1])
		if err != nil {
			return nil, fmt.Errorf("sensor: probe %s->%s: %w", pair[0], pair[1], err)
		}
		out = append(out, Reading{
			Kind: KindNetwork, SensorID: "netprobe",
			FromHost: pair[0], ToHost: pair[1], RTT: rtt, At: now,
		})
	}
	return out, nil
}

// Step is one leg of a scripted user path: enter a room and dwell.
type Step struct {
	Room  string
	Dwell time.Duration
}

// Script is a scripted movement path for one badge.
type Script struct {
	Badge string
	Steps []Step
}

// Walker replays movement scripts against a field, sampling at a fixed
// tick and delivering readings to a callback. It drives the whole sensing
// pipeline in examples and benchmarks.
type Walker struct {
	field *Field
	tick  time.Duration
}

// NewWalker creates a walker sampling every tick of the field's clock.
func NewWalker(field *Field, tick time.Duration) *Walker {
	return &Walker{field: field, tick: tick}
}

// Run replays the script, invoking emit for every reading batch. It
// charges the field clock one tick per sample, so virtual-clock runs are
// instantaneous and real-clock runs play out in real time. Cancellation
// is checked between samples, so a canceled real-clock replay stops
// mid-dwell with ctx.Err().
func (w *Walker) Run(ctx context.Context, script Script, emit func([]Reading)) error {
	for _, step := range script.Steps {
		if err := w.field.MoveBadge(script.Badge, step.Room); err != nil {
			return err
		}
		remaining := step.Dwell
		for remaining > 0 {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("sensor: walk interrupted: %w", err)
			}
			w.field.clock.Charge(w.tick)
			emit(w.field.Sample())
			remaining -= w.tick
		}
	}
	return nil
}
