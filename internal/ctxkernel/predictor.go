package ctxkernel

import (
	"sort"
	"sync"
)

// Predictor learns per-user room-transition frequencies and predicts the
// next room — the paper's "context reasoning and prediction
// functionalities ... to improve the performance" (§3.4). Autonomous
// agents can use predictions to pre-stage application components at the
// likely destination before the user arrives.
type Predictor struct {
	mu     sync.Mutex
	counts map[string]map[string]int // (user|from) -> to -> count
	last   map[string]string         // user -> last room
}

// NewPredictor returns an empty predictor.
func NewPredictor() *Predictor {
	return &Predictor{
		counts: make(map[string]map[string]int),
		last:   make(map[string]string),
	}
}

func transKey(user, from string) string { return user + "|" + from }

// Observe records that user moved from one room to another.
func (p *Predictor) Observe(user, from, to string) {
	if from == "" || to == "" || from == to {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	k := transKey(user, from)
	m, ok := p.counts[k]
	if !ok {
		m = make(map[string]int)
		p.counts[k] = m
	}
	m[to]++
	p.last[user] = to
}

// Predict returns the most likely next room for user from the given room,
// with its empirical probability. ok is false when no history exists.
func (p *Predictor) Predict(user, from string) (room string, prob float64, ok bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	m := p.counts[transKey(user, from)]
	if len(m) == 0 {
		return "", 0, false
	}
	total := 0
	type pair struct {
		room string
		n    int
	}
	pairs := make([]pair, 0, len(m))
	for r, n := range m {
		total += n
		pairs = append(pairs, pair{room: r, n: n})
	}
	// Deterministic tie-break: count desc, then name asc.
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].n != pairs[j].n {
			return pairs[i].n > pairs[j].n
		}
		return pairs[i].room < pairs[j].room
	})
	return pairs[0].room, float64(pairs[0].n) / float64(total), true
}

// PredictNext predicts from the user's last observed room.
func (p *Predictor) PredictNext(user string) (room string, prob float64, ok bool) {
	p.mu.Lock()
	from, known := p.last[user]
	p.mu.Unlock()
	if !known {
		return "", 0, false
	}
	return p.Predict(user, from)
}

// AttachTo subscribes the predictor to user.entered events on the kernel,
// learning transitions automatically.
func (p *Predictor) AttachTo(k *Kernel) int {
	return k.Subscribe(TopicUserEntered, func(ev Event) {
		p.Observe(ev.Attr(AttrUser), ev.Attr(AttrFrom), ev.Attr(AttrRoom))
	})
}
