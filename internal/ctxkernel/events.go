package ctxkernel

import (
	"strconv"
	"time"
)

// Topics published by the application lifecycle (internal/core) and the
// agent layer; canonical strings live here, next to the cluster topics,
// so every layer shares one catalog.
const (
	// TopicAppStarted fires when an application is run on a host
	// (attrs: app, host).
	TopicAppStarted = "app.started"
	// TopicAppStopped fires when an application is gracefully stopped
	// (attrs: app, host).
	TopicAppStopped = "app.stopped"
	// TopicAppMigrated fires after a successful agent- or control-plane-
	// driven migration (attrs: app, dest, mode, reason, suspend_ms,
	// migrate_ms, resume_ms, bytes).
	TopicAppMigrated = "app.migrated"
	// TopicAppMigrateFailed fires when a migration attempt failed
	// (attrs: app, dest, reason, error).
	TopicAppMigrateFailed = "app.migrate-failed"
	// TopicClusterMember fires on a gossip membership transition
	// (attrs: host, space, state, incarnation).
	TopicClusterMember = "cluster.member"
)

// Topic enumerates the exported event kinds of the control plane: every
// kernel topic with a typed struct form. The string topics above remain
// the internal bus (and wire) encoding; the enum and the structs are the
// public contract clients program against.
type Topic uint8

// Exported event kinds.
const (
	EvUnknown Topic = iota
	EvUserEntered
	EvUserLeft
	EvUserLocation
	EvNetworkRTT
	EvAppStarted
	EvAppStopped
	EvAppMigrated
	EvAppMigrateFailed
	EvClusterMember
	EvClusterHostDead
	EvClusterRehomed
	EvClusterRehomeFailed
	EvClusterSuperseded
	EvStateReplicated
	EvStateRestored
	EvClusterDurable
	EvClusterDegraded
)

// topicStrings maps each exported kind to its bus encoding.
var topicStrings = map[Topic]string{
	EvUserEntered:         TopicUserEntered,
	EvUserLeft:            TopicUserLeft,
	EvUserLocation:        TopicUserLocation,
	EvNetworkRTT:          TopicNetworkRTT,
	EvAppStarted:          TopicAppStarted,
	EvAppStopped:          TopicAppStopped,
	EvAppMigrated:         TopicAppMigrated,
	EvAppMigrateFailed:    TopicAppMigrateFailed,
	EvClusterMember:       TopicClusterMember,
	EvClusterHostDead:     TopicClusterHostDead,
	EvClusterRehomed:      TopicClusterRehomed,
	EvClusterRehomeFailed: TopicClusterRehomeFailed,
	EvClusterSuperseded:   TopicClusterSuperseded,
	EvStateReplicated:     TopicStateReplicated,
	EvStateRestored:       TopicStateRestored,
	EvClusterDurable:      TopicClusterDurable,
	EvClusterDegraded:     TopicClusterDegraded,
}

// Topics lists every exported event kind (stable order) — the typed-event
// catalog tests and the doc generator iterate it.
func Topics() []Topic {
	out := make([]Topic, 0, len(topicStrings))
	for t := EvUserEntered; t <= EvClusterDegraded; t++ {
		out = append(out, t)
	}
	return out
}

// String returns the kind's bus topic ("" for EvUnknown).
func (t Topic) String() string { return topicStrings[t] }

// ParseTopic maps a bus topic string back to its exported kind.
func ParseTopic(s string) (Topic, bool) {
	for t, str := range topicStrings {
		if str == s {
			return t, true
		}
	}
	return EvUnknown, false
}

// TypedEvent is one exported event in struct form. Bus() encodes it back
// to the kernel's string-topic form — the bus and wire encoding — and
// FromBus decodes; the two round-trip for every exported kind.
type TypedEvent interface {
	Kind() Topic
	Bus() Event
}

// UserEnteredEvent reports a user appearing in a room.
type UserEnteredEvent struct {
	User, Badge, Room string
	// FromRoom is the previous room ("" when first seen).
	FromRoom string
	At       time.Time
}

func (e UserEnteredEvent) Kind() Topic { return EvUserEntered }
func (e UserEnteredEvent) Bus() Event {
	return Event{Topic: TopicUserEntered, At: e.At, Source: "typed", Attrs: map[string]string{
		AttrUser: e.User, AttrBadge: e.Badge, AttrRoom: e.Room, AttrFrom: e.FromRoom,
	}}
}

// UserLeftEvent reports a user leaving a room.
type UserLeftEvent struct {
	User, Badge, Room string
	At                time.Time
}

func (e UserLeftEvent) Kind() Topic { return EvUserLeft }
func (e UserLeftEvent) Bus() Event {
	return Event{Topic: TopicUserLeft, At: e.At, Source: "typed", Attrs: map[string]string{
		AttrUser: e.User, AttrBadge: e.Badge, AttrRoom: e.Room,
	}}
}

// UserLocationEvent is the current (user, room) fact.
type UserLocationEvent struct {
	User, Badge, Room string
	At                time.Time
}

func (e UserLocationEvent) Kind() Topic { return EvUserLocation }
func (e UserLocationEvent) Bus() Event {
	return Event{Topic: TopicUserLocation, At: e.At, Source: "typed", Attrs: map[string]string{
		AttrUser: e.User, AttrBadge: e.Badge, AttrRoom: e.Room,
	}}
}

// NetworkRTTEvent is an observed host-to-host response time.
type NetworkRTTEvent struct {
	From, To string
	RTTMs    int64
	At       time.Time
}

func (e NetworkRTTEvent) Kind() Topic { return EvNetworkRTT }
func (e NetworkRTTEvent) Bus() Event {
	return Event{Topic: TopicNetworkRTT, At: e.At, Source: "typed", Attrs: map[string]string{
		AttrFrom: e.From, AttrTo: e.To, AttrRTTMs: strconv.FormatInt(e.RTTMs, 10),
	}}
}

// AppStartedEvent reports an application run on a host.
type AppStartedEvent struct {
	App, Host string
	At        time.Time
}

func (e AppStartedEvent) Kind() Topic { return EvAppStarted }
func (e AppStartedEvent) Bus() Event {
	return Event{Topic: TopicAppStarted, At: e.At, Source: "typed", Attrs: map[string]string{
		"app": e.App, "host": e.Host,
	}}
}

// AppStoppedEvent reports an application gracefully stopped on a host.
type AppStoppedEvent struct {
	App, Host string
	At        time.Time
}

func (e AppStoppedEvent) Kind() Topic { return EvAppStopped }
func (e AppStoppedEvent) Bus() Event {
	return Event{Topic: TopicAppStopped, At: e.At, Source: "typed", Attrs: map[string]string{
		"app": e.App, "host": e.Host,
	}}
}

// AppMigratedEvent reports a completed migration with its three-phase
// timing split.
type AppMigratedEvent struct {
	App, Dest, Mode, Reason        string
	SuspendMs, MigrateMs, ResumeMs int64
	Bytes                          int64
	At                             time.Time
}

func (e AppMigratedEvent) Kind() Topic { return EvAppMigrated }
func (e AppMigratedEvent) Bus() Event {
	return Event{Topic: TopicAppMigrated, At: e.At, Source: "typed", Attrs: map[string]string{
		"app": e.App, "dest": e.Dest, "mode": e.Mode, "reason": e.Reason,
		"suspend_ms": strconv.FormatInt(e.SuspendMs, 10),
		"migrate_ms": strconv.FormatInt(e.MigrateMs, 10),
		"resume_ms":  strconv.FormatInt(e.ResumeMs, 10),
		"bytes":      strconv.FormatInt(e.Bytes, 10),
	}}
}

// AppMigrateFailedEvent reports a migration attempt that did not land.
type AppMigrateFailedEvent struct {
	App, Dest, Reason, Error string
	At                       time.Time
}

func (e AppMigrateFailedEvent) Kind() Topic { return EvAppMigrateFailed }
func (e AppMigrateFailedEvent) Bus() Event {
	return Event{Topic: TopicAppMigrateFailed, At: e.At, Source: "typed", Attrs: map[string]string{
		"app": e.App, "dest": e.Dest, "reason": e.Reason, "error": e.Error,
	}}
}

// MemberEvent is one gossip membership transition.
type MemberEvent struct {
	Host, Space, State string
	Incarnation        uint64
	At                 time.Time
}

func (e MemberEvent) Kind() Topic { return EvClusterMember }
func (e MemberEvent) Bus() Event {
	return Event{Topic: TopicClusterMember, At: e.At, Source: "typed", Attrs: map[string]string{
		"host": e.Host, "space": e.Space, "state": e.State,
		"incarnation": strconv.FormatUint(e.Incarnation, 10),
	}}
}

// HostDeadEvent reports a quorum death conviction starting failover.
type HostDeadEvent struct {
	Host, Reporter string
	At             time.Time
}

func (e HostDeadEvent) Kind() Topic { return EvClusterHostDead }
func (e HostDeadEvent) Bus() Event {
	return Event{Topic: TopicClusterHostDead, At: e.At, Source: "typed", Attrs: map[string]string{
		"host": e.Host, "reporter": e.Reporter,
	}}
}

// RehomedEvent reports one application relaunched on a survivor.
type RehomedEvent struct {
	App, From, To, Space string
	// Restored reports the relaunch resumed from a replicated snapshot
	// rather than a blank skeleton.
	Restored bool
	At       time.Time
}

func (e RehomedEvent) Kind() Topic { return EvClusterRehomed }
func (e RehomedEvent) Bus() Event {
	return Event{Topic: TopicClusterRehomed, At: e.At, Source: "typed", Attrs: map[string]string{
		"app": e.App, "from": e.From, "to": e.To, "space": e.Space,
		"restored": strconv.FormatBool(e.Restored),
	}}
}

// RehomeFailedEvent reports failover that could not re-home a dead
// host's applications.
type RehomeFailedEvent struct {
	Host, Error string
	At          time.Time
}

func (e RehomeFailedEvent) Kind() Topic { return EvClusterRehomeFailed }
func (e RehomeFailedEvent) Bus() Event {
	return Event{Topic: TopicClusterRehomeFailed, At: e.At, Source: "typed", Attrs: map[string]string{
		"host": e.Host, "error": e.Error,
	}}
}

// SupersededEvent reports a revived host stopping its stale copy of an
// application that was re-homed during its conviction.
type SupersededEvent struct {
	App, Host, RunningOn string
	At                   time.Time
}

func (e SupersededEvent) Kind() Topic { return EvClusterSuperseded }
func (e SupersededEvent) Bus() Event {
	return Event{Topic: TopicClusterSuperseded, At: e.At, Source: "typed", Attrs: map[string]string{
		"app": e.App, "host": e.Host, "running-on": e.RunningOn,
	}}
}

// StateReplicatedEvent reports one snapshot publish by a host's
// replicator.
type StateReplicatedEvent struct {
	App, Host string
	// FrameKind is "full" or "delta".
	FrameKind string
	Seq       uint64
	Bytes     int
	Chain     int
	At        time.Time
}

func (e StateReplicatedEvent) Kind() Topic { return EvStateReplicated }
func (e StateReplicatedEvent) Bus() Event {
	return Event{Topic: TopicStateReplicated, At: e.At, Source: "typed", Attrs: map[string]string{
		"app": e.App, "host": e.Host, "kind": e.FrameKind,
		"seq":   strconv.FormatUint(e.Seq, 10),
		"bytes": strconv.Itoa(e.Bytes),
		"chain": strconv.Itoa(e.Chain),
	}}
}

// StateRestoredEvent reports failover restoring a re-homed application
// from a replicated snapshot.
type StateRestoredEvent struct {
	App, To string
	Seq     uint64
	At      time.Time
}

func (e StateRestoredEvent) Kind() Topic { return EvStateRestored }
func (e StateRestoredEvent) Bus() Event {
	return Event{Topic: TopicStateRestored, At: e.At, Source: "typed", Attrs: map[string]string{
		"app": e.App, "to": e.To, "seq": strconv.FormatUint(e.Seq, 10),
	}}
}

// FederationWriteEvent is the outcome of one synchronous-concern
// federation write: durable (the concern was met) or degraded (too few
// peers reachable, or too few acks before the window closed).
type FederationWriteEvent struct {
	Space, Key, Concern string
	Acked, Required     int
	// Durable selects the bus topic: cluster.durable when true,
	// cluster.degraded when false.
	Durable bool
	// Degraded reports the write skipped the ack wait entirely because
	// the membership view said the concern was unmeetable.
	Degraded bool
	At       time.Time
}

func (e FederationWriteEvent) Kind() Topic {
	if e.Durable {
		return EvClusterDurable
	}
	return EvClusterDegraded
}

func (e FederationWriteEvent) Bus() Event {
	return Event{Topic: e.Kind().String(), At: e.At, Source: "typed", Attrs: map[string]string{
		"space": e.Space, "key": e.Key, "concern": e.Concern,
		"acked":    strconv.Itoa(e.Acked),
		"required": strconv.Itoa(e.Required),
		"degraded": strconv.FormatBool(e.Degraded),
	}}
}

// GenericEvent wraps a bus event with no typed form (user-defined
// topics); Raw is the event as published.
type GenericEvent struct {
	Raw Event
}

func (e GenericEvent) Kind() Topic { return EvUnknown }
func (e GenericEvent) Bus() Event  { return e.Raw }

// attr parsing helpers: absent or malformed attributes decode to zero
// values — events are observability data, not invariants.
func atoiAttr(ev Event, key string) int {
	n, _ := strconv.Atoi(ev.Attr(key))
	return n
}

func int64Attr(ev Event, key string) int64 {
	n, _ := strconv.ParseInt(ev.Attr(key), 10, 64)
	return n
}

func uint64Attr(ev Event, key string) uint64 {
	n, _ := strconv.ParseUint(ev.Attr(key), 10, 64)
	return n
}

func boolAttr(ev Event, key string) bool {
	b, _ := strconv.ParseBool(ev.Attr(key))
	return b
}

// FromBus decodes a bus event into its typed form. Topics outside the
// exported catalog come back as GenericEvent, so a Watch stream never
// drops an event for being untyped.
func FromBus(ev Event) TypedEvent {
	kind, ok := ParseTopic(ev.Topic)
	if !ok {
		return GenericEvent{Raw: ev}
	}
	switch kind {
	case EvUserEntered:
		return UserEnteredEvent{
			User: ev.Attr(AttrUser), Badge: ev.Attr(AttrBadge),
			Room: ev.Attr(AttrRoom), FromRoom: ev.Attr(AttrFrom), At: ev.At,
		}
	case EvUserLeft:
		return UserLeftEvent{
			User: ev.Attr(AttrUser), Badge: ev.Attr(AttrBadge),
			Room: ev.Attr(AttrRoom), At: ev.At,
		}
	case EvUserLocation:
		return UserLocationEvent{
			User: ev.Attr(AttrUser), Badge: ev.Attr(AttrBadge),
			Room: ev.Attr(AttrRoom), At: ev.At,
		}
	case EvNetworkRTT:
		return NetworkRTTEvent{
			From: ev.Attr(AttrFrom), To: ev.Attr(AttrTo),
			RTTMs: int64Attr(ev, AttrRTTMs), At: ev.At,
		}
	case EvAppStarted:
		return AppStartedEvent{App: ev.Attr("app"), Host: ev.Attr("host"), At: ev.At}
	case EvAppStopped:
		return AppStoppedEvent{App: ev.Attr("app"), Host: ev.Attr("host"), At: ev.At}
	case EvAppMigrated:
		return AppMigratedEvent{
			App: ev.Attr("app"), Dest: ev.Attr("dest"),
			Mode: ev.Attr("mode"), Reason: ev.Attr("reason"),
			SuspendMs: int64Attr(ev, "suspend_ms"),
			MigrateMs: int64Attr(ev, "migrate_ms"),
			ResumeMs:  int64Attr(ev, "resume_ms"),
			Bytes:     int64Attr(ev, "bytes"), At: ev.At,
		}
	case EvAppMigrateFailed:
		return AppMigrateFailedEvent{
			App: ev.Attr("app"), Dest: ev.Attr("dest"),
			Reason: ev.Attr("reason"), Error: ev.Attr("error"), At: ev.At,
		}
	case EvClusterMember:
		return MemberEvent{
			Host: ev.Attr("host"), Space: ev.Attr("space"), State: ev.Attr("state"),
			Incarnation: uint64Attr(ev, "incarnation"), At: ev.At,
		}
	case EvClusterHostDead:
		return HostDeadEvent{Host: ev.Attr("host"), Reporter: ev.Attr("reporter"), At: ev.At}
	case EvClusterRehomed:
		return RehomedEvent{
			App: ev.Attr("app"), From: ev.Attr("from"), To: ev.Attr("to"),
			Space: ev.Attr("space"), Restored: boolAttr(ev, "restored"), At: ev.At,
		}
	case EvClusterRehomeFailed:
		return RehomeFailedEvent{Host: ev.Attr("host"), Error: ev.Attr("error"), At: ev.At}
	case EvClusterSuperseded:
		return SupersededEvent{
			App: ev.Attr("app"), Host: ev.Attr("host"),
			RunningOn: ev.Attr("running-on"), At: ev.At,
		}
	case EvStateReplicated:
		return StateReplicatedEvent{
			App: ev.Attr("app"), Host: ev.Attr("host"), FrameKind: ev.Attr("kind"),
			Seq: uint64Attr(ev, "seq"), Bytes: atoiAttr(ev, "bytes"),
			Chain: atoiAttr(ev, "chain"), At: ev.At,
		}
	case EvStateRestored:
		return StateRestoredEvent{
			App: ev.Attr("app"), To: ev.Attr("to"), Seq: uint64Attr(ev, "seq"), At: ev.At,
		}
	case EvClusterDurable, EvClusterDegraded:
		return FederationWriteEvent{
			Space: ev.Attr("space"), Key: ev.Attr("key"), Concern: ev.Attr("concern"),
			Acked: atoiAttr(ev, "acked"), Required: atoiAttr(ev, "required"),
			Durable: kind == EvClusterDurable, Degraded: boolAttr(ev, "degraded"), At: ev.At,
		}
	}
	return GenericEvent{Raw: ev}
}

// PublishTyped encodes a typed event onto the bus with the given source.
func (k *Kernel) PublishTyped(source string, e TypedEvent) {
	ev := e.Bus()
	ev.Source = source
	k.Publish(ev)
}
