package ctxkernel

import (
	"context"
	"testing"
	"time"

	"mdagent/internal/netsim"
	"mdagent/internal/sensor"
	"mdagent/internal/vclock"
)

func fusionRig(t *testing.T) (*sensor.Field, *Kernel, *Fusion, *vclock.Virtual) {
	t.Helper()
	clk := vclock.NewVirtual(time.Unix(0, 0))
	f := sensor.NewField(clk, sensor.WithFieldSeed(9), sensor.WithNoise(0.1))
	f.AddRoom("office821", sensor.Point{X: 0, Y: 0})
	f.AddRoom("office822", sensor.Point{X: 9, Y: 0})
	if err := f.AddBadge("b1", "alice", "office821"); err != nil {
		t.Fatal(err)
	}
	k := NewKernel()
	fu := NewFusion(f, k)
	return f, k, fu, clk
}

func TestFusionInitialLocationPublishesEntered(t *testing.T) {
	f, k, fu, _ := fusionRig(t)
	var entered, left int
	k.Subscribe(TopicUserEntered, func(Event) { entered++ })
	k.Subscribe(TopicUserLeft, func(Event) { left++ })
	fu.Consume(f.Sample())
	if entered != 1 || left != 0 {
		t.Fatalf("entered=%d left=%d, want 1/0 on first sighting", entered, left)
	}
	room, ok := fu.Location("alice")
	if !ok || room != "office821" {
		t.Fatalf("Location = %q, %v", room, ok)
	}
}

func TestFusionDebouncedMove(t *testing.T) {
	f, k, fu, _ := fusionRig(t)
	var lefts, enters []string
	k.Subscribe(TopicUserLeft, func(e Event) { lefts = append(lefts, e.Attr(AttrRoom)) })
	k.Subscribe(TopicUserEntered, func(e Event) { enters = append(enters, e.Attr(AttrRoom)) })

	fu.Consume(f.Sample()) // establish office821
	if err := f.MoveBadge("b1", "office822"); err != nil {
		t.Fatal(err)
	}
	fu.Consume(f.Sample()) // 1st sighting in 822: pending, not yet confirmed
	if len(lefts) != 0 {
		t.Fatalf("move published after a single sample: %v", lefts)
	}
	fu.Consume(f.Sample()) // 2nd consecutive sighting: confirmed
	if len(lefts) != 1 || lefts[0] != "office821" {
		t.Fatalf("left events = %v", lefts)
	}
	if len(enters) != 2 || enters[1] != "office822" {
		t.Fatalf("entered events = %v", enters)
	}
	if room, _ := fu.Location("alice"); room != "office822" {
		t.Fatalf("Location = %q", room)
	}
	// user.entered carries the origin for the predictor.
	if k.Published(TopicUserLocation) != 2 {
		t.Fatalf("location events = %d", k.Published(TopicUserLocation))
	}
}

func TestFusionStableLocationQuiet(t *testing.T) {
	f, k, fu, _ := fusionRig(t)
	fu.Consume(f.Sample())
	before := k.Published(TopicUserLocation)
	for i := 0; i < 5; i++ {
		fu.Consume(f.Sample())
	}
	if got := k.Published(TopicUserLocation); got != before {
		t.Fatalf("stable user produced %d extra location events", got-before)
	}
}

func TestFusionFlickerSuppressed(t *testing.T) {
	// A single-sample flicker to another room (noise) must not move the
	// user: pending resets when the home room wins again.
	f, k, fu, _ := fusionRig(t)
	fu.Consume(f.Sample()) // at office821
	if err := f.MoveBadge("b1", "office822"); err != nil {
		t.Fatal(err)
	}
	fu.Consume(f.Sample()) // one flicker sample
	if err := f.MoveBadge("b1", "office821"); err != nil {
		t.Fatal(err)
	}
	fu.Consume(f.Sample()) // back home
	if err := f.MoveBadge("b1", "office822"); err != nil {
		t.Fatal(err)
	}
	fu.Consume(f.Sample()) // single again — still pending
	if got := k.Published(TopicUserLeft); got != 0 {
		t.Fatalf("flicker published %d user.left events", got)
	}
	if room, _ := fu.Location("alice"); room != "office821" {
		t.Fatalf("Location = %q, want office821 retained", room)
	}
}

func TestFusionPublishesNetworkRTT(t *testing.T) {
	clk := vclock.NewVirtual(time.Unix(0, 0))
	net := netsim.New(clk)
	if _, err := net.AddHost("a", "s", netsim.Pentium4_1700(), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := net.AddHost("b", "s", netsim.PentiumM_1600(), 0); err != nil {
		t.Fatal(err)
	}
	probe := sensor.NewNetworkProbe(net, [][2]string{{"a", "b"}})
	readings, err := probe.Sample()
	if err != nil {
		t.Fatal(err)
	}

	f := sensor.NewField(clk)
	k := NewKernel()
	fu := NewFusion(f, k)
	var rtts []string
	k.Subscribe(TopicNetworkRTT, func(e Event) { rtts = append(rtts, e.Attr(AttrRTTMs)) })
	fu.Consume(readings)
	if len(rtts) != 1 || rtts[0] == "" {
		t.Fatalf("rtt events = %v", rtts)
	}
}

func TestFusionEndToEndWalk(t *testing.T) {
	// Full pipeline: scripted walk -> raw readings -> fusion -> classifier
	// and predictor, as the middleware wires it.
	f, k, fu, _ := fusionRig(t)
	c := NewClassifier()
	c.AttachTo(k)
	p := NewPredictor()
	p.AttachTo(k)

	w := sensor.NewWalker(f, 250*time.Millisecond)
	script := sensor.Script{Badge: "b1", Steps: []sensor.Step{
		{Room: "office821", Dwell: time.Second},
		{Room: "office822", Dwell: time.Second},
		{Room: "office821", Dwell: time.Second},
		{Room: "office822", Dwell: time.Second},
	}}
	if err := w.Run(context.Background(), script, fu.Consume); err != nil {
		t.Fatal(err)
	}
	latest, ok := c.Latest(TopicUserLocation, "alice")
	if !ok || latest.Attr(AttrRoom) != "office822" {
		t.Fatalf("classifier latest = %+v, %v", latest, ok)
	}
	room, prob, ok := p.Predict("alice", "office821")
	if !ok || room != "office822" || prob != 1 {
		t.Fatalf("predictor = %q %v %v", room, prob, ok)
	}
}
