package ctxkernel

import (
	"sync"
)

// Condition decides whether an event should fire a watch.
type Condition func(Event) bool

// Monitor evaluates predefined conditions over the event stream and runs
// actions when they hold — the paper's context monitor: "A context monitor
// will observe this process. If some predefined conditions occur, the
// autonomous agents will be triggered" (§4.1).
type Monitor struct {
	kernel *Kernel

	mu      sync.Mutex
	watches map[string]int // watch name -> subscription id
	fires   map[string]int // watch name -> fire count
}

// NewMonitor creates a monitor over kernel.
func NewMonitor(kernel *Kernel) *Monitor {
	return &Monitor{
		kernel:  kernel,
		watches: make(map[string]int),
		fires:   make(map[string]int),
	}
}

// Watch installs a named watch: when an event matching the topic pattern
// satisfies cond (nil means always), action runs. Installing a watch with
// an existing name replaces it.
func (m *Monitor) Watch(name, topicPattern string, cond Condition, action func(Event)) {
	m.mu.Lock()
	if old, ok := m.watches[name]; ok {
		m.kernel.Unsubscribe(old)
	}
	m.mu.Unlock()

	id := m.kernel.Subscribe(topicPattern, func(ev Event) {
		if cond != nil && !cond(ev) {
			return
		}
		m.mu.Lock()
		m.fires[name]++
		m.mu.Unlock()
		action(ev)
	})

	m.mu.Lock()
	m.watches[name] = id
	m.mu.Unlock()
}

// Unwatch removes a named watch.
func (m *Monitor) Unwatch(name string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if id, ok := m.watches[name]; ok {
		m.kernel.Unsubscribe(id)
		delete(m.watches, name)
	}
}

// Fires reports how many times a watch has fired.
func (m *Monitor) Fires(name string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.fires[name]
}

// AttrEquals returns a condition matching events whose attribute equals v.
func AttrEquals(key, v string) Condition {
	return func(ev Event) bool { return ev.Attr(key) == v }
}

// And combines conditions conjunctively.
func And(conds ...Condition) Condition {
	return func(ev Event) bool {
		for _, c := range conds {
			if !c(ev) {
				return false
			}
		}
		return true
	}
}
