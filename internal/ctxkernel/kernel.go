// Package ctxkernel implements MDAgent's context layer (paper §4.1): a
// publish/subscribe context kernel ("Context kernel employs a
// publish/subscribe design pattern. When the subscribed events occur, the
// information will be multicast to the registered listeners"), a
// classifier that stores context facts into databases by temporal
// characteristics, a context monitor that triggers autonomous agents when
// predefined conditions occur, fusion of raw sensor readings into semantic
// facts ("to map these data to useful information such as location, user
// identity ... requires context fusion mechanisms"), and a Markov
// next-location predictor ("some context reasoning and prediction
// functionalities should also be provided").
package ctxkernel

import (
	"strings"
	"sync"
	"time"

	"mdagent/internal/obs"
)

// Well-known topics published by the fusion stage and consumed by
// autonomous agents.
const (
	TopicUserEntered  = "user.entered"  // user appeared in a room
	TopicUserLeft     = "user.left"     // user left a room
	TopicUserLocation = "user.location" // current (user, room) fact
	TopicNetworkRTT   = "network.rtt"   // observed response time between hosts
	TopicPreference   = "user.preference"
	TopicDevice       = "device.profile"
	TopicAppState     = "app.state"
)

// Well-known topics published by the cluster layer (internal/core's
// distribution wiring); defined here so the agent layer can follow
// failover without importing core.
const (
	// TopicClusterHostDead fires when membership declares a host dead
	// (with quorum) and failover begins.
	TopicClusterHostDead = "cluster.host-dead"
	// TopicClusterRehomed fires for each application relaunched on a
	// survivor (attrs: app, from, to, space, restored).
	TopicClusterRehomed = "cluster.rehomed"
	// TopicClusterRehomeFailed fires when failover could not re-home an
	// app.
	TopicClusterRehomeFailed = "cluster.rehome-failed"
	// TopicClusterSuperseded fires when a host that returned from a false
	// death conviction stops its local copy of an application that
	// failover meanwhile re-homed elsewhere.
	TopicClusterSuperseded = "cluster.superseded"
	// TopicStateReplicated fires each time a host's replicator publishes
	// an application snapshot to its registry center.
	TopicStateReplicated = "cluster.state.replicated"
	// TopicStateRestored fires when failover restores a re-homed app from
	// a replicated snapshot instead of a skeleton.
	TopicStateRestored = "cluster.state.restored"
	// TopicClusterDurable fires when a synchronous-concern federation
	// write collected the peer acks its write concern requires.
	TopicClusterDurable = "cluster.durable"
	// TopicClusterDegraded fires when a synchronous-concern federation
	// write fell short: too few peers reachable (degraded mode) or too
	// few acks before the window closed. The write landed locally and
	// anti-entropy keeps retrying delivery.
	TopicClusterDegraded = "cluster.degraded"
)

// Well-known attribute keys.
const (
	AttrUser  = "user"
	AttrBadge = "badge"
	AttrRoom  = "room"
	AttrFrom  = "from"
	AttrTo    = "to"
	AttrRTTMs = "rtt_ms"
	AttrKey   = "key"
	AttrValue = "value"
)

// Event is one context fact flowing through the kernel.
type Event struct {
	Topic  string
	Attrs  map[string]string
	At     time.Time
	Source string
}

// Attr returns an attribute value ("" when absent).
func (e Event) Attr(key string) string { return e.Attrs[key] }

// Subject identifies what the event is about, used as the storage key by
// the classifier: the user for user.* topics, from/to pair for network
// topics, otherwise the "key" attribute.
func (e Event) Subject() string {
	switch {
	case strings.HasPrefix(e.Topic, "user."):
		return e.Attr(AttrUser)
	case strings.HasPrefix(e.Topic, "network."):
		return e.Attr(AttrFrom) + ">" + e.Attr(AttrTo)
	default:
		return e.Attr(AttrKey)
	}
}

// Handler consumes events. Handlers run synchronously on the publisher's
// goroutine and must be quick; spawn work elsewhere for slow reactions.
type Handler func(Event)

type subscription struct {
	id      int
	pattern string
	handler Handler
}

// Kernel is the pub/sub hub. The zero value is not usable; call NewKernel.
type Kernel struct {
	mu     sync.RWMutex
	subs   []subscription
	nextID int
	// published counts per topic, for diagnostics and tests.
	counts map[string]int
}

// NewKernel returns an empty kernel.
func NewKernel() *Kernel {
	return &Kernel{counts: make(map[string]int)}
}

// Subscribe registers a handler for a topic pattern: either an exact topic
// or a prefix pattern ending in ".*" (e.g. "user.*"), or "*" for all.
// It returns a subscription id for Unsubscribe.
func (k *Kernel) Subscribe(pattern string, h Handler) int {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.nextID++
	k.subs = append(k.subs, subscription{id: k.nextID, pattern: pattern, handler: h})
	return k.nextID
}

// Unsubscribe removes a subscription by id.
func (k *Kernel) Unsubscribe(id int) {
	k.mu.Lock()
	defer k.mu.Unlock()
	for i, s := range k.subs {
		if s.id == id {
			k.subs = append(k.subs[:i], k.subs[i+1:]...)
			return
		}
	}
}

// MatchTopic reports whether a subscription pattern (exact topic,
// "prefix.*", or "*") matches a topic — the kernel's own matching rule,
// exported so the control plane's replay ring can filter buffered
// events with exactly the semantics a live subscription would have.
func MatchTopic(pattern, topic string) bool { return matches(pattern, topic) }

func matches(pattern, topic string) bool {
	if pattern == "*" || pattern == topic {
		return true
	}
	if prefix, ok := strings.CutSuffix(pattern, ".*"); ok {
		return strings.HasPrefix(topic, prefix+".")
	}
	return false
}

// mPublishes counts kernel publishes process-wide (kernels have no
// individual identity; in-process deployments share the series).
var mPublishes = obs.Default.Counter("mdagent_kernel_publish_total")

// Publish multicasts the event to every matching subscriber, in
// subscription order.
func (k *Kernel) Publish(ev Event) {
	mPublishes.Inc()
	k.mu.RLock()
	handlers := make([]Handler, 0, len(k.subs))
	for _, s := range k.subs {
		if matches(s.pattern, ev.Topic) {
			handlers = append(handlers, s.handler)
		}
	}
	k.mu.RUnlock()
	k.mu.Lock()
	k.counts[ev.Topic]++
	k.mu.Unlock()
	for _, h := range handlers {
		h(ev)
	}
}

// Published reports how many events have been published on a topic.
func (k *Kernel) Published(topic string) int {
	k.mu.RLock()
	defer k.mu.RUnlock()
	return k.counts[topic]
}

// SubscriberCount reports the number of live subscriptions (diagnostics).
func (k *Kernel) SubscriberCount() int {
	k.mu.RLock()
	defer k.mu.RUnlock()
	return len(k.subs)
}
