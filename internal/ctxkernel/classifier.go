package ctxkernel

import (
	"strings"
	"sync"
)

// TemporalClass partitions context facts by how fast they change — the
// paper's classifier "will store the data into different databases
// according to their temporal characteristics" (§4.1), motivated by §3.4:
// "users' location information usually changes frequently ... while users'
// preferences or operational habits are generally more stable".
type TemporalClass int

// Temporal classes.
const (
	// ClassStatic facts rarely change: user preferences, habits.
	ClassStatic TemporalClass = iota + 1
	// ClassStable facts change occasionally: device profiles, installed apps.
	ClassStable
	// ClassDynamic facts change constantly: locations, network conditions.
	ClassDynamic
)

func (c TemporalClass) String() string {
	switch c {
	case ClassStatic:
		return "static"
	case ClassStable:
		return "stable"
	case ClassDynamic:
		return "dynamic"
	default:
		return "invalid"
	}
}

// DefaultTopicClasses maps the well-known topic prefixes to temporal
// classes.
func DefaultTopicClasses() map[string]TemporalClass {
	return map[string]TemporalClass{
		"user.preference": ClassStatic,
		"device.":         ClassStable,
		"app.":            ClassStable,
		"user.":           ClassDynamic,
		"network.":        ClassDynamic,
	}
}

// entry is one stored fact with bounded history for dynamic facts.
type entry struct {
	latest  Event
	history []Event // ring, newest last, dynamic class only
}

// Classifier routes events into per-class databases and answers queries
// about the latest and historical values.
type Classifier struct {
	mu         sync.RWMutex
	classes    map[string]TemporalClass // topic prefix (or exact) -> class
	dbs        map[TemporalClass]map[string]*entry
	historyCap int
}

// ClassifierOption configures a Classifier.
type ClassifierOption func(*Classifier)

// WithHistoryCap bounds per-fact history length for dynamic facts
// (default 32).
func WithHistoryCap(n int) ClassifierOption {
	return func(c *Classifier) { c.historyCap = n }
}

// WithTopicClass adds or overrides a topic-to-class mapping. Longest
// matching prefix wins; exact topic beats prefix.
func WithTopicClass(topicPrefix string, class TemporalClass) ClassifierOption {
	return func(c *Classifier) { c.classes[topicPrefix] = class }
}

// NewClassifier builds a classifier with the default topic classes.
func NewClassifier(opts ...ClassifierOption) *Classifier {
	c := &Classifier{
		classes: DefaultTopicClasses(),
		dbs: map[TemporalClass]map[string]*entry{
			ClassStatic:  make(map[string]*entry),
			ClassStable:  make(map[string]*entry),
			ClassDynamic: make(map[string]*entry),
		},
		historyCap: 32,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// ClassOf resolves the temporal class for a topic: exact match first, then
// the longest registered prefix; unknown topics default to dynamic (safe:
// they are re-fetched rather than assumed stable).
func (c *Classifier) ClassOf(topic string) TemporalClass {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if cl, ok := c.classes[topic]; ok {
		return cl
	}
	best, bestLen := ClassDynamic, -1
	for prefix, cl := range c.classes {
		if strings.HasPrefix(topic, prefix) && len(prefix) > bestLen {
			best, bestLen = cl, len(prefix)
		}
	}
	return best
}

func key(topic, subject string) string { return topic + "|" + subject }

// Store files the event into its class database.
func (c *Classifier) Store(ev Event) TemporalClass {
	class := c.ClassOf(ev.Topic)
	c.mu.Lock()
	defer c.mu.Unlock()
	db := c.dbs[class]
	k := key(ev.Topic, ev.Subject())
	e, ok := db[k]
	if !ok {
		e = &entry{}
		db[k] = e
	}
	e.latest = ev
	if class == ClassDynamic {
		e.history = append(e.history, ev)
		if len(e.history) > c.historyCap {
			e.history = e.history[len(e.history)-c.historyCap:]
		}
	}
	return class
}

// Latest returns the most recent fact for (topic, subject).
func (c *Classifier) Latest(topic, subject string) (Event, bool) {
	class := c.ClassOf(topic)
	c.mu.RLock()
	defer c.mu.RUnlock()
	e, ok := c.dbs[class][key(topic, subject)]
	if !ok {
		return Event{}, false
	}
	return e.latest, true
}

// History returns up to n most recent facts for (topic, subject), oldest
// first. Non-dynamic topics keep no history and return just the latest.
func (c *Classifier) History(topic, subject string, n int) []Event {
	class := c.ClassOf(topic)
	c.mu.RLock()
	defer c.mu.RUnlock()
	e, ok := c.dbs[class][key(topic, subject)]
	if !ok {
		return nil
	}
	if class != ClassDynamic {
		return []Event{e.latest}
	}
	h := e.history
	if n > 0 && len(h) > n {
		h = h[len(h)-n:]
	}
	out := make([]Event, len(h))
	copy(out, h)
	return out
}

// Size reports how many facts are stored in a class database.
func (c *Classifier) Size(class TemporalClass) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.dbs[class])
}

// AttachTo subscribes the classifier to every event on the kernel.
func (c *Classifier) AttachTo(k *Kernel) int {
	return k.Subscribe("*", func(ev Event) { c.Store(ev) })
}
