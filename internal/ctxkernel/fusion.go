package ctxkernel

import (
	"math"
	"strconv"
	"sync"

	"mdagent/internal/sensor"
)

// Fusion turns raw sensor readings into semantic context events: nearest
// in-range beacon fixes the badge's room; the badge registry names the
// user; room changes publish user.left / user.entered / user.location
// events; network probe readings publish network.rtt events (paper §3.4:
// "the underlying sensors can only collect raw data such as distance,
// badge (listener) identity, etc. To map these data to useful information
// such as location, user identity, etc. requires context fusion
// mechanisms").
type Fusion struct {
	field  *sensor.Field
	kernel *Kernel

	mu       sync.Mutex
	location map[string]string // user -> current room
	// confirmations debounces noise: a new room must win this many
	// consecutive samples before a move is declared.
	confirmations int
	pending       map[string]string // user -> candidate room
	pendingCount  map[string]int
}

// FusionOption configures a Fusion.
type FusionOption func(*Fusion)

// WithConfirmations sets how many consecutive samples must agree before a
// location change is published (default 2, filtering single-sample noise).
func WithConfirmations(n int) FusionOption {
	return func(f *Fusion) {
		if n > 0 {
			f.confirmations = n
		}
	}
}

// NewFusion builds a fusion stage publishing into kernel.
func NewFusion(field *sensor.Field, kernel *Kernel, opts ...FusionOption) *Fusion {
	f := &Fusion{
		field:         field,
		kernel:        kernel,
		location:      make(map[string]string),
		confirmations: 2,
		pending:       make(map[string]string),
		pendingCount:  make(map[string]int),
	}
	for _, o := range opts {
		o(f)
	}
	return f
}

// Location returns the fused current room of a user.
func (f *Fusion) Location(user string) (string, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	r, ok := f.location[user]
	return r, ok
}

// Consume processes one batch of raw readings (typically one Walker tick).
func (f *Fusion) Consume(readings []sensor.Reading) {
	// Nearest beacon per badge in this batch.
	type best struct {
		dist   float64
		beacon string
	}
	nearest := make(map[string]best)
	for _, r := range readings {
		switch r.Kind {
		case sensor.KindDistance:
			b, ok := nearest[r.Badge]
			if !ok || r.Distance < b.dist {
				nearest[r.Badge] = best{dist: r.Distance, beacon: r.Beacon}
			}
		case sensor.KindNetwork:
			f.kernel.Publish(Event{
				Topic:  TopicNetworkRTT,
				Source: r.SensorID,
				At:     r.At,
				Attrs: map[string]string{
					AttrFrom:  r.FromHost,
					AttrTo:    r.ToHost,
					AttrRTTMs: strconv.FormatInt(r.RTT.Milliseconds(), 10),
				},
			})
		}
	}
	for badge, b := range nearest {
		if math.IsInf(b.dist, 1) {
			continue
		}
		room, ok := f.field.BeaconRoom(b.beacon)
		if !ok {
			continue
		}
		user, ok := f.field.User(badge)
		if !ok {
			continue
		}
		f.observe(user, badge, room, readings)
	}
}

func (f *Fusion) observe(user, badge, room string, readings []sensor.Reading) {
	var at = readings[0].At

	f.mu.Lock()
	cur, known := f.location[user]
	if known && cur == room {
		// Stable: clear any pending move.
		delete(f.pending, user)
		delete(f.pendingCount, user)
		f.mu.Unlock()
		return
	}
	// Debounce: require consecutive confirmations for a change.
	if f.pending[user] == room {
		f.pendingCount[user]++
	} else {
		f.pending[user] = room
		f.pendingCount[user] = 1
	}
	confirmed := f.pendingCount[user] >= f.confirmations || !known
	if !confirmed {
		f.mu.Unlock()
		return
	}
	delete(f.pending, user)
	delete(f.pendingCount, user)
	f.location[user] = room
	f.mu.Unlock()

	if known {
		f.kernel.Publish(Event{
			Topic: TopicUserLeft, Source: "fusion", At: at,
			Attrs: map[string]string{AttrUser: user, AttrBadge: badge, AttrRoom: cur},
		})
	}
	f.kernel.Publish(Event{
		Topic: TopicUserEntered, Source: "fusion", At: at,
		Attrs: map[string]string{AttrUser: user, AttrBadge: badge, AttrRoom: room, AttrFrom: cur},
	})
	f.kernel.Publish(Event{
		Topic: TopicUserLocation, Source: "fusion", At: at,
		Attrs: map[string]string{AttrUser: user, AttrBadge: badge, AttrRoom: room},
	})
}
