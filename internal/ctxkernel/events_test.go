package ctxkernel

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"
)

// catalogSamples builds one representative typed event per exported
// topic, with every field non-zero so a dropped attribute fails the
// round trip.
func catalogSamples() map[Topic]TypedEvent {
	at := time.Unix(1234, 5678)
	return map[Topic]TypedEvent{
		EvUserEntered:  UserEnteredEvent{User: "alice", Badge: "b1", Room: "r2", FromRoom: "r1", At: at},
		EvUserLeft:     UserLeftEvent{User: "alice", Badge: "b1", Room: "r1", At: at},
		EvUserLocation: UserLocationEvent{User: "alice", Badge: "b1", Room: "r2", At: at},
		EvNetworkRTT:   NetworkRTTEvent{From: "hostA", To: "hostB", RTTMs: 42, At: at},
		EvAppStarted:   AppStartedEvent{App: "player", Host: "hostA", At: at},
		EvAppStopped:   AppStoppedEvent{App: "player", Host: "hostA", At: at},
		EvAppMigrated: AppMigratedEvent{
			App: "player", Dest: "hostB", Mode: "follow-me", Reason: "rule fired",
			SuspendMs: 3, MigrateMs: 1200, ResumeMs: 7, Bytes: 2_000_000, At: at,
		},
		EvAppMigrateFailed: AppMigrateFailedEvent{App: "player", Dest: "hostB", Reason: "ordered", Error: "boom", At: at},
		EvClusterMember:    MemberEvent{Host: "hostA", Space: "lab", State: "suspect", Incarnation: 4, At: at},
		EvClusterHostDead:  HostDeadEvent{Host: "hostA", Reporter: "hostB", At: at},
		EvClusterRehomed: RehomedEvent{
			App: "player", From: "hostA", To: "hostB", Space: "west", Restored: true, At: at,
		},
		EvClusterRehomeFailed: RehomeFailedEvent{Host: "hostA", Error: "no center", At: at},
		EvClusterSuperseded:   SupersededEvent{App: "player", Host: "hostA", RunningOn: "hostB", At: at},
		EvStateReplicated: StateReplicatedEvent{
			App: "player", Host: "hostA", FrameKind: "delta", Seq: 17, Bytes: 4096, Chain: 3, At: at,
		},
		EvStateRestored: StateRestoredEvent{App: "player", To: "hostB", Seq: 17, At: at},
		EvClusterDurable: FederationWriteEvent{
			Space: "west", Key: "snap/player", Concern: "quorum",
			Acked: 2, Required: 2, Durable: true, At: at,
		},
		EvClusterDegraded: FederationWriteEvent{
			Space: "west", Key: "snap/player", Concern: "quorum",
			Acked: 1, Required: 2, Durable: false, Degraded: true, At: at,
		},
	}
}

// TestTypedEventRoundTrip encodes every exported topic's typed form to
// its bus event and decodes it back — the Watch stream's wire contract.
func TestTypedEventRoundTrip(t *testing.T) {
	samples := catalogSamples()
	for _, topic := range Topics() {
		sample, ok := samples[topic]
		if !ok {
			t.Fatalf("no sample for exported topic %v (%q) — extend catalogSamples", topic, topic.String())
		}
		if sample.Kind() != topic {
			t.Fatalf("sample for %q reports kind %v", topic.String(), sample.Kind())
		}
		bus := sample.Bus()
		if bus.Topic != topic.String() {
			t.Fatalf("%v Bus topic = %q, want %q", topic, bus.Topic, topic.String())
		}
		back := FromBus(bus)
		if !reflect.DeepEqual(back, sample) {
			t.Fatalf("round trip for %q:\n got %#v\nwant %#v", topic.String(), back, sample)
		}
	}
}

func TestTopicStringParseRoundTrip(t *testing.T) {
	for _, topic := range Topics() {
		s := topic.String()
		if s == "" {
			t.Fatalf("topic %d has no bus string", topic)
		}
		back, ok := ParseTopic(s)
		if !ok || back != topic {
			t.Fatalf("ParseTopic(%q) = %v, %v", s, back, ok)
		}
	}
	if _, ok := ParseTopic("no.such.topic"); ok {
		t.Fatal("ParseTopic accepted an unknown topic")
	}
	if EvUnknown.String() != "" {
		t.Fatalf("EvUnknown.String() = %q", EvUnknown.String())
	}
}

func TestFromBusUnknownTopicIsGeneric(t *testing.T) {
	ev := Event{Topic: "custom.thing", Attrs: map[string]string{"k": "v"}, At: time.Unix(9, 0)}
	typed := FromBus(ev)
	gen, ok := typed.(GenericEvent)
	if !ok {
		t.Fatalf("FromBus unknown topic = %T, want GenericEvent", typed)
	}
	if !reflect.DeepEqual(gen.Bus(), ev) {
		t.Fatalf("GenericEvent.Bus() = %#v", gen.Bus())
	}
	if gen.Kind() != EvUnknown {
		t.Fatalf("GenericEvent.Kind() = %v", gen.Kind())
	}
}

func TestFromBusToleratesMissingAttrs(t *testing.T) {
	// Malformed or attr-less events decode to zero values, never panic.
	typed := FromBus(Event{Topic: TopicStateReplicated})
	sr, ok := typed.(StateReplicatedEvent)
	if !ok || sr.Seq != 0 || sr.App != "" {
		t.Fatalf("decoded %#v", typed)
	}
	typed = FromBus(Event{Topic: TopicNetworkRTT, Attrs: map[string]string{AttrRTTMs: "garbage"}})
	if rtt := typed.(NetworkRTTEvent); rtt.RTTMs != 0 {
		t.Fatalf("garbage rtt decoded to %d", rtt.RTTMs)
	}
}

func TestPublishTypedSetsSource(t *testing.T) {
	k := NewKernel()
	var got Event
	k.Subscribe(TopicAppStarted, func(ev Event) { got = ev })
	k.PublishTyped("core", AppStartedEvent{App: "a", Host: "h", At: time.Unix(1, 0)})
	if got.Source != "core" || got.Attr("app") != "a" {
		t.Fatalf("published %#v", got)
	}
}

// TestPatternMatchingEdgeCases pins the kernel's pattern semantics:
// exact topics, "prefix.*" (which must not match the bare prefix, and
// must match nested segments), and "*".
func TestPatternMatchingEdgeCases(t *testing.T) {
	cases := []struct {
		pattern, topic string
		want           bool
	}{
		{"*", "anything.at.all", true},
		{"*", "", true},
		{"user.entered", "user.entered", true},
		{"user.entered", "user.entered.x", false},
		{"user.*", "user.entered", true},
		{"user.*", "user", false},                       // bare prefix is not in the subtree
		{"user.*", "userx.entered", false},              // prefix must end at a dot
		{"cluster.*", "cluster.state.replicated", true}, // nested segments match
		{"cluster.state.*", "cluster.state.replicated", true},
		{"cluster.state.*", "cluster.rehomed", false},
		{"", "user.entered", false},
	}
	k := NewKernel()
	for _, c := range cases {
		fired := false
		id := k.Subscribe(c.pattern, func(Event) { fired = true })
		k.Publish(Event{Topic: c.topic})
		k.Unsubscribe(id)
		if fired != c.want {
			t.Errorf("pattern %q topic %q: fired=%v want %v", c.pattern, c.topic, fired, c.want)
		}
	}
}

// TestKernelConcurrentChurn hammers Subscribe/Unsubscribe/Publish from
// many goroutines under -race: the kernel must neither race nor deliver
// to an unsubscribed handler after Unsubscribe returns... delivery MAY
// overlap an in-flight Publish that snapshotted the handler list, so the
// test only asserts absence of races and that counts keep moving.
func TestKernelConcurrentChurn(t *testing.T) {
	k := NewKernel()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Churners: subscribe, receive, unsubscribe in a loop.
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for j := 0; ; j++ {
				select {
				case <-stop:
					return
				default:
				}
				var mu sync.Mutex
				seen := 0
				pattern := fmt.Sprintf("churn.%d.*", n)
				id := k.Subscribe(pattern, func(Event) {
					mu.Lock()
					seen++
					mu.Unlock()
				})
				k.Publish(Event{Topic: fmt.Sprintf("churn.%d.tick", n)})
				k.Unsubscribe(id)
				mu.Lock()
				if seen == 0 {
					mu.Unlock()
					t.Errorf("goroutine %d iteration %d: own publish not delivered", n, j)
					return
				}
				mu.Unlock()
			}
		}(i)
	}
	// Publishers on a shared topic with a wildcard subscriber.
	var total sync.WaitGroup
	k.Subscribe("*", func(Event) {})
	for i := 0; i < 4; i++ {
		total.Add(1)
		go func() {
			defer total.Done()
			for j := 0; j < 200; j++ {
				k.Publish(Event{Topic: "shared.tick"})
			}
		}()
	}
	total.Wait()
	close(stop)
	wg.Wait()
	if got := k.Published("shared.tick"); got != 800 {
		t.Fatalf("Published(shared.tick) = %d, want 800", got)
	}
}
