package ctxkernel

import (
	"sync"
	"testing"
	"time"
)

func ev(topic string, attrs map[string]string) Event {
	return Event{Topic: topic, Attrs: attrs, At: time.Unix(0, 0), Source: "test"}
}

func TestPublishMulticastsToMatchingSubscribers(t *testing.T) {
	k := NewKernel()
	var exact, prefix, all, other int
	k.Subscribe(TopicUserEntered, func(Event) { exact++ })
	k.Subscribe("user.*", func(Event) { prefix++ })
	k.Subscribe("*", func(Event) { all++ })
	k.Subscribe("network.*", func(Event) { other++ })

	k.Publish(ev(TopicUserEntered, map[string]string{AttrUser: "alice"}))
	if exact != 1 || prefix != 1 || all != 1 || other != 0 {
		t.Fatalf("deliveries = exact:%d prefix:%d all:%d other:%d", exact, prefix, all, other)
	}
	if k.Published(TopicUserEntered) != 1 {
		t.Fatalf("Published = %d", k.Published(TopicUserEntered))
	}
}

func TestPrefixDoesNotMatchBareName(t *testing.T) {
	k := NewKernel()
	hits := 0
	k.Subscribe("user.*", func(Event) { hits++ })
	k.Publish(ev("user", nil)) // no dot segment; must not match
	k.Publish(ev("userx.entered", nil))
	if hits != 0 {
		t.Fatalf("prefix pattern over-matched: %d", hits)
	}
}

func TestUnsubscribeStopsDelivery(t *testing.T) {
	k := NewKernel()
	hits := 0
	id := k.Subscribe("*", func(Event) { hits++ })
	k.Publish(ev("a", nil))
	k.Unsubscribe(id)
	k.Publish(ev("a", nil))
	if hits != 1 {
		t.Fatalf("hits = %d, want 1", hits)
	}
	if k.SubscriberCount() != 0 {
		t.Fatalf("SubscriberCount = %d", k.SubscriberCount())
	}
	k.Unsubscribe(999) // unknown id is a no-op
}

func TestConcurrentPublishSubscribe(t *testing.T) {
	k := NewKernel()
	var mu sync.Mutex
	seen := 0
	k.Subscribe("*", func(Event) {
		mu.Lock()
		seen++
		mu.Unlock()
	})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				k.Publish(ev("t", nil))
			}
		}()
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if seen != 800 {
		t.Fatalf("seen = %d, want 800", seen)
	}
}

func TestEventSubject(t *testing.T) {
	tests := []struct {
		e    Event
		want string
	}{
		{ev(TopicUserLocation, map[string]string{AttrUser: "alice"}), "alice"},
		{ev(TopicNetworkRTT, map[string]string{AttrFrom: "a", AttrTo: "b"}), "a>b"},
		{ev("custom.topic", map[string]string{AttrKey: "k1"}), "k1"},
	}
	for _, tc := range tests {
		if got := tc.e.Subject(); got != tc.want {
			t.Fatalf("Subject(%s) = %q, want %q", tc.e.Topic, got, tc.want)
		}
	}
}

func TestClassifierClassOf(t *testing.T) {
	c := NewClassifier()
	tests := []struct {
		topic string
		want  TemporalClass
	}{
		{TopicPreference, ClassStatic},
		{TopicUserLocation, ClassDynamic}, // "user." prefix
		{TopicNetworkRTT, ClassDynamic},
		{TopicDevice, ClassStable},
		{TopicAppState, ClassStable},
		{"totally.unknown", ClassDynamic}, // default
	}
	for _, tc := range tests {
		if got := c.ClassOf(tc.topic); got != tc.want {
			t.Fatalf("ClassOf(%s) = %v, want %v", tc.topic, got, tc.want)
		}
	}
}

func TestClassifierExactBeatsPrefix(t *testing.T) {
	// user.preference is static even though user.* is dynamic: the exact
	// entry must win over the shorter prefix.
	c := NewClassifier()
	if got := c.ClassOf(TopicPreference); got != ClassStatic {
		t.Fatalf("ClassOf(user.preference) = %v, want static", got)
	}
	// A custom override applies.
	c2 := NewClassifier(WithTopicClass("user.gait", ClassStable))
	if got := c2.ClassOf("user.gait"); got != ClassStable {
		t.Fatalf("override ClassOf = %v", got)
	}
}

func TestClassifierStoreAndLatest(t *testing.T) {
	c := NewClassifier()
	e1 := ev(TopicUserLocation, map[string]string{AttrUser: "alice", AttrRoom: "office821"})
	e2 := ev(TopicUserLocation, map[string]string{AttrUser: "alice", AttrRoom: "office822"})
	if class := c.Store(e1); class != ClassDynamic {
		t.Fatalf("Store class = %v", class)
	}
	c.Store(e2)
	got, ok := c.Latest(TopicUserLocation, "alice")
	if !ok || got.Attr(AttrRoom) != "office822" {
		t.Fatalf("Latest = %+v, %v", got, ok)
	}
	if _, ok := c.Latest(TopicUserLocation, "bob"); ok {
		t.Fatal("Latest for unknown subject reported ok")
	}
	if c.Size(ClassDynamic) != 1 {
		t.Fatalf("dynamic size = %d, want 1 (same subject)", c.Size(ClassDynamic))
	}
}

func TestClassifierHistoryDynamicOnly(t *testing.T) {
	c := NewClassifier(WithHistoryCap(3))
	for _, room := range []string{"r1", "r2", "r3", "r4", "r5"} {
		c.Store(ev(TopicUserLocation, map[string]string{AttrUser: "alice", AttrRoom: room}))
	}
	h := c.History(TopicUserLocation, "alice", 0)
	if len(h) != 3 {
		t.Fatalf("history len = %d, want cap 3", len(h))
	}
	if h[0].Attr(AttrRoom) != "r3" || h[2].Attr(AttrRoom) != "r5" {
		t.Fatalf("history order wrong: %v %v", h[0].Attrs, h[2].Attrs)
	}
	// n limits the slice further.
	h2 := c.History(TopicUserLocation, "alice", 1)
	if len(h2) != 1 || h2[0].Attr(AttrRoom) != "r5" {
		t.Fatalf("History(n=1) = %v", h2)
	}
	// Static topics keep only the latest.
	c.Store(ev(TopicPreference, map[string]string{AttrUser: "alice", AttrKey: "hand", AttrValue: "left"}))
	if hs := c.History(TopicPreference, "alice", 0); len(hs) != 1 {
		t.Fatalf("static history = %d entries, want 1", len(hs))
	}
	if hs := c.History("no.such", "x", 0); hs != nil {
		t.Fatalf("unknown history = %v", hs)
	}
}

func TestClassifierAttachTo(t *testing.T) {
	k := NewKernel()
	c := NewClassifier()
	c.AttachTo(k)
	k.Publish(ev(TopicUserLocation, map[string]string{AttrUser: "alice", AttrRoom: "r1"}))
	if _, ok := c.Latest(TopicUserLocation, "alice"); !ok {
		t.Fatal("attached classifier did not store published event")
	}
}

func TestTemporalClassString(t *testing.T) {
	for c, want := range map[TemporalClass]string{
		ClassStatic: "static", ClassStable: "stable", ClassDynamic: "dynamic", TemporalClass(0): "invalid",
	} {
		if got := c.String(); got != want {
			t.Fatalf("String(%d) = %q, want %q", c, got, want)
		}
	}
}

func TestMonitorWatchFiresOnCondition(t *testing.T) {
	k := NewKernel()
	m := NewMonitor(k)
	var fired []string
	m.Watch("alice-leaves", TopicUserLeft, AttrEquals(AttrUser, "alice"), func(e Event) {
		fired = append(fired, e.Attr(AttrRoom))
	})
	k.Publish(ev(TopicUserLeft, map[string]string{AttrUser: "bob", AttrRoom: "r9"}))
	k.Publish(ev(TopicUserLeft, map[string]string{AttrUser: "alice", AttrRoom: "office821"}))
	if len(fired) != 1 || fired[0] != "office821" {
		t.Fatalf("fired = %v", fired)
	}
	if m.Fires("alice-leaves") != 1 {
		t.Fatalf("Fires = %d", m.Fires("alice-leaves"))
	}
}

func TestMonitorReplaceAndUnwatch(t *testing.T) {
	k := NewKernel()
	m := NewMonitor(k)
	a, b := 0, 0
	m.Watch("w", "*", nil, func(Event) { a++ })
	m.Watch("w", "*", nil, func(Event) { b++ }) // replaces
	k.Publish(ev("x", nil))
	if a != 0 || b != 1 {
		t.Fatalf("replace failed: a=%d b=%d", a, b)
	}
	m.Unwatch("w")
	k.Publish(ev("x", nil))
	if b != 1 {
		t.Fatalf("unwatch failed: b=%d", b)
	}
	m.Unwatch("never-existed")
}

func TestConditionCombinators(t *testing.T) {
	c := And(AttrEquals("a", "1"), AttrEquals("b", "2"))
	if !c(ev("t", map[string]string{"a": "1", "b": "2"})) {
		t.Fatal("And rejected satisfying event")
	}
	if c(ev("t", map[string]string{"a": "1", "b": "X"})) {
		t.Fatal("And accepted failing event")
	}
}

func TestPredictorLearnsAndPredicts(t *testing.T) {
	p := NewPredictor()
	for i := 0; i < 3; i++ {
		p.Observe("alice", "office821", "corridor")
	}
	p.Observe("alice", "office821", "office822")
	room, prob, ok := p.Predict("alice", "office821")
	if !ok || room != "corridor" {
		t.Fatalf("Predict = %q, %v, %v", room, prob, ok)
	}
	if prob < 0.74 || prob > 0.76 {
		t.Fatalf("prob = %v, want 0.75", prob)
	}
	if _, _, ok := p.Predict("alice", "atlantis"); ok {
		t.Fatal("prediction from unknown room reported ok")
	}
	if _, _, ok := p.Predict("bob", "office821"); ok {
		t.Fatal("prediction for unknown user reported ok")
	}
}

func TestPredictorPredictNextAndSelfMovesIgnored(t *testing.T) {
	p := NewPredictor()
	p.Observe("alice", "a", "a") // ignored
	if _, _, ok := p.PredictNext("alice"); ok {
		t.Fatal("self-move trained the predictor")
	}
	p.Observe("alice", "a", "b")
	p.Observe("alice", "b", "c")
	room, _, ok := p.PredictNext("alice") // last room is c; no transitions from c
	if ok {
		t.Fatalf("PredictNext from terminal room = %q, want no prediction", room)
	}
	p.Observe("alice", "c", "a")
	p.Observe("alice", "a", "b") // back at b; b->c known
	room, _, ok = p.PredictNext("alice")
	if !ok || room != "c" {
		t.Fatalf("PredictNext = %q, %v", room, ok)
	}
}

func TestPredictorAttachTo(t *testing.T) {
	k := NewKernel()
	p := NewPredictor()
	p.AttachTo(k)
	k.Publish(ev(TopicUserEntered, map[string]string{AttrUser: "alice", AttrFrom: "a", AttrRoom: "b"}))
	k.Publish(ev(TopicUserEntered, map[string]string{AttrUser: "alice", AttrFrom: "a", AttrRoom: "b"}))
	room, _, ok := p.Predict("alice", "a")
	if !ok || room != "b" {
		t.Fatalf("attached predictor = %q, %v", room, ok)
	}
}

func TestPredictorDeterministicTieBreak(t *testing.T) {
	p := NewPredictor()
	p.Observe("u", "x", "zeta")
	p.Observe("u", "x", "alpha")
	room, prob, ok := p.Predict("u", "x")
	if !ok || room != "alpha" || prob != 0.5 {
		t.Fatalf("tie-break = %q %v %v, want alpha 0.5", room, prob, ok)
	}
}
