package rdf

import (
	"fmt"
	"strings"
)

// Well-known namespace bases. IMCL is the paper's own namespace (the
// Internet and Mobile Computing Lab prefix used throughout Fig. 5/6).
const (
	RDFNS  = "http://www.w3.org/1999/02/22-rdf-syntax-ns#"
	RDFSNS = "http://www.w3.org/2000/01/rdf-schema#"
	OWLNS  = "http://www.w3.org/2002/07/owl#"
	XSDNS  = "http://www.w3.org/2001/XMLSchema#"
	IMCLNS = "http://imcl.comp.polyu.edu.hk/mdagent#"
)

// Common datatype IRIs.
const (
	XSDString  = XSDNS + "string"
	XSDInteger = XSDNS + "integer"
	XSDDouble  = XSDNS + "double"
	XSDBoolean = XSDNS + "boolean"
)

// Frequently used vocabulary terms.
var (
	RDFType            = IRI(RDFNS + "type")
	RDFSSubClassOf     = IRI(RDFSNS + "subClassOf")
	RDFSSubPropertyOf  = IRI(RDFSNS + "subPropertyOf")
	RDFSComment        = IRI(RDFSNS + "comment")
	RDFSLabel          = IRI(RDFSNS + "label")
	RDFSDomain         = IRI(RDFSNS + "domain")
	RDFSRange          = IRI(RDFSNS + "range")
	OWLClass           = IRI(OWLNS + "Class")
	OWLObjectProperty  = IRI(OWLNS + "ObjectProperty")
	OWLDatatypeProp    = IRI(OWLNS + "DatatypeProperty")
	OWLTransitiveProp  = IRI(OWLNS + "TransitiveProperty")
	OWLSymmetricProp   = IRI(OWLNS + "SymmetricProperty")
	OWLFunctionalProp  = IRI(OWLNS + "FunctionalProperty")
	OWLInverseOf       = IRI(OWLNS + "inverseOf")
	OWLEquivalentClass = IRI(OWLNS + "equivalentClass")
	OWLSameAs          = IRI(OWLNS + "sameAs")
	OWLThing           = IRI(OWLNS + "Thing")
)

// Namespaces maps prefixes (without the colon) to base IRIs and supports
// expanding "prefix:local" qualified names.
type Namespaces struct {
	byPrefix map[string]string
}

// NewNamespaces returns a table preloaded with the standard prefixes
// (rdf, rdfs, owl, xsd) and the paper's imcl prefix.
func NewNamespaces() *Namespaces {
	ns := &Namespaces{byPrefix: make(map[string]string, 8)}
	ns.Bind("rdf", RDFNS)
	ns.Bind("rdfs", RDFSNS)
	ns.Bind("owl", OWLNS)
	ns.Bind("xsd", XSDNS)
	ns.Bind("imcl", IMCLNS)
	return ns
}

// Bind associates prefix with base, replacing any previous binding.
func (n *Namespaces) Bind(prefix, base string) {
	n.byPrefix[prefix] = base
}

// Base returns the base IRI bound to prefix.
func (n *Namespaces) Base(prefix string) (string, bool) {
	b, ok := n.byPrefix[prefix]
	return b, ok
}

// Expand resolves a qualified name like "imcl:locatedIn" to a full IRI term.
// Already-expanded IRIs (containing "://") pass through unchanged.
func (n *Namespaces) Expand(qname string) (Term, error) {
	if strings.Contains(qname, "://") {
		return IRI(qname), nil
	}
	i := strings.IndexByte(qname, ':')
	if i < 0 {
		return Term{}, fmt.Errorf("rdf: %q is not a qualified name", qname)
	}
	prefix, local := qname[:i], qname[i+1:]
	base, ok := n.byPrefix[prefix]
	if !ok {
		return Term{}, fmt.Errorf("rdf: unknown namespace prefix %q", prefix)
	}
	return IRI(base + local), nil
}

// MustExpand is Expand for statically known names; it panics on error and
// is intended for package-level vocabulary construction only.
func (n *Namespaces) MustExpand(qname string) Term {
	t, err := n.Expand(qname)
	if err != nil {
		panic(err)
	}
	return t
}

// Compact renders an IRI term as prefix:local when a binding matches,
// preferring the longest base. Non-IRI terms render with Term.String.
func (n *Namespaces) Compact(t Term) string {
	if t.Kind != KindIRI {
		return t.String()
	}
	bestPrefix, bestBase := "", ""
	for p, b := range n.byPrefix {
		if strings.HasPrefix(t.Value, b) && len(b) > len(bestBase) {
			bestPrefix, bestBase = p, b
		}
	}
	if bestBase == "" {
		return t.String()
	}
	return bestPrefix + ":" + t.Value[len(bestBase):]
}

// IMCL expands a local name in the paper's namespace, e.g. IMCL("locatedIn").
func IMCL(local string) Term { return IRI(IMCLNS + local) }
