// Package rdf implements the triple-store substrate underlying MDAgent's
// resource descriptions and reasoning (paper §4.4). The paper models
// resources and their inter-relations in OWL (an RDF vocabulary) and runs
// Jena rules over them; this package provides the RDF data model — terms,
// triples, an indexed graph with pattern matching, conjunctive queries,
// namespaces and a Turtle-lite reader/writer — on which internal/owl and
// internal/rules are built.
package rdf

import (
	"fmt"
	"strconv"
	"strings"
)

// TermKind discriminates the kinds of RDF terms. Variables extend plain RDF
// for use in patterns and rules.
type TermKind int

// Term kinds. Enums start at one so the zero Term is recognizably invalid.
const (
	KindIRI TermKind = iota + 1
	KindLiteral
	KindBlank
	KindVariable
)

func (k TermKind) String() string {
	switch k {
	case KindIRI:
		return "iri"
	case KindLiteral:
		return "literal"
	case KindBlank:
		return "blank"
	case KindVariable:
		return "variable"
	default:
		return "invalid"
	}
}

// Term is an RDF term: IRI, literal, blank node, or (in patterns) variable.
// Terms are small immutable values; compare with Equal or ==.
type Term struct {
	Kind     TermKind
	Value    string // IRI text, literal lexical form, blank label, or variable name
	Datatype string // literal datatype IRI ("" means plain string)
}

// Zero reports whether t is the invalid zero Term.
func (t Term) Zero() bool { return t.Kind == 0 }

// IsVar reports whether t is a pattern variable.
func (t Term) IsVar() bool { return t.Kind == KindVariable }

// Equal reports structural equality of two terms.
func (t Term) Equal(o Term) bool { return t == o }

// IRI returns an IRI term.
func IRI(iri string) Term { return Term{Kind: KindIRI, Value: iri} }

// Lit returns a plain string literal.
func Lit(s string) Term { return Term{Kind: KindLiteral, Value: s, Datatype: XSDString} }

// TypedLit returns a literal with an explicit datatype IRI.
func TypedLit(lexical, datatype string) Term {
	return Term{Kind: KindLiteral, Value: lexical, Datatype: datatype}
}

// Integer returns an xsd:integer literal.
func Integer(i int64) Term { return TypedLit(strconv.FormatInt(i, 10), XSDInteger) }

// Float returns an xsd:double literal.
func Float(f float64) Term {
	return TypedLit(strconv.FormatFloat(f, 'g', -1, 64), XSDDouble)
}

// Bool returns an xsd:boolean literal.
func Bool(b bool) Term { return TypedLit(strconv.FormatBool(b), XSDBoolean) }

// Blank returns a blank-node term with the given label.
func Blank(label string) Term { return Term{Kind: KindBlank, Value: label} }

// Var returns a pattern variable, e.g. Var("p") matches any term and binds ?p.
func Var(name string) Term { return Term{Kind: KindVariable, Value: name} }

// AsInt parses the literal as an integer.
func (t Term) AsInt() (int64, bool) {
	if t.Kind != KindLiteral {
		return 0, false
	}
	i, err := strconv.ParseInt(t.Value, 10, 64)
	return i, err == nil
}

// AsFloat parses the literal as a float. Integer literals qualify.
func (t Term) AsFloat() (float64, bool) {
	if t.Kind != KindLiteral {
		return 0, false
	}
	f, err := strconv.ParseFloat(t.Value, 64)
	return f, err == nil
}

// AsBool parses the literal as a boolean.
func (t Term) AsBool() (bool, bool) {
	if t.Kind != KindLiteral {
		return false, false
	}
	b, err := strconv.ParseBool(t.Value)
	return b, err == nil
}

// String renders the term in N-Triples-like syntax.
func (t Term) String() string {
	switch t.Kind {
	case KindIRI:
		return "<" + t.Value + ">"
	case KindLiteral:
		if t.Datatype == "" || t.Datatype == XSDString {
			return strconv.Quote(t.Value)
		}
		return strconv.Quote(t.Value) + "^^<" + t.Datatype + ">"
	case KindBlank:
		return "_:" + t.Value
	case KindVariable:
		return "?" + t.Value
	default:
		return "<invalid>"
	}
}

// Triple is an RDF statement. In patterns any position may be a variable.
type Triple struct {
	S, P, O Term
}

// T builds a triple.
func T(s, p, o Term) Triple { return Triple{S: s, P: p, O: o} }

// String renders the triple in N-Triples-like syntax.
func (tr Triple) String() string {
	return fmt.Sprintf("%s %s %s .", tr.S, tr.P, tr.O)
}

// IsGround reports whether the triple contains no variables.
func (tr Triple) IsGround() bool {
	return !tr.S.IsVar() && !tr.P.IsVar() && !tr.O.IsVar()
}

// Vars returns the distinct variable names in the triple, in S,P,O order.
func (tr Triple) Vars() []string {
	var vs []string
	seen := make(map[string]bool, 3)
	for _, t := range []Term{tr.S, tr.P, tr.O} {
		if t.IsVar() && !seen[t.Value] {
			seen[t.Value] = true
			vs = append(vs, t.Value)
		}
	}
	return vs
}

// Binding maps variable names to ground terms.
type Binding map[string]Term

// Clone returns a copy of b.
func (b Binding) Clone() Binding {
	c := make(Binding, len(b)+1)
	for k, v := range b {
		c[k] = v
	}
	return c
}

// Resolve substitutes bound variables in t; unbound variables pass through.
func (b Binding) Resolve(t Term) Term {
	if t.IsVar() {
		if g, ok := b[t.Value]; ok {
			return g
		}
	}
	return t
}

// ResolveTriple substitutes bound variables in all three positions.
func (b Binding) ResolveTriple(tr Triple) Triple {
	return Triple{S: b.Resolve(tr.S), P: b.Resolve(tr.P), O: b.Resolve(tr.O)}
}

// String renders the binding deterministically for debugging.
func (b Binding) String() string {
	if len(b) == 0 {
		return "{}"
	}
	parts := make([]string, 0, len(b))
	for k, v := range b {
		parts = append(parts, "?"+k+"="+v.String())
	}
	sortStrings(parts)
	return "{" + strings.Join(parts, ", ") + "}"
}

// sortStrings is a tiny insertion sort to avoid importing sort for one call
// site on small slices.
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
