package rdf

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func tr(s, p, o string) Triple {
	return T(IMCL(s), IMCL(p), IMCL(o))
}

func TestAddHasRemove(t *testing.T) {
	g := NewGraph()
	x := tr("printer1", "locatedIn", "office821")
	if !g.Add(x) {
		t.Fatal("first Add reported not-new")
	}
	if g.Add(x) {
		t.Fatal("duplicate Add reported new")
	}
	if !g.Has(x) {
		t.Fatal("Has = false after Add")
	}
	if g.Len() != 1 {
		t.Fatalf("Len = %d, want 1", g.Len())
	}
	if !g.Remove(x) {
		t.Fatal("Remove reported absent")
	}
	if g.Remove(x) {
		t.Fatal("second Remove reported present")
	}
	if g.Has(x) || g.Len() != 0 {
		t.Fatal("triple still visible after Remove")
	}
}

func TestAddNonGroundPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add with variable did not panic")
		}
	}()
	NewGraph().Add(T(Var("x"), RDFType, OWLThing))
}

func TestMatchByEachIndex(t *testing.T) {
	g := NewGraph()
	g.Add(tr("a", "p", "b"))
	g.Add(tr("a", "p", "c"))
	g.Add(tr("a", "q", "b"))
	g.Add(tr("d", "p", "b"))

	tests := []struct {
		name    string
		pattern Triple
		want    int
	}{
		{"bySubject", Triple{S: IMCL("a")}, 3},
		{"bySubjectPredicate", Triple{S: IMCL("a"), P: IMCL("p")}, 2},
		{"byPredicate", Triple{P: IMCL("p")}, 3},
		{"byObject", Triple{O: IMCL("b")}, 3},
		{"byPredicateObject", Triple{P: IMCL("p"), O: IMCL("b")}, 2},
		{"exact", tr("a", "p", "b"), 1},
		{"scanAll", Triple{}, 4},
		{"missNoSubject", Triple{S: IMCL("zz")}, 0},
		{"missWrongPair", Triple{S: IMCL("d"), P: IMCL("q")}, 0},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := len(g.Match(tc.pattern)); got != tc.want {
				t.Fatalf("Match(%v) returned %d triples, want %d", tc.pattern, got, tc.want)
			}
		})
	}
}

func TestMatchVariablesActAsWildcards(t *testing.T) {
	g := NewGraph()
	g.Add(tr("a", "p", "b"))
	got := g.Match(T(Var("s"), IMCL("p"), Var("o")))
	if len(got) != 1 || got[0] != tr("a", "p", "b") {
		t.Fatalf("Match with vars = %v", got)
	}
}

func TestMatchBindingsRepeatedVariable(t *testing.T) {
	g := NewGraph()
	g.Add(tr("a", "knows", "a"))
	g.Add(tr("a", "knows", "b"))
	bs := g.MatchBindings(T(Var("x"), IMCL("knows"), Var("x")), Binding{})
	if len(bs) != 1 {
		t.Fatalf("repeated var matched %d, want 1 (only the reflexive triple)", len(bs))
	}
	if bs[0]["x"] != IMCL("a") {
		t.Fatalf("bound x = %v", bs[0]["x"])
	}
}

func TestSolveConjunction(t *testing.T) {
	g := NewGraph()
	g.Add(tr("printer1", "type", "Printer"))
	g.Add(tr("printer2", "type", "Printer"))
	g.Add(tr("printer1", "locatedIn", "office821"))
	g.Add(tr("printer2", "locatedIn", "office822"))

	bs := g.Solve([]Triple{
		T(Var("p"), IMCL("type"), IMCL("Printer")),
		T(Var("p"), IMCL("locatedIn"), Var("room")),
	})
	if len(bs) != 2 {
		t.Fatalf("Solve returned %d bindings, want 2", len(bs))
	}
	rooms := map[Term]Term{}
	for _, b := range bs {
		rooms[b["p"]] = b["room"]
	}
	if rooms[IMCL("printer1")] != IMCL("office821") || rooms[IMCL("printer2")] != IMCL("office822") {
		t.Fatalf("wrong rooms: %v", rooms)
	}
}

func TestSolveEmptyOnNoMatch(t *testing.T) {
	g := NewGraph()
	g.Add(tr("a", "p", "b"))
	bs := g.Solve([]Triple{
		T(Var("x"), IMCL("p"), Var("y")),
		T(Var("y"), IMCL("p"), Var("z")), // no chain exists
	})
	if bs != nil {
		t.Fatalf("Solve = %v, want nil", bs)
	}
}

func TestSubjectsObjectsHelpers(t *testing.T) {
	g := NewGraph()
	g.Add(tr("p1", "type", "Printer"))
	g.Add(tr("p2", "type", "Printer"))
	g.Add(tr("p1", "locatedIn", "r1"))
	subs := g.Subjects(IMCL("type"), IMCL("Printer"))
	if len(subs) != 2 {
		t.Fatalf("Subjects = %v", subs)
	}
	objs := g.Objects(IMCL("p1"), IMCL("locatedIn"))
	if len(objs) != 1 || objs[0] != IMCL("r1") {
		t.Fatalf("Objects = %v", objs)
	}
	if o, ok := g.FirstObject(IMCL("p1"), IMCL("type")); !ok || o != IMCL("Printer") {
		t.Fatalf("FirstObject = %v, %v", o, ok)
	}
	if _, ok := g.FirstObject(IMCL("p1"), IMCL("missing")); ok {
		t.Fatal("FirstObject on absent predicate returned ok")
	}
}

func TestCloneIsIndependent(t *testing.T) {
	g := NewGraph()
	g.Add(tr("a", "p", "b"))
	c := g.Clone()
	c.Add(tr("c", "p", "d"))
	if g.Len() != 1 || c.Len() != 2 {
		t.Fatalf("Len g=%d c=%d, want 1 and 2", g.Len(), c.Len())
	}
}

func TestMergeCountsNew(t *testing.T) {
	g := NewGraph()
	g.Add(tr("a", "p", "b"))
	h := NewGraph()
	h.Add(tr("a", "p", "b"))
	h.Add(tr("x", "p", "y"))
	if added := g.Merge(h); added != 1 {
		t.Fatalf("Merge added %d, want 1", added)
	}
	if g.Len() != 2 {
		t.Fatalf("Len after merge = %d", g.Len())
	}
}

func TestTriplesSortedStable(t *testing.T) {
	g := NewGraph()
	g.Add(tr("b", "p", "x"))
	g.Add(tr("a", "p", "x"))
	g.Add(tr("a", "o", "x"))
	ts := g.Triples()
	for i := 1; i < len(ts); i++ {
		if ts[i-1].String() > ts[i].String() {
			t.Fatalf("Triples not sorted: %v before %v", ts[i-1], ts[i])
		}
	}
}

func TestConcurrentAddMatch(t *testing.T) {
	g := NewGraph()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				g.Add(tr(fmt.Sprintf("s%d-%d", w, i), "p", "o"))
				g.Match(Triple{P: IMCL("p")})
			}
		}(w)
	}
	wg.Wait()
	if g.Len() != 8*200 {
		t.Fatalf("Len = %d, want %d", g.Len(), 8*200)
	}
}

// Property: for any sequence of adds and removes, Len equals the size of a
// reference set and Has agrees with reference membership.
func TestGraphMatchesReferenceModel(t *testing.T) {
	f := func(ops []uint16) bool {
		g := NewGraph()
		ref := make(map[Triple]bool)
		rng := rand.New(rand.NewSource(99))
		for _, op := range ops {
			x := tr(fmt.Sprintf("s%d", op%13), fmt.Sprintf("p%d", op%5), fmt.Sprintf("o%d", op%7))
			if rng.Intn(3) == 0 {
				got := g.Remove(x)
				want := ref[x]
				delete(ref, x)
				if got != want {
					return false
				}
			} else {
				got := g.Add(x)
				want := !ref[x]
				ref[x] = true
				if got != want {
					return false
				}
			}
		}
		if g.Len() != len(ref) {
			return false
		}
		for x := range ref {
			if !g.Has(x) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveCleansIndexes(t *testing.T) {
	g := NewGraph()
	x := tr("a", "p", "b")
	g.Add(x)
	g.Remove(x)
	// All index paths must report empty afterwards.
	for _, pattern := range []Triple{
		{S: IMCL("a")}, {P: IMCL("p")}, {O: IMCL("b")},
	} {
		if got := g.Match(pattern); len(got) != 0 {
			t.Fatalf("Match(%v) = %v after full removal", pattern, got)
		}
	}
}
