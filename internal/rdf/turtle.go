package rdf

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// ParseTurtle reads a Turtle-lite document into a new graph, returning the
// graph and the namespace table accumulated from @prefix directives.
//
// Supported syntax (enough for the paper's Fig. 5-style descriptions):
// @prefix directives, comments (#), IRIs in angle brackets, prefixed names,
// the "a" keyword for rdf:type, quoted literals with optional ^^datatype,
// bare integers/doubles/booleans, blank nodes (_:label), and predicate (;)
// and object (,) lists.
func ParseTurtle(src string) (*Graph, *Namespaces, error) {
	g := NewGraph()
	ns := NewNamespaces()
	p := &turtleParser{src: src, ns: ns, g: g, line: 1}
	if err := p.parse(); err != nil {
		return nil, nil, err
	}
	return g, ns, nil
}

type turtleParser struct {
	src  string
	pos  int
	line int
	ns   *Namespaces
	g    *Graph
}

func (p *turtleParser) errf(format string, args ...any) error {
	return fmt.Errorf("turtle: line %d: %s", p.line, fmt.Sprintf(format, args...))
}

func (p *turtleParser) skipWS() {
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		switch {
		case c == '\n':
			p.line++
			p.pos++
		case c == ' ' || c == '\t' || c == '\r':
			p.pos++
		case c == '#':
			for p.pos < len(p.src) && p.src[p.pos] != '\n' {
				p.pos++
			}
		default:
			return
		}
	}
}

func (p *turtleParser) eof() bool {
	p.skipWS()
	return p.pos >= len(p.src)
}

func (p *turtleParser) peek() byte {
	if p.pos < len(p.src) {
		return p.src[p.pos]
	}
	return 0
}

func (p *turtleParser) expect(c byte) error {
	p.skipWS()
	if p.pos >= len(p.src) || p.src[p.pos] != c {
		return p.errf("expected %q, got %q", string(c), string(p.peek()))
	}
	p.pos++
	return nil
}

func (p *turtleParser) parse() error {
	for !p.eof() {
		if strings.HasPrefix(p.src[p.pos:], "@prefix") {
			if err := p.parsePrefix(); err != nil {
				return err
			}
			continue
		}
		if err := p.parseStatement(); err != nil {
			return err
		}
	}
	return nil
}

func (p *turtleParser) parsePrefix() error {
	p.pos += len("@prefix")
	p.skipWS()
	// prefix name up to ':'
	start := p.pos
	for p.pos < len(p.src) && p.src[p.pos] != ':' {
		p.pos++
	}
	if p.pos >= len(p.src) {
		return p.errf("unterminated @prefix")
	}
	prefix := strings.TrimSpace(p.src[start:p.pos])
	p.pos++ // ':'
	p.skipWS()
	if p.peek() != '<' {
		return p.errf("@prefix expects <iri>")
	}
	iri, err := p.parseIRIRef()
	if err != nil {
		return err
	}
	p.ns.Bind(prefix, iri)
	return p.expect('.')
}

func (p *turtleParser) parseStatement() error {
	subj, err := p.parseTerm()
	if err != nil {
		return err
	}
	for {
		pred, err := p.parseTerm()
		if err != nil {
			return err
		}
		for {
			obj, err := p.parseTerm()
			if err != nil {
				return err
			}
			p.g.Add(Triple{S: subj, P: pred, O: obj})
			p.skipWS()
			if p.peek() == ',' {
				p.pos++
				continue
			}
			break
		}
		p.skipWS()
		switch p.peek() {
		case ';':
			p.pos++
			p.skipWS()
			// Turtle allows a trailing ';' before '.'.
			if p.peek() == '.' {
				p.pos++
				return nil
			}
			continue
		case '.':
			p.pos++
			return nil
		default:
			return p.errf("expected ';' or '.', got %q", string(p.peek()))
		}
	}
}

func (p *turtleParser) parseIRIRef() (string, error) {
	if err := p.expect('<'); err != nil {
		return "", err
	}
	start := p.pos
	for p.pos < len(p.src) && p.src[p.pos] != '>' {
		if p.src[p.pos] == '\n' {
			return "", p.errf("newline in IRI")
		}
		p.pos++
	}
	if p.pos >= len(p.src) {
		return "", p.errf("unterminated IRI")
	}
	iri := p.src[start:p.pos]
	p.pos++
	return iri, nil
}

func isNameByte(c byte) bool {
	return c == '_' || c == '-' || c == '.' ||
		(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

func (p *turtleParser) parseTerm() (Term, error) {
	p.skipWS()
	if p.pos >= len(p.src) {
		return Term{}, p.errf("unexpected end of input")
	}
	c := p.src[p.pos]
	switch {
	case c == '<':
		iri, err := p.parseIRIRef()
		if err != nil {
			return Term{}, err
		}
		return IRI(iri), nil
	case c == '"':
		return p.parseLiteral()
	case c == '_' && p.pos+1 < len(p.src) && p.src[p.pos+1] == ':':
		p.pos += 2
		start := p.pos
		for p.pos < len(p.src) && isNameByte(p.src[p.pos]) {
			p.pos++
		}
		return Blank(p.src[start:p.pos]), nil
	case c == '?':
		p.pos++
		start := p.pos
		for p.pos < len(p.src) && isNameByte(p.src[p.pos]) {
			p.pos++
		}
		return Var(p.src[start:p.pos]), nil
	case c == '+' || c == '-' || (c >= '0' && c <= '9'):
		return p.parseNumber()
	default:
		return p.parseNameOrKeyword()
	}
}

func (p *turtleParser) parseLiteral() (Term, error) {
	// Opening quote already peeked.
	p.pos++
	var sb strings.Builder
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == '\\' && p.pos+1 < len(p.src) {
			next := p.src[p.pos+1]
			switch next {
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			case '"':
				sb.WriteByte('"')
			case '\\':
				sb.WriteByte('\\')
			default:
				return Term{}, p.errf("unsupported escape \\%c", next)
			}
			p.pos += 2
			continue
		}
		if c == '"' {
			p.pos++
			// Optional ^^datatype.
			if strings.HasPrefix(p.src[p.pos:], "^^") {
				p.pos += 2
				dt, err := p.parseTerm()
				if err != nil {
					return Term{}, err
				}
				if dt.Kind != KindIRI {
					return Term{}, p.errf("datatype must be an IRI")
				}
				return TypedLit(sb.String(), dt.Value), nil
			}
			return Lit(sb.String()), nil
		}
		if c == '\n' {
			return Term{}, p.errf("newline in literal")
		}
		sb.WriteByte(c)
		p.pos++
	}
	return Term{}, p.errf("unterminated literal")
}

func (p *turtleParser) parseNumber() (Term, error) {
	start := p.pos
	if p.src[p.pos] == '+' || p.src[p.pos] == '-' {
		p.pos++
	}
	isFloat := false
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c >= '0' && c <= '9' {
			p.pos++
			continue
		}
		if c == '.' && p.pos+1 < len(p.src) && p.src[p.pos+1] >= '0' && p.src[p.pos+1] <= '9' {
			isFloat = true
			p.pos++
			continue
		}
		if c == 'e' || c == 'E' {
			isFloat = true
			p.pos++
			if p.pos < len(p.src) && (p.src[p.pos] == '+' || p.src[p.pos] == '-') {
				p.pos++
			}
			continue
		}
		break
	}
	lex := p.src[start:p.pos]
	if isFloat {
		if _, err := strconv.ParseFloat(lex, 64); err != nil {
			return Term{}, p.errf("bad number %q", lex)
		}
		return TypedLit(lex, XSDDouble), nil
	}
	if _, err := strconv.ParseInt(lex, 10, 64); err != nil {
		return Term{}, p.errf("bad integer %q", lex)
	}
	return TypedLit(lex, XSDInteger), nil
}

func (p *turtleParser) parseNameOrKeyword() (Term, error) {
	start := p.pos
	for p.pos < len(p.src) && (isNameByte(p.src[p.pos]) || p.src[p.pos] == ':') {
		p.pos++
	}
	word := p.src[start:p.pos]
	switch word {
	case "":
		return Term{}, p.errf("unexpected character %q", string(p.src[start]))
	case "a":
		return RDFType, nil
	case "true":
		return Bool(true), nil
	case "false":
		return Bool(false), nil
	}
	// Trailing '.' belongs to the statement terminator, not the name,
	// when followed by whitespace/EOF (e.g. "imcl:x ." ).
	for strings.HasSuffix(word, ".") {
		word = word[:len(word)-1]
		p.pos--
	}
	if !strings.Contains(word, ":") {
		return Term{}, p.errf("bare word %q is not a valid term", word)
	}
	return p.ns.Expand(word)
}

// WriteTurtle serializes the graph with the given namespaces to w in a
// stable, sorted order. It returns the first write error encountered.
func WriteTurtle(w io.Writer, g *Graph, ns *Namespaces) error {
	prefixes := make([]string, 0, len(ns.byPrefix))
	for p := range ns.byPrefix {
		prefixes = append(prefixes, p)
	}
	sort.Strings(prefixes)
	for _, p := range prefixes {
		if _, err := fmt.Fprintf(w, "@prefix %s: <%s> .\n", p, ns.byPrefix[p]); err != nil {
			return err
		}
	}
	if _, err := io.WriteString(w, "\n"); err != nil {
		return err
	}
	for _, tr := range g.Triples() {
		line := fmt.Sprintf("%s %s %s .\n", compactOrString(ns, tr.S), compactOrString(ns, tr.P), compactOrString(ns, tr.O))
		if _, err := io.WriteString(w, line); err != nil {
			return err
		}
	}
	return nil
}

func compactOrString(ns *Namespaces, t Term) string {
	if t.Kind == KindIRI {
		c := ns.Compact(t)
		if !strings.HasPrefix(c, "<") {
			return c
		}
	}
	return t.String()
}
