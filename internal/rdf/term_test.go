package rdf

import (
	"testing"
)

func TestTermConstructorsAndKinds(t *testing.T) {
	tests := []struct {
		name string
		term Term
		kind TermKind
		str  string
	}{
		{"iri", IRI("http://x/y"), KindIRI, "<http://x/y>"},
		{"lit", Lit("hello"), KindLiteral, `"hello"`},
		{"typed", TypedLit("1.5", XSDDouble), KindLiteral, `"1.5"^^<` + XSDDouble + ">"},
		{"int", Integer(42), KindLiteral, `"42"^^<` + XSDInteger + ">"},
		{"float", Float(2.5), KindLiteral, `"2.5"^^<` + XSDDouble + ">"},
		{"bool", Bool(true), KindLiteral, `"true"^^<` + XSDBoolean + ">"},
		{"blank", Blank("b0"), KindBlank, "_:b0"},
		{"var", Var("x"), KindVariable, "?x"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if tc.term.Kind != tc.kind {
				t.Fatalf("Kind = %v, want %v", tc.term.Kind, tc.kind)
			}
			if got := tc.term.String(); got != tc.str {
				t.Fatalf("String = %s, want %s", got, tc.str)
			}
		})
	}
}

func TestTermZeroAndKindString(t *testing.T) {
	var z Term
	if !z.Zero() {
		t.Fatal("zero Term not Zero()")
	}
	if z.String() != "<invalid>" {
		t.Fatalf("zero Term String = %q", z.String())
	}
	if IRI("x").Zero() {
		t.Fatal("IRI reported Zero")
	}
	if got := KindIRI.String(); got != "iri" {
		t.Fatalf("KindIRI.String = %q", got)
	}
	if got := TermKind(0).String(); got != "invalid" {
		t.Fatalf("TermKind(0).String = %q", got)
	}
}

func TestLiteralConversions(t *testing.T) {
	if v, ok := Integer(7).AsInt(); !ok || v != 7 {
		t.Fatalf("AsInt = %d, %v", v, ok)
	}
	if v, ok := Integer(7).AsFloat(); !ok || v != 7 {
		t.Fatalf("int AsFloat = %g, %v", v, ok)
	}
	if v, ok := Float(1.25).AsFloat(); !ok || v != 1.25 {
		t.Fatalf("AsFloat = %g, %v", v, ok)
	}
	if v, ok := Bool(true).AsBool(); !ok || !v {
		t.Fatalf("AsBool = %v, %v", v, ok)
	}
	if _, ok := Lit("abc").AsInt(); ok {
		t.Fatal("non-numeric literal parsed as int")
	}
	if _, ok := IRI("x").AsFloat(); ok {
		t.Fatal("IRI parsed as float")
	}
}

func TestTripleHelpers(t *testing.T) {
	ground := T(IMCL("a"), IMCL("p"), Lit("v"))
	if !ground.IsGround() {
		t.Fatal("ground triple reported non-ground")
	}
	if vs := ground.Vars(); len(vs) != 0 {
		t.Fatalf("ground Vars = %v", vs)
	}
	pat := T(Var("x"), IMCL("p"), Var("x"))
	if pat.IsGround() {
		t.Fatal("pattern reported ground")
	}
	if vs := pat.Vars(); len(vs) != 1 || vs[0] != "x" {
		t.Fatalf("Vars = %v, want [x] deduplicated", vs)
	}
	want := `<` + IMCLNS + `a> <` + IMCLNS + `p> "v" .`
	if got := ground.String(); got != want {
		t.Fatalf("Triple.String = %s, want %s", got, want)
	}
}

func TestBindingResolve(t *testing.T) {
	b := Binding{"x": IMCL("a")}
	if got := b.Resolve(Var("x")); got != IMCL("a") {
		t.Fatalf("Resolve bound = %v", got)
	}
	if got := b.Resolve(Var("y")); got != Var("y") {
		t.Fatalf("Resolve unbound = %v, want pass-through", got)
	}
	if got := b.Resolve(Lit("v")); got != Lit("v") {
		t.Fatalf("Resolve ground = %v", got)
	}
	rt := b.ResolveTriple(T(Var("x"), IMCL("p"), Var("y")))
	if rt.S != IMCL("a") || !rt.O.IsVar() {
		t.Fatalf("ResolveTriple = %v", rt)
	}
}

func TestBindingCloneIndependent(t *testing.T) {
	b := Binding{"x": IMCL("a")}
	c := b.Clone()
	c["y"] = IMCL("b")
	if _, leak := b["y"]; leak {
		t.Fatal("Clone shares storage with original")
	}
}

func TestBindingStringDeterministic(t *testing.T) {
	b := Binding{"b": IMCL("y"), "a": IMCL("x")}
	want := "{?a=<" + IMCLNS + "x>, ?b=<" + IMCLNS + "y>}"
	for i := 0; i < 10; i++ {
		if got := b.String(); got != want {
			t.Fatalf("Binding.String = %s, want %s", got, want)
		}
	}
	if got := (Binding{}).String(); got != "{}" {
		t.Fatalf("empty Binding.String = %s", got)
	}
}

func TestNamespacesExpandCompact(t *testing.T) {
	ns := NewNamespaces()
	term, err := ns.Expand("imcl:locatedIn")
	if err != nil {
		t.Fatal(err)
	}
	if term != IMCL("locatedIn") {
		t.Fatalf("Expand = %v", term)
	}
	if got := ns.Compact(term); got != "imcl:locatedIn" {
		t.Fatalf("Compact = %q", got)
	}
	// Full IRIs pass through.
	full, err := ns.Expand("http://example.org/x")
	if err != nil || full.Value != "http://example.org/x" {
		t.Fatalf("full IRI Expand = %v, %v", full, err)
	}
	// Errors.
	if _, err := ns.Expand("noColonHere"); err == nil {
		t.Fatal("Expand accepted name without colon")
	}
	if _, err := ns.Expand("nope:x"); err == nil {
		t.Fatal("Expand accepted unknown prefix")
	}
	// Compact falls back for unknown bases and non-IRI terms.
	if got := ns.Compact(IRI("urn:other")); got != "<urn:other>" {
		t.Fatalf("Compact unknown = %q", got)
	}
	if got := ns.Compact(Lit("x")); got != `"x"` {
		t.Fatalf("Compact literal = %q", got)
	}
}

func TestNamespacesBindOverride(t *testing.T) {
	ns := NewNamespaces()
	ns.Bind("ex", "http://example.org/")
	got, err := ns.Expand("ex:thing")
	if err != nil || got.Value != "http://example.org/thing" {
		t.Fatalf("Expand ex: = %v, %v", got, err)
	}
	if b, ok := ns.Base("ex"); !ok || b != "http://example.org/" {
		t.Fatalf("Base = %q, %v", b, ok)
	}
	ns.Bind("ex", "http://other.org/")
	got, _ = ns.Expand("ex:thing")
	if got.Value != "http://other.org/thing" {
		t.Fatalf("rebind not effective: %v", got)
	}
}

func TestMustExpandPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustExpand did not panic")
		}
	}()
	NewNamespaces().MustExpand("bogus:x")
}
