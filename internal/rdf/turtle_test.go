package rdf

import (
	"strings"
	"testing"
)

// paperFixture mirrors the paper's Fig. 5 printer description.
const paperFixture = `
@prefix imcl: <http://imcl.comp.polyu.edu.hk/mdagent#> .
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .

# hp color printer in office 821 (paper Fig. 5)
imcl:hpLaserJet a imcl:Printer ;
    rdfs:comment "hp color printer" ;
    imcl:substitutable true ;
    imcl:transferable false ;
    imcl:locatedIn imcl:Office821 .

imcl:net1 imcl:responseTime "800"^^<http://www.w3.org/2001/XMLSchema#double> .
`

func TestParsePaperFixture(t *testing.T) {
	g, ns, err := ParseTurtle(paperFixture)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 6 {
		t.Fatalf("Len = %d, want 6; triples:\n%v", g.Len(), g.Triples())
	}
	if !g.Has(T(IMCL("hpLaserJet"), RDFType, IMCL("Printer"))) {
		t.Fatal("missing rdf:type from 'a' keyword")
	}
	if !g.Has(T(IMCL("hpLaserJet"), IMCL("substitutable"), Bool(true))) {
		t.Fatal("missing boolean literal triple")
	}
	if !g.Has(T(IMCL("hpLaserJet"), IRI(RDFSNS+"comment"), Lit("hp color printer"))) {
		t.Fatal("missing comment literal")
	}
	rt, ok := g.FirstObject(IMCL("net1"), IMCL("responseTime"))
	if !ok {
		t.Fatal("missing responseTime")
	}
	if f, ok := rt.AsFloat(); !ok || f != 800 {
		t.Fatalf("responseTime = %v", rt)
	}
	if _, ok := ns.Base("imcl"); !ok {
		t.Fatal("imcl prefix not registered")
	}
}

func TestParseObjectLists(t *testing.T) {
	g, _, err := ParseTurtle(`imcl:a imcl:p imcl:b, imcl:c, imcl:d .`)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 3 {
		t.Fatalf("Len = %d, want 3", g.Len())
	}
}

func TestParseNumbersAndNegatives(t *testing.T) {
	g, _, err := ParseTurtle(`imcl:x imcl:count 42 ; imcl:delta -3 ; imcl:score 2.5 ; imcl:exp 1e3 .`)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Has(T(IMCL("x"), IMCL("count"), Integer(42))) {
		t.Fatal("integer literal wrong")
	}
	if !g.Has(T(IMCL("x"), IMCL("delta"), Integer(-3))) {
		t.Fatal("negative integer wrong")
	}
	if !g.Has(T(IMCL("x"), IMCL("score"), TypedLit("2.5", XSDDouble))) {
		t.Fatal("double literal wrong")
	}
	if !g.Has(T(IMCL("x"), IMCL("exp"), TypedLit("1e3", XSDDouble))) {
		t.Fatal("exponent literal wrong")
	}
}

func TestParseEscapesInLiterals(t *testing.T) {
	g, _, err := ParseTurtle(`imcl:x rdfs:comment "line1\nline2\t\"quoted\"\\" .`)
	if err != nil {
		t.Fatal(err)
	}
	want := "line1\nline2\t\"quoted\"\\"
	if _, ok := g.FirstObject(IMCL("x"), IRI(RDFSNS+"comment")); !ok {
		t.Fatal("comment missing")
	}
	o, _ := g.FirstObject(IMCL("x"), IRI(RDFSNS+"comment"))
	if o.Value != want {
		t.Fatalf("escaped literal = %q, want %q", o.Value, want)
	}
}

func TestParseBlankNodesAndIRIs(t *testing.T) {
	g, _, err := ParseTurtle(`_:b0 imcl:p <http://example.org/thing> .`)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Has(T(Blank("b0"), IMCL("p"), IRI("http://example.org/thing"))) {
		t.Fatalf("blank/IRI triple missing: %v", g.Triples())
	}
}

func TestParseTrailingSemicolon(t *testing.T) {
	g, _, err := ParseTurtle(`imcl:a imcl:p imcl:b ; .`)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 1 {
		t.Fatalf("Len = %d, want 1", g.Len())
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"unterminatedIRI", `imcl:a imcl:p <http://x`},
		{"unterminatedLiteral", `imcl:a imcl:p "abc`},
		{"newlineInLiteral", "imcl:a imcl:p \"ab\nc\" ."},
		{"badEscape", `imcl:a imcl:p "a\qb" .`},
		{"unknownPrefix", `zzz:a imcl:p imcl:b .`},
		{"bareWord", `hello imcl:p imcl:b .`},
		{"missingDot", `imcl:a imcl:p imcl:b`},
		{"badPrefixDirective", `@prefix foo <http://x> .`},
		{"datatypeNotIRI", `imcl:a imcl:p "1"^^"notiri" .`},
		{"eofMidTriple", `imcl:a imcl:p `},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, _, err := ParseTurtle(tc.src); err == nil {
				t.Fatalf("ParseTurtle(%q) succeeded, want error", tc.src)
			}
		})
	}
}

func TestParseErrorsIncludeLineNumber(t *testing.T) {
	_, _, err := ParseTurtle("imcl:a imcl:p imcl:b .\nimcl:c imcl:p \"bad\n")
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("err = %v, want line 2 mention", err)
	}
}

func TestWriteTurtleRoundTrip(t *testing.T) {
	g1, ns, err := ParseTurtle(paperFixture)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteTurtle(&sb, g1, ns); err != nil {
		t.Fatal(err)
	}
	g2, _, err := ParseTurtle(sb.String())
	if err != nil {
		t.Fatalf("reparse failed: %v\ndoc:\n%s", err, sb.String())
	}
	if g1.Len() != g2.Len() {
		t.Fatalf("round trip lost triples: %d -> %d", g1.Len(), g2.Len())
	}
	for _, tr := range g1.Triples() {
		if !g2.Has(tr) {
			t.Fatalf("round trip lost %v", tr)
		}
	}
}

func TestWriteTurtleStableOrder(t *testing.T) {
	g := NewGraph()
	g.Add(T(IMCL("b"), IMCL("p"), IMCL("x")))
	g.Add(T(IMCL("a"), IMCL("p"), IMCL("x")))
	ns := NewNamespaces()
	var out1, out2 strings.Builder
	if err := WriteTurtle(&out1, g, ns); err != nil {
		t.Fatal(err)
	}
	if err := WriteTurtle(&out2, g, ns); err != nil {
		t.Fatal(err)
	}
	if out1.String() != out2.String() {
		t.Fatal("WriteTurtle output not deterministic")
	}
	if !strings.Contains(out1.String(), "imcl:a imcl:p imcl:x .") {
		t.Fatalf("expected compacted triples, got:\n%s", out1.String())
	}
}

func TestParseVariableTermsForRulePatterns(t *testing.T) {
	// The rule engine reuses the term parser; ?vars must parse.
	g, _, err := ParseTurtle(`imcl:a imcl:p "x" .`)
	if err != nil {
		t.Fatal(err)
	}
	_ = g
	p := &turtleParser{src: "?who", ns: NewNamespaces(), g: NewGraph(), line: 1}
	term, err := p.parseTerm()
	if err != nil {
		t.Fatal(err)
	}
	if term != Var("who") {
		t.Fatalf("parsed %v, want ?who", term)
	}
}
