package rdf

import (
	"sort"
	"strings"
	"sync"
)

// Graph is an in-memory triple store indexed by subject, predicate, and
// object for efficient pattern matching. It is safe for concurrent use.
//
// The zero value is not ready; use NewGraph.
type Graph struct {
	mu  sync.RWMutex
	spo map[Term]map[Term]map[Term]struct{}
	pos map[Term]map[Term]map[Term]struct{}
	osp map[Term]map[Term]map[Term]struct{}
	n   int
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{
		spo: make(map[Term]map[Term]map[Term]struct{}),
		pos: make(map[Term]map[Term]map[Term]struct{}),
		osp: make(map[Term]map[Term]map[Term]struct{}),
	}
}

func idx3add(m map[Term]map[Term]map[Term]struct{}, a, b, c Term) bool {
	mb, ok := m[a]
	if !ok {
		mb = make(map[Term]map[Term]struct{})
		m[a] = mb
	}
	mc, ok := mb[b]
	if !ok {
		mc = make(map[Term]struct{})
		mb[b] = mc
	}
	if _, exists := mc[c]; exists {
		return false
	}
	mc[c] = struct{}{}
	return true
}

func idx3del(m map[Term]map[Term]map[Term]struct{}, a, b, c Term) bool {
	mb, ok := m[a]
	if !ok {
		return false
	}
	mc, ok := mb[b]
	if !ok {
		return false
	}
	if _, exists := mc[c]; !exists {
		return false
	}
	delete(mc, c)
	if len(mc) == 0 {
		delete(mb, b)
		if len(mb) == 0 {
			delete(m, a)
		}
	}
	return true
}

// Add inserts a ground triple. It reports whether the triple was new.
// Adding a triple containing variables is a programming error and panics.
func (g *Graph) Add(tr Triple) bool {
	if !tr.IsGround() {
		panic("rdf: Add called with non-ground triple " + tr.String())
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if !idx3add(g.spo, tr.S, tr.P, tr.O) {
		return false
	}
	idx3add(g.pos, tr.P, tr.O, tr.S)
	idx3add(g.osp, tr.O, tr.S, tr.P)
	g.n++
	return true
}

// AddAll inserts all triples, returning how many were new.
func (g *Graph) AddAll(trs []Triple) int {
	added := 0
	for _, tr := range trs {
		if g.Add(tr) {
			added++
		}
	}
	return added
}

// Remove deletes a ground triple, reporting whether it was present.
func (g *Graph) Remove(tr Triple) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if !idx3del(g.spo, tr.S, tr.P, tr.O) {
		return false
	}
	idx3del(g.pos, tr.P, tr.O, tr.S)
	idx3del(g.osp, tr.O, tr.S, tr.P)
	g.n--
	return true
}

// Has reports whether the ground triple is present.
func (g *Graph) Has(tr Triple) bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if mb, ok := g.spo[tr.S]; ok {
		if mc, ok := mb[tr.P]; ok {
			_, ok := mc[tr.O]
			return ok
		}
	}
	return false
}

// Len returns the number of triples in the graph.
func (g *Graph) Len() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.n
}

// Match returns all triples matching the pattern; variables (and zero
// Terms) act as wildcards. The result order is unspecified.
func (g *Graph) Match(pattern Triple) []Triple {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.matchLocked(pattern)
}

func wild(t Term) bool { return t.Zero() || t.IsVar() }

func (g *Graph) matchLocked(p Triple) []Triple {
	var out []Triple
	switch {
	case !wild(p.S): // S bound: walk spo[S]
		mb, ok := g.spo[p.S]
		if !ok {
			return nil
		}
		for pp, mc := range mb {
			if !wild(p.P) && pp != p.P {
				continue
			}
			for oo := range mc {
				if !wild(p.O) && oo != p.O {
					continue
				}
				out = append(out, Triple{S: p.S, P: pp, O: oo})
			}
		}
	case !wild(p.P): // P bound: walk pos[P]
		mb, ok := g.pos[p.P]
		if !ok {
			return nil
		}
		for oo, ms := range mb {
			if !wild(p.O) && oo != p.O {
				continue
			}
			for ss := range ms {
				out = append(out, Triple{S: ss, P: p.P, O: oo})
			}
		}
	case !wild(p.O): // only O bound: walk osp[O]
		mb, ok := g.osp[p.O]
		if !ok {
			return nil
		}
		for ss, mp := range mb {
			for pp := range mp {
				out = append(out, Triple{S: ss, P: pp, O: p.O})
			}
		}
	default: // full scan
		for ss, mb := range g.spo {
			for pp, mc := range mb {
				for oo := range mc {
					out = append(out, Triple{S: ss, P: pp, O: oo})
				}
			}
		}
	}
	return out
}

// MatchBindings unifies the pattern against the graph under an initial
// binding and returns one extended binding per matching triple.
func (g *Graph) MatchBindings(pattern Triple, initial Binding) []Binding {
	resolved := initial.ResolveTriple(pattern)
	matches := g.Match(resolved)
	out := make([]Binding, 0, len(matches))
	for _, m := range matches {
		b := initial.Clone()
		if bindPosition(b, resolved.S, m.S) && bindPosition(b, resolved.P, m.P) && bindPosition(b, resolved.O, m.O) {
			out = append(out, b)
		}
	}
	return out
}

// bindPosition extends b so pattern term pt matches ground term gt.
// Returns false on a conflicting repeated variable (e.g. ?x ?p ?x).
func bindPosition(b Binding, pt, gt Term) bool {
	if !pt.IsVar() {
		return true // already constrained by the index lookup
	}
	if prev, ok := b[pt.Value]; ok {
		return prev == gt
	}
	b[pt.Value] = gt
	return true
}

// Solve answers a conjunctive query: it returns every binding of the
// pattern variables under which all patterns hold in the graph. This is
// the evaluation core for both OWL-QL queries and rule bodies.
func (g *Graph) Solve(patterns []Triple) []Binding {
	bindings := []Binding{{}}
	for _, p := range patterns {
		var next []Binding
		for _, b := range bindings {
			next = append(next, g.MatchBindings(p, b)...)
		}
		if len(next) == 0 {
			return nil
		}
		bindings = next
	}
	return bindings
}

// Triples returns a snapshot of all triples sorted lexically — a stable
// order for serialization and tests.
func (g *Graph) Triples() []Triple {
	all := g.Match(Triple{})
	sort.Slice(all, func(i, j int) bool {
		if c := strings.Compare(all[i].S.String(), all[j].S.String()); c != 0 {
			return c < 0
		}
		if c := strings.Compare(all[i].P.String(), all[j].P.String()); c != 0 {
			return c < 0
		}
		return all[i].O.String() < all[j].O.String()
	})
	return all
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := NewGraph()
	for _, tr := range g.Match(Triple{}) {
		c.Add(tr)
	}
	return c
}

// Merge adds every triple of other into g, returning the number added.
func (g *Graph) Merge(other *Graph) int {
	return g.AddAll(other.Match(Triple{}))
}

// Subjects returns the distinct subjects of triples matching (-, p, o).
func (g *Graph) Subjects(p, o Term) []Term {
	seen := make(map[Term]struct{})
	var out []Term
	for _, tr := range g.Match(Triple{P: p, O: o}) {
		if _, dup := seen[tr.S]; !dup {
			seen[tr.S] = struct{}{}
			out = append(out, tr.S)
		}
	}
	return out
}

// Objects returns the distinct objects of triples matching (s, p, -).
func (g *Graph) Objects(s, p Term) []Term {
	seen := make(map[Term]struct{})
	var out []Term
	for _, tr := range g.Match(Triple{S: s, P: p}) {
		if _, dup := seen[tr.O]; !dup {
			seen[tr.O] = struct{}{}
			out = append(out, tr.O)
		}
	}
	return out
}

// FirstObject returns the object of one (s, p, -) triple, if any.
func (g *Graph) FirstObject(s, p Term) (Term, bool) {
	for _, tr := range g.Match(Triple{S: s, P: p}) {
		return tr.O, true
	}
	return Term{}, false
}
