package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// DebugServer is the operational HTTP surface a daemon exposes on its
// -debug-addr: Prometheus text exposition on /metrics, a liveness probe
// on /healthz, and the runtime profiler under /debug/pprof/.
type DebugServer struct {
	srv *http.Server
	ln  net.Listener
}

// ServeDebug binds the debug surface for reg on addr (":0" picks a free
// port). The server runs until Close.
func ServeDebug(addr string, reg *Registry) (*DebugServer, error) {
	if reg == nil {
		reg = Default
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WriteProm(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ds := &DebugServer{
		srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
		ln:  ln,
	}
	go func() { _ = ds.srv.Serve(ln) }()
	return ds, nil
}

// Addr returns the bound listen address.
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

// Close stops the server.
func (d *DebugServer) Close() error { return d.srv.Close() }
