package obs

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeConcurrent(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test_total", "host", "h1")
	g := reg.Gauge("test_level")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.Add(1)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if g.Value() != 8000 {
		t.Fatalf("gauge = %d, want 8000", g.Value())
	}
	// Same name+labels resolves to the same counter.
	if reg.Counter("test_total", "host", "h1") != c {
		t.Fatal("lookup did not return the registered counter")
	}
	// Different labels are a different series.
	if reg.Counter("test_total", "host", "h2") == c {
		t.Fatal("distinct labels must be a distinct series")
	}
	c.Add(-5)
	if c.Value() != 8000 {
		t.Fatal("counter must ignore negative adds")
	}
}

func TestHistogramBuckets(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat_ns")
	for _, d := range []time.Duration{0, 1, 100, 1000, 1000, 1 << 20} {
		h.Observe(d)
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	want := time.Duration(0 + 1 + 100 + 1000 + 1000 + 1<<20)
	if h.Sum() != want {
		t.Fatalf("sum = %v, want %v", h.Sum(), want)
	}
	snap := reg.Snapshot()
	if len(snap) != 1 || snap[0].Type != "histogram" {
		t.Fatalf("snapshot = %+v", snap)
	}
	var total int64
	for _, b := range snap[0].Bkts {
		total += b.Count
	}
	if total != 6 {
		t.Fatalf("bucket counts sum to %d, want 6", total)
	}
	if snap[0].Mean() != want/6 {
		t.Fatalf("mean = %v, want %v", snap[0].Mean(), want/6)
	}
}

func TestSnapshotDeterministicOrder(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("zz_total")
	reg.Counter("aa_total", "host", "h2")
	reg.Counter("aa_total", "host", "h1")
	reg.Gauge("mm_level")
	snap := reg.Snapshot()
	var ids []string
	for _, s := range snap {
		ids = append(ids, s.ID())
	}
	want := []string{`aa_total{host="h1"}`, `aa_total{host="h2"}`, "mm_level", "zz_total"}
	if fmt.Sprint(ids) != fmt.Sprint(want) {
		t.Fatalf("order = %v, want %v", ids, want)
	}
}

func TestWriteProm(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("reqs_total", "host", "h1").Add(3)
	reg.Gauge("queue_depth").Set(7)
	reg.Histogram("lat_ns").Observe(1500 * time.Nanosecond)
	var b strings.Builder
	if err := reg.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE reqs_total counter",
		`reqs_total{host="h1"} 3`,
		"# TYPE queue_depth gauge",
		"queue_depth 7",
		"# TYPE lat_ns histogram",
		`lat_ns_bucket{le="+Inf"} 1`,
		"lat_ns_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestTraceLogTimeline(t *testing.T) {
	l := NewTraceLog(4)
	id := l.Begin("player", "hostA", "hostB")
	base := time.Now()
	phases := []string{PhaseSuspend, PhaseCapture, PhaseTransfer, PhaseRestore, PhaseRebind}
	for i, ph := range phases {
		host := "hostA"
		if ph == PhaseRestore || ph == PhaseRebind {
			host = "hostB"
		}
		l.Record(Span{Trace: id, App: "player", Phase: ph, Host: host,
			Start: base.Add(time.Duration(i) * time.Millisecond), Dur: time.Millisecond})
	}
	tr, ok := l.Latest("player")
	if !ok {
		t.Fatal("no latest trace")
	}
	if tr.ID != id || tr.From != "hostA" || tr.To != "hostB" {
		t.Fatalf("trace header = %+v", tr)
	}
	if !tr.Complete() {
		t.Fatalf("trace incomplete: %+v", tr.Spans)
	}
	for i := 1; i < len(tr.Spans); i++ {
		if tr.Spans[i].Start.Before(tr.Spans[i-1].Start) {
			t.Fatal("spans not sorted by start")
		}
	}
	if got, _ := l.Get(id); len(got.Spans) != 5 {
		t.Fatalf("Get spans = %d, want 5", len(got.Spans))
	}
}

func TestTraceLogDestSideAssembly(t *testing.T) {
	// The destination learns the id from the wire and records spans into
	// a log that never saw Begin.
	l := NewTraceLog(4)
	l.Record(Span{Trace: "mig-x-1", App: "player", Phase: PhaseRestore, Host: "hostB", Start: time.Now()})
	l.Record(Span{Trace: "mig-x-1", App: "player", Phase: PhaseRebind, Host: "hostB", Start: time.Now()})
	tr, ok := l.Latest("player")
	if !ok || len(tr.Spans) != 2 {
		t.Fatalf("dest-side trace = %+v ok=%v", tr, ok)
	}
	// Empty trace ids (pre-tracing senders) are dropped.
	l.Record(Span{Trace: "", App: "player", Phase: PhaseRestore})
	if tr, _ := l.Latest("player"); len(tr.Spans) != 2 {
		t.Fatal("empty trace id must be dropped")
	}
}

func TestTraceLogEviction(t *testing.T) {
	l := NewTraceLog(2)
	a := l.Begin("a", "h1", "h2")
	b := l.Begin("b", "h1", "h2")
	c := l.Begin("c", "h1", "h2")
	if _, ok := l.Get(a); ok {
		t.Fatal("oldest trace should be evicted")
	}
	if _, ok := l.Get(b); !ok {
		t.Fatal("b should survive")
	}
	if _, ok := l.Get(c); !ok {
		t.Fatal("c should survive")
	}
	if _, ok := l.Latest("a"); ok {
		t.Fatal("latest index must drop evicted traces")
	}
}

func TestServeDebug(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("up_total").Inc()
	ds, err := ServeDebug("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	for _, path := range []string{"/healthz", "/metrics", "/debug/pprof/"} {
		resp, err := http.Get("http://" + ds.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		if len(body) == 0 {
			t.Fatalf("GET %s: empty body", path)
		}
		if path == "/metrics" && !strings.Contains(string(body), "up_total 1") {
			t.Fatalf("exposition missing up_total:\n%s", body)
		}
	}
}
