package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Migration phase names, in protocol order. The source host records the
// first three; the destination records restore and rebind and returns
// them in the checkin reply so the source holds the complete timeline.
const (
	PhaseSuspend  = "suspend"
	PhaseCapture  = "capture"
	PhaseTransfer = "transfer"
	PhaseRestore  = "restore"
	PhaseRebind   = "rebind"
)

// Span is one timed phase of one migration, attributed to the host whose
// clock measured it. Spans cross the wire inside the checkin reply, so
// every field must stay gob-friendly.
type Span struct {
	Trace string // trace id minted at migration start
	App   string
	Phase string
	Host  string // host that recorded the span
	Start time.Time
	Dur   time.Duration
	Note  string // phase detail: frame kind, bytes, rebind counts
}

// MigrationTrace is the assembled timeline of one migration.
type MigrationTrace struct {
	ID    string
	App   string
	From  string
	To    string
	Start time.Time
	Spans []Span // sorted by start time
}

// Complete reports whether all five phases are present.
func (t MigrationTrace) Complete() bool {
	seen := make(map[string]bool, len(t.Spans))
	for _, sp := range t.Spans {
		seen[sp.Phase] = true
	}
	return seen[PhaseSuspend] && seen[PhaseCapture] && seen[PhaseTransfer] &&
		seen[PhaseRestore] && seen[PhaseRebind]
}

// TraceLog retains recent migration traces, bounded FIFO per process.
type TraceLog struct {
	mu     sync.Mutex
	cap    int
	byID   map[string]*MigrationTrace
	order  []string          // insertion order, for eviction
	latest map[string]string // app -> most recently touched trace id
}

// NewTraceLog returns a log retaining at most capacity traces.
func NewTraceLog(capacity int) *TraceLog {
	if capacity <= 0 {
		capacity = 64
	}
	return &TraceLog{
		cap:    capacity,
		byID:   make(map[string]*MigrationTrace),
		latest: make(map[string]string),
	}
}

// Traces is the process-wide trace log.
var Traces = NewTraceLog(128)

var traceSeq atomic.Int64

// NewTraceID mints a process-unique migration trace id.
func NewTraceID(app, host string) string {
	return fmt.Sprintf("mig-%s-%s-%x-%d", app, host, time.Now().UnixNano(), traceSeq.Add(1))
}

// Begin registers a new trace for app migrating from -> to and returns
// its id.
func (l *TraceLog) Begin(app, from, to string) string {
	id := NewTraceID(app, from)
	l.mu.Lock()
	l.insertLocked(&MigrationTrace{ID: id, App: app, From: from, To: to, Start: time.Now()})
	l.latest[app] = id
	l.mu.Unlock()
	return id
}

// Record appends a span to its trace, creating the trace entry when this
// process first hears of the id (the destination side of a migration
// learns the id from the wire frame). Spans with an empty trace id (an
// old sender that predates tracing) are dropped.
func (l *TraceLog) Record(sp Span) {
	if sp.Trace == "" {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	tr, ok := l.byID[sp.Trace]
	if !ok {
		tr = &MigrationTrace{ID: sp.Trace, App: sp.App, Start: sp.Start}
		l.insertLocked(tr)
	}
	if tr.Start.IsZero() || (!sp.Start.IsZero() && sp.Start.Before(tr.Start)) {
		tr.Start = sp.Start
	}
	// Idempotent per (phase, host): in-process deployments share one
	// TraceLog between both engines, so the destination's spans arrive
	// twice — once recorded directly, once merged from the checkin reply.
	for i := range tr.Spans {
		if tr.Spans[i].Phase == sp.Phase && tr.Spans[i].Host == sp.Host {
			tr.Spans[i] = sp
			if sp.App != "" {
				l.latest[sp.App] = sp.Trace
			}
			return
		}
	}
	tr.Spans = append(tr.Spans, sp)
	if sp.App != "" {
		l.latest[sp.App] = sp.Trace
	}
}

// insertLocked adds a trace and evicts the oldest past capacity.
func (l *TraceLog) insertLocked(tr *MigrationTrace) {
	l.byID[tr.ID] = tr
	l.order = append(l.order, tr.ID)
	for len(l.order) > l.cap {
		old := l.order[0]
		l.order = l.order[1:]
		if ev, ok := l.byID[old]; ok {
			delete(l.byID, old)
			if l.latest[ev.App] == old {
				delete(l.latest, ev.App)
			}
		}
	}
}

// Get returns a trace by id, spans sorted by start time.
func (l *TraceLog) Get(id string) (MigrationTrace, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	tr, ok := l.byID[id]
	if !ok {
		return MigrationTrace{}, false
	}
	return tr.sorted(), true
}

// Latest returns the most recently touched trace for app.
func (l *TraceLog) Latest(app string) (MigrationTrace, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	id, ok := l.latest[app]
	if !ok {
		return MigrationTrace{}, false
	}
	tr, ok := l.byID[id]
	if !ok {
		return MigrationTrace{}, false
	}
	return tr.sorted(), true
}

func (t *MigrationTrace) sorted() MigrationTrace {
	out := *t
	out.Spans = make([]Span, len(t.Spans))
	copy(out.Spans, t.Spans)
	sort.SliceStable(out.Spans, func(i, j int) bool {
		return out.Spans[i].Start.Before(out.Spans[j].Start)
	})
	return out
}
