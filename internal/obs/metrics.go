// Package obs is the middleware's observability core: a dependency-free
// metrics layer (atomic counters, gauges, log-bucketed latency
// histograms, a process-wide named registry with Prometheus text
// exposition) and cross-host migration tracing (trace.go). Hot paths pin
// metric pointers at construction time, so the per-event cost is a
// single atomic add — the registry lock is only taken at registration
// and snapshot time.
package obs

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing value.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative n is ignored: counters are monotonic).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by n.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBuckets is the number of log2 duration buckets: bucket i holds
// observations with bits.Len64(ns) == i, i.e. durations in
// [2^(i-1), 2^i) ns. 48 buckets cover up to ~39 hours.
const histBuckets = 48

// Histogram is a log-bucketed latency histogram. Observe costs three
// atomic adds and no allocation.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
	buckets [histBuckets]atomic.Int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	b := bits.Len64(uint64(ns))
	if b >= histBuckets {
		b = histBuckets - 1
	}
	h.buckets[b].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the total observed duration.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Bucket is one non-cumulative histogram bucket: Count observations with
// duration <= Le nanoseconds (and above the previous bucket's Le).
type Bucket struct {
	Le    int64 // upper bound, nanoseconds
	Count int64
}

// Sample is one metric's point-in-time value, the serializable form
// returned by Registry.Snapshot and shipped over the control plane.
type Sample struct {
	Name   string
	Labels map[string]string
	Type   string // "counter", "gauge", "histogram"
	Value  int64  // counter/gauge value
	Count  int64  // histogram observation count
	Sum    int64  // histogram total, nanoseconds
	Bkts   []Bucket
}

// ID renders the metric's identity as name{k="v",...} with sorted label
// keys — stable across snapshots.
func (s Sample) ID() string { return metricID(s.Name, s.Labels) }

// Mean returns the histogram's mean observation (0 when empty).
func (s Sample) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.Sum / s.Count)
}

func metricID(name string, labels map[string]string) string {
	if len(labels) == 0 {
		return name
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

type metric struct {
	name    string
	labels  map[string]string
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// Registry is a named collection of metrics. Lookups are get-or-create
// and take a lock; callers on hot paths resolve their metrics once and
// keep the pointer.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

// Default is the process-wide registry every subsystem registers into.
var Default = NewRegistry()

func labelMap(kv []string) map[string]string {
	if len(kv) == 0 {
		return nil
	}
	if len(kv)%2 != 0 {
		panic("obs: label key without value")
	}
	m := make(map[string]string, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		m[kv[i]] = kv[i+1]
	}
	return m
}

func (r *Registry) get(name string, kv []string) *metric {
	labels := labelMap(kv)
	id := metricID(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.metrics[id]
	if !ok {
		m = &metric{name: name, labels: labels}
		r.metrics[id] = m
	}
	return m
}

// Counter returns the named counter, creating it on first use. kv is an
// alternating key, value label list.
func (r *Registry) Counter(name string, kv ...string) *Counter {
	m := r.get(name, kv)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m.counter == nil {
		m.counter = &Counter{}
	}
	return m.counter
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string, kv ...string) *Gauge {
	m := r.get(name, kv)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m.gauge == nil {
		m.gauge = &Gauge{}
	}
	return m.gauge
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string, kv ...string) *Histogram {
	m := r.get(name, kv)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m.hist == nil {
		m.hist = &Histogram{}
	}
	return m.hist
}

// Snapshot returns every registered metric's current value, sorted by
// identity for deterministic output.
func (r *Registry) Snapshot() []Sample {
	r.mu.Lock()
	ms := make([]*metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		ms = append(ms, m)
	}
	r.mu.Unlock()

	out := make([]Sample, 0, len(ms))
	for _, m := range ms {
		var labels map[string]string
		if len(m.labels) > 0 {
			labels = make(map[string]string, len(m.labels))
			for k, v := range m.labels {
				labels[k] = v
			}
		}
		switch {
		case m.counter != nil:
			out = append(out, Sample{Name: m.name, Labels: labels, Type: "counter", Value: m.counter.Value()})
		case m.gauge != nil:
			out = append(out, Sample{Name: m.name, Labels: labels, Type: "gauge", Value: m.gauge.Value()})
		case m.hist != nil:
			s := Sample{Name: m.name, Labels: labels, Type: "histogram",
				Count: m.hist.count.Load(), Sum: m.hist.sum.Load()}
			for i := range m.hist.buckets {
				c := m.hist.buckets[i].Load()
				if c == 0 {
					continue
				}
				le := int64(-1) // top bucket is unbounded
				if i < histBuckets-1 {
					le = int64(1)<<uint(i) - 1
				}
				s.Bkts = append(s.Bkts, Bucket{Le: le, Count: c})
			}
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID() < out[j].ID() })
	return out
}

// WriteProm writes the registry in the Prometheus text exposition format
// (version 0.0.4). Histograms are emitted with cumulative buckets, le in
// seconds.
func (r *Registry) WriteProm(w io.Writer) error {
	samples := r.Snapshot()
	typed := make(map[string]bool)
	for _, s := range samples {
		if !typed[s.Name] {
			typed[s.Name] = true
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", s.Name, s.Type); err != nil {
				return err
			}
		}
		lbl := promLabels(s.Labels, "", 0)
		switch s.Type {
		case "counter", "gauge":
			if _, err := fmt.Fprintf(w, "%s%s %d\n", s.Name, lbl, s.Value); err != nil {
				return err
			}
		case "histogram":
			cum := int64(0)
			for _, b := range s.Bkts {
				if b.Le < 0 {
					continue
				}
				cum += b.Count
				le := float64(b.Le+1) / 1e9
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
					s.Name, promLabels(s.Labels, "le", le), cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
				s.Name, promLabels(s.Labels, "le", "+Inf"), s.Count); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %g\n", s.Name, lbl, float64(s.Sum)/1e9); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n", s.Name, lbl, s.Count); err != nil {
				return err
			}
		}
	}
	return nil
}

// promLabels renders a label set, optionally with a trailing le label
// (histogram buckets), in the Prometheus sample-line syntax.
func promLabels(labels map[string]string, leKey string, le any) string {
	if len(labels) == 0 && leKey == "" {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	if leKey != "" {
		if len(keys) > 0 {
			b.WriteByte(',')
		}
		switch v := le.(type) {
		case string:
			fmt.Fprintf(&b, "%s=%q", leKey, v)
		case float64:
			fmt.Fprintf(&b, "%s=\"%g\"", leKey, v)
		}
	}
	b.WriteByte('}')
	return b.String()
}
