package core

import (
	"context"
	"fmt"
	"sort"

	"mdagent/internal/bundle"
	"mdagent/internal/ctl"
	"mdagent/internal/obs"
	"mdagent/internal/registry"
)

// Bundle accounting, process-wide. The cmd daemons register the same
// names into obs.Default, so /metrics reads identically whether the
// deployment is in-process or multi-process.
var (
	mBundlePushes   = obs.Default.Counter("mdagent_bundle_pushes_total")
	mBundleInstalls = obs.Default.Counter("mdagent_bundle_installs_total")
	mBundleRejected = obs.Default.Counter("mdagent_bundle_rejected_total")
	mBundleBytes    = obs.Default.Counter("mdagent_bundle_bytes_total")
)

// PushBundle verifies a signed app bundle against the deployment's
// trusted keys and stores it: at the first space's federated center
// when clustered (whence it replicates everywhere), else at the single
// registry. The bundle must be named for its manifest's app — storing
// it under any other key would let an installer fetch a verified-but-
// wrong artifact.
func (m *Middleware) PushBundle(ctx context.Context, name string, raw []byte) error {
	if _, err := m.verifyBundle(name, raw); err != nil {
		return err
	}
	mBundlePushes.Inc()
	if m.Cluster != nil {
		for _, space := range m.Cluster.Spaces() {
			if center, ok := m.Cluster.Center(space); ok {
				return ignoreNotDurable(center.PutBundle(ctx, name, raw))
			}
		}
	}
	return m.Registry.PutBundle(name, raw)
}

// ListBundles lists the stored bundles, deduplicated across the
// federation's centers when clustered.
func (m *Middleware) ListBundles(context.Context) ([]registry.BundleInfo, error) {
	if m.Cluster == nil {
		return m.Registry.Bundles()
	}
	seen := make(map[string]registry.BundleInfo)
	for _, space := range m.Cluster.Spaces() {
		center, ok := m.Cluster.Center(space)
		if !ok {
			continue
		}
		infos, err := center.Bundles(context.Background())
		if err != nil {
			return nil, err
		}
		for _, info := range infos {
			seen[info.Name] = info
		}
	}
	out := make([]registry.BundleInfo, 0, len(seen))
	for _, info := range seen {
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// InstallBundle assembles an application factory from a stored, signed
// bundle and installs it on host — the generic arm of InstallApp: no
// compiled-in factory needed, the manifest is the skeleton. The bundle
// is re-verified here even though the push path already did, because in
// a federation the bytes may have arrived via replication from a center
// this deployment never vetted.
func (m *Middleware) InstallBundle(ctx context.Context, appName, host string) error {
	rt, ok := m.Host(host)
	if !ok {
		return fmt.Errorf("core: %w: %q", ctl.ErrUnknownHost, host)
	}
	raw, found, err := m.getBundle(ctx, rt.Space, appName)
	if err != nil {
		return err
	}
	if !found {
		return fmt.Errorf("core: %w: %q (push its bundle first)", ctl.ErrUnknownApp, appName)
	}
	b, err := m.verifyBundle(appName, raw)
	if err != nil {
		return err
	}
	factory, err := bundle.Instantiate(b, m.cfg.Secrets)
	if err != nil {
		mBundleRejected.Inc()
		return fmt.Errorf("core: instantiate bundle %q: %w", appName, err)
	}
	rt.Engine.InstallFactory(appName, factory)
	specs := b.Manifest.Components
	components := make([]string, 0, len(specs))
	for _, spec := range specs {
		components = append(components, spec.Name)
	}
	if err := m.registerApp(ctx, registry.AppRecord{
		Name: appName, Host: host, Space: rt.Space,
		Description: b.Manifest.Description, Components: components,
	}); err != nil {
		return err
	}
	mBundleInstalls.Inc()
	return nil
}

// verifyBundle opens raw against the deployment's trusted keys and
// checks the manifest names the app it was stored (or pushed) as. Every
// refusal books a rejection metric; every acceptance books the payload
// bytes.
func (m *Middleware) verifyBundle(name string, raw []byte) (*bundle.Bundle, error) {
	b, err := bundle.Open(raw, m.cfg.TrustedKeys)
	if err != nil {
		mBundleRejected.Inc()
		return nil, fmt.Errorf("core: refuse bundle %q: %w", name, err)
	}
	if b.Manifest.App != name {
		mBundleRejected.Inc()
		return nil, fmt.Errorf("core: refuse bundle: %w: named %q but manifest declares %q",
			bundle.ErrCorrupt, name, b.Manifest.App)
	}
	mBundleBytes.Add(int64(len(raw)))
	return b, nil
}

// getBundle reads a stored bundle, preferring the installing host's own
// space center (federation replication makes any center equivalent once
// converged; mid-replication the local one is what the host can reach).
func (m *Middleware) getBundle(ctx context.Context, space, name string) ([]byte, bool, error) {
	if m.Cluster == nil {
		return m.Registry.GetBundle(name)
	}
	spaces := append([]string{space}, m.Cluster.Spaces()...)
	for _, sp := range spaces {
		center, ok := m.Cluster.Center(sp)
		if !ok {
			continue
		}
		raw, found, err := center.GetBundle(ctx, name)
		if err != nil || found {
			return raw, found, err
		}
	}
	return nil, false, nil
}

// ctlListBundles adapts ListBundles to the control plane's reply shape.
func (m *Middleware) ctlListBundles(ctx context.Context) ([]ctl.BundleInfo, error) {
	infos, err := m.ListBundles(ctx)
	if err != nil {
		return nil, err
	}
	out := make([]ctl.BundleInfo, 0, len(infos))
	for _, info := range infos {
		out = append(out, ctl.BundleInfo{Name: info.Name, Bytes: info.Bytes})
	}
	return out, nil
}

// ctlInstall serves the control plane's plain install op: a compiled-in
// skeleton factory when the engine holds one, else the stored bundle,
// else the typed ErrUnknownApp refusal.
func (m *Middleware) ctlInstall(ctx context.Context, appName, host string) error {
	rt, ok := m.Host(host)
	if !ok {
		return fmt.Errorf("core: %w: %q", ctl.ErrUnknownHost, host)
	}
	if factory, ok := rt.Engine.Factory(appName); ok {
		inst := factory(host)
		return m.registerApp(ctx, registry.AppRecord{
			Name: appName, Host: host, Space: rt.Space,
			Description: inst.Description(), Components: inst.Components(),
		})
	}
	return m.InstallBundle(ctx, appName, host)
}
