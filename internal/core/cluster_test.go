package core

import (
	"context"
	"sync"
	"testing"
	"time"

	"mdagent/internal/app"
	"mdagent/internal/cluster"
	"mdagent/internal/ctxkernel"
	"mdagent/internal/demoapps"
	"mdagent/internal/media"
	"mdagent/internal/netsim"
	"mdagent/internal/wsdl"
)

func clusterTestConfig() *cluster.Config {
	return &cluster.Config{
		ProbeInterval:    2 * time.Millisecond,
		ProbeTimeout:     25 * time.Millisecond,
		SuspicionTimeout: 40 * time.Millisecond,
		SyncInterval:     5 * time.Millisecond,
		Seed:             11,
	}
}

func testDevice(host string) wsdl.DeviceProfile {
	return wsdl.DeviceProfile{
		Host: host, ScreenWidth: 1024, ScreenHeight: 768,
		MemoryMB: 512, HasAudio: true, HasDisplay: true,
	}
}

// newFederatedDeployment builds the churn testbed: three smart spaces,
// one host each, the media player running on h1 with its skeleton
// installed on h2 and h3.
func newFederatedDeployment(t *testing.T) *Middleware {
	t.Helper()
	return newFederatedDeploymentCfg(t, clusterTestConfig())
}

func newFederatedDeploymentCfg(t *testing.T, cfg *cluster.Config) *Middleware {
	t.Helper()
	return newFederatedDeploymentSong(t, cfg, 2_000_000)
}

// newFederatedDeploymentSong additionally sizes the player's song — the
// state-pipeline tests use a small one so that frame decodes inside
// 1 ms-poll conditions stay cheap under the race detector.
func newFederatedDeploymentSong(t *testing.T, cfg *cluster.Config, songBytes int64) *Middleware {
	t.Helper()
	mw, err := New(Config{Seed: 5, Cluster: cfg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mw.Close() })
	hosts := []string{"h1", "h2", "h3"}
	for i, host := range hosts {
		space := []string{"lab1", "lab2", "lab3"}[i]
		if err := mw.AddSpace(space); err != nil {
			t.Fatal(err)
		}
		// Inter-space traffic (gossip probes, federation digests, clone
		// wraps) requires each space to expose a gateway (paper Fig. 1).
		if err := mw.AddGateway("gw-"+space, space, netsim.Pentium4_1700()); err != nil {
			t.Fatal(err)
		}
		if _, err := mw.AddHost(host, space, netsim.Pentium4_1700(), testDevice(host), 0); err != nil {
			t.Fatal(err)
		}
	}
	song := media.GenerateFile("song1", songBytes, 3)
	rt1, _ := mw.Host("h1")
	rt1.Library.Add(song)
	if err := mw.RunApp(context.Background(), "h1", demoapps.NewMediaPlayer("h1", song)); err != nil {
		t.Fatal(err)
	}
	if err := mw.RegisterResource(demoapps.MusicResource(song, "h1")); err != nil {
		t.Fatal(err)
	}
	for _, host := range []string{"h2", "h3"} {
		if err := mw.InstallApp(context.Background(), host, "smart-media-player", demoapps.MediaPlayerDesc(),
			demoapps.MediaPlayerSkeletonComponents(),
			func(h string) *app.Application { return demoapps.MediaPlayerSkeleton(h) }); err != nil {
			t.Fatal(err)
		}
	}
	return mw
}

func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestFederatedFailoverRehomesAcrossSpaces is the acceptance scenario:
// three federated spaces, the app's host killed by netsim fault
// injection, membership converging to dead within the suspicion window,
// and the app automatically re-homed — its registry records intact on a
// *different* space's center.
func TestFederatedFailoverRehomesAcrossSpaces(t *testing.T) {
	mw := newFederatedDeployment(t)
	ctx := context.Background()

	// Replication: h1's running record reaches lab3's center.
	lab3, ok := mw.Cluster.Center("lab3")
	if !ok {
		t.Fatal("no center for lab3")
	}
	// Both the running record AND the resource must replicate before the
	// kill: anything that only ever lived on the dying center is lost
	// (eventual consistency is not durability).
	waitFor(t, 5*time.Second, "replication of h1's records to lab3", func() bool {
		rec, found, _ := lab3.LookupApp(ctx, "smart-media-player", "h1")
		if !found || !rec.Running {
			return false
		}
		res, err := lab3.Registry().ResourcesOnHost("h1")
		return err == nil && len(res) == 1
	})

	// Membership: everyone sees three alive.
	for _, host := range []string{"h1", "h2", "h3"} {
		node, _ := mw.Cluster.Node(host)
		waitFor(t, 5*time.Second, host+" seeing 3 alive", func() bool {
			return len(node.AliveHosts()) == 3
		})
	}

	// Watch for the failure-detection and re-homing events.
	var evMu sync.Mutex
	events := make(map[string]ctxkernel.Event)
	mw.Kernel.Subscribe("cluster.*", func(ev ctxkernel.Event) {
		evMu.Lock()
		events[ev.Topic] = ev
		evMu.Unlock()
	})

	// Kill h1. Survivors must converge to dead within the configured
	// suspicion timeout (generous wall-time bound: the probe interval is
	// 2 ms and suspicion 40 ms, so seconds of slack are orders of margin).
	if err := mw.Net.SetHostDown("h1", true); err != nil {
		t.Fatal(err)
	}
	detectStart := time.Now()
	n2, _ := mw.Cluster.Node("h2")
	n3, _ := mw.Cluster.Node("h3")
	waitFor(t, 5*time.Second, "survivors declaring h1 dead", func() bool {
		m2, _ := n2.Member("h1")
		m3, _ := n3.Member("h1")
		return m2.State == cluster.StateDead && m3.State == cluster.StateDead
	})
	t.Logf("membership converged to dead in %v", time.Since(detectStart))

	// The app lands on a survivor. Both carry the same skeleton, so the
	// deterministic tiebreak picks h2.
	if err := mw.WaitAppOn(context.Background(), "smart-media-player", "h2", 5*time.Second); err != nil {
		t.Fatal(err)
	}

	// Registry records intact on a different space's center: lab3 (whose
	// host h3 neither died nor received the app) sees the new home and no
	// stale record for the dead host.
	waitFor(t, 5*time.Second, "lab3 center seeing the re-homed record", func() bool {
		rec, found, _ := lab3.LookupApp(ctx, "smart-media-player", "h2")
		if !found || !rec.Running || rec.Space != "lab2" {
			return false
		}
		_, stale, _ := lab3.LookupApp(ctx, "smart-media-player", "h1")
		return !stale
	})
	// The resource registered on h1 is still known federation-wide.
	res, err := lab3.Registry().ResourcesOnHost("h1")
	if err != nil || len(res) != 1 {
		t.Fatalf("music resource lost from replicated registry: %v err=%v", res, err)
	}

	// The kernel narrated the incident.
	evMu.Lock()
	defer evMu.Unlock()
	if _, ok := events[TopicHostDead]; !ok {
		t.Error("no cluster.host-dead event published")
	}
	re, ok := events[TopicRehomed]
	if !ok {
		t.Fatal("no cluster.rehomed event published")
	}
	if re.Attr("app") != "smart-media-player" || re.Attr("from") != "h1" || re.Attr("to") != "h2" {
		t.Fatalf("rehomed event attrs = %v", re.Attrs)
	}
}

// TestIsolatedHostDoesNotStealApps drives the split-brain guard: the
// killed host's own node sees everyone else dead but has no quorum, so
// it must not re-home the survivors' applications onto itself.
func TestIsolatedHostDoesNotStealApps(t *testing.T) {
	mw := newFederatedDeployment(t)

	// Run a second app on h2 so the isolated h1 would have something to
	// steal if the guard failed.
	song := media.GenerateFile("song2", 1_000_000, 4)
	rt2, _ := mw.Host("h2")
	rt2.Library.Add(song)
	if err := mw.RunApp(context.Background(), "h2", demoapps.NewHandheldPlayer("h2", song)); err != nil {
		t.Fatal(err)
	}

	for _, host := range []string{"h1", "h2", "h3"} {
		node, _ := mw.Cluster.Node(host)
		waitFor(t, 5*time.Second, host+" seeing 3 alive", func() bool {
			return len(node.AliveHosts()) == 3
		})
	}
	if err := mw.Net.SetHostDown("h1", true); err != nil {
		t.Fatal(err)
	}
	n1, _ := mw.Cluster.Node("h1")
	waitFor(t, 5*time.Second, "isolated h1 losing quorum", func() bool {
		return !n1.HasQuorum()
	})
	// Give h1 ample time to (wrongly) act; the app must stay put.
	time.Sleep(100 * time.Millisecond)
	rt1, _ := mw.Host("h1")
	if _, stolen := rt1.Engine.App("handheld-player"); stolen {
		t.Fatal("isolated host re-homed a survivor's app onto itself")
	}
	if _, ok := rt2.Engine.App("handheld-player"); !ok {
		t.Fatal("survivor lost its app")
	}
}

// TestFailoverRestoresReplicatedState is the state-pipeline acceptance
// scenario: with Config.Cluster.ReplicateState on, the player's host is
// killed mid-run and the re-homed instance must resume with the exact
// component and coordinator state of the last replicated snapshot — a
// value-level check, not just liveness.
func TestFailoverRestoresReplicatedState(t *testing.T) {
	cfg := clusterTestConfig()
	cfg.ReplicateState = true
	cfg.ReplicateInterval = 2 * time.Millisecond
	mw := newFederatedDeploymentSong(t, cfg, 64_000)
	ctx := context.Background()

	rt1, _ := mw.Host("h1")
	if rt1.Replicator == nil {
		t.Fatal("ReplicateState on but h1 has no replicator")
	}
	inst, ok := rt1.Engine.App("smart-media-player")
	if !ok {
		t.Fatal("player not running on h1")
	}

	// Membership: everyone sees three alive before the kill.
	for _, host := range []string{"h1", "h2", "h3"} {
		node, _ := mw.Cluster.Node(host)
		waitFor(t, 5*time.Second, host+" seeing 3 alive", func() bool {
			return len(node.AliveHosts()) == 3
		})
	}

	// Watch the state-pipeline events.
	var evMu sync.Mutex
	events := make(map[string]ctxkernel.Event)
	mw.Kernel.Subscribe("cluster.*", func(ev ctxkernel.Event) {
		evMu.Lock()
		events[ev.Topic] = ev
		evMu.Unlock()
	})

	// Plant in-flight state: playback progressed to 424242 ms.
	st, ok := inst.Component("playback-state")
	if !ok {
		t.Fatal("player has no playback-state component")
	}
	st.(*app.StateComponent).Set("positionMs", "424242")
	inst.Coordinator().Set("positionMs", "424242")

	// The snapshot must reach a center that will SURVIVE the kill (lab3)
	// with the planted value before h1 dies — replication, not luck.
	// Decode only when a new sequence lands: frames are full app wraps.
	lab3, _ := mw.Cluster.Center("lab3")
	var lastSeq uint64
	waitFor(t, 30*time.Second, "snapshot with planted state on lab3", func() bool {
		sr, ok := lab3.LatestSnapshot("smart-media-player")
		if !ok || sr.Seq == lastSeq {
			return false
		}
		lastSeq = sr.Seq
		ts, err := sr.Snapshot()
		if err != nil {
			return false
		}
		return ts.Wrap.CoordState["positionMs"] == "424242"
	})

	// Kill h1; the app must land on h2 (same deterministic tiebreak as
	// the skeleton scenario).
	if err := mw.Net.SetHostDown("h1", true); err != nil {
		t.Fatal(err)
	}
	// Generous window: under -race with the whole suite in parallel on a
	// loaded runner, conviction + restore can overshoot 5s.
	if err := mw.WaitAppOn(context.Background(), "smart-media-player", "h2", 15*time.Second); err != nil {
		t.Fatal(err)
	}

	// Value-level check: the re-homed instance carries the replicated
	// component AND coordinator state, not skeleton defaults.
	rt2, _ := mw.Host("h2")
	restored, _ := rt2.Engine.App("smart-media-player")
	rst, ok := restored.Component("playback-state")
	if !ok {
		t.Fatal("re-homed instance has no playback-state (skeleton relaunch, state lost)")
	}
	if v, _ := rst.(*app.StateComponent).Get("positionMs"); v != "424242" {
		t.Fatalf("re-homed component state positionMs = %q, want 424242", v)
	}
	if v, _ := restored.Coordinator().Get("positionMs"); v != "424242" {
		t.Fatalf("re-homed coordinator positionMs = %q, want 424242", v)
	}
	if v, _ := restored.Coordinator().Get("track"); v != "song1" {
		t.Fatalf("re-homed coordinator track = %q, want song1", v)
	}
	if restored.Host() != "h2" {
		t.Fatalf("restored instance host = %q, want h2", restored.Host())
	}

	// The registry converged on the new home.
	waitFor(t, 5*time.Second, "lab3 seeing the re-homed record", func() bool {
		rec, found, _ := lab3.LookupApp(ctx, "smart-media-player", "h2")
		return found && rec.Running
	})

	// The kernel narrated the restoration. Events publish after the
	// relaunch is already observable, so poll rather than assert.
	seen := func(topic string) func() bool {
		return func() bool {
			evMu.Lock()
			defer evMu.Unlock()
			_, ok := events[topic]
			return ok
		}
	}
	waitFor(t, 5*time.Second, "cluster.rehomed event", seen(TopicRehomed))
	waitFor(t, 5*time.Second, "cluster.state.restored event", seen(TopicStateRestored))
	waitFor(t, 5*time.Second, "cluster.state.replicated event", seen(TopicStateReplicated))
	evMu.Lock()
	defer evMu.Unlock()
	if re := events[TopicRehomed]; re.Attr("restored") != "true" {
		t.Fatalf("rehomed event restored attr = %q, want true", re.Attr("restored"))
	}
}

// TestStopAppRetiresSnapshot drives the graceful-stop tombstone: after
// StopApp, no center may serve a snapshot (or a running record) that
// failover could resurrect the app from.
func TestStopAppRetiresSnapshot(t *testing.T) {
	cfg := clusterTestConfig()
	cfg.ReplicateState = true
	cfg.ReplicateInterval = 2 * time.Millisecond
	mw := newFederatedDeploymentSong(t, cfg, 64_000)
	ctx := context.Background()

	lab3, _ := mw.Cluster.Center("lab3")
	waitFor(t, 5*time.Second, "snapshot replicated to lab3", func() bool {
		_, ok := lab3.LatestSnapshot("smart-media-player")
		return ok
	})

	if err := mw.StopApp(context.Background(), "h1", "smart-media-player"); err != nil {
		t.Fatal(err)
	}
	rt1, _ := mw.Host("h1")
	if _, still := rt1.Engine.App("smart-media-player"); still {
		t.Fatal("engine still lists the stopped app")
	}
	lab1, _ := mw.Cluster.Center("lab1")
	if _, ok := lab1.LatestSnapshot("smart-media-player"); ok {
		t.Fatal("lab1 still serves the stopped app's snapshot")
	}
	waitFor(t, 5*time.Second, "tombstones reaching lab3", func() bool {
		if _, ok := lab3.LatestSnapshot("smart-media-player"); ok {
			return false
		}
		_, found, _ := lab3.LookupApp(ctx, "smart-media-player", "h1")
		return !found
	})
}

// TestDurableWritesPublishKernelEvents runs a federated deployment under
// WriteConcern=quorum and checks the observability wiring end to end:
// healthy durable writes surface as cluster.durable events, and once the
// center's host is partitioned from every peer — so its membership view
// says the quorum is unreachable — writes degrade fast and surface as
// cluster.degraded events instead of blocking the caller.
func TestDurableWritesPublishKernelEvents(t *testing.T) {
	cfg := clusterTestConfig()
	cfg.WriteConcern = cluster.WriteQuorum
	cfg.AckTimeout = 250 * time.Millisecond
	mw2, err := New(Config{Seed: 5, Cluster: cfg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mw2.Close() })
	var mu sync.Mutex
	durable, degraded := 0, 0
	mw2.Kernel.Subscribe(TopicClusterDurable, func(ctxkernel.Event) {
		mu.Lock()
		durable++
		mu.Unlock()
	})
	mw2.Kernel.Subscribe(TopicClusterDegraded, func(ctxkernel.Event) {
		mu.Lock()
		degraded++
		mu.Unlock()
	})
	for i, host := range []string{"h1", "h2", "h3"} {
		space := []string{"lab1", "lab2", "lab3"}[i]
		if err := mw2.AddSpace(space); err != nil {
			t.Fatal(err)
		}
		if err := mw2.AddGateway("gw-"+space, space, netsim.Pentium4_1700()); err != nil {
			t.Fatal(err)
		}
		if _, err := mw2.AddHost(host, space, netsim.Pentium4_1700(), testDevice(host), 0); err != nil {
			t.Fatal(err)
		}
	}
	// A post-provisioning write with every center up must be durable.
	if err := mw2.RegisterResource(demoapps.MusicResource(media.GenerateFile("s", 1000, 1), "h1")); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	gotDurable := durable
	mu.Unlock()
	if gotDurable == 0 {
		t.Fatal("no cluster.durable event after a healthy quorum write")
	}

	// Cut h1 (and lab1's center with it) off from every peer, wait for
	// its own membership view to convict them, then write through lab1:
	// degraded mode must fail fast and publish cluster.degraded.
	mw2.Net.Partition([]string{"h1"}, []string{"h2", "h3"})
	n1, _ := mw2.Cluster.Node("h1")
	waitFor(t, 5*time.Second, "h1 convicting its peers", func() bool {
		m2, _ := n1.Member("h2")
		m3, _ := n1.Member("h3")
		return m2.State == cluster.StateDead && m3.State == cluster.StateDead
	})
	start := time.Now()
	// core swallows the advisory ErrNotDurable; the event carries it.
	if err := mw2.RegisterResource(demoapps.MusicResource(media.GenerateFile("s2", 1000, 1), "h1")); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("degraded write took %v, want a fast fail via the membership view", elapsed)
	}
	mu.Lock()
	gotDegraded := degraded
	mu.Unlock()
	if gotDegraded == 0 {
		t.Fatal("no cluster.degraded event after a partitioned quorum write")
	}
}

// TestPartitionHealRearmsFailover runs the full-stack partition-healing
// scenario: h1 is cut off and convicted (its app re-homed), the partition
// heals, and the dead-member probe must bring h1 back to alive in every
// survivor's view — re-arming failover for a future, real death.
func TestPartitionHealRearmsFailover(t *testing.T) {
	mw := newFederatedDeployment(t)
	ctx := context.Background()
	for _, host := range []string{"h1", "h2", "h3"} {
		node, _ := mw.Cluster.Node(host)
		waitFor(t, 5*time.Second, host+" seeing 3 alive", func() bool {
			return len(node.AliveHosts()) == 3
		})
	}
	// The running record must replicate off lab1 before the cut: failover
	// plans against a surviving center, which can only re-home what it
	// has seen.
	for _, lab := range []string{"lab2", "lab3"} {
		center, _ := mw.Cluster.Center(lab)
		waitFor(t, 5*time.Second, "running record on "+lab, func() bool {
			rec, found, _ := center.LookupApp(ctx, "smart-media-player", "h1")
			return found && rec.Running
		})
	}

	mw.Net.Partition([]string{"h1"}, []string{"h2", "h3"})
	n2, _ := mw.Cluster.Node("h2")
	n3, _ := mw.Cluster.Node("h3")
	waitFor(t, 5*time.Second, "survivors convicting h1", func() bool {
		m2, _ := n2.Member("h1")
		m3, _ := n3.Member("h1")
		return m2.State == cluster.StateDead && m3.State == cluster.StateDead
	})
	// The app re-homes off h1 while it is cut off.
	if err := mw.WaitAppOn(context.Background(), "smart-media-player", "h2", 5*time.Second); err != nil {
		t.Fatal(err)
	}

	mw.Net.HealPartition()
	// No manual Rejoin: the periodic dead-member probes on both sides
	// must clear the certificates.
	for _, pair := range []struct {
		node *cluster.Node
		name string
	}{{n2, "h2"}, {n3, "h3"}} {
		node := pair.node
		waitFor(t, 10*time.Second, pair.name+" clearing h1's certificate", func() bool {
			m, _ := node.Member("h1")
			return m.State == cluster.StateAlive
		})
	}
	n1, _ := mw.Cluster.Node("h1")
	waitFor(t, 10*time.Second, "h1 regaining full membership", func() bool {
		return len(n1.AliveHosts()) == 3
	})

	// The revived h1 still held its pre-partition player instance — a
	// stale duplicate of the re-homed copy on h2. Reconciliation must
	// stop it, leaving exactly one live instance.
	rt1, _ := mw.Host("h1")
	waitFor(t, 10*time.Second, "h1 dropping its superseded instance", func() bool {
		_, still := rt1.Engine.App("smart-media-player")
		return !still
	})
	rt2, _ := mw.Host("h2")
	if inst, ok := rt2.Engine.App("smart-media-player"); !ok || inst.State() != app.Running {
		t.Fatal("re-homed copy on h2 disturbed by reconciliation")
	}
}
