package core

import (
	"context"
	"sync"
	"testing"
	"time"

	"mdagent/internal/app"
	"mdagent/internal/cluster"
	"mdagent/internal/ctxkernel"
	"mdagent/internal/demoapps"
	"mdagent/internal/media"
	"mdagent/internal/netsim"
	"mdagent/internal/wsdl"
)

func clusterTestConfig() *cluster.Config {
	return &cluster.Config{
		ProbeInterval:    2 * time.Millisecond,
		ProbeTimeout:     25 * time.Millisecond,
		SuspicionTimeout: 40 * time.Millisecond,
		SyncInterval:     5 * time.Millisecond,
		Seed:             11,
	}
}

func testDevice(host string) wsdl.DeviceProfile {
	return wsdl.DeviceProfile{
		Host: host, ScreenWidth: 1024, ScreenHeight: 768,
		MemoryMB: 512, HasAudio: true, HasDisplay: true,
	}
}

// newFederatedDeployment builds the churn testbed: three smart spaces,
// one host each, the media player running on h1 with its skeleton
// installed on h2 and h3.
func newFederatedDeployment(t *testing.T) *Middleware {
	t.Helper()
	mw, err := New(Config{Seed: 5, Cluster: clusterTestConfig()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mw.Close() })
	hosts := []string{"h1", "h2", "h3"}
	for i, host := range hosts {
		space := []string{"lab1", "lab2", "lab3"}[i]
		if err := mw.AddSpace(space); err != nil {
			t.Fatal(err)
		}
		// Inter-space traffic (gossip probes, federation digests, clone
		// wraps) requires each space to expose a gateway (paper Fig. 1).
		if err := mw.AddGateway("gw-"+space, space, netsim.Pentium4_1700()); err != nil {
			t.Fatal(err)
		}
		if _, err := mw.AddHost(host, space, netsim.Pentium4_1700(), testDevice(host), 0); err != nil {
			t.Fatal(err)
		}
	}
	song := media.GenerateFile("song1", 2_000_000, 3)
	rt1, _ := mw.Host("h1")
	rt1.Library.Add(song)
	if err := mw.RunApp("h1", demoapps.NewMediaPlayer("h1", song)); err != nil {
		t.Fatal(err)
	}
	if err := mw.RegisterResource(demoapps.MusicResource(song, "h1")); err != nil {
		t.Fatal(err)
	}
	for _, host := range []string{"h2", "h3"} {
		if err := mw.InstallApp(host, "smart-media-player", demoapps.MediaPlayerDesc(),
			demoapps.MediaPlayerSkeletonComponents(),
			func(h string) *app.Application { return demoapps.MediaPlayerSkeleton(h) }); err != nil {
			t.Fatal(err)
		}
	}
	return mw
}

func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestFederatedFailoverRehomesAcrossSpaces is the acceptance scenario:
// three federated spaces, the app's host killed by netsim fault
// injection, membership converging to dead within the suspicion window,
// and the app automatically re-homed — its registry records intact on a
// *different* space's center.
func TestFederatedFailoverRehomesAcrossSpaces(t *testing.T) {
	mw := newFederatedDeployment(t)
	ctx := context.Background()

	// Replication: h1's running record reaches lab3's center.
	lab3, ok := mw.Cluster.Center("lab3")
	if !ok {
		t.Fatal("no center for lab3")
	}
	// Both the running record AND the resource must replicate before the
	// kill: anything that only ever lived on the dying center is lost
	// (eventual consistency is not durability).
	waitFor(t, 5*time.Second, "replication of h1's records to lab3", func() bool {
		rec, found, _ := lab3.LookupApp(ctx, "smart-media-player", "h1")
		if !found || !rec.Running {
			return false
		}
		res, err := lab3.Registry().ResourcesOnHost("h1")
		return err == nil && len(res) == 1
	})

	// Membership: everyone sees three alive.
	for _, host := range []string{"h1", "h2", "h3"} {
		node, _ := mw.Cluster.Node(host)
		waitFor(t, 5*time.Second, host+" seeing 3 alive", func() bool {
			return len(node.AliveHosts()) == 3
		})
	}

	// Watch for the failure-detection and re-homing events.
	var evMu sync.Mutex
	events := make(map[string]ctxkernel.Event)
	mw.Kernel.Subscribe("cluster.*", func(ev ctxkernel.Event) {
		evMu.Lock()
		events[ev.Topic] = ev
		evMu.Unlock()
	})

	// Kill h1. Survivors must converge to dead within the configured
	// suspicion timeout (generous wall-time bound: the probe interval is
	// 2 ms and suspicion 40 ms, so seconds of slack are orders of margin).
	if err := mw.Net.SetHostDown("h1", true); err != nil {
		t.Fatal(err)
	}
	detectStart := time.Now()
	n2, _ := mw.Cluster.Node("h2")
	n3, _ := mw.Cluster.Node("h3")
	waitFor(t, 5*time.Second, "survivors declaring h1 dead", func() bool {
		m2, _ := n2.Member("h1")
		m3, _ := n3.Member("h1")
		return m2.State == cluster.StateDead && m3.State == cluster.StateDead
	})
	t.Logf("membership converged to dead in %v", time.Since(detectStart))

	// The app lands on a survivor. Both carry the same skeleton, so the
	// deterministic tiebreak picks h2.
	if err := mw.WaitAppOn("smart-media-player", "h2", 5*time.Second); err != nil {
		t.Fatal(err)
	}

	// Registry records intact on a different space's center: lab3 (whose
	// host h3 neither died nor received the app) sees the new home and no
	// stale record for the dead host.
	waitFor(t, 5*time.Second, "lab3 center seeing the re-homed record", func() bool {
		rec, found, _ := lab3.LookupApp(ctx, "smart-media-player", "h2")
		if !found || !rec.Running || rec.Space != "lab2" {
			return false
		}
		_, stale, _ := lab3.LookupApp(ctx, "smart-media-player", "h1")
		return !stale
	})
	// The resource registered on h1 is still known federation-wide.
	res, err := lab3.Registry().ResourcesOnHost("h1")
	if err != nil || len(res) != 1 {
		t.Fatalf("music resource lost from replicated registry: %v err=%v", res, err)
	}

	// The kernel narrated the incident.
	evMu.Lock()
	defer evMu.Unlock()
	if _, ok := events[TopicHostDead]; !ok {
		t.Error("no cluster.host-dead event published")
	}
	re, ok := events[TopicRehomed]
	if !ok {
		t.Fatal("no cluster.rehomed event published")
	}
	if re.Attr("app") != "smart-media-player" || re.Attr("from") != "h1" || re.Attr("to") != "h2" {
		t.Fatalf("rehomed event attrs = %v", re.Attrs)
	}
}

// TestIsolatedHostDoesNotStealApps drives the split-brain guard: the
// killed host's own node sees everyone else dead but has no quorum, so
// it must not re-home the survivors' applications onto itself.
func TestIsolatedHostDoesNotStealApps(t *testing.T) {
	mw := newFederatedDeployment(t)

	// Run a second app on h2 so the isolated h1 would have something to
	// steal if the guard failed.
	song := media.GenerateFile("song2", 1_000_000, 4)
	rt2, _ := mw.Host("h2")
	rt2.Library.Add(song)
	if err := mw.RunApp("h2", demoapps.NewHandheldPlayer("h2", song)); err != nil {
		t.Fatal(err)
	}

	for _, host := range []string{"h1", "h2", "h3"} {
		node, _ := mw.Cluster.Node(host)
		waitFor(t, 5*time.Second, host+" seeing 3 alive", func() bool {
			return len(node.AliveHosts()) == 3
		})
	}
	if err := mw.Net.SetHostDown("h1", true); err != nil {
		t.Fatal(err)
	}
	n1, _ := mw.Cluster.Node("h1")
	waitFor(t, 5*time.Second, "isolated h1 losing quorum", func() bool {
		return !n1.HasQuorum()
	})
	// Give h1 ample time to (wrongly) act; the app must stay put.
	time.Sleep(100 * time.Millisecond)
	rt1, _ := mw.Host("h1")
	if _, stolen := rt1.Engine.App("handheld-player"); stolen {
		t.Fatal("isolated host re-homed a survivor's app onto itself")
	}
	if _, ok := rt2.Engine.App("handheld-player"); !ok {
		t.Fatal("survivor lost its app")
	}
}
