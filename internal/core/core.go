// Package core assembles the four MDAgent layers (Fig. 2 — Sensor,
// Context, Agent, Application) into one middleware deployment. A
// Middleware models a whole pervasive environment: the simulated network
// of hosts and spaces, the Cricket sensor field, the context kernel with
// its classifier/monitor/fusion/predictor, the agent platform, a registry
// center, and one migration engine + media library per host. The root
// mdagent package re-exports this facade as the public API.
package core

import (
	"context"
	"crypto/ed25519"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"mdagent/internal/agents"
	"mdagent/internal/app"
	"mdagent/internal/bundle"
	"mdagent/internal/cluster"
	"mdagent/internal/ctl"
	"mdagent/internal/ctxkernel"
	"mdagent/internal/media"
	"mdagent/internal/migrate"
	"mdagent/internal/netsim"
	"mdagent/internal/owl"
	"mdagent/internal/platform"
	"mdagent/internal/registry"
	"mdagent/internal/sensor"
	"mdagent/internal/space"
	"mdagent/internal/state"
	"mdagent/internal/store"
	"mdagent/internal/transport"
	"mdagent/internal/vclock"
	"mdagent/internal/wsdl"
)

// Config parameterizes a Middleware deployment.
type Config struct {
	// Clock drives all costed operations. Nil defaults to a Virtual clock
	// starting at the Unix epoch (fast, deterministic). Use vclock.Real
	// to pace live demos.
	Clock vclock.Clock
	// Seed feeds the deterministic noise sources (default 1).
	Seed int64
	// Link is the default link profile (default: the paper's 10 Mbps
	// Ethernet).
	Link netsim.LinkProfile
	// Costs calibrates migration overheads (default: DefaultCosts).
	Costs migrate.CostProfile
	// SensorTick is the sampling period of the sensor walker
	// (default 500 ms).
	SensorTick time.Duration
	// StorePath persists the registry to a directory when non-empty.
	StorePath string
	// StoreOptions tunes the storage engine (sync policy, segment size,
	// blob threshold, shard count). Ignored when StorePath is empty.
	StoreOptions []store.Option
	// Cluster opts the deployment into the distribution layer: gossip
	// membership per host, one federated registry center per smart space
	// (replacing the single registry center as the engines' catalog), and
	// automatic failover re-homing of a dead host's applications. Nil
	// (the default) keeps the paper's single-center topology.
	Cluster *cluster.Config
	// TrustedKeys are the Ed25519 publisher keys this deployment accepts
	// signed app bundles from. Empty refuses every bundle (push and
	// install) with bundle.ErrUntrustedKey — trust is opt-in.
	TrustedKeys []ed25519.PublicKey
	// Secrets resolves the ref:// secret references a bundle's manifest
	// declares, at instantiation time. The zero Resolver reads only the
	// process environment.
	Secrets bundle.Resolver
}

// Kernel topics published by the cluster layer (canonical strings live in
// ctxkernel so the agent layer can subscribe without importing core).
const (
	// TopicHostDead fires when membership declares a host dead (with
	// quorum) and failover begins.
	TopicHostDead = ctxkernel.TopicClusterHostDead
	// TopicRehomed fires for each application relaunched on a survivor.
	TopicRehomed = ctxkernel.TopicClusterRehomed
	// TopicRehomeFailed fires when failover could not re-home an app.
	TopicRehomeFailed = ctxkernel.TopicClusterRehomeFailed
	// TopicSuperseded fires when a revived host stops its stale copy of
	// an app that was re-homed during its conviction (attrs: app, host).
	TopicSuperseded = ctxkernel.TopicClusterSuperseded
	// TopicStateReplicated fires per snapshot published by a host's
	// replicator (attrs: app, host, seq, bytes).
	TopicStateReplicated = ctxkernel.TopicStateReplicated
	// TopicStateRestored fires when failover restores a re-homed app from
	// a replicated snapshot (attrs: app, to, seq).
	TopicStateRestored = ctxkernel.TopicStateRestored
	// TopicClusterDurable fires when a synchronous-concern federation
	// write met its write concern (attrs: space, key, concern, acked,
	// required).
	TopicClusterDurable = ctxkernel.TopicClusterDurable
	// TopicClusterDegraded fires when a synchronous-concern federation
	// write fell short of its concern or skipped the wait because the
	// membership view said a quorum was unreachable (attrs: space, key,
	// concern, acked, required, degraded).
	TopicClusterDegraded = ctxkernel.TopicClusterDegraded
)

// HostRuntime is everything MDAgent runs on one host.
type HostRuntime struct {
	Host      string
	Space     string
	Engine    *migrate.Engine
	Container *platform.Container
	Library   *media.Library
	// Replicator streams this host's application snapshots to its space
	// center (nil unless Config.Cluster.ReplicateState).
	Replicator *state.Replicator
}

// Middleware is one MDAgent deployment.
type Middleware struct {
	cfg Config

	Clock      vclock.Clock
	Net        *netsim.Network
	Fabric     *transport.LocalFabric
	Registry   *registry.Registry
	Directory  *space.Directory
	Field      *sensor.Field
	Kernel     *ctxkernel.Kernel
	Classifier *ctxkernel.Classifier
	Monitor    *ctxkernel.Monitor
	Fusion     *ctxkernel.Fusion
	Predictor  *ctxkernel.Predictor
	Platform   *platform.Platform
	// Cluster is the distribution layer (nil unless Config.Cluster set).
	Cluster *cluster.Cluster

	mu    sync.Mutex
	hosts map[string]*HostRuntime
	db    *store.Store

	rehomeMu    sync.Mutex
	rehomed     map[string]bool   // dead hosts already re-homed (dedupes reporters)
	rehomeTries map[string]int    // failed attempts per dead host (bounded retry)
	centerHosts map[string]string // space -> host its center endpoint lives on
}

// maxRehomeAttempts bounds the failover retry loop for one dead host.
const maxRehomeAttempts = 5

// ignoreNotDurable treats a durability shortfall as success for callers
// that only need the write to land locally: the record still replicates
// via anti-entropy, and the shortfall already surfaced as a
// cluster.degraded kernel event. Callers that must KNOW the write is on
// peers (the replicator, the durability bench) check the error
// themselves.
func ignoreNotDurable(err error) error {
	if errors.Is(err, state.ErrNotDurable) {
		return nil
	}
	return err
}

// New builds an empty deployment from cfg.
func New(cfg Config) (*Middleware, error) {
	if cfg.Clock == nil {
		cfg.Clock = vclock.NewVirtual(time.Unix(0, 0))
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Link == (netsim.LinkProfile{}) {
		cfg.Link = netsim.Ethernet10()
	}
	if cfg.Costs == (migrate.CostProfile{}) {
		cfg.Costs = migrate.DefaultCosts()
	}
	if cfg.SensorTick <= 0 {
		cfg.SensorTick = 500 * time.Millisecond
	}

	db := store.OpenMemory()
	if cfg.StorePath != "" {
		var err error
		db, err = store.Open(cfg.StorePath, cfg.StoreOptions...)
		if err != nil {
			return nil, err
		}
	}
	reg, err := registry.New(db)
	if err != nil {
		return nil, err
	}

	net := netsim.New(cfg.Clock, netsim.WithSeed(cfg.Seed), netsim.WithDefaultLink(cfg.Link))
	fab := transport.NewLocalFabric(net)
	mw := &Middleware{
		cfg:        cfg,
		Clock:      cfg.Clock,
		Net:        net,
		Fabric:     fab,
		Registry:   reg,
		Directory:  space.NewDirectory(),
		Field:      sensor.NewField(cfg.Clock, sensor.WithFieldSeed(cfg.Seed)),
		Kernel:     ctxkernel.NewKernel(),
		Classifier: ctxkernel.NewClassifier(),
		Monitor:    ctxkernel.NewMonitor(ctxkernel.NewKernel()), // replaced below
		Predictor:  ctxkernel.NewPredictor(),
		Platform:   platform.NewPlatform(fab, net),
		hosts:      make(map[string]*HostRuntime),
		db:         db,
	}
	mw.Monitor = ctxkernel.NewMonitor(mw.Kernel)
	mw.Fusion = ctxkernel.NewFusion(mw.Field, mw.Kernel)
	mw.Classifier.AttachTo(mw.Kernel)
	mw.Predictor.AttachTo(mw.Kernel)

	// The registry center runs as a service on the fabric so remote
	// clients (cmd/mdagentd deployments) can reach it too.
	regEp, err := fab.Attach("registry-center", "")
	if err != nil {
		return nil, err
	}
	reg.Serve(regEp)

	if cfg.Cluster != nil {
		mw.Cluster = cluster.New(*cfg.Cluster)
		mw.rehomed = make(map[string]bool)
		mw.rehomeTries = make(map[string]int)
		mw.centerHosts = make(map[string]string)
		mw.Cluster.OnMemberChange(mw.onMemberChange)
		mw.Cluster.Start()
	}
	return mw, nil
}

// AddSpace declares a smart space.
func (m *Middleware) AddSpace(name string) error {
	return m.Directory.AddSpace(name)
}

// AddHost provisions a host: network node, space membership, device
// profile, migration engine, agent container, and media server.
func (m *Middleware) AddHost(host, spaceName string, profile netsim.HostProfile, dev wsdl.DeviceProfile, skew time.Duration) (*HostRuntime, error) {
	if _, err := m.Net.AddHost(host, spaceName, profile, skew); err != nil {
		return nil, err
	}
	if err := m.Directory.AddHost(host, spaceName); err != nil {
		return nil, err
	}
	dev.Host = host
	if err := m.Registry.RegisterDevice(dev); err != nil {
		return nil, err
	}
	cat := migrate.Catalog(migrate.Direct{R: m.Registry})
	var center *cluster.Center
	if m.Cluster != nil {
		var err error
		center, err = m.ensureCenter(spaceName, host)
		if err != nil {
			return nil, err
		}
		if err := ignoreNotDurable(center.RegisterDevice(context.Background(), dev)); err != nil {
			return nil, err
		}
		memberEp, err := m.Fabric.Attach(cluster.MemberEndpointName(host), host)
		if err != nil {
			return nil, err
		}
		node := m.Cluster.AddNode(host, spaceName, memberEp)
		m.rehomeMu.Lock()
		centerHere := m.centerHosts[spaceName] == host
		m.rehomeMu.Unlock()
		if centerHere {
			// The center is co-located with this host, so this host's
			// membership view is the center's reachability oracle: a peer
			// space's center is reachable while the host it lives on is
			// believed alive. Durable writes fail fast (degraded mode)
			// when the view says the concern is unmeetable, instead of
			// waiting out ack timeouts against a partitioned majority.
			center.SetReachable(func(peerSpace string) bool {
				m.rehomeMu.Lock()
				peerHost := m.centerHosts[peerSpace]
				m.rehomeMu.Unlock()
				if peerHost == "" {
					return true // unknown topology: assume reachable
				}
				mem, ok := node.Member(peerHost)
				return !ok || mem.State == cluster.StateAlive
			})
		}
		cat = center
	}
	ep, err := m.Fabric.Attach(migrate.EndpointName(host), host)
	if err != nil {
		return nil, err
	}
	eng := migrate.NewEngine(host, ep, m.Net, m.Directory, cat, m.cfg.Costs)
	cont, err := m.Platform.NewContainer("container@"+host, host)
	if err != nil {
		return nil, err
	}
	lib := media.NewLibrary(host)
	mediaEp, err := m.Fabric.Attach(migrate.MediaEndpointName(host), host)
	if err != nil {
		return nil, err
	}
	media.ServeLibrary(lib, mediaEp)

	rt := &HostRuntime{Host: host, Space: spaceName, Engine: eng, Container: cont, Library: lib}
	if center != nil && m.Cluster.Config().ReplicateState {
		ccfg := m.Cluster.Config()
		// RebaseEvery sits above the center's compaction threshold on
		// purpose: the center folds chains into fresh bases locally (no
		// wire cost), so the publisher's own full-frame re-baseline is a
		// safety net, not the steady-state bound.
		rep := state.NewReplicator(host, spaceName, eng.Apps, center, m.Clock,
			ccfg.ReplicateInterval, state.Tuning{
				RebaseEvery:       2 * ccfg.MaxDeltaChain,
				BudgetBytesPerSec: ccfg.ReplicateBudget,
				FullFrames:        ccfg.FullSnapshotFrames,
			})
		rep.OnPublish(func(put state.SnapshotPut, stamp state.SnapshotStamp) {
			kind := "full"
			if put.Delta {
				kind = "delta"
			}
			m.Kernel.PublishTyped("state", ctxkernel.StateReplicatedEvent{
				App: put.App, Host: put.Host, FrameKind: kind,
				Seq: stamp.Seq, Bytes: len(put.Frame), Chain: stamp.Chain,
				At: put.At,
			})
		})
		rep.Start()
		rt.Replicator = rep
	}
	m.mu.Lock()
	m.hosts[host] = rt
	m.mu.Unlock()
	return rt, nil
}

// ensureCenter lazily creates a space's federated registry center,
// co-locating its endpoint on the space's first provisioned host — when
// that host dies, the space's center dies with it, and lookups must be
// served by the surviving spaces' replicas (the paper's one-center-per-
// space topology, made crash-honest).
func (m *Middleware) ensureCenter(spaceName, host string) (*cluster.Center, error) {
	if center, ok := m.Cluster.Center(spaceName); ok {
		return center, nil
	}
	reg, err := registry.New(store.OpenMemory())
	if err != nil {
		return nil, err
	}
	ep, err := m.Fabric.Attach(cluster.CenterEndpointName(spaceName), host)
	if err != nil {
		return nil, err
	}
	m.rehomeMu.Lock()
	m.centerHosts[spaceName] = host
	m.rehomeMu.Unlock()
	center := m.Cluster.AddCenter(spaceName, reg, ep)
	center.OnDurability(func(ev cluster.DurabilityEvent) {
		m.Kernel.PublishTyped("cluster", ctxkernel.FederationWriteEvent{
			Space: spaceName, Key: ev.Key, Concern: string(ev.Concern),
			Acked: ev.Acked, Required: ev.Required,
			Durable: ev.Durable, Degraded: ev.Degraded, At: m.Clock.Now(),
		})
	})
	return center, nil
}

// onMemberChange reacts to gossip transitions: a dead declaration from a
// reporter that still holds quorum triggers failover re-homing, once per
// dead host no matter how many survivors report it. A failed attempt
// clears the dedupe flag and schedules a bounded retry — a transiently
// unreachable center or a mid-conviction race must not strand the dead
// host's applications forever.
func (m *Middleware) onMemberChange(reporter *cluster.Node, mem cluster.Member) {
	// Every transition is mirrored onto the kernel as a typed event (one
	// per reporting node — a Watch stream sees convictions converge).
	m.Kernel.PublishTyped("cluster", ctxkernel.MemberEvent{
		Host: mem.ID, Space: mem.Space, State: mem.State.String(),
		Incarnation: mem.Incarnation, At: m.Clock.Now(),
	})
	if mem.State == cluster.StateAlive {
		// A host coming back (healed partition, refuted rumor, restart)
		// re-arms failover for it: a later, real death must re-home again.
		// If its apps were re-homed while it was convicted, its local
		// copies are stale duplicates now — reconcile them away.
		m.rehomeMu.Lock()
		wasRehomed := m.rehomed[mem.ID]
		delete(m.rehomed, mem.ID)
		delete(m.rehomeTries, mem.ID)
		m.rehomeMu.Unlock()
		if wasRehomed {
			go m.reconcileRevived(mem.ID)
		}
		return
	}
	if mem.State != cluster.StateDead || !reporter.HasQuorum() {
		return
	}
	m.rehomeMu.Lock()
	if m.rehomed[mem.ID] {
		m.rehomeMu.Unlock()
		return
	}
	m.rehomed[mem.ID] = true
	m.rehomeMu.Unlock()
	// Off the gossip goroutine: re-homing talks to engines and centers.
	go m.rehomeAttempt(reporter, mem.ID)
}

// rehomeAttempt runs one failover attempt and schedules a retry with
// backoff on failure, up to maxRehomeAttempts.
func (m *Middleware) rehomeAttempt(reporter *cluster.Node, deadHost string) {
	if m.rehomeDead(reporter, deadHost) {
		return
	}
	m.rehomeMu.Lock()
	m.rehomeTries[deadHost]++
	tries := m.rehomeTries[deadHost]
	exhausted := tries >= maxRehomeAttempts
	if !exhausted {
		delete(m.rehomed, deadHost) // let a concurrent reporter claim it
	}
	m.rehomeMu.Unlock()
	if exhausted {
		return
	}
	delay := m.Cluster.Config().SuspicionTimeout * time.Duration(tries)
	time.AfterFunc(delay, func() {
		m.rehomeMu.Lock()
		claimed := m.rehomed[deadHost]
		if !claimed {
			m.rehomed[deadHost] = true
		}
		m.rehomeMu.Unlock()
		if !claimed {
			m.rehomeAttempt(reporter, deadHost)
		}
	})
}

// rehomeDead relaunches every application the dead host was running on
// the best surviving host, planning against a surviving space center:
// centers are co-located with their space's first host, so the dead
// host may have taken its own space's center down with it — pick a
// replica whose host the reporter still sees alive.
func (m *Middleware) rehomeDead(reporter *cluster.Node, deadHost string) bool {
	// Last-chance liveness check: a stale death certificate landing after
	// a healed partition can convict a host that is actually up, and
	// re-homing a live host's applications creates duplicates. If the
	// "dead" host answers a direct probe, abort — the ack already carried
	// its refutation, and the alive transition re-arms failover.
	if !reporter.ConfirmDead(deadHost) {
		m.rehomeMu.Lock()
		delete(m.rehomed, deadHost)
		m.rehomeMu.Unlock()
		return true
	}
	now := m.Clock.Now()
	m.Kernel.PublishTyped("cluster", ctxkernel.HostDeadEvent{
		Host: deadHost, Reporter: reporter.Self().ID, At: now,
	})
	center, ok := m.survivingCenter(reporter, deadHost)
	if !ok {
		m.Kernel.PublishTyped("cluster", ctxkernel.RehomeFailedEvent{
			Host: deadHost, Error: "no surviving registry center", At: now,
		})
		return false
	}
	f := &cluster.Failover{
		Center: center, Alive: reporter.AliveHosts, Launch: m.relaunch,
		RestoreState: m.Cluster.Config().ReplicateState,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	done, err := f.Rehome(ctx, deadHost)
	for _, r := range done {
		m.Kernel.PublishTyped("cluster", ctxkernel.RehomedEvent{
			App: r.App, From: r.From, To: r.To, Space: r.NewSpace,
			Restored: r.Restored, At: m.Clock.Now(),
		})
		if r.Restored {
			m.Kernel.PublishTyped("cluster", ctxkernel.StateRestoredEvent{
				App: r.App, To: r.To, Seq: r.SnapshotSeq, At: m.Clock.Now(),
			})
		}
	}
	if err != nil {
		m.Kernel.PublishTyped("cluster", ctxkernel.RehomeFailedEvent{
			Host: deadHost, Error: err.Error(), At: m.Clock.Now(),
		})
		return false
	}
	return true
}

// reconcileRevived stops a returned host's superseded application
// copies: while the host was (falsely) convicted, failover re-homed its
// running apps onto survivors and tombstoned their records here, so the
// returning instances are stale duplicates — without this, the same app
// runs live on two hosts and (with ReplicateState) both replicators
// fight over one snapshot key. The revived host's own center may itself
// still be catching up on the federation history, so poll for a bounded
// number of anti-entropy rounds before giving up. The local instance is
// suspended and removed but its snapshot is NOT tombstoned: the snapshot
// key now belongs to the app's new home.
func (m *Middleware) reconcileRevived(host string) {
	rt, ok := m.Host(host)
	if !ok || m.Cluster == nil {
		return
	}
	center, ok := m.Cluster.Center(rt.Space)
	if !ok {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	syncInterval := m.Cluster.Config().SyncInterval
	// Poll the FULL window: "the registry says this host still owns it"
	// is exactly what this host's center reports before anti-entropy
	// delivers the failover tombstone, so a clean-looking round proves
	// nothing — only an empty engine ends reconciliation early.
	for round := 0; round < 100; round++ {
		apps := rt.Engine.Apps()
		if len(apps) == 0 {
			return
		}
		for _, inst := range apps {
			name := inst.Name()
			rec, found, err := center.LookupApp(ctx, name, host)
			runningHere := err == nil && found && rec.Running
			if runningHere {
				continue // possibly stale; re-checked next round
			}
			installs, err := center.Registry().FindApp(name)
			if err != nil {
				continue
			}
			elsewhere := ""
			for _, other := range installs {
				if other.Host != host && other.Running {
					elsewhere = other.Host
					break
				}
			}
			if elsewhere == "" {
				continue // tombstone seen but no new home yet: wait
			}
			// Tombstoned here, running elsewhere: our copy is stale.
			if inst.State() == app.Running {
				_ = inst.Suspend()
			}
			rt.Engine.Remove(name)
			// The stale replica's snapshots may have won the federation's
			// latest slot (its capture sequence kept growing during the
			// partition); force the new home to republish past them.
			if ort, ok := m.Host(elsewhere); ok && ort.Replicator != nil {
				ort.Replicator.ForceRepublish(name)
			}
			m.Kernel.PublishTyped("cluster", ctxkernel.SupersededEvent{
				App: name, Host: host, RunningOn: elsewhere, At: m.Clock.Now(),
			})
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(syncInterval):
		}
	}
}

// survivingCenter picks a registry center whose co-located host the
// reporter believes alive, preferring the reporter's own space and
// falling back through the remaining spaces in sorted order.
func (m *Middleware) survivingCenter(reporter *cluster.Node, deadHost string) (*cluster.Center, bool) {
	spaces := append([]string{reporter.Self().Space}, m.Cluster.Spaces()...)
	for _, space := range spaces {
		m.rehomeMu.Lock()
		host := m.centerHosts[space]
		m.rehomeMu.Unlock()
		if host == "" || host == deadHost {
			continue
		}
		if mem, ok := reporter.Member(host); !ok || mem.State != cluster.StateAlive {
			continue
		}
		if center, ok := m.Cluster.Center(space); ok {
			return center, true
		}
	}
	return nil, false
}

// relaunch restores one application on the chosen survivor: through the
// host's installed skeleton factory when one exists (the clone-dispatch
// arrival machinery), else as a bare instance rebuilt from the replicated
// interface description. When a replicated snapshot rides along, it is
// unwrapped into the new instance before resumption, so the application
// continues from its last replicated state instead of a blank skeleton.
func (m *Middleware) relaunch(rec registry.AppRecord, target string, snap *state.SnapshotRecord) (registry.AppRecord, bool, error) {
	rt, ok := m.Host(target)
	if !ok {
		return registry.AppRecord{}, false, fmt.Errorf("core: unknown failover target %q", target)
	}
	// Idempotent: a retried failover may find the app already relaunched
	// here by an earlier partial attempt — that is success, not a
	// duplicate-run error (and its live state must not be clobbered by a
	// re-applied snapshot).
	if existing, ok := rt.Engine.App(rec.Name); ok {
		if existing.State() == app.Suspended {
			if err := existing.Resume(); err != nil {
				return registry.AppRecord{}, false, err
			}
		}
		return registry.AppRecord{
			Name: rec.Name, Host: target, Space: rt.Space,
			Description: rec.Description, Components: existing.Components(), Running: true,
		}, false, nil
	}
	var inst *app.Application
	if factory, ok := rt.Engine.Factory(rec.Name); ok {
		inst = factory(target)
	} else {
		inst = app.New(rec.Name, target, rec.Description)
	}
	restored := false
	if snap != nil {
		ts, err := snap.Snapshot()
		// A frame that fails its checksum degrades to a skeleton
		// relaunch; failover validated it, so an error here is a race
		// with nothing better to fall back to anyway.
		if err == nil && ts.Wrap.App == rec.Name {
			if inst.State() == app.Running {
				if err := inst.Suspend(); err != nil {
					return registry.AppRecord{}, false, err
				}
			}
			if err := inst.Unwrap(ts.Wrap); err != nil {
				return registry.AppRecord{}, false, fmt.Errorf("core: restore snapshot for %s: %w", rec.Name, err)
			}
			inst.SetHost(target)
			restored = true
		}
	}
	if inst.State() == app.Suspended {
		if err := inst.Resume(); err != nil {
			return registry.AppRecord{}, false, err
		}
	}
	if err := rt.Engine.Run(inst); err != nil {
		return registry.AppRecord{}, false, err
	}
	if rt.Replicator != nil {
		rt.Replicator.Reinstate(rec.Name)
	}
	return registry.AppRecord{
		Name: rec.Name, Host: target, Space: rt.Space,
		Description: rec.Description, Components: inst.Components(), Running: true,
	}, restored, nil
}

// AddGateway provisions a gateway host bridging its space.
func (m *Middleware) AddGateway(host, spaceName string, profile netsim.HostProfile) error {
	if _, err := m.Net.AddGateway(host, spaceName, profile); err != nil {
		return err
	}
	if err := m.Directory.AddHost(host, spaceName); err != nil {
		return err
	}
	return m.Directory.SetGateway(spaceName, host)
}

// Host returns a host runtime.
func (m *Middleware) Host(host string) (*HostRuntime, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rt, ok := m.hosts[host]
	return rt, ok
}

// Hosts lists provisioned host ids, sorted.
func (m *Middleware) Hosts() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.hosts))
	for h := range m.hosts {
		out = append(out, h)
	}
	sort.Strings(out)
	return out
}

// AddRoom places a room (with its Cricket beacon) at a position and
// assigns the serving host.
func (m *Middleware) AddRoom(room, host string, center sensor.Point) error {
	if err := m.Directory.AssignRoom(room, host); err != nil {
		return err
	}
	m.Field.AddRoom(room, center)
	return nil
}

// AddUser registers a badge-wearing user starting in a room.
func (m *Middleware) AddUser(user, badge, room string) error {
	return m.Field.AddBadge(badge, user, room)
}

// RunApp starts a constructed application on a host and registers it.
func (m *Middleware) RunApp(ctx context.Context, host string, inst *app.Application) error {
	rt, ok := m.Host(host)
	if !ok {
		return fmt.Errorf("core: %w: %q", ctl.ErrUnknownHost, host)
	}
	if err := rt.Engine.Run(inst); err != nil {
		return err
	}
	if rt.Replicator != nil {
		// A restart after a graceful stop lifts the snapshot retirement.
		rt.Replicator.Reinstate(inst.Name())
	}
	if err := m.registerApp(ctx, registry.AppRecord{
		Name: inst.Name(), Host: host, Space: rt.Space,
		Description: inst.Description(), Components: inst.Components(),
		Running: true,
	}); err != nil {
		return err
	}
	m.Kernel.PublishTyped("core", ctxkernel.AppStartedEvent{
		App: inst.Name(), Host: host, At: m.Clock.Now(),
	})
	return nil
}

// StopApp gracefully stops a running application on a host: the instance
// is suspended and removed from the engine, its replicated snapshot is
// tombstoned (so failover never resurrects a deliberately stopped app),
// and its registry record is unregistered — federation-wide when
// clustered.
func (m *Middleware) StopApp(ctx context.Context, host, appName string) error {
	rt, ok := m.Host(host)
	if !ok {
		return fmt.Errorf("core: %w: %q", ctl.ErrUnknownHost, host)
	}
	// Remove from the engine LAST: if retiring or unregistering fails
	// mid-way, the app must stay addressable so a retried StopApp can
	// complete the tombstone path instead of erroring on a ghost.
	inst, ok := rt.Engine.App(appName)
	if !ok {
		return fmt.Errorf("core: %w: no running app %q on %s", ctl.ErrAppNotFound, appName, host)
	}
	if inst.State() == app.Running {
		if err := inst.Suspend(); err != nil {
			return err
		}
	}
	ctx, cancel := context.WithTimeout(ctx, 15*time.Second)
	defer cancel()
	stopRecords := func() error {
		if m.Cluster != nil {
			if center, ok := m.Cluster.Center(rt.Space); ok {
				if rt.Replicator != nil {
					if err := ignoreNotDurable(rt.Replicator.Retire(ctx, appName)); err != nil {
						return err
					}
				}
				return ignoreNotDurable(center.UnregisterApp(ctx, appName, host))
			}
		}
		return m.Registry.UnregisterApp(appName, host)
	}
	if err := stopRecords(); err != nil {
		return err
	}
	rt.Engine.Remove(appName)
	m.Kernel.PublishTyped("core", ctxkernel.AppStoppedEvent{
		App: appName, Host: host, At: m.Clock.Now(),
	})
	return nil
}

// registerApp records an installation at the host's space center when
// clustered, else at the single registry center.
func (m *Middleware) registerApp(ctx context.Context, rec registry.AppRecord) error {
	if m.Cluster != nil {
		if center, ok := m.Cluster.Center(rec.Space); ok {
			return ignoreNotDurable(center.RegisterApp(ctx, rec))
		}
	}
	return m.Registry.RegisterApp(rec)
}

// InstallApp provisions an application skeleton factory on a host (the
// "application exists at destination" case) and records the installed
// components at the registry.
func (m *Middleware) InstallApp(ctx context.Context, host, appName string, desc wsdl.Description, components []string, factory func(host string) *app.Application) error {
	rt, ok := m.Host(host)
	if !ok {
		return fmt.Errorf("core: %w: %q", ctl.ErrUnknownHost, host)
	}
	rt.Engine.InstallFactory(appName, factory)
	return m.registerApp(ctx, registry.AppRecord{
		Name: appName, Host: host, Space: rt.Space,
		Description: desc, Components: components,
	})
}

// RegisterResource records a resource in the registry center — the
// owning host's space center when clustered (whence it replicates to
// every space), else the single center.
func (m *Middleware) RegisterResource(res owl.Resource) error {
	if m.Cluster != nil {
		if space, ok := m.Directory.SpaceOfHost(res.Host); ok {
			if center, ok := m.Cluster.Center(space); ok {
				return ignoreNotDurable(center.RegisterResource(context.Background(), res))
			}
		}
	}
	return m.Registry.RegisterResource(res)
}

// FindApp returns the host currently running an application instance, if
// any engine holds it.
func (m *Middleware) FindApp(appName string) (*app.Application, string, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for h, rt := range m.hosts {
		if inst, ok := rt.Engine.App(appName); ok {
			return inst, h, true
		}
	}
	return nil, "", false
}

// StartAgents deploys an MA manager on every host (once) and an AA for
// the (user, app) policy on every host — whichever host currently runs
// the app reacts, so follow-me works across any number of hops (the
// paper's per-host AA/MA managers, Fig. 2). Cancellation is checked
// between hosts.
func (m *Middleware) StartAgents(ctx context.Context, policy agents.Policy) error {
	m.mu.Lock()
	hosts := make([]*HostRuntime, 0, len(m.hosts))
	for _, rt := range m.hosts {
		hosts = append(hosts, rt)
	}
	m.mu.Unlock()
	sort.Slice(hosts, func(i, j int) bool { return hosts[i].Host < hosts[j].Host })
	for _, rt := range hosts {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("core: start agents interrupted: %w", err)
		}
		maName := "ma@" + rt.Host
		if _, ok := rt.Container.Agent(maName); !ok {
			if _, err := agents.StartMobileAgent(rt.Container, maName, rt.Engine); err != nil {
				return err
			}
		}
		aaName := fmt.Sprintf("aa@%s/%s@%s", policy.User, policy.App, rt.Host)
		body := &agents.AutonomousBody{
			Policy: policy, Kernel: m.Kernel, Dir: m.Directory,
			Net: m.Net, Engine: rt.Engine, MAName: maName, Locator: m.Fusion,
		}
		if _, err := agents.StartAutonomousAgent(rt.Container, aaName, body); err != nil {
			return err
		}
	}
	return nil
}

// Walk replays a movement script through the sensor field and fusion,
// driving the whole context -> agent -> migration pipeline.
func (m *Middleware) Walk(ctx context.Context, script sensor.Script) error {
	w := sensor.NewWalker(m.Field, m.cfg.SensorTick)
	return w.Run(ctx, script, m.Fusion.Consume)
}

// Migrate follow-mes a running application to destHost with the given
// binding mode, planning against the deployment's catalog, and reports
// the outcome on the kernel as a typed app.migrated / app.migrate-failed
// event — the control plane's migration entry point, sharing the agents'
// event contract so a Watch stream sees operator- and agent-driven moves
// identically.
func (m *Middleware) Migrate(ctx context.Context, appName, destHost string, binding migrate.BindingMode) (migrate.Report, error) {
	_, srcHost, ok := m.FindApp(appName)
	if !ok {
		return migrate.Report{}, fmt.Errorf("core: %w: %q is not running anywhere", ctl.ErrAppNotFound, appName)
	}
	if _, ok := m.Host(destHost); !ok {
		return migrate.Report{}, fmt.Errorf("core: %w: %q", ctl.ErrUnknownHost, destHost)
	}
	rt, _ := m.Host(srcHost)
	rep, err := rt.Engine.FollowMe(ctx, appName, destHost, binding, owl.MatchSemantic)
	now := m.Clock.Now()
	if err != nil {
		m.Kernel.PublishTyped("core", ctxkernel.AppMigrateFailedEvent{
			App: appName, Dest: destHost, Reason: "control plane", Error: err.Error(), At: now,
		})
		return migrate.Report{}, err
	}
	m.Kernel.PublishTyped("core", ctxkernel.AppMigratedEvent{
		App: appName, Dest: destHost, Mode: migrate.FollowMe.String(), Reason: "control plane",
		SuspendMs: rep.Suspend.Milliseconds(), MigrateMs: rep.Migrate.Milliseconds(),
		ResumeMs: rep.Resume.Milliseconds(), Bytes: rep.BytesMoved, At: now,
	})
	return rep, nil
}

// WaitAppOn blocks until the app runs on host, the timeout expires, or
// ctx is canceled — migrations triggered by agents complete
// asynchronously to Walk. It waits on kernel events that signal an
// arrival (app.started, app.migrated, cluster.rehomed) and re-checks the
// engine on each; a coarse poll remains only as a fallback for arrival
// paths that bypass the kernel. A zero timeout waits on ctx alone.
func (m *Middleware) WaitAppOn(ctx context.Context, appName, host string, timeout time.Duration) error {
	rt, ok := m.Host(host)
	if !ok {
		return fmt.Errorf("core: %w: %q", ctl.ErrUnknownHost, host)
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	running := func() bool {
		inst, ok := rt.Engine.App(appName)
		return ok && inst.State() == app.Running
	}
	// Subscribe before the first check so an arrival between check and
	// wait cannot be missed.
	kick := make(chan struct{}, 1)
	arrivalTopics := []string{
		ctxkernel.TopicAppStarted, ctxkernel.TopicAppMigrated, ctxkernel.TopicClusterRehomed,
	}
	subs := make([]int, 0, len(arrivalTopics))
	for _, topic := range arrivalTopics {
		subs = append(subs, m.Kernel.Subscribe(topic, func(ev ctxkernel.Event) {
			if ev.Attr("app") != appName {
				return
			}
			select {
			case kick <- struct{}{}:
			default:
			}
		}))
	}
	defer func() {
		for _, id := range subs {
			m.Kernel.Unsubscribe(id)
		}
	}()
	// Fallback poll: resume-after-suspend and direct engine runs do not
	// cross the kernel; a coarse tick covers them without the old 1 ms
	// busy-wait.
	fallback := time.NewTicker(25 * time.Millisecond)
	defer fallback.Stop()
	for {
		if running() {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("core: %s not running on %s: %w", appName, host, ctx.Err())
		case <-kick:
		case <-fallback.C:
		}
	}
}

// Close tears the deployment down.
func (m *Middleware) Close() error {
	m.mu.Lock()
	reps := make([]*state.Replicator, 0, len(m.hosts))
	for _, rt := range m.hosts {
		if rt.Replicator != nil {
			reps = append(reps, rt.Replicator)
		}
	}
	m.mu.Unlock()
	for _, rep := range reps {
		rep.Stop()
	}
	if m.Cluster != nil {
		m.Cluster.Stop()
	}
	err := m.Fabric.Close()
	if cerr := m.db.Close(); err == nil {
		err = cerr
	}
	return err
}
