// Package core assembles the four MDAgent layers (Fig. 2 — Sensor,
// Context, Agent, Application) into one middleware deployment. A
// Middleware models a whole pervasive environment: the simulated network
// of hosts and spaces, the Cricket sensor field, the context kernel with
// its classifier/monitor/fusion/predictor, the agent platform, a registry
// center, and one migration engine + media library per host. The root
// mdagent package re-exports this facade as the public API.
package core

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"mdagent/internal/agents"
	"mdagent/internal/app"
	"mdagent/internal/ctxkernel"
	"mdagent/internal/media"
	"mdagent/internal/migrate"
	"mdagent/internal/netsim"
	"mdagent/internal/owl"
	"mdagent/internal/platform"
	"mdagent/internal/registry"
	"mdagent/internal/sensor"
	"mdagent/internal/space"
	"mdagent/internal/store"
	"mdagent/internal/transport"
	"mdagent/internal/vclock"
	"mdagent/internal/wsdl"
)

// Config parameterizes a Middleware deployment.
type Config struct {
	// Clock drives all costed operations. Nil defaults to a Virtual clock
	// starting at the Unix epoch (fast, deterministic). Use vclock.Real
	// to pace live demos.
	Clock vclock.Clock
	// Seed feeds the deterministic noise sources (default 1).
	Seed int64
	// Link is the default link profile (default: the paper's 10 Mbps
	// Ethernet).
	Link netsim.LinkProfile
	// Costs calibrates migration overheads (default: DefaultCosts).
	Costs migrate.CostProfile
	// SensorTick is the sampling period of the sensor walker
	// (default 500 ms).
	SensorTick time.Duration
	// StorePath persists the registry to a file when non-empty.
	StorePath string
}

// HostRuntime is everything MDAgent runs on one host.
type HostRuntime struct {
	Host      string
	Space     string
	Engine    *migrate.Engine
	Container *platform.Container
	Library   *media.Library
}

// Middleware is one MDAgent deployment.
type Middleware struct {
	cfg Config

	Clock      vclock.Clock
	Net        *netsim.Network
	Fabric     *transport.LocalFabric
	Registry   *registry.Registry
	Directory  *space.Directory
	Field      *sensor.Field
	Kernel     *ctxkernel.Kernel
	Classifier *ctxkernel.Classifier
	Monitor    *ctxkernel.Monitor
	Fusion     *ctxkernel.Fusion
	Predictor  *ctxkernel.Predictor
	Platform   *platform.Platform

	mu    sync.Mutex
	hosts map[string]*HostRuntime
	db    *store.Store
}

// New builds an empty deployment from cfg.
func New(cfg Config) (*Middleware, error) {
	if cfg.Clock == nil {
		cfg.Clock = vclock.NewVirtual(time.Unix(0, 0))
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Link == (netsim.LinkProfile{}) {
		cfg.Link = netsim.Ethernet10()
	}
	if cfg.Costs == (migrate.CostProfile{}) {
		cfg.Costs = migrate.DefaultCosts()
	}
	if cfg.SensorTick <= 0 {
		cfg.SensorTick = 500 * time.Millisecond
	}

	db := store.OpenMemory()
	if cfg.StorePath != "" {
		var err error
		db, err = store.Open(cfg.StorePath)
		if err != nil {
			return nil, err
		}
	}
	reg, err := registry.New(db)
	if err != nil {
		return nil, err
	}

	net := netsim.New(cfg.Clock, netsim.WithSeed(cfg.Seed), netsim.WithDefaultLink(cfg.Link))
	fab := transport.NewLocalFabric(net)
	mw := &Middleware{
		cfg:        cfg,
		Clock:      cfg.Clock,
		Net:        net,
		Fabric:     fab,
		Registry:   reg,
		Directory:  space.NewDirectory(),
		Field:      sensor.NewField(cfg.Clock, sensor.WithFieldSeed(cfg.Seed)),
		Kernel:     ctxkernel.NewKernel(),
		Classifier: ctxkernel.NewClassifier(),
		Monitor:    ctxkernel.NewMonitor(ctxkernel.NewKernel()), // replaced below
		Predictor:  ctxkernel.NewPredictor(),
		Platform:   platform.NewPlatform(fab, net),
		hosts:      make(map[string]*HostRuntime),
		db:         db,
	}
	mw.Monitor = ctxkernel.NewMonitor(mw.Kernel)
	mw.Fusion = ctxkernel.NewFusion(mw.Field, mw.Kernel)
	mw.Classifier.AttachTo(mw.Kernel)
	mw.Predictor.AttachTo(mw.Kernel)

	// The registry center runs as a service on the fabric so remote
	// clients (cmd/mdagentd deployments) can reach it too.
	regEp, err := fab.Attach("registry-center", "")
	if err != nil {
		return nil, err
	}
	reg.Serve(regEp)
	return mw, nil
}

// AddSpace declares a smart space.
func (m *Middleware) AddSpace(name string) error {
	return m.Directory.AddSpace(name)
}

// AddHost provisions a host: network node, space membership, device
// profile, migration engine, agent container, and media server.
func (m *Middleware) AddHost(host, spaceName string, profile netsim.HostProfile, dev wsdl.DeviceProfile, skew time.Duration) (*HostRuntime, error) {
	if _, err := m.Net.AddHost(host, spaceName, profile, skew); err != nil {
		return nil, err
	}
	if err := m.Directory.AddHost(host, spaceName); err != nil {
		return nil, err
	}
	dev.Host = host
	if err := m.Registry.RegisterDevice(dev); err != nil {
		return nil, err
	}
	ep, err := m.Fabric.Attach(migrate.EndpointName(host), host)
	if err != nil {
		return nil, err
	}
	eng := migrate.NewEngine(host, ep, m.Net, m.Directory, migrate.Direct{R: m.Registry}, m.cfg.Costs)
	cont, err := m.Platform.NewContainer("container@"+host, host)
	if err != nil {
		return nil, err
	}
	lib := media.NewLibrary(host)
	mediaEp, err := m.Fabric.Attach(migrate.MediaEndpointName(host), host)
	if err != nil {
		return nil, err
	}
	media.ServeLibrary(lib, mediaEp)

	rt := &HostRuntime{Host: host, Space: spaceName, Engine: eng, Container: cont, Library: lib}
	m.mu.Lock()
	m.hosts[host] = rt
	m.mu.Unlock()
	return rt, nil
}

// AddGateway provisions a gateway host bridging its space.
func (m *Middleware) AddGateway(host, spaceName string, profile netsim.HostProfile) error {
	if _, err := m.Net.AddGateway(host, spaceName, profile); err != nil {
		return err
	}
	if err := m.Directory.AddHost(host, spaceName); err != nil {
		return err
	}
	return m.Directory.SetGateway(spaceName, host)
}

// Host returns a host runtime.
func (m *Middleware) Host(host string) (*HostRuntime, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rt, ok := m.hosts[host]
	return rt, ok
}

// Hosts lists provisioned host ids, sorted.
func (m *Middleware) Hosts() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.hosts))
	for h := range m.hosts {
		out = append(out, h)
	}
	sort.Strings(out)
	return out
}

// AddRoom places a room (with its Cricket beacon) at a position and
// assigns the serving host.
func (m *Middleware) AddRoom(room, host string, center sensor.Point) error {
	if err := m.Directory.AssignRoom(room, host); err != nil {
		return err
	}
	m.Field.AddRoom(room, center)
	return nil
}

// AddUser registers a badge-wearing user starting in a room.
func (m *Middleware) AddUser(user, badge, room string) error {
	return m.Field.AddBadge(badge, user, room)
}

// RunApp starts a constructed application on a host and registers it.
func (m *Middleware) RunApp(host string, inst *app.Application) error {
	rt, ok := m.Host(host)
	if !ok {
		return fmt.Errorf("core: unknown host %q", host)
	}
	if err := rt.Engine.Run(inst); err != nil {
		return err
	}
	return m.Registry.RegisterApp(registry.AppRecord{
		Name: inst.Name(), Host: host, Space: rt.Space,
		Description: inst.Description(), Components: inst.Components(),
	})
}

// InstallApp provisions an application skeleton factory on a host (the
// "application exists at destination" case) and records the installed
// components at the registry.
func (m *Middleware) InstallApp(host, appName string, desc wsdl.Description, components []string, factory func(host string) *app.Application) error {
	rt, ok := m.Host(host)
	if !ok {
		return fmt.Errorf("core: unknown host %q", host)
	}
	rt.Engine.InstallFactory(appName, factory)
	return m.Registry.RegisterApp(registry.AppRecord{
		Name: appName, Host: host, Space: rt.Space,
		Description: desc, Components: components,
	})
}

// RegisterResource records a resource in the registry center.
func (m *Middleware) RegisterResource(res owl.Resource) error {
	return m.Registry.RegisterResource(res)
}

// FindApp returns the host currently running an application instance, if
// any engine holds it.
func (m *Middleware) FindApp(appName string) (*app.Application, string, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for h, rt := range m.hosts {
		if inst, ok := rt.Engine.App(appName); ok {
			return inst, h, true
		}
	}
	return nil, "", false
}

// StartAgents deploys an MA manager on every host (once) and an AA for
// the (user, app) policy on every host — whichever host currently runs
// the app reacts, so follow-me works across any number of hops (the
// paper's per-host AA/MA managers, Fig. 2).
func (m *Middleware) StartAgents(policy agents.Policy) error {
	m.mu.Lock()
	hosts := make([]*HostRuntime, 0, len(m.hosts))
	for _, rt := range m.hosts {
		hosts = append(hosts, rt)
	}
	m.mu.Unlock()
	sort.Slice(hosts, func(i, j int) bool { return hosts[i].Host < hosts[j].Host })
	for _, rt := range hosts {
		maName := "ma@" + rt.Host
		if _, ok := rt.Container.Agent(maName); !ok {
			if _, err := agents.StartMobileAgent(rt.Container, maName, rt.Engine); err != nil {
				return err
			}
		}
		aaName := fmt.Sprintf("aa@%s/%s@%s", policy.User, policy.App, rt.Host)
		body := &agents.AutonomousBody{
			Policy: policy, Kernel: m.Kernel, Dir: m.Directory,
			Net: m.Net, Engine: rt.Engine, MAName: maName, Locator: m.Fusion,
		}
		if _, err := agents.StartAutonomousAgent(rt.Container, aaName, body); err != nil {
			return err
		}
	}
	return nil
}

// Walk replays a movement script through the sensor field and fusion,
// driving the whole context -> agent -> migration pipeline.
func (m *Middleware) Walk(script sensor.Script) error {
	w := sensor.NewWalker(m.Field, m.cfg.SensorTick)
	return w.Run(script, m.Fusion.Consume)
}

// WaitAppOn blocks (in real time) until the app runs on host or the
// timeout expires — migrations triggered by agents complete
// asynchronously to Walk.
func (m *Middleware) WaitAppOn(appName, host string, timeout time.Duration) error {
	rt, ok := m.Host(host)
	if !ok {
		return fmt.Errorf("core: unknown host %q", host)
	}
	deadline := time.Now().Add(timeout)
	for {
		if inst, ok := rt.Engine.App(appName); ok && inst.State() == app.Running {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("core: %s not running on %s after %v", appName, host, timeout)
		}
		time.Sleep(time.Millisecond)
	}
}

// Close tears the deployment down.
func (m *Middleware) Close() error {
	err := m.Fabric.Close()
	if cerr := m.db.Close(); err == nil {
		err = cerr
	}
	return err
}
