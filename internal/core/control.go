package core

import (
	"context"
	"fmt"
	"sort"

	"mdagent/internal/ctl"
	"mdagent/internal/migrate"
	"mdagent/internal/obs"
	"mdagent/internal/registry"
	"mdagent/internal/state"
	"mdagent/internal/transport"
)

// ControlBackend exposes the full deployment to the versioned control
// plane: lifecycle (run/stop/migrate by name), introspection (members +
// incarnations, registry records joined with snapshot heads, replicator
// stats), and the kernel as the Watch event source. cmd daemons build
// their own narrower backends; this one is the in-process reference.
func (m *Middleware) ControlBackend() ctl.Backend {
	return ctl.Backend{
		Info: func(context.Context) (ctl.ServerInfo, error) {
			return ctl.ServerInfo{Role: "middleware"}, nil
		},
		Members:       m.ctlMembers,
		Apps:          m.ctlApps,
		Snapshots:     m.ctlSnapshots,
		Stats:         m.ctlStats,
		RunApp:        m.ctlRunApp,
		StopApp:       m.ctlStopApp,
		Migrate:       m.ctlMigrate,
		Install:       m.ctlInstall,
		PushBundle:    m.PushBundle,
		ListBundles:   m.ctlListBundles,
		InstallBundle: m.InstallBundle,
		Metrics:       ObsMetrics,
		Trace:         ObsTrace,
		Kernel:        m.Kernel,
	}
}

// ObsMetrics is the shared ctl.Backend.Metrics implementation: a
// snapshot of the process-wide obs registry. The cmd daemons reuse it.
func ObsMetrics(context.Context) ([]obs.Sample, error) {
	return obs.Default.Snapshot(), nil
}

// ObsTrace is the shared ctl.Backend.Trace implementation: the latest
// migration trace recorded for app in this process.
func ObsTrace(_ context.Context, app string) (obs.MigrationTrace, error) {
	tr, ok := obs.Traces.Latest(app)
	if !ok {
		return obs.MigrationTrace{}, fmt.Errorf("core: %w: no migration trace for %q", ctl.ErrAppNotFound, app)
	}
	return tr, nil
}

// ServeControl binds the control plane onto ep — tests and multi-space
// deployments may serve several endpoints from one Server.
func (m *Middleware) ServeControl(ep *transport.Endpoint) *ctl.Server {
	return ctl.NewServer(m.ControlBackend()).Serve(ep)
}

// ctlMembers reports the gossip view of the first (sorted) provisioned
// host's node — any node converges to the same table; picking one keeps
// the answer a consistent cut instead of a union of mid-gossip views.
func (m *Middleware) ctlMembers(context.Context) ([]ctl.MemberInfo, error) {
	if m.Cluster == nil {
		return nil, fmt.Errorf("%w: deployment is not clustered", ctl.ErrUnsupported)
	}
	for _, host := range m.Hosts() {
		node, ok := m.Cluster.Node(host)
		if !ok {
			continue
		}
		members := node.Members()
		out := make([]ctl.MemberInfo, 0, len(members))
		for _, mem := range members {
			out = append(out, ctl.MemberInfo{
				ID: mem.ID, Space: mem.Space,
				State: mem.State.String(), Incarnation: mem.Incarnation,
			})
		}
		sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
		return out, nil
	}
	return nil, nil
}

// snapshotHeads unions every center's snapshot heads (centers converge
// via federation; mid-replication they may briefly disagree, so
// consumers pick the freshest Seq per app).
func (m *Middleware) snapshotHeads() []state.SnapshotHead {
	if m.Cluster == nil {
		return nil
	}
	var heads []state.SnapshotHead
	for _, space := range m.Cluster.Spaces() {
		center, ok := m.Cluster.Center(space)
		if !ok {
			continue
		}
		heads = append(heads, center.SnapshotHeads()...)
	}
	return heads
}

// ctlApps joins installation records with replicated snapshot heads.
func (m *Middleware) ctlApps(context.Context) ([]ctl.AppInfo, error) {
	var recs []registry.AppRecord
	if m.Cluster != nil {
		seen := make(map[string]bool)
		for _, space := range m.Cluster.Spaces() {
			center, ok := m.Cluster.Center(space)
			if !ok {
				continue
			}
			rs, err := center.Registry().Apps()
			if err != nil {
				return nil, err
			}
			for _, r := range rs {
				key := r.Name + "\x00" + r.Host
				if !seen[key] {
					seen[key] = true
					recs = append(recs, r)
				}
			}
		}
	} else {
		var err error
		recs, err = m.Registry.Apps()
		if err != nil {
			return nil, err
		}
	}
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].Host != recs[j].Host {
			return recs[i].Host < recs[j].Host
		}
		return recs[i].Name < recs[j].Name
	})
	return ctl.JoinApps(recs, m.snapshotHeads()), nil
}

func (m *Middleware) ctlSnapshots(context.Context) ([]state.SnapshotHead, error) {
	if m.Cluster == nil {
		return nil, fmt.Errorf("%w: deployment is not clustered", ctl.ErrUnsupported)
	}
	freshest := make(map[string]state.SnapshotHead)
	for _, h := range m.snapshotHeads() {
		if ex, ok := freshest[h.App]; !ok || h.Seq > ex.Seq {
			freshest[h.App] = h
		}
	}
	out := make([]state.SnapshotHead, 0, len(freshest))
	for _, h := range freshest {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].App < out[j].App })
	return out, nil
}

func (m *Middleware) ctlStats(context.Context) ([]ctl.HostStats, error) {
	var out []ctl.HostStats
	for _, host := range m.Hosts() {
		rt, ok := m.Host(host)
		if !ok || rt.Replicator == nil {
			continue
		}
		out = append(out, ctl.HostStats{Host: host, Stats: rt.Replicator.Stats()})
	}
	return out, nil
}

// ctlRunApp runs an app by name on a host: the host must hold an
// installed skeleton factory for it (the facade's typed RunApp covers
// arbitrary constructed instances).
func (m *Middleware) ctlRunApp(ctx context.Context, appName, host string) error {
	rt, ok := m.Host(host)
	if !ok {
		return fmt.Errorf("core: %w: %q", ctl.ErrUnknownHost, host)
	}
	factory, ok := rt.Engine.Factory(appName)
	if !ok {
		return fmt.Errorf("core: %w: no skeleton for %q installed on %s", ctl.ErrAppNotFound, appName, host)
	}
	return m.RunApp(ctx, host, factory(host))
}

// ctlStopApp stops an app on host; "" locates the host running it.
func (m *Middleware) ctlStopApp(ctx context.Context, appName, host string) error {
	if host == "" {
		var ok bool
		if _, host, ok = m.FindApp(appName); !ok {
			return fmt.Errorf("core: %w: %q is not running anywhere", ctl.ErrAppNotFound, appName)
		}
	}
	return m.StopApp(ctx, host, appName)
}

func (m *Middleware) ctlMigrate(ctx context.Context, req ctl.MigrateRequest) (ctl.MigrateResult, error) {
	binding := migrate.BindingAdaptive
	if req.Static {
		binding = migrate.BindingStatic
	}
	_, from, _ := m.FindApp(req.App)
	// An explicit source host must match reality — the documented
	// contract (and the daemon backend's behavior): migrating "x from
	// hostA" when x runs on hostC is an error, not a silent migration
	// from hostC.
	if req.Host != "" {
		if _, ok := m.Host(req.Host); !ok {
			return ctl.MigrateResult{}, fmt.Errorf("core: %w: %q", ctl.ErrUnknownHost, req.Host)
		}
		if from != req.Host {
			return ctl.MigrateResult{}, fmt.Errorf("core: %w: %q is not running on %s", ctl.ErrAppNotFound, req.App, req.Host)
		}
	}
	rep, err := m.Migrate(ctx, req.App, req.To, binding)
	if err != nil {
		return ctl.MigrateResult{}, err
	}
	return ctl.MigrateResult{
		App: req.App, From: from, To: req.To,
		Suspend: rep.Suspend, Migrate: rep.Migrate, Resume: rep.Resume,
		BytesMoved: rep.BytesMoved, Carried: rep.Carried, Delta: rep.Delta,
	}, nil
}
