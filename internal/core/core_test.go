package core

import (
	"context"
	"strings"
	"testing"
	"time"

	"mdagent/internal/agents"
	"mdagent/internal/app"
	"mdagent/internal/ctxkernel"
	"mdagent/internal/demoapps"
	"mdagent/internal/media"
	"mdagent/internal/netsim"
	"mdagent/internal/owl"
	"mdagent/internal/sensor"
	"mdagent/internal/wsdl"
)

func desktop(host string) wsdl.DeviceProfile {
	return wsdl.DeviceProfile{
		Host: host, ScreenWidth: 1024, ScreenHeight: 768,
		MemoryMB: 512, HasAudio: true, HasDisplay: true, Platform: "linux",
	}
}

// labDeployment provisions the paper's testbed: two hosts in one space,
// three rooms, alice with a badge, the media player running on hostA and
// its skeleton installed on hostB.
func labDeployment(t *testing.T) (*Middleware, media.File) {
	t.Helper()
	mw, err := New(Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mw.Close() })
	if err := mw.AddSpace("lab-space"); err != nil {
		t.Fatal(err)
	}
	if _, err := mw.AddHost("hostA", "lab-space", netsim.Pentium4_1700(), desktop("hostA"), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := mw.AddHost("hostB", "lab-space", netsim.PentiumM_1600(), desktop("hostB"), 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := mw.AddRoom("office821", "hostA", sensor.Point{X: 0, Y: 0}); err != nil {
		t.Fatal(err)
	}
	if err := mw.AddRoom("corridor", "hostA", sensor.Point{X: 6, Y: 5}); err != nil {
		t.Fatal(err)
	}
	if err := mw.AddRoom("office822", "hostB", sensor.Point{X: 12, Y: 0}); err != nil {
		t.Fatal(err)
	}
	if err := mw.AddUser("alice", "badge-1", "office821"); err != nil {
		t.Fatal(err)
	}

	song := media.GenerateFile("blue-danube", 2<<20, 9)
	hostA, _ := mw.Host("hostA")
	hostA.Library.Add(song)

	player := demoapps.NewMediaPlayer("hostA", song)
	player.SetProfile(app.UserProfile{User: "alice", Preferences: map[string]string{"handedness": "left"}})
	if err := mw.RunApp(context.Background(), "hostA", player); err != nil {
		t.Fatal(err)
	}
	if err := mw.RegisterResource(demoapps.MusicResource(song, "hostA")); err != nil {
		t.Fatal(err)
	}
	if err := mw.InstallApp(context.Background(), "hostB", "smart-media-player", demoapps.MediaPlayerDesc(),
		demoapps.MediaPlayerSkeletonComponents(),
		func(host string) *app.Application { return demoapps.MediaPlayerSkeleton(host) }); err != nil {
		t.Fatal(err)
	}
	return mw, song
}

func TestEndToEndFollowMeViaSensors(t *testing.T) {
	mw, _ := labDeployment(t)
	if err := mw.StartAgents(context.Background(), agents.DefaultPolicy("alice", "smart-media-player")); err != nil {
		t.Fatal(err)
	}
	// Alice walks: office821 -> corridor (same host) -> office822 (hostB).
	script := sensor.Script{Badge: "badge-1", Steps: []sensor.Step{
		{Room: "office821", Dwell: 2 * time.Second},
		{Room: "corridor", Dwell: 2 * time.Second},
		{Room: "office822", Dwell: 3 * time.Second},
	}}
	if err := mw.Walk(context.Background(), script); err != nil {
		t.Fatal(err)
	}
	if err := mw.WaitAppOn(context.Background(), "smart-media-player", "hostB", 10*time.Second); err != nil {
		t.Fatal(err)
	}
	inst, host, ok := mw.FindApp("smart-media-player")
	if !ok || host != "hostB" {
		t.Fatalf("app at %q, %v", host, ok)
	}
	// State continuity: the track survived the journey.
	if v, _ := inst.Coordinator().Get("track"); v != "blue-danube" {
		t.Fatalf("track = %q", v)
	}
	// The music data did NOT move; it is URL-bound to hostA.
	urlBound := false
	for _, res := range inst.Resources() {
		if strings.Contains(res.Attrs["url"], "mdagent://hostA/media/blue-danube") {
			urlBound = true
		}
	}
	if !urlBound {
		t.Fatalf("resources = %+v", inst.Resources())
	}
	// Context layer artifacts: classifier stored alice's location history,
	// predictor learned the route.
	if ev, ok := mw.Classifier.Latest(ctxkernel.TopicUserLocation, "alice"); !ok || ev.Attr(ctxkernel.AttrRoom) != "office822" {
		t.Fatalf("classifier latest = %+v, %v", ev, ok)
	}
	if room, _, ok := mw.Predictor.Predict("alice", "corridor"); !ok || room != "office822" {
		t.Fatalf("predictor = %q, %v", room, ok)
	}
}

func TestEndToEndMultiHopFollowMe(t *testing.T) {
	mw, _ := labDeployment(t)
	// A third host/room in the same space with the skeleton installed.
	if _, err := mw.AddHost("hostC", "lab-space", netsim.PentiumM_1600(), desktop("hostC"), 0); err != nil {
		t.Fatal(err)
	}
	if err := mw.AddRoom("office823", "hostC", sensor.Point{X: 24, Y: 0}); err != nil {
		t.Fatal(err)
	}
	if err := mw.InstallApp(context.Background(), "hostC", "smart-media-player", demoapps.MediaPlayerDesc(),
		demoapps.MediaPlayerSkeletonComponents(),
		func(host string) *app.Application { return demoapps.MediaPlayerSkeleton(host) }); err != nil {
		t.Fatal(err)
	}
	if err := mw.StartAgents(context.Background(), agents.DefaultPolicy("alice", "smart-media-player")); err != nil {
		t.Fatal(err)
	}
	script := sensor.Script{Badge: "badge-1", Steps: []sensor.Step{
		{Room: "office821", Dwell: time.Second},
		{Room: "office822", Dwell: 3 * time.Second},
		{Room: "office823", Dwell: 3 * time.Second},
	}}
	if err := mw.Walk(context.Background(), script); err != nil {
		t.Fatal(err)
	}
	if err := mw.WaitAppOn(context.Background(), "smart-media-player", "hostC", 10*time.Second); err != nil {
		t.Fatal(err)
	}
	// Two hops: the app must exist only on hostC.
	for _, h := range []string{"hostA", "hostB"} {
		rt, _ := mw.Host(h)
		if _, still := rt.Engine.App("smart-media-player"); still {
			t.Fatalf("app still on %s after multi-hop", h)
		}
	}
}

func TestEndToEndCloneDispatchAcrossSpaces(t *testing.T) {
	// The paper's demo 2: lecture slides cloned to overflow rooms in a
	// different cyber domain, synchronized with the speaker's controls.
	mw, err := New(Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer mw.Close()
	for _, s := range []string{"main-space", "overflow-space"} {
		if err := mw.AddSpace(s); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := mw.AddHost("mainHost", "main-space", netsim.Pentium4_1700(), desktop("mainHost"), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := mw.AddHost("roomHost", "overflow-space", netsim.PentiumM_1600(), desktop("roomHost"), 0); err != nil {
		t.Fatal(err)
	}
	if err := mw.AddGateway("gwMain", "main-space", netsim.Pentium4_1700()); err != nil {
		t.Fatal(err)
	}
	if err := mw.AddGateway("gwOverflow", "overflow-space", netsim.Pentium4_1700()); err != nil {
		t.Fatal(err)
	}

	deck := media.GenerateDeck("icdcs-talk", 20, 3<<20, 4)
	show := demoapps.NewSlideShow("mainHost", deck)
	show.BindResource(demoapps.SlidesResource(deck, "mainHost"))
	if err := mw.RunApp(context.Background(), "mainHost", show); err != nil {
		t.Fatal(err)
	}
	if err := mw.RegisterResource(demoapps.SlidesResource(deck, "mainHost")); err != nil {
		t.Fatal(err)
	}
	if err := mw.RegisterResource(demoapps.ProjectorResource("proj-1", "roomHost", "meetingRoom1")); err != nil {
		t.Fatal(err)
	}
	if err := mw.InstallApp(context.Background(), "roomHost", "ubiquitous-slideshow", demoapps.SlideShowDesc(),
		demoapps.SlideShowSkeletonComponents(),
		func(host string) *app.Application { return demoapps.SlideShowSkeleton(host) }); err != nil {
		t.Fatal(err)
	}

	mainRt, _ := mw.Host("mainHost")
	roomRt, _ := mw.Host("roomHost")
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	rep, err := mainRt.Engine.CloneDispatch(ctx, "ubiquitous-slideshow", "roomHost", "slideshow@room1", owl.MatchSemantic)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.InterSpace {
		t.Fatal("clone did not cross spaces")
	}
	// The slides travelled (transferable data), ~3 MB.
	if rep.BytesMoved < 3<<20 {
		t.Fatalf("bytes moved = %d, want the ~3 MiB deck", rep.BytesMoved)
	}
	clone, ok := roomRt.Engine.App("slideshow@room1")
	if !ok {
		t.Fatal("clone missing")
	}
	// Speaker advances a slide; the overflow room follows.
	show.Coordinator().Set("slide", "2")
	deadline := time.Now().Add(5 * time.Second)
	for {
		if v, _ := clone.Coordinator().Get("slide"); v == "2" {
			break
		}
		if time.Now().After(deadline) {
			v, _ := clone.Coordinator().Get("slide")
			t.Fatalf("clone slide = %q, want 2", v)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestMessengerFollowMeKeepsSession(t *testing.T) {
	mw, _ := labDeployment(t)
	im := demoapps.NewMessenger("hostA", "alice")
	if err := mw.RunApp(context.Background(), "hostA", im); err != nil {
		t.Fatal(err)
	}
	if err := demoapps.MessengerSend(im, "hello from office821"); err != nil {
		t.Fatal(err)
	}
	if err := demoapps.MessengerSend(im, "moving rooms now"); err != nil {
		t.Fatal(err)
	}
	hostA, _ := mw.Host("hostA")
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	// No skeleton on hostB: the messenger carries logic+UI along (the
	// paper's "Otherwise, it will also carry the logics and user
	// interface as well as the states").
	rep, err := hostA.Engine.FollowMe(ctx, "followme-messenger", "hostB", 1 /* adaptive */, owl.MatchSemantic)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Carried) != 3 { // logic + ui + session state
		t.Fatalf("carried = %v", rep.Carried)
	}
	hostB, _ := mw.Host("hostB")
	moved, ok := hostB.Engine.App("followme-messenger")
	if !ok {
		t.Fatal("messenger missing at hostB")
	}
	st, _ := moved.Component("im-session")
	if v, _ := st.(*app.StateComponent).Get("messageCount"); v != "2" {
		t.Fatalf("messageCount = %q", v)
	}
	if v, _ := st.(*app.StateComponent).Get("msg-001"); v != "moving rooms now" {
		t.Fatalf("msg-001 = %q", v)
	}
}

func TestConfigDefaults(t *testing.T) {
	mw, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer mw.Close()
	if mw.Clock == nil || mw.Net == nil || mw.Registry == nil {
		t.Fatal("defaults not applied")
	}
	if got := mw.Hosts(); len(got) != 0 {
		t.Fatalf("fresh deployment has hosts: %v", got)
	}
}

func TestValidationErrors(t *testing.T) {
	mw, _ := labDeployment(t)
	if err := mw.RunApp(context.Background(), "ghostHost", demoapps.NewMessenger("x", "u")); err == nil {
		t.Fatal("RunApp on unknown host accepted")
	}
	if err := mw.InstallApp(context.Background(), "ghostHost", "x", demoapps.MessengerDesc(), nil, nil); err == nil {
		t.Fatal("InstallApp on unknown host accepted")
	}
	if err := mw.WaitAppOn(context.Background(), "x", "ghostHost", time.Millisecond); err == nil {
		t.Fatal("WaitAppOn unknown host accepted")
	}
	if err := mw.WaitAppOn(context.Background(), "no-such-app", "hostA", 10*time.Millisecond); err == nil {
		t.Fatal("WaitAppOn missing app accepted")
	}
	if _, _, ok := mw.FindApp("no-such-app"); ok {
		t.Fatal("FindApp found a ghost")
	}
}

func TestPersistentRegistryAcrossDeployments(t *testing.T) {
	path := t.TempDir() + "/registry.log"
	mw1, err := New(Config{StorePath: path})
	if err != nil {
		t.Fatal(err)
	}
	if err := mw1.AddSpace("s"); err != nil {
		t.Fatal(err)
	}
	if _, err := mw1.AddHost("h1", "s", netsim.Pentium4_1700(), desktop("h1"), 0); err != nil {
		t.Fatal(err)
	}
	if err := mw1.RegisterResource(demoapps.ProjectorResource("p1", "h1", "r1")); err != nil {
		t.Fatal(err)
	}
	if err := mw1.Close(); err != nil {
		t.Fatal(err)
	}

	mw2, err := New(Config{StorePath: path})
	if err != nil {
		t.Fatal(err)
	}
	defer mw2.Close()
	res, err := mw2.Registry.ResourcesOnHost("h1")
	if err != nil || len(res) != 1 || res[0].ID != "p1" {
		t.Fatalf("resources after restart = %v, %v", res, err)
	}
}
