package app

import (
	"fmt"
	"strconv"
	"sync"

	"mdagent/internal/wsdl"
)

// Adaptation is the set of presentation adjustments computed for a
// destination device (paper §4.2.2: "the mobile agent will contact
// adaptor to conduct necessary adaptations according to some customizable
// parameters to adjust some sizes, resolutions, etc.").
type Adaptation struct {
	TargetHost   string
	ScaleX       float64 // horizontal UI scale factor
	ScaleY       float64 // vertical UI scale factor
	FontScale    float64
	MirrorLayout bool // left-handed users get mirrored controls (§1)
	MutedAudio   bool // device without audio: visual-only fallback
	Notes        []string
}

// Adaptable is implemented by presentations that can re-render for a
// device.
type Adaptable interface {
	Adapt(ad Adaptation) error
}

// Adaptor computes adaptations from device profiles and user preferences.
// Reference geometry defaults to 1024x768 (the paper-era desktop).
type Adaptor struct {
	mu         sync.Mutex
	refWidth   int
	refHeight  int
	lastReport *Adaptation
}

// NewAdaptor returns an adaptor with the default reference geometry.
func NewAdaptor() *Adaptor {
	return &Adaptor{refWidth: 1024, refHeight: 768}
}

// SetReference overrides the reference geometry presentations were
// designed for.
func (ad *Adaptor) SetReference(w, h int) error {
	if w <= 0 || h <= 0 {
		return fmt.Errorf("app: invalid reference geometry %dx%d", w, h)
	}
	ad.mu.Lock()
	ad.refWidth, ad.refHeight = w, h
	ad.mu.Unlock()
	return nil
}

// Plan computes the adaptation for a device and user profile.
func (ad *Adaptor) Plan(dev wsdl.DeviceProfile, profile UserProfile) Adaptation {
	ad.mu.Lock()
	refW, refH := ad.refWidth, ad.refHeight
	ad.mu.Unlock()

	a := Adaptation{TargetHost: dev.Host, ScaleX: 1, ScaleY: 1, FontScale: 1}
	if dev.ScreenWidth > 0 && dev.ScreenWidth != refW {
		a.ScaleX = float64(dev.ScreenWidth) / float64(refW)
	}
	if dev.ScreenHeight > 0 && dev.ScreenHeight != refH {
		a.ScaleY = float64(dev.ScreenHeight) / float64(refH)
	}
	// Small screens get enlarged fonts relative to the geometric scale so
	// text stays legible (handheld editor / handheld player demos).
	if a.ScaleX < 0.5 {
		a.FontScale = a.ScaleX * 1.6
		a.Notes = append(a.Notes, "small screen: font compensation applied")
	} else {
		a.FontScale = a.ScaleX
	}
	if hand, ok := profile.Preferences["handedness"]; ok && hand == "left" {
		a.MirrorLayout = true
		a.Notes = append(a.Notes, "left-handed user: mirrored layout")
	}
	if !dev.HasAudio {
		a.MutedAudio = true
		a.Notes = append(a.Notes, "no audio device: visual-only mode")
	}

	ad.mu.Lock()
	cp := a
	ad.lastReport = &cp
	ad.mu.Unlock()
	return a
}

// Apply plans an adaptation and applies it to every Adaptable component
// of the application, returning the plan and how many components adapted.
func (ad *Adaptor) Apply(a *Application, dev wsdl.DeviceProfile) (Adaptation, int, error) {
	plan := ad.Plan(dev, a.Profile())
	adapted := 0
	for _, name := range a.Components() {
		c, ok := a.Component(name)
		if !ok {
			continue
		}
		if target, ok := c.(Adaptable); ok {
			if err := target.Adapt(plan); err != nil {
				return plan, adapted, fmt.Errorf("app: adapt %s: %w", name, err)
			}
			adapted++
		}
	}
	return plan, adapted, nil
}

// LastPlan returns the most recently computed adaptation, if any.
func (ad *Adaptor) LastPlan() (Adaptation, bool) {
	ad.mu.Lock()
	defer ad.mu.Unlock()
	if ad.lastReport == nil {
		return Adaptation{}, false
	}
	return *ad.lastReport, true
}

// UIComponent is a presentation: a blob payload (the UI bundle) plus
// live geometry that the adaptor adjusts and the coordinator notifies.
type UIComponent struct {
	*BlobComponent

	mu       sync.Mutex
	width    int
	height   int
	mirrored bool
	muted    bool
	renders  int // Notify count, for tests and demos
}

var (
	_ Component = (*UIComponent)(nil)
	_ Adaptable = (*UIComponent)(nil)
	_ Observer  = (*UIComponent)(nil)
)

// NewUI creates a presentation of the given bundle size and design
// geometry.
func NewUI(name string, bundleSize int64, width, height int) *UIComponent {
	return &UIComponent{
		BlobComponent: NewSizedBlob(name, KindUI, bundleSize),
		width:         width,
		height:        height,
	}
}

// Adapt implements Adaptable.
func (u *UIComponent) Adapt(ad Adaptation) error {
	u.mu.Lock()
	defer u.mu.Unlock()
	u.width = int(float64(u.width) * ad.ScaleX)
	u.height = int(float64(u.height) * ad.ScaleY)
	if u.width < 1 || u.height < 1 {
		return fmt.Errorf("app: adaptation collapsed %s to %dx%d", u.Name(), u.width, u.height)
	}
	u.mirrored = ad.MirrorLayout
	u.muted = ad.MutedAudio
	return nil
}

// Notify implements Observer: the presentation re-renders on state change.
func (u *UIComponent) Notify(StateChange) {
	u.mu.Lock()
	u.renders++
	u.mu.Unlock()
}

// Geometry returns the current width and height.
func (u *UIComponent) Geometry() (w, h int) {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.width, u.height
}

// Mirrored reports whether the layout is mirrored for a left-handed user.
func (u *UIComponent) Mirrored() bool {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.mirrored
}

// Muted reports whether audio is disabled.
func (u *UIComponent) Muted() bool {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.muted
}

// Renders reports how many state notifications the presentation received.
func (u *UIComponent) Renders() int {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.renders
}

// GeometryString renders the geometry for logs, e.g. "320x240".
func (u *UIComponent) GeometryString() string {
	w, h := u.Geometry()
	return strconv.Itoa(w) + "x" + strconv.Itoa(h)
}
