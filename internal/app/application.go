package app

import (
	"fmt"
	"sort"
	"sync"

	"mdagent/internal/owl"
	"mdagent/internal/wsdl"
)

// RunState is the application lifecycle state.
type RunState int

// Application run states.
const (
	Running RunState = iota + 1
	Suspended
)

func (s RunState) String() string {
	switch s {
	case Running:
		return "running"
	case Suspended:
		return "suspended"
	default:
		return "invalid"
	}
}

// UserProfile captures the per-user customization the paper motivates
// with the left-handed user example (§1).
type UserProfile struct {
	User        string
	Preferences map[string]string // e.g. handedness=left, volume=70
}

// Application is one running application instance on a host, assembled
// from components per the paper's Fig. 3 model.
type Application struct {
	name string
	host string
	desc wsdl.Description

	mu         sync.Mutex
	state      RunState
	components map[string]Component
	order      []string // registration order for deterministic wraps
	resources  []owl.Resource
	profile    UserProfile

	// Dirty tracking for the state pipeline: changeSeq counts every
	// observable state mutation (component content, coordinator state,
	// profile); compSeq records the changeSeq at each component's last
	// mutation; untracked lists components that cannot announce changes
	// (no ChangeNotifier) and so must be treated as always dirty.
	changeSeq uint64
	compSeq   map[string]uint64
	untracked map[string]bool

	coordinator *Coordinator
	snapshots   *SnapshotManager
	adaptor     *Adaptor
}

// New creates a running application instance.
func New(name, host string, desc wsdl.Description) *Application {
	a := &Application{
		name:       name,
		host:       host,
		desc:       desc,
		state:      Running,
		components: make(map[string]Component),
		compSeq:    make(map[string]uint64),
		untracked:  make(map[string]bool),
	}
	a.coordinator = NewCoordinator(name + "@" + host)
	a.coordinator.onMutate = func() { a.markDirty("") }
	a.snapshots = NewSnapshotManager(a)
	a.adaptor = NewAdaptor()
	return a
}

// markDirty advances the application's mutation counter; a non-empty
// component name additionally records that component as changed at the
// new counter value.
func (a *Application) markDirty(component string) {
	a.mu.Lock()
	a.changeSeq++
	if component != "" {
		a.compSeq[component] = a.changeSeq
	}
	a.mu.Unlock()
}

// ChangeSeq returns the application's mutation counter: it advances on
// every component content change, coordinator state change, and profile
// replacement. A capture that records the counter can skip all
// serialization work on the next tick when the counter has not moved —
// the state pipeline's idle fast path.
func (a *Application) ChangeSeq() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.changeSeq
}

// ChangedSince lists (in registration order) the components mutated
// after the given ChangeSeq value, plus every untracked component —
// exactly the set a delta capture must serialize.
func (a *Application) ChangedSince(seq uint64) []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	var out []string
	for _, n := range a.order {
		if a.untracked[n] || a.compSeq[n] > seq {
			out = append(out, n)
		}
	}
	return out
}

// FullyTracked reports whether every component announces its mutations
// (implements ChangeNotifier). Only then is an unmoved ChangeSeq proof
// that the application's serialized state is unchanged.
func (a *Application) FullyTracked() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.untracked) == 0
}

// Name returns the application name.
func (a *Application) Name() string { return a.name }

// Host returns the host the instance runs on.
func (a *Application) Host() string { return a.host }

// SetHost records a new host after migration.
func (a *Application) SetHost(host string) {
	a.mu.Lock()
	a.host = host
	a.coordinator.origin = a.name + "@" + host
	a.mu.Unlock()
}

// Description returns the interface description.
func (a *Application) Description() wsdl.Description { return a.desc }

// Coordinator returns the base-level coordinator.
func (a *Application) Coordinator() *Coordinator { return a.coordinator }

// Snapshots returns the snapshot manager.
func (a *Application) Snapshots() *SnapshotManager { return a.snapshots }

// Adaptor returns the adaptor.
func (a *Application) Adaptor() *Adaptor { return a.adaptor }

// State returns the run state.
func (a *Application) State() RunState {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.state
}

// AddComponent registers a component. Names must be unique. Components
// that implement ChangeNotifier feed the application's dirty counters;
// others are tracked as always-dirty.
func (a *Application) AddComponent(c Component) error {
	name := c.Name()
	a.mu.Lock()
	if _, dup := a.components[name]; dup {
		a.mu.Unlock()
		return fmt.Errorf("app: duplicate component %q", name)
	}
	a.components[name] = c
	a.order = append(a.order, name)
	a.changeSeq++
	a.compSeq[name] = a.changeSeq
	notifier, tracked := c.(ChangeNotifier)
	if !tracked {
		a.untracked[name] = true
	}
	a.mu.Unlock()
	if tracked {
		notifier.OnContentChange(func() { a.markDirty(name) })
	}
	return nil
}

// Component looks up a component by name.
func (a *Application) Component(name string) (Component, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	c, ok := a.components[name]
	return c, ok
}

// Components returns the component names in registration order.
func (a *Application) Components() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]string, len(a.order))
	copy(out, a.order)
	return out
}

// ComponentsOfKind returns names of components of one kind, sorted.
func (a *Application) ComponentsOfKind(k ComponentKind) []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	var out []string
	for name, c := range a.components {
		if c.Kind() == k {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// BindResource records a resource binding.
func (a *Application) BindResource(r owl.Resource) {
	a.mu.Lock()
	a.resources = append(a.resources, r)
	a.mu.Unlock()
}

// Resources returns the bound resources.
func (a *Application) Resources() []owl.Resource {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]owl.Resource, len(a.resources))
	copy(out, a.resources)
	return out
}

// SetProfile attaches the user profile.
func (a *Application) SetProfile(p UserProfile) {
	a.mu.Lock()
	a.profile = p
	a.changeSeq++
	a.mu.Unlock()
}

// Profile returns the user profile.
func (a *Application) Profile() UserProfile {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.profile
}

// Suspend freezes the coordinator and marks the app suspended (paper
// Fig. 4: the coordinator suspends the application before the snapshot).
func (a *Application) Suspend() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.state == Suspended {
		return fmt.Errorf("app: %s already suspended", a.name)
	}
	a.coordinator.Freeze()
	a.state = Suspended
	return nil
}

// Resume thaws the coordinator and marks the app running.
func (a *Application) Resume() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.state == Running {
		return fmt.Errorf("app: %s already running", a.name)
	}
	a.coordinator.Thaw()
	a.state = Running
	return nil
}

// Wrap is a serialized bundle of selected components plus coordinator
// state — what the mobile agent carries (paper §4.3: the MA "can wrap any
// serializable part and migrate to the destination").
type Wrap struct {
	App        string
	FromHost   string
	Components map[string][]byte // component name -> snapshot
	Kinds      map[string]ComponentKind
	CoordState map[string]string
	Profile    UserProfile
}

// TotalBytes reports the wrap payload size.
func (w Wrap) TotalBytes() int64 {
	var n int64
	for _, b := range w.Components {
		n += int64(len(b))
	}
	for k, v := range w.CoordState {
		n += int64(len(k) + len(v))
	}
	return n
}

// WrapComponents snapshots the named components (all when names is nil)
// into a transferable bundle. The application should be suspended first
// for a consistent cut.
func (a *Application) WrapComponents(names []string) (Wrap, error) {
	a.mu.Lock()
	if names == nil {
		names = make([]string, len(a.order))
		copy(names, a.order)
	}
	comps := make(map[string]Component, len(names))
	for _, n := range names {
		c, ok := a.components[n]
		if !ok {
			a.mu.Unlock()
			return Wrap{}, fmt.Errorf("app: no component %q in %s", n, a.name)
		}
		comps[n] = c
	}
	host := a.host
	profile := a.profile
	a.mu.Unlock()

	w := Wrap{
		App:        a.name,
		FromHost:   host,
		Components: make(map[string][]byte, len(comps)),
		Kinds:      make(map[string]ComponentKind, len(comps)),
		CoordState: a.coordinator.State(),
		Profile:    profile,
	}
	for n, c := range comps {
		snap, err := c.Snapshot()
		if err != nil {
			return Wrap{}, fmt.Errorf("app: wrap %s/%s: %w", a.name, n, err)
		}
		w.Components[n] = snap
		w.Kinds[n] = c.Kind()
	}
	return w, nil
}

// Unwrap restores wrapped component snapshots into this instance:
// existing components are restored in place; missing ones are created as
// blob components of the recorded kind (state components are recreated as
// StateComponent). Coordinator state and profile are replaced.
func (a *Application) Unwrap(w Wrap) error {
	names := make([]string, 0, len(w.Components))
	for n := range w.Components {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		snap := w.Components[n]
		a.mu.Lock()
		c, ok := a.components[n]
		a.mu.Unlock()
		if !ok {
			switch w.Kinds[n] {
			case KindState:
				c = NewState(n)
			default:
				c = NewBlob(n, w.Kinds[n], nil)
			}
			if err := a.AddComponent(c); err != nil {
				return err
			}
		}
		if err := c.Restore(snap); err != nil {
			return fmt.Errorf("app: unwrap %s/%s: %w", a.name, n, err)
		}
	}
	a.coordinator.replaceState(w.CoordState)
	a.SetProfile(w.Profile)
	return nil
}
